// Benchmarks: one per reproduced table/figure (see DESIGN.md's
// experiment index). Each benchmark exercises the code path that
// regenerates the artifact and reports the paper's metric via
// b.ReportMetric, so `go test -bench . -benchmem` reproduces the
// evaluation's headline numbers alongside simulator throughput.
package quickrec_test

import (
	"testing"

	quickrec "repro"
	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/perf"
	"repro/internal/stats"
	"repro/internal/swrecord"
	"repro/internal/workload"
)

const benchSeed = 1

func mustRun(b *testing.B, spec workload.Spec, threads int, mode machine.RecordingMode) *machine.Result {
	b.Helper()
	cfg := machine.DefaultConfig()
	cfg.Mode = mode
	cfg.Threads = threads
	cfg.Seed = benchSeed
	cfg.KernelSeed = benchSeed + 1
	res, err := machine.New(spec.Build(threads), cfg).Run()
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func mustSpec(b *testing.B, name string) workload.Spec {
	b.Helper()
	spec, ok := workload.ByName(name)
	if !ok {
		b.Fatalf("workload %s missing", name)
	}
	return spec
}

// BenchmarkT2Characteristics (Table T2): records the suite once per
// iteration and reports retired instructions per wall-second — the
// simulator's capacity to regenerate the characteristics table.
func BenchmarkT2Characteristics(b *testing.B) {
	spec := mustSpec(b, "fft")
	var retired uint64
	for i := 0; i < b.N; i++ {
		res := mustRun(b, spec, 4, machine.ModeFull)
		retired += res.Retired
	}
	b.ReportMetric(float64(retired)/float64(b.N), "instrs/op")
}

// BenchmarkF1RecordOverhead (Figure F1): native vs full-stack run of
// each SPLASH kernel; reports the recording overhead percentage.
func BenchmarkF1RecordOverhead(b *testing.B) {
	for _, name := range []string{"fft", "radix", "water", "barnes"} {
		spec := mustSpec(b, name)
		b.Run(name, func(b *testing.B) {
			var overhead float64
			for i := 0; i < b.N; i++ {
				native := mustRun(b, spec, 4, machine.ModeOff)
				full := mustRun(b, spec, 4, machine.ModeFull)
				overhead = 100 * (float64(full.Cycles) - float64(native.Cycles)) / float64(native.Cycles)
			}
			b.ReportMetric(overhead, "overhead%")
		})
	}
}

// BenchmarkF2Breakdown (Figure F2): reports the input-copy share of the
// recording overhead on the input-bound microbenchmark.
func BenchmarkF2Breakdown(b *testing.B) {
	spec := mustSpec(b, "ioheavy")
	var share float64
	for i := 0; i < b.N; i++ {
		res := mustRun(b, spec, 4, machine.ModeFull)
		share = 100 * float64(res.Acct.Get(perf.CompRecInputCopy)) / float64(res.Acct.RecordingTotal())
	}
	b.ReportMetric(share, "inputcopy%")
}

// BenchmarkF3LogRate (Figure F3): reports memory-log bytes per
// kilo-instruction for the conflict-heavy radix kernel.
func BenchmarkF3LogRate(b *testing.B) {
	spec := mustSpec(b, "radix")
	var rate float64
	for i := 0; i < b.N; i++ {
		res := mustRun(b, spec, 4, machine.ModeFull)
		rate = float64(res.Session.ChunkBytes()) / (float64(res.Retired) / 1000)
	}
	b.ReportMetric(rate, "B/kinstr")
}

// BenchmarkF4LogSplit (Figure F4): reports the input log's share of the
// total log volume on the IO-bound microbenchmark.
func BenchmarkF4LogSplit(b *testing.B) {
	spec := mustSpec(b, "ioheavy")
	var share float64
	for i := 0; i < b.N; i++ {
		res := mustRun(b, spec, 4, machine.ModeFull)
		cb, ib := float64(res.Session.ChunkBytes()), float64(res.Session.InputBytes())
		share = 100 * ib / (cb + ib)
	}
	b.ReportMetric(share, "input%")
}

// BenchmarkF5ChunkSizes (Figure F5): reports the mean chunk size on the
// no-sharing kernel (the CTR-bound best case).
func BenchmarkF5ChunkSizes(b *testing.B) {
	spec := mustSpec(b, "private")
	var mean float64
	for i := 0; i < b.N; i++ {
		res := mustRun(b, spec, 4, machine.ModeFull)
		var h stats.Histogram
		for _, l := range res.Session.ChunkLogs() {
			for _, e := range l.Entries {
				h.Add(e.Size)
			}
		}
		mean = h.Mean()
	}
	b.ReportMetric(mean, "instrs/chunk")
}

// BenchmarkF6Reasons (Figure F6): reports the conflict share of chunk
// terminations on the ping-pong microbenchmark.
func BenchmarkF6Reasons(b *testing.B) {
	spec := mustSpec(b, "pingpong")
	var conflictShare float64
	for i := 0; i < b.N; i++ {
		res := mustRun(b, spec, 4, machine.ModeFull)
		var c stats.Counter
		for _, s := range res.MRRStats {
			c.Merge(&s.Reasons)
		}
		conflicts := c.Get(int(chunk.ReasonConflictRAW)) +
			c.Get(int(chunk.ReasonConflictWAR)) + c.Get(int(chunk.ReasonConflictWAW))
		conflictShare = 100 * float64(conflicts) / float64(c.Total())
	}
	b.ReportMetric(conflictShare, "conflict%")
}

// BenchmarkF7Encoding (Figure F7): encoding throughput and bytes/chunk
// for each chunk-log format over a recorded stream.
func BenchmarkF7Encoding(b *testing.B) {
	spec := mustSpec(b, "radix")
	res := mustRun(b, spec, 4, machine.ModeFull)
	logs := res.Session.ChunkLogs()
	total := 0
	for _, l := range logs {
		total += l.Len()
	}
	for _, enc := range chunk.Encodings() {
		enc := enc
		b.Run(enc.Name(), func(b *testing.B) {
			var buf []byte
			var bytesOut int
			for i := 0; i < b.N; i++ {
				buf = buf[:0]
				// Delta streams are per thread: encode each log on its
				// own chain, as the session does.
				for _, l := range logs {
					var prev *chunk.Entry
					for j := range l.Entries {
						buf = enc.Append(buf, l.Entries[j], prev)
						prev = &l.Entries[j]
					}
				}
				bytesOut = len(buf)
			}
			b.ReportMetric(float64(bytesOut)/float64(total), "B/chunk")
		})
	}
}

// BenchmarkF8Replay (Figure F8): record once, then measure replay; the
// reported metric is replayed instructions per wall-second.
func BenchmarkF8Replay(b *testing.B) {
	for _, name := range []string{"fft", "radix"} {
		name := name
		b.Run(name, func(b *testing.B) {
			prog, err := quickrec.BuildWorkload(name, 4)
			if err != nil {
				b.Fatal(err)
			}
			rec, err := quickrec.Record(prog, quickrec.Options{Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var steps uint64
			for i := 0; i < b.N; i++ {
				rr, err := quickrec.Replay(prog, rec)
				if err != nil {
					b.Fatal(err)
				}
				steps = rr.Steps
			}
			b.ReportMetric(float64(steps), "steps/op")
		})
	}
}

// BenchmarkA1SoftwareBaseline (Ablation A1): reports the modelled
// software-only recording overhead next to QuickRec's.
func BenchmarkA1SoftwareBaseline(b *testing.B) {
	spec := mustSpec(b, "fft")
	var sw float64
	for i := 0; i < b.N; i++ {
		res := mustRun(b, spec, 4, machine.ModeFull)
		sw = 100 * swrecord.Overhead(res, swrecord.DefaultParams())
	}
	b.ReportMetric(sw, "sw-overhead%")
}

// BenchmarkA2SignatureSweep (Ablation A2): chunk count at the smallest
// and largest signature budgets.
func BenchmarkA2SignatureSweep(b *testing.B) {
	spec := mustSpec(b, "fft")
	for _, bits := range []uint{256, 4096} {
		bits := bits
		b.Run(sizeName(bits), func(b *testing.B) {
			var chunks float64
			for i := 0; i < b.N; i++ {
				cfg := machine.DefaultConfig()
				cfg.Mode = machine.ModeHardwareOnly
				cfg.Threads = 4
				cfg.Seed = benchSeed
				cfg.MRR.ReadSig.Bits = bits
				cfg.MRR.ReadSig.MaxInserts = bits / 6
				cfg.MRR.WriteSig.Bits = bits
				cfg.MRR.WriteSig.MaxInserts = bits / 6
				res, err := machine.New(spec.Build(4), cfg).Run()
				if err != nil {
					b.Fatal(err)
				}
				var n uint64
				for _, s := range res.MRRStats {
					n += s.Chunks
				}
				chunks = float64(n)
			}
			b.ReportMetric(chunks, "chunks")
		})
	}
}

// BenchmarkA3RepResidue (Ablation A3): record+replay round trip of the
// REP-splitting workload with residue logging on.
func BenchmarkA3RepResidue(b *testing.B) {
	prog, err := quickrec.BuildWorkload("repcopy", 4)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, _, err := quickrec.RecordAndVerify(prog, quickrec.Options{Seed: benchSeed}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkT1MachineConstruction (Table T1): cost of building the full
// prototype model.
func BenchmarkT1MachineConstruction(b *testing.B) {
	spec := mustSpec(b, "fft")
	prog := spec.Build(4)
	cfg := machine.DefaultConfig()
	cfg.Mode = machine.ModeFull
	cfg.Threads = 4
	for i := 0; i < b.N; i++ {
		_ = machine.New(prog, cfg)
	}
}

// BenchmarkRecordEndToEnd: the full record pipeline through the public
// API, the library's primary operation.
func BenchmarkRecordEndToEnd(b *testing.B) {
	for _, name := range []string{"water", "radix"} {
		name := name
		b.Run(name, func(b *testing.B) {
			prog, err := quickrec.BuildWorkload(name, 4)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := quickrec.Record(prog, quickrec.Options{Seed: benchSeed}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBundleRoundTrip: recording serialization round trip
// (encode + decode) on a conflict-heavy and an input-heavy recording —
// the codec hot path the wire layer exists for. Run with -benchmem; the
// allocs/op numbers are tracked in BENCH_baseline.json.
func BenchmarkBundleRoundTrip(b *testing.B) {
	for _, name := range []string{"radix", "ioheavy"} {
		name := name
		b.Run(name, func(b *testing.B) {
			prog, err := quickrec.BuildWorkload(name, 4)
			if err != nil {
				b.Fatal(err)
			}
			rec, err := quickrec.Record(prog, quickrec.Options{Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				data := rec.Marshal()
				if _, err := core.UnmarshalBundle(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeName(bits uint) string {
	return map[uint]string{256: "256b", 4096: "4096b"}[bits]
}
