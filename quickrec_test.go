package quickrec_test

import (
	"strings"
	"testing"

	quickrec "repro"
)

func TestQuickstartFlow(t *testing.T) {
	prog, err := quickrec.BuildWorkload("radix", 4)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := quickrec.Record(prog, quickrec.Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := quickrec.Replay(prog, rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := quickrec.Verify(rec, rr); err != nil {
		t.Fatal(err)
	}
	if rec.RecordStats == nil || rec.RecordStats.Cycles == 0 {
		t.Error("recording carried no stats")
	}
}

func TestWorkloadCatalogue(t *testing.T) {
	ws := quickrec.Workloads()
	if len(ws) < 12 {
		t.Fatalf("catalogue has %d workloads", len(ws))
	}
	kinds := map[string]int{}
	for _, w := range ws {
		kinds[w.Kind]++
		if w.Name == "" || w.Description == "" {
			t.Errorf("incomplete catalogue entry %+v", w)
		}
	}
	if kinds["splash"] < 8 || kinds["micro"] < 4 {
		t.Errorf("kind counts: %v", kinds)
	}
	if _, err := quickrec.BuildWorkload("no-such-thing", 4); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestCustomProgramRoundTrip(t *testing.T) {
	// Build a small custom program through the public API only.
	var lay quickrec.Layout
	shared := lay.AllocWords(1)
	b := quickrec.NewBuilder("custom")
	b.Liu(quickrec.R3, shared)
	b.Li(quickrec.R4, 0)
	b.Li(quickrec.R5, 100)
	b.Li(quickrec.R6, 1)
	b.Label("loop")
	b.Fadd(quickrec.R7, quickrec.R3, 0, quickrec.R6)
	b.Addi(quickrec.R4, quickrec.R4, 1)
	b.Bne(quickrec.R4, quickrec.R5, "loop")
	b.Halt()
	prog := b.Build(lay.Size(), 4, nil)

	_, _, err := quickrec.RecordAndVerify(prog, quickrec.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNativeVsRecordedOverhead(t *testing.T) {
	prog, _ := quickrec.BuildWorkload("water", 4)
	opts := quickrec.Options{Seed: 5}
	native, err := quickrec.Native(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := quickrec.Record(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rec.RecordStats.Cycles <= native.Cycles {
		t.Error("recording was not slower than native")
	}
	if rec.RecordStats.Retired != native.Retired {
		t.Error("recording changed the executed instruction count")
	}
}

func TestHardwareOnlyOption(t *testing.T) {
	prog, _ := quickrec.BuildWorkload("fft", 4)
	rec, err := quickrec.Record(prog, quickrec.Options{Seed: 3, HardwareOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.RecordStats.Acct.SoftwareRecordingTotal(); got != 0 {
		t.Errorf("hardware-only charged %d software cycles", got)
	}
	rr, err := quickrec.Replay(prog, rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := quickrec.Verify(rec, rr); err != nil {
		t.Fatal(err)
	}
}

func TestSerializationThroughPublicAPI(t *testing.T) {
	prog, _ := quickrec.BuildWorkload("counter", 2)
	rec, err := quickrec.Record(prog, quickrec.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	data := rec.Marshal()
	loaded, err := quickrec.LoadRecording(data)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := quickrec.Replay(prog, loaded)
	if err != nil {
		t.Fatal(err)
	}
	if err := quickrec.Verify(loaded, rr); err != nil {
		t.Fatal(err)
	}
}

func TestEncodingOption(t *testing.T) {
	prog, _ := quickrec.BuildWorkload("counter", 2)
	for _, enc := range []string{"fixed16", "varint", "ts-delta"} {
		if _, err := quickrec.Record(prog, quickrec.Options{Seed: 2, Encoding: enc}); err != nil {
			t.Errorf("%s: %v", enc, err)
		}
	}
	if _, err := quickrec.Record(prog, quickrec.Options{Encoding: "zstd"}); err == nil ||
		!strings.Contains(err.Error(), "unknown encoding") {
		t.Errorf("bad encoding not rejected: %v", err)
	}
}

func TestSignalOption(t *testing.T) {
	prog, _ := quickrec.BuildWorkload("volrend", 4)
	// volrend has no handler registered, so signals are simply skipped;
	// exercise the option path with the dedicated workload instead.
	if _, _, err := quickrec.RecordAndVerify(prog, quickrec.Options{Seed: 4, SignalPeriodInstrs: 5000}); err != nil {
		t.Fatal(err)
	}
}
