// Package quickrec is a full-system reproduction of "QuickRec:
// prototyping an Intel architecture extension for record and replay of
// multithreaded programs" (Pokam et al., ISCA 2013) as a Go library.
//
// The package records the execution of a multithreaded program running
// on a simulated multicore machine — chunk-based Memory Race Recorder
// hardware on every core, MESI-coherent caches on a snooping bus, and a
// Capo3-style kernel stack that logs all input nondeterminism — and
// replays the resulting logs deterministically, byte-for-byte.
//
// Quick start:
//
//	prog, _ := quickrec.BuildWorkload("radix", 4)
//	rec, _ := quickrec.Record(prog, quickrec.Options{Seed: 42})
//	rr, _ := quickrec.Replay(prog, rec)
//	if err := quickrec.Verify(rec, rr); err != nil { ... }
//
// Custom programs are written with the assembler Builder (see
// NewBuilder) against the simulated ISA; the workload catalogue
// (Workloads) carries the SPLASH-2-like evaluation suite from the paper.
package quickrec

import (
	"fmt"
	"io"

	"repro/internal/capo"
	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/harness"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/qasm"
	"repro/internal/races"
	"repro/internal/replay"
	"repro/internal/segment"
	"repro/internal/workload"
)

// Re-exported building blocks for writing custom programs.
type (
	// Program is an executable image for the simulated machine.
	Program = isa.Program
	// Builder assembles Programs; see NewBuilder.
	Builder = isa.Builder
	// Reg names a machine register.
	Reg = isa.Reg
	// Memory is the simulated physical memory (used in Program
	// initializers).
	Memory = mem.Memory
	// Layout plans data-segment addresses at build time.
	Layout = mem.Layout
	// Recording is a complete replayable recording: per-thread chunk
	// logs, the input log, and the reference final state.
	Recording = core.Bundle
	// ReplayResult is the state replay reconstructed.
	ReplayResult = replay.Result
	// RunStats carries a run's measurements: cycles, per-component
	// overhead accounting, log volumes and chunk statistics.
	RunStats = machine.Result
)

// Register aliases for program authors. R1 receives the thread ID, R2
// the thread count, R29 a per-thread scratch base; RRet carries syscall
// numbers and results.
const (
	R0  = isa.R0
	R1  = isa.R1
	R2  = isa.R2
	R3  = isa.R3
	R4  = isa.R4
	R5  = isa.R5
	R6  = isa.R6
	R7  = isa.R7
	R8  = isa.R8
	R9  = isa.R9
	R28 = isa.R28
	R29 = isa.R29
	R30 = isa.R30
	R31 = isa.R31
	// RRet carries syscall numbers in and results out.
	RRet = isa.RRet
)

// Syscall numbers for custom programs.
const (
	SysExit      = capo.SysExit
	SysWrite     = capo.SysWrite
	SysRead      = capo.SysRead
	SysGetTime   = capo.SysGetTime
	SysRandom    = capo.SysRandom
	SysYield     = capo.SysYield
	SysFutexWait = capo.SysFutexWait
	SysFutexWake = capo.SysFutexWake
	SysGetTID    = capo.SysGetTID
)

// NewBuilder returns an assembler for a custom program.
func NewBuilder(name string) *Builder { return isa.NewBuilder(name) }

// ParseProgram assembles a program from qasm source text — the textual
// format documented in internal/qasm (directives .name/.threads/.alloc/
// .init, one instruction per line, plock/punlock/pbarrier pseudo-ops).
func ParseProgram(src string) (*Program, error) { return qasm.Parse(src) }

// Options configures recording and native runs. The zero value is a
// 4-core machine with scheduler seed 1 — the paper's prototype shape.
type Options struct {
	// Cores is the core count (default 4, the prototype's).
	Cores int
	// Threads overrides the program's default thread count (0 keeps it).
	Threads int
	// Seed drives scheduler nondeterminism; two runs with the same seed
	// interleave identically.
	Seed uint64
	// KernelSeed drives external-input nondeterminism (read data, time
	// jitter, entropy). Defaults to Seed+1.
	KernelSeed uint64
	// TimeSliceInstrs is the preemption quantum in retired instructions
	// (0 = the default; set when Threads > Cores).
	TimeSliceInstrs uint64
	// SignalPeriodInstrs delivers asynchronous signals about that often
	// (0 = never).
	SignalPeriodInstrs uint64
	// HardwareOnly charges only the recording hardware's cycle costs,
	// the paper's "negligible hardware overhead" configuration. Logs are
	// still complete and replayable.
	HardwareOnly bool
	// CheckpointEveryInstrs enables flight-recorder checkpoints roughly
	// every that many retired instructions (0 = never); see Tail.
	CheckpointEveryInstrs uint64
	// Encoding selects the chunk-log format: "fixed16", "varint" or
	// "ts-delta" (default).
	Encoding string
	// FlushEveryChunks is the segmented-stream flush cadence for
	// StreamRecord: logs are committed to the stream after that many new
	// chunks (0 = the default, 1024). Smaller values tighten the
	// crash-consistency window at the cost of framing overhead.
	FlushEveryChunks uint64
	// RetainCheckpoints, when > 0, turns StreamRecord into a flight
	// recorder: only the last RetainCheckpoints checkpoint intervals are
	// retained (older epochs are garbage-collected), so an always-on
	// recording runs at fixed disk cost. The stream then replays from
	// its oldest surviving checkpoint rather than program start. Only
	// meaningful with CheckpointEveryInstrs, since the window rolls at
	// checkpoint boundaries; ignored by Record, which keeps no stream.
	RetainCheckpoints uint64
	// CompressStream LZ-compresses the segmented stream's chunk and
	// input batches (StreamRecord only). Streams written with it need a
	// post-v2 reader; leave it off when the stream must stay readable by
	// older tooling.
	CompressStream bool
	// CaptureSignatures keeps each chunk's serialized read/write Bloom
	// signatures in the recording, enabling the offline race detector
	// (Races). Off by default: the signatures are an analysis artefact,
	// not part of the replay log, and are excluded from log-volume and
	// overhead accounting.
	CaptureSignatures bool
}

func (o Options) config(mode machine.RecordingMode) (machine.Config, error) {
	cfg := machine.DefaultConfig()
	cfg.Mode = mode
	if o.Cores > 0 {
		cfg.Cores = o.Cores
	}
	cfg.Threads = o.Threads
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	cfg.KernelSeed = o.KernelSeed
	if cfg.KernelSeed == 0 {
		cfg.KernelSeed = cfg.Seed + 1
	}
	if o.TimeSliceInstrs != 0 {
		cfg.TimeSliceInstrs = o.TimeSliceInstrs
	}
	cfg.SignalPeriodInstrs = o.SignalPeriodInstrs
	cfg.CheckpointEveryInstrs = o.CheckpointEveryInstrs
	cfg.FlushEveryChunks = o.FlushEveryChunks
	cfg.RetainCheckpoints = o.RetainCheckpoints
	cfg.CompressStream = o.CompressStream
	cfg.CaptureSignatures = o.CaptureSignatures
	if o.Encoding != "" {
		var found bool
		for _, e := range chunk.Encodings() {
			if e.Name() == o.Encoding {
				cfg.Encoding = e
				found = true
			}
		}
		if !found {
			return cfg, fmt.Errorf("quickrec: unknown encoding %q", o.Encoding)
		}
	}
	return cfg, nil
}

// WorkloadInfo describes one catalogue entry.
type WorkloadInfo struct {
	Name        string
	Kind        string // "splash" or "micro"
	Description string
}

// Workloads lists the evaluation suite: the SPLASH-2-like kernels the
// paper measures plus microbenchmarks isolating single behaviours.
func Workloads() []WorkloadInfo {
	var out []WorkloadInfo
	for _, s := range workload.Suite() {
		out = append(out, WorkloadInfo{Name: s.Name, Kind: s.Kind, Description: s.Description})
	}
	return out
}

// BuildWorkload constructs a catalogue workload for the given thread
// count (1, 2, 4 and 8 are valid for every workload).
func BuildWorkload(name string, threads int) (*Program, error) {
	spec, ok := workload.ByName(name)
	if !ok {
		return nil, fmt.Errorf("quickrec: unknown workload %q (see Workloads())", name)
	}
	return spec.Build(threads), nil
}

// Record runs prog with recording enabled and returns the replayable
// recording. Recording.RecordStats carries the run's measurements.
func Record(prog *Program, opts Options) (*Recording, error) {
	mode := machine.ModeFull
	if opts.HardwareOnly {
		mode = machine.ModeHardwareOnly
	}
	cfg, err := opts.config(mode)
	if err != nil {
		return nil, err
	}
	return core.Record(prog, cfg)
}

// Native runs prog with recording off, for overhead baselines. The same
// Options (and Seed) produce the identical interleaving Record sees.
func Native(prog *Program, opts Options) (*RunStats, error) {
	cfg, err := opts.config(machine.ModeOff)
	if err != nil {
		return nil, err
	}
	return machine.New(prog, cfg).Run()
}

// Replay re-executes a recording against the same program and returns
// the reconstructed state.
func Replay(prog *Program, rec *Recording) (*ReplayResult, error) {
	return core.Replay(prog, rec)
}

// ReplayParallel is Replay on a bounded worker pool: a recording made
// with Options.CheckpointEveryInstrs is partitioned at its checkpoints
// into independent intervals that replay concurrently, each validated
// against the next checkpoint's state (see docs/INTERNALS.md §12).
// workers 0 or 1 replays serially; negative selects
// runtime.GOMAXPROCS(0). The result is identical to serial Replay for
// every worker count; a recording without checkpoints replays serially
// regardless.
func ReplayParallel(prog *Program, rec *Recording, workers int) (*ReplayResult, error) {
	return core.ReplayWorkers(prog, rec, workers)
}

// Verify checks that a replay reproduced its recording exactly: final
// memory image, program output, per-thread instruction counts and
// architectural state.
func Verify(rec *Recording, rr *ReplayResult) error { return core.Verify(rec, rr) }

// RecordAndVerify is the end-to-end contract in one call.
func RecordAndVerify(prog *Program, opts Options) (*Recording, *ReplayResult, error) {
	rec, err := Record(prog, opts)
	if err != nil {
		return nil, nil, err
	}
	rr, err := Replay(prog, rec)
	if err != nil {
		return rec, nil, err
	}
	return rec, rr, Verify(rec, rr)
}

// LoadRecording parses a recording serialized with Recording.Marshal.
// The recording owns its memory; data may be discarded afterwards.
func LoadRecording(data []byte) (*Recording, error) { return core.UnmarshalBundle(data) }

// OpenRecording maps a recording file read-only and decodes it in
// place: logs and payloads alias the mapping, so nothing is copied.
// The returned close function unmaps the file; the recording must not
// be used after calling it.
func OpenRecording(path string) (*Recording, func() error, error) {
	return core.OpenBundleFile(new(core.BundleDecoder), path)
}

// PauseState is the machine state replay materialised at a breakpoint.
type PauseState = replay.PauseState

// ReplayUntil replays a recording up to "thread tid, retired-instruction
// count n" and returns the paused machine state — the primitive behind
// record-and-replay debugging: any moment of a recorded execution can be
// revisited deterministically.
func ReplayUntil(prog *Program, rec *Recording, tid int, n uint64) (*PauseState, error) {
	if prog.Name != rec.ProgramName {
		return nil, fmt.Errorf("quickrec: recording is of %q, not %q", rec.ProgramName, prog.Name)
	}
	return core.ReplayUntil(prog, rec, tid, n)
}

// TraceEntry is one executed instruction of a traced thread.
type TraceEntry = replay.TraceEntry

// Trace replays a recording and captures thread tid's executed
// instruction stream over the retired-count window (from, to] —
// deterministic execution history for debugging.
func Trace(prog *Program, rec *Recording, tid int, from, to uint64) ([]TraceEntry, error) {
	return core.Trace(prog, rec, tid, from, to)
}

// ConformanceConfig parameterises a Conformance run; the zero value
// (filled with defaults) is the acceptance matrix run with seed 0 —
// every Seed value is honored as-is, zero included. Workload entries
// are catalogue names, or "fuzz:<seed>" for a generated program.
type ConformanceConfig = harness.Config

// ConformanceReport is a conformance run's findings: metamorphic
// property results and the per-(workload, cores, fault class) coverage
// cells. Report.OK() decides pass/fail; Report.String() renders the
// triage table.
type ConformanceReport = harness.Report

// Conformance runs the differential record/replay conformance matrix:
// metamorphic properties (record twice → identical bytes, replay
// reproduces the recorded state, recordings survive serialization,
// replay is deterministic) plus systematic single-fault corruption of
// the serialized logs, asserting every material fault is detected
// explicitly — at decode, replay or verify — and never accepted
// silently. The returned error covers misconfiguration only; detection
// findings live in the report. cmd/quickconform is the CLI face.
func Conformance(cfg ConformanceConfig) (*ConformanceReport, error) { return harness.Run(cfg) }

// RaceReport is the offline race detector's output: the screened
// candidate chunk pairs, the confirmed instruction-level races, and the
// signatures' measured false-positive rate.
type RaceReport = races.Report

// RaceCandidate is one signature-screened chunk pair.
type RaceCandidate = races.Candidate

// RaceFinding is one confirmed instruction-level data race: two
// accesses to the same address from different threads, at least one a
// write, with no happens-before path between them.
type RaceFinding = races.Race

// ErrNoSignatures reports a recording made without
// Options.CaptureSignatures to the race detector.
var ErrNoSignatures = races.ErrNoSignatures

// Races runs the offline two-phase data-race detector over a recording
// made with Options.CaptureSignatures. Phase one screens
// Lamport-concurrent chunk pairs through their Bloom signatures without
// re-executing anything; phase two replays the recording with access
// tracing and keeps only the conflicting access pairs no happens-before
// edge orders. Bloom filters admit false positives but never false
// negatives, so confirmation only shrinks the candidate set — see
// docs/INTERNALS.md §11.
func Races(prog *Program, rec *Recording) (*RaceReport, error) {
	return races.Detect(prog, rec)
}

// RacesParallel is Races with the screening and confirmation phases
// fanned out over a bounded worker pool (workers 0 or 1: serial,
// negative: runtime.GOMAXPROCS(0)). The report is identical to the
// serial detector's for every worker count.
func RacesParallel(prog *Program, rec *Recording, workers int) (*RaceReport, error) {
	return races.DetectWorkers(prog, rec, workers)
}

// FleetClient distributes replay and race detection across remote
// worker processes (quickrecd worker) attached to an ingest server's
// job broker. Client.Replay and Client.Races upload the recording to
// the server's content-addressed store once, then ship per-interval,
// per-block and per-slice job envelopes naming it by digest; results
// are bit-identical to the serial Replay and Races for any worker
// count, and a worker that dies or stalls mid-job only costs latency —
// its jobs are re-dispatched to surviving peers. See
// docs/INTERNALS.md §17.
type FleetClient = fleet.Client

// DialFleet attaches to a fleet server (quickrecd serve) as a job
// submitter. The returned client is also a dispatch executor; it is
// not safe for concurrent use.
func DialFleet(addr string) (*FleetClient, error) { return fleet.Dial(addr) }

// Tail derives the flight-recorder bundle from a recording made with
// Options.CheckpointEveryInstrs: the last checkpoint plus only the log
// entries after it. The tail replays and verifies to the same final
// state as the full recording, with bounded log volume — the mechanism
// behind always-on RnR.
func Tail(rec *Recording) (*Recording, error) { return core.Tail(rec) }

// StreamRecord records prog while streaming the session to w as a
// segmented, checksummed log stream (see docs/INTERNALS.md §10). The
// returned recording is the same one Record would produce; the stream is
// its crash-consistent twin — if the recorder dies mid-run, Salvage
// recovers a consistent, replayable prefix from whatever reached w.
func StreamRecord(prog *Program, opts Options, w io.Writer) (*Recording, error) {
	mode := machine.ModeFull
	if opts.HardwareOnly {
		mode = machine.ModeHardwareOnly
	}
	cfg, err := opts.config(mode)
	if err != nil {
		return nil, err
	}
	return core.StreamRecord(prog, cfg, w)
}

// Salvaged is a recording recovered from a (possibly damaged) segmented
// stream: the reconstructed Recording (Partial when the stream was
// torn), the salvage report, and — via Tail — the flight-recorder tail
// when a checkpoint survived.
type Salvaged = core.Salvaged

// SalvageReport describes what a salvage pass kept and why it stopped.
type SalvageReport = segment.Report

// Salvage scans a segmented stream written by StreamRecord (typically
// read back from disk after a crash), discards any torn or corrupt
// suffix, and reconstructs the longest consistent recording prefix. It
// errors only when no usable manifest exists; lesser damage yields a
// Partial recording whose replay stops where the logs run out
// (ReplayResult.Truncation says where) and which Verify rejects, since
// there is no reference final state to verify against.
func Salvage(data []byte) (*Salvaged, error) { return core.SalvageStream(data) }

// TruncatedReplay describes where a best-effort prefix replay of a
// Partial recording ran out of log.
type TruncatedReplay = replay.TruncatedReplay

// CrashConfig parameterises CrashConformance; the zero value (filled
// with defaults) is the acceptance sweep.
type CrashConfig = harness.CrashConfig

// CrashConformance sweeps simulated recorder crashes over segmented
// streams: cuts at every segment boundary, random intra-segment torn
// writes, and single-bit corruption. Every crash point must produce an
// explicit typed decode error or a verified prefix replay — never a
// silent wrong replay. Findings land in a ConformanceReport.
func CrashConformance(cfg CrashConfig) (*ConformanceReport, error) { return harness.CrashSweep(cfg) }
