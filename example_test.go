package quickrec_test

import (
	"fmt"
	"log"

	quickrec "repro"
)

// Example records a catalogue workload, replays it from the logs alone,
// and verifies the replay is bit-exact — the library's core loop.
func Example() {
	prog, err := quickrec.BuildWorkload("radix", 4)
	if err != nil {
		log.Fatal(err)
	}
	rec, err := quickrec.Record(prog, quickrec.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	rr, err := quickrec.Replay(prog, rec)
	if err != nil {
		log.Fatal(err)
	}
	if err := quickrec.Verify(rec, rr); err != nil {
		log.Fatal(err)
	}
	fmt.Println("replay verified:", rr.MemChecksum == rec.MemChecksum)
	// Output: replay verified: true
}

// ExampleParseProgram assembles a program from qasm text and runs the
// record→replay→verify round trip on it.
func ExampleParseProgram() {
	prog, err := quickrec.ParseProgram(`
.name tiny
.threads 2
.alloc counter 1
        li   r3, @counter
        li   r4, 0
        li   r6, 1
loop:   fadd r7, [r3+0], r6
        addi r4, r4, 1
        li   r5, 50
        bne  r4, r5, loop
        halt
`)
	if err != nil {
		log.Fatal(err)
	}
	_, rr, err := quickrec.RecordAndVerify(prog, quickrec.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(prog.Name, "verified; final counter =", rr.FinalMem.Load(prog.Symbol("counter")))
	// Output: tiny verified; final counter = 100
}

// ExampleReplayUntil pauses a recorded execution at an exact thread
// position — deterministic time travel.
func ExampleReplayUntil() {
	prog, _ := quickrec.BuildWorkload("counter", 4)
	rec, err := quickrec.Record(prog, quickrec.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	ps, err := quickrec.ReplayUntil(prog, rec, 2, 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("thread 2 paused after", ps.Contexts[2].Retired, "instructions; hit:", ps.Hit)
	// Output: thread 2 paused after 1000 instructions; hit: true
}

// ExampleTail shows the flight-recorder extension: a checkpointed
// recording's tail bundle replays to the same final state with most of
// the log discarded.
func ExampleTail() {
	prog, _ := quickrec.BuildWorkload("fft", 4)
	rec, err := quickrec.Record(prog, quickrec.Options{Seed: 21, CheckpointEveryInstrs: 100_000})
	if err != nil {
		log.Fatal(err)
	}
	tail, err := quickrec.Tail(rec)
	if err != nil {
		log.Fatal(err)
	}
	rr, err := quickrec.Replay(prog, tail)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tail verified:", quickrec.Verify(tail, rr) == nil)
	// Output: tail verified: true
}
