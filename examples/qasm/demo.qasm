; demo.qasm — a bank with a lost-update race, written in the textual
; assembly format. Record it with:
;
;   go run ./cmd/quickrec record -prog examples/qasm/demo.qasm -o demo.qrec
;
; then verify / debug / analyze the recording. The same file also runs
; through examples/qasm/main.go.
.name qasm-bank
.threads 4
.alloc balance 1
.alloc lock 1
.alloc bar 2

        li   r3, @balance
        li   r5, 0                 ; deposits made
        li   r8, 250               ; deposits per thread

        ; Even threads deposit under the lock; odd threads race (bug!).
        andi r6, r1, 1
        bne  r6, r0, racer

locked: li   r7, @lock
        plock r7
        ld   r6, [r3+0]
        addi r6, r6, 1
        st   [r3+0], r6
        li   r7, @lock
        punlock r7
        addi r5, r5, 1
        bne  r5, r8, locked
        jmp  join

racer:  ld   r6, [r3+0]            ; unlocked read-modify-write
        addi r6, r6, 1
        st   [r3+0], r6
        addi r5, r5, 1
        bne  r5, r8, racer

join:   li   r9, @bar
        pbarrier r9

        ; Thread 0 reports the final balance on fd 1.
        bne  r1, r0, done
        ld   r6, [r3+0]
        st   [r29+0], r6
        li   r10, 2                ; SysWrite
        li   r11, 1
        mov  r12, r29
        li   r13, 8
        syscall
done:   halt
