// Qasm: programs for the simulated machine can be written in a textual
// assembly format and recorded/replayed without any Go — this example
// loads demo.qasm (a bank with a partially locked, racy deposit path),
// records a run, shows the lost updates, and proves the replay is exact.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"os"
	"path/filepath"

	quickrec "repro"
)

func main() {
	path := filepath.Join("examples", "qasm", "demo.qasm")
	if len(os.Args) > 1 {
		path = os.Args[1]
	}
	src, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := quickrec.ParseProgram(string(src))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled %q: %d instructions, %d threads\n",
		prog.Name, len(prog.Code), prog.DefaultThreads)

	rec, err := quickrec.Record(prog, quickrec.Options{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	balance := binary.LittleEndian.Uint64(rec.Output)
	const want = 4 * 250
	fmt.Printf("final balance: %d of %d deposits retained", balance, want)
	if balance != want {
		fmt.Printf(" -> the odd threads' unlocked deposits raced and were lost\n")
	} else {
		fmt.Printf(" (this schedule got lucky; try another seed)\n")
	}

	rr, err := quickrec.Replay(prog, rec)
	if err != nil {
		log.Fatal(err)
	}
	if err := quickrec.Verify(rec, rr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replay reproduced the run exactly (balance %d, checksum %#x)\n",
		binary.LittleEndian.Uint64(rr.Output), rr.MemChecksum)
	fmt.Println("the same .qasm file works with: go run ./cmd/quickrec record -prog", path, "-o demo.qrec")
}
