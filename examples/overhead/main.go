// Overhead: reproduce the paper's headline measurement interactively —
// for each SPLASH-2-like kernel, compare a native run with hardware-only
// recording and with the full Capo3 software stack on the identical
// interleaving, and break the software cost down by component.
package main

import (
	"fmt"
	"log"

	quickrec "repro"
)

var kernels = []string{"barnes", "fft", "lu", "ocean", "radix", "raytrace", "volrend", "water"}

func main() {
	const seed = 7
	fmt.Println("workload   native-cycles  hw-only   full-stack   dominated-by")
	var sumFull float64
	for _, name := range kernels {
		prog, err := quickrec.BuildWorkload(name, 4)
		if err != nil {
			log.Fatal(err)
		}
		native, err := quickrec.Native(prog, quickrec.Options{Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
		hw, err := quickrec.Record(prog, quickrec.Options{Seed: seed, HardwareOnly: true})
		if err != nil {
			log.Fatal(err)
		}
		full, err := quickrec.Record(prog, quickrec.Options{Seed: seed})
		if err != nil {
			log.Fatal(err)
		}

		n := float64(native.Cycles)
		hwPct := 100 * (float64(hw.RecordStats.Cycles) - n) / n
		fullPct := 100 * (float64(full.RecordStats.Cycles) - n) / n
		sumFull += fullPct

		fmt.Printf("%-10s %13d  %6.2f%%  %9.2f%%   %s\n",
			name, native.Cycles, hwPct, fullPct, dominant(full))
	}
	fmt.Printf("\naverage full-stack overhead: %.1f%% (the paper reports ~13%%)\n",
		sumFull/float64(len(kernels)))
	fmt.Println("hardware-only recording is essentially free; the software stack is the cost")
}

// dominant says whether the hardware or the software stack contributed
// more of the recording cycles.
func dominant(rec *quickrec.Recording) string {
	acct := rec.RecordStats.Acct
	sw := acct.SoftwareRecordingTotal()
	if acct.RecordingTotal()-sw > sw {
		return "hardware log writes"
	}
	return "software stack (driver + input logging)"
}
