// Loginspector: look inside a QuickRec recording — per-thread chunk
// streams with timestamps and termination reasons, the serialized sizes
// under each encoding, and the input log's records. This is the raw
// material the replayer consumes.
package main

import (
	"fmt"
	"log"

	quickrec "repro"
)

func main() {
	prog, err := quickrec.BuildWorkload("pingpong", 2)
	if err != nil {
		log.Fatal(err)
	}
	rec, err := quickrec.Record(prog, quickrec.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("recording of %q, %d threads\n\n", rec.ProgramName, rec.Threads)
	for tid, lg := range rec.ChunkLogs {
		fmt.Printf("thread %d: %d chunks covering %d instructions\n",
			tid, lg.Len(), lg.TotalInstructions())
		// Show the first few chunks verbatim.
		for i, e := range lg.Entries {
			if i == 8 {
				fmt.Printf("  ... %d more\n", lg.Len()-8)
				break
			}
			fmt.Printf("  %s\n", e)
		}
	}

	fmt.Printf("\ninput log: %d records, %d data bytes\n",
		rec.InputLog.Len(), rec.InputLog.DataBytes())
	for i, r := range rec.InputLog.Records {
		if i == 6 {
			fmt.Printf("  ... %d more\n", rec.InputLog.Len()-6)
			break
		}
		fmt.Printf("  %s\n", r)
	}

	// Serialized footprint: the whole recording in one bundle.
	data := rec.Marshal()
	fmt.Printf("\nserialized bundle: %d bytes (replayable artifact)\n", len(data))
	reloaded, err := quickrec.LoadRecording(data)
	if err != nil {
		log.Fatal(err)
	}
	rr, err := quickrec.Replay(prog, reloaded)
	if err != nil {
		log.Fatal(err)
	}
	if err := quickrec.Verify(reloaded, rr); err != nil {
		log.Fatal(err)
	}
	fmt.Println("reloaded bundle replays and verifies cleanly")
}
