// Quickstart: record a SPLASH-2-like workload on the simulated QuickRec
// prototype, replay the logs, and verify the replay reproduced the
// execution exactly.
package main

import (
	"fmt"
	"log"

	quickrec "repro"
)

func main() {
	// Build the radix-sort kernel for 4 threads (the prototype's core
	// count) and record one execution. The seed picks the interleaving.
	prog, err := quickrec.BuildWorkload("radix", 4)
	if err != nil {
		log.Fatal(err)
	}
	rec, err := quickrec.Record(prog, quickrec.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	st := rec.RecordStats
	fmt.Printf("recorded %q: %d instructions, %d cycles, %d syscalls\n",
		rec.ProgramName, st.Retired, st.Cycles, st.Syscalls)
	fmt.Printf("logs: %d B chunk log + %d B input log across %d threads\n",
		st.Session.ChunkBytes(), st.Session.InputBytes(), rec.Threads)

	// How much did recording cost? Re-run the same interleaving natively.
	native, err := quickrec.Native(prog, quickrec.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recording overhead: %.1f%% (hardware share %.2f%%)\n",
		100*float64(st.Cycles-native.Cycles)/float64(native.Cycles),
		100*float64(st.Acct.RecordingTotal()-st.Acct.SoftwareRecordingTotal())/float64(native.Cycles))

	// Replay deterministically from the logs alone and verify.
	rr, err := quickrec.Replay(prog, rec)
	if err != nil {
		log.Fatal(err)
	}
	if err := quickrec.Verify(rec, rr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replay: %d chunks + %d input records -> identical final state (checksum %#x)\n",
		rr.ChunksExecuted, rr.InputsApplied, rr.MemChecksum)
}
