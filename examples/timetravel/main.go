// Timetravel: the two extensions built on the QuickRec substrate —
// flight-recorder checkpointing (always-on recording with bounded logs)
// and breakpoint replay (materialise any moment of a recorded execution,
// deterministically, as often as you like).
package main

import (
	"fmt"
	"log"

	quickrec "repro"
)

func main() {
	prog, err := quickrec.BuildWorkload("fft", 4)
	if err != nil {
		log.Fatal(err)
	}

	// Record with flight-recorder checkpoints every ~100k instructions.
	rec, err := quickrec.Record(prog, quickrec.Options{
		Seed:                  21,
		CheckpointEveryInstrs: 100_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fullChunks := 0
	for _, l := range rec.ChunkLogs {
		fullChunks += l.Len()
	}
	fmt.Printf("recorded fft: %d instructions, %d chunk entries, %d checkpoints taken\n",
		rec.RecordStats.Retired, fullChunks, rec.RecordStats.Checkpoints)

	// The tail bundle: last checkpoint + only the logs after it.
	tail, err := quickrec.Tail(rec)
	if err != nil {
		log.Fatal(err)
	}
	tailChunks := 0
	for _, l := range tail.ChunkLogs {
		tailChunks += l.Len()
	}
	fmt.Printf("flight-recorder tail: %d chunk entries (%.0f%% of the full log discarded)\n",
		tailChunks, 100*(1-float64(tailChunks)/float64(fullChunks)))
	rr, err := quickrec.Replay(prog, tail)
	if err != nil {
		log.Fatal(err)
	}
	if err := quickrec.Verify(tail, rr); err != nil {
		log.Fatal(err)
	}
	fmt.Println("tail replays to the identical final state: always-on recording works")

	// Time travel: pause thread 2 at three positions and watch its
	// accumulator (R15 holds fft's transpose accumulator) evolve.
	fmt.Println("\nstepping thread 2 through the recording:")
	for _, pos := range []uint64{1000, 50_000, 200_000} {
		ps, err := quickrec.ReplayUntil(prog, rec, 2, pos)
		if err != nil {
			log.Fatal(err)
		}
		if !ps.Hit {
			fmt.Printf("  position %7d: past end of thread\n", pos)
			continue
		}
		ctx := ps.Contexts[2]
		fmt.Printf("  position %7d: PC=%3d next=%q acc(r15)=%#x\n",
			pos, ctx.PC, prog.Code[ctx.PC].String(), ctx.Regs[15])
	}
	fmt.Println("every pause is bit-identical on every visit — a recorded execution is a debuggable artifact")
}
