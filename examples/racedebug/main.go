// Racedebug: the paper's motivating use case. A program with an
// atomicity bug (unlocked read-modify-write on a shared balance) fails
// only under some interleavings. We hunt for a failing schedule, record
// it with QuickRec, and then replay the *same failure* deterministically
// as many times as we like — turning a heisenbug into a repeatable one.
package main

import (
	"fmt"
	"log"

	quickrec "repro"
)

const (
	threads = 4
	iters   = 200
	deposit = 1
)

// buggyBank builds a program where every thread "deposits" into a shared
// balance with a plain load/add/store — the classic lost-update race.
func buggyBank() *quickrec.Program {
	var lay quickrec.Layout
	balance := lay.AllocWords(1)

	b := quickrec.NewBuilder("buggy-bank")
	b.Liu(quickrec.R3, balance)
	b.Li(quickrec.R4, 0)
	b.Li(quickrec.R5, iters)
	b.Label("loop")
	b.Ld(quickrec.R6, quickrec.R3, 0) // read balance
	b.Addi(quickrec.R6, quickrec.R6, deposit)
	b.St(quickrec.R3, 0, quickrec.R6) // write back (racy!)
	b.Addi(quickrec.R4, quickrec.R4, 1)
	b.Bne(quickrec.R4, quickrec.R5, "loop")
	b.Halt()
	prog := b.Build(lay.Size(), threads, nil)
	prog.Symbols["balance"] = balance
	return prog
}

// balanceOf replays a recording and reads the final balance out of the
// replayed memory image.
func balanceOf(prog *quickrec.Program, rec *quickrec.Recording) uint64 {
	rr, err := quickrec.Replay(prog, rec)
	if err != nil {
		log.Fatal(err)
	}
	if err := quickrec.Verify(rec, rr); err != nil {
		log.Fatal(err)
	}
	return rr.FinalMem.Load(prog.Symbol("balance"))
}

func main() {
	prog := buggyBank()
	want := uint64(threads * iters * deposit)
	fmt.Printf("buggy-bank: %d threads x %d unlocked deposits, expected balance %d\n",
		threads, iters, want)

	// Hunt: try schedules until one loses deposits.
	var failing *quickrec.Recording
	var failSeed, failBalance uint64
	for seed := uint64(1); seed <= 50; seed++ {
		rec, err := quickrec.Record(prog, quickrec.Options{Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
		if got := balanceOf(prog, rec); got != want {
			failing, failSeed, failBalance = rec, seed, got
			break
		}
	}
	if failing == nil {
		fmt.Println("no failing schedule in 50 seeds (unusual); try more")
		return
	}
	fmt.Printf("seed %d: balance %d != %d -> lost updates! failure recorded (%d chunk-log bytes)\n",
		failSeed, failBalance, want, failing.RecordStats.Session.ChunkBytes())

	// Replay the captured failure three times: the bug reproduces
	// identically every time, byte for byte.
	for i := 1; i <= 3; i++ {
		got := balanceOf(prog, failing)
		fmt.Printf("replay %d: balance %d reproduced exactly\n", i, got)
		if got != failBalance {
			log.Fatalf("replay diverged: %d != %d", got, failBalance)
		}
	}
	fmt.Println("the heisenbug is now a deterministic, debuggable bug")
}
