package quickrec_test

import (
	"testing"

	quickrec "repro"
)

// Tests for the always-on extensions through the public API.

func TestTailThroughPublicAPI(t *testing.T) {
	prog, err := quickrec.BuildWorkload("lu", 4)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := quickrec.Record(prog, quickrec.Options{Seed: 8, CheckpointEveryInstrs: 80_000})
	if err != nil {
		t.Fatal(err)
	}
	if rec.RecordStats.Checkpoints == 0 {
		t.Fatal("no checkpoints taken")
	}
	tail, err := quickrec.Tail(rec)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := quickrec.Replay(prog, tail)
	if err != nil {
		t.Fatal(err)
	}
	if err := quickrec.Verify(tail, rr); err != nil {
		t.Fatal(err)
	}
	// Tail bundles survive serialization too.
	loaded, err := quickrec.LoadRecording(tail.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	rr2, err := quickrec.Replay(prog, loaded)
	if err != nil {
		t.Fatal(err)
	}
	if err := quickrec.Verify(loaded, rr2); err != nil {
		t.Fatal(err)
	}
}

func TestTailWithoutCheckpointsErrors(t *testing.T) {
	prog, _ := quickrec.BuildWorkload("counter", 2)
	rec, err := quickrec.Record(prog, quickrec.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := quickrec.Tail(rec); err == nil {
		t.Error("Tail without checkpoints succeeded")
	}
}

func TestReplayUntilThroughPublicAPI(t *testing.T) {
	prog, _ := quickrec.BuildWorkload("radix", 4)
	rec, err := quickrec.Record(prog, quickrec.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ps, err := quickrec.ReplayUntil(prog, rec, 3, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !ps.Hit || ps.Contexts[3].Retired != 1000 {
		t.Errorf("pause at %d (hit=%v), want 1000", ps.Contexts[3].Retired, ps.Hit)
	}
	// Wrong program rejected.
	other, _ := quickrec.BuildWorkload("counter", 4)
	if _, err := quickrec.ReplayUntil(other, rec, 3, 1000); err == nil {
		t.Error("breakpoint replay against wrong program succeeded")
	}
}
