// Command quickconform runs the record/replay conformance matrix:
// metamorphic properties over the workload catalogue plus systematic
// single-fault corruption of serialized chunk and input logs, asserting
// that every material fault is detected explicitly — at decode, replay
// or verify — and never accepted silently.
//
// Usage:
//
//	quickconform                          # the full acceptance matrix
//	quickconform -workloads counter,fuzz:7 -cores 1,2 -mutations 6
//	quickconform -faults bit-flip,drop -seed 3
//	quickconform -crash                   # add the stream crash/torn-write sweep
//	quickconform -list                    # show fault classes and exit
//
// The process exits 0 when the matrix passes (no silent divergence, no
// metamorphic failure) and 1 when it does not.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	quickrec "repro"
	"repro/internal/harness"
)

func main() {
	var (
		workloads = flag.String("workloads", "", "comma-separated workload names; fuzz:<seed> generates a program (default: acceptance set)")
		cores     = flag.String("cores", "", "comma-separated core counts to sweep (default 1,2,4)")
		threads   = flag.Int("threads", 0, "threads per workload (default 4)")
		faults    = flag.String("faults", "", "comma-separated fault classes (default all; see -list)")
		mutations = flag.Int("mutations", 0, "material faults to place per matrix cell (default 12)")
		reroll    = flag.Int("reroll", 0, "site re-roll budget per mutation slot (default 24)")
		seed      = flag.Uint64("seed", 1, "seed for schedules and injection sites; 0 is a valid seed")
		skipMeta  = flag.Bool("skip-meta", false, "skip the metamorphic property pass")
		crash     = flag.Bool("crash", false, "also sweep recorder crashes over segmented streams (torn writes + bit flips)")
		list      = flag.Bool("list", false, "list fault classes and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("fault classes:")
		for _, c := range harness.AllFaults() {
			fmt.Printf("  %s\n", c)
		}
		fmt.Println("stream fault classes (swept with -crash):")
		fmt.Printf("  %s\n  %s\n", harness.FaultTornWrite, harness.FaultStreamCorrupt)
		return
	}

	cfg := quickrec.ConformanceConfig{
		Threads:           *threads,
		MutationsPerClass: *mutations,
		RerollBudget:      *reroll,
		Seed:              *seed,
		SkipMetamorphic:   *skipMeta,
	}
	if *workloads != "" {
		cfg.Workloads = splitList(*workloads)
	}
	if *cores != "" {
		for _, s := range splitList(*cores) {
			n, err := strconv.Atoi(s)
			if err != nil || n <= 0 {
				fatalf("bad core count %q", s)
			}
			cfg.Cores = append(cfg.Cores, n)
		}
	}
	if *faults != "" {
		for _, s := range splitList(*faults) {
			c, ok := harness.FaultByName(s)
			if !ok {
				fatalf("unknown fault class %q (see -list)", s)
			}
			cfg.Faults = append(cfg.Faults, c)
		}
	}

	rep, err := quickrec.Conformance(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	if *crash {
		ccfg := quickrec.CrashConfig{
			Workloads: cfg.Workloads, Cores: cfg.Cores, Threads: cfg.Threads, Seed: cfg.Seed,
		}
		crep, err := quickrec.CrashConformance(ccfg)
		if err != nil {
			fatalf("%v", err)
		}
		// Merge the stream cells into the triage table so torn-write and
		// stream-corrupt coverage prints alongside the log fault classes.
		rep.Cells = append(rep.Cells, crep.Cells...)
	}
	fmt.Print(rep.String())
	if !rep.OK() {
		os.Exit(1)
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "quickconform: "+format+"\n", args...)
	os.Exit(2)
}
