package main

import "testing"

func TestSplitList(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"a,b,c", []string{"a", "b", "c"}},
		{" a , b ", []string{"a", "b"}},
		{"a,,b", []string{"a", "b"}},
		{"", nil},
		{",", nil},
	}
	for _, tc := range cases {
		got := splitList(tc.in)
		if len(got) != len(tc.want) {
			t.Errorf("splitList(%q) = %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("splitList(%q)[%d] = %q, want %q", tc.in, i, got[i], tc.want[i])
			}
		}
	}
}
