// Command quickrecd is the recording-as-a-service ingest daemon: it
// accepts segmented log streams from fleets of concurrent recorders
// over TCP, shards sessions by replay-sphere (tenant) ID, lands each
// upload as a content-addressed crash-consistent bundle, and verifies
// stored bundles in the background by salvage plus deterministic
// replay.
//
// Usage:
//
// The worker mode turns the daemon into a fleet compute node: it
// attaches to a serve instance's job broker and executes distributed
// replay and race-detection jobs against bundles fetched from the
// server's store.
//
//	quickrecd serve   -addr 127.0.0.1:7070 -store /var/lib/quickrec
//	quickrecd worker  -addr 127.0.0.1:7070 -slots 4
//	quickrecd loadgen -addr 127.0.0.1:7070 -w counter -uploaders 64 -uploads 4
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/ingest"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "serve":
		err = cmdServe(args)
	case "worker":
		err = cmdWorker(args)
	case "loadgen":
		err = cmdLoadgen(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickrecd:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: quickrecd <serve|worker|loadgen> [flags]
  serve   -addr HOST:PORT -store DIR [-shards N] [-queue N] [-credit BYTES]
          [-verifiers N] [-replay-workers N] [-max-upload BYTES] [-statsz SECS]
          [-job-timeout SECS]
                                   run the ingest server; SIGINT/SIGTERM drain and
                                   print the final /statsz report
  worker  -addr HOST:PORT [-slots N]
                                   attach to a server's job broker as a fleet
                                   compute node and execute distributed replay and
                                   race-detection jobs until the server goes away
  loadgen -addr HOST:PORT -w NAME[,NAME...] [-threads N] [-uploaders N]
          [-uploads N] [-tenants N] [-torn-every N] [-attempts N]
                                   record the named workloads locally, then replay
                                   them as N concurrent uploaders against a server`)
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	cfg := ingest.DefaultConfig()
	addr := fs.String("addr", "127.0.0.1:7070", "listen address")
	store := fs.String("store", "", "content-addressed bundle store directory")
	shards := fs.Int("shards", cfg.Shards, "ingest shard workers (tenants hash onto shards)")
	queue := fs.Int("queue", cfg.QueueDepth, "per-shard queue depth (backpressure bound)")
	credit := fs.Int("credit", cfg.Credit, "per-session in-flight byte credit")
	verifiers := fs.Int("verifiers", cfg.Verifiers, "background verifier workers")
	replayW := fs.Int("replay-workers", cfg.ReplayWorkers, "parallel-replay workers per verification (0 serial, -1 all CPUs)")
	maxUpload := fs.Int("max-upload", cfg.MaxUploadBytes, "per-upload size cap in bytes")
	statsz := fs.Int("statsz", 0, "print the /statsz report every N seconds (0 = only at exit)")
	jobTimeout := fs.Int("job-timeout", 0, "fleet job straggler deadline in seconds (0 = default)")
	fs.Parse(args)
	if *store == "" {
		return fmt.Errorf("serve needs -store DIR")
	}
	cfg.Addr = *addr
	cfg.StoreDir = *store
	cfg.Shards = *shards
	cfg.QueueDepth = *queue
	cfg.Credit = *credit
	cfg.Verifiers = *verifiers
	cfg.ReplayWorkers = *replayW
	cfg.MaxUploadBytes = *maxUpload
	cfg.JobTimeout = time.Duration(*jobTimeout) * time.Second

	s, err := ingest.NewServer(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("quickrecd: listening on %s, store %s, %d shards, %d verifiers\n",
		s.Addr(), *store, *shards, *verifiers)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if *statsz > 0 {
		go func() {
			tick := time.NewTicker(time.Duration(*statsz) * time.Second)
			defer tick.Stop()
			for range tick.C {
				fmt.Print(s.Statsz())
			}
		}()
	}
	go func() {
		<-stop
		fmt.Println("quickrecd: draining")
		s.Close()
	}()
	// The accept loop always exits with an error; after a signal-driven
	// Close that is the expected shutdown path, not a fault.
	s.Serve()
	s.WaitIdle()
	fmt.Print(s.Statsz())
	return nil
}

func cmdWorker(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	addr := fs.String("addr", "", "fleet server to attach to")
	slots := fs.Int("slots", runtime.GOMAXPROCS(0), "jobs executed concurrently")
	fs.Parse(args)
	if *addr == "" {
		return fmt.Errorf("worker needs -addr")
	}
	fmt.Printf("quickrecd: worker attached to %s, %d slots\n", *addr, *slots)
	// Run returns when the server connection drops; a remote hangup is
	// the normal end of a worker's life (server drained), not a fault
	// worth a non-zero exit.
	err := (&fleet.Worker{Addr: *addr, Slots: *slots}).Run()
	if err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		return err
	}
	fmt.Println("quickrecd: worker detached")
	return nil
}

func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	addr := fs.String("addr", "", "target ingest server")
	names := fs.String("w", "counter", "comma-separated workload names to record and upload")
	threads := fs.Int("threads", 4, "thread count per recorded workload")
	uploaders := fs.Int("uploaders", 64, "concurrent uploader goroutines")
	uploads := fs.Int("uploads", 2, "uploads per uploader")
	tenants := fs.Int("tenants", 8, "distinct tenant IDs")
	tornEvery := fs.Int("torn-every", 0, "sever every N-th session mid-upload (0 = never)")
	attempts := fs.Int("attempts", 5, "attempts per upload when shed")
	fs.Parse(args)
	if *addr == "" {
		return fmt.Errorf("loadgen needs -addr")
	}

	var streams [][]byte
	var seed uint64 = 1
	for _, name := range splitComma(*names) {
		if _, ok := workload.ByName(name); !ok {
			return fmt.Errorf("unknown workload %q", name)
		}
		data, err := ingest.RecordWorkloadStream(name, *threads, seed)
		if err != nil {
			return err
		}
		streams = append(streams, data)
		seed++
	}
	tenantIDs := make([]string, *tenants)
	for i := range tenantIDs {
		tenantIDs[i] = fmt.Sprintf("sphere-%d", i)
	}

	res, err := ingest.Loadgen(ingest.LoadgenConfig{
		Addr:       *addr,
		Uploaders:  *uploaders,
		UploadsPer: *uploads,
		Tenants:    tenantIDs,
		Streams:    streams,
		Attempts:   *attempts,
		Backoff:    50 * time.Millisecond,
		TornEvery:  *tornEvery,
	})
	if err != nil {
		return err
	}
	mbps := float64(res.Bytes) / (1 << 20) / res.Elapsed.Seconds()
	fmt.Printf("loadgen: %d uploads (%d dup, %d torn, %d retries, %d failures), %d bytes in %v (%.1f MiB/s), %d distinct bundles\n",
		res.Uploads, res.Duplicates, res.Torn, res.Retries, res.Failures,
		res.Bytes, res.Elapsed.Round(time.Millisecond), mbps, len(res.Digests))
	if res.Failures > 0 {
		return fmt.Errorf("%d uploads failed", res.Failures)
	}
	return nil
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
