// Command quickrec records, replays, verifies and inspects executions of
// the catalogue workloads on the simulated QuickRec prototype.
//
// Usage:
//
//	quickrec list
//	quickrec record  -w radix -threads 4 -seed 42 -o radix.qrec
//	quickrec record  -w radix -stream radix.qstream -o radix.qrec
//	quickrec replay  -w radix -i radix.qrec
//	quickrec verify  -w radix -i radix.qrec
//	quickrec salvage -i radix.qstream -o salvaged.qrec -replay
//	quickrec inspect -i radix.qrec
//	quickrec debug   -i radix.qrec -t 1 -n 5000 -trace 10
//	quickrec analyze -i radix.qrec
//	quickrec record  -w racy -sigs -o racy.qrec
//	quickrec race    -i racy.qrec -json
//	quickrec record  -prog examples/qasm/demo.qasm -o demo.qrec
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	quickrec "repro"
	"repro/internal/analysis"
	"repro/internal/chunk"
	"repro/internal/report"
	"repro/internal/stats"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "list":
		err = cmdList()
	case "record":
		err = cmdRecord(args)
	case "replay":
		err = cmdReplay(args, false)
	case "verify":
		err = cmdReplay(args, true)
	case "salvage":
		err = cmdSalvage(args)
	case "inspect":
		err = cmdInspect(args)
	case "debug":
		err = cmdDebug(args)
	case "analyze":
		err = cmdAnalyze(args)
	case "race":
		err = cmdRace(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickrec:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: quickrec <list|record|replay|verify|salvage|inspect|debug|analyze|race> [flags]
  list                             show the workload catalogue
  record  -w NAME | -prog FILE.qasm [-threads N] [-seed S] [-hw] [-sigs] [-ckpt N] [-stream FILE [-flush N] [-window K]] -o FILE
  replay  -w NAME -i FILE [-workers N] [-remote HOST:PORT]
                                   replay a recording; -workers > 1 replays checkpoint
                                   intervals in parallel (-1 = all CPUs); -remote
                                   distributes them across a quickrecd worker fleet
  verify  -w NAME -i FILE [-workers N] [-remote HOST:PORT]
                                   replay and verify against the recording
  salvage -i FILE [-o FILE] [-replay [-workers N]] [-tail]
                                   recover a consistent prefix from a (damaged) stream
  inspect -i FILE                  summarise a recording's logs
  debug   -i FILE -t TID -n COUNT  replay to thread TID's COUNT-th instruction and dump state
  analyze -i FILE                  post-mortem statistics: chunking, conflicts, concurrency
  race    -i FILE [-json] [-workers N] [-remote HOST:PORT]
                                   offline race detection over a -sigs recording`)
}

func cmdList() error {
	t := report.Table{Title: "Workload catalogue", Columns: []string{"name", "kind", "description"}}
	for _, w := range quickrec.Workloads() {
		t.AddRow(w.Name, w.Kind, w.Description)
	}
	fmt.Print(t.String())
	return nil
}

func cmdRecord(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	name := fs.String("w", "", "workload name")
	progPath := fs.String("prog", "", "qasm program file (alternative to -w)")
	threads := fs.Int("threads", 4, "thread count")
	seed := fs.Uint64("seed", 1, "scheduler seed")
	hw := fs.Bool("hw", false, "hardware-only cost accounting")
	sigs := fs.Bool("sigs", false, "capture per-chunk Bloom signatures (enables `quickrec race`)")
	ckpt := fs.Uint64("ckpt", 0, "flight-recorder checkpoint cadence in instructions (0 = never; enables parallel replay)")
	out := fs.String("o", "", "output recording file")
	stream := fs.String("stream", "", "also write the crash-consistent segmented stream to this file")
	flush := fs.Uint64("flush", 0, "stream flush cadence in chunks (0 = default)")
	window := fs.Uint64("window", 0, "flight-recorder retention: keep only the last K checkpoint intervals of the stream (0 = keep everything; needs -stream and -ckpt)")
	compress := fs.Bool("compress", false, "LZ-compress the stream's chunk/input batches (needs -stream; streams need a post-v2 reader)")
	fs.Parse(args)
	if (*name == "" && *progPath == "") || *out == "" {
		return fmt.Errorf("record needs -w or -prog, and -o")
	}
	if *window > 0 {
		if *stream == "" {
			return fmt.Errorf("-window bounds the segmented stream; it needs -stream FILE")
		}
		if *ckpt == 0 {
			return fmt.Errorf("-window rolls at checkpoint boundaries; it needs -ckpt N")
		}
	}
	prog, err := loadProgram(*name, *progPath, *threads)
	if err != nil {
		return err
	}
	if *name == "" {
		*name = prog.Name
	}
	if *compress && *stream == "" {
		return fmt.Errorf("-compress applies to the segmented stream; it needs -stream FILE")
	}
	opts := quickrec.Options{Threads: *threads, Seed: *seed, HardwareOnly: *hw,
		CaptureSignatures: *sigs, CheckpointEveryInstrs: *ckpt, FlushEveryChunks: *flush,
		RetainCheckpoints: *window, CompressStream: *compress}
	var rec *quickrec.Recording
	if *stream != "" {
		f, err := os.Create(*stream)
		if err != nil {
			return err
		}
		rec, err = quickrec.StreamRecord(prog, opts, f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	} else if rec, err = quickrec.Record(prog, opts); err != nil {
		return err
	}
	if err := os.WriteFile(*out, rec.Marshal(), 0o644); err != nil {
		return err
	}
	st := rec.RecordStats
	fmt.Printf("recorded %s: %d threads, %d instrs, %d cycles, %d chunks, %d input records -> %s\n",
		*name, rec.Threads, st.Retired, st.Cycles, totalChunks(rec), rec.InputLog.Len(), *out)
	if *stream != "" {
		fmt.Printf("streamed %d segments, %d bytes (%d framing) -> %s\n",
			st.StreamSegments, st.StreamBytes, st.StreamFramingBytes, *stream)
	}
	return nil
}

func cmdSalvage(args []string) error {
	fs := flag.NewFlagSet("salvage", flag.ExitOnError)
	in := fs.String("i", "", "segmented stream file")
	out := fs.String("o", "", "write the salvaged recording here")
	doReplay := fs.Bool("replay", false, "best-effort replay of the salvaged prefix")
	doTail := fs.Bool("tail", false, "salvage the flight-recorder tail instead of the full prefix")
	workers := fs.Int("workers", 0, "replay checkpoint intervals on this many workers (0/1 = serial, -1 = all CPUs)")
	progPath := fs.String("prog", "", "qasm program file (for non-catalogue recordings)")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("missing -i stream file")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	sv, err := quickrec.Salvage(data)
	if err != nil {
		return fmt.Errorf("stream beyond salvage: %w", err)
	}
	fmt.Println(sv.Report)
	rec := sv.Bundle
	if *doTail {
		if rec, err = sv.Tail(); err != nil {
			return err
		}
		fmt.Println("flight-recorder tail: replay resumes from the last surviving checkpoint")
	}
	if *out != "" {
		if err := os.WriteFile(*out, rec.Marshal(), 0o644); err != nil {
			return err
		}
		kind := "complete recording"
		if rec.Partial {
			kind = "partial recording (prefix only, not verifiable)"
		}
		fmt.Printf("salvaged %s -> %s\n", kind, *out)
	}
	if !*doReplay {
		return nil
	}
	prog, err := loadProgram(rec.ProgramName, *progPath, rec.Threads)
	if err != nil {
		return err
	}
	rr, err := quickrec.ReplayParallel(prog, rec, *workers)
	if err != nil {
		return err
	}
	fmt.Printf("replayed %s: %d chunks, %d input records, %d steps\n",
		rec.ProgramName, rr.ChunksExecuted, rr.InputsApplied, rr.Steps)
	if rr.Truncation != nil {
		fmt.Printf("replay truncated: %s\n", rr.Truncation)
	}
	if !rec.Partial {
		if err := quickrec.Verify(rec, rr); err != nil {
			return err
		}
		fmt.Println("verified: replay reproduced the recorded execution exactly")
	}
	return nil
}

// loadProgram resolves the program to run against: a qasm source file
// when progPath is set, otherwise the named catalogue workload.
func loadProgram(name, progPath string, threads int) (*quickrec.Program, error) {
	if progPath != "" {
		src, err := os.ReadFile(progPath)
		if err != nil {
			return nil, err
		}
		return quickrec.ParseProgram(string(src))
	}
	return quickrec.BuildWorkload(name, threads)
}

// loadRecording maps the recording file read-only and decodes it in
// place (the v2 zero-copy path); the returned close function unmaps it
// and must outlive every use of the recording.
func loadRecording(fs *flag.FlagSet, in string) (*quickrec.Recording, func() error, error) {
	if in == "" {
		return nil, nil, fmt.Errorf("missing -i recording file")
	}
	return quickrec.OpenRecording(in)
}

func cmdReplay(args []string, verify bool) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	name := fs.String("w", "", "workload name")
	progPath := fs.String("prog", "", "qasm program file (alternative to -w)")
	in := fs.String("i", "", "recording file")
	workers := fs.Int("workers", 0, "replay checkpoint intervals on this many workers (0/1 = serial, -1 = all CPUs)")
	remote := fs.String("remote", "", "distribute intervals across the fleet workers attached to this quickrecd server instead of replaying locally")
	fs.Parse(args)
	rec, done, err := loadRecording(fs, *in)
	if err != nil {
		return err
	}
	defer done()
	if *name == "" {
		*name = rec.ProgramName
	}
	prog, err := loadProgram(*name, *progPath, rec.Threads)
	if err != nil {
		return err
	}
	var rr *quickrec.ReplayResult
	if *remote != "" {
		client, err := quickrec.DialFleet(*remote)
		if err != nil {
			return err
		}
		defer client.Close()
		rr, err = client.Replay(prog, rec)
		if err != nil {
			return err
		}
	} else if rr, err = quickrec.ReplayParallel(prog, rec, *workers); err != nil {
		return err
	}
	fmt.Printf("replayed %s: %d chunks, %d input records, %d steps\n",
		rec.ProgramName, rr.ChunksExecuted, rr.InputsApplied, rr.Steps)
	if verify {
		if err := quickrec.Verify(rec, rr); err != nil {
			return err
		}
		fmt.Println("verified: replay reproduced the recorded execution exactly")
	}
	return nil
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	in := fs.String("i", "", "recording file")
	fs.Parse(args)
	rec, done, err := loadRecording(fs, *in)
	if err != nil {
		return err
	}
	defer done()
	fmt.Printf("recording of %q: %d threads, output %d B, mem checksum %#x\n",
		rec.ProgramName, rec.Threads, len(rec.Output), rec.MemChecksum)

	t := report.Table{Title: "Per-thread logs", Columns: []string{"thread", "chunks", "instrs", "ts-delta B", "input recs"}}
	perThreadInputs := map[int]int{}
	for _, r := range rec.InputLog.Records {
		perThreadInputs[r.Thread]++
	}
	var reasons stats.Counter
	for tid, l := range rec.ChunkLogs {
		t.AddRow(report.U(uint64(tid)), report.U(uint64(l.Len())),
			report.U(l.TotalInstructions()), report.U(uint64(l.EncodedSize(chunk.Delta{}))),
			report.U(uint64(perThreadInputs[tid])))
		for _, e := range l.Entries {
			reasons.Inc(int(e.Reason))
		}
	}
	fmt.Print(t.String())

	rt := report.Table{Title: "Chunk termination reasons", Columns: []string{"reason", "count", "share"}}
	for _, k := range reasons.Keys() {
		rt.AddRow(chunk.Reason(k).String(), report.U(reasons.Get(k)), report.Pct(reasons.Fraction(k)))
	}
	fmt.Print(rt.String())
	return nil
}

func cmdDebug(args []string) error {
	fs := flag.NewFlagSet("debug", flag.ExitOnError)
	in := fs.String("i", "", "recording file")
	tid := fs.Int("t", 0, "thread ID")
	n := fs.Uint64("n", 0, "retired-instruction position")
	traceLen := fs.Uint64("trace", 0, "also show the last N instructions before the position")
	progPath := fs.String("prog", "", "qasm program file (for non-catalogue recordings)")
	fs.Parse(args)
	rec, done, err := loadRecording(fs, *in)
	if err != nil {
		return err
	}
	defer done()
	prog, err := loadProgram(rec.ProgramName, *progPath, rec.Threads)
	if err != nil {
		return err
	}
	ps, err := quickrec.ReplayUntil(prog, rec, *tid, *n)
	if err != nil {
		return err
	}
	if !ps.Hit {
		fmt.Printf("recording ended before thread %d retired %d instructions; showing final state\n", *tid, *n)
	}
	ctx := ps.Contexts[*tid]
	fmt.Printf("thread %d paused at PC %d after %d retired instructions\n", *tid, ctx.PC, ctx.Retired)
	if ctx.PC >= 0 && ctx.PC < len(prog.Code) {
		fmt.Printf("next instruction: %s\n", prog.Code[ctx.PC])
	}
	t := report.Table{Title: "Registers (non-zero)", Columns: []string{"reg", "value"}}
	for r, v := range ctx.Regs {
		if v != 0 {
			t.AddRow(fmt.Sprintf("r%d", r), fmt.Sprintf("%#x", v))
		}
	}
	fmt.Print(t.String())
	fmt.Printf("other threads:")
	for otid, octx := range ps.Contexts {
		if otid != *tid {
			fmt.Printf(" t%d@pc=%d/retired=%d", otid, octx.PC, octx.Retired)
		}
	}
	fmt.Println()
	fmt.Printf("output so far: %d bytes; items executed: %d\n", len(ps.Output), ps.ItemsExecuted)
	if *traceLen > 0 {
		from := uint64(0)
		if *n > *traceLen {
			from = *n - *traceLen
		}
		entries, err := quickrec.Trace(prog, rec, *tid, from, *n)
		if err != nil {
			return err
		}
		fmt.Printf("\nlast %d steps of thread %d:\n", len(entries), *tid)
		for _, e := range entries {
			fmt.Printf("  [%7d] pc=%-4d %s\n", e.Retired, e.PC, e.Instr)
		}
	}
	return nil
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	in := fs.String("i", "", "recording file")
	fs.Parse(args)
	rec, done, err := loadRecording(fs, *in)
	if err != nil {
		return err
	}
	defer done()
	rep := analysis.Analyze(rec.ChunkLogs, rec.InputLog)
	fmt.Printf("recording of %q: %d instructions in %d chunks + %d input records\n",
		rec.ProgramName, rep.TotalInstructions, rep.TotalChunks, rep.TotalInputs)
	fmt.Printf("recorded concurrency ~%.2f threads; replay serialization %.2f\n",
		rep.Concurrency, rep.ReplaySerialization)

	t := report.Table{Title: "Per-thread behaviour", Columns: []string{
		"thread", "chunks", "instrs", "mean chunk", "conflicts", "conf/kinstr", "syscall chunks", "inputs"}}
	for _, th := range rep.Threads {
		t.AddRow(report.U(uint64(th.Thread)), report.U(uint64(th.Chunks)),
			report.U(th.Instructions), report.F(th.MeanChunk, 1),
			report.U(uint64(th.Conflicts)), report.F(th.ConflictsPerKinstr, 2),
			report.U(uint64(th.Syscalls)), report.U(uint64(th.InputRecords)))
	}
	fmt.Print(t.String())

	rt := report.Table{Title: "Chunk termination reasons", Columns: []string{"reason", "count", "share"}}
	for _, k := range rep.Reasons.Keys() {
		rt.AddRow(chunk.Reason(k).String(), report.U(rep.Reasons.Get(k)), report.Pct(rep.Reasons.Fraction(k)))
	}
	fmt.Print(rt.String())
	return nil
}

func cmdRace(args []string) error {
	fs := flag.NewFlagSet("race", flag.ExitOnError)
	name := fs.String("w", "", "workload name")
	progPath := fs.String("prog", "", "qasm program file (alternative to -w)")
	in := fs.String("i", "", "recording file (made with record -sigs)")
	asJSON := fs.Bool("json", false, "emit the full report as JSON")
	workers := fs.Int("workers", 0, "screen and confirm on this many workers (0/1 = serial, -1 = all CPUs)")
	remote := fs.String("remote", "", "distribute screening and confirmation across the fleet workers attached to this quickrecd server")
	fs.Parse(args)
	rec, done, err := loadRecording(fs, *in)
	if err != nil {
		return err
	}
	defer done()
	if *name == "" {
		*name = rec.ProgramName
	}
	prog, err := loadProgram(*name, *progPath, rec.Threads)
	if err != nil {
		return err
	}
	var rep *quickrec.RaceReport
	if *remote != "" {
		client, err := quickrec.DialFleet(*remote)
		if err != nil {
			return err
		}
		defer client.Close()
		rep, err = client.Races(prog, rec)
		if err != nil {
			return err
		}
	} else if rep, err = quickrec.RacesParallel(prog, rec, *workers); err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Printf("race detection over %q: %d threads, %d chunks, %d concurrent pairs\n",
		rep.Program, rep.Threads, rep.TotalChunks, rep.ConcurrentPairs)
	fmt.Printf("screening: %d candidate pairs; confirmation: %d pairs with races, bloom false-positive rate %s\n",
		len(rep.Candidates), rep.ConfirmedPairs, report.Pct(rep.FalsePositiveRate))
	if len(rep.Races) == 0 {
		fmt.Println("no races confirmed")
		return nil
	}
	t := report.Table{
		Title:   fmt.Sprintf("Confirmed data races (%d)", len(rep.Races)),
		Columns: []string{"addr", "thread A", "pc A", "kind A", "thread B", "pc B", "kind B"},
	}
	for _, r := range rep.Races {
		t.AddRow(fmt.Sprintf("%#x", r.Addr),
			report.U(uint64(r.ThreadA)), report.U(uint64(r.PCA)), r.KindA,
			report.U(uint64(r.ThreadB)), report.U(uint64(r.PCB)), r.KindB)
	}
	fmt.Print(t.String())
	return nil
}

func totalChunks(rec *quickrec.Recording) int {
	n := 0
	for _, l := range rec.ChunkLogs {
		n += l.Len()
	}
	return n
}
