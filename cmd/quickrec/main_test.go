package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func writeFile(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// buildCLI compiles the command once per test binary.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "quickrec")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

func runCLI(t *testing.T, bin string, wantOK bool, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if wantOK && err != nil {
		t.Fatalf("%v: %v\n%s", args, err, out)
	}
	if !wantOK && err == nil {
		t.Fatalf("%v: expected failure, got:\n%s", args, out)
	}
	return string(out)
}

func TestCLIEndToEnd(t *testing.T) {
	bin := buildCLI(t)
	dir := t.TempDir()
	recFile := filepath.Join(dir, "counter.qrec")

	// list
	out := runCLI(t, bin, true, "list")
	for _, w := range []string{"radix", "counter", "splash", "micro"} {
		if !strings.Contains(out, w) {
			t.Errorf("list missing %q:\n%s", w, out)
		}
	}

	// record
	out = runCLI(t, bin, true, "record", "-w", "counter", "-threads", "4", "-seed", "9", "-o", recFile)
	if !strings.Contains(out, "recorded counter") {
		t.Errorf("record output: %s", out)
	}

	// inspect
	out = runCLI(t, bin, true, "inspect", "-i", recFile)
	for _, w := range []string{"Per-thread logs", "termination reasons", "counter"} {
		if !strings.Contains(out, w) {
			t.Errorf("inspect missing %q:\n%s", w, out)
		}
	}

	// replay
	out = runCLI(t, bin, true, "replay", "-i", recFile)
	if !strings.Contains(out, "replayed counter") {
		t.Errorf("replay output: %s", out)
	}

	// verify
	out = runCLI(t, bin, true, "verify", "-i", recFile)
	if !strings.Contains(out, "verified") {
		t.Errorf("verify output: %s", out)
	}
}

func TestCLIErrors(t *testing.T) {
	bin := buildCLI(t)
	runCLI(t, bin, false)                                            // no subcommand
	runCLI(t, bin, false, "frobnicate")                              // unknown subcommand
	runCLI(t, bin, false, "record", "-w", "counter")                 // missing -o
	runCLI(t, bin, false, "record", "-w", "nope", "-o", "/tmp/x")    // unknown workload
	runCLI(t, bin, false, "replay", "-i", "/does/not/exist.qrec")    // missing file
	runCLI(t, bin, false, "inspect", "-i", "/does/not/exist.qrec")   // missing file
}

func TestCLIVerifyDetectsTampering(t *testing.T) {
	bin := buildCLI(t)
	dir := t.TempDir()
	recFile := filepath.Join(dir, "x.qrec")
	runCLI(t, bin, true, "record", "-w", "pingpong", "-threads", "2", "-o", recFile)

	// Truncate the file: loading must fail cleanly.
	trunc := filepath.Join(dir, "trunc.qrec")
	data := readFile(t, recFile)
	writeFile(t, trunc, data[:len(data)-3])
	runCLI(t, bin, false, "verify", "-i", trunc)
}

func TestCLIDebug(t *testing.T) {
	bin := buildCLI(t)
	dir := t.TempDir()
	recFile := filepath.Join(dir, "c.qrec")
	runCLI(t, bin, true, "record", "-w", "counter", "-threads", "4", "-o", recFile)
	out := runCLI(t, bin, true, "debug", "-i", recFile, "-t", "1", "-n", "200")
	for _, w := range []string{"paused at PC", "Registers", "other threads"} {
		if !strings.Contains(out, w) {
			t.Errorf("debug output missing %q:\n%s", w, out)
		}
	}
	// Past-the-end breakpoint still reports final state.
	out = runCLI(t, bin, true, "debug", "-i", recFile, "-t", "0", "-n", "99999999")
	if !strings.Contains(out, "ended before") {
		t.Errorf("past-end debug output:\n%s", out)
	}
}

func TestCLIQasmProgram(t *testing.T) {
	bin := buildCLI(t)
	dir := t.TempDir()
	src := `
.name clidemo
.threads 2
.alloc counter 1
        li   r3, @counter
        li   r4, 0
        li   r6, 1
loop:   fadd r7, [r3+0], r6
        addi r4, r4, 1
        li   r5, 100
        bne  r4, r5, loop
        halt
`
	qasmFile := filepath.Join(dir, "demo.qasm")
	writeFile(t, qasmFile, []byte(src))
	recFile := filepath.Join(dir, "demo.qrec")

	out := runCLI(t, bin, true, "record", "-prog", qasmFile, "-threads", "2", "-o", recFile)
	if !strings.Contains(out, "recorded clidemo") {
		t.Errorf("record output: %s", out)
	}
	out = runCLI(t, bin, true, "verify", "-prog", qasmFile, "-i", recFile)
	if !strings.Contains(out, "verified") {
		t.Errorf("verify output: %s", out)
	}
	out = runCLI(t, bin, true, "debug", "-prog", qasmFile, "-i", recFile, "-t", "1", "-n", "50", "-trace", "4")
	if !strings.Contains(out, "paused at PC") || !strings.Contains(out, "fadd") {
		t.Errorf("debug output: %s", out)
	}
	// Bad qasm fails cleanly.
	badFile := filepath.Join(dir, "bad.qasm")
	writeFile(t, badFile, []byte("frobnicate r1\n"))
	runCLI(t, bin, false, "record", "-prog", badFile, "-o", recFile)
}

func TestCLIAnalyze(t *testing.T) {
	bin := buildCLI(t)
	dir := t.TempDir()
	recFile := filepath.Join(dir, "a.qrec")
	runCLI(t, bin, true, "record", "-w", "radiosity", "-threads", "4", "-o", recFile)
	out := runCLI(t, bin, true, "analyze", "-i", recFile)
	for _, w := range []string{"recorded concurrency", "Per-thread behaviour", "termination reasons"} {
		if !strings.Contains(out, w) {
			t.Errorf("analyze missing %q:\n%s", w, out)
		}
	}
	runCLI(t, bin, false, "analyze", "-i", "/does/not/exist")
}
