package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildBench(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "quickbench")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

func TestBenchList(t *testing.T) {
	bin := buildBench(t)
	out, err := exec.Command(bin, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, id := range []string{"T1", "T2", "F1", "F8", "A3"} {
		if !strings.Contains(string(out), id) {
			t.Errorf("list missing %s:\n%s", id, out)
		}
	}
}

func TestBenchSingleExperiment(t *testing.T) {
	bin := buildBench(t)
	out, err := exec.Command(bin, "-exp", "T1", "-threads", "1,2").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Prototype configuration") {
		t.Errorf("T1 output:\n%s", out)
	}
}

func TestBenchBadArgs(t *testing.T) {
	bin := buildBench(t)
	if out, err := exec.Command(bin, "-exp", "Z9").CombinedOutput(); err == nil {
		t.Errorf("unknown experiment accepted:\n%s", out)
	}
	if out, err := exec.Command(bin, "-threads", "zero").CombinedOutput(); err == nil {
		t.Errorf("bad thread list accepted:\n%s", out)
	}
}
