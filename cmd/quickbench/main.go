// Command quickbench regenerates the paper's evaluation: every table
// and figure reconstructed in DESIGN.md's experiment index, printed as
// aligned text.
//
// Usage:
//
//	quickbench                 # run everything
//	quickbench -exp F1         # one experiment (T1 T2 F1..F8 A1..A9)
//	quickbench -exp A8 -workers 8
//	                           # parallel-replay speedup on 8 workers
//	quickbench -threads 1,2,4  # thread sweep
//	quickbench -seed 7         # scheduler seed
//	quickbench -list           # list experiments
//	quickbench -baseline internal/harness/BENCH_baseline.json
//	                           # rewrite the regression-guard baseline
//	quickbench -shootout ioheavy
//	                           # serialization shootout on one workload
//	quickbench -shootout ioheavy -format v2
//	                           # only the v2 codecs' rows
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/harness"
)

func main() {
	exp := flag.String("exp", "", "experiment ID to run (default: all)")
	threads := flag.String("threads", "1,2,4", "comma-separated thread counts")
	seed := flag.Uint64("seed", 1, "scheduler seed")
	scale := flag.Uint64("scale", 1, "workload input-size multiplier (larger approaches paper-scale runs)")
	seeds := flag.Int("seeds", 1, "average overhead experiments over this many schedules")
	workers := flag.Int("workers", 0, "worker pool for the parallel-replay experiment (0 = 4, negative = all CPUs)")
	list := flag.Bool("list", false, "list experiments and exit")
	baseline := flag.String("baseline", "", "measure the guard workloads and write a BENCH_baseline.json to this path, then exit")
	runs := flag.Int("runs", 5, "runs per workload for -baseline and -shootout")
	shootout := flag.String("shootout", "", "run the serialization shootout on this workload and exit")
	format := flag.String("format", "", "restrict -shootout to one wire format family: v1 or v2")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	if *shootout != "" {
		if err := runShootout(*shootout, *format, *runs); err != nil {
			fmt.Fprintln(os.Stderr, "quickbench:", err)
			os.Exit(1)
		}
		return
	}

	if *baseline != "" {
		b, err := harness.WriteBaseline(*baseline, harness.BaselineWorkloads, 4, 4, *runs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "quickbench:", err)
			os.Exit(1)
		}
		fmt.Printf("%-13s %12s %12s %12s\n", "workload", "M instrs/s", "allocs/op", "B/op")
		for _, r := range b.Results {
			fmt.Printf("%-13s %12.2f %12d %12d\n",
				r.Workload, r.InstrsPerSec/1e6, r.AllocsPerOp, r.BytesPerOp)
		}
		fmt.Println("wrote", *baseline)
		return
	}

	cfg := experiments.Config{Seed: *seed, Scale: *scale, Seeds: *seeds, Workers: *workers}
	for _, part := range strings.Split(*threads, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "quickbench: bad thread count %q\n", part)
			os.Exit(2)
		}
		cfg.Threads = append(cfg.Threads, n)
	}

	if *exp == "" {
		if err := experiments.RunAll(cfg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "quickbench:", err)
			os.Exit(1)
		}
		return
	}
	e, ok := experiments.ByID(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "quickbench: unknown experiment %q (try -list)\n", *exp)
		os.Exit(2)
	}
	fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
	if err := e.Run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "quickbench:", err)
		os.Exit(1)
	}
}

// runShootout measures the serialization shootout on one workload and
// prints the table, optionally restricted to one wire-format family
// ("v1" keeps the v1 row, "v2" the v2-raw/v2-lz rows; the strawmen
// only appear unrestricted).
func runShootout(workload, format string, runs int) error {
	keep := func(codec string) bool { return true }
	switch format {
	case "":
	case "v1", "v2":
		keep = func(codec string) bool { return codec == format || strings.HasPrefix(codec, format+"-") }
	default:
		return fmt.Errorf("unknown -format %q (want v1 or v2)", format)
	}
	rows, err := harness.MeasureShootout(workload, 4, 4, runs)
	if err != nil {
		return err
	}
	fmt.Printf("%-7s %10s %12s %10s %10s %8s\n", "codec", "bytes", "B/kinstr", "enc MB/s", "dec MB/s", "vs v1")
	for _, r := range rows {
		if !keep(r.Codec) {
			continue
		}
		fmt.Printf("%-7s %10d %12.1f %10.1f %10.1f %7.2fx\n",
			r.Codec, r.Bytes, r.BytesPerKinstr, r.EncodeMBps, r.DecodeMBps, r.RatioVsV1)
	}
	return nil
}
