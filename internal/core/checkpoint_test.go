package core

import (
	"testing"

	"repro/internal/chunk"
	"repro/internal/machine"
	"repro/internal/workload"
)

func recordWithCheckpoint(t *testing.T, spec workload.Spec, threads int, every uint64, seed uint64) *Bundle {
	t.Helper()
	prog := spec.Build(threads)
	cfg := recordCfg(seed, func(c *machine.Config) {
		c.Threads = threads
		c.CheckpointEveryInstrs = every
	})
	b, err := Record(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestTailReplaysToSameFinalState(t *testing.T) {
	spec, _ := workload.ByName("radix")
	full := recordWithCheckpoint(t, spec, 4, 50_000, 3)
	if full.RecordStats.Checkpoints == 0 {
		t.Fatal("no checkpoints taken")
	}
	// The full bundle still replays from the start.
	rrFull, err := Replay(spec.Build(4), full)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(full, rrFull); err != nil {
		t.Fatal(err)
	}
	// The tail bundle replays from the checkpoint to the identical state.
	tail, err := Tail(full)
	if err != nil {
		t.Fatal(err)
	}
	rrTail, err := Replay(spec.Build(4), tail)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(tail, rrTail); err != nil {
		t.Fatal(err)
	}
	if rrTail.MemChecksum != rrFull.MemChecksum {
		t.Error("tail and full replays disagree")
	}
	// The tail's logs are genuinely smaller.
	var fullChunks, tailChunks int
	for i := range full.ChunkLogs {
		fullChunks += full.ChunkLogs[i].Len()
		tailChunks += tail.ChunkLogs[i].Len()
	}
	if tailChunks >= fullChunks {
		t.Errorf("tail holds %d chunks vs full %d — nothing truncated", tailChunks, fullChunks)
	}
}

func TestTailAcrossSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, spec := range workload.Suite() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			full := recordWithCheckpoint(t, spec, 4, 30_000, 9)
			if full.RecordStats.Checkpoints == 0 {
				t.Skip("workload too short for a checkpoint")
			}
			tail, err := Tail(full)
			if err != nil {
				t.Fatal(err)
			}
			rr, err := Replay(spec.Build(4), tail)
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(tail, rr); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestTailWithoutCheckpointFails(t *testing.T) {
	b, err := Record(workload.Counter(50, 2), recordCfg(1, nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Tail(b); err == nil {
		t.Error("Tail succeeded without a checkpoint")
	}
}

func TestCheckpointChunkBoundaries(t *testing.T) {
	spec, _ := workload.ByName("fft")
	full := recordWithCheckpoint(t, spec, 4, 100_000, 5)
	sawCkptReason := false
	for _, l := range full.ChunkLogs {
		for _, e := range l.Entries {
			if e.Reason == chunk.ReasonCheckpoint {
				sawCkptReason = true
			}
		}
	}
	if !sawCkptReason {
		t.Error("no checkpoint-terminated chunks despite checkpoints")
	}
}

func TestTailBundleSerializes(t *testing.T) {
	spec, _ := workload.ByName("water")
	full := recordWithCheckpoint(t, spec, 4, 50_000, 7)
	if full.RecordStats.Checkpoints == 0 {
		t.Fatal("no checkpoints")
	}
	tail, err := Tail(full)
	if err != nil {
		t.Fatal(err)
	}
	data := tail.Marshal()
	got, err := UnmarshalBundle(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Checkpoint == nil {
		t.Fatal("checkpoint lost in serialization")
	}
	if !got.Checkpoint.Mem.Equal(tail.Checkpoint.Mem) {
		t.Error("checkpoint memory image corrupted")
	}
	rr, err := Replay(spec.Build(4), got)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(got, rr); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointWithSignalsAndPreemption(t *testing.T) {
	spec, _ := workload.ByName("counter")
	prog := workload.SignalLoop(60000, 6)
	_ = spec
	cfg := recordCfg(11, func(c *machine.Config) {
		c.Cores = 2
		c.Threads = 6
		c.TimeSliceInstrs = 2000
		c.SignalPeriodInstrs = 5000
		c.CheckpointEveryInstrs = 40_000
	})
	full, err := Record(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if full.RecordStats.Checkpoints == 0 {
		t.Skip("no checkpoint boundary crossed")
	}
	tail, err := Tail(full)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Replay(prog, tail)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(tail, rr); err != nil {
		t.Fatal(err)
	}
}

func TestTamperedCheckpointRejected(t *testing.T) {
	spec, _ := workload.ByName("water")
	full := recordWithCheckpoint(t, spec, 4, 50_000, 7)
	if full.RecordStats.Checkpoints == 0 {
		t.Fatal("no checkpoints")
	}
	tail, err := Tail(full)
	if err != nil {
		t.Fatal(err)
	}
	tail.Checkpoint.Contexts = tail.Checkpoint.Contexts[:1]
	if _, err := Replay(spec.Build(4), tail); err == nil {
		t.Error("malformed checkpoint accepted")
	}
}
