package core

import (
	"bytes"
	"encoding/binary"

	"repro/internal/capo"
	"repro/internal/chunk"
	"repro/internal/isa"
	"repro/internal/wire"
)

// Wire format v2. Layout:
//
//	"QRBN" | version=3 | flags u32 LE | block(body)
//
// where block is the wire layer's framed body (raw or LZ, see
// wire.AppendBlock) and flags carries the v1 feature bits plus
// bflagCompressed, which must agree with the block's method byte.
// Unknown flag bits are rejected — that word is the format's forward
// negotiation surface.
//
// The body differs from v1 in two structure-aware ways that exist to
// make the block compressor's job easy and the mmap decode path cheap:
//
//   - The input log is columnar (capo.AppendColumnar): per-field
//     columns collapse under LZ, and all syscall payloads form one
//     contiguous arena that decode can alias zero-copy.
//   - The output blob is not stored verbatim. Recorded programs echo
//     input data to output constantly (the read-then-write server
//     pattern), so the output section is a sequence of ops: literal
//     runs interleaved with references to input-log records whose Data
//     equals the next output bytes. On IO-heavy recordings this elides
//     the second copy of every syscall payload — the difference
//     between ~1.97x and >2x whole-bundle compression, since the
//     payloads themselves are incompressible.
//
// Section order groups the LZ-friendly bytes (columns, chunk logs)
// ahead of the incompressible arena, then the ops tail.

// output op tags.
const (
	outOpLiteral = 0 // len uvarint | bytes
	outOpRef     = 1 // input-log record index uvarint
)

// outRefMinLen is the smallest record payload worth referencing; below
// this the literal bytes are as cheap as the op.
const outRefMinLen = 32

func (b *Bundle) marshalV2(method byte, auto bool) []byte {
	body := wire.GetAppender()
	b.appendBodyV2(body)
	a := wire.AppenderOf(make([]byte, 0, 16+len(body.Buf)))
	a.Raw(bundleMagic[:])
	a.Byte(bundleVersionV2)
	flagsPos := a.Len()
	a.U32(0) // patched below once the block method is known
	used := method
	if auto {
		used = wire.AppendBlock(&a, body.Buf)
	} else {
		wire.AppendBlockMethod(&a, body.Buf, method)
	}
	wire.PutAppender(body)
	flags := b.flagBits()
	if used == wire.BlockLZ {
		flags |= bflagCompressed
	}
	binary.LittleEndian.PutUint32(a.Buf[flagsPos:], flags)
	return a.Buf
}

// appendBodyV2 serializes the pre-block body.
func (b *Bundle) appendBodyV2(a *wire.Appender) {
	a.Grow(b.sizeHint())
	a.String(b.ProgramName)
	a.Int(b.Threads)
	a.Uvarint(b.StackWordsPerThread)
	a.Uvarint(b.MemChecksum)
	for t := 0; t < b.Threads; t++ {
		var r uint64
		if t < len(b.RetiredPerThread) {
			r = b.RetiredPerThread[t]
		}
		a.Uvarint(r)
	}
	for t := 0; t < b.Threads; t++ {
		var ctx isa.Context
		if t < len(b.FinalContexts) {
			ctx = b.FinalContexts[t]
		}
		appendContext(a, ctx)
	}
	scratch := wire.GetAppender()
	for _, l := range b.ChunkLogs {
		scratch.Reset()
		l.AppendMarshal(scratch, chunk.Delta{})
		a.Blob(scratch.Buf)
	}
	wire.PutAppender(scratch)
	capo.AppendColumnar(a, b.InputLog.Records)
	if b.SigLogs != nil {
		for t := 0; t < b.Threads; t++ {
			var pairs []capo.SigPair
			if t < len(b.SigLogs) {
				pairs = b.SigLogs[t]
			}
			a.Int(len(pairs))
			for _, p := range pairs {
				a.Blob(p.Read)
				a.Blob(p.Write)
			}
		}
	}
	if b.Checkpoint == nil {
		a.Byte(0)
	} else {
		a.Byte(1)
		appendCheckpoint(a, b.Checkpoint)
	}
	if len(b.IntervalCheckpoints) > 0 {
		a.Int(len(b.IntervalCheckpoints))
		for _, ck := range b.IntervalCheckpoints {
			appendCheckpoint(a, ck.State)
			for t := 0; t < b.Threads; t++ {
				var p int
				if t < len(ck.ChunkPos) {
					p = ck.ChunkPos[t]
				}
				a.Int(p)
			}
			a.Int(ck.InputPos)
			a.Uvarint(ck.RetiredAt)
		}
	}
	appendOutputOps(a, b.Output, b.InputLog.Records)
}

// appendOutputOps encodes out as literal runs plus references into the
// input-log payloads. The matcher is greedy left-to-right with
// first-record-wins candidate order, so the op sequence is a pure
// function of (out, recs) — decode followed by re-encode reproduces
// the source bytes.
func appendOutputOps(a *wire.Appender, out []byte, recs []capo.Record) {
	a.Int(len(out))
	var index map[uint64][]int32
	for i := range recs {
		if len(recs[i].Data) >= outRefMinLen {
			if index == nil {
				index = make(map[uint64][]int32)
			}
			k := binary.LittleEndian.Uint64(recs[i].Data)
			index[k] = append(index[k], int32(i))
		}
	}
	lit, p := 0, 0
	emitLit := func(end int) {
		if lit < end {
			a.Byte(outOpLiteral)
			a.Int(end - lit)
			a.Raw(out[lit:end])
		}
	}
	for index != nil && p+8 <= len(out) {
		matched := false
		for _, ci := range index[binary.LittleEndian.Uint64(out[p:])] {
			d := recs[ci].Data
			if len(d) <= len(out)-p && bytes.Equal(out[p:p+len(d)], d) {
				emitLit(p)
				a.Byte(outOpRef)
				a.Int(int(ci))
				p += len(d)
				lit = p
				matched = true
				break
			}
		}
		if !matched {
			p++
		}
	}
	emitLit(len(out))
}

// decodeOutputOps rebuilds the output blob into dst's capacity.
func decodeOutputOps(c *wire.Cursor, recs []capo.Record, dst []byte) ([]byte, error) {
	outLen, err := c.Uvarint()
	if err != nil {
		return nil, err
	}
	if outLen > 1<<32 {
		return nil, c.Corruptf("implausible output length %d", outLen)
	}
	out := dst[:0]
	for uint64(len(out)) < outLen {
		tag, err := c.Byte()
		if err != nil {
			return nil, err
		}
		switch tag {
		case outOpLiteral:
			n, err := c.Uvarint()
			if err != nil {
				return nil, err
			}
			if n == 0 || n > outLen-uint64(len(out)) {
				return nil, c.Corruptf("literal run %d outside remaining output %d", n, outLen-uint64(len(out)))
			}
			raw, err := c.Raw(int(n))
			if err != nil {
				return nil, err
			}
			out = append(out, raw...)
		case outOpRef:
			idx, err := c.Uvarint()
			if err != nil {
				return nil, err
			}
			if idx >= uint64(len(recs)) {
				return nil, c.Corruptf("output ref to record %d of %d", idx, len(recs))
			}
			d := recs[idx].Data
			if len(d) == 0 || uint64(len(d)) > outLen-uint64(len(out)) {
				return nil, c.Corruptf("output ref to %d-byte payload with %d output bytes left", len(d), outLen-uint64(len(out)))
			}
			out = append(out, d...)
		default:
			return nil, c.Corruptf("unknown output op %d", tag)
		}
	}
	return out, nil
}
