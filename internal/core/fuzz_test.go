package core

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/workload"
)

// TestFuzzRoundTrips is the randomized soundness harness: generated
// programs (random mixes of shared/private traffic, atomics, REP bursts,
// locks, barriers and syscalls) must record and replay bit-exactly under
// multiple schedules.
func TestFuzzRoundTrips(t *testing.T) {
	nProgs := 24
	if testing.Short() {
		nProgs = 4
	}
	for progSeed := uint64(0); progSeed < uint64(nProgs); progSeed++ {
		prog := workload.RandomProgram(progSeed, 4)
		for _, schedSeed := range []uint64{1, 7} {
			if _, _, err := RecordAndVerify(prog, recordCfg(schedSeed, nil)); err != nil {
				t.Fatalf("prog seed %d, sched seed %d: %v", progSeed, schedSeed, err)
			}
		}
	}
}

// TestFuzzRoundTripsHarshConditions adds preemption, few cores and
// signal-free reruns of the same programs.
func TestFuzzRoundTripsHarshConditions(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for progSeed := uint64(20); progSeed < 32; progSeed++ {
		prog := workload.RandomProgram(progSeed, 6)
		cfg := recordCfg(progSeed, func(c *machine.Config) {
			c.Cores = 2
			c.Threads = 6
			c.TimeSliceInstrs = 300
		})
		if _, _, err := RecordAndVerify(prog, cfg); err != nil {
			t.Fatalf("prog seed %d: %v", progSeed, err)
		}
	}
}

// TestFuzzWithCheckpoints runs generated programs under flight-recorder
// checkpointing and verifies the tails.
func TestFuzzWithCheckpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for progSeed := uint64(40); progSeed < 50; progSeed++ {
		prog := workload.RandomProgram(progSeed, 4)
		cfg := recordCfg(3, func(c *machine.Config) {
			c.CheckpointEveryInstrs = 2000
		})
		full, err := Record(prog, cfg)
		if err != nil {
			t.Fatalf("prog seed %d: %v", progSeed, err)
		}
		if full.RecordStats.Checkpoints == 0 {
			continue // program too short
		}
		tail, err := Tail(full)
		if err != nil {
			t.Fatalf("prog seed %d: %v", progSeed, err)
		}
		rr, err := Replay(prog, tail)
		if err != nil {
			t.Fatalf("prog seed %d tail replay: %v", progSeed, err)
		}
		if err := Verify(tail, rr); err != nil {
			t.Fatalf("prog seed %d tail verify: %v", progSeed, err)
		}
	}
}

// TestFuzzDeterministicGeneration pins that program generation itself is
// seed-deterministic (identical instruction streams).
func TestFuzzDeterministicGeneration(t *testing.T) {
	a := workload.RandomProgram(5, 4)
	b := workload.RandomProgram(5, 4)
	if len(a.Code) != len(b.Code) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Code), len(b.Code))
	}
	for i := range a.Code {
		if a.Code[i] != b.Code[i] {
			t.Fatalf("instruction %d differs: %v vs %v", i, a.Code[i], b.Code[i])
		}
	}
	c := workload.RandomProgram(6, 4)
	if len(a.Code) == len(c.Code) {
		same := true
		for i := range a.Code {
			if a.Code[i] != c.Code[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds generated identical programs")
		}
	}
}

// TestFuzzHardwareCounting reruns generated programs with the
// performance-counter-style CTR (REP iterations tick it) and verifies
// replay under the mirrored convention.
func TestFuzzHardwareCounting(t *testing.T) {
	for progSeed := uint64(60); progSeed < 68; progSeed++ {
		prog := workload.RandomProgram(progSeed, 4)
		cfg := recordCfg(2, func(c *machine.Config) {
			c.MRR.CountRepIterations = true
		})
		b, rr, err := RecordAndVerify(prog, cfg)
		if err != nil {
			t.Fatalf("prog seed %d: %v", progSeed, err)
		}
		if !b.CountRepIterations {
			t.Fatal("bundle did not record the counting convention")
		}
		_ = rr
		// The flag survives serialization.
		loaded, err := UnmarshalBundle(b.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		if !loaded.CountRepIterations {
			t.Fatal("counting convention lost in serialization")
		}
		rr2, err := Replay(prog, loaded)
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(loaded, rr2); err != nil {
			t.Fatal(err)
		}
	}
}
