package core

import (
	"errors"
	"fmt"

	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/replay"
)

// CheckpointState is a flight-recorder checkpoint embedded in a bundle:
// replay resumes from it with only the post-checkpoint log tail. This
// implements the paper's "always-on RnR" direction — bounded logs via
// periodic snapshots.
type CheckpointState struct {
	// Mem is the checkpointed architectural memory image.
	Mem *mem.Memory
	// Contexts, Exited, SigRegs, SigPC hold per-thread state.
	Contexts []isa.Context
	Exited   []bool
	SigRegs  [][isa.NumRegs]uint64
	SigPC    []int
	// HandlerPC/HandlerOK carry the registered signal handler.
	HandlerPC int
	HandlerOK bool
	// OutputPrefix is fd-1 output written before the checkpoint.
	OutputPrefix []byte
}

// ErrNoCheckpoint reports a Tail request on a recording made without
// checkpointing.
var ErrNoCheckpoint = errors.New("core: recording has no checkpoint (set CheckpointEveryInstrs)")

// Tail derives the flight-recorder bundle from a full recording made
// with Config.CheckpointEveryInstrs: the last checkpoint plus only the
// log entries after it. The tail replays to the same final state as the
// full bundle and verifies against the same reference.
func Tail(full *Bundle) (*Bundle, error) {
	if full.RecordStats == nil || full.RecordStats.Checkpoint == nil {
		return nil, ErrNoCheckpoint
	}
	ck := full.RecordStats.Checkpoint
	tail := &Bundle{
		ProgramName:         full.ProgramName,
		Threads:             full.Threads,
		StackWordsPerThread: full.StackWordsPerThread,
		CountRepIterations:  full.CountRepIterations,
		MemChecksum:         full.MemChecksum,
		Output:              full.Output,
		FinalContexts:       full.FinalContexts,
		RetiredPerThread:    full.RetiredPerThread,
		Checkpoint:          fromMachineCheckpoint(ck),
	}
	for t, l := range full.ChunkLogs {
		pos := ck.ChunkPos[t]
		tail.ChunkLogs = append(tail.ChunkLogs, l.Slice(pos))
	}
	tail.InputLog = full.InputLog.Slice(ck.InputPos)
	// SigLogs are deliberately dropped: slicing them at the checkpoint
	// would need the same per-thread positions, and the race detector
	// works on full recordings, not flight-recorder tails.
	return tail, nil
}

func fromMachineCheckpoint(ck *machine.Checkpoint) *CheckpointState {
	cs := &CheckpointState{
		Mem:          ck.Mem.Snapshot(),
		HandlerPC:    ck.HandlerPC,
		HandlerOK:    ck.HandlerOK,
		OutputPrefix: append([]byte(nil), ck.Output...),
	}
	for _, th := range ck.Threads {
		cs.Contexts = append(cs.Contexts, th.Ctx)
		cs.Exited = append(cs.Exited, th.Exited)
		cs.SigRegs = append(cs.SigRegs, th.SigRegs)
		cs.SigPC = append(cs.SigPC, th.SigPC)
	}
	return cs
}

// startState converts the bundle's checkpoint for the replayer.
func (cs *CheckpointState) startState() *replay.StartState {
	return &replay.StartState{
		Mem:          cs.Mem,
		Contexts:     cs.Contexts,
		Exited:       cs.Exited,
		SigRegs:      cs.SigRegs,
		SigPC:        cs.SigPC,
		HandlerPC:    cs.HandlerPC,
		HandlerOK:    cs.HandlerOK,
		OutputPrefix: cs.OutputPrefix,
	}
}

func (cs *CheckpointState) validate(threads int) error {
	if cs.Mem == nil || len(cs.Contexts) != threads || len(cs.Exited) != threads ||
		len(cs.SigRegs) != threads || len(cs.SigPC) != threads {
		return fmt.Errorf("core: malformed checkpoint for %d threads", threads)
	}
	return nil
}
