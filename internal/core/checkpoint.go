package core

import (
	"errors"
	"fmt"

	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/replay"
)

// CheckpointState is a flight-recorder checkpoint embedded in a bundle:
// replay resumes from it with only the post-checkpoint log tail. This
// implements the paper's "always-on RnR" direction — bounded logs via
// periodic snapshots.
type CheckpointState struct {
	// Mem is the checkpointed architectural memory image.
	Mem *mem.Memory
	// Contexts, Exited, SigRegs, SigPC hold per-thread state.
	Contexts []isa.Context
	Exited   []bool
	SigRegs  [][isa.NumRegs]uint64
	SigPC    []int
	// HandlerPC/HandlerOK carry the registered signal handler.
	HandlerPC int
	HandlerOK bool
	// OutputPrefix is fd-1 output written before the checkpoint.
	OutputPrefix []byte
}

// IntervalCheckpoint is one flight-recorder snapshot of a full
// recording, with the log positions that separate pre- from
// post-checkpoint entries. A bundle's IntervalCheckpoints partition its
// logs into independently replayable intervals.
type IntervalCheckpoint struct {
	// State is the machine state at the boundary.
	State *CheckpointState
	// ChunkPos[t] is thread t's chunk-log length at the snapshot;
	// InputPos is the input-log length.
	ChunkPos []int
	InputPos int
	// RetiredAt is the global retired-instruction count at the snapshot.
	RetiredAt uint64
}

// ErrNoCheckpoint reports a Tail request on a recording made without
// checkpointing.
var ErrNoCheckpoint = errors.New("core: recording has no checkpoint (set CheckpointEveryInstrs)")

// Tail derives the flight-recorder bundle from a full recording made
// with Config.CheckpointEveryInstrs: the last checkpoint plus only the
// log entries after it. The tail replays to the same final state as the
// full bundle and verifies against the same reference.
func Tail(full *Bundle) (*Bundle, error) {
	if full.RecordStats == nil || full.RecordStats.Checkpoint == nil {
		return nil, ErrNoCheckpoint
	}
	ck := full.RecordStats.Checkpoint
	tail := &Bundle{
		ProgramName:         full.ProgramName,
		Threads:             full.Threads,
		StackWordsPerThread: full.StackWordsPerThread,
		CountRepIterations:  full.CountRepIterations,
		MemChecksum:         full.MemChecksum,
		Output:              full.Output,
		FinalContexts:       full.FinalContexts,
		RetiredPerThread:    full.RetiredPerThread,
		Checkpoint:          fromMachineCheckpoint(ck),
	}
	for t, l := range full.ChunkLogs {
		pos := ck.ChunkPos[t]
		tail.ChunkLogs = append(tail.ChunkLogs, l.Slice(pos))
	}
	tail.InputLog = full.InputLog.Slice(ck.InputPos)
	// SigLogs are deliberately dropped: slicing them at the checkpoint
	// would need the same per-thread positions, and the race detector
	// works on full recordings, not flight-recorder tails.
	return tail, nil
}

// TailAt derives the flight-recorder tail bundle resuming from interval
// checkpoint k (0-based) of a full bundle. Unlike Tail it needs no
// RecordStats, so it works on deserialized bundles too; with k equal to
// the last index it produces the same tail as Tail. The tail shares the
// checkpoint state and reference final state with the full bundle.
func TailAt(full *Bundle, k int) (*Bundle, error) {
	if len(full.IntervalCheckpoints) == 0 {
		return nil, ErrNoCheckpoint
	}
	if k < 0 || k >= len(full.IntervalCheckpoints) {
		return nil, fmt.Errorf("core: checkpoint index %d out of range (recording has %d)",
			k, len(full.IntervalCheckpoints))
	}
	ck := full.IntervalCheckpoints[k]
	if err := ck.State.validate(full.Threads); err != nil {
		return nil, err
	}
	if len(ck.ChunkPos) != full.Threads {
		return nil, fmt.Errorf("core: checkpoint %d has %d chunk positions for %d threads",
			k, len(ck.ChunkPos), full.Threads)
	}
	tail := &Bundle{
		ProgramName:         full.ProgramName,
		Threads:             full.Threads,
		StackWordsPerThread: full.StackWordsPerThread,
		CountRepIterations:  full.CountRepIterations,
		Partial:             full.Partial,
		MemChecksum:         full.MemChecksum,
		Output:              full.Output,
		FinalContexts:       full.FinalContexts,
		RetiredPerThread:    full.RetiredPerThread,
		Checkpoint:          ck.State,
	}
	for t, l := range full.ChunkLogs {
		tail.ChunkLogs = append(tail.ChunkLogs, l.Slice(ck.ChunkPos[t]))
	}
	tail.InputLog = full.InputLog.Slice(ck.InputPos)
	return tail, nil
}

func fromMachineCheckpoint(ck *machine.Checkpoint) *CheckpointState {
	cs := &CheckpointState{
		Mem:          ck.Mem.Snapshot(),
		HandlerPC:    ck.HandlerPC,
		HandlerOK:    ck.HandlerOK,
		OutputPrefix: append([]byte(nil), ck.Output...),
	}
	for _, th := range ck.Threads {
		cs.Contexts = append(cs.Contexts, th.Ctx)
		cs.Exited = append(cs.Exited, th.Exited)
		cs.SigRegs = append(cs.SigRegs, th.SigRegs)
		cs.SigPC = append(cs.SigPC, th.SigPC)
	}
	return cs
}

// startState converts the bundle's checkpoint for the replayer.
func (cs *CheckpointState) startState() *replay.StartState {
	return &replay.StartState{
		Mem:          cs.Mem,
		Contexts:     cs.Contexts,
		Exited:       cs.Exited,
		SigRegs:      cs.SigRegs,
		SigPC:        cs.SigPC,
		HandlerPC:    cs.HandlerPC,
		HandlerOK:    cs.HandlerOK,
		OutputPrefix: cs.OutputPrefix,
	}
}

func (cs *CheckpointState) validate(threads int) error {
	if cs.Mem == nil || len(cs.Contexts) != threads || len(cs.Exited) != threads ||
		len(cs.SigRegs) != threads || len(cs.SigPC) != threads {
		return fmt.Errorf("core: malformed checkpoint for %d threads", threads)
	}
	return nil
}
