// Package core ties the QuickRec pieces into the system the paper
// presents: record a multithreaded program's execution on the simulated
// prototype (MRR hardware + Capo3 software stack), package the logs as a
// replayable bundle, replay it deterministically, and verify that the
// replayed execution reproduces the recorded one exactly.
package core

import (
	"bytes"
	"fmt"

	"repro/internal/capo"
	"repro/internal/chunk"
	"repro/internal/dispatch"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/replay"
)

// Bundle is a complete recording: everything replay needs, plus the
// reference final state used for verification.
type Bundle struct {
	// ProgramName names the recorded program; replay must be given the
	// same binary (QuickRec logs inputs and races, not code).
	ProgramName string
	// Threads is the recorded thread count.
	Threads int
	// StackWordsPerThread reproduces the recorder's address-space layout.
	StackWordsPerThread uint64
	// ChunkLogs holds the per-thread memory-interleaving logs.
	ChunkLogs []*chunk.Log
	// InputLog holds all recorded input nondeterminism.
	InputLog *capo.InputLog
	// SigLogs, when non-nil, holds each chunk's serialized read/write
	// Bloom signatures (per thread, parallel to ChunkLogs). Captured only
	// when the recording ran with machine.Config.CaptureSignatures; used
	// by the offline race detector's screening phase.
	SigLogs [][]capo.SigPair
	// Checkpoint, when non-nil, marks this as a flight-recorder tail
	// bundle: the logs cover only execution after the checkpoint and
	// replay resumes from its state. Built with Tail.
	Checkpoint *CheckpointState
	// IntervalCheckpoints holds every flight-recorder snapshot taken
	// during the recording, in order, with the log positions that
	// separate pre- from post-checkpoint entries. Present only on full
	// bundles recorded with CheckpointEveryInstrs (and on salvaged
	// bundles whose checkpoints survived the cut); parallel replay
	// partitions the logs at these points.
	IntervalCheckpoints []*IntervalCheckpoint
	// CountRepIterations records the hardware's counting convention
	// (chunk sizes include REP iterations); the replayer must mirror it.
	CountRepIterations bool
	// Partial marks a salvaged recording prefix: the logs are a validated,
	// causally closed prefix of the original execution, but the reference
	// final state is missing (the recorder died before writing it). Replay
	// runs best-effort (Result.Truncation describes where the logs ran
	// out); Verify rejects partial bundles since there is nothing to
	// verify against.
	Partial bool

	// Reference state captured at the end of the recorded run.
	MemChecksum      uint64
	Output           []byte
	FinalContexts    []isa.Context
	RetiredPerThread []uint64

	// Format selects the byte format Marshal emits (see Format). It is
	// runtime-only state, not a serialized field: decoding stamps the
	// source's format here so a decoded bundle re-encodes identically,
	// and a fresh recording's zero value lets the encoder choose.
	Format Format

	// RecordStats carries the recording run's measurements (overheads,
	// log volumes, chunk statistics). Not serialized.
	RecordStats *machine.Result
}

// Record runs prog under cfg with recording enabled and returns the
// bundle. If cfg.Mode is ModeOff it is promoted to ModeFull; callers that
// want hardware-only accounting can pass ModeHardwareOnly explicitly
// (logs are still complete).
func Record(prog *isa.Program, cfg machine.Config) (*Bundle, error) {
	if cfg.Mode == machine.ModeOff {
		cfg.Mode = machine.ModeFull
	}
	m := machine.New(prog, cfg)
	res, err := m.Run()
	if err != nil {
		return nil, fmt.Errorf("core: recording failed: %w", err)
	}
	if cfg.StackWordsPerThread == 0 {
		cfg.StackWordsPerThread = machine.DefaultConfig().StackWordsPerThread
	}
	threads := len(res.RetiredPerThread)
	b := &Bundle{
		ProgramName:         prog.Name,
		Threads:             threads,
		StackWordsPerThread: cfg.StackWordsPerThread,
		CountRepIterations:  cfg.MRR.CountRepIterations,
		ChunkLogs:           res.Session.ChunkLogs(),
		InputLog:            res.Session.InputLog(),
		SigLogs:             res.Session.SigLogs(),
		MemChecksum:         res.MemChecksum,
		Output:              res.Output,
		FinalContexts:       res.FinalContexts,
		RetiredPerThread:    res.RetiredPerThread,
		RecordStats:         res,
	}
	for _, ck := range res.AllCheckpoints {
		b.IntervalCheckpoints = append(b.IntervalCheckpoints, &IntervalCheckpoint{
			State:     fromMachineCheckpoint(ck),
			ChunkPos:  append([]int(nil), ck.ChunkPos...),
			InputPos:  ck.InputPos,
			RetiredAt: ck.RetiredAt,
		})
	}
	return b, nil
}

// Replay re-executes the bundle against prog and returns the replayed
// state. It does not verify; use Verify or RecordAndVerify for that.
func Replay(prog *isa.Program, b *Bundle) (*replay.Result, error) {
	return ReplayWorkers(prog, b, 0)
}

// ReplayBounded replays the bundle serially under a step budget — the
// harness's guard when triaging salvaged (possibly damaged) recordings
// that could otherwise run away. Unlike the raw replay.Input path it
// wires a bundle's checkpoint start state, so it works on windowed
// (flight-recorder ring) salvages too.
func ReplayBounded(prog *isa.Program, b *Bundle, maxSteps uint64) (*replay.Result, error) {
	in, err := replayInput(prog, b)
	if err != nil {
		return nil, err
	}
	in.MaxSteps = maxSteps
	return replay.Run(in)
}

// ReplayWorkers replays the bundle with a bounded worker pool: when
// workers resolves to at least 2 and the bundle carries interval
// checkpoints, the logs are partitioned at the checkpoints and the
// intervals replay concurrently. 0 and 1 replay serially; negative
// selects runtime.GOMAXPROCS(0). The Result is bit-identical to serial
// replay in every mode.
func ReplayWorkers(prog *isa.Program, b *Bundle, workers int) (*replay.Result, error) {
	in, err := replayInput(prog, b)
	if err != nil {
		return nil, err
	}
	in.Workers = workers
	return replay.Run(in)
}

// ReplayDistributed replays the bundle with the interval jobs dispatched
// through an executor — a fleet executor ships them to remote worker
// processes that hold the same bundle under the given content digest.
// The Result is bit-identical to Replay: the interval partition is a
// pure function of the bundle, and the stitcher is index-ordered.
func ReplayDistributed(prog *isa.Program, b *Bundle, exec dispatch.Executor, digest string) (*replay.Result, error) {
	in, err := replayInput(prog, b)
	if err != nil {
		return nil, err
	}
	in.Exec = exec
	in.Digest = digest
	return replay.Run(in)
}

// ExecReplayJob is the worker side of a JobReplayInterval: rebuild the
// replay input from the bundle exactly as the dispatcher did and run the
// one interval the payload names.
func ExecReplayJob(prog *isa.Program, b *Bundle, payload []byte) ([]byte, error) {
	in, err := replayInput(prog, b)
	if err != nil {
		return nil, err
	}
	return replay.ExecIntervalJob(in, payload)
}

// ReplayJobber builds a cached-partition runner for this bundle's
// interval jobs: a fleet worker serving many jobs against one bundle
// partitions once instead of per job. Safe for concurrent Exec calls.
func ReplayJobber(prog *isa.Program, b *Bundle) (*replay.IntervalRunner, error) {
	in, err := replayInput(prog, b)
	if err != nil {
		return nil, err
	}
	return replay.NewIntervalRunner(in), nil
}

// replayInput builds the replayer's input from a bundle, wiring the
// checkpoint start state and counting convention.
func replayInput(prog *isa.Program, b *Bundle) (replay.Input, error) {
	in := replay.Input{
		Prog:                prog,
		Threads:             b.Threads,
		ChunkLogs:           b.ChunkLogs,
		InputLog:            b.InputLog,
		StackWordsPerThread: b.StackWordsPerThread,
		CountRepIterations:  b.CountRepIterations,
		AllowTruncated:      b.Partial,
	}
	if prog.Name != b.ProgramName {
		return in, fmt.Errorf("core: bundle was recorded from %q, not %q", b.ProgramName, prog.Name)
	}
	if b.Checkpoint != nil {
		if err := b.Checkpoint.validate(b.Threads); err != nil {
			return in, err
		}
		in.Start = b.Checkpoint.startState()
	}
	for _, ck := range b.IntervalCheckpoints {
		in.Checkpoints = append(in.Checkpoints, replay.IntervalCheckpoint{
			State:    ck.State.startState(),
			ChunkPos: ck.ChunkPos,
			InputPos: ck.InputPos,
		})
	}
	return in, nil
}

// TraceAccesses replays the bundle while logging every user-mode memory
// access with its issuing thread, chunk and instruction — the exact
// ground truth the race detector confirms Bloom candidates against.
func TraceAccesses(prog *isa.Program, b *Bundle) (*replay.Result, []replay.AccessEvent, error) {
	in, err := replayInput(prog, b)
	if err != nil {
		return nil, nil, err
	}
	return replay.TraceAccesses(in)
}

// ReplayUntil replays the bundle up to "thread tid, retired-instruction
// count n" and returns the paused machine state — the primitive behind
// record-and-replay debugging. Works on full and flight-recorder tail
// bundles (the breakpoint must not predate a tail's checkpoint).
func ReplayUntil(prog *isa.Program, b *Bundle, tid int, n uint64) (*replay.PauseState, error) {
	in, err := replayInput(prog, b)
	if err != nil {
		return nil, err
	}
	return replay.RunUntil(in, replay.Breakpoint{Thread: tid, Retired: n})
}

// Trace replays the bundle and captures thread tid's executed
// instruction stream over the retired-count window (from, to].
func Trace(prog *isa.Program, b *Bundle, tid int, from, to uint64) ([]replay.TraceEntry, error) {
	in, err := replayInput(prog, b)
	if err != nil {
		return nil, err
	}
	return replay.Trace(in, tid, from, to)
}

// VerifyError describes a mismatch between the recorded and replayed
// executions.
type VerifyError struct {
	Field  string
	Detail string
}

// Error implements error.
func (e *VerifyError) Error() string {
	return fmt.Sprintf("core: replay verification failed: %s: %s", e.Field, e.Detail)
}

// Verify checks that the replayed execution reproduced the recording:
// identical final memory image, program output, per-thread retired
// counts, and per-thread architectural state.
func Verify(b *Bundle, rr *replay.Result) error {
	if b.Partial {
		return &VerifyError{"bundle", "salvaged partial recording carries no reference final state"}
	}
	if rr.MemChecksum != b.MemChecksum {
		return &VerifyError{"memory", fmt.Sprintf("checksum %#x != recorded %#x", rr.MemChecksum, b.MemChecksum)}
	}
	if !bytes.Equal(rr.Output, b.Output) {
		return &VerifyError{"output", fmt.Sprintf("%d bytes != recorded %d bytes", len(rr.Output), len(b.Output))}
	}
	if len(rr.RetiredPerThread) != len(b.RetiredPerThread) {
		return &VerifyError{"threads", fmt.Sprintf("%d != recorded %d", len(rr.RetiredPerThread), len(b.RetiredPerThread))}
	}
	for t := range b.RetiredPerThread {
		if rr.RetiredPerThread[t] != b.RetiredPerThread[t] {
			return &VerifyError{"retired", fmt.Sprintf("thread %d: %d != recorded %d",
				t, rr.RetiredPerThread[t], b.RetiredPerThread[t])}
		}
	}
	for t := range b.FinalContexts {
		rec, rep := b.FinalContexts[t], rr.FinalContexts[t]
		if rec.PC != rep.PC {
			return &VerifyError{"context", fmt.Sprintf("thread %d PC %d != recorded %d", t, rep.PC, rec.PC)}
		}
		for r := 0; r < isa.NumRegs; r++ {
			if rec.Regs[r] != rep.Regs[r] {
				return &VerifyError{"context", fmt.Sprintf("thread %d r%d = %#x != recorded %#x",
					t, r, rep.Regs[r], rec.Regs[r])}
			}
		}
	}
	return nil
}

// RecordAndVerify records prog, replays the bundle, and verifies the
// round trip — the system's end-to-end contract.
func RecordAndVerify(prog *isa.Program, cfg machine.Config) (*Bundle, *replay.Result, error) {
	b, err := Record(prog, cfg)
	if err != nil {
		return nil, nil, err
	}
	rr, err := Replay(prog, b)
	if err != nil {
		return b, nil, err
	}
	if err := Verify(b, rr); err != nil {
		return b, rr, err
	}
	return b, rr, nil
}
