package core

import (
	"testing"

	"repro/internal/capo"
	"repro/internal/chunk"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/replay"
	"repro/internal/workload"
)

func recordCfg(seed uint64, mut func(*machine.Config)) machine.Config {
	cfg := machine.DefaultConfig()
	cfg.Mode = machine.ModeFull
	cfg.Seed = seed
	cfg.KernelSeed = seed + 1000
	if mut != nil {
		mut(&cfg)
	}
	return cfg
}

// roundTrip records prog and verifies the replay reproduces it.
func roundTrip(t *testing.T, prog *isa.Program, seed uint64, mut func(*machine.Config)) (*Bundle, *replay.Result) {
	t.Helper()
	b, rr, err := RecordAndVerify(prog, recordCfg(seed, mut))
	if err != nil {
		t.Fatalf("%s seed %d: %v", prog.Name, seed, err)
	}
	return b, rr
}

func TestRoundTripCounter(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 17, 99} {
		roundTrip(t, workload.Counter(300, 4), seed, nil)
	}
}

func TestRoundTripMutex(t *testing.T) {
	for _, seed := range []uint64{1, 5, 42} {
		roundTrip(t, workload.Mutex(150, 4), seed, nil)
	}
}

func TestRoundTripPingpong(t *testing.T) {
	roundTrip(t, workload.Pingpong(500, 4), 7, nil)
}

func TestRoundTripPrivate(t *testing.T) {
	roundTrip(t, workload.Private(2048, 4), 3, nil)
}

func TestRoundTripIOHeavy(t *testing.T) {
	b, rr := roundTrip(t, workload.IOHeavy(20, 64, 2), 11, nil)
	if b.InputLog.DataBytes() == 0 {
		t.Error("IO-heavy run logged no input data")
	}
	if len(rr.Output) == 0 {
		t.Error("replay produced no output")
	}
}

func TestRoundTripRepCopy(t *testing.T) {
	b, _ := roundTrip(t, workload.RepCopy(4096, 4), 13, nil)
	withResidue := 0
	for _, l := range b.ChunkLogs {
		for _, e := range l.Entries {
			if e.RepResidue > 0 {
				withResidue++
			}
		}
	}
	if withResidue == 0 {
		t.Error("REP workload produced no mid-instruction chunk boundaries")
	}
}

func TestRoundTripSignals(t *testing.T) {
	prog := workload.SignalLoop(30000, 4)
	b, _ := roundTrip(t, prog, 5, func(c *machine.Config) {
		c.SignalPeriodInstrs = 3000
	})
	if b.RecordStats.SignalsDelivered == 0 {
		t.Fatal("no signals delivered during recording")
	}
}

func TestRoundTripManyThreadsFewCores(t *testing.T) {
	roundTrip(t, workload.Counter(200, 8), 21, func(c *machine.Config) {
		c.Cores = 2
		c.Threads = 8
		c.TimeSliceInstrs = 150
	})
}

func TestRoundTripHardwareOnlyMode(t *testing.T) {
	_, _, err := RecordAndVerify(workload.Counter(200, 4),
		recordCfg(9, func(c *machine.Config) { c.Mode = machine.ModeHardwareOnly }))
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecordPromotesModeOff(t *testing.T) {
	cfg := machine.DefaultConfig() // ModeOff
	b, err := Record(workload.Counter(50, 2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.InputLog == nil || len(b.ChunkLogs) != 2 {
		t.Error("recording with promoted mode produced no logs")
	}
}

func TestReplayRejectsWrongProgram(t *testing.T) {
	b, err := Record(workload.Counter(50, 2), recordCfg(1, nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(workload.Mutex(50, 2), b); err == nil {
		t.Error("replaying against a different program succeeded")
	}
}

func TestTamperedChunkLogDiverges(t *testing.T) {
	prog := workload.Counter(300, 4)
	b, err := Record(prog, recordCfg(1, nil))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one chunk's size mid-log.
	l := b.ChunkLogs[1]
	if l.Len() < 3 {
		t.Skip("log too short to tamper meaningfully")
	}
	l.Entries[l.Len()/2].Size += 3
	rr, err := Replay(prog, b)
	if err == nil {
		// The size change may slide the boundary without tripping a
		// structural check; verification must then catch it.
		if verr := Verify(b, rr); verr == nil {
			t.Error("tampered log replayed and verified clean")
		}
	}
}

func TestDroppedInputRecordDiverges(t *testing.T) {
	prog := workload.IOHeavy(5, 16, 2)
	b, err := Record(prog, recordCfg(2, nil))
	if err != nil {
		t.Fatal(err)
	}
	if b.InputLog.Len() < 2 {
		t.Fatal("too few input records")
	}
	b.InputLog.Records = b.InputLog.Records[:b.InputLog.Len()-1]
	rr, err := Replay(prog, b)
	if err == nil {
		if verr := Verify(b, rr); verr == nil {
			t.Error("dropped input record went unnoticed")
		}
	}
}

func TestVerifyDetectsEachField(t *testing.T) {
	prog := workload.Counter(100, 2)
	b, rr, err := RecordAndVerify(prog, recordCfg(3, nil))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(*Bundle)
	}{
		{"memory", func(b *Bundle) { b.MemChecksum++ }},
		{"output", func(b *Bundle) { b.Output = append(b.Output, 1) }},
		{"retired", func(b *Bundle) { b.RetiredPerThread[0]++ }},
		{"context-pc", func(b *Bundle) { b.FinalContexts[1].PC++ }},
		{"context-reg", func(b *Bundle) { b.FinalContexts[0].Regs[5]++ }},
	}
	for _, c := range cases {
		mutated := *b
		mutated.Output = append([]byte(nil), b.Output...)
		mutated.RetiredPerThread = append([]uint64(nil), b.RetiredPerThread...)
		mutated.FinalContexts = append([]isa.Context(nil), b.FinalContexts...)
		c.mut(&mutated)
		if err := Verify(&mutated, rr); err == nil {
			t.Errorf("%s: mutation not detected", c.name)
		}
	}
}

func TestBundleMarshalRoundTrip(t *testing.T) {
	prog := workload.IOHeavy(10, 32, 3)
	b, err := Record(prog, recordCfg(4, nil))
	if err != nil {
		t.Fatal(err)
	}
	data := b.Marshal()
	got, err := UnmarshalBundle(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.ProgramName != b.ProgramName || got.Threads != b.Threads ||
		got.MemChecksum != b.MemChecksum || got.StackWordsPerThread != b.StackWordsPerThread {
		t.Error("bundle header mismatch after round trip")
	}
	if string(got.Output) != string(b.Output) {
		t.Error("output mismatch")
	}
	for tid := range b.ChunkLogs {
		if got.ChunkLogs[tid].Len() != b.ChunkLogs[tid].Len() {
			t.Fatalf("thread %d: %d chunks != %d", tid, got.ChunkLogs[tid].Len(), b.ChunkLogs[tid].Len())
		}
		for i := range b.ChunkLogs[tid].Entries {
			if got.ChunkLogs[tid].Entries[i] != b.ChunkLogs[tid].Entries[i] {
				t.Fatalf("thread %d entry %d differs", tid, i)
			}
		}
	}
	if got.InputLog.Len() != b.InputLog.Len() {
		t.Error("input log length mismatch")
	}
	// The unmarshalled bundle must replay and verify too.
	rr, err := Replay(prog, got)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(got, rr); err != nil {
		t.Fatal(err)
	}
}

func TestTraceAccessesGroundTruth(t *testing.T) {
	prog := workload.Mutex(50, 4)
	b, err := Record(prog, recordCfg(3, nil))
	if err != nil {
		t.Fatal(err)
	}
	rr, events, err := TraceAccesses(prog, b)
	if err != nil {
		t.Fatal(err)
	}
	// Tracing must not perturb the replayed execution.
	if err := Verify(b, rr); err != nil {
		t.Fatal(err)
	}
	var reads, writes, atomics, syncs int
	for _, ev := range events {
		if ev.Thread < 0 || ev.Thread >= b.Threads {
			t.Fatalf("event thread %d out of range", ev.Thread)
		}
		if ev.Chunk < 0 || ev.Chunk > b.ChunkLogs[ev.Thread].Len() {
			t.Fatalf("event chunk %d out of range for thread %d", ev.Chunk, ev.Thread)
		}
		switch ev.Kind {
		case replay.AccessRead:
			reads++
		case replay.AccessWrite:
			writes++
		case replay.AccessAtomic:
			atomics++
		}
		if ev.Kind.IsSync() {
			syncs++
		}
	}
	// A mutex workload must show plain data accesses plus lock atomics.
	if reads == 0 || writes == 0 {
		t.Errorf("trace missing plain accesses: %d reads, %d writes", reads, writes)
	}
	if atomics == 0 {
		t.Error("mutex workload traced no atomic accesses")
	}
	if syncs < atomics {
		t.Error("IsSync does not cover atomics")
	}
}

func TestBundleSigLogsRoundTrip(t *testing.T) {
	prog := workload.Counter(100, 4)
	b, err := Record(prog, recordCfg(6, func(c *machine.Config) { c.CaptureSignatures = true }))
	if err != nil {
		t.Fatal(err)
	}
	if b.SigLogs == nil {
		t.Fatal("CaptureSignatures recording carries no SigLogs")
	}
	pairs := 0
	for tid := range b.ChunkLogs {
		if len(b.SigLogs[tid]) != b.ChunkLogs[tid].Len() {
			t.Fatalf("thread %d: %d sig pairs for %d chunks", tid, len(b.SigLogs[tid]), b.ChunkLogs[tid].Len())
		}
		pairs += len(b.SigLogs[tid])
	}
	if pairs == 0 {
		t.Fatal("no signature pairs captured")
	}

	got, err := UnmarshalBundle(b.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	for tid := range b.SigLogs {
		if len(got.SigLogs[tid]) != len(b.SigLogs[tid]) {
			t.Fatalf("thread %d sig log length changed", tid)
		}
		for i, p := range b.SigLogs[tid] {
			q := got.SigLogs[tid][i]
			if string(q.Read) != string(p.Read) || string(q.Write) != string(p.Write) {
				t.Fatalf("thread %d sig pair %d differs after round trip", tid, i)
			}
		}
	}

	// A sig log whose count disagrees with the chunk log must be rejected,
	// and a recording without capture must not grow SigLogs.
	bad := *b
	bad.SigLogs = append([][]capo.SigPair{}, b.SigLogs...)
	bad.SigLogs[0] = bad.SigLogs[0][:len(bad.SigLogs[0])-1]
	if _, err := UnmarshalBundle(bad.Marshal()); err == nil {
		t.Error("sig/chunk count mismatch accepted")
	}
	plain, err := Record(prog, recordCfg(6, nil))
	if err != nil {
		t.Fatal(err)
	}
	if plain.SigLogs != nil {
		t.Error("recording without CaptureSignatures has SigLogs")
	}
	replain, err := UnmarshalBundle(plain.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if replain.SigLogs != nil {
		t.Error("sig-free bundle grew SigLogs on unmarshal")
	}
}

func TestUnmarshalBundleRejectsGarbage(t *testing.T) {
	prog := workload.Counter(20, 1)
	b, err := Record(prog, recordCfg(5, nil))
	if err != nil {
		t.Fatal(err)
	}
	good := b.Marshal()
	cases := [][]byte{
		nil,
		good[:3],
		append([]byte("XXXX"), good[4:]...),
		good[:len(good)/2],
		append(append([]byte{}, good...), 7),
	}
	for i, c := range cases {
		if _, err := UnmarshalBundle(c); err == nil {
			t.Errorf("case %d: garbage bundle accepted", i)
		}
	}
	bad := append([]byte{}, good...)
	bad[4] = 99 // version
	if _, err := UnmarshalBundle(bad); err == nil {
		t.Error("bad version accepted")
	}
}

func TestReplayIsSchedulerIndependent(t *testing.T) {
	// Two recordings with different seeds produce different logs; each
	// replays to its own recorded state, not to some shared outcome.
	prog := workload.Mutex(100, 4)
	b1, rr1 := roundTrip(t, prog, 100, nil)
	b2, rr2 := roundTrip(t, prog, 200, nil)
	// Functional result agrees (the program is race-free)...
	if string(b1.Output) != string(b2.Output) {
		t.Error("race-free program output depended on schedule")
	}
	// ...but each replay reproduces its own recording precisely.
	if rr1.MemChecksum != b1.MemChecksum || rr2.MemChecksum != b2.MemChecksum {
		t.Error("replay did not match its own recording")
	}
}

func TestRacyProgramReplaysExactly(t *testing.T) {
	// A program with a genuine data race: threads store their TID to the
	// same word unsynchronized. The final value depends on the schedule;
	// replay must reproduce whichever value was recorded.
	prog := racyProg()
	for _, seed := range []uint64{1, 2, 3, 4, 5, 6, 7, 8} {
		b, rr, err := RecordAndVerify(prog, recordCfg(seed, nil))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rr.MemChecksum != b.MemChecksum {
			t.Fatalf("seed %d: race outcome not reproduced", seed)
		}
	}
}

func racyProg() *isa.Program {
	b := isa.NewBuilder("racy")
	// All threads hammer word 0 with tid-dependent values, no sync.
	b.Li(isa.R3, 0)
	b.Li(isa.R4, 400)
	b.Label("loop")
	b.Muli(isa.R5, workloadRegTID(), 1000)
	b.Add(isa.R5, isa.R5, isa.R3)
	b.St(isa.R0, 0, isa.R5) // store to address 0
	b.Ld(isa.R6, isa.R0, 0) // racy read back
	b.Addi(isa.R3, isa.R3, 1)
	b.Bne(isa.R3, isa.R4, "loop")
	b.Halt()
	return b.Build(64, 4, nil)
}

func workloadRegTID() isa.Reg { return workload.RegTID }

func TestChunkLogsConsistentWithRetired(t *testing.T) {
	prog := workload.Counter(250, 4)
	b, _ := roundTrip(t, prog, 31, nil)
	for tid, l := range b.ChunkLogs {
		if l.TotalInstructions() != b.RetiredPerThread[tid] {
			t.Errorf("thread %d: chunk sizes sum to %d, retired %d",
				tid, l.TotalInstructions(), b.RetiredPerThread[tid])
		}
	}
}

func TestConflictChunksRecorded(t *testing.T) {
	b, _ := roundTrip(t, workload.Pingpong(800, 4), 17, nil)
	conflicts := 0
	for _, l := range b.ChunkLogs {
		for _, e := range l.Entries {
			if e.Reason.IsConflict() {
				conflicts++
			}
		}
	}
	if conflicts == 0 {
		t.Error("ping-pong workload recorded no conflict chunks")
	}
}

func TestReplayCountsItems(t *testing.T) {
	b, rr := roundTrip(t, workload.Counter(100, 2), 1, nil)
	var chunks int
	for _, l := range b.ChunkLogs {
		chunks += l.Len()
	}
	if rr.ChunksExecuted != uint64(chunks) {
		t.Errorf("replay executed %d chunks, logs hold %d", rr.ChunksExecuted, chunks)
	}
	if rr.InputsApplied != uint64(b.InputLog.Len()) {
		t.Errorf("replay applied %d inputs, log holds %d", rr.InputsApplied, b.InputLog.Len())
	}
	_ = chunk.ReasonFlush // package used in sibling tests
}
