package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/capo"
	"repro/internal/chunk"
	"repro/internal/isa"
	"repro/internal/wire"
)

// BundleDecoder decodes bundles into reusable storage: the Bundle, the
// per-thread chunk logs (and their entry arrays), the input log's
// record slice and data arena, the decompression buffer and the output
// buffer all persist across Decode calls. Steady-state decoding — the
// replay service draining a queue of recordings, or the codec
// benchmark — allocates nothing.
//
// The returned bundle is valid until the next Decode and aliases both
// the decoder's storage and, for zero-copy fields (the input-log data
// arena of a raw-block v2 bundle, or of any v1 bundle), the input
// bytes themselves. Callers decoding out of an mmap must keep the
// mapping alive for as long as they use the bundle; callers that need
// an owning bundle use UnmarshalBundle, which copies.
type BundleDecoder struct {
	bundle Bundle
	logs   []chunk.Log
	input  capo.LogDecoder
	body   []byte // block decompression buffer
	copies bool   // one-shot ownership mode (UnmarshalBundle)
}

// Decode parses data in any supported format (the header version byte
// selects the layout) and returns the reused bundle.
func (d *BundleDecoder) Decode(data []byte) (*Bundle, error) {
	if len(data) < 5 || [4]byte(data[0:4]) != bundleMagic {
		return nil, fmt.Errorf("%w: bad magic", errBundleCorrupt)
	}
	switch data[4] {
	case bundleVersionV1:
		return d.decodeV1(data)
	case bundleVersionV2:
		return d.decodeV2(data)
	default:
		return nil, fmt.Errorf("%w %d", ErrUnknownBundleVersion, data[4])
	}
}

// reset clears the bundle for a fresh decode while keeping the
// capacity of every reused slice.
func (d *BundleDecoder) reset() *Bundle {
	b := &d.bundle
	b.StackWordsPerThread = 0
	b.MemChecksum = 0
	b.SigLogs = nil
	b.Checkpoint = nil
	b.IntervalCheckpoints = nil
	b.RecordStats = nil
	b.ChunkLogs = b.ChunkLogs[:0]
	b.RetiredPerThread = b.RetiredPerThread[:0]
	b.FinalContexts = b.FinalContexts[:0]
	return b
}

// setName sets ProgramName without allocating when it is unchanged
// from the previous decode (the steady-state case).
func (d *BundleDecoder) setName(name []byte) {
	if d.bundle.ProgramName != string(name) {
		d.bundle.ProgramName = string(name)
	}
}

// threadLogs returns the reused contiguous chunk.Log array sized for
// threads, preserving each log's entry capacity.
func (d *BundleDecoder) threadLogs(threads int) []chunk.Log {
	if cap(d.logs) >= threads {
		d.logs = d.logs[:threads]
	} else {
		d.logs = make([]chunk.Log, threads)
	}
	return d.logs
}

func readThreadCount(c *wire.Cursor) (int, error) {
	threads, err := c.Uvarint()
	if err != nil {
		return 0, err
	}
	if threads == 0 || threads > 1<<16 {
		return 0, fmt.Errorf("%w: implausible thread count %d", ErrCorruptBundle, threads)
	}
	return int(threads), nil
}

// decodeV1 parses the legacy layout (header byte flags, interleaved
// input log, verbatim output blob).
func (d *BundleDecoder) decodeV1(data []byte) (*Bundle, error) {
	if len(data) < 6 {
		return nil, errBundleTruncated
	}
	if data[5] > bflagKnownV1 {
		return nil, fmt.Errorf("%w: unknown flags %#x", errBundleCorrupt, data[5])
	}
	b := d.reset()
	b.Format = FormatV1
	b.CountRepIterations = data[5]&bflagCountReps != 0
	b.Partial = data[5]&bflagPartial != 0
	hasSigs := data[5]&bflagSigs != 0
	hasIvals := data[5]&bflagIntervals != 0
	c := wire.CursorWith(data, errBundleTruncated, errBundleCorrupt)
	c.Skip(6)
	name, err := c.View()
	if err != nil {
		return nil, err
	}
	d.setName(name)
	if b.Threads, err = readThreadCount(&c); err != nil {
		return nil, err
	}
	if b.StackWordsPerThread, err = c.Uvarint(); err != nil {
		return nil, err
	}
	if b.MemChecksum, err = c.Uvarint(); err != nil {
		return nil, err
	}
	out, err := c.View()
	if err != nil {
		return nil, err
	}
	b.Output = append(b.Output[:0], out...)
	if err := d.readFinalState(&c, b); err != nil {
		return nil, err
	}
	logs := d.threadLogs(b.Threads)
	for t := 0; t < b.Threads; t++ {
		// View, not Blob: UnmarshalLogInto copies entries out and retains
		// nothing of the raw bytes.
		raw, err := c.View()
		if err != nil {
			return nil, err
		}
		if err := chunk.UnmarshalLogInto(&logs[t], raw); err != nil {
			return nil, fmt.Errorf("%w: chunk log %d: %w", ErrCorruptBundle, t, err)
		}
		b.ChunkLogs = append(b.ChunkLogs, &logs[t])
	}
	raw, err := c.View()
	if err != nil {
		return nil, err
	}
	if b.InputLog, err = d.input.DecodeLog(raw, !d.copies); err != nil {
		return nil, fmt.Errorf("%w: input log: %w", ErrCorruptBundle, err)
	}
	if hasSigs {
		if err := d.readSigLogs(&c, b); err != nil {
			return nil, err
		}
	}
	if err := d.readCheckpointSections(&c, b, hasIvals); err != nil {
		return nil, err
	}
	if err := c.Done(); err != nil {
		return nil, err
	}
	return b, nil
}

// decodeV2 parses the versioned layout: flag word, body block,
// columnar input log, op-encoded output.
func (d *BundleDecoder) decodeV2(data []byte) (*Bundle, error) {
	if len(data) < 9 {
		return nil, errBundleTruncated
	}
	flags := binary.LittleEndian.Uint32(data[5:9])
	if flags&^uint32(bflagKnownV2) != 0 {
		return nil, fmt.Errorf("%w: unknown feature flags %#x", errBundleCorrupt, flags)
	}
	c := wire.CursorWith(data, errBundleTruncated, errBundleCorrupt)
	c.Skip(9)
	body, method, err := wire.DecodeBlock(&c, d.body)
	if err != nil {
		return nil, err
	}
	if method == wire.BlockLZ {
		d.body = body[:0] // retain the grown buffer across decodes
	}
	if err := c.Done(); err != nil {
		return nil, err
	}
	if (flags&bflagCompressed != 0) != (method == wire.BlockLZ) {
		return nil, fmt.Errorf("%w: compression flag disagrees with block method %d", errBundleCorrupt, method)
	}
	b := d.reset()
	if method == wire.BlockLZ {
		b.Format = FormatV2LZ
	} else {
		b.Format = FormatV2Raw
	}
	b.CountRepIterations = flags&bflagCountReps != 0
	b.Partial = flags&bflagPartial != 0
	hasSigs := flags&bflagSigs != 0
	hasIvals := flags&bflagIntervals != 0

	bc := c.Sub(body)
	name, err := bc.View()
	if err != nil {
		return nil, err
	}
	d.setName(name)
	if b.Threads, err = readThreadCount(&bc); err != nil {
		return nil, err
	}
	if b.StackWordsPerThread, err = bc.Uvarint(); err != nil {
		return nil, err
	}
	if b.MemChecksum, err = bc.Uvarint(); err != nil {
		return nil, err
	}
	if err := d.readFinalState(&bc, b); err != nil {
		return nil, err
	}
	logs := d.threadLogs(b.Threads)
	for t := 0; t < b.Threads; t++ {
		raw, err := bc.View()
		if err != nil {
			return nil, err
		}
		if err := chunk.UnmarshalLogInto(&logs[t], raw); err != nil {
			return nil, fmt.Errorf("%w: chunk log %d: %w", ErrCorruptBundle, t, err)
		}
		b.ChunkLogs = append(b.ChunkLogs, &logs[t])
	}
	if b.InputLog, err = d.input.DecodeColumnar(&bc, !d.copies); err != nil {
		return nil, fmt.Errorf("%w: input log: %w", ErrCorruptBundle, err)
	}
	if hasSigs {
		if err := d.readSigLogs(&bc, b); err != nil {
			return nil, err
		}
	}
	if err := d.readCheckpointSections(&bc, b, hasIvals); err != nil {
		return nil, err
	}
	if b.Output, err = decodeOutputOps(&bc, b.InputLog.Records, b.Output); err != nil {
		return nil, err
	}
	if err := bc.Done(); err != nil {
		return nil, err
	}
	return b, nil
}

// readFinalState decodes the retired counts and final contexts shared
// by both layouts.
func (d *BundleDecoder) readFinalState(c *wire.Cursor, b *Bundle) error {
	for t := 0; t < b.Threads; t++ {
		v, err := c.Uvarint()
		if err != nil {
			return err
		}
		b.RetiredPerThread = append(b.RetiredPerThread, v)
	}
	if cap(b.FinalContexts) < b.Threads {
		b.FinalContexts = make([]isa.Context, 0, b.Threads)
	}
	for t := 0; t < b.Threads; t++ {
		ctx, err := readContext(c)
		if err != nil {
			return err
		}
		b.FinalContexts = append(b.FinalContexts, ctx)
	}
	return nil
}

// readSigLogs decodes the per-thread signature-pair section shared by
// both layouts.
func (d *BundleDecoder) readSigLogs(c *wire.Cursor, b *Bundle) error {
	b.SigLogs = make([][]capo.SigPair, b.Threads)
	for t := 0; t < b.Threads; t++ {
		n, err := c.Uvarint()
		if err != nil {
			return err
		}
		// Sig logs are parallel to chunk logs by construction; a
		// count mismatch means corruption, and catching it here keeps
		// the screening phase's pairwise indexing in bounds.
		if int(n) != b.ChunkLogs[t].Len() {
			return fmt.Errorf("%w: thread %d has %d signature pairs for %d chunks",
				ErrCorruptBundle, t, n, b.ChunkLogs[t].Len())
		}
		for i := uint64(0); i < n; i++ {
			var p capo.SigPair
			if p.Read, err = c.Blob(); err != nil {
				return err
			}
			if p.Write, err = c.Blob(); err != nil {
				return err
			}
			b.SigLogs[t] = append(b.SigLogs[t], p)
		}
	}
	return nil
}

// readCheckpointSections decodes the optional checkpoint and
// interval-checkpoint sections shared by both layouts.
func (d *BundleDecoder) readCheckpointSections(c *wire.Cursor, b *Bundle, hasIvals bool) error {
	hasCkpt, err := c.Byte()
	if err != nil {
		return fmt.Errorf("%w: missing checkpoint flag", ErrCorruptBundle)
	}
	if hasCkpt == 1 {
		if b.Checkpoint, err = readCheckpoint(c, b.Threads); err != nil {
			return err
		}
	} else if hasCkpt != 0 {
		return fmt.Errorf("%w: bad checkpoint flag %d", ErrCorruptBundle, hasCkpt)
	}
	if !hasIvals {
		return nil
	}
	n, err := c.Uvarint()
	if err != nil {
		return err
	}
	// Each interval checkpoint embeds a memory image, so the count is
	// bounded by the remaining bytes; reject absurd values early.
	if n == 0 || n > uint64(c.Remaining()) {
		return fmt.Errorf("%w: implausible interval checkpoint count %d", ErrCorruptBundle, n)
	}
	for i := uint64(0); i < n; i++ {
		ck := &IntervalCheckpoint{}
		if ck.State, err = readCheckpoint(c, b.Threads); err != nil {
			return err
		}
		for t := 0; t < b.Threads; t++ {
			p, err := c.Uvarint()
			if err != nil {
				return err
			}
			if p > uint64(b.ChunkLogs[t].Len()) {
				return fmt.Errorf("%w: interval checkpoint %d chunk position %d beyond log (%d entries)",
					ErrCorruptBundle, i, p, b.ChunkLogs[t].Len())
			}
			ck.ChunkPos = append(ck.ChunkPos, int(p))
		}
		p, err := c.Uvarint()
		if err != nil {
			return err
		}
		if p > uint64(b.InputLog.Len()) {
			return fmt.Errorf("%w: interval checkpoint %d input position %d beyond log (%d records)",
				ErrCorruptBundle, i, p, b.InputLog.Len())
		}
		ck.InputPos = int(p)
		if ck.RetiredAt, err = c.Uvarint(); err != nil {
			return err
		}
		b.IntervalCheckpoints = append(b.IntervalCheckpoints, ck)
	}
	return nil
}

// UnmarshalBundle parses a serialized bundle of any supported format
// into a fully owning Bundle: nothing in the result aliases data.
func UnmarshalBundle(data []byte) (*Bundle, error) {
	d := &BundleDecoder{copies: true}
	return d.Decode(data)
}

// OpenBundleFile maps path (read-only mmap where the platform allows)
// and decodes the bundle out of the mapping with the given decoder —
// the zero-copy load path for replay tooling. The returned close
// function unmaps the file; the bundle must not be used after it runs.
func OpenBundleFile(d *BundleDecoder, path string) (*Bundle, func() error, error) {
	data, closer, err := wire.MapFile(path)
	if err != nil {
		return nil, nil, err
	}
	b, err := d.Decode(data)
	if err != nil {
		closer()
		return nil, nil, err
	}
	return b, closer, nil
}
