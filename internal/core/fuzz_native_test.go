package core

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/workload"
)

// FuzzProgramRoundTrip is the native-fuzzing face of the hand-rolled
// property tests in fuzz_test.go: any generated program, under any
// schedule seed, core count and counting convention, must record, replay
// and verify bit-exactly — and the recording must survive serialization.
// The fuzzer explores the (program, schedule, topology) space instead of
// the fixed seed grids the deterministic tests sweep.
func FuzzProgramRoundTrip(f *testing.F) {
	// Seeds mirror the hand-rolled suites: the plain grid, the harsh
	// preemption corner, and the hardware-counting convention.
	f.Add(uint64(0), uint64(1), uint8(4), uint8(4), false, false)
	f.Add(uint64(3), uint64(7), uint8(4), uint8(2), false, false)
	f.Add(uint64(20), uint64(20), uint8(6), uint8(2), true, false)
	f.Add(uint64(60), uint64(2), uint8(4), uint8(4), false, true)
	f.Add(uint64(11), uint64(5), uint8(1), uint8(1), false, false)

	f.Fuzz(func(t *testing.T, progSeed, schedSeed uint64, threads, cores uint8, preempt, countRep bool) {
		// Clamp topology to the supported envelope so the fuzzer spends
		// its budget on semantics, not argument validation.
		nThreads := 1 + int(threads)%6
		nCores := 1 + int(cores)%4
		prog := workload.RandomProgram(progSeed, nThreads)
		cfg := recordCfg(schedSeed, func(c *machine.Config) {
			c.Threads = nThreads
			c.Cores = nCores
			if preempt {
				c.TimeSliceInstrs = 300
			}
			c.MRR.CountRepIterations = countRep
		})
		b, _, err := RecordAndVerify(prog, cfg)
		if err != nil {
			t.Fatalf("prog %d sched %d %dt/%dc preempt=%v countRep=%v: %v",
				progSeed, schedSeed, nThreads, nCores, preempt, countRep, err)
		}
		// The recording must survive serialization and still verify.
		loaded, err := UnmarshalBundle(b.Marshal())
		if err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		rr, err := Replay(prog, loaded)
		if err != nil {
			t.Fatalf("replay of reloaded bundle: %v", err)
		}
		if err := Verify(loaded, rr); err != nil {
			t.Fatalf("verify of reloaded bundle: %v", err)
		}
	})
}
