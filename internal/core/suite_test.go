package core

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/workload"
)

// TestSuiteRoundTrips is the system's flagship test: every workload in
// the evaluation suite records and replays to an identical final state at
// every thread count the paper evaluates (1, 2, 4).
func TestSuiteRoundTrips(t *testing.T) {
	for _, spec := range workload.Suite() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			for _, threads := range []int{1, 2, 4} {
				prog := spec.Build(threads)
				cfg := recordCfg(uint64(threads*7+1), func(c *machine.Config) {
					c.Threads = threads
				})
				if _, _, err := RecordAndVerify(prog, cfg); err != nil {
					t.Fatalf("threads=%d: %v", threads, err)
				}
			}
		})
	}
}

// TestSuiteRoundTripsUnderPreemption repeats the round trip with small
// time slices so every workload also exercises context-switch chunking
// and thread migration.
func TestSuiteRoundTripsUnderPreemption(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, spec := range workload.Suite() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			prog := spec.Build(8)
			cfg := recordCfg(77, func(c *machine.Config) {
				c.Cores = 2
				c.Threads = 8
				c.TimeSliceInstrs = 500
			})
			if _, _, err := RecordAndVerify(prog, cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSuiteRoundTripsManySeeds hammers the most conflict-prone kernels
// across many schedules.
func TestSuiteRoundTripsManySeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	names := []string{"radix", "barnes", "raytrace"}
	for _, name := range names {
		spec, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("workload %s missing", name)
		}
		for seed := uint64(1); seed <= 6; seed++ {
			prog := spec.Build(4)
			if _, _, err := RecordAndVerify(prog, recordCfg(seed, nil)); err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
		}
	}
}

// TestKVServerRoundTripCarriesRequests pins the application scenario:
// the entire external request stream lives in the input log, and replay
// reproduces the service byte-for-byte.
func TestKVServerRoundTrips(t *testing.T) {
	spec, ok := workload.ByName("kvserver")
	if !ok {
		t.Fatal("kvserver missing from suite")
	}
	for _, seed := range []uint64{1, 2, 3} {
		prog := spec.Build(4)
		b, _, err := RecordAndVerify(prog, recordCfg(seed, nil))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// 120 requests x 24 bytes x 4 threads of external input data.
		if got := b.InputLog.DataBytes(); got != 120*24*4 {
			t.Errorf("seed %d: input data = %d bytes, want %d", seed, got, 120*24*4)
		}
	}
}

// TestByteShareRecordsConflicts pins the sub-word story: threads touch
// disjoint bytes, but line-granularity conflict detection (correctly,
// conservatively) orders them — and replay stays exact.
func TestByteShareRecordsConflicts(t *testing.T) {
	spec, ok := workload.ByName("byteshare")
	if !ok {
		t.Fatal("byteshare missing")
	}
	b, _, err := RecordAndVerify(spec.Build(4), recordCfg(5, nil))
	if err != nil {
		t.Fatal(err)
	}
	conflicts := 0
	for _, l := range b.ChunkLogs {
		for _, e := range l.Entries {
			if e.Reason.IsConflict() {
				conflicts++
			}
		}
	}
	if conflicts == 0 {
		t.Error("byte-disjoint sharing produced no line-level conflicts")
	}
}
