package core

import (
	"fmt"
	"io"

	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/segment"
)

// StreamRecord records prog under cfg while streaming the session to w
// as a segmented, checksummed stream (see internal/segment). The
// returned bundle is the same complete recording Record would produce;
// the stream is its crash-consistent on-the-wire twin — if the recorder
// had died mid-run, SalvageStream could still recover a consistent
// prefix from whatever reached w.
func StreamRecord(prog *isa.Program, cfg machine.Config, w io.Writer) (*Bundle, error) {
	cfg.StreamTo = w
	return Record(prog, cfg)
}

// Salvaged is a recording recovered from a (possibly damaged) segmented
// stream.
type Salvaged struct {
	// Bundle is the reconstructed recording. Complete streams yield a
	// normal bundle; torn streams yield a Partial one (validated log
	// prefix, no reference final state).
	Bundle *Bundle
	// Report describes what the salvage pass kept and why it stopped.
	Report *segment.Report

	checkpoint *segment.CheckpointPayload
	base       *segment.CheckpointPayload
	window     uint64
}

// SalvageStream scans a segmented stream, discards any torn or corrupt
// suffix, and reconstructs the longest consistent recording prefix. It
// errors only when no usable manifest exists; lesser damage yields a
// Partial bundle plus a report describing the cut.
func SalvageStream(data []byte) (*Salvaged, error) {
	st, rep, err := segment.Salvage(data)
	if err != nil {
		return nil, err
	}
	if st.Manifest.BaseCheckpoint && st.Base == nil {
		// A windowed stream whose history was evicted is only replayable
		// from its base checkpoint; losing the base loses the recording.
		return nil, fmt.Errorf("core: windowed stream lost its base checkpoint: %w", segment.ErrTruncated)
	}
	b := &Bundle{
		ProgramName:         st.Manifest.ProgramName,
		Threads:             st.Manifest.Threads,
		StackWordsPerThread: st.Manifest.StackWordsPerThread,
		CountRepIterations:  st.Manifest.CountRepIterations,
		ChunkLogs:           st.ChunkLogs,
		InputLog:            st.InputLog,
		Partial:             !rep.Complete,
	}
	if st.Final != nil {
		b.MemChecksum = st.Final.MemChecksum
		b.Output = st.Final.Output
		b.FinalContexts = st.Final.FinalContexts
		b.RetiredPerThread = st.Final.RetiredPerThread
	}
	// Every checkpoint that survived inside the salvaged prefix becomes
	// an interval partition point; truncation (if any) lands in the final
	// interval because unusable checkpoints were already dropped.
	for _, cp := range st.Checkpoints {
		b.IntervalCheckpoints = append(b.IntervalCheckpoints, &IntervalCheckpoint{
			State:     checkpointStateFromPayload(cp),
			ChunkPos:  append([]int(nil), cp.ChunkPos...),
			InputPos:  cp.InputPos,
			RetiredAt: cp.RetiredAt,
		})
	}
	if st.Base != nil {
		// Replay-from-window-base: the retained logs start at the base
		// checkpoint, so the bundle carries its state as the initial
		// state (exactly like a flight-recorder tail bundle). The base
		// also sits at IntervalCheckpoints[0]; partitioning skips it as a
		// non-advancing cut and the remaining checkpoints still split the
		// window for parallel replay.
		b.Checkpoint = b.IntervalCheckpoints[0].State
	}
	return &Salvaged{
		Bundle: b, Report: rep,
		checkpoint: st.Checkpoint, base: st.Base, window: st.Manifest.Window,
	}, nil
}

// checkpointStateFromPayload converts a streamed checkpoint payload into
// the bundle's in-memory checkpoint representation.
func checkpointStateFromPayload(cp *segment.CheckpointPayload) *CheckpointState {
	cs := &CheckpointState{
		Mem:          mem.New(uint64(len(cp.MemImage))),
		HandlerPC:    cp.HandlerPC,
		HandlerOK:    cp.HandlerOK,
		OutputPrefix: append([]byte(nil), cp.Output...),
	}
	cs.Mem.StoreBytes(0, cp.MemImage)
	for t := range cp.Contexts {
		cs.Contexts = append(cs.Contexts, cp.Contexts[t])
		cs.Exited = append(cs.Exited, cp.Exited[t])
		cs.SigRegs = append(cs.SigRegs, cp.SigRegs[t])
		cs.SigPC = append(cs.SigPC, cp.SigPC[t])
	}
	return cs
}

// HasCheckpoint reports whether a flight-recorder snapshot survived
// inside the salvaged prefix.
func (s *Salvaged) HasCheckpoint() bool { return s.checkpoint != nil }

// Window returns the stream's retention window in checkpoint intervals
// (0: unbounded stream).
func (s *Salvaged) Window() uint64 { return s.window }

// WindowBase reports the retention window's base checkpoint: the
// retired-instruction count replay resumes from, and whether the stream
// had evicted history at all (false for unbounded streams and windowed
// streams young enough to still reach back to program start).
func (s *Salvaged) WindowBase() (retiredAt uint64, ok bool) {
	if s.base == nil {
		return 0, false
	}
	return s.base.RetiredAt, true
}

// Tail returns the flight-recorder tail bundle: the last surviving
// checkpoint plus only the salvaged log entries after it. Like the full
// salvaged bundle, the tail is Partial when the stream was torn.
func (s *Salvaged) Tail() (*Bundle, error) {
	if s.checkpoint == nil {
		return nil, ErrNoCheckpoint
	}
	cp := s.checkpoint
	cs := checkpointStateFromPayload(cp)
	full := s.Bundle
	tail := &Bundle{
		ProgramName:         full.ProgramName,
		Threads:             full.Threads,
		StackWordsPerThread: full.StackWordsPerThread,
		CountRepIterations:  full.CountRepIterations,
		Partial:             full.Partial,
		MemChecksum:         full.MemChecksum,
		Output:              full.Output,
		FinalContexts:       full.FinalContexts,
		RetiredPerThread:    full.RetiredPerThread,
		Checkpoint:          cs,
	}
	for t, l := range full.ChunkLogs {
		tail.ChunkLogs = append(tail.ChunkLogs, l.Slice(cp.ChunkPos[t]))
	}
	tail.InputLog = full.InputLog.Slice(cp.InputPos)
	return tail, nil
}
