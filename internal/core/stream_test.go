package core

import (
	"bytes"
	"testing"

	"repro/internal/machine"
	"repro/internal/segment"
	"repro/internal/workload"
)

func streamRecorded(t *testing.T, threads int, mut func(*machine.Config)) (*Bundle, []byte) {
	t.Helper()
	spec, _ := workload.ByName("radix")
	prog := spec.Build(threads)
	cfg := recordCfg(5, func(c *machine.Config) {
		c.Threads = threads
		c.FlushEveryChunks = 8
		if mut != nil {
			mut(c)
		}
	})
	var buf bytes.Buffer
	b, err := StreamRecord(prog, cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	return b, buf.Bytes()
}

func TestStreamSalvageRoundTrip(t *testing.T) {
	full, data := streamRecorded(t, 4, nil)
	sv, err := SalvageStream(data)
	if err != nil {
		t.Fatal(err)
	}
	if !sv.Report.Complete || sv.Bundle.Partial {
		t.Fatalf("undamaged stream salvaged as partial: %s", sv.Report)
	}
	// The salvaged bundle is byte-identical to the recorded one.
	if !bytes.Equal(sv.Bundle.Marshal(), full.Marshal()) {
		t.Fatal("salvaged bundle differs from recorded bundle")
	}
	spec, _ := workload.ByName("radix")
	rr, err := Replay(spec.Build(4), sv.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(sv.Bundle, rr); err != nil {
		t.Fatal(err)
	}
}

func TestSalvageTruncatedStreamReplaysPrefix(t *testing.T) {
	full, data := streamRecorded(t, 4, nil)
	offs := segment.Offsets(data)
	if len(offs) < 4 {
		t.Fatalf("stream too short: %d segments", len(offs))
	}
	cut := offs[len(offs)/2]
	sv, err := SalvageStream(data[:cut])
	if err != nil {
		t.Fatal(err)
	}
	if !sv.Bundle.Partial {
		t.Fatal("torn stream salvaged as complete")
	}
	spec, _ := workload.ByName("radix")
	rr, err := Replay(spec.Build(4), sv.Bundle)
	if err != nil {
		t.Fatalf("prefix replay: %v", err)
	}
	if rr.Truncation == nil || len(rr.Truncation.Threads) == 0 {
		t.Fatal("prefix replay reported no truncation")
	}
	if !bytes.HasPrefix(full.Output, rr.Output) {
		t.Fatalf("replayed output (%d bytes) is not a prefix of the recorded output (%d bytes)",
			len(rr.Output), len(full.Output))
	}
	for tid, r := range rr.RetiredPerThread {
		if r > full.RetiredPerThread[tid] {
			t.Fatalf("thread %d replayed %d instructions, recording retired %d", tid, r, full.RetiredPerThread[tid])
		}
	}
	if err := Verify(sv.Bundle, rr); err == nil {
		t.Fatal("Verify accepted a partial bundle")
	}
}

// TestSalvagedTailReplay exercises the flight-recorder path on damaged
// streams: salvage a stream truncated at and after its checkpoint, take
// the tail, and replay from the restored snapshot.
func TestSalvagedTailReplay(t *testing.T) {
	full, data := streamRecorded(t, 4, func(c *machine.Config) {
		c.CheckpointEveryInstrs = 40_000
	})
	if full.RecordStats.Checkpoints == 0 {
		t.Fatal("no checkpoints taken")
	}
	offs := segment.Offsets(data)
	// Find the cut that ends exactly at the first checkpoint segment.
	ckptCut := -1
	for _, off := range offs {
		sv, err := SalvageStream(data[:off])
		if err != nil {
			t.Fatal(err)
		}
		if sv.HasCheckpoint() {
			ckptCut = off
			break
		}
	}
	if ckptCut < 0 {
		t.Fatal("no prefix contains the checkpoint")
	}
	spec, _ := workload.ByName("radix")

	cuts := []int{ckptCut, (ckptCut + len(data)) / 2, len(data)}
	for _, cut := range cuts {
		sv, err := SalvageStream(data[:cut])
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !sv.HasCheckpoint() {
			t.Fatalf("cut %d: checkpoint lost", cut)
		}
		tail, err := sv.Tail()
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if tail.Partial != (cut != len(data)) {
			t.Fatalf("cut %d: Partial=%v", cut, tail.Partial)
		}
		rr, err := Replay(spec.Build(4), tail)
		if err != nil {
			t.Fatalf("cut %d: tail replay: %v", cut, err)
		}
		if !bytes.HasPrefix(full.Output, rr.Output) {
			t.Fatalf("cut %d: tail output not a prefix of the recording's", cut)
		}
		if cut == len(data) {
			if err := Verify(tail, rr); err != nil {
				t.Fatalf("full-stream tail fails verification: %v", err)
			}
		}
	}
	// A mid-stream cut's salvage with no usable checkpoint yet still
	// reports ErrNoCheckpoint cleanly.
	sv, err := SalvageStream(data[:offs[1]])
	if err != nil {
		t.Fatal(err)
	}
	if sv.HasCheckpoint() {
		t.Skip("checkpoint landed in the second segment")
	}
	if _, err := sv.Tail(); err != ErrNoCheckpoint {
		t.Fatalf("Tail on checkpoint-free salvage: %v", err)
	}
}

func TestPartialBundleMarshalRoundTrip(t *testing.T) {
	_, data := streamRecorded(t, 2, nil)
	offs := segment.Offsets(data)
	sv, err := SalvageStream(data[:offs[len(offs)/2]])
	if err != nil {
		t.Fatal(err)
	}
	if !sv.Bundle.Partial {
		t.Fatal("expected a partial bundle")
	}
	raw := sv.Bundle.Marshal()
	if raw[5]&2 == 0 {
		t.Fatal("partial flag bit not set in serialized bundle")
	}
	got, err := UnmarshalBundle(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Partial {
		t.Fatal("Partial lost in marshal round trip")
	}
}
