package core

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/machine"
	"repro/internal/replay"
	"repro/internal/segment"
	"repro/internal/workload"
)

// sameReplayResult asserts two replay results are bit-identical in every
// observable field (FinalMem compared by image equality).
func sameReplayResult(t *testing.T, serial, par *replay.Result) {
	t.Helper()
	if par.MemChecksum != serial.MemChecksum {
		t.Errorf("MemChecksum %#x != serial %#x", par.MemChecksum, serial.MemChecksum)
	}
	if !bytes.Equal(par.Output, serial.Output) {
		t.Errorf("Output %d bytes != serial %d bytes", len(par.Output), len(serial.Output))
	}
	if !reflect.DeepEqual(par.FinalContexts, serial.FinalContexts) {
		t.Error("FinalContexts differ")
	}
	if !reflect.DeepEqual(par.RetiredPerThread, serial.RetiredPerThread) {
		t.Errorf("RetiredPerThread %v != serial %v", par.RetiredPerThread, serial.RetiredPerThread)
	}
	if par.Steps != serial.Steps {
		t.Errorf("Steps %d != serial %d", par.Steps, serial.Steps)
	}
	if par.ChunksExecuted != serial.ChunksExecuted {
		t.Errorf("ChunksExecuted %d != serial %d", par.ChunksExecuted, serial.ChunksExecuted)
	}
	if par.InputsApplied != serial.InputsApplied {
		t.Errorf("InputsApplied %d != serial %d", par.InputsApplied, serial.InputsApplied)
	}
	if !reflect.DeepEqual(par.Truncation, serial.Truncation) {
		t.Errorf("Truncation %+v != serial %+v", par.Truncation, serial.Truncation)
	}
	if !par.FinalMem.Equal(serial.FinalMem) {
		t.Error("FinalMem images differ")
	}
}

func TestParallelReplayMatchesSerialAcrossSuite(t *testing.T) {
	for _, spec := range workload.Suite() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			full := recordWithCheckpoint(t, spec, 4, 20_000, 3)
			prog := spec.Build(4)
			serial, err := ReplayWorkers(prog, full, 1)
			if err != nil {
				t.Fatal(err)
			}
			par, err := ReplayWorkers(prog, full, 4)
			if err != nil {
				t.Fatal(err)
			}
			sameReplayResult(t, serial, par)
			if len(full.IntervalCheckpoints) > 0 {
				if err := Verify(full, par); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

func TestParallelReplayNegativeWorkersUsesGOMAXPROCS(t *testing.T) {
	spec, _ := workload.ByName("radix")
	full := recordWithCheckpoint(t, spec, 4, 30_000, 5)
	prog := spec.Build(4)
	serial, err := Replay(prog, full)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ReplayWorkers(prog, full, -1)
	if err != nil {
		t.Fatal(err)
	}
	sameReplayResult(t, serial, par)
}

// TestTailAtEveryCheckpoint is the interval off-by-one regression test:
// a tail resumed from any checkpoint must replay to the recording's
// final state, and the instruction stream after the boundary must agree
// with the full replay instruction-for-instruction — the boundary
// instruction is neither re-executed nor skipped.
func TestTailAtEveryCheckpoint(t *testing.T) {
	for _, spec := range workload.Suite() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			full := recordWithCheckpoint(t, spec, 4, 20_000, 9)
			if len(full.IntervalCheckpoints) == 0 {
				t.Skip("workload too short for a checkpoint")
			}
			if int(full.RecordStats.Checkpoints) != len(full.IntervalCheckpoints) {
				t.Fatalf("bundle carries %d interval checkpoints, recorder took %d",
					len(full.IntervalCheckpoints), full.RecordStats.Checkpoints)
			}
			prog := spec.Build(4)
			for k := range full.IntervalCheckpoints {
				tail, err := TailAt(full, k)
				if err != nil {
					t.Fatalf("checkpoint %d: %v", k, err)
				}
				rr, err := Replay(prog, tail)
				if err != nil {
					t.Fatalf("checkpoint %d: tail replay: %v", k, err)
				}
				if err := Verify(tail, rr); err != nil {
					t.Fatalf("checkpoint %d: %v", k, err)
				}
				// Instruction-for-instruction agreement across the boundary:
				// trace the same absolute retired window on the full bundle
				// and the tail and compare streams.
				ck := full.IntervalCheckpoints[k]
				for tid := 0; tid < full.Threads; tid++ {
					from := ck.State.Contexts[tid].Retired
					to := from + 50
					if final := full.RetiredPerThread[tid]; to > final {
						to = final
					}
					if to <= from {
						continue
					}
					fullTr, err := Trace(prog, full, tid, from, to)
					if err != nil {
						t.Fatalf("checkpoint %d thread %d: full trace: %v", k, tid, err)
					}
					tailTr, err := Trace(prog, tail, tid, from, to)
					if err != nil {
						t.Fatalf("checkpoint %d thread %d: tail trace: %v", k, tid, err)
					}
					if !reflect.DeepEqual(fullTr, tailTr) {
						t.Fatalf("checkpoint %d thread %d: window [%d,%d) diverges: full %d entries, tail %d",
							k, tid, from, to, len(fullTr), len(tailTr))
					}
				}
			}
			// TailAt at the last checkpoint matches Tail.
			last, err := TailAt(full, len(full.IntervalCheckpoints)-1)
			if err != nil {
				t.Fatal(err)
			}
			legacy, err := Tail(full)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(last.Marshal(), legacy.Marshal()) {
				t.Error("TailAt(last) and Tail serialize differently")
			}
		})
	}
}

func TestTailAtRejectsBadIndex(t *testing.T) {
	spec, _ := workload.ByName("radix")
	full := recordWithCheckpoint(t, spec, 4, 30_000, 5)
	if len(full.IntervalCheckpoints) == 0 {
		t.Fatal("no checkpoints")
	}
	if _, err := TailAt(full, -1); err == nil {
		t.Error("TailAt(-1) accepted")
	}
	if _, err := TailAt(full, len(full.IntervalCheckpoints)); err == nil {
		t.Error("TailAt(len) accepted")
	}
	plain, err := Record(workload.Counter(50, 2), recordCfg(1, nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TailAt(plain, 0); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("TailAt without checkpoints: %v", err)
	}
}

func TestIntervalCheckpointsSerializeRoundTrip(t *testing.T) {
	spec, _ := workload.ByName("water")
	full := recordWithCheckpoint(t, spec, 4, 30_000, 7)
	if len(full.IntervalCheckpoints) == 0 {
		t.Fatal("no checkpoints")
	}
	raw := full.Marshal()
	if raw[5]&8 == 0 {
		t.Fatal("interval-checkpoint flag bit not set")
	}
	got, err := UnmarshalBundle(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.IntervalCheckpoints) != len(full.IntervalCheckpoints) {
		t.Fatalf("%d interval checkpoints after round trip, want %d",
			len(got.IntervalCheckpoints), len(full.IntervalCheckpoints))
	}
	if !bytes.Equal(got.Marshal(), raw) {
		t.Fatal("marshal not closed under round trip")
	}
	// The deserialized bundle still replays in parallel to the same state.
	prog := spec.Build(4)
	serial, err := Replay(prog, full)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ReplayWorkers(prog, got, 4)
	if err != nil {
		t.Fatal(err)
	}
	sameReplayResult(t, serial, par)
}

// TestParallelTruncatedMatchesSerial covers truncation landing inside
// the final interval: salvaged prefixes replayed with Workers > 1 must
// report the identical Truncation (and everything else) as serial.
func TestParallelTruncatedMatchesSerial(t *testing.T) {
	_, data := streamRecorded(t, 4, func(c *machine.Config) {
		c.CheckpointEveryInstrs = 25_000
		c.FlushEveryChunks = 4
	})
	offs := segment.Offsets(data)
	if len(offs) < 6 {
		t.Fatalf("stream too short: %d segments", len(offs))
	}
	spec, _ := workload.ByName("radix")
	prog := spec.Build(4)
	sawParallelTruncated := false
	// Sweep cut points from just past the first checkpoint to the full
	// stream so truncation lands at different positions inside (and at)
	// the final interval.
	for _, off := range offs {
		sv, err := SalvageStream(data[:off])
		if err != nil {
			t.Fatalf("cut %d: %v", off, err)
		}
		serial, err := ReplayWorkers(prog, sv.Bundle, 1)
		if err != nil {
			t.Fatalf("cut %d: serial: %v", off, err)
		}
		par, err := ReplayWorkers(prog, sv.Bundle, 4)
		if err != nil {
			t.Fatalf("cut %d: parallel: %v", off, err)
		}
		sameReplayResult(t, serial, par)
		if len(sv.Bundle.IntervalCheckpoints) > 0 && par.Truncation != nil {
			sawParallelTruncated = true
		}
	}
	if !sawParallelTruncated {
		t.Error("no cut produced a truncated parallel replay over a checkpointed prefix")
	}
}

// TestParallelDivergenceNamesAbsoluteChunk checks that a divergence
// inside a late interval is reported with the same absolute thread and
// chunk index serial replay reports.
func TestParallelDivergenceNamesAbsoluteChunk(t *testing.T) {
	spec, _ := workload.ByName("radix")
	full := recordWithCheckpoint(t, spec, 4, 30_000, 5)
	if len(full.IntervalCheckpoints) == 0 {
		t.Fatal("no checkpoints")
	}
	// Corrupt a chunk entry after the last checkpoint so the divergence
	// lands in the final interval.
	last := full.IntervalCheckpoints[len(full.IntervalCheckpoints)-1]
	tid := -1
	for t0 := 0; t0 < full.Threads; t0++ {
		if full.ChunkLogs[t0].Len() > last.ChunkPos[t0] {
			tid = t0
			break
		}
	}
	if tid < 0 {
		t.Skip("no post-checkpoint chunks")
	}
	full.ChunkLogs[tid].Entries[last.ChunkPos[tid]].Size += 3
	prog := spec.Build(4)
	_, serialErr := ReplayWorkers(prog, full, 1)
	_, parErr := ReplayWorkers(prog, full, 4)
	var sd, pd *replay.DivergenceError
	if !errors.As(serialErr, &sd) {
		t.Fatalf("serial error %v is not a divergence", serialErr)
	}
	if !errors.As(parErr, &pd) {
		t.Fatalf("parallel error %v is not a divergence", parErr)
	}
	if sd.Thread != pd.Thread || sd.Chunk != pd.Chunk {
		t.Errorf("parallel divergence (thread %d, chunk %d) != serial (thread %d, chunk %d)",
			pd.Thread, pd.Chunk, sd.Thread, sd.Chunk)
	}
}

// TestParallelBoundaryMismatchDetected tampers with a checkpoint's
// snapshot so the interval before it no longer reproduces its state.
func TestParallelBoundaryMismatchDetected(t *testing.T) {
	spec, _ := workload.ByName("radix")
	full := recordWithCheckpoint(t, spec, 4, 30_000, 5)
	if len(full.IntervalCheckpoints) == 0 {
		t.Fatal("no checkpoints")
	}
	full.IntervalCheckpoints[0].State.Contexts[1].Regs[3] ^= 0xdead
	prog := spec.Build(4)
	_, err := ReplayWorkers(prog, full, 4)
	var be *replay.BoundaryError
	if !errors.As(err, &be) {
		t.Fatalf("tampered checkpoint: got %v, want a boundary error", err)
	}
	if be.Interval != 0 || be.Thread != 1 {
		t.Errorf("boundary error names interval %d thread %d, want 0/1", be.Interval, be.Thread)
	}
}

// TestParallelReplayAcrossThreadTermination pins the halt-vs-exit edge
// case: the machine marks a HALTed thread "exited" in checkpoint
// snapshots, while the replayer only sets its exited flag on the exit
// syscall. With a checkpoint cadence fine enough that threads terminate
// at different intervals, boundary validation must accept a thread that
// halted inside an interior interval — and parallel replay must still
// match serial bit for bit.
func TestParallelReplayAcrossThreadTermination(t *testing.T) {
	spec, ok := workload.ByName("counter")
	if !ok {
		t.Fatal("counter workload missing")
	}
	full := recordWithCheckpoint(t, spec, 4, 3000, 1)
	if len(full.IntervalCheckpoints) == 0 {
		t.Fatal("no checkpoints taken")
	}
	terminated := false
	for _, ck := range full.IntervalCheckpoints {
		for _, ex := range ck.State.Exited {
			if ex {
				terminated = true
			}
		}
	}
	if !terminated {
		t.Skip("no thread terminated before a checkpoint; cadence too coarse to exercise the edge")
	}
	prog := spec.Build(4)
	serial, err := ReplayWorkers(prog, full, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ReplayWorkers(prog, full, 4)
	if err != nil {
		t.Fatal(err)
	}
	sameReplayResult(t, serial, par)
	if err := Verify(full, par); err != nil {
		t.Fatal(err)
	}
}
