package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/capo"
	"repro/internal/chunk"
	"repro/internal/isa"
	"repro/internal/mem"
)

// ErrCorruptBundle reports a malformed serialized bundle.
var ErrCorruptBundle = errors.New("core: corrupt bundle")

var bundleMagic = [4]byte{'Q', 'R', 'B', 'N'}

const bundleVersion = 2

// Marshal serializes the bundle (logs, metadata and reference state;
// RecordStats is runtime-only and not serialized). Chunk logs are stored
// in the paper-style timestamp-delta encoding.
func (b *Bundle) Marshal() []byte {
	out := make([]byte, 0, 4096)
	out = append(out, bundleMagic[:]...)
	out = append(out, bundleVersion)
	var flags byte
	if b.CountRepIterations {
		flags |= 1
	}
	if b.Partial {
		flags |= 2
	}
	if b.SigLogs != nil {
		flags |= 4
	}
	if len(b.IntervalCheckpoints) > 0 {
		flags |= 8
	}
	out = append(out, flags)
	out = appendString(out, b.ProgramName)
	out = binary.AppendUvarint(out, uint64(b.Threads))
	out = binary.AppendUvarint(out, b.StackWordsPerThread)
	out = binary.AppendUvarint(out, b.MemChecksum)
	out = appendBytes(out, b.Output)
	// Always emit Threads entries: a Partial bundle has no reference
	// final state, so pad with zero values the reader can skip past.
	for t := 0; t < b.Threads; t++ {
		var r uint64
		if t < len(b.RetiredPerThread) {
			r = b.RetiredPerThread[t]
		}
		out = binary.AppendUvarint(out, r)
	}
	for t := 0; t < b.Threads; t++ {
		var ctx isa.Context
		if t < len(b.FinalContexts) {
			ctx = b.FinalContexts[t]
		}
		out = appendContext(out, ctx)
	}
	for _, l := range b.ChunkLogs {
		out = appendBytes(out, l.Marshal(chunk.Delta{}))
	}
	out = appendBytes(out, b.InputLog.Marshal())
	if b.SigLogs != nil {
		// One signature log per thread, parallel to the chunk logs; each
		// pair is the chunk's serialized read then write filter.
		for t := 0; t < b.Threads; t++ {
			var pairs []capo.SigPair
			if t < len(b.SigLogs) {
				pairs = b.SigLogs[t]
			}
			out = binary.AppendUvarint(out, uint64(len(pairs)))
			for _, p := range pairs {
				out = appendBytes(out, p.Read)
				out = appendBytes(out, p.Write)
			}
		}
	}
	if b.Checkpoint == nil {
		out = append(out, 0)
	} else {
		out = append(out, 1)
		out = appendCheckpoint(out, b.Checkpoint)
	}
	if len(b.IntervalCheckpoints) > 0 {
		out = binary.AppendUvarint(out, uint64(len(b.IntervalCheckpoints)))
		for _, ck := range b.IntervalCheckpoints {
			out = appendCheckpoint(out, ck.State)
			for t := 0; t < b.Threads; t++ {
				var p int
				if t < len(ck.ChunkPos) {
					p = ck.ChunkPos[t]
				}
				out = binary.AppendUvarint(out, uint64(p))
			}
			out = binary.AppendUvarint(out, uint64(ck.InputPos))
			out = binary.AppendUvarint(out, ck.RetiredAt)
		}
	}
	return out
}

func appendCheckpoint(out []byte, cs *CheckpointState) []byte {
	size := cs.Mem.Size()
	out = binary.AppendUvarint(out, size)
	out = append(out, cs.Mem.LoadBytes(0, size)...)
	for t := range cs.Contexts {
		out = appendContext(out, cs.Contexts[t])
		var flags byte
		if cs.Exited[t] {
			flags = 1
		}
		out = append(out, flags)
		for _, r := range cs.SigRegs[t] {
			out = binary.AppendUvarint(out, r)
		}
		out = binary.AppendUvarint(out, uint64(cs.SigPC[t]))
	}
	out = binary.AppendUvarint(out, uint64(cs.HandlerPC))
	if cs.HandlerOK {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	return appendBytes(out, cs.OutputPrefix)
}

func appendString(dst []byte, s string) []byte { return appendBytes(dst, []byte(s)) }

func appendBytes(dst, p []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(p)))
	return append(dst, p...)
}

func appendContext(dst []byte, ctx isa.Context) []byte {
	for _, r := range ctx.Regs {
		dst = binary.AppendUvarint(dst, r)
	}
	dst = binary.AppendUvarint(dst, uint64(ctx.PC))
	dst = binary.AppendUvarint(dst, ctx.Retired)
	var flags byte
	if ctx.Halted {
		flags |= 1
	}
	if ctx.RepActive {
		flags |= 2
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, ctx.RepDone)
	return dst
}

type bundleReader struct {
	data []byte
	pos  int
}

func (r *bundleReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		return 0, ErrCorruptBundle
	}
	r.pos += n
	return v, nil
}

func (r *bundleReader) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	// Compare as uint64: a huge length must not overflow int.
	if n > uint64(len(r.data)-r.pos) {
		return nil, ErrCorruptBundle
	}
	out := append([]byte(nil), r.data[r.pos:r.pos+int(n)]...)
	r.pos += int(n)
	return out, nil
}

func (r *bundleReader) context() (isa.Context, error) {
	var ctx isa.Context
	for i := range ctx.Regs {
		v, err := r.uvarint()
		if err != nil {
			return ctx, err
		}
		ctx.Regs[i] = v
	}
	pc, err := r.uvarint()
	if err != nil {
		return ctx, err
	}
	ctx.PC = int(pc)
	if ctx.Retired, err = r.uvarint(); err != nil {
		return ctx, err
	}
	if r.pos >= len(r.data) {
		return ctx, ErrCorruptBundle
	}
	flags := r.data[r.pos]
	r.pos++
	ctx.Halted = flags&1 != 0
	ctx.RepActive = flags&2 != 0
	if ctx.RepDone, err = r.uvarint(); err != nil {
		return ctx, err
	}
	return ctx, nil
}

// UnmarshalBundle parses a serialized bundle.
func UnmarshalBundle(data []byte) (*Bundle, error) {
	if len(data) < 5 || [4]byte(data[0:4]) != bundleMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorruptBundle)
	}
	if data[4] != bundleVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorruptBundle, data[4])
	}
	if len(data) < 6 {
		return nil, ErrCorruptBundle
	}
	if data[5] > 15 {
		return nil, fmt.Errorf("%w: unknown flags %#x", ErrCorruptBundle, data[5])
	}
	countReps := data[5]&1 != 0
	partial := data[5]&2 != 0
	hasSigs := data[5]&4 != 0
	hasIvals := data[5]&8 != 0
	r := &bundleReader{data: data, pos: 6}
	name, err := r.bytes()
	if err != nil {
		return nil, err
	}
	threads, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if threads == 0 || threads > 1<<16 {
		return nil, fmt.Errorf("%w: implausible thread count %d", ErrCorruptBundle, threads)
	}
	b := &Bundle{ProgramName: string(name), Threads: int(threads), CountRepIterations: countReps, Partial: partial}
	if b.StackWordsPerThread, err = r.uvarint(); err != nil {
		return nil, err
	}
	if b.MemChecksum, err = r.uvarint(); err != nil {
		return nil, err
	}
	if b.Output, err = r.bytes(); err != nil {
		return nil, err
	}
	for t := 0; t < b.Threads; t++ {
		v, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		b.RetiredPerThread = append(b.RetiredPerThread, v)
	}
	for t := 0; t < b.Threads; t++ {
		ctx, err := r.context()
		if err != nil {
			return nil, err
		}
		b.FinalContexts = append(b.FinalContexts, ctx)
	}
	for t := 0; t < b.Threads; t++ {
		raw, err := r.bytes()
		if err != nil {
			return nil, err
		}
		l, err := chunk.UnmarshalLog(raw)
		if err != nil {
			return nil, fmt.Errorf("chunk log %d: %w", t, err)
		}
		b.ChunkLogs = append(b.ChunkLogs, l)
	}
	raw, err := r.bytes()
	if err != nil {
		return nil, err
	}
	if b.InputLog, err = capo.UnmarshalInputLog(raw); err != nil {
		return nil, err
	}
	if hasSigs {
		b.SigLogs = make([][]capo.SigPair, b.Threads)
		for t := 0; t < b.Threads; t++ {
			n, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			// Sig logs are parallel to chunk logs by construction; a
			// count mismatch means corruption, and catching it here keeps
			// the screening phase's pairwise indexing in bounds.
			if int(n) != b.ChunkLogs[t].Len() {
				return nil, fmt.Errorf("%w: thread %d has %d signature pairs for %d chunks",
					ErrCorruptBundle, t, n, b.ChunkLogs[t].Len())
			}
			for i := uint64(0); i < n; i++ {
				var p capo.SigPair
				if p.Read, err = r.bytes(); err != nil {
					return nil, err
				}
				if p.Write, err = r.bytes(); err != nil {
					return nil, err
				}
				b.SigLogs[t] = append(b.SigLogs[t], p)
			}
		}
	}
	if r.pos >= len(data) {
		return nil, fmt.Errorf("%w: missing checkpoint flag", ErrCorruptBundle)
	}
	hasCkpt := data[r.pos]
	r.pos++
	if hasCkpt == 1 {
		if b.Checkpoint, err = readCheckpoint(r, b.Threads); err != nil {
			return nil, err
		}
	} else if hasCkpt != 0 {
		return nil, fmt.Errorf("%w: bad checkpoint flag %d", ErrCorruptBundle, hasCkpt)
	}
	if hasIvals {
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		// Each interval checkpoint embeds a memory image, so the count is
		// bounded by the remaining bytes; reject absurd values early.
		if n == 0 || n > uint64(len(data)-r.pos) {
			return nil, fmt.Errorf("%w: implausible interval checkpoint count %d", ErrCorruptBundle, n)
		}
		for i := uint64(0); i < n; i++ {
			ck := &IntervalCheckpoint{}
			if ck.State, err = readCheckpoint(r, b.Threads); err != nil {
				return nil, err
			}
			for t := 0; t < b.Threads; t++ {
				p, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				if p > uint64(b.ChunkLogs[t].Len()) {
					return nil, fmt.Errorf("%w: interval checkpoint %d chunk position %d beyond log (%d entries)",
						ErrCorruptBundle, i, p, b.ChunkLogs[t].Len())
				}
				ck.ChunkPos = append(ck.ChunkPos, int(p))
			}
			p, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if p > uint64(b.InputLog.Len()) {
				return nil, fmt.Errorf("%w: interval checkpoint %d input position %d beyond log (%d records)",
					ErrCorruptBundle, i, p, b.InputLog.Len())
			}
			ck.InputPos = int(p)
			if ck.RetiredAt, err = r.uvarint(); err != nil {
				return nil, err
			}
			b.IntervalCheckpoints = append(b.IntervalCheckpoints, ck)
		}
	}
	if r.pos != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorruptBundle, len(data)-r.pos)
	}
	return b, nil
}

func readCheckpoint(r *bundleReader, threads int) (*CheckpointState, error) {
	size, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if size > 1<<32 || r.pos+int(size) > len(r.data) {
		return nil, fmt.Errorf("%w: implausible checkpoint memory size %d", ErrCorruptBundle, size)
	}
	cs := &CheckpointState{Mem: mem.New(size)}
	cs.Mem.StoreBytes(0, r.data[r.pos:r.pos+int(size)])
	r.pos += int(size)
	for t := 0; t < threads; t++ {
		ctx, err := r.context()
		if err != nil {
			return nil, err
		}
		cs.Contexts = append(cs.Contexts, ctx)
		if r.pos >= len(r.data) {
			return nil, ErrCorruptBundle
		}
		cs.Exited = append(cs.Exited, r.data[r.pos]&1 != 0)
		r.pos++
		var regs [isa.NumRegs]uint64
		for i := range regs {
			if regs[i], err = r.uvarint(); err != nil {
				return nil, err
			}
		}
		cs.SigRegs = append(cs.SigRegs, regs)
		pc, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		cs.SigPC = append(cs.SigPC, int(pc))
	}
	hpc, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	cs.HandlerPC = int(hpc)
	if r.pos >= len(r.data) {
		return nil, ErrCorruptBundle
	}
	cs.HandlerOK = r.data[r.pos] == 1
	r.pos++
	if cs.OutputPrefix, err = r.bytes(); err != nil {
		return nil, err
	}
	return cs, nil
}
