package core

import (
	"errors"
	"fmt"

	"repro/internal/capo"
	"repro/internal/chunk"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/wire"
)

// ErrCorruptBundle reports a malformed serialized bundle.
var ErrCorruptBundle = errors.New("core: corrupt bundle")

// Decode failures carry both the bundle identity and the shared wire
// sentinel, so bundle faults triage like every other log fault.
var (
	errBundleTruncated = fmt.Errorf("%w: %w", ErrCorruptBundle, wire.ErrTruncated)
	errBundleCorrupt   = fmt.Errorf("%w: %w", ErrCorruptBundle, wire.ErrCorrupt)
)

var bundleMagic = [4]byte{'Q', 'R', 'B', 'N'}

const bundleVersion = 2

// sizeHint estimates the marshalled size so the output buffer is
// allocated once instead of doubling through the nested logs.
func (b *Bundle) sizeHint() int {
	n := 256 + len(b.Output)
	for _, l := range b.ChunkLogs {
		n += 32 + l.Len()*8
	}
	if b.InputLog != nil {
		n += 64 + b.InputLog.SizeHint()
	}
	for _, pairs := range b.SigLogs {
		for _, p := range pairs {
			n += 8 + len(p.Read) + len(p.Write)
		}
	}
	if b.Checkpoint != nil {
		n += checkpointSizeHint(b.Checkpoint)
	}
	for _, ck := range b.IntervalCheckpoints {
		n += 32 + checkpointSizeHint(ck.State)
	}
	return n
}

func checkpointSizeHint(cs *CheckpointState) int {
	return 64 + int(cs.Mem.Size()) + len(cs.OutputPrefix) +
		len(cs.Contexts)*(isa.NumRegs+4)*9
}

// Marshal serializes the bundle (logs, metadata and reference state;
// RecordStats is runtime-only and not serialized). Chunk logs are stored
// in the paper-style timestamp-delta encoding.
func (b *Bundle) Marshal() []byte {
	a := wire.AppenderOf(make([]byte, 0, b.sizeHint()))
	a.Raw(bundleMagic[:])
	a.Byte(bundleVersion)
	var flags byte
	if b.CountRepIterations {
		flags |= 1
	}
	if b.Partial {
		flags |= 2
	}
	if b.SigLogs != nil {
		flags |= 4
	}
	if len(b.IntervalCheckpoints) > 0 {
		flags |= 8
	}
	a.Byte(flags)
	a.String(b.ProgramName)
	a.Int(b.Threads)
	a.Uvarint(b.StackWordsPerThread)
	a.Uvarint(b.MemChecksum)
	a.Blob(b.Output)
	// Always emit Threads entries: a Partial bundle has no reference
	// final state, so pad with zero values the reader can skip past.
	for t := 0; t < b.Threads; t++ {
		var r uint64
		if t < len(b.RetiredPerThread) {
			r = b.RetiredPerThread[t]
		}
		a.Uvarint(r)
	}
	for t := 0; t < b.Threads; t++ {
		var ctx isa.Context
		if t < len(b.FinalContexts) {
			ctx = b.FinalContexts[t]
		}
		appendContext(&a, ctx)
	}
	// Nested logs are built in one pooled scratch buffer, then blobbed
	// into the output with their length prefix.
	scratch := wire.GetAppender()
	for _, l := range b.ChunkLogs {
		scratch.Reset()
		l.AppendMarshal(scratch, chunk.Delta{})
		a.Blob(scratch.Buf)
	}
	scratch.Reset()
	b.InputLog.AppendMarshal(scratch)
	a.Blob(scratch.Buf)
	wire.PutAppender(scratch)
	if b.SigLogs != nil {
		// One signature log per thread, parallel to the chunk logs; each
		// pair is the chunk's serialized read then write filter.
		for t := 0; t < b.Threads; t++ {
			var pairs []capo.SigPair
			if t < len(b.SigLogs) {
				pairs = b.SigLogs[t]
			}
			a.Int(len(pairs))
			for _, p := range pairs {
				a.Blob(p.Read)
				a.Blob(p.Write)
			}
		}
	}
	if b.Checkpoint == nil {
		a.Byte(0)
	} else {
		a.Byte(1)
		appendCheckpoint(&a, b.Checkpoint)
	}
	if len(b.IntervalCheckpoints) > 0 {
		a.Int(len(b.IntervalCheckpoints))
		for _, ck := range b.IntervalCheckpoints {
			appendCheckpoint(&a, ck.State)
			for t := 0; t < b.Threads; t++ {
				var p int
				if t < len(ck.ChunkPos) {
					p = ck.ChunkPos[t]
				}
				a.Int(p)
			}
			a.Int(ck.InputPos)
			a.Uvarint(ck.RetiredAt)
		}
	}
	return a.Buf
}

func appendCheckpoint(a *wire.Appender, cs *CheckpointState) {
	size := cs.Mem.Size()
	a.Uvarint(size)
	a.Raw(cs.Mem.LoadBytes(0, size))
	for t := range cs.Contexts {
		appendContext(a, cs.Contexts[t])
		var flags byte
		if cs.Exited[t] {
			flags = 1
		}
		a.Byte(flags)
		for _, r := range cs.SigRegs[t] {
			a.Uvarint(r)
		}
		a.Int(cs.SigPC[t])
	}
	a.Int(cs.HandlerPC)
	a.Bool(cs.HandlerOK)
	a.Blob(cs.OutputPrefix)
}

func appendContext(a *wire.Appender, ctx isa.Context) {
	for _, r := range ctx.Regs {
		a.Uvarint(r)
	}
	a.Int(ctx.PC)
	a.Uvarint(ctx.Retired)
	var flags byte
	if ctx.Halted {
		flags |= 1
	}
	if ctx.RepActive {
		flags |= 2
	}
	a.Byte(flags)
	a.Uvarint(ctx.RepDone)
}

func readContext(c *wire.Cursor) (isa.Context, error) {
	var ctx isa.Context
	for i := range ctx.Regs {
		v, err := c.Uvarint()
		if err != nil {
			return ctx, err
		}
		ctx.Regs[i] = v
	}
	pc, err := c.Uvarint()
	if err != nil {
		return ctx, err
	}
	ctx.PC = int(pc)
	if ctx.Retired, err = c.Uvarint(); err != nil {
		return ctx, err
	}
	flags, err := c.Byte()
	if err != nil {
		return ctx, err
	}
	ctx.Halted = flags&1 != 0
	ctx.RepActive = flags&2 != 0
	if ctx.RepDone, err = c.Uvarint(); err != nil {
		return ctx, err
	}
	return ctx, nil
}

// UnmarshalBundle parses a serialized bundle.
func UnmarshalBundle(data []byte) (*Bundle, error) {
	if len(data) < 5 || [4]byte(data[0:4]) != bundleMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorruptBundle)
	}
	if data[4] != bundleVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorruptBundle, data[4])
	}
	if len(data) < 6 {
		return nil, errBundleTruncated
	}
	if data[5] > 15 {
		return nil, fmt.Errorf("%w: unknown flags %#x", ErrCorruptBundle, data[5])
	}
	countReps := data[5]&1 != 0
	partial := data[5]&2 != 0
	hasSigs := data[5]&4 != 0
	hasIvals := data[5]&8 != 0
	c := wire.CursorWith(data, errBundleTruncated, errBundleCorrupt)
	c.Skip(6)
	name, err := c.View()
	if err != nil {
		return nil, err
	}
	threads, err := c.Uvarint()
	if err != nil {
		return nil, err
	}
	if threads == 0 || threads > 1<<16 {
		return nil, fmt.Errorf("%w: implausible thread count %d", ErrCorruptBundle, threads)
	}
	b := &Bundle{ProgramName: string(name), Threads: int(threads), CountRepIterations: countReps, Partial: partial}
	if b.StackWordsPerThread, err = c.Uvarint(); err != nil {
		return nil, err
	}
	if b.MemChecksum, err = c.Uvarint(); err != nil {
		return nil, err
	}
	if b.Output, err = c.Blob(); err != nil {
		return nil, err
	}
	b.RetiredPerThread = make([]uint64, 0, b.Threads)
	for t := 0; t < b.Threads; t++ {
		v, err := c.Uvarint()
		if err != nil {
			return nil, err
		}
		b.RetiredPerThread = append(b.RetiredPerThread, v)
	}
	b.FinalContexts = make([]isa.Context, 0, b.Threads)
	for t := 0; t < b.Threads; t++ {
		ctx, err := readContext(&c)
		if err != nil {
			return nil, err
		}
		b.FinalContexts = append(b.FinalContexts, ctx)
	}
	// One contiguous array for all threads' Logs, pointered into place.
	logs := make([]chunk.Log, b.Threads)
	b.ChunkLogs = make([]*chunk.Log, 0, b.Threads)
	for t := 0; t < b.Threads; t++ {
		// View, not Blob: UnmarshalLogInto copies entries out and retains
		// nothing of the raw bytes.
		raw, err := c.View()
		if err != nil {
			return nil, err
		}
		if err := chunk.UnmarshalLogInto(&logs[t], raw); err != nil {
			return nil, fmt.Errorf("chunk log %d: %w", t, err)
		}
		b.ChunkLogs = append(b.ChunkLogs, &logs[t])
	}
	raw, err := c.View()
	if err != nil {
		return nil, err
	}
	if b.InputLog, err = capo.UnmarshalInputLog(raw); err != nil {
		return nil, err
	}
	if hasSigs {
		b.SigLogs = make([][]capo.SigPair, b.Threads)
		for t := 0; t < b.Threads; t++ {
			n, err := c.Uvarint()
			if err != nil {
				return nil, err
			}
			// Sig logs are parallel to chunk logs by construction; a
			// count mismatch means corruption, and catching it here keeps
			// the screening phase's pairwise indexing in bounds.
			if int(n) != b.ChunkLogs[t].Len() {
				return nil, fmt.Errorf("%w: thread %d has %d signature pairs for %d chunks",
					ErrCorruptBundle, t, n, b.ChunkLogs[t].Len())
			}
			for i := uint64(0); i < n; i++ {
				var p capo.SigPair
				if p.Read, err = c.Blob(); err != nil {
					return nil, err
				}
				if p.Write, err = c.Blob(); err != nil {
					return nil, err
				}
				b.SigLogs[t] = append(b.SigLogs[t], p)
			}
		}
	}
	hasCkpt, err := c.Byte()
	if err != nil {
		return nil, fmt.Errorf("%w: missing checkpoint flag", ErrCorruptBundle)
	}
	if hasCkpt == 1 {
		if b.Checkpoint, err = readCheckpoint(&c, b.Threads); err != nil {
			return nil, err
		}
	} else if hasCkpt != 0 {
		return nil, fmt.Errorf("%w: bad checkpoint flag %d", ErrCorruptBundle, hasCkpt)
	}
	if hasIvals {
		n, err := c.Uvarint()
		if err != nil {
			return nil, err
		}
		// Each interval checkpoint embeds a memory image, so the count is
		// bounded by the remaining bytes; reject absurd values early.
		if n == 0 || n > uint64(c.Remaining()) {
			return nil, fmt.Errorf("%w: implausible interval checkpoint count %d", ErrCorruptBundle, n)
		}
		for i := uint64(0); i < n; i++ {
			ck := &IntervalCheckpoint{}
			if ck.State, err = readCheckpoint(&c, b.Threads); err != nil {
				return nil, err
			}
			for t := 0; t < b.Threads; t++ {
				p, err := c.Uvarint()
				if err != nil {
					return nil, err
				}
				if p > uint64(b.ChunkLogs[t].Len()) {
					return nil, fmt.Errorf("%w: interval checkpoint %d chunk position %d beyond log (%d entries)",
						ErrCorruptBundle, i, p, b.ChunkLogs[t].Len())
				}
				ck.ChunkPos = append(ck.ChunkPos, int(p))
			}
			p, err := c.Uvarint()
			if err != nil {
				return nil, err
			}
			if p > uint64(b.InputLog.Len()) {
				return nil, fmt.Errorf("%w: interval checkpoint %d input position %d beyond log (%d records)",
					ErrCorruptBundle, i, p, b.InputLog.Len())
			}
			ck.InputPos = int(p)
			if ck.RetiredAt, err = c.Uvarint(); err != nil {
				return nil, err
			}
			b.IntervalCheckpoints = append(b.IntervalCheckpoints, ck)
		}
	}
	if err := c.Done(); err != nil {
		return nil, err
	}
	return b, nil
}

func readCheckpoint(c *wire.Cursor, threads int) (*CheckpointState, error) {
	size, err := c.Uvarint()
	if err != nil {
		return nil, err
	}
	if size > 1<<32 || size > uint64(c.Remaining()) {
		return nil, fmt.Errorf("%w: implausible checkpoint memory size %d", ErrCorruptBundle, size)
	}
	img, err := c.Raw(int(size))
	if err != nil {
		return nil, err
	}
	cs := &CheckpointState{Mem: mem.New(size)}
	cs.Mem.StoreBytes(0, img)
	cs.Contexts = make([]isa.Context, 0, threads)
	cs.Exited = make([]bool, 0, threads)
	cs.SigRegs = make([][isa.NumRegs]uint64, 0, threads)
	cs.SigPC = make([]int, 0, threads)
	for t := 0; t < threads; t++ {
		ctx, err := readContext(c)
		if err != nil {
			return nil, err
		}
		cs.Contexts = append(cs.Contexts, ctx)
		flags, err := c.Byte()
		if err != nil {
			return nil, err
		}
		cs.Exited = append(cs.Exited, flags&1 != 0)
		var regs [isa.NumRegs]uint64
		for i := range regs {
			if regs[i], err = c.Uvarint(); err != nil {
				return nil, err
			}
		}
		cs.SigRegs = append(cs.SigRegs, regs)
		pc, err := c.Uvarint()
		if err != nil {
			return nil, err
		}
		cs.SigPC = append(cs.SigPC, int(pc))
	}
	hpc, err := c.Uvarint()
	if err != nil {
		return nil, err
	}
	cs.HandlerPC = int(hpc)
	ok, err := c.Byte()
	if err != nil {
		return nil, err
	}
	cs.HandlerOK = ok == 1
	if cs.OutputPrefix, err = c.Blob(); err != nil {
		return nil, err
	}
	return cs, nil
}
