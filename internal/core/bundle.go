package core

import (
	"errors"
	"fmt"

	"repro/internal/capo"
	"repro/internal/chunk"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/wire"
)

// ErrCorruptBundle reports a malformed serialized bundle.
var ErrCorruptBundle = errors.New("core: corrupt bundle")

// Decode failures carry both the bundle identity and the shared wire
// sentinel, so bundle faults triage like every other log fault.
var (
	errBundleTruncated = fmt.Errorf("%w: %w", ErrCorruptBundle, wire.ErrTruncated)
	errBundleCorrupt   = fmt.Errorf("%w: %w", ErrCorruptBundle, wire.ErrCorrupt)
)

// ErrUnknownBundleVersion reports a bundle whose header names a version
// this decoder does not speak. It wraps ErrCorruptBundle and the shared
// wire.ErrCorrupt sentinel, so version skew triages as corruption
// rather than crashing a reader.
var ErrUnknownBundleVersion = fmt.Errorf("%w: unknown bundle version", errBundleCorrupt)

var bundleMagic = [4]byte{'Q', 'R', 'B', 'N'}

// Header version bytes. The original format predates explicit format
// negotiation and stamped 2 in its version slot, so "wire format v1"
// is header byte 2 and "wire format v2" is header byte 3.
const (
	bundleVersionV1 = 2
	bundleVersionV2 = 3
)

// Feature-flag bits. V1 carries bits 0–3 in a single header byte; v2
// widens the field to a little-endian u32 word and adds bit 4. Unknown
// bits are rejected, which is what makes the word a negotiation
// surface: a future writer that sets a new bit is refused loudly by
// old readers instead of being misparsed.
const (
	bflagCountReps  = 1 << 0
	bflagPartial    = 1 << 1
	bflagSigs       = 1 << 2
	bflagIntervals  = 1 << 3
	bflagCompressed = 1 << 4 // v2 only: body block is LZ-compressed
	bflagKnownV1    = bflagCountReps | bflagPartial | bflagSigs | bflagIntervals
	bflagKnownV2    = bflagKnownV1 | bflagCompressed
)

// Format selects the byte format Marshal emits. The zero value lets
// the encoder choose (currently: v2, compressed when that is smaller);
// decoding stamps the source's exact format on the bundle, so decode →
// Marshal reproduces the input bytes for every format — the
// re-encode-is-identity property the conformance harness checks.
type Format uint8

const (
	// FormatAuto is the encoder's choice: v2, LZ body iff smaller.
	FormatAuto Format = iota
	// FormatV1 is the legacy byte format (header version 2), kept
	// decodable and re-encodable forever for stored recordings.
	FormatV1
	// FormatV2Raw is v2 framing with an uncompressed body block.
	FormatV2Raw
	// FormatV2LZ is v2 framing with an LZ-compressed body block.
	FormatV2LZ
)

func (f Format) String() string {
	switch f {
	case FormatAuto:
		return "auto"
	case FormatV1:
		return "v1"
	case FormatV2Raw:
		return "v2-raw"
	case FormatV2LZ:
		return "v2-lz"
	}
	return fmt.Sprintf("format(%d)", uint8(f))
}

// flagBits returns the content-derived feature bits (everything except
// the compression bit, which depends on the chosen block method).
func (b *Bundle) flagBits() uint32 {
	var flags uint32
	if b.CountRepIterations {
		flags |= bflagCountReps
	}
	if b.Partial {
		flags |= bflagPartial
	}
	if b.SigLogs != nil {
		flags |= bflagSigs
	}
	if len(b.IntervalCheckpoints) > 0 {
		flags |= bflagIntervals
	}
	return flags
}

// sizeHint estimates the marshalled size so the output buffer is
// allocated once instead of doubling through the nested logs.
func (b *Bundle) sizeHint() int {
	n := 256 + len(b.Output)
	for _, l := range b.ChunkLogs {
		n += 32 + l.Len()*8
	}
	if b.InputLog != nil {
		n += 64 + b.InputLog.SizeHint()
	}
	for _, pairs := range b.SigLogs {
		for _, p := range pairs {
			n += 8 + len(p.Read) + len(p.Write)
		}
	}
	if b.Checkpoint != nil {
		n += checkpointSizeHint(b.Checkpoint)
	}
	for _, ck := range b.IntervalCheckpoints {
		n += 32 + checkpointSizeHint(ck.State)
	}
	return n
}

func checkpointSizeHint(cs *CheckpointState) int {
	return 64 + int(cs.Mem.Size()) + len(cs.OutputPrefix) +
		len(cs.Contexts)*(isa.NumRegs+4)*9
}

// Marshal serializes the bundle (logs, metadata and reference state;
// RecordStats is runtime-only and not serialized) in the format named
// by b.Format: the legacy v1 layout, or the versioned v2 layout with
// its columnar input log and optionally block-compressed body. The
// zero Format lets the encoder choose (v2, compressed when smaller).
func (b *Bundle) Marshal() []byte {
	switch b.Format {
	case FormatV1:
		return b.marshalV1()
	case FormatV2Raw:
		return b.marshalV2(wire.BlockRaw, false)
	case FormatV2LZ:
		return b.marshalV2(wire.BlockLZ, false)
	default:
		return b.marshalV2(0, true)
	}
}

// marshalV1 emits the legacy byte format. Its output is pinned by the
// golden fixtures and must never change. Chunk logs are stored in the
// paper-style timestamp-delta encoding.
func (b *Bundle) marshalV1() []byte {
	a := wire.AppenderOf(make([]byte, 0, b.sizeHint()))
	a.Raw(bundleMagic[:])
	a.Byte(bundleVersionV1)
	a.Byte(byte(b.flagBits()))
	a.String(b.ProgramName)
	a.Int(b.Threads)
	a.Uvarint(b.StackWordsPerThread)
	a.Uvarint(b.MemChecksum)
	a.Blob(b.Output)
	// Always emit Threads entries: a Partial bundle has no reference
	// final state, so pad with zero values the reader can skip past.
	for t := 0; t < b.Threads; t++ {
		var r uint64
		if t < len(b.RetiredPerThread) {
			r = b.RetiredPerThread[t]
		}
		a.Uvarint(r)
	}
	for t := 0; t < b.Threads; t++ {
		var ctx isa.Context
		if t < len(b.FinalContexts) {
			ctx = b.FinalContexts[t]
		}
		appendContext(&a, ctx)
	}
	// Nested logs are built in one pooled scratch buffer, then blobbed
	// into the output with their length prefix.
	scratch := wire.GetAppender()
	for _, l := range b.ChunkLogs {
		scratch.Reset()
		l.AppendMarshal(scratch, chunk.Delta{})
		a.Blob(scratch.Buf)
	}
	scratch.Reset()
	b.InputLog.AppendMarshal(scratch)
	a.Blob(scratch.Buf)
	wire.PutAppender(scratch)
	if b.SigLogs != nil {
		// One signature log per thread, parallel to the chunk logs; each
		// pair is the chunk's serialized read then write filter.
		for t := 0; t < b.Threads; t++ {
			var pairs []capo.SigPair
			if t < len(b.SigLogs) {
				pairs = b.SigLogs[t]
			}
			a.Int(len(pairs))
			for _, p := range pairs {
				a.Blob(p.Read)
				a.Blob(p.Write)
			}
		}
	}
	if b.Checkpoint == nil {
		a.Byte(0)
	} else {
		a.Byte(1)
		appendCheckpoint(&a, b.Checkpoint)
	}
	if len(b.IntervalCheckpoints) > 0 {
		a.Int(len(b.IntervalCheckpoints))
		for _, ck := range b.IntervalCheckpoints {
			appendCheckpoint(&a, ck.State)
			for t := 0; t < b.Threads; t++ {
				var p int
				if t < len(ck.ChunkPos) {
					p = ck.ChunkPos[t]
				}
				a.Int(p)
			}
			a.Int(ck.InputPos)
			a.Uvarint(ck.RetiredAt)
		}
	}
	return a.Buf
}

func appendCheckpoint(a *wire.Appender, cs *CheckpointState) {
	size := cs.Mem.Size()
	a.Uvarint(size)
	a.Raw(cs.Mem.LoadBytes(0, size))
	for t := range cs.Contexts {
		appendContext(a, cs.Contexts[t])
		var flags byte
		if cs.Exited[t] {
			flags = 1
		}
		a.Byte(flags)
		for _, r := range cs.SigRegs[t] {
			a.Uvarint(r)
		}
		a.Int(cs.SigPC[t])
	}
	a.Int(cs.HandlerPC)
	a.Bool(cs.HandlerOK)
	a.Blob(cs.OutputPrefix)
}

func appendContext(a *wire.Appender, ctx isa.Context) {
	for _, r := range ctx.Regs {
		a.Uvarint(r)
	}
	a.Int(ctx.PC)
	a.Uvarint(ctx.Retired)
	var flags byte
	if ctx.Halted {
		flags |= 1
	}
	if ctx.RepActive {
		flags |= 2
	}
	a.Byte(flags)
	a.Uvarint(ctx.RepDone)
}

func readContext(c *wire.Cursor) (isa.Context, error) {
	var ctx isa.Context
	for i := range ctx.Regs {
		v, err := c.Uvarint()
		if err != nil {
			return ctx, err
		}
		ctx.Regs[i] = v
	}
	pc, err := c.Uvarint()
	if err != nil {
		return ctx, err
	}
	ctx.PC = int(pc)
	if ctx.Retired, err = c.Uvarint(); err != nil {
		return ctx, err
	}
	flags, err := c.Byte()
	if err != nil {
		return ctx, err
	}
	ctx.Halted = flags&1 != 0
	ctx.RepActive = flags&2 != 0
	if ctx.RepDone, err = c.Uvarint(); err != nil {
		return ctx, err
	}
	return ctx, nil
}

func readCheckpoint(c *wire.Cursor, threads int) (*CheckpointState, error) {
	size, err := c.Uvarint()
	if err != nil {
		return nil, err
	}
	if size > 1<<32 || size > uint64(c.Remaining()) {
		return nil, fmt.Errorf("%w: implausible checkpoint memory size %d", ErrCorruptBundle, size)
	}
	img, err := c.Raw(int(size))
	if err != nil {
		return nil, err
	}
	cs := &CheckpointState{Mem: mem.New(size)}
	cs.Mem.StoreBytes(0, img)
	cs.Contexts = make([]isa.Context, 0, threads)
	cs.Exited = make([]bool, 0, threads)
	cs.SigRegs = make([][isa.NumRegs]uint64, 0, threads)
	cs.SigPC = make([]int, 0, threads)
	for t := 0; t < threads; t++ {
		ctx, err := readContext(c)
		if err != nil {
			return nil, err
		}
		cs.Contexts = append(cs.Contexts, ctx)
		flags, err := c.Byte()
		if err != nil {
			return nil, err
		}
		cs.Exited = append(cs.Exited, flags&1 != 0)
		var regs [isa.NumRegs]uint64
		for i := range regs {
			if regs[i], err = c.Uvarint(); err != nil {
				return nil, err
			}
		}
		cs.SigRegs = append(cs.SigRegs, regs)
		pc, err := c.Uvarint()
		if err != nil {
			return nil, err
		}
		cs.SigPC = append(cs.SigPC, int(pc))
	}
	hpc, err := c.Uvarint()
	if err != nil {
		return nil, err
	}
	cs.HandlerPC = int(hpc)
	ok, err := c.Byte()
	if err != nil {
		return nil, err
	}
	cs.HandlerOK = ok == 1
	if cs.OutputPrefix, err = c.Blob(); err != nil {
		return nil, err
	}
	return cs, nil
}
