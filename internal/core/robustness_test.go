package core

import (
	"math/rand"
	"testing"

	"repro/internal/machine"
	"repro/internal/workload"
)

// TestUnmarshalNeverPanics feeds the bundle parser every truncation of a
// valid bundle plus thousands of single-byte corruptions; it must return
// an error or a bundle, never panic, and never allocate unboundedly.
func TestUnmarshalNeverPanics(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Mode = machine.ModeFull
	cfg.Threads = 2
	cfg.CheckpointEveryInstrs = 10_000 // include the checkpoint section
	b, err := Record(workload.Counter(500, 2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := b
	if b.RecordStats.Checkpoint != nil {
		if tail, err := Tail(b); err == nil {
			src = tail // checkpoint-bearing bundle covers more parser code
		}
	}
	good := src.Marshal()

	tryParse := func(data []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("parser panicked on %d bytes: %v", len(data), r)
			}
		}()
		_, _ = UnmarshalBundle(data)
	}

	// Every truncation.
	step := 1
	if len(good) > 4096 {
		step = len(good) / 4096
	}
	for cut := 0; cut < len(good); cut += step {
		tryParse(good[:cut])
	}
	// Random single-byte corruptions.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 4000; i++ {
		mut := append([]byte(nil), good...)
		mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
		tryParse(mut)
	}
	// Random multi-byte corruptions with truncation.
	for i := 0; i < 1000; i++ {
		mut := append([]byte(nil), good[:rng.Intn(len(good))]...)
		for j := 0; j < 8 && len(mut) > 0; j++ {
			mut[rng.Intn(len(mut))] = byte(rng.Intn(256))
		}
		tryParse(mut)
	}
}

// TestCorruptBundleReplayIsSafe parses corrupted-but-accepted bundles and
// ensures replaying them fails cleanly (divergence/error) rather than
// panicking.
func TestCorruptBundleReplayIsSafe(t *testing.T) {
	prog := workload.Counter(300, 2)
	b, err := Record(prog, recordCfg(2, nil))
	if err != nil {
		t.Fatal(err)
	}
	good := b.Marshal()
	rng := rand.New(rand.NewSource(7))
	parsed := 0
	for i := 0; i < 3000 && parsed < 60; i++ {
		mut := append([]byte(nil), good...)
		mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
		loaded, err := UnmarshalBundle(mut)
		if err != nil {
			continue
		}
		parsed++
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("replay panicked on corrupted bundle: %v", r)
				}
			}()
			rr, err := Replay(prog, loaded)
			if err == nil {
				// A flipped bit may be semantically harmless (e.g. inside
				// unverified metadata); verification is the last line.
				_ = Verify(loaded, rr)
			}
		}()
	}
	if parsed == 0 {
		t.Skip("no corruption survived parsing (format fully self-checking)")
	}
}
