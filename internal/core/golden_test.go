package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/capo"
	"repro/internal/chunk"
	"repro/internal/machine"
	"repro/internal/signature"
	"repro/internal/workload"
)

// The golden fixtures pin the on-disk byte format: each .bundle (and
// .stream) file under testdata/golden was recorded by a past version of
// the codecs, and every later version must decode it to the same logs
// (checked against the .digest.json sidecar) and re-encode it
// byte-identically. Regenerate with QUICKREC_WRITE_GOLDEN=1 — only when
// the recorded *execution* legitimately changes, never to paper over a
// format break.
const goldenDir = "testdata/golden"

// goldenSpec pins one fixture recording. Every knob that feeds the
// scheduler or the codecs is explicit so the fixture is reproducible.
type goldenSpec struct {
	Name      string
	Workload  string
	Threads   int
	Cores     int
	Seed      uint64
	Sigs      bool   // capture per-chunk Bloom signatures (flag bit 4)
	CkptEvery uint64 // flight-recorder cadence (flag bit 8 when > 0)
	Stream    bool   // additionally record a segmented stream fixture
}

func goldenSpecs() []goldenSpec {
	return []goldenSpec{
		{Name: "counter-4t2c", Workload: "counter", Threads: 4, Cores: 2, Seed: 1},
		{Name: "ioheavy-4t4c", Workload: "ioheavy", Threads: 4, Cores: 4, Seed: 3},
		{Name: "racy-sigs", Workload: "racy", Threads: 4, Cores: 2, Seed: 5, Sigs: true},
		{Name: "counter-ckpt", Workload: "counter", Threads: 4, Cores: 2, Seed: 7, CkptEvery: 4000, Stream: true},
	}
}

func goldenRecord(t testing.TB, gs goldenSpec) (*Bundle, []byte) {
	t.Helper()
	spec, ok := workload.ByName(gs.Workload)
	if !ok {
		t.Fatalf("golden workload %q missing from catalogue", gs.Workload)
	}
	prog := spec.Build(gs.Threads)
	cfg := recordCfg(gs.Seed, func(c *machine.Config) {
		c.Cores = gs.Cores
		c.Threads = gs.Threads
		if gs.Threads > c.Cores {
			c.TimeSliceInstrs = 5000
		}
		c.CaptureSignatures = gs.Sigs
		c.CheckpointEveryInstrs = gs.CkptEvery
		if gs.Stream {
			c.FlushEveryChunks = 16
		}
	})
	var stream bytes.Buffer
	if gs.Stream {
		cfg.StreamTo = &stream
	}
	b, err := Record(prog, cfg)
	if err != nil {
		t.Fatalf("golden recording %s: %v", gs.Name, err)
	}
	return b, stream.Bytes()
}

// goldenDigest is the decoded-form fingerprint stored next to each
// fixture: counts plus an FNV-1a hash over a canonical rendering of
// every decoded log item, so a decode that drifts in any field — not
// just in length — fails the comparison.
type goldenDigest struct {
	Threads        int      `json:"threads"`
	BundleBytes    int      `json:"bundle_bytes"`
	ChunkEntries   []int    `json:"chunk_entries"`
	ChunkHash      string   `json:"chunk_hash"`
	TotalInstrs    uint64   `json:"total_instrs"`
	InputRecords   int      `json:"input_records"`
	InputDataBytes int      `json:"input_data_bytes"`
	InputHash      string   `json:"input_hash"`
	SigPairs       []int    `json:"sig_pairs,omitempty"`
	SigHash        string   `json:"sig_hash,omitempty"`
	Checkpoints    int      `json:"interval_checkpoints"`
	MemChecksum    uint64   `json:"mem_checksum"`
	OutputBytes    int      `json:"output_bytes"`
	Retired        []uint64 `json:"retired_per_thread"`
	StreamBytes    int      `json:"stream_bytes,omitempty"`
}

func digestOf(b *Bundle, bundleBytes, streamBytes int) goldenDigest {
	d := goldenDigest{
		Threads:      b.Threads,
		BundleBytes:  bundleBytes,
		Checkpoints:  len(b.IntervalCheckpoints),
		MemChecksum:  b.MemChecksum,
		OutputBytes:  len(b.Output),
		Retired:      b.RetiredPerThread,
		InputRecords: b.InputLog.Len(),
		StreamBytes:  streamBytes,
	}
	ch := fnv.New64a()
	for _, l := range b.ChunkLogs {
		d.ChunkEntries = append(d.ChunkEntries, l.Len())
		d.TotalInstrs += l.TotalInstructions()
		for _, e := range l.Entries {
			fmt.Fprintf(ch, "t%d %d %d %d %d\n", l.Thread, e.Size, e.TS, e.Reason, e.RepResidue)
		}
	}
	d.ChunkHash = fmt.Sprintf("%016x", ch.Sum64())
	ih := fnv.New64a()
	for _, r := range b.InputLog.Records {
		d.InputDataBytes += len(r.Data)
		fmt.Fprintf(ih, "%d t%d #%d %d %d %d %d %d %d %d %x\n",
			r.Kind, r.Thread, r.Seq, r.TS, r.Sysno, r.Ret, r.Addr, r.Signo, r.Retired, r.RepDone, r.Data)
	}
	d.InputHash = fmt.Sprintf("%016x", ih.Sum64())
	if b.SigLogs != nil {
		sh := fnv.New64a()
		for t, pairs := range b.SigLogs {
			d.SigPairs = append(d.SigPairs, len(pairs))
			for i, p := range pairs {
				fmt.Fprintf(sh, "t%d #%d %x %x\n", t, i, p.Read, p.Write)
			}
		}
		d.SigHash = fmt.Sprintf("%016x", sh.Sum64())
	}
	return d
}

// TestWriteGoldenFixtures regenerates the fixture set. Gated on
// QUICKREC_WRITE_GOLDEN so routine runs can never move the format
// goalposts silently.
func TestWriteGoldenFixtures(t *testing.T) {
	if os.Getenv("QUICKREC_WRITE_GOLDEN") == "" {
		t.Skip("set QUICKREC_WRITE_GOLDEN=1 to rewrite " + goldenDir)
	}
	if err := os.MkdirAll(goldenDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, gs := range goldenSpecs() {
		b, stream := goldenRecord(t, gs)
		b.Format = FormatV1
		data := b.Marshal()
		if err := os.WriteFile(filepath.Join(goldenDir, gs.Name+".bundle"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		b.Format = FormatAuto
		if err := os.WriteFile(filepath.Join(goldenDir, gs.Name+".v2.bundle"), b.Marshal(), 0o644); err != nil {
			t.Fatal(err)
		}
		if gs.Stream {
			if err := os.WriteFile(filepath.Join(goldenDir, gs.Name+".stream"), stream, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		dj, err := json.MarshalIndent(digestOf(b, len(data), len(stream)), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(goldenDir, gs.Name+".digest.json"), append(dj, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: %d bundle bytes, %d stream bytes", gs.Name, len(data), len(stream))
	}
}

func loadGolden(t *testing.T, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(goldenDir, name))
	if err != nil {
		t.Fatalf("golden fixture missing (QUICKREC_WRITE_GOLDEN=1 regenerates): %v", err)
	}
	return data
}

func loadDigest(t *testing.T, gs goldenSpec) goldenDigest {
	t.Helper()
	var want goldenDigest
	if err := json.Unmarshal(loadGolden(t, gs.Name+".digest.json"), &want); err != nil {
		t.Fatalf("%s digest: %v", gs.Name, err)
	}
	return want
}

// TestGoldenBundleCompat is the backward-compatibility contract for the
// bundle container and every codec nested inside it: each checked-in
// pre-refactor fixture must still decode (to the digested content) and
// re-encode byte-identically, and a fresh recording of the same spec
// must still produce the same bytes.
func TestGoldenBundleCompat(t *testing.T) {
	for _, gs := range goldenSpecs() {
		gs := gs
		t.Run(gs.Name, func(t *testing.T) {
			data := loadGolden(t, gs.Name+".bundle")
			b, err := UnmarshalBundle(data)
			if err != nil {
				t.Fatalf("fixture no longer decodes: %v", err)
			}
			if again := b.Marshal(); !bytes.Equal(again, data) {
				t.Fatalf("re-encode of fixture is not byte-identical: %d vs %d bytes", len(again), len(data))
			}
			want := loadDigest(t, gs)
			if got := digestOf(b, len(data), want.StreamBytes); !reflect.DeepEqual(got, want) {
				t.Errorf("decoded content drifted from pre-refactor digest:\n got %+v\nwant %+v", got, want)
			}
			b2, err := UnmarshalBundle(data)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(b.ChunkLogs, b2.ChunkLogs) || !reflect.DeepEqual(b.InputLog, b2.InputLog) ||
				!reflect.DeepEqual(b.SigLogs, b2.SigLogs) {
				t.Error("decode is not deterministic")
			}
			fresh, _ := goldenRecord(t, gs)
			fresh.Format = FormatV1
			if !bytes.Equal(fresh.Marshal(), data) {
				t.Errorf("fresh recording no longer byte-matches the fixture (encoder or recorder drifted)")
			}
			goldenSubLogRoundTrips(t, b)
			goldenV2Compat(t, gs, b)
		})
	}
}

// goldenV2Compat pins the v2 byte format the same way the v1 fixtures
// pin the legacy one: the checked-in .v2.bundle must keep decoding to
// the exact same recording the v1 fixture describes, and must keep
// re-encoding byte-identically (decode stamps the source format, so a
// round trip reproduces the source bytes for both formats).
func goldenV2Compat(t *testing.T, gs goldenSpec, v1 *Bundle) {
	t.Helper()
	data := loadGolden(t, gs.Name+".v2.bundle")
	b, err := UnmarshalBundle(data)
	if err != nil {
		t.Fatalf("v2 fixture no longer decodes: %v", err)
	}
	if b.Format != FormatV2Raw && b.Format != FormatV2LZ {
		t.Fatalf("v2 fixture decoded with format %v", b.Format)
	}
	if again := b.Marshal(); !bytes.Equal(again, data) {
		t.Fatalf("re-encode of v2 fixture is not byte-identical: %d vs %d bytes", len(again), len(data))
	}
	b.Format = v1.Format
	if !reflect.DeepEqual(b, v1) {
		t.Error("v2 fixture decodes to a different recording than the v1 fixture")
	}
}

// goldenSubLogRoundTrips checks every nested codec on the fixture's real
// data: chunk logs under all three encodings, the input log (both
// framings), and the signature pairs.
func goldenSubLogRoundTrips(t *testing.T, b *Bundle) {
	t.Helper()
	for _, enc := range chunk.Encodings() {
		for _, l := range b.ChunkLogs {
			blob := l.Marshal(enc)
			back, err := chunk.UnmarshalLog(blob)
			if err != nil {
				t.Fatalf("chunk log t%d (%s): %v", l.Thread, enc.Name(), err)
			}
			if !reflect.DeepEqual(back, l) {
				t.Fatalf("chunk log t%d (%s): decode not DeepEqual", l.Thread, enc.Name())
			}
			if !bytes.Equal(back.Marshal(enc), blob) {
				t.Fatalf("chunk log t%d (%s): re-encode not byte-identical", l.Thread, enc.Name())
			}
		}
	}
	blob := b.InputLog.Marshal()
	il, err := capo.UnmarshalInputLog(blob)
	if err != nil {
		t.Fatalf("input log: %v", err)
	}
	if !reflect.DeepEqual(il, b.InputLog) {
		t.Fatal("input log: decode not DeepEqual")
	}
	if !bytes.Equal(il.Marshal(), blob) {
		t.Fatal("input log: re-encode not byte-identical")
	}
	recBlob := capo.MarshalRecords(b.InputLog.Records)
	recs, err := capo.UnmarshalRecords(recBlob)
	if err != nil {
		t.Fatalf("record batch: %v", err)
	}
	if !bytes.Equal(capo.MarshalRecords(recs), recBlob) {
		t.Fatal("record batch: re-encode not byte-identical")
	}
	for tid, pairs := range b.SigLogs {
		for i, p := range pairs {
			for side, raw := range map[string][]byte{"read": p.Read, "write": p.Write} {
				s, err := signature.Unmarshal(raw)
				if err != nil {
					t.Fatalf("t%d chunk %d %s signature: %v", tid, i, side, err)
				}
				if !bytes.Equal(s.Marshal(), raw) {
					t.Fatalf("t%d chunk %d %s signature: re-encode not byte-identical", tid, i, side)
				}
			}
		}
	}
}

// TestGoldenStreamCompat pins the segmented stream format the same way:
// the checked-in stream still decodes as a complete stream describing
// the digested recording, and a fresh streamed recording reproduces the
// fixture bytes.
func TestGoldenStreamCompat(t *testing.T) {
	for _, gs := range goldenSpecs() {
		if !gs.Stream {
			continue
		}
		gs := gs
		t.Run(gs.Name, func(t *testing.T) {
			data := loadGolden(t, gs.Name+".stream")
			sv, err := SalvageStream(data)
			if err != nil {
				t.Fatalf("stream fixture no longer decodes: %v", err)
			}
			if sv.Bundle.Partial || !sv.Report.Complete {
				t.Fatalf("intact stream fixture salvaged as partial: %s", sv.Report)
			}
			want := loadDigest(t, gs)
			if want.StreamBytes != len(data) {
				t.Errorf("stream fixture is %d bytes, digest recorded %d", len(data), want.StreamBytes)
			}
			b := sv.Bundle
			var totalInstrs uint64
			for i, l := range b.ChunkLogs {
				if l.Len() != want.ChunkEntries[i] {
					t.Errorf("thread %d: %d entries, digest %d", i, l.Len(), want.ChunkEntries[i])
				}
				totalInstrs += l.TotalInstructions()
			}
			if totalInstrs != want.TotalInstrs {
				t.Errorf("stream carries %d instructions, digest %d", totalInstrs, want.TotalInstrs)
			}
			if b.InputLog.Len() != want.InputRecords {
				t.Errorf("stream carries %d input records, digest %d", b.InputLog.Len(), want.InputRecords)
			}
			if b.MemChecksum != want.MemChecksum {
				t.Errorf("final mem checksum %#x, digest %#x", b.MemChecksum, want.MemChecksum)
			}
			_, fresh := goldenRecord(t, gs)
			if !bytes.Equal(fresh, data) {
				t.Errorf("fresh streamed recording no longer byte-matches the fixture")
			}
		})
	}
}
