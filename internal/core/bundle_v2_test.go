package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"reflect"
	"testing"

	"repro/internal/machine"
	"repro/internal/wire"
	"repro/internal/workload"
)

// recordNamed records one of the golden fixture specs fresh — the v2
// tests exercise real recordings, not synthetic bundles.
func recordNamed(t testing.TB, name string) *Bundle {
	t.Helper()
	for _, gs := range goldenSpecs() {
		if gs.Name == name {
			b, _ := goldenRecord(t, gs)
			return b
		}
	}
	t.Fatalf("no golden spec named %q", name)
	return nil
}

// marshalAs marshals b in the given format without disturbing b.Format.
func marshalAs(b *Bundle, f Format) []byte {
	old := b.Format
	b.Format = f
	data := b.Marshal()
	b.Format = old
	return data
}

// TestBundleFormatsRoundTrip decodes every format of the same recording
// and checks the results describe the identical execution: DeepEqual
// logs and state, and a bit-identical replay of the compressed bundle.
func TestBundleFormatsRoundTrip(t *testing.T) {
	for _, name := range []string{"counter-4t2c", "ioheavy-4t4c", "racy-sigs", "counter-ckpt"} {
		t.Run(name, func(t *testing.T) {
			b := recordNamed(t, name)
			ref, err := UnmarshalBundle(marshalAs(b, FormatV1))
			if err != nil {
				t.Fatal(err)
			}
			for f, want := range map[Format]Format{
				FormatV1:    FormatV1,
				FormatV2Raw: FormatV2Raw,
				FormatV2LZ:  FormatV2LZ,
			} {
				got, err := UnmarshalBundle(marshalAs(b, f))
				if err != nil {
					t.Fatalf("%v: %v", f, err)
				}
				if got.Format != want {
					t.Errorf("%v: decode stamped format %v", f, got.Format)
				}
				got.Format = ref.Format
				if !reflect.DeepEqual(got, ref) {
					t.Errorf("%v: decode differs from v1 decode", f)
				}
			}
		})
	}
}

// TestBundleReencodeIdentity is the stamping property: decode followed
// by Marshal reproduces the source bytes for every format, so stored
// recordings can be round-tripped through tooling without rewrites.
func TestBundleReencodeIdentity(t *testing.T) {
	b := recordNamed(t, "racy-sigs")
	for _, f := range []Format{FormatV1, FormatV2Raw, FormatV2LZ} {
		data := marshalAs(b, f)
		back, err := UnmarshalBundle(data)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if again := back.Marshal(); !bytes.Equal(again, data) {
			t.Errorf("%v: re-encode is not byte-identical (%d vs %d bytes)", f, len(again), len(data))
		}
	}
}

// TestBundleV2CompressionRatio is the tentpole's headline number: the
// IO-heavy recording — whose payload bytes are incompressible random
// data stored twice by v1 — must shrink at least 2x under the
// structure-aware v2 encoding, and the compressed bundle must replay
// bit-identically.
func TestBundleV2CompressionRatio(t *testing.T) {
	b := recordNamed(t, "ioheavy-4t4c")
	v1 := marshalAs(b, FormatV1)
	v2 := marshalAs(b, FormatAuto)
	ratio := float64(len(v1)) / float64(len(v2))
	t.Logf("ioheavy: v1=%d bytes, v2=%d bytes, ratio=%.4f", len(v1), len(v2), ratio)
	if ratio < 2.0 {
		t.Errorf("v2 compression ratio %.4f < 2.0 on ioheavy", ratio)
	}
	loaded, err := UnmarshalBundle(v2)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Format != FormatV2LZ {
		t.Fatalf("auto encoder did not choose compression (format %v)", loaded.Format)
	}
	spec, _ := workload.ByName("ioheavy")
	prog := spec.Build(loaded.Threads)
	rr, err := Replay(prog, loaded)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(loaded, rr); err != nil {
		t.Fatalf("compressed bundle does not replay bit-identically: %v", err)
	}
}

// TestBundleVersionNegotiation covers the decode edges of the version
// and flag words: every malformed header must produce a typed
// corruption error — never a panic, never a misparse.
func TestBundleVersionNegotiation(t *testing.T) {
	b := recordNamed(t, "counter-4t2c")
	v2 := marshalAs(b, FormatV2LZ)

	t.Run("unknown-version", func(t *testing.T) {
		for _, ver := range []byte{0, 1, 4, 5, 99, 255} {
			bad := append([]byte{}, v2...)
			bad[4] = ver
			_, err := UnmarshalBundle(bad)
			if !errors.Is(err, ErrUnknownBundleVersion) {
				t.Errorf("version %d: err = %v, want ErrUnknownBundleVersion", ver, err)
			}
			// Version skew triages as corruption through both the bundle
			// and wire sentinels.
			if !errors.Is(err, ErrCorruptBundle) || !errors.Is(err, wire.ErrCorrupt) {
				t.Errorf("version %d: err %v does not wrap the corruption sentinels", ver, err)
			}
		}
	})
	t.Run("unknown-v2-flags", func(t *testing.T) {
		for _, bit := range []uint32{1 << 5, 1 << 13, 1 << 31} {
			bad := append([]byte{}, v2...)
			flags := binary.LittleEndian.Uint32(bad[5:9])
			binary.LittleEndian.PutUint32(bad[5:9], flags|bit)
			if _, err := UnmarshalBundle(bad); !errors.Is(err, ErrCorruptBundle) {
				t.Errorf("flag bit %#x: err = %v, want ErrCorruptBundle", bit, err)
			}
		}
	})
	t.Run("unknown-v1-flags", func(t *testing.T) {
		bad := marshalAs(b, FormatV1)
		bad[5] |= 1 << 6
		if _, err := UnmarshalBundle(bad); !errors.Is(err, ErrCorruptBundle) {
			t.Errorf("err = %v, want ErrCorruptBundle", err)
		}
	})
	t.Run("flag-method-mismatch", func(t *testing.T) {
		// An uncompressed body claiming the compressed flag (and vice
		// versa) is self-inconsistent and must be rejected.
		for _, src := range [][]byte{marshalAs(b, FormatV2Raw), v2} {
			bad := append([]byte{}, src...)
			flags := binary.LittleEndian.Uint32(bad[5:9])
			binary.LittleEndian.PutUint32(bad[5:9], flags^bflagCompressed)
			if _, err := UnmarshalBundle(bad); !errors.Is(err, ErrCorruptBundle) {
				t.Errorf("err = %v, want ErrCorruptBundle", err)
			}
		}
	})
	t.Run("truncations", func(t *testing.T) {
		for n := 0; n < len(v2); n += 1 + n/16 {
			if _, err := UnmarshalBundle(v2[:n]); err == nil {
				t.Errorf("truncation to %d bytes accepted", n)
			}
		}
	})
}

// TestBundleDecoderSteadyStateAllocs pins the mmap-decode story: a
// reused BundleDecoder in alias mode decodes a bundle with (almost) no
// allocations once its storage is warm.
func TestBundleDecoderSteadyStateAllocs(t *testing.T) {
	b := recordNamed(t, "counter-4t2c")
	for _, f := range []Format{FormatV1, FormatV2Raw, FormatV2LZ} {
		data := marshalAs(b, f)
		d := &BundleDecoder{}
		if _, err := d.Decode(data); err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		allocs := testing.AllocsPerRun(50, func() {
			if _, err := d.Decode(data); err != nil {
				t.Fatal(err)
			}
		})
		t.Logf("%v: %.1f allocs/op steady-state", f, allocs)
		if allocs > 2 {
			t.Errorf("%v: %.1f allocs/op steady-state, want <= 2", f, allocs)
		}
	}
}

// TestOpenBundleFile exercises the zero-copy file load path end to end:
// write, map, decode, replay, close.
func TestOpenBundleFile(t *testing.T) {
	b := recordNamed(t, "ioheavy-4t4c")
	path := t.TempDir() + "/r.bundle"
	if err := os.WriteFile(path, marshalAs(b, FormatAuto), 0o644); err != nil {
		t.Fatal(err)
	}
	d := &BundleDecoder{}
	loaded, closeFn, err := OpenBundleFile(d, path)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn()
	spec, _ := workload.ByName("ioheavy")
	prog := spec.Build(loaded.Threads)
	rr, err := Replay(prog, loaded)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(loaded, rr); err != nil {
		t.Fatal(err)
	}
}

// FuzzWireV2Header fuzzes the v2 decode path with hostile bytes. The
// properties: never panic, and any input that decodes successfully must
// survive a Marshal → decode → DeepEqual round trip (the decoder only
// accepts bundles it can faithfully re-encode).
func FuzzWireV2Header(f *testing.F) {
	prog := workload.Counter(40, 2)
	b, err := Record(prog, recordCfg(9, func(c *machine.Config) { c.Threads = 2 }))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(marshalAs(b, FormatV2Raw))
	f.Add(marshalAs(b, FormatV2LZ))
	f.Add(marshalAs(b, FormatV1))
	f.Add([]byte("QRBN"))
	f.Add([]byte{'Q', 'R', 'B', 'N', 3, 0, 0, 0, 0})
	f.Add([]byte{'Q', 'R', 'B', 'N', 3, 0xff, 0xff, 0xff, 0xff, 1, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := UnmarshalBundle(data)
		if err != nil {
			if !errors.Is(err, ErrCorruptBundle) {
				t.Fatalf("decode error is not typed: %v", err)
			}
			return
		}
		again, err := UnmarshalBundle(got.Marshal())
		if err != nil {
			t.Fatalf("re-encode of accepted bundle does not decode: %v", err)
		}
		if !reflect.DeepEqual(got, again) {
			t.Fatal("re-encode round trip is not stable")
		}
	})
}
