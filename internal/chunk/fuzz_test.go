package chunk

import (
	"testing"
)

// corpusLog is a plausible hand-built chunk stream used to seed the
// fuzzer with structurally valid inputs in every encoding.
func corpusLog() *Log {
	return &Log{Thread: 2, Entries: []Entry{
		{Size: 100, TS: 1, Reason: ReasonConflictRAW},
		{Size: 3, TS: 1, Reason: ReasonSyscall},
		{Size: 2500, TS: 7, Reason: ReasonSwitch, RepResidue: 12},
		{Size: 1, TS: 7, Reason: ReasonSigOverflow, RepResidue: 300},
		{Size: 0, TS: 90, Reason: ReasonFlush},
	}}
}

// FuzzChunkLogDecode feeds arbitrary bytes to the chunk-log decoder. The
// decoder must never panic; on accepted inputs the decoded log must
// survive a re-marshal round trip through the total (panic-free) Var
// encoding.
func FuzzChunkLogDecode(f *testing.F) {
	l := corpusLog()
	for _, enc := range Encodings() {
		f.Add(l.Marshal(enc))
	}
	empty := &Log{Thread: 0}
	f.Add(empty.Marshal(Delta{}))
	// Structurally broken seeds steer the fuzzer at the validation paths.
	blob := l.Marshal(Var{})
	f.Add(blob[:len(blob)/2])           // truncated mid-entry
	f.Add(append(blob, 0, 0, 0))        // trailing garbage
	bad := append([]byte(nil), blob...) // bad magic
	bad[0] ^= 0xff
	f.Add(bad)
	f.Add([]byte{})
	f.Add([]byte("QRCL"))

	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := UnmarshalLog(data)
		if err != nil {
			return
		}
		// Accepted input: round trip through Var, which encodes any entry.
		again, err := UnmarshalLog(l.Marshal(Var{}))
		if err != nil {
			t.Fatalf("re-decode of re-marshal failed: %v", err)
		}
		if again.Thread != l.Thread || len(again.Entries) != len(l.Entries) {
			t.Fatalf("round trip changed shape: %d/%d entries", len(again.Entries), len(l.Entries))
		}
		for i := range l.Entries {
			if again.Entries[i] != l.Entries[i] {
				t.Fatalf("entry %d changed in round trip: %v vs %v", i, again.Entries[i], l.Entries[i])
			}
		}
	})
}
