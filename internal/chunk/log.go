package chunk

import (
	"encoding/binary"
	"fmt"
)

// Log is one thread's chunk stream plus aggregate accounting. Entries are
// appended in program order; timestamps are monotonically increasing
// within a log (guaranteed by the recorder's per-thread clock handling).
type Log struct {
	// Thread is the owning thread's ID.
	Thread int
	// Entries are the chunks in program order.
	Entries []Entry
}

// Append adds one entry.
func (l *Log) Append(e Entry) { l.Entries = append(l.Entries, e) }

// Slice returns a new log holding the entries from position pos on (the
// flight-recorder tail). pos is clamped to the log length.
func (l *Log) Slice(pos int) *Log {
	if pos < 0 {
		pos = 0
	}
	if pos > len(l.Entries) {
		pos = len(l.Entries)
	}
	return &Log{Thread: l.Thread, Entries: append([]Entry(nil), l.Entries[pos:]...)}
}

// Len returns the number of chunks.
func (l *Log) Len() int { return len(l.Entries) }

// TotalInstructions sums the sizes of all chunks.
func (l *Log) TotalInstructions() uint64 {
	var n uint64
	for _, e := range l.Entries {
		n += e.Size
	}
	return n
}

// EncodedSize returns the serialized entry-stream size in bytes under
// the given encoding (header excluded).
func (l *Log) EncodedSize(enc Encoding) int {
	total := 0
	var prev *Entry
	scratch := make([]byte, 0, 32)
	for i := range l.Entries {
		scratch = enc.Append(scratch[:0], l.Entries[i], prev)
		total += len(scratch)
		prev = &l.Entries[i]
	}
	return total
}

// logMagic guards serialized chunk logs.
var logMagic = [4]byte{'Q', 'R', 'C', 'L'}

const logVersion = 1

// Marshal serializes the log with a versioned header under enc.
// Layout: magic[4] version[1] encodingID[1] thread[uvarint]
// count[uvarint] entries...
func (l *Log) Marshal(enc Encoding) []byte {
	out := make([]byte, 0, 16+len(l.Entries)*8)
	out = append(out, logMagic[:]...)
	out = append(out, logVersion, enc.ID())
	out = binary.AppendUvarint(out, uint64(l.Thread))
	out = binary.AppendUvarint(out, uint64(len(l.Entries)))
	var prev *Entry
	for i := range l.Entries {
		out = enc.Append(out, l.Entries[i], prev)
		prev = &l.Entries[i]
	}
	return out
}

// UnmarshalLog parses a serialized chunk log, inferring the encoding from
// the header.
func UnmarshalLog(data []byte) (*Log, error) {
	if len(data) < 6 {
		return nil, ErrTruncated
	}
	if [4]byte(data[0:4]) != logMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if data[4] != logVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, data[4])
	}
	enc, err := ByID(data[5])
	if err != nil {
		return nil, err
	}
	pos := 6
	thread, n := binary.Uvarint(data[pos:])
	if n <= 0 {
		return nil, ErrTruncated
	}
	pos += n
	count, n := binary.Uvarint(data[pos:])
	if n <= 0 {
		return nil, ErrTruncated
	}
	pos += n
	// Cap the pre-allocation: count comes from untrusted input and the
	// remaining bytes bound the real entry count anyway.
	capHint := count
	if max := uint64(len(data) - pos); capHint > max {
		capHint = max
	}
	l := &Log{Thread: int(thread), Entries: make([]Entry, 0, capHint)}
	var prev *Entry
	for i := uint64(0); i < count; i++ {
		e, n, err := enc.Decode(data[pos:], prev)
		if err != nil {
			return nil, fmt.Errorf("entry %d: %w", i, err)
		}
		pos += n
		l.Entries = append(l.Entries, e)
		prev = &l.Entries[len(l.Entries)-1]
	}
	if pos != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(data)-pos)
	}
	return l, nil
}
