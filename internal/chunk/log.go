package chunk

import (
	"fmt"

	"repro/internal/wire"
)

// Log is one thread's chunk stream plus aggregate accounting. Entries are
// appended in program order; timestamps are monotonically increasing
// within a log (guaranteed by the recorder's per-thread clock handling).
type Log struct {
	// Thread is the owning thread's ID.
	Thread int
	// Entries are the chunks in program order.
	Entries []Entry
}

// Append adds one entry.
func (l *Log) Append(e Entry) { l.Entries = append(l.Entries, e) }

// Slice returns a new log holding the entries from position pos on (the
// flight-recorder tail). pos is clamped to the log length.
func (l *Log) Slice(pos int) *Log {
	if pos < 0 {
		pos = 0
	}
	if pos > len(l.Entries) {
		pos = len(l.Entries)
	}
	return &Log{Thread: l.Thread, Entries: append([]Entry(nil), l.Entries[pos:]...)}
}

// Len returns the number of chunks.
func (l *Log) Len() int { return len(l.Entries) }

// TotalInstructions sums the sizes of all chunks.
func (l *Log) TotalInstructions() uint64 {
	var n uint64
	for _, e := range l.Entries {
		n += e.Size
	}
	return n
}

// EncodedSize returns the serialized entry-stream size in bytes under
// the given encoding (header excluded).
func (l *Log) EncodedSize(enc Encoding) int {
	total := 0
	var prev *Entry
	scratch := make([]byte, 0, 32)
	for i := range l.Entries {
		scratch = enc.Append(scratch[:0], l.Entries[i], prev)
		total += len(scratch)
		prev = &l.Entries[i]
	}
	return total
}

// logMagic guards serialized chunk logs.
var logMagic = [4]byte{'Q', 'R', 'C', 'L'}

const logVersion = 1

// Marshal serializes the log with a versioned header under enc.
// Layout: magic[4] version[1] encodingID[1] thread[uvarint]
// count[uvarint] entries...
func (l *Log) Marshal(enc Encoding) []byte {
	a := wire.AppenderOf(make([]byte, 0, 16+len(l.Entries)*8))
	l.AppendMarshal(&a, enc)
	return a.Buf
}

// AppendMarshal serializes the log onto a, letting callers that embed
// chunk logs in a larger container (the bundle) reuse one buffer.
func (l *Log) AppendMarshal(a *wire.Appender, enc Encoding) {
	a.Raw(logMagic[:])
	a.Byte(logVersion)
	a.Byte(enc.ID())
	a.Int(l.Thread)
	a.Int(len(l.Entries))
	var prev *Entry
	for i := range l.Entries {
		a.Buf = enc.Append(a.Buf, l.Entries[i], prev)
		prev = &l.Entries[i]
	}
}

// UnmarshalLog parses a serialized chunk log, inferring the encoding from
// the header.
func UnmarshalLog(data []byte) (*Log, error) {
	l := &Log{}
	if err := UnmarshalLogInto(l, data); err != nil {
		return nil, err
	}
	return l, nil
}

// UnmarshalLogInto parses into an existing Log, letting containers that
// decode one log per thread (the bundle) lay the Logs out contiguously
// instead of allocating each separately.
func UnmarshalLogInto(l *Log, data []byte) error {
	if len(data) < 6 {
		return ErrTruncated
	}
	if [4]byte(data[0:4]) != logMagic {
		return fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if data[4] != logVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrCorrupt, data[4])
	}
	enc, err := ByID(data[5])
	if err != nil {
		return err
	}
	c := wire.CursorOf(data)
	c.Skip(6)
	thread, err := c.Uvarint()
	if err != nil {
		return err
	}
	count, err := c.Uvarint()
	if err != nil {
		return err
	}
	// Cap the pre-allocation: count comes from untrusted input and the
	// remaining bytes bound the real entry count anyway.
	capHint := count
	if max := uint64(c.Remaining()); capHint > max {
		capHint = max
	}
	l.Thread = int(thread)
	// Reuse the existing entries capacity when the caller (a reusable
	// bundle decoder) passes the same Log across decodes; a fresh Log
	// allocates once with the hint.
	if l.Entries != nil {
		l.Entries = l.Entries[:0]
	} else {
		l.Entries = make([]Entry, 0, capHint)
	}
	var prev *Entry
	for i := uint64(0); i < count; i++ {
		e, n, err := enc.Decode(c.Rest(), prev)
		if err != nil {
			return fmt.Errorf("entry %d: %w", i, err)
		}
		c.Skip(n)
		l.Entries = append(l.Entries, e)
		prev = &l.Entries[len(l.Entries)-1]
	}
	return c.Done()
}
