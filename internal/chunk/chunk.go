// Package chunk defines the memory-log entry produced by the QuickRec
// recording hardware for each chunk — a group of consecutively retired
// instructions from one thread — together with the on-disk encodings the
// paper explores for log compression.
//
// A chunk entry carries everything replay needs to reproduce the recorded
// interleaving: how many instructions the chunk retired (Size), its
// position in the global serialization (TS, a Lamport timestamp), why the
// hardware closed it (Reason), and, when the chunk boundary fell in the
// middle of a REP string instruction, how many iterations of that
// instruction had completed (RepResidue).
package chunk

import (
	"fmt"

	"repro/internal/wire"
)

// Reason codes why the hardware terminated a chunk.
type Reason uint8

// Termination reasons. The conflict reasons are named from the closing
// (responding) core's perspective: ConflictRAW means a remote read hit
// this core's write signature, i.e. this chunk's write is the source of a
// read-after-write dependence.
const (
	ReasonNone        Reason = iota
	ReasonConflictRAW        // remote read snoop hit local write signature
	ReasonConflictWAR        // remote exclusive snoop hit local read signature
	ReasonConflictWAW        // remote exclusive snoop hit local write signature
	ReasonSigOverflow        // read or write signature reached its insert bound
	ReasonEviction           // a signature-resident line left the cache
	ReasonCTROverflow        // chunk instruction counter saturated
	ReasonSyscall            // thread entered the kernel via syscall
	ReasonTrap               // asynchronous signal delivered
	ReasonSwitch             // thread descheduled from the core
	ReasonFlush              // end of execution or explicit drain
	ReasonCheckpoint         // flight-recorder checkpoint boundary

	NumReasons
)

var reasonNames = [NumReasons]string{
	ReasonNone: "none", ReasonConflictRAW: "raw", ReasonConflictWAR: "war",
	ReasonConflictWAW: "waw", ReasonSigOverflow: "sig-overflow",
	ReasonEviction: "eviction", ReasonCTROverflow: "ctr-overflow",
	ReasonSyscall: "syscall", ReasonTrap: "signal", ReasonSwitch: "switch",
	ReasonFlush: "flush", ReasonCheckpoint: "checkpoint",
}

// String returns the reason's short name.
func (r Reason) String() string {
	if int(r) < len(reasonNames) {
		return reasonNames[r]
	}
	return fmt.Sprintf("reason(%d)", uint8(r))
}

// IsConflict reports whether the reason is an inter-thread data conflict.
func (r Reason) IsConflict() bool {
	return r == ReasonConflictRAW || r == ReasonConflictWAR || r == ReasonConflictWAW
}

// Entry is one chunk record.
type Entry struct {
	// Size is the number of instructions retired in the chunk.
	Size uint64
	// TS is the chunk's Lamport timestamp; replay executes chunks in
	// (TS, thread) order.
	TS uint64
	// Reason is why the hardware closed the chunk.
	Reason Reason
	// RepResidue is the number of completed iterations of the in-flight
	// REP string instruction at chunk close (0 when the boundary fell on
	// a whole instruction). The count is absolute within the instruction,
	// so consecutive chunks interrupting the same REP carry increasing
	// residues.
	RepResidue uint64
}

// String renders the entry for diagnostics.
func (e Entry) String() string {
	s := fmt.Sprintf("chunk{size=%d ts=%d %s", e.Size, e.TS, e.Reason)
	if e.RepResidue != 0 {
		s += fmt.Sprintf(" rep=%d", e.RepResidue)
	}
	return s + "}"
}

// Encoding is one serialization scheme for chunk entries. Encoders are
// stateless; the previous entry in the same stream is passed explicitly
// so delta schemes can compress against it.
type Encoding interface {
	// Name identifies the encoding in headers and reports.
	Name() string
	// ID is the byte stored in log headers.
	ID() byte
	// Append serializes e (following prev, nil for the first entry) onto
	// dst and returns the extended slice.
	Append(dst []byte, e Entry, prev *Entry) []byte
	// Decode parses one entry from src (following prev), returning the
	// entry and the number of bytes consumed.
	Decode(src []byte, prev *Entry) (Entry, int, error)
}

// Encoding IDs.
const (
	FixedID byte = 1
	VarID   byte = 2
	DeltaID byte = 3
)

// ErrTruncated reports a log that ends mid-entry. It aliases the wire
// layer's shared truncation sentinel, kept re-exported here because
// every decoder in the system predates the wire package and triages
// against the chunk-package names.
var ErrTruncated = wire.ErrTruncated

// ErrCorrupt reports a log that fails structural validation. Like
// ErrTruncated it aliases the shared wire sentinel.
var ErrCorrupt = wire.ErrCorrupt

// ByID returns the encoding registered under id.
func ByID(id byte) (Encoding, error) {
	switch id {
	case FixedID:
		return Fixed{}, nil
	case VarID:
		return Var{}, nil
	case DeltaID:
		return Delta{}, nil
	}
	return nil, fmt.Errorf("%w: unknown encoding id %d", ErrCorrupt, id)
}

// Encodings returns all registered encodings, in ID order.
func Encodings() []Encoding { return []Encoding{Fixed{}, Var{}, Delta{}} }

// Fixed is the uncompressed hardware-native format: every entry occupies
// exactly 16 bytes (48-bit size, 48-bit timestamp, 8-bit reason, 24-bit
// REP residue, 8 reserved bits). This models the raw DMA format the
// recording hardware writes before any software compression.
type Fixed struct{}

// Name implements Encoding.
func (Fixed) Name() string { return "fixed16" }

// ID implements Encoding.
func (Fixed) ID() byte { return FixedID }

const (
	fixedEntrySize = 16
	max48          = (1 << 48) - 1
	max24          = (1 << 24) - 1
)

// Append implements Encoding.
func (Fixed) Append(dst []byte, e Entry, _ *Entry) []byte {
	if e.Size > max48 || e.TS > max48 {
		panic(fmt.Sprintf("chunk: entry exceeds fixed-format field width: %v", e))
	}
	if e.RepResidue > max24 {
		panic(fmt.Sprintf("chunk: REP residue %d exceeds 24-bit field", e.RepResidue))
	}
	a := wire.AppenderOf(dst)
	a.U64(e.Size | uint64(e.Reason)<<48 | (e.RepResidue&0xff)<<56)
	a.U64(e.TS | (e.RepResidue>>8)<<48)
	return a.Buf
}

// Decode implements Encoding.
func (Fixed) Decode(src []byte, _ *Entry) (Entry, int, error) {
	c := wire.CursorOf(src)
	lo, err := c.U64()
	if err != nil {
		return Entry{}, 0, err
	}
	hi, err := c.U64()
	if err != nil {
		return Entry{}, 0, err
	}
	e := Entry{
		Size:       lo & max48,
		Reason:     Reason(lo >> 48 & 0xff),
		TS:         hi & max48,
		RepResidue: (lo >> 56 & 0xff) | (hi>>48&0xffff)<<8,
	}
	if e.Reason >= NumReasons {
		return Entry{}, 0, fmt.Errorf("%w: reason %d", ErrCorrupt, e.Reason)
	}
	return e, fixedEntrySize, nil
}

// Var encodes each field as a varint with a flag byte, shrinking small
// chunks without exploiting inter-entry redundancy.
type Var struct{}

// Name implements Encoding.
func (Var) Name() string { return "varint" }

// ID implements Encoding.
func (Var) ID() byte { return VarID }

const repFlag = 0x80

// Append implements Encoding.
func (Var) Append(dst []byte, e Entry, _ *Entry) []byte {
	flags := byte(e.Reason)
	if e.RepResidue != 0 {
		flags |= repFlag
	}
	a := wire.AppenderOf(dst)
	a.Byte(flags)
	a.Uvarint(e.Size)
	a.Uvarint(e.TS)
	if e.RepResidue != 0 {
		a.Uvarint(e.RepResidue)
	}
	return a.Buf
}

// Decode implements Encoding.
func (Var) Decode(src []byte, _ *Entry) (Entry, int, error) {
	c := wire.CursorOf(src)
	flags, err := c.Byte()
	if err != nil {
		return Entry{}, 0, err
	}
	e := Entry{Reason: Reason(flags &^ repFlag)}
	if e.Reason >= NumReasons {
		return Entry{}, 0, fmt.Errorf("%w: reason %d", ErrCorrupt, e.Reason)
	}
	if e.Size, err = c.Uvarint(); err != nil {
		return Entry{}, 0, err
	}
	if e.TS, err = c.Uvarint(); err != nil {
		return Entry{}, 0, err
	}
	if flags&repFlag != 0 {
		if e.RepResidue, err = c.Uvarint(); err != nil {
			return Entry{}, 0, err
		}
	}
	return e, c.Pos(), nil
}

// Delta is the paper-style compressed format: timestamps within a
// per-thread stream are monotonically non-decreasing, so each entry
// stores the delta from its predecessor, which is usually tiny.
type Delta struct{}

// Name implements Encoding.
func (Delta) Name() string { return "ts-delta" }

// ID implements Encoding.
func (Delta) ID() byte { return DeltaID }

// Append implements Encoding.
func (Delta) Append(dst []byte, e Entry, prev *Entry) []byte {
	var prevTS uint64
	if prev != nil {
		prevTS = prev.TS
	}
	if e.TS < prevTS {
		panic(fmt.Sprintf("chunk: non-monotonic timestamp %d after %d in delta stream", e.TS, prevTS))
	}
	flags := byte(e.Reason)
	if e.RepResidue != 0 {
		flags |= repFlag
	}
	a := wire.AppenderOf(dst)
	a.Byte(flags)
	a.Uvarint(e.Size)
	a.Uvarint(e.TS - prevTS)
	if e.RepResidue != 0 {
		a.Uvarint(e.RepResidue)
	}
	return a.Buf
}

// Decode implements Encoding.
func (Delta) Decode(src []byte, prev *Entry) (Entry, int, error) {
	e, n, err := (Var{}).Decode(src, nil)
	if err != nil {
		return e, n, err
	}
	if prev != nil {
		e.TS += prev.TS
	}
	return e, n, nil
}
