package chunk

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func randomEntries(rng *rand.Rand, n int) []Entry {
	out := make([]Entry, n)
	ts := uint64(0)
	for i := range out {
		ts += uint64(rng.Intn(1000))
		out[i] = Entry{
			Size:   uint64(rng.Intn(1 << 20)),
			TS:     ts,
			Reason: Reason(1 + rng.Intn(int(NumReasons)-1)),
		}
		if rng.Intn(10) == 0 {
			out[i].RepResidue = uint64(1 + rng.Intn(1<<16))
		}
	}
	return out
}

func TestRoundTripAllEncodings(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	entries := randomEntries(rng, 500)
	for _, enc := range Encodings() {
		var buf []byte
		var prev *Entry
		for i := range entries {
			buf = enc.Append(buf, entries[i], prev)
			prev = &entries[i]
		}
		pos := 0
		prev = nil
		for i := range entries {
			e, n, err := enc.Decode(buf[pos:], prev)
			if err != nil {
				t.Fatalf("%s: decode entry %d: %v", enc.Name(), i, err)
			}
			if e != entries[i] {
				t.Fatalf("%s: entry %d = %v, want %v", enc.Name(), i, e, entries[i])
			}
			pos += n
			prev = &entries[i]
		}
		if pos != len(buf) {
			t.Errorf("%s: %d bytes left over", enc.Name(), len(buf)-pos)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	for _, enc := range Encodings() {
		enc := enc
		f := func(size, ts uint64, reason uint8, residue uint32) bool {
			e := Entry{
				Size:       size % (1 << 40),
				TS:         ts % (1 << 40),
				Reason:     Reason(reason % uint8(NumReasons)),
				RepResidue: uint64(residue % (1 << 20)),
			}
			buf := enc.Append(nil, e, nil)
			got, n, err := enc.Decode(buf, nil)
			return err == nil && n == len(buf) && got == e
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%s: %v", enc.Name(), err)
		}
	}
}

func TestFixedEntrySizeConstant(t *testing.T) {
	e1 := Entry{Size: 1, TS: 1, Reason: ReasonSyscall}
	e2 := Entry{Size: 1 << 40, TS: 1 << 40, Reason: ReasonFlush, RepResidue: 1 << 20}
	if n := len(Fixed{}.Append(nil, e1, nil)); n != 16 {
		t.Errorf("small fixed entry = %d bytes, want 16", n)
	}
	if n := len(Fixed{}.Append(nil, e2, nil)); n != 16 {
		t.Errorf("large fixed entry = %d bytes, want 16", n)
	}
}

func TestDeltaSmallerThanVarForCloseTimestamps(t *testing.T) {
	// Large absolute timestamps, small deltas: the paper's compression
	// case. Delta must beat Var must beat Fixed.
	log := &Log{Thread: 0}
	ts := uint64(1 << 33)
	for i := 0; i < 1000; i++ {
		ts += uint64(1 + i%3)
		log.Append(Entry{Size: uint64(100 + i%50), TS: ts, Reason: ReasonCTROverflow})
	}
	fixed := log.EncodedSize(Fixed{})
	vr := log.EncodedSize(Var{})
	delta := log.EncodedSize(Delta{})
	if !(delta < vr && vr < fixed) {
		t.Errorf("sizes: delta=%d var=%d fixed=%d; want delta < var < fixed", delta, vr, fixed)
	}
}

func TestFixedOverflowPanics(t *testing.T) {
	cases := []Entry{
		{Size: 1 << 49},
		{TS: 1 << 49},
		{RepResidue: 1 << 25},
	}
	for _, e := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("entry %v did not panic", e)
				}
			}()
			Fixed{}.Append(nil, e, nil)
		}()
	}
}

func TestDeltaNonMonotonicPanics(t *testing.T) {
	prev := Entry{TS: 100}
	defer func() {
		if recover() == nil {
			t.Error("backward timestamp did not panic")
		}
	}()
	Delta{}.Append(nil, Entry{TS: 99}, &prev)
}

func TestDecodeTruncated(t *testing.T) {
	e := Entry{Size: 300, TS: 1 << 20, Reason: ReasonSyscall, RepResidue: 5}
	for _, enc := range Encodings() {
		buf := enc.Append(nil, e, nil)
		for cut := 0; cut < len(buf); cut++ {
			if _, _, err := enc.Decode(buf[:cut], nil); err == nil {
				t.Errorf("%s: decode of %d/%d bytes succeeded", enc.Name(), cut, len(buf))
			}
		}
	}
}

func TestDecodeBadReason(t *testing.T) {
	bad := Fixed{}.Append(nil, Entry{Size: 1, TS: 1}, nil)
	bad[6] = 0xff // reason byte within the packed word
	if _, _, err := (Fixed{}).Decode(bad, nil); err == nil {
		t.Error("fixed decode accepted invalid reason")
	}
	if _, _, err := (Var{}).Decode([]byte{0x7f, 0x01, 0x01}, nil); err == nil {
		t.Error("var decode accepted invalid reason")
	}
}

func TestLogMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, enc := range Encodings() {
		l := &Log{Thread: 7, Entries: randomEntries(rng, 200)}
		data := l.Marshal(enc)
		got, err := UnmarshalLog(data)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", enc.Name(), err)
		}
		if got.Thread != 7 || len(got.Entries) != len(l.Entries) {
			t.Fatalf("%s: header mismatch: %d entries thread %d", enc.Name(), len(got.Entries), got.Thread)
		}
		for i := range l.Entries {
			if got.Entries[i] != l.Entries[i] {
				t.Fatalf("%s: entry %d = %v, want %v", enc.Name(), i, got.Entries[i], l.Entries[i])
			}
		}
	}
}

func TestLogMarshalEmpty(t *testing.T) {
	l := &Log{Thread: 3}
	got, err := UnmarshalLog(l.Marshal(Delta{}))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || got.Thread != 3 {
		t.Errorf("got %d entries, thread %d", got.Len(), got.Thread)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("QR"),
		[]byte("NOPE\x01\x01\x00\x00"),
		[]byte("QRCL\x09\x01\x00\x00"),       // bad version
		[]byte("QRCL\x01\x09\x00\x00"),       // bad encoding
		[]byte("QRCL\x01\x01\x00\x05"),       // count 5, no entries
		append((&Log{}).Marshal(Var{}), 0xff), // trailing byte
	}
	for i, c := range cases {
		if _, err := UnmarshalLog(c); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestTotalInstructions(t *testing.T) {
	l := &Log{}
	l.Append(Entry{Size: 10, TS: 1, Reason: ReasonSyscall})
	l.Append(Entry{Size: 20, TS: 2, Reason: ReasonFlush})
	if got := l.TotalInstructions(); got != 30 {
		t.Errorf("TotalInstructions = %d, want 30", got)
	}
	if l.Len() != 2 {
		t.Errorf("Len = %d, want 2", l.Len())
	}
}

func TestReasonStrings(t *testing.T) {
	for r := Reason(0); r < NumReasons; r++ {
		if s := r.String(); s == "" || strings.HasPrefix(s, "reason(") {
			t.Errorf("Reason(%d) has no name", r)
		}
	}
	if !strings.HasPrefix(Reason(200).String(), "reason(") {
		t.Error("out-of-range reason should render numerically")
	}
}

func TestIsConflict(t *testing.T) {
	conflicts := map[Reason]bool{
		ReasonConflictRAW: true, ReasonConflictWAR: true, ReasonConflictWAW: true,
		ReasonSyscall: false, ReasonFlush: false, ReasonEviction: false,
	}
	for r, want := range conflicts {
		if r.IsConflict() != want {
			t.Errorf("%v.IsConflict() = %v, want %v", r, !want, want)
		}
	}
}

func TestEntryString(t *testing.T) {
	e := Entry{Size: 5, TS: 9, Reason: ReasonSyscall}
	if s := e.String(); !strings.Contains(s, "size=5") || !strings.Contains(s, "syscall") {
		t.Errorf("String = %q", s)
	}
	e.RepResidue = 3
	if s := e.String(); !strings.Contains(s, "rep=3") {
		t.Errorf("String with residue = %q", s)
	}
}

func TestByID(t *testing.T) {
	for _, enc := range Encodings() {
		got, err := ByID(enc.ID())
		if err != nil || got.Name() != enc.Name() {
			t.Errorf("ByID(%d) = %v, %v", enc.ID(), got, err)
		}
	}
	if _, err := ByID(0); err == nil {
		t.Error("ByID(0) should fail")
	}
}
