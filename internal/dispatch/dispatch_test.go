package dispatch

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/wire"
)

func TestResolve(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {7, 7},
		{-1, runtime.GOMAXPROCS(0)}, {-100, runtime.GOMAXPROCS(0)},
	}
	for _, c := range cases {
		if got := Resolve(c.in); got != c.want {
			t.Errorf("Resolve(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestLocalCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		for _, tasks := range []int{0, 1, 3, 100} {
			counts := make([]int32, tasks)
			err := Local{Workers: workers}.Execute(Spec{
				Tasks: tasks,
				Run: func(i int) error {
					atomic.AddInt32(&counts[i], 1)
					return nil
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, n := range counts {
				if n != 1 {
					t.Errorf("workers=%d tasks=%d: index %d ran %d times", workers, tasks, i, n)
				}
			}
		}
	}
}

func TestSerialRunsInOrder(t *testing.T) {
	var order []int
	err := Serial{}.Execute(Spec{
		Tasks: 5,
		Run:   func(i int) error { order = append(order, i); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial execution out of order: %v", order)
		}
	}
}

// TestEarliestErrorDeterministic pins the error contract: whatever the
// worker count and completion order, Execute returns the lowest-indexed
// failure, and every task below that index was run.
func TestEarliestErrorDeterministic(t *testing.T) {
	failAt := map[int]bool{3: true, 7: true, 40: true}
	for _, workers := range []int{1, 2, 4, 16} {
		var ran [64]atomic.Bool
		err := Local{Workers: workers}.Execute(Spec{
			Tasks: 64,
			Run: func(i int) error {
				ran[i].Store(true)
				if failAt[i] {
					return fmt.Errorf("task %d failed", i)
				}
				return nil
			},
		})
		if err == nil || err.Error() != "task 3 failed" {
			t.Fatalf("workers=%d: got error %v, want task 3's", workers, err)
		}
		for i := 0; i <= 3; i++ {
			if !ran[i].Load() {
				t.Fatalf("workers=%d: task %d below the earliest failure never ran", workers, i)
			}
		}
	}
}

// TestSerialEarlyStops pins early stop on the serial path: nothing past
// the first failure runs.
func TestSerialEarlyStops(t *testing.T) {
	var ran []int
	err := Serial{}.Execute(Spec{
		Tasks: 10,
		Run: func(i int) error {
			ran = append(ran, i)
			if i == 4 {
				return errors.New("boom")
			}
			return nil
		},
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("got %v", err)
	}
	if len(ran) != 5 {
		t.Fatalf("serial ran %v after the failure", ran)
	}
}

func TestJobRoundTrip(t *testing.T) {
	jobs := []Job{
		{Kind: JobReplayInterval, Digest: "ab12", Payload: []byte{1, 2, 3}},
		{Kind: JobScreenBlock, Digest: "ff", Payload: nil},
		{Kind: JobConfirmSlice, Digest: "0123456789abcdef", Payload: []byte("params")},
	}
	for _, j := range jobs {
		a := wire.GetAppender()
		AppendJob(a, j)
		got, err := DecodeJob(a.Buf)
		if err != nil {
			t.Fatalf("%+v: %v", j, err)
		}
		if got.Kind != j.Kind || got.Digest != j.Digest || string(got.Payload) != string(j.Payload) {
			t.Fatalf("round trip %+v -> %+v", j, got)
		}
		wire.PutAppender(a)
	}
}

func TestJobResultRoundTrip(t *testing.T) {
	for _, r := range []JobResult{
		{Err: "", Payload: []byte{9, 8}},
		{Err: "replay: divergence on thread 1", Payload: nil},
	} {
		a := wire.GetAppender()
		AppendJobResult(a, r)
		got, err := DecodeJobResult(a.Buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Err != r.Err || string(got.Payload) != string(r.Payload) {
			t.Fatalf("round trip %+v -> %+v", r, got)
		}
		wire.PutAppender(a)
	}
}

func TestDecodeJobRejectsGarbage(t *testing.T) {
	bad := [][]byte{
		nil,
		{0},                 // kind 0
		{9, 0, 0},           // unknown kind
		{1},                 // missing digest
		{1, 2, 'a'},         // digest blob truncated
		{1, 1, 'a', 5, 'x'}, // payload blob truncated
	}
	for _, data := range bad {
		if _, err := DecodeJob(data); err == nil {
			t.Errorf("DecodeJob(%v) accepted garbage", data)
		}
	}
}
