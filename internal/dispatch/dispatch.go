// Package dispatch is the one parallel-execution layer every fan-out
// path in the system rides: interval replay, race screening and
// confirmation, concurrent-pair enumeration, and the ingest verifier
// pool all describe their work as an index-addressed Spec and hand it
// to an Executor. Work is always index-based — a task count plus
// functions of the task index — and results are collected into
// pre-sized slices, so output order is fixed by index, never by
// goroutine (or remote worker) completion order. That convention is
// what makes serial, local-parallel, and distributed runs bit-identical
// by construction: the merge is a function of the task list, and the
// task list is a pure function of the input.
//
// A Spec optionally carries a remote form of each task: Job(i) encodes
// the task as a wire envelope referencing a content-addressed bundle,
// and Absorb(i, result) merges the remote result payload into slot i.
// Local executors ignore the remote form and call Run; the fleet
// executor (internal/fleet) ignores Run and ships the envelopes.
//
// Error selection is deterministic everywhere: when tasks fail, the
// executor returns the error of the lowest-indexed failing task, and it
// guarantees every task below that index was run — so the reported
// error is the one a serial execution would have hit first. Early stop
// rides the same rule: once some task has failed, tasks above the
// lowest failing index may be skipped (they cannot affect the outcome),
// which is the cancellation half of the contract.
package dispatch

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve normalizes a caller-facing worker count, the convention every
// Workers knob in this codebase shares: 0 and 1 select serial execution
// (the zero value changes nothing), values above 1 are honored as-is,
// and negative values select runtime.GOMAXPROCS(0).
func Resolve(n int) int {
	if n < 0 {
		return runtime.GOMAXPROCS(0)
	}
	if n == 0 {
		return 1
	}
	return n
}

// Spec describes one fan-out: Tasks independent units addressed by
// index, merged by index. Run executes task i in-process. Job and
// Absorb, when non-nil, are the remote form: Job(i) encodes task i as a
// self-contained envelope and Absorb(i, result) merges the raw result
// payload a remote worker produced for it. Local executors require Run;
// remote executors require Job and Absorb.
type Spec struct {
	// Tasks is the number of independent work items.
	Tasks int
	// Run executes task i on the calling executor's goroutines. It must
	// confine its writes to per-index state; the executor provides the
	// happens-before edge between every Run call and Execute's return.
	Run func(i int) error
	// Job encodes task i as a wire envelope for a remote worker. nil
	// marks the spec local-only.
	Job func(i int) (Job, error)
	// Absorb merges the result payload a remote worker returned for task
	// i. Called at most once per index, possibly concurrently with other
	// indices' Absorb calls.
	Absorb func(i int, result []byte) error
}

// Executor runs a Spec to completion. Implementations must honor the
// deterministic earliest-error contract: if any task fails, Execute
// returns the lowest-indexed task's error and has run (or absorbed)
// every task below that index.
type Executor interface {
	// Name identifies the backend ("serial", "local", "fleet") for
	// reports and errors.
	Name() string
	Execute(s Spec) error
}

// ErrNotRemotable reports a local-only Spec (no Job/Absorb encoding)
// handed to a remote executor.
var ErrNotRemotable = errors.New("dispatch: spec has no job encoding; it can only run on a local executor")

// earliestError tracks the minimum failing task index across workers.
type earliestError struct {
	idx  atomic.Int64 // lowest failing index; == tasks when none failed
	errs []error
}

func newEarliestError(tasks int) *earliestError {
	e := &earliestError{errs: make([]error, tasks)}
	e.idx.Store(int64(tasks))
	return e
}

// record notes task i's failure, keeping the minimum index.
func (e *earliestError) record(i int, err error) {
	e.errs[i] = err
	for {
		cur := e.idx.Load()
		if int64(i) >= cur || e.idx.CompareAndSwap(cur, int64(i)) {
			return
		}
	}
}

// stopAt returns the current lowest failing index: tasks above it may
// be skipped (they cannot become the reported error).
func (e *earliestError) stopAt() int64 { return e.idx.Load() }

// err returns the earliest error, or nil.
func (e *earliestError) err() error {
	if i := e.idx.Load(); int(i) < len(e.errs) {
		return e.errs[i]
	}
	return nil
}

// Serial runs every task in index order on the calling goroutine,
// stopping at the first error. It is Local with one worker, named so
// call sites can state intent.
type Serial struct{}

// Name implements Executor.
func (Serial) Name() string { return "serial" }

// Execute implements Executor.
func (Serial) Execute(s Spec) error { return Local{Workers: 1}.Execute(s) }

// Local fans tasks out over at most Resolve(Workers) goroutines with an
// atomic next-index cursor. With one worker (or one task) the calls run
// inline on the caller's goroutine, so the serial path has no
// scheduling nondeterminism at all.
type Local struct {
	// Workers follows the Resolve convention: 0/1 serial, negative
	// GOMAXPROCS.
	Workers int
}

// Name implements Executor.
func (Local) Name() string { return "local" }

// Execute implements Executor.
func (l Local) Execute(s Spec) error {
	if s.Tasks <= 0 {
		return nil
	}
	if s.Run == nil {
		return fmt.Errorf("dispatch: local executor needs Spec.Run")
	}
	workers := Resolve(l.Workers)
	if workers > s.Tasks {
		workers = s.Tasks
	}
	ee := newEarliestError(s.Tasks)
	if workers <= 1 {
		for i := 0; i < s.Tasks; i++ {
			if err := s.Run(i); err != nil {
				ee.record(i, err)
				break // tasks above the failing index cannot matter
			}
		}
		return ee.err()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= s.Tasks {
					return
				}
				// Early stop: indices above the lowest failure are dead work.
				// stopAt only decreases and only ever holds failing indices,
				// so every index at or below the final minimum still runs.
				if int64(i) > ee.stopAt() {
					return
				}
				if err := s.Run(i); err != nil {
					ee.record(i, err)
				}
			}
		}()
	}
	wg.Wait()
	return ee.err()
}
