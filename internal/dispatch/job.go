package dispatch

import (
	"fmt"

	"repro/internal/wire"
)

// Job kinds. The dispatch layer does not interpret them — they select
// which domain codec (replay interval, race screening, race
// confirmation) a fleet worker routes the payload through.
const (
	// JobReplayInterval replays one checkpoint-partitioned interval of a
	// recording (payload: interval index + expected interval count).
	JobReplayInterval uint8 = 1
	// JobScreenBlock screens one fixed-size block of Lamport-concurrent
	// chunk pairs against their Bloom signatures.
	JobScreenBlock uint8 = 2
	// JobConfirmSlice confirms races for one slice of the conflict
	// address space over an access-traced replay.
	JobConfirmSlice uint8 = 3
)

// Job is the typed, wire-encoded envelope a remote worker executes: a
// kind routing it to a domain codec, the content address of the bundle
// it works on, and an opaque kind-specific parameter payload.
type Job struct {
	Kind    uint8
	Digest  string // content address (lowercase hex SHA-256) of the bundle
	Payload []byte
}

// maxJobPayload bounds one job's parameter payload. Job parameters are
// small (indices and counts); anything large travels by digest.
const maxJobPayload = 1 << 16

// AppendJob encodes j.
func AppendJob(a *wire.Appender, j Job) {
	a.Byte(j.Kind)
	a.String(j.Digest)
	a.Blob(j.Payload)
}

// DecodeJob decodes one Job, validating bounds. The payload aliases
// data.
func DecodeJob(data []byte) (Job, error) {
	var j Job
	c := wire.CursorOf(data)
	kind, err := c.Byte()
	if err != nil {
		return j, fmt.Errorf("dispatch: job kind: %w", err)
	}
	if kind < JobReplayInterval || kind > JobConfirmSlice {
		return j, fmt.Errorf("dispatch: unknown job kind %d", kind)
	}
	j.Kind = kind
	d, err := c.View()
	if err != nil {
		return j, fmt.Errorf("dispatch: job digest: %w", err)
	}
	if len(d) == 0 || len(d) > 2*64 {
		return j, fmt.Errorf("dispatch: job digest length %d", len(d))
	}
	j.Digest = string(d)
	p, err := c.View()
	if err != nil {
		return j, fmt.Errorf("dispatch: job payload: %w", err)
	}
	if len(p) > maxJobPayload {
		return j, fmt.Errorf("dispatch: job payload %d bytes exceeds %d", len(p), maxJobPayload)
	}
	j.Payload = p
	if err := c.Done(); err != nil {
		return j, fmt.Errorf("dispatch: job trailer: %w", err)
	}
	return j, nil
}

// JobResult is the envelope a worker returns for one job: either an
// error message (the task failed deterministically on the worker) or a
// kind-specific result payload for Spec.Absorb.
type JobResult struct {
	Err     string // non-empty: the task failed; Payload is empty
	Payload []byte
}

// AppendJobResult encodes r.
func AppendJobResult(a *wire.Appender, r JobResult) {
	a.String(r.Err)
	a.Blob(r.Payload)
}

// DecodeJobResult decodes one JobResult. The payload aliases data.
func DecodeJobResult(data []byte) (JobResult, error) {
	var r JobResult
	c := wire.CursorOf(data)
	e, err := c.View()
	if err != nil {
		return r, fmt.Errorf("dispatch: result error: %w", err)
	}
	r.Err = string(e)
	p, err := c.View()
	if err != nil {
		return r, fmt.Errorf("dispatch: result payload: %w", err)
	}
	r.Payload = p
	if err := c.Done(); err != nil {
		return r, fmt.Errorf("dispatch: result trailer: %w", err)
	}
	return r, nil
}

// RemoteError is a task failure that happened on a fleet worker,
// reconstructed from the result envelope. The original typed error
// (BoundaryError, DivergenceError, ...) does not survive the wire; its
// rendered message does, so earliest-error selection still reports the
// same text a local run would.
type RemoteError struct {
	Worker string // worker identity, when known
	Msg    string
}

// Error implements error.
func (e *RemoteError) Error() string {
	if e.Worker != "" {
		return fmt.Sprintf("dispatch: remote task failed on %s: %s", e.Worker, e.Msg)
	}
	return "dispatch: remote task failed: " + e.Msg
}
