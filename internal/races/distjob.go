package races

// Remote race-detection jobs: the wire forms of one screening block
// (JobScreenBlock) and one confirmation address slice (JobConfirmSlice).
// Both payloads carry only tiling coordinates plus a cross-check count —
// a fleet worker holding the same bundle re-derives the pair list, the
// candidate set and the access trace deterministically, so the two
// sides agree on what block bi or slice k means without shipping the
// analysis state.

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/wire"
)

// encodeScreenJob packs one screening block's parameters: the block
// index and the dispatcher's concurrent-pair count, which the worker
// checks against its own enumeration.
func encodeScreenJob(block, totalPairs int) []byte {
	var a wire.Appender
	a.Uvarint(uint64(block))
	a.Uvarint(uint64(totalPairs))
	return a.Buf
}

func decodeScreenJob(data []byte) (block, totalPairs int, err error) {
	c := wire.CursorOf(data)
	bi, err := c.Uvarint()
	if err != nil {
		return 0, 0, fmt.Errorf("races: screen job block: %w", err)
	}
	np, err := c.Uvarint()
	if err != nil {
		return 0, 0, fmt.Errorf("races: screen job pair count: %w", err)
	}
	if err := c.Done(); err != nil {
		return 0, 0, fmt.Errorf("races: screen job trailer: %w", err)
	}
	nblocks := (np + screenBlockSize - 1) / screenBlockSize
	if np > 1<<32 || bi >= nblocks {
		return 0, 0, fmt.Errorf("races: screen job block %d of %d pairs out of range", bi, np)
	}
	return int(bi), int(np), nil
}

// encodeCandidates packs one screening block's result.
func encodeCandidates(cands []Candidate) []byte {
	var a wire.Appender
	a.Uvarint(uint64(len(cands)))
	for _, c := range cands {
		a.Int(c.Pair.ThreadA)
		a.Int(c.Pair.ChunkA)
		a.Int(c.Pair.ThreadB)
		a.Int(c.Pair.ChunkB)
		var flags byte
		if c.ReadWrite {
			flags |= 1
		}
		if c.WriteRead {
			flags |= 2
		}
		if c.WriteWrite {
			flags |= 4
		}
		a.Byte(flags)
	}
	return a.Buf
}

func decodeCandidates(data []byte) ([]Candidate, error) {
	c := wire.CursorOf(data)
	n, err := c.Uvarint()
	if err != nil || n > 1<<24 {
		return nil, fmt.Errorf("races: candidate count: %w", errOr(err, n))
	}
	out := make([]Candidate, 0, n)
	for i := uint64(0); i < n; i++ {
		var cand Candidate
		var fields [4]int
		for f := range fields {
			v, err := c.Uvarint()
			if err != nil {
				return nil, fmt.Errorf("races: candidate %d: %w", i, err)
			}
			fields[f] = int(v)
		}
		cand.Pair = analysis.ChunkPair{
			ThreadA: fields[0], ChunkA: fields[1],
			ThreadB: fields[2], ChunkB: fields[3],
		}
		flags, err := c.Byte()
		if err != nil || flags == 0 || flags > 7 {
			return nil, fmt.Errorf("races: candidate %d flags: %w", i, errOr(err, uint64(flags)))
		}
		cand.ReadWrite = flags&1 != 0
		cand.WriteRead = flags&2 != 0
		cand.WriteWrite = flags&4 != 0
		out = append(out, cand)
	}
	if err := c.Done(); err != nil {
		return nil, fmt.Errorf("races: candidate trailer: %w", err)
	}
	return out, nil
}

// encodeConfirmJob packs one confirmation slice's parameters: the slice
// coordinates and the dispatcher's candidate count, which the worker
// checks against its own (re-screened) candidate set.
func encodeConfirmJob(slice, slices, ncands int) []byte {
	var a wire.Appender
	a.Uvarint(uint64(slice))
	a.Uvarint(uint64(slices))
	a.Uvarint(uint64(ncands))
	return a.Buf
}

func decodeConfirmJob(data []byte) (slice, slices, ncands int, err error) {
	c := wire.CursorOf(data)
	k, err := c.Uvarint()
	if err != nil {
		return 0, 0, 0, fmt.Errorf("races: confirm job slice: %w", err)
	}
	n, err := c.Uvarint()
	if err != nil {
		return 0, 0, 0, fmt.Errorf("races: confirm job slice count: %w", err)
	}
	nc, err := c.Uvarint()
	if err != nil {
		return 0, 0, 0, fmt.Errorf("races: confirm job candidate count: %w", err)
	}
	if err := c.Done(); err != nil {
		return 0, 0, 0, fmt.Errorf("races: confirm job trailer: %w", err)
	}
	if n == 0 || n > 1<<16 || k >= n || nc > 1<<24 {
		return 0, 0, 0, fmt.Errorf("races: confirm job slice %d of %d (%d candidates) out of range", k, n, nc)
	}
	return int(k), int(n), int(nc), nil
}

// encodeSliceRaces packs one confirmation slice's result: its races in
// discovery order and the candidate pairs it confirmed.
func encodeSliceRaces(s sliceRaces) []byte {
	var a wire.Appender
	a.Uvarint(uint64(len(s.races)))
	for _, r := range s.races {
		a.U64(r.Addr)
		a.Int(r.ThreadA)
		a.Int(r.PCA)
		a.Int(r.ChunkA)
		a.Bool(r.KindA == "write")
		a.Int(r.ThreadB)
		a.Int(r.PCB)
		a.Int(r.ChunkB)
		a.Bool(r.KindB == "write")
	}
	a.Uvarint(uint64(len(s.confirmed)))
	for _, pk := range s.confirmed {
		a.Int(pk.ta)
		a.Int(pk.ca)
		a.Int(pk.tb)
		a.Int(pk.cb)
	}
	return a.Buf
}

func decodeSliceRaces(data []byte) (sliceRaces, error) {
	var s sliceRaces
	c := wire.CursorOf(data)
	nr, err := c.Uvarint()
	if err != nil || nr > 1<<24 {
		return s, fmt.Errorf("races: slice race count: %w", errOr(err, nr))
	}
	ints := func(dst []*int) error {
		for _, p := range dst {
			v, err := c.Uvarint()
			if err != nil {
				return err
			}
			*p = int(v)
		}
		return nil
	}
	for i := uint64(0); i < nr; i++ {
		var r Race
		if r.Addr, err = c.U64(); err != nil {
			return s, fmt.Errorf("races: slice race %d addr: %w", i, err)
		}
		if err := ints([]*int{&r.ThreadA, &r.PCA, &r.ChunkA}); err != nil {
			return s, fmt.Errorf("races: slice race %d side A: %w", i, err)
		}
		wa, err := c.Byte()
		if err != nil || wa > 1 {
			return s, fmt.Errorf("races: slice race %d kind A: %w", i, errOr(err, uint64(wa)))
		}
		r.KindA = kindName(wa != 0)
		if err := ints([]*int{&r.ThreadB, &r.PCB, &r.ChunkB}); err != nil {
			return s, fmt.Errorf("races: slice race %d side B: %w", i, err)
		}
		wb, err := c.Byte()
		if err != nil || wb > 1 {
			return s, fmt.Errorf("races: slice race %d kind B: %w", i, errOr(err, uint64(wb)))
		}
		r.KindB = kindName(wb != 0)
		s.races = append(s.races, r)
	}
	np, err := c.Uvarint()
	if err != nil || np > 1<<24 {
		return s, fmt.Errorf("races: slice confirmed count: %w", errOr(err, np))
	}
	for i := uint64(0); i < np; i++ {
		var pk pairKey
		if err := ints([]*int{&pk.ta, &pk.ca, &pk.tb, &pk.cb}); err != nil {
			return s, fmt.Errorf("races: slice confirmed pair %d: %w", i, err)
		}
		s.confirmed = append(s.confirmed, pk)
	}
	if err := c.Done(); err != nil {
		return s, fmt.Errorf("races: slice result trailer: %w", err)
	}
	return s, nil
}

// errOr turns a count-overflow (nil err but out-of-range value) into an
// error so validation sites can share one %w format.
func errOr(err error, v uint64) error {
	if err != nil {
		return err
	}
	return fmt.Errorf("value %d out of range", v)
}

// ExecScreenJob is the worker side of a JobScreenBlock: re-derive the
// concurrent-pair list from the bundle (ConcurrentPairs is a pure
// function of the chunk logs), cross-check the dispatcher's pair count,
// and screen the one block. Serial — the fleet's parallelism is across
// jobs, not inside them.
func ExecScreenJob(b *core.Bundle, payload []byte) ([]byte, error) {
	block, totalPairs, err := decodeScreenJob(payload)
	if err != nil {
		return nil, err
	}
	decoded, err := decodeSigLogs(b)
	if err != nil {
		return nil, err
	}
	pairs := analysis.ConcurrentPairs(b.ChunkLogs)
	if len(pairs) != totalPairs {
		return nil, fmt.Errorf("races: job expects %d concurrent pairs, bundle yields %d (bundle mismatch?)",
			totalPairs, len(pairs))
	}
	nblocks := (len(pairs) + screenBlockSize - 1) / screenBlockSize
	if block >= nblocks {
		return nil, fmt.Errorf("races: screen block %d of %d out of range", block, nblocks)
	}
	return encodeCandidates(screenBlock(decoded, pairs, block)), nil
}

// ExecConfirmJob is the worker side of a JobConfirmSlice: re-screen the
// bundle serially to rebuild the candidate set, cross-check its size,
// redo the access-traced replay, and confirm the one address slice. The
// trace and screen are deterministic, so every worker (and the
// dispatcher's local path) sees the same addresses in the same order.
func ExecConfirmJob(prog *isa.Program, b *core.Bundle, payload []byte) ([]byte, error) {
	slice, slices, ncands, err := decodeConfirmJob(payload)
	if err != nil {
		return nil, err
	}
	cands, _, err := screen(b, 1)
	if err != nil {
		return nil, err
	}
	if len(cands) != ncands {
		return nil, fmt.Errorf("races: job expects %d candidates, bundle screens to %d (bundle mismatch?)",
			ncands, len(cands))
	}
	_, events, err := core.TraceAccesses(prog, b)
	if err != nil {
		return nil, err
	}
	st := buildConfirmState(b.Threads, cands, events)
	return encodeSliceRaces(st.confirmSlice(slice, slices)), nil
}
