package races

import (
	"sort"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/pool"
	"repro/internal/replay"
)

// Race is one confirmed instruction-level data race: two accesses to the
// same address from different threads, at least one a write, with no
// happens-before path between them. Sides are ordered so ThreadA <
// ThreadB.
type Race struct {
	Addr    uint64 `json:"addr"`
	ThreadA int    `json:"thread_a"`
	PCA     int    `json:"pc_a"`
	ChunkA  int    `json:"chunk_a"`
	KindA   string `json:"kind_a"`
	ThreadB int    `json:"thread_b"`
	PCB     int    `json:"pc_b"`
	ChunkB  int    `json:"chunk_b"`
	KindB   string `json:"kind_b"`
}

// Report is the detector's full output.
type Report struct {
	Program string `json:"program"`
	Threads int    `json:"threads"`
	// TotalChunks and ConcurrentPairs size the screening input.
	TotalChunks     int `json:"total_chunks"`
	ConcurrentPairs int `json:"concurrent_pairs"`
	// Candidates are the signature-screened chunk pairs.
	Candidates []Candidate `json:"candidates"`
	// Races are the confirmed instruction-level races, deduplicated by
	// (address, threads, PCs, kinds).
	Races []Race `json:"races"`
	// ConfirmedPairs counts candidate pairs containing at least one
	// confirmed race; FalsePositiveRate is the fraction of candidates
	// that confirmation discarded — the Bloom aliasing figure (0 when
	// there were no candidates).
	ConfirmedPairs    int     `json:"confirmed_pairs"`
	FalsePositiveRate float64 `json:"false_positive_rate"`
}

// Detect runs both phases: signature screening, then happens-before
// confirmation over an access-traced deterministic replay. Soundness
// note: screening inherits Bloom semantics (false positives, no false
// negatives on concurrent pairs), so confirmation only ever shrinks the
// candidate set — a pair absent from Candidates cannot hold a race
// between Lamport-concurrent chunks.
func Detect(prog *isa.Program, b *core.Bundle) (*Report, error) {
	return DetectWorkers(prog, b, 0)
}

// DetectWorkers is Detect with both phases' parallelizable parts fanned
// out over a bounded worker pool (0 or 1 workers: serial, negative:
// runtime.GOMAXPROCS(0)): screening parallelizes per concurrent pair,
// confirmation per conflict address. The access-traced replay itself
// stays serial — it is a single deterministic execution. The report is
// identical for every worker count.
func DetectWorkers(prog *isa.Program, b *core.Bundle, workers int) (*Report, error) {
	cands, pairs, err := screen(b, workers)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Program:         b.ProgramName,
		Threads:         b.Threads,
		ConcurrentPairs: pairs,
		Candidates:      cands,
	}
	for _, l := range b.ChunkLogs {
		rep.TotalChunks += l.Len()
	}
	if len(cands) == 0 {
		return rep, nil
	}
	_, events, err := core.TraceAccesses(prog, b)
	if err != nil {
		return nil, err
	}
	rep.Races, rep.ConfirmedPairs = confirm(b.Threads, cands, events, workers)
	rep.FalsePositiveRate = float64(len(cands)-rep.ConfirmedPairs) / float64(len(cands))
	return rep, nil
}

// sample is one plain access inside a candidate chunk, stamped with its
// thread's vector clock at issue time.
type sample struct {
	thread, chunk, pc int
	write             bool
	clock             uint64   // own component of vc at issue
	vc                []uint64 // snapshot of the issuing thread's clock
}

// happensBefore reports a ≺ b: everything thread a had done up to a's
// issue was visible to b's thread when b issued.
func happensBefore(a, b *sample) bool {
	return a.clock <= b.vc[a.thread]
}

// pairKey identifies a candidate chunk pair, threads ordered.
type pairKey struct{ ta, ca, tb, cb int }

// raceKey deduplicates race reports.
type raceKey struct {
	addr       uint64
	ta, pa     int
	wa         bool
	tb, pb     int
	wb         bool
}

// confirm rebuilds the happens-before order from the traced
// synchronization accesses and reports the unordered conflicting plain
// access pairs that fall inside candidate chunk pairs.
//
// Vector-clock rules (events arrive in deterministic replay order):
//
//	atomic t@a:    VC[t] ⊔= L[a]; L[a] ⊔= VC[t]; VC[t][t]++
//	futex-wait t@a: VC[t] ⊔= L[a]; VC[t][t]++   (acquire)
//	futex-wake t@a: L[a] ⊔= VC[t]; VC[t][t]++   (release)
//
// where L[a] is the last-release clock of sync address a. Plain accesses
// snapshot their thread's clock. Addresses that carry synchronization
// are excluded from race reporting — the program is ordering itself
// through them on purpose.
func confirm(threads int, cands []Candidate, events []replay.AccessEvent, workers int) ([]Race, int) {
	candChunks := map[[2]int]bool{}
	candPairs := map[pairKey]bool{}
	for _, c := range cands {
		p := c.Pair
		candChunks[[2]int{p.ThreadA, p.ChunkA}] = true
		candChunks[[2]int{p.ThreadB, p.ChunkB}] = true
		candPairs[pairKey{p.ThreadA, p.ChunkA, p.ThreadB, p.ChunkB}] = true
	}

	// Pass 1: the synchronization address set.
	syncAddr := map[uint64]bool{}
	for _, ev := range events {
		if ev.Kind.IsSync() {
			syncAddr[ev.Addr] = true
		}
	}

	// Pass 2: vector clocks + samples of candidate-chunk plain accesses.
	vc := make([][]uint64, threads)
	for t := range vc {
		vc[t] = make([]uint64, threads)
		vc[t][t] = 1 // threads start mutually unordered
	}
	join := func(dst, src []uint64) {
		for i, v := range src {
			if v > dst[i] {
				dst[i] = v
			}
		}
	}
	lock := map[uint64][]uint64{}
	byAddr := map[uint64][]*sample{}
	for _, ev := range events {
		t := ev.Thread
		switch ev.Kind {
		case replay.AccessAtomic:
			la := lock[ev.Addr]
			if la == nil {
				la = make([]uint64, threads)
				lock[ev.Addr] = la
			}
			join(vc[t], la)
			join(la, vc[t])
			vc[t][t]++
		case replay.AccessFutexWait:
			if la := lock[ev.Addr]; la != nil {
				join(vc[t], la)
			}
			vc[t][t]++
		case replay.AccessFutexWake:
			la := lock[ev.Addr]
			if la == nil {
				la = make([]uint64, threads)
				lock[ev.Addr] = la
			}
			join(la, vc[t])
			vc[t][t]++
		default:
			if syncAddr[ev.Addr] || !candChunks[[2]int{t, ev.Chunk}] {
				continue
			}
			byAddr[ev.Addr] = append(byAddr[ev.Addr], &sample{
				thread: t, chunk: ev.Chunk, pc: ev.PC,
				write: ev.Kind == replay.AccessWrite,
				clock: vc[t][t], vc: append([]uint64(nil), vc[t]...),
			})
		}
	}

	// Pair up unordered conflicting samples within candidate pairs. Every
	// race pairs two samples of one address and raceKey includes the
	// address, so addresses are independent units of work: fan them out
	// over the pool (sorted so the slot order is stable), collect each
	// address's races and confirmed pairs into its own slot, and merge in
	// address order.
	addrs := make([]uint64, 0, len(byAddr))
	for addr := range byAddr {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	type addrRaces struct {
		races     []Race
		confirmed []pairKey
	}
	slots := make([]addrRaces, len(addrs))
	pool.ForEach(pool.Resolve(workers), len(addrs), func(n int) {
		addr := addrs[n]
		samples := byAddr[addr]
		seen := map[raceKey]bool{}
		addrConfirmed := map[pairKey]bool{}
		for i, a := range samples {
			for _, bs := range samples[i+1:] {
				if a.thread == bs.thread || (!a.write && !bs.write) {
					continue
				}
				lo, hi := a, bs
				if lo.thread > hi.thread {
					lo, hi = hi, lo
				}
				pk := pairKey{lo.thread, lo.chunk, hi.thread, hi.chunk}
				if !candPairs[pk] {
					continue
				}
				rk := raceKey{addr, lo.thread, lo.pc, lo.write, hi.thread, hi.pc, hi.write}
				if seen[rk] {
					continue
				}
				if happensBefore(a, bs) || happensBefore(bs, a) {
					continue
				}
				seen[rk] = true
				if !addrConfirmed[pk] {
					addrConfirmed[pk] = true
					slots[n].confirmed = append(slots[n].confirmed, pk)
				}
				slots[n].races = append(slots[n].races, Race{
					Addr:    addr,
					ThreadA: lo.thread, PCA: lo.pc, ChunkA: lo.chunk, KindA: kindName(lo.write),
					ThreadB: hi.thread, PCB: hi.pc, ChunkB: hi.chunk, KindB: kindName(hi.write),
				})
			}
		}
	})
	confirmed := map[pairKey]bool{}
	var races []Race
	for _, s := range slots {
		races = append(races, s.races...)
		for _, pk := range s.confirmed {
			confirmed[pk] = true
		}
	}
	// Total order: the tie-breakers past PCB make the sort independent of
	// the pre-sort order, so serial and parallel runs report identically.
	sort.Slice(races, func(i, j int) bool {
		a, b := races[i], races[j]
		if a.Addr != b.Addr {
			return a.Addr < b.Addr
		}
		if a.ThreadA != b.ThreadA {
			return a.ThreadA < b.ThreadA
		}
		if a.PCA != b.PCA {
			return a.PCA < b.PCA
		}
		if a.PCB != b.PCB {
			return a.PCB < b.PCB
		}
		if a.ChunkA != b.ChunkA {
			return a.ChunkA < b.ChunkA
		}
		if a.ChunkB != b.ChunkB {
			return a.ChunkB < b.ChunkB
		}
		if a.KindA != b.KindA {
			return a.KindA < b.KindA
		}
		return a.KindB < b.KindB
	})
	return races, len(confirmed)
}

func kindName(write bool) string {
	if write {
		return "write"
	}
	return "read"
}
