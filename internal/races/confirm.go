package races

import (
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/isa"
	"repro/internal/replay"
)

// Race is one confirmed instruction-level data race: two accesses to the
// same address from different threads, at least one a write, with no
// happens-before path between them. Sides are ordered so ThreadA <
// ThreadB.
type Race struct {
	Addr    uint64 `json:"addr"`
	ThreadA int    `json:"thread_a"`
	PCA     int    `json:"pc_a"`
	ChunkA  int    `json:"chunk_a"`
	KindA   string `json:"kind_a"`
	ThreadB int    `json:"thread_b"`
	PCB     int    `json:"pc_b"`
	ChunkB  int    `json:"chunk_b"`
	KindB   string `json:"kind_b"`
}

// Report is the detector's full output.
type Report struct {
	Program string `json:"program"`
	Threads int    `json:"threads"`
	// TotalChunks and ConcurrentPairs size the screening input.
	TotalChunks     int `json:"total_chunks"`
	ConcurrentPairs int `json:"concurrent_pairs"`
	// Candidates are the signature-screened chunk pairs.
	Candidates []Candidate `json:"candidates"`
	// Races are the confirmed instruction-level races, deduplicated by
	// (address, threads, PCs, kinds).
	Races []Race `json:"races"`
	// ConfirmedPairs counts candidate pairs containing at least one
	// confirmed race; FalsePositiveRate is the fraction of candidates
	// that confirmation discarded — the Bloom aliasing figure (0 when
	// there were no candidates).
	ConfirmedPairs    int     `json:"confirmed_pairs"`
	FalsePositiveRate float64 `json:"false_positive_rate"`
}

// Detect runs both phases: signature screening, then happens-before
// confirmation over an access-traced deterministic replay. Soundness
// note: screening inherits Bloom semantics (false positives, no false
// negatives on concurrent pairs), so confirmation only ever shrinks the
// candidate set — a pair absent from Candidates cannot hold a race
// between Lamport-concurrent chunks.
func Detect(prog *isa.Program, b *core.Bundle) (*Report, error) {
	return DetectWorkers(prog, b, 0)
}

// DetectWorkers is Detect with both phases' parallelizable parts fanned
// out over a bounded worker pool (0 or 1 workers: serial, negative:
// runtime.GOMAXPROCS(0)): screening parallelizes per pair block,
// confirmation per conflict-address slice. The access-traced replay
// itself stays serial — it is a single deterministic execution. The
// report is identical for every worker count.
func DetectWorkers(prog *isa.Program, b *core.Bundle, workers int) (*Report, error) {
	return detectExec(prog, b, workers, dispatch.Local{Workers: workers}, "")
}

// DetectExec is Detect with both phases dispatched through an executor:
// a fleet executor ships screening blocks and confirmation slices as
// jobs referencing the bundle by digest, and the workers redo the
// access-traced replay themselves. The report is bit-identical to a
// local run: the job tilings are fixed protocol constants, every merge
// is index-ordered, and the final race list is totally ordered.
func DetectExec(prog *isa.Program, b *core.Bundle, exec dispatch.Executor, digest string) (*Report, error) {
	return detectExec(prog, b, 0, exec, digest)
}

func detectExec(prog *isa.Program, b *core.Bundle, workers int, exec dispatch.Executor, digest string) (*Report, error) {
	cands, pairs, err := screenExec(b, workers, exec, digest)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Program:         b.ProgramName,
		Threads:         b.Threads,
		ConcurrentPairs: pairs,
		Candidates:      cands,
	}
	for _, l := range b.ChunkLogs {
		rep.TotalChunks += l.Len()
	}
	if len(cands) == 0 {
		return rep, nil
	}
	rep.Races, rep.ConfirmedPairs, err = confirmExec(prog, b, cands, exec, digest)
	if err != nil {
		return nil, err
	}
	rep.FalsePositiveRate = float64(len(cands)-rep.ConfirmedPairs) / float64(len(cands))
	return rep, nil
}

// sample is one plain access inside a candidate chunk, stamped with its
// thread's vector clock at issue time.
type sample struct {
	thread, chunk, pc int
	write             bool
	clock             uint64   // own component of vc at issue
	vc                []uint64 // snapshot of the issuing thread's clock
}

// happensBefore reports a ≺ b: everything thread a had done up to a's
// issue was visible to b's thread when b issued.
func happensBefore(a, b *sample) bool {
	return a.clock <= b.vc[a.thread]
}

// pairKey identifies a candidate chunk pair, threads ordered.
type pairKey struct{ ta, ca, tb, cb int }

// raceKey deduplicates race reports.
type raceKey struct {
	addr   uint64
	ta, pa int
	wa     bool
	tb, pb int
	wb     bool
}

// confirmSlices tiles the sorted conflict-address list into dispatch
// tasks: slice k of n owns addresses k, k+n, k+2n, ... Like
// screenBlockSize it is a protocol constant — the dispatching side must
// know the task count without tracing, so it cannot depend on the
// address count. Whole addresses stay within one slice, which preserves
// the per-address race deduplication, and the final total-order sort
// makes the merge independent of slicing entirely.
const confirmSlices = 8

// confirmExec runs the confirmation phase through an executor. The
// local path traces the recording once (lazily, on the first Run call)
// and confirms address slices in-process; a remote executor ships
// JobConfirmSlice envelopes and each worker re-derives the trace and
// candidate set from the bundle — both deterministic — before
// confirming its slice.
func confirmExec(prog *isa.Program, b *core.Bundle, cands []Candidate, exec dispatch.Executor, digest string) ([]Race, int, error) {
	var (
		once sync.Once
		st   *confirmState
		prep error
	)
	slices := make([]sliceRaces, confirmSlices)
	err := exec.Execute(dispatch.Spec{
		Tasks: confirmSlices,
		Run: func(k int) error {
			once.Do(func() {
				_, events, err := core.TraceAccesses(prog, b)
				if err != nil {
					prep = err
					return
				}
				st = buildConfirmState(b.Threads, cands, events)
			})
			if prep != nil {
				return prep
			}
			slices[k] = st.confirmSlice(k, confirmSlices)
			return nil
		},
		Job: func(k int) (dispatch.Job, error) {
			return dispatch.Job{
				Kind:    dispatch.JobConfirmSlice,
				Digest:  digest,
				Payload: encodeConfirmJob(k, confirmSlices, len(cands)),
			}, nil
		},
		Absorb: func(k int, data []byte) error {
			s, err := decodeSliceRaces(data)
			if err != nil {
				return err
			}
			slices[k] = s
			return nil
		},
	})
	if err != nil {
		return nil, 0, err
	}
	races, confirmed := mergeSlices(slices)
	return races, confirmed, nil
}

// sliceRaces is one confirmation slice's output.
type sliceRaces struct {
	races     []Race
	confirmed []pairKey
}

// mergeSlices merges per-slice outputs: races concatenate and then take
// the total order (so slicing is invisible), confirmed pairs union.
func mergeSlices(slices []sliceRaces) ([]Race, int) {
	confirmed := map[pairKey]bool{}
	var races []Race
	for _, s := range slices {
		races = append(races, s.races...)
		for _, pk := range s.confirmed {
			confirmed[pk] = true
		}
	}
	sortRaces(races)
	return races, len(confirmed)
}

// sortRaces puts races in their canonical total order: the tie-breakers
// past PCB make the sort independent of the pre-sort order, so serial,
// parallel and fleet runs report identically.
func sortRaces(races []Race) {
	sort.Slice(races, func(i, j int) bool {
		a, b := races[i], races[j]
		if a.Addr != b.Addr {
			return a.Addr < b.Addr
		}
		if a.ThreadA != b.ThreadA {
			return a.ThreadA < b.ThreadA
		}
		if a.PCA != b.PCA {
			return a.PCA < b.PCA
		}
		if a.PCB != b.PCB {
			return a.PCB < b.PCB
		}
		if a.ChunkA != b.ChunkA {
			return a.ChunkA < b.ChunkA
		}
		if a.ChunkB != b.ChunkB {
			return a.ChunkB < b.ChunkB
		}
		if a.KindA != b.KindA {
			return a.KindA < b.KindA
		}
		return a.KindB < b.KindB
	})
}

// confirmState is the happens-before analysis shared by every
// confirmation slice: candidate indices, vector-clocked samples of
// candidate-chunk plain accesses grouped by address, and the sorted
// address list the slices tile.
type confirmState struct {
	candPairs map[pairKey]bool
	byAddr    map[uint64][]*sample
	addrs     []uint64
}

// buildConfirmState rebuilds the happens-before order from the traced
// synchronization accesses and samples the plain accesses inside
// candidate chunks.
//
// Vector-clock rules (events arrive in deterministic replay order):
//
//	atomic t@a:    VC[t] ⊔= L[a]; L[a] ⊔= VC[t]; VC[t][t]++
//	futex-wait t@a: VC[t] ⊔= L[a]; VC[t][t]++   (acquire)
//	futex-wake t@a: L[a] ⊔= VC[t]; VC[t][t]++   (release)
//
// where L[a] is the last-release clock of sync address a. Plain accesses
// snapshot their thread's clock. Addresses that carry synchronization
// are excluded from race reporting — the program is ordering itself
// through them on purpose.
func buildConfirmState(threads int, cands []Candidate, events []replay.AccessEvent) *confirmState {
	candChunks := map[[2]int]bool{}
	candPairs := map[pairKey]bool{}
	for _, c := range cands {
		p := c.Pair
		candChunks[[2]int{p.ThreadA, p.ChunkA}] = true
		candChunks[[2]int{p.ThreadB, p.ChunkB}] = true
		candPairs[pairKey{p.ThreadA, p.ChunkA, p.ThreadB, p.ChunkB}] = true
	}

	// Pass 1: the synchronization address set.
	syncAddr := map[uint64]bool{}
	for _, ev := range events {
		if ev.Kind.IsSync() {
			syncAddr[ev.Addr] = true
		}
	}

	// Pass 2: vector clocks + samples of candidate-chunk plain accesses.
	vc := make([][]uint64, threads)
	for t := range vc {
		vc[t] = make([]uint64, threads)
		vc[t][t] = 1 // threads start mutually unordered
	}
	join := func(dst, src []uint64) {
		for i, v := range src {
			if v > dst[i] {
				dst[i] = v
			}
		}
	}
	lock := map[uint64][]uint64{}
	byAddr := map[uint64][]*sample{}
	for _, ev := range events {
		t := ev.Thread
		switch ev.Kind {
		case replay.AccessAtomic:
			la := lock[ev.Addr]
			if la == nil {
				la = make([]uint64, threads)
				lock[ev.Addr] = la
			}
			join(vc[t], la)
			join(la, vc[t])
			vc[t][t]++
		case replay.AccessFutexWait:
			if la := lock[ev.Addr]; la != nil {
				join(vc[t], la)
			}
			vc[t][t]++
		case replay.AccessFutexWake:
			la := lock[ev.Addr]
			if la == nil {
				la = make([]uint64, threads)
				lock[ev.Addr] = la
			}
			join(la, vc[t])
			vc[t][t]++
		default:
			if syncAddr[ev.Addr] || !candChunks[[2]int{t, ev.Chunk}] {
				continue
			}
			byAddr[ev.Addr] = append(byAddr[ev.Addr], &sample{
				thread: t, chunk: ev.Chunk, pc: ev.PC,
				write: ev.Kind == replay.AccessWrite,
				clock: vc[t][t], vc: append([]uint64(nil), vc[t]...),
			})
		}
	}

	// Sort the conflict addresses so every executor tiles the same list:
	// slice k of n owns addresses k, k+n, ... of this order.
	addrs := make([]uint64, 0, len(byAddr))
	for addr := range byAddr {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	return &confirmState{candPairs: candPairs, byAddr: byAddr, addrs: addrs}
}

// confirmSlice pairs up unordered conflicting samples within candidate
// pairs, for the addresses slice k of n owns. Every race pairs two
// samples of one address and raceKey includes the address, so addresses
// are independent units of work; keeping whole addresses inside one
// slice preserves the per-address dedup maps.
func (st *confirmState) confirmSlice(k, n int) sliceRaces {
	var out sliceRaces
	for ai := k; ai < len(st.addrs); ai += n {
		addr := st.addrs[ai]
		samples := st.byAddr[addr]
		seen := map[raceKey]bool{}
		addrConfirmed := map[pairKey]bool{}
		for i, a := range samples {
			for _, bs := range samples[i+1:] {
				if a.thread == bs.thread || (!a.write && !bs.write) {
					continue
				}
				lo, hi := a, bs
				if lo.thread > hi.thread {
					lo, hi = hi, lo
				}
				pk := pairKey{lo.thread, lo.chunk, hi.thread, hi.chunk}
				if !st.candPairs[pk] {
					continue
				}
				rk := raceKey{addr, lo.thread, lo.pc, lo.write, hi.thread, hi.pc, hi.write}
				if seen[rk] {
					continue
				}
				if happensBefore(a, bs) || happensBefore(bs, a) {
					continue
				}
				seen[rk] = true
				if !addrConfirmed[pk] {
					addrConfirmed[pk] = true
					out.confirmed = append(out.confirmed, pk)
				}
				out.races = append(out.races, Race{
					Addr:    addr,
					ThreadA: lo.thread, PCA: lo.pc, ChunkA: lo.chunk, KindA: kindName(lo.write),
					ThreadB: hi.thread, PCB: hi.pc, ChunkB: hi.chunk, KindB: kindName(hi.write),
				})
			}
		}
	}
	return out
}

func kindName(write bool) string {
	if write {
		return "write"
	}
	return "read"
}
