package races

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/signature"
	"repro/internal/workload"
)

func record(t *testing.T, prog *isa.Program, cores, threads int, seed uint64) *core.Bundle {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.Mode = machine.ModeFull
	cfg.Cores = cores
	cfg.Threads = threads
	cfg.Seed = seed
	cfg.KernelSeed = seed + 1000
	cfg.CaptureSignatures = true
	if threads > cores {
		cfg.TimeSliceInstrs = 5000
	}
	b, err := core.Record(prog, cfg)
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	return b
}

func TestRacyWorkloadConfirmsRaces(t *testing.T) {
	for _, cores := range []int{1, 2, 4} {
		prog := workload.Racy(150, 4)
		b := record(t, prog, cores, 4, uint64(cores)*7)
		rep, err := Detect(prog, b)
		if err != nil {
			t.Fatalf("cores=%d: %v", cores, err)
		}
		if len(rep.Candidates) == 0 {
			t.Fatalf("cores=%d: screening produced no candidate pairs", cores)
		}
		if len(rep.Races) == 0 {
			t.Fatalf("cores=%d: no confirmed races in a racy workload (%d candidates)",
				cores, len(rep.Candidates))
		}
		// Reports must be instruction-level: the racing accesses hit the
		// shared word from distinct threads with at least one write.
		shared := prog.Symbols["shared"]
		onShared := false
		for _, r := range rep.Races {
			if r.ThreadA == r.ThreadB {
				t.Errorf("cores=%d: race within one thread: %+v", cores, r)
			}
			if r.KindA != "write" && r.KindB != "write" {
				t.Errorf("cores=%d: read/read pair reported as race: %+v", cores, r)
			}
			if r.PCA < 0 || r.PCA >= len(prog.Code) || r.PCB < 0 || r.PCB >= len(prog.Code) {
				t.Errorf("cores=%d: race PCs out of program range: %+v", cores, r)
			}
			if r.Addr == shared {
				onShared = true
			}
		}
		if !onShared {
			t.Errorf("cores=%d: no confirmed race on the shared counter word", cores)
		}
		if rep.ConfirmedPairs == 0 || rep.ConfirmedPairs > len(rep.Candidates) {
			t.Errorf("cores=%d: confirmed pairs %d out of range for %d candidates",
				cores, rep.ConfirmedPairs, len(rep.Candidates))
		}
		if rep.FalsePositiveRate < 0 || rep.FalsePositiveRate > 1 {
			t.Errorf("cores=%d: FP rate %v out of [0,1]", cores, rep.FalsePositiveRate)
		}
	}
}

func TestRaceFreeWorkloadConfirmsNothing(t *testing.T) {
	for _, cores := range []int{1, 2, 4} {
		prog := workload.RaceFree(80, 4)
		b := record(t, prog, cores, 4, uint64(cores)*13)
		rep, err := Detect(prog, b)
		if err != nil {
			t.Fatalf("cores=%d: %v", cores, err)
		}
		if len(rep.Races) != 0 {
			t.Fatalf("cores=%d: %d races confirmed in a race-free workload: %+v",
				cores, len(rep.Races), rep.Races)
		}
		if rep.ConfirmedPairs != 0 {
			t.Errorf("cores=%d: %d confirmed pairs with no races", cores, rep.ConfirmedPairs)
		}
		// Lock-protected conflicts still screen as candidates (the
		// signatures really do intersect); confirmation is what removes
		// them, and the FP rate records that.
		if len(rep.Candidates) > 0 && rep.FalsePositiveRate != 1 {
			t.Errorf("cores=%d: FP rate %v, want 1 with candidates and no races",
				cores, rep.FalsePositiveRate)
		}
	}
}

func TestReportMarshalsCleanly(t *testing.T) {
	// Degenerate and regular reports must survive encoding/json (which
	// rejects NaN/Inf outright).
	prog := workload.RaceFree(20, 2)
	b := record(t, prog, 2, 2, 3)
	rep, err := Detect(prog, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*Report{rep, {}} {
		if _, err := json.Marshal(r); err != nil {
			t.Errorf("report does not marshal: %v", err)
		}
	}
}

func TestScreenErrorsNotPanics(t *testing.T) {
	prog := workload.Racy(30, 2)

	// No signature logs.
	plain := record(t, prog, 2, 2, 5)
	plain.SigLogs = nil
	if _, err := Screen(plain); !errors.Is(err, ErrNoSignatures) {
		t.Errorf("missing sig logs: got %v, want ErrNoSignatures", err)
	}

	// Corrupt signature bytes.
	b := record(t, prog, 2, 2, 5)
	if len(b.SigLogs[0]) == 0 {
		t.Fatal("no sig pairs on thread 0")
	}
	b.SigLogs[0][0].Read = []byte("garbage")
	if _, err := Screen(b); err == nil {
		t.Error("corrupt signature accepted")
	}

	// Geometry mismatch must error, not panic (Intersects panics on its
	// own).
	b2 := record(t, prog, 2, 2, 5)
	odd := signature.New(signature.Config{Bits: 64, Hashes: 1})
	b2.SigLogs[0][0].Read = odd.Marshal()
	if _, err := Screen(b2); err == nil {
		t.Error("geometry mismatch accepted")
	}

	// Sig/chunk count mismatch.
	b3 := record(t, prog, 2, 2, 5)
	b3.SigLogs[0] = b3.SigLogs[0][:len(b3.SigLogs[0])-1]
	if _, err := Screen(b3); err == nil {
		t.Error("sig/chunk count mismatch accepted")
	}
}

func TestDetectParallelMatchesSerial(t *testing.T) {
	// Both phases fan out over the pool (pair screening, per-address
	// confirmation); the report must be deep-equal for every worker count,
	// including a GOMAXPROCS-sized pool.
	for _, mk := range []struct {
		name string
		prog *isa.Program
	}{
		{"racy", workload.Racy(150, 4)},
		{"racefree", workload.RaceFree(80, 4)},
	} {
		prog := mk.prog
		b := record(t, prog, 4, 4, 21)
		serial, err := DetectWorkers(prog, b, 1)
		if err != nil {
			t.Fatalf("%s serial: %v", mk.name, err)
		}
		for _, w := range []int{4, -1} {
			par, err := DetectWorkers(prog, b, w)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", mk.name, w, err)
			}
			if !reflect.DeepEqual(serial, par) {
				t.Errorf("%s workers=%d: report differs from serial\nserial: %+v\npar:    %+v",
					mk.name, w, serial, par)
			}
		}
		cands, err := ScreenWorkers(b, 4)
		if err != nil {
			t.Fatalf("%s screen workers=4: %v", mk.name, err)
		}
		if !reflect.DeepEqual(cands, serial.Candidates) {
			t.Errorf("%s: ScreenWorkers(4) candidates differ from serial Detect's", mk.name)
		}
	}
}
