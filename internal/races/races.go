// Package races implements an offline two-phase data-race detector over
// a QuickRec recording, the analysis the paper's authors run on the
// prototype's logs: the chunk logs already encode which code regions ran
// concurrently, and the captured Bloom signatures encode (conservatively)
// which addresses each region touched, so racy chunk pairs can be
// screened without re-executing anything. A deterministic replay with
// exact access tracing then confirms or discards each candidate.
//
// Phase 1 (Screen): walk the per-thread chunk logs, enumerate
// Lamport-concurrent chunk pairs on different threads, and test their
// serialized read/write signatures for intersection. Bloom filters admit
// false positives but never false negatives, so the candidate set is a
// superset of the truly conflicting concurrent pairs.
//
// Phase 2 (Detect): replay the recording with access tracing, rebuild
// the happens-before order from the synchronization accesses (atomics
// and futexes), and report the exact unordered conflicting access pairs
// inside candidate chunk pairs — instruction-level race reports with
// thread, PC and address. Confirmation only ever shrinks the candidate
// set; the surviving fraction measures the signatures' false-positive
// rate.
package races

import (
	"errors"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/signature"
)

// ErrNoSignatures reports a bundle recorded without signature capture.
var ErrNoSignatures = errors.New("races: bundle carries no signature logs (record with CaptureSignatures)")

// Candidate is one screened chunk pair: Lamport-concurrent chunks on
// different threads whose address signatures intersect in at least one
// conflicting direction.
type Candidate struct {
	Pair analysis.ChunkPair `json:"pair"`
	// ReadWrite, WriteRead and WriteWrite say which cross-signature
	// tests hit (A's reads vs B's writes, and so on).
	ReadWrite  bool `json:"read_write"`
	WriteRead  bool `json:"write_read"`
	WriteWrite bool `json:"write_write"`
}

// Screen runs the detector's first phase over a recorded bundle: every
// Lamport-concurrent cross-thread chunk pair whose signatures intersect
// becomes a candidate. No re-execution happens; the cost is linear in
// the log volume plus the number of concurrent pairs. Returns an error
// (never a panic) when the bundle lacks signature logs or carries
// corrupt or geometry-mismatched signatures.
func Screen(b *core.Bundle) ([]Candidate, error) {
	return ScreenWorkers(b, 0)
}

// ScreenWorkers is Screen with the concurrent-pair enumeration and the
// per-block signature intersections fanned out over a bounded worker
// pool (0 or 1 workers: serial, negative: runtime.GOMAXPROCS(0)).
// Candidates are collected into per-block slots and concatenated in
// block (= pair) order, so the result is identical for every worker
// count.
func ScreenWorkers(b *core.Bundle, workers int) ([]Candidate, error) {
	cands, _, err := screen(b, workers)
	return cands, err
}

// ScreenExec is Screen with the per-block intersections dispatched
// through an executor — a fleet executor ships JobScreenBlock envelopes
// referencing the bundle by digest. The candidate list is identical to
// every local run: blocks are a fixed-size tiling of the pair list, and
// the pair list is a pure function of the chunk logs.
func ScreenExec(b *core.Bundle, exec dispatch.Executor, digest string) ([]Candidate, error) {
	cands, _, err := screenExec(b, 0, exec, digest)
	return cands, err
}

// screen implements Screen/ScreenWorkers and additionally returns the
// concurrent-pair count so Detect need not re-enumerate the pairs.
func screen(b *core.Bundle, workers int) ([]Candidate, int, error) {
	return screenExec(b, workers, dispatch.Local{Workers: workers}, "")
}

// screenBlockSize tiles the concurrent-pair list into dispatch tasks.
// The block size is a protocol constant, not a tuning knob: the task
// list must be the same for every executor so local and fleet runs
// screen identical blocks.
const screenBlockSize = 2048

// screenExec runs the screening phase through an executor. workers
// bounds the client-side pair enumeration (remote executors still
// enumerate locally — the pair list sizes the job list).
func screenExec(b *core.Bundle, workers int, exec dispatch.Executor, digest string) ([]Candidate, int, error) {
	decoded, err := decodeSigLogs(b)
	if err != nil {
		return nil, 0, err
	}
	pairs := analysis.ConcurrentPairsWorkers(b.ChunkLogs, workers)
	nblocks := (len(pairs) + screenBlockSize - 1) / screenBlockSize
	perBlock := make([][]Candidate, nblocks)
	err = exec.Execute(dispatch.Spec{
		Tasks: nblocks,
		Run: func(bi int) error {
			perBlock[bi] = screenBlock(decoded, pairs, bi)
			return nil
		},
		Job: func(bi int) (dispatch.Job, error) {
			return dispatch.Job{
				Kind:    dispatch.JobScreenBlock,
				Digest:  digest,
				Payload: encodeScreenJob(bi, len(pairs)),
			}, nil
		},
		Absorb: func(bi int, data []byte) error {
			cands, err := decodeCandidates(data)
			if err != nil {
				return err
			}
			perBlock[bi] = cands
			return nil
		},
	})
	if err != nil {
		return nil, 0, err
	}
	var out []Candidate
	for _, cands := range perBlock {
		out = append(out, cands...)
	}
	return out, len(pairs), nil
}

// screenBlock intersects the signatures of one block of pairs, in pair
// order. Shared by the local Run path and the worker side of
// JobScreenBlock, which is what makes the two bit-identical.
func screenBlock(decoded [][]chunkSigs, pairs []analysis.ChunkPair, bi int) []Candidate {
	lo := bi * screenBlockSize
	hi := lo + screenBlockSize
	if hi > len(pairs) {
		hi = len(pairs)
	}
	var out []Candidate
	for i := lo; i < hi; i++ {
		pair := pairs[i]
		sa := decoded[pair.ThreadA][pair.ChunkA]
		sb := decoded[pair.ThreadB][pair.ChunkB]
		c := Candidate{
			Pair:       pair,
			ReadWrite:  sa.read.Intersects(sb.write),
			WriteRead:  sa.write.Intersects(sb.read),
			WriteWrite: sa.write.Intersects(sb.write),
		}
		if c.ReadWrite || c.WriteRead || c.WriteWrite {
			out = append(out, c)
		}
	}
	return out
}

// chunkSigs is one chunk's decoded signature pair.
type chunkSigs struct {
	read, write *signature.Signature
}

// decodeSigLogs unmarshals every signature once, validating counts and
// that all filters share one geometry — Intersects panics on mismatch,
// and corrupt input must surface as an error instead.
func decodeSigLogs(b *core.Bundle) ([][]chunkSigs, error) {
	if b.SigLogs == nil {
		return nil, ErrNoSignatures
	}
	if len(b.SigLogs) != len(b.ChunkLogs) {
		return nil, fmt.Errorf("races: %d signature logs for %d chunk logs", len(b.SigLogs), len(b.ChunkLogs))
	}
	var geom signature.Config
	haveGeom := false
	decoded := make([][]chunkSigs, len(b.SigLogs))
	for t, pairs := range b.SigLogs {
		if len(pairs) != b.ChunkLogs[t].Len() {
			return nil, fmt.Errorf("races: thread %d has %d signature pairs for %d chunks",
				t, len(pairs), b.ChunkLogs[t].Len())
		}
		for i, p := range pairs {
			r, err := signature.Unmarshal(p.Read)
			if err != nil {
				return nil, fmt.Errorf("races: thread %d chunk %d read signature: %w", t, i, err)
			}
			w, err := signature.Unmarshal(p.Write)
			if err != nil {
				return nil, fmt.Errorf("races: thread %d chunk %d write signature: %w", t, i, err)
			}
			for _, s := range []*signature.Signature{r, w} {
				cfg := s.Config()
				if !haveGeom {
					geom, haveGeom = cfg, true
				} else if cfg.Bits != geom.Bits || cfg.Hashes != geom.Hashes {
					return nil, fmt.Errorf("races: thread %d chunk %d signature geometry %d/%d differs from %d/%d",
						t, i, cfg.Bits, cfg.Hashes, geom.Bits, geom.Hashes)
				}
			}
			decoded[t] = append(decoded[t], chunkSigs{read: r, write: w})
		}
	}
	return decoded, nil
}
