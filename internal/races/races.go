// Package races implements an offline two-phase data-race detector over
// a QuickRec recording, the analysis the paper's authors run on the
// prototype's logs: the chunk logs already encode which code regions ran
// concurrently, and the captured Bloom signatures encode (conservatively)
// which addresses each region touched, so racy chunk pairs can be
// screened without re-executing anything. A deterministic replay with
// exact access tracing then confirms or discards each candidate.
//
// Phase 1 (Screen): walk the per-thread chunk logs, enumerate
// Lamport-concurrent chunk pairs on different threads, and test their
// serialized read/write signatures for intersection. Bloom filters admit
// false positives but never false negatives, so the candidate set is a
// superset of the truly conflicting concurrent pairs.
//
// Phase 2 (Detect): replay the recording with access tracing, rebuild
// the happens-before order from the synchronization accesses (atomics
// and futexes), and report the exact unordered conflicting access pairs
// inside candidate chunk pairs — instruction-level race reports with
// thread, PC and address. Confirmation only ever shrinks the candidate
// set; the surviving fraction measures the signatures' false-positive
// rate.
package races

import (
	"errors"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/pool"
	"repro/internal/signature"
)

// ErrNoSignatures reports a bundle recorded without signature capture.
var ErrNoSignatures = errors.New("races: bundle carries no signature logs (record with CaptureSignatures)")

// Candidate is one screened chunk pair: Lamport-concurrent chunks on
// different threads whose address signatures intersect in at least one
// conflicting direction.
type Candidate struct {
	Pair analysis.ChunkPair `json:"pair"`
	// ReadWrite, WriteRead and WriteWrite say which cross-signature
	// tests hit (A's reads vs B's writes, and so on).
	ReadWrite  bool `json:"read_write"`
	WriteRead  bool `json:"write_read"`
	WriteWrite bool `json:"write_write"`
}

// Screen runs the detector's first phase over a recorded bundle: every
// Lamport-concurrent cross-thread chunk pair whose signatures intersect
// becomes a candidate. No re-execution happens; the cost is linear in
// the log volume plus the number of concurrent pairs. Returns an error
// (never a panic) when the bundle lacks signature logs or carries
// corrupt or geometry-mismatched signatures.
func Screen(b *core.Bundle) ([]Candidate, error) {
	return ScreenWorkers(b, 0)
}

// ScreenWorkers is Screen with the concurrent-pair enumeration and the
// per-pair signature intersections fanned out over a bounded worker pool
// (0 or 1 workers: serial, negative: runtime.GOMAXPROCS(0)). Candidates
// are collected into per-pair slots and compacted in pair order, so the
// result is identical for every worker count.
func ScreenWorkers(b *core.Bundle, workers int) ([]Candidate, error) {
	cands, _, err := screen(b, workers)
	return cands, err
}

// screen implements Screen/ScreenWorkers and additionally returns the
// concurrent-pair count so Detect need not re-enumerate the pairs.
func screen(b *core.Bundle, workers int) ([]Candidate, int, error) {
	decoded, err := decodeSigLogs(b)
	if err != nil {
		return nil, 0, err
	}
	pairs := analysis.ConcurrentPairsWorkers(b.ChunkLogs, workers)
	slots := make([]Candidate, len(pairs))
	hit := make([]bool, len(pairs))
	pool.ForEach(pool.Resolve(workers), len(pairs), func(i int) {
		pair := pairs[i]
		sa := decoded[pair.ThreadA][pair.ChunkA]
		sb := decoded[pair.ThreadB][pair.ChunkB]
		c := Candidate{
			Pair:       pair,
			ReadWrite:  sa.read.Intersects(sb.write),
			WriteRead:  sa.write.Intersects(sb.read),
			WriteWrite: sa.write.Intersects(sb.write),
		}
		if c.ReadWrite || c.WriteRead || c.WriteWrite {
			slots[i], hit[i] = c, true
		}
	})
	var out []Candidate
	for i := range slots {
		if hit[i] {
			out = append(out, slots[i])
		}
	}
	return out, len(pairs), nil
}

// chunkSigs is one chunk's decoded signature pair.
type chunkSigs struct {
	read, write *signature.Signature
}

// decodeSigLogs unmarshals every signature once, validating counts and
// that all filters share one geometry — Intersects panics on mismatch,
// and corrupt input must surface as an error instead.
func decodeSigLogs(b *core.Bundle) ([][]chunkSigs, error) {
	if b.SigLogs == nil {
		return nil, ErrNoSignatures
	}
	if len(b.SigLogs) != len(b.ChunkLogs) {
		return nil, fmt.Errorf("races: %d signature logs for %d chunk logs", len(b.SigLogs), len(b.ChunkLogs))
	}
	var geom signature.Config
	haveGeom := false
	decoded := make([][]chunkSigs, len(b.SigLogs))
	for t, pairs := range b.SigLogs {
		if len(pairs) != b.ChunkLogs[t].Len() {
			return nil, fmt.Errorf("races: thread %d has %d signature pairs for %d chunks",
				t, len(pairs), b.ChunkLogs[t].Len())
		}
		for i, p := range pairs {
			r, err := signature.Unmarshal(p.Read)
			if err != nil {
				return nil, fmt.Errorf("races: thread %d chunk %d read signature: %w", t, i, err)
			}
			w, err := signature.Unmarshal(p.Write)
			if err != nil {
				return nil, fmt.Errorf("races: thread %d chunk %d write signature: %w", t, i, err)
			}
			for _, s := range []*signature.Signature{r, w} {
				cfg := s.Config()
				if !haveGeom {
					geom, haveGeom = cfg, true
				} else if cfg.Bits != geom.Bits || cfg.Hashes != geom.Hashes {
					return nil, fmt.Errorf("races: thread %d chunk %d signature geometry %d/%d differs from %d/%d",
						t, i, cfg.Bits, cfg.Hashes, geom.Bits, geom.Hashes)
				}
			}
			decoded[t] = append(decoded[t], chunkSigs{read: r, write: w})
		}
	}
	return decoded, nil
}
