package wire

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzWireCursor drives the raw cursor primitives over arbitrary bytes
// in a data-directed order (the first byte scripts which primitives run)
// and pins the invariants every codec depends on: no panic, the cursor
// position stays in bounds, every failure wraps exactly one of the two
// shared sentinels, and any value a Cursor accepts survives an
// Appender→Cursor round trip. Byte-identity of re-encoding is asserted
// only for canonical input (what Appender itself produced), since
// binary.Uvarint tolerates non-minimal varints.
func FuzzWireCursor(f *testing.F) {
	// Canonical sequences for each script.
	var a Appender
	a.Uvarint(300)
	a.Byte(7)
	a.Blob([]byte("data"))
	f.Add(append([]byte{0}, a.Buf...))
	var b Appender
	b.U32(0xdeadbeef)
	b.U64(1 << 40)
	b.Uvarint(0)
	f.Add(append([]byte{1}, b.Buf...))
	var c Appender
	c.String("quickrec")
	c.Bool(true)
	f.Add(append([]byte{2}, c.Buf...))
	// Hostile shapes: unterminated varint, overflow varint, huge length
	// prefix, non-canonical varint, empty input.
	f.Add([]byte{0, 0x80, 0x80})
	f.Add(append([]byte{0}, bytes.Repeat([]byte{0x80}, 11)...))
	f.Add([]byte{0, 0x01, 0x07, 0xff, 0xff, 0xff, 0xff, 0x0f})
	f.Add([]byte{0, 0x80, 0x00, 0x07, 0x00})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		script, body := data[0]%3, data[1:]

		// run decodes body's primitives per script, appending each onto
		// re; it returns the decoded values (nil when decoding failed).
		run := func(body []byte, re *Appender) []any {
			cur := CursorOf(body)
			var vals []any
			fail := func(err error) bool {
				if err == nil {
					return false
				}
				if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
					t.Fatalf("error %v wraps neither shared sentinel", err)
				}
				return true
			}
			step := func(dec func() (any, error), enc func(any)) bool {
				v, err := dec()
				if fail(err) {
					return false
				}
				vals = append(vals, v)
				if re != nil {
					enc(v)
				}
				return true
			}
			uvar := func() bool {
				return step(func() (any, error) { v, err := cur.Uvarint(); return v, err },
					func(v any) { re.Uvarint(v.(uint64)) })
			}
			byt := func() bool {
				return step(func() (any, error) { v, err := cur.Byte(); return v, err },
					func(v any) { re.Byte(v.(byte)) })
			}
			blob := func() bool {
				return step(func() (any, error) { v, err := cur.Blob(); return v, err },
					func(v any) { re.Blob(v.([]byte)) })
			}
			ok := false
			switch script {
			case 0:
				ok = uvar() && byt() && blob()
			case 1:
				ok = step(func() (any, error) { v, err := cur.U32(); return v, err },
					func(v any) { re.U32(v.(uint32)) }) &&
					step(func() (any, error) { v, err := cur.U64(); return v, err },
						func(v any) { re.U64(v.(uint64)) }) &&
					uvar()
			case 2:
				ok = blob() && byt()
			}
			if cur.Pos() < 0 || cur.Pos() > len(body) {
				t.Fatalf("cursor position %d outside [0,%d]", cur.Pos(), len(body))
			}
			if !ok {
				return nil
			}
			return vals
		}

		var re Appender
		vals := run(body, &re)
		if vals == nil {
			return
		}
		// Round trip: re-decoding the canonical re-encoding yields the
		// same values, and a second re-encoding is byte-identical (the
		// metamorphic identity the codec layer relies on).
		var re2 Appender
		vals2 := run(re.Buf, &re2)
		if vals2 == nil {
			t.Fatalf("canonical re-encoding %x rejected", re.Buf)
		}
		if len(vals2) != len(vals) {
			t.Fatalf("round trip changed arity: %d vs %d", len(vals2), len(vals))
		}
		for i := range vals {
			if b1, isB := vals[i].([]byte); isB {
				if !bytes.Equal(b1, vals2[i].([]byte)) {
					t.Fatalf("value %d changed: %x vs %x", i, b1, vals2[i])
				}
			} else if vals[i] != vals2[i] {
				t.Fatalf("value %d changed: %v vs %v", i, vals[i], vals2[i])
			}
		}
		if !bytes.Equal(re.Buf, re2.Buf) {
			t.Fatalf("re-encode not stable:\n got %x\nwant %x", re2.Buf, re.Buf)
		}
	})
}
