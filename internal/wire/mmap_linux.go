//go:build linux

package wire

import (
	"os"
	"syscall"
)

// MapFile maps path read-only and returns the mapping plus a closer.
// Decoding a bundle straight out of the mapping through Cursor views is
// what makes replay's read path allocation-free: the kernel pages log
// bytes in on demand and nothing is copied until a codec explicitly
// asks for ownership. The returned bytes are immutable — writing to
// them faults — and must not be used after the closer runs.
func MapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	if st.Size() == 0 {
		return nil, func() error { return nil }, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Some filesystems refuse mmap; fall back to a plain read so
		// callers never have to care which path produced the bytes.
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil, nil, err
		}
		return data, func() error { return nil }, nil
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
