package wire

import "fmt"

// truncated wraps the cursor's truncation sentinel with what ran out
// and where.
func (c *Cursor) truncated(what string) error {
	return fmt.Errorf("%w: %s at offset %d", c.trunc, what, c.pos)
}

// truncatedf is truncated with a formatted description.
func (c *Cursor) truncatedf(format string, args ...any) error {
	return fmt.Errorf("%w: %s at offset %d", c.trunc, fmt.Sprintf(format, args...), c.pos)
}

// corruptf wraps the cursor's corruption sentinel with a formatted
// description and the offset.
func (c *Cursor) corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s at offset %d", c.corrupt, fmt.Sprintf(format, args...), c.pos)
}

// Truncatedf builds a truncation error at the cursor's position for
// validation a codec performs outside the primitive set (e.g. a header
// check on raw bytes before cursor decoding starts).
func (c *Cursor) Truncatedf(format string, args ...any) error {
	return c.truncatedf(format, args...)
}

// Corruptf builds a corruption error at the cursor's position for
// codec-level validation (bad magic, unsupported version, implausible
// counts). Using it keeps the offset context uniform with primitive
// failures.
func (c *Cursor) Corruptf(format string, args ...any) error {
	return c.corruptf(format, args...)
}
