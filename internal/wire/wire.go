// Package wire is the shared serialization layer every QuickRec log
// codec is built on: chunk logs, Capo input logs, Bloom signatures,
// segment framing and the bundle container all encode through the same
// append-style primitives and decode through the same bounds-checked
// cursor.
//
// The layer exists for three reasons. First, byte-format stability: the
// primitives (unsigned LEB128 varints via encoding/binary, little-endian
// fixed words, uvarint-length-prefixed blobs) are the single definition
// of how bytes hit the log, so "encoding is byte-identical across
// refactors" is a property of one package instead of five. Second,
// uniform corruption triage: every decode failure wraps exactly one of
// the two shared sentinels — ErrTruncated (input ends mid-field) or
// ErrCorrupt (structural violation) — with the byte offset it happened
// at, so the conformance harness classifies faults with errors.Is and
// never by string. Third, the hot path: the Appender writes into a
// caller-supplied (or pooled, see GetAppender) buffer and the Cursor's
// View/Rest primitives are zero-copy subslices, which is what keeps the
// record-stream flush and replay decode paths from allocating per item.
//
// Decoders that retain a field beyond the decode call must use Blob
// (copying); View is for transient parsing only.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrTruncated reports input that ends in the middle of a field or
// entry. It is the shared truncation sentinel for every log decoder in
// the system (chunk logs, input logs, signatures, segment streams,
// bundles); triage tooling classifies truncation faults uniformly with
// errors.Is. internal/chunk re-exports it as chunk.ErrTruncated.
var ErrTruncated = errors.New("truncated log")

// ErrCorrupt reports input that fails structural validation. Like
// ErrTruncated it is shared across all log decoders and re-exported as
// chunk.ErrCorrupt.
var ErrCorrupt = errors.New("corrupt log")

// Appender builds a serialized log by appending primitives onto Buf.
// The zero value is ready to use (appends allocate as needed); wrap an
// existing slice to reuse its capacity, or obtain a pooled one with
// GetAppender. Buf is exported so finished bytes can be taken without a
// copy — an Appender is a build site, not an abstraction boundary.
type Appender struct {
	Buf []byte
}

// AppenderOf wraps dst for appending; encoded bytes extend dst.
func AppenderOf(dst []byte) Appender { return Appender{Buf: dst} }

// Uvarint appends v as an unsigned LEB128 varint.
func (a *Appender) Uvarint(v uint64) { a.Buf = binary.AppendUvarint(a.Buf, v) }

// Int appends a non-negative int as a uvarint. Every count and position
// field in the formats is logically non-negative; encoding them through
// one choke point keeps the sign convention uniform. A negative value is
// a bug in the caller — it would sign-extend into a ~10-byte uvarint
// that decodes as an enormous count — so it panics rather than writing
// corruption into a log.
func (a *Appender) Int(v int) {
	if v < 0 {
		panic(fmt.Sprintf("wire: Int(%d): negative value in a non-negative field", v))
	}
	a.Buf = binary.AppendUvarint(a.Buf, uint64(v))
}

// Varint appends v as a zigzag-encoded signed LEB128 varint — the
// encoding for delta columns whose steps can go either direction
// (Lamport-timestamp deltas across threads).
func (a *Appender) Varint(v int64) { a.Buf = binary.AppendVarint(a.Buf, v) }

// Byte appends one raw byte (kind tags, flag bytes, version bytes).
func (a *Appender) Byte(b byte) { a.Buf = append(a.Buf, b) }

// Bool appends one byte: 1 for true, 0 for false.
func (a *Appender) Bool(b bool) {
	if b {
		a.Buf = append(a.Buf, 1)
	} else {
		a.Buf = append(a.Buf, 0)
	}
}

// Raw appends p verbatim, no length prefix.
func (a *Appender) Raw(p []byte) { a.Buf = append(a.Buf, p...) }

// Blob appends p with a uvarint length prefix.
func (a *Appender) Blob(p []byte) {
	a.Buf = binary.AppendUvarint(a.Buf, uint64(len(p)))
	a.Buf = append(a.Buf, p...)
}

// String appends s with a uvarint length prefix.
func (a *Appender) String(s string) {
	a.Buf = binary.AppendUvarint(a.Buf, uint64(len(s)))
	a.Buf = append(a.Buf, s...)
}

// U32 appends v as a little-endian 32-bit word.
func (a *Appender) U32(v uint32) { a.Buf = binary.LittleEndian.AppendUint32(a.Buf, v) }

// U64 appends v as a little-endian 64-bit word.
func (a *Appender) U64(v uint64) { a.Buf = binary.LittleEndian.AppendUint64(a.Buf, v) }

// Len returns the bytes built so far.
func (a *Appender) Len() int { return len(a.Buf) }

// Reset empties the appender, keeping the buffer's capacity.
func (a *Appender) Reset() { a.Buf = a.Buf[:0] }

// Grow ensures capacity for at least n more bytes, so a caller that
// knows a payload's rough size pays one allocation instead of a
// doubling cascade.
func (a *Appender) Grow(n int) {
	if need := len(a.Buf) + n; need > cap(a.Buf) {
		buf := make([]byte, len(a.Buf), need)
		copy(buf, a.Buf)
		a.Buf = buf
	}
}
