package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
)

// TestAppendCursorRoundTrip drives every primitive pair and checks the
// bytes match what encoding/binary produces directly — the wire layer
// must be a byte-identical refactor of the hand-rolled codecs.
func TestAppendCursorRoundTrip(t *testing.T) {
	var a Appender
	a.Uvarint(0)
	a.Uvarint(127)
	a.Uvarint(128)
	a.Uvarint(1<<63 + 42)
	a.Byte(7)
	a.Bool(true)
	a.Bool(false)
	a.Raw([]byte{1, 2, 3})
	a.Blob([]byte("payload"))
	a.String("name")
	a.U32(0xdeadbeef)
	a.U64(0x0123456789abcdef)
	a.Int(9000)

	var want []byte
	for _, v := range []uint64{0, 127, 128, 1<<63 + 42} {
		want = binary.AppendUvarint(want, v)
	}
	want = append(want, 7, 1, 0, 1, 2, 3)
	want = binary.AppendUvarint(want, 7)
	want = append(want, "payload"...)
	want = binary.AppendUvarint(want, 4)
	want = append(want, "name"...)
	want = binary.LittleEndian.AppendUint32(want, 0xdeadbeef)
	want = binary.LittleEndian.AppendUint64(want, 0x0123456789abcdef)
	want = binary.AppendUvarint(want, 9000)
	if !bytes.Equal(a.Buf, want) {
		t.Fatalf("encoding diverges from encoding/binary:\n got %x\nwant %x", a.Buf, want)
	}

	c := CursorOf(a.Buf)
	for _, v := range []uint64{0, 127, 128, 1<<63 + 42} {
		got, err := c.Uvarint()
		if err != nil || got != v {
			t.Fatalf("Uvarint = %d, %v; want %d", got, err, v)
		}
	}
	if b, err := c.Byte(); err != nil || b != 7 {
		t.Fatalf("Byte = %d, %v", b, err)
	}
	for _, want := range []byte{1, 0} {
		if b, err := c.Byte(); err != nil || b != want {
			t.Fatalf("Bool byte = %d, %v; want %d", b, err, want)
		}
	}
	if raw, err := c.Raw(3); err != nil || !bytes.Equal(raw, []byte{1, 2, 3}) {
		t.Fatalf("Raw = %x, %v", raw, err)
	}
	blob, err := c.Blob()
	if err != nil || string(blob) != "payload" {
		t.Fatalf("Blob = %q, %v", blob, err)
	}
	if name, err := c.View(); err != nil || string(name) != "name" {
		t.Fatalf("View = %q, %v", name, err)
	}
	if v, err := c.U32(); err != nil || v != 0xdeadbeef {
		t.Fatalf("U32 = %#x, %v", v, err)
	}
	if v, err := c.U64(); err != nil || v != 0x0123456789abcdef {
		t.Fatalf("U64 = %#x, %v", v, err)
	}
	if v, err := c.Uvarint(); err != nil || v != 9000 {
		t.Fatalf("Int round trip = %d, %v", v, err)
	}
	if err := c.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

// TestBlobOwnership: Blob copies, View aliases.
func TestBlobOwnership(t *testing.T) {
	var a Appender
	a.Blob([]byte{10, 20, 30})
	data := a.Buf

	c := CursorOf(data)
	blob, err := c.Blob()
	if err != nil {
		t.Fatal(err)
	}
	c2 := CursorOf(data)
	view, err := c2.View()
	if err != nil {
		t.Fatal(err)
	}
	data[1] = 99
	if blob[0] != 10 {
		t.Fatalf("Blob result aliases input: %v", blob)
	}
	if view[0] != 99 {
		t.Fatalf("View result does not alias input: %v", view)
	}
}

// TestCursorErrors pins the failure taxonomy: mid-field end is
// truncation, structural violations are corruption, and both carry the
// offset where decoding stopped.
func TestCursorErrors(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		op   func(c *Cursor) error
		want error
	}{
		{"uvarint empty", nil, func(c *Cursor) error { _, err := c.Uvarint(); return err }, ErrTruncated},
		{"uvarint unterminated", []byte{0x80, 0x80}, func(c *Cursor) error { _, err := c.Uvarint(); return err }, ErrTruncated},
		{"uvarint overflow", bytes.Repeat([]byte{0x80}, 11), func(c *Cursor) error { _, err := c.Uvarint(); return err }, ErrCorrupt},
		{"byte empty", nil, func(c *Cursor) error { _, err := c.Byte(); return err }, ErrTruncated},
		{"raw overrun", []byte{1}, func(c *Cursor) error { _, err := c.Raw(2); return err }, ErrTruncated},
		{"raw negative", []byte{1}, func(c *Cursor) error { _, err := c.Raw(-1); return err }, ErrTruncated},
		{"view overrun", []byte{5, 1, 2}, func(c *Cursor) error { _, err := c.View(); return err }, ErrTruncated},
		{"u32 short", []byte{1, 2, 3}, func(c *Cursor) error { _, err := c.U32(); return err }, ErrTruncated},
		{"u64 short", []byte{1, 2, 3, 4, 5, 6, 7}, func(c *Cursor) error { _, err := c.U64(); return err }, ErrTruncated},
		{"trailing", []byte{1, 2}, func(c *Cursor) error { return c.Done() }, ErrCorrupt},
	}
	for _, tc := range cases {
		c := CursorOf(tc.data)
		err := tc.op(&c)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: error %v does not wrap %v", tc.name, err, tc.want)
		}
	}
}

// TestCursorSentinelSubstitution: flavored sentinels replace the shared
// ones wholesale, which is how capo/segment/bundle keep their own error
// identities while staying errors.Is-classifiable.
func TestCursorSentinelSubstitution(t *testing.T) {
	flavored := fmt.Errorf("flavored: %w", ErrTruncated)
	c := CursorWith(nil, flavored, ErrCorrupt)
	_, err := c.Uvarint()
	if !errors.Is(err, flavored) || !errors.Is(err, ErrTruncated) {
		t.Fatalf("error %v should wrap both the flavored and shared sentinel", err)
	}
}

// TestErrorOffset: a failure names the position where decoding stopped.
func TestErrorOffset(t *testing.T) {
	var a Appender
	a.Uvarint(300) // 2 bytes
	a.Byte(1)
	data := append(a.Buf, 0x80) // unterminated varint at offset 3
	c := CursorOf(data)
	if _, err := c.Uvarint(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Byte(); err != nil {
		t.Fatal(err)
	}
	_, err := c.Uvarint()
	if err == nil || !errors.Is(err, ErrTruncated) {
		t.Fatalf("want truncation, got %v", err)
	}
	if want := "at offset 3"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Fatalf("error %q does not carry %q", err, want)
	}
}

// TestRestSkip: the escape hatch used by decoders that hand the tail to
// a sub-decoder (chunk-entry encodings) and account for consumed bytes.
func TestRestSkip(t *testing.T) {
	c := CursorOf([]byte{1, 2, 3, 4})
	if _, err := c.Byte(); err != nil {
		t.Fatal(err)
	}
	if got := c.Rest(); !bytes.Equal(got, []byte{2, 3, 4}) {
		t.Fatalf("Rest = %v", got)
	}
	c.Skip(2)
	if c.Pos() != 3 || c.Remaining() != 1 {
		t.Fatalf("pos %d remaining %d", c.Pos(), c.Remaining())
	}
}

// TestAppenderGrowReset covers the capacity-management helpers the hot
// paths rely on.
func TestAppenderGrowReset(t *testing.T) {
	var a Appender
	a.Grow(100)
	if cap(a.Buf) < 100 || len(a.Buf) != 0 {
		t.Fatalf("Grow: len %d cap %d", len(a.Buf), cap(a.Buf))
	}
	p := &a.Buf[:1][0]
	a.Raw(bytes.Repeat([]byte{9}, 50))
	if &a.Buf[0] != p {
		t.Fatal("append within grown capacity reallocated")
	}
	if a.Len() != 50 {
		t.Fatalf("Len = %d", a.Len())
	}
	a.Reset()
	if a.Len() != 0 || cap(a.Buf) < 100 {
		t.Fatal("Reset dropped capacity")
	}
}

// TestPool: pooled appenders come back empty, and oversized buffers are
// not retained.
func TestPool(t *testing.T) {
	a := GetAppender()
	a.Raw([]byte{1, 2, 3})
	PutAppender(a)
	b := GetAppender()
	if b.Len() != 0 {
		t.Fatalf("pooled appender not reset: %d bytes", b.Len())
	}
	b.Grow(maxPooledCap + 1)
	PutAppender(b) // must drop, not pin
	c := GetAppender()
	if cap(c.Buf) > maxPooledCap {
		t.Fatalf("pool retained %d-byte buffer beyond cap bound", cap(c.Buf))
	}
	PutAppender(c)
}
