package wire

import "encoding/binary"

// Deterministic byte-oriented LZ77 for block payloads. The format must
// never change once recordings are stored, so this is deliberately a
// fixed, dependency-free codec rather than compress/flate (whose output
// bytes may differ across Go releases, which would break golden-fixture
// byte identity) — determinism here is a format property, not a nicety.
//
// Token stream, repeated until rawLen output bytes exist:
//
//	litLen uvarint | literals[litLen]            (always present)
//	matchLen uvarint | dist uvarint              (absent when the
//	                                              literals completed
//	                                              the output)
//
// matchLen ≥ lzMinMatch, 1 ≤ dist ≤ bytes-produced-so-far; matches may
// overlap their own output (dist < matchLen is run-length encoding).
// The window is unbounded: a match may reach the start of the block,
// which is what dedupes an input-log data arena against an output blob
// hundreds of kilobytes earlier.
//
// The compressor is greedy with a single-slot hash table over 4-byte
// windows. That is enough for the short-range redundancy the v2 bundle
// layout leaves behind (adjacent columns, per-thread chunk logs);
// long-range structural duplication is removed by the layout itself
// before bytes reach this layer.

const (
	lzMinMatch  = 4
	lzHashBits  = 15
	lzHashMul   = 2654435761 // Knuth multiplicative hash constant
	lzTableSize = 1 << lzHashBits
)

func lzHash(u uint32) uint32 {
	return (u * lzHashMul) >> (32 - lzHashBits)
}

func lzLoad32(src []byte, i int) uint32 {
	return binary.LittleEndian.Uint32(src[i:])
}

// lzAppend appends the token stream for src onto dst. Output is a pure
// function of src.
func lzAppend(dst []byte, src []byte) []byte {
	if len(src) == 0 {
		return dst // zero declared bytes decode from zero tokens
	}
	a := AppenderOf(dst)
	if len(src) < lzMinMatch {
		a.Uvarint(uint64(len(src)))
		a.Raw(src)
		return a.Buf
	}
	table := make([]int32, lzTableSize)
	lit := 0 // start of the pending literal run
	i := 1   // position 0 can never match (no earlier bytes)
	for i+lzMinMatch <= len(src) {
		cur := lzLoad32(src, i)
		h := lzHash(cur)
		j := int(table[h])
		table[h] = int32(i)
		if j < i && lzLoad32(src, j) == cur {
			l := lzMinMatch
			for i+l < len(src) && src[j+l] == src[i+l] {
				l++
			}
			a.Uvarint(uint64(i - lit))
			a.Raw(src[lit:i])
			a.Uvarint(uint64(l))
			a.Uvarint(uint64(i - j))
			i += l
			lit = i
			continue
		}
		i++
	}
	if lit < len(src) || lit == 0 {
		a.Uvarint(uint64(len(src) - lit))
		a.Raw(src[lit:])
	}
	return a.Buf
}

// lzExpand decodes a token stream into exactly rawLen bytes appended to
// out, reading tokens from s (which carries the container's flavored
// sentinels). The stream must consume fully and produce exactly rawLen
// bytes; anything else is corruption or truncation.
func lzExpand(out []byte, s *Cursor, rawLen int) ([]byte, error) {
	for len(out) < rawLen {
		litLen, err := s.Uvarint()
		if err != nil {
			return nil, err
		}
		if litLen > uint64(rawLen-len(out)) {
			return nil, s.corruptf("literal run %d overflows declared size", litLen)
		}
		lits, err := s.Raw(int(litLen))
		if err != nil {
			return nil, err
		}
		out = append(out, lits...)
		if len(out) == rawLen {
			break
		}
		matchLen, err := s.Uvarint()
		if err != nil {
			return nil, err
		}
		if matchLen < lzMinMatch || matchLen > uint64(rawLen-len(out)) {
			return nil, s.corruptf("match length %d out of range", matchLen)
		}
		dist, err := s.Uvarint()
		if err != nil {
			return nil, err
		}
		if dist == 0 || dist > uint64(len(out)) {
			return nil, s.corruptf("match distance %d out of range", dist)
		}
		j, n := len(out)-int(dist), int(matchLen)
		if int(dist) >= n {
			out = append(out, out[j:j+n]...)
		} else {
			for k := 0; k < n; k++ { // overlapping: RLE-style byte copy
				out = append(out, out[j+k])
			}
		}
	}
	if err := s.Done(); err != nil {
		return nil, err
	}
	return out, nil
}
