package wire

import "sync"

// maxPooledCap bounds the capacity of a buffer returned to the pool. A
// one-off giant payload (a checkpoint memory image, say) must not pin
// megabytes inside the pool forever; oversized buffers are dropped and
// the pool refills with modest ones.
const maxPooledCap = 1 << 20

var appenderPool = sync.Pool{New: func() any { return new(Appender) }}

// GetAppender returns an empty pooled Appender. The streaming flush
// path uses this for per-epoch segment payloads so a long recording
// reuses one warm buffer per flush instead of allocating each time.
// Return it with PutAppender once its bytes have been copied out (the
// segment writer frames the payload into its own buffer, so the
// appender is free as soon as writeSegment returns).
func GetAppender() *Appender {
	a := appenderPool.Get().(*Appender)
	a.Reset()
	return a
}

// PutAppender returns a to the pool. The caller must not touch a.Buf
// afterwards.
func PutAppender(a *Appender) {
	if cap(a.Buf) > maxPooledCap {
		return
	}
	appenderPool.Put(a)
}
