package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func roundTripBlock(t *testing.T, data []byte) byte {
	t.Helper()
	var a Appender
	method := AppendBlock(&a, data)
	c := CursorOf(a.Buf)
	got, gotMethod, err := DecodeBlock(&c, nil)
	if err != nil {
		t.Fatalf("DecodeBlock: %v", err)
	}
	if gotMethod != method {
		t.Fatalf("method: got %d want %d", gotMethod, method)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: got %d bytes want %d", len(got), len(data))
	}
	if err := c.Done(); err != nil {
		t.Fatalf("trailing bytes after block: %v", err)
	}
	return method
}

func TestBlockRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	random := make([]byte, 4096)
	rng.Read(random)
	runs := bytes.Repeat([]byte{0xAB}, 100_000)
	periodic := bytes.Repeat([]byte("chunk-entry:"), 2048)
	dup := append(append([]byte(nil), random...), random...) // long-range duplicate

	cases := []struct {
		name     string
		data     []byte
		wantLZ   bool
		maxRatio float64 // compressed/raw must be below this when wantLZ
	}{
		{"empty", nil, false, 0},
		{"tiny", []byte{1, 2, 3}, false, 0},
		{"random", random, false, 0},
		{"runs", runs, true, 0.001},
		{"periodic", periodic, true, 0.01},
		{"long-range-dup", dup, true, 0.51},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			method := roundTripBlock(t, tc.data)
			if tc.wantLZ {
				if method != BlockLZ {
					t.Fatalf("expected LZ framing for %s", tc.name)
				}
				var a Appender
				AppendBlock(&a, tc.data)
				if ratio := float64(a.Len()) / float64(len(tc.data)); ratio > tc.maxRatio {
					t.Fatalf("ratio %.4f exceeds %.4f", ratio, tc.maxRatio)
				}
			} else if method != BlockRaw {
				t.Fatalf("expected raw framing for %s", tc.name)
			}
		})
	}
}

func TestBlockForcedMethodRoundTrips(t *testing.T) {
	// Re-encode identity requires honoring a stored method even when
	// the other would win; raw framing of compressible data and LZ
	// framing of incompressible data must both round-trip.
	rng := rand.New(rand.NewSource(11))
	random := make([]byte, 1024)
	rng.Read(random)
	for _, tc := range []struct {
		name   string
		data   []byte
		method byte
	}{
		{"raw-of-compressible", bytes.Repeat([]byte{7}, 4096), BlockRaw},
		{"lz-of-incompressible", random, BlockLZ},
		{"lz-of-empty", nil, BlockLZ},
	} {
		var a Appender
		AppendBlockMethod(&a, tc.data, tc.method)
		c := CursorOf(a.Buf)
		got, method, err := DecodeBlock(&c, nil)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if method != tc.method || !bytes.Equal(got, tc.data) {
			t.Fatalf("%s: method %d, %d bytes", tc.name, method, len(got))
		}
	}
}

func TestBlockDecodeReusesDst(t *testing.T) {
	data := bytes.Repeat([]byte("ts-delta "), 4096)
	var a Appender
	if AppendBlock(&a, data) != BlockLZ {
		t.Fatal("expected compressible input to take the LZ path")
	}
	dst := make([]byte, 0, len(data))
	allocs := testing.AllocsPerRun(50, func() {
		c := CursorOf(a.Buf)
		out, _, err := DecodeBlock(&c, dst)
		if err != nil || len(out) != len(data) {
			t.Fatalf("decode: %v (%d bytes)", err, len(out))
		}
	})
	if allocs > 0 {
		t.Fatalf("decompressing into a presized dst allocated %.1f/op", allocs)
	}
}

func TestBlockCorruption(t *testing.T) {
	valid := func() []byte {
		var a Appender
		AppendBlockMethod(&a, bytes.Repeat([]byte{3, 1, 4, 1, 5, 9}, 64), BlockLZ)
		return a.Buf
	}()
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"bad-method", []byte{9, 4, 2, 1, 2}, ErrCorrupt},
		{"raw-len-mismatch", []byte{0, 5, 2, 1, 2}, ErrCorrupt},
		{"giant-rawlen", []byte{1, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F, 0}, ErrCorrupt},
		{"truncated-payload", valid[:len(valid)-3], ErrTruncated},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := CursorOf(tc.data)
			if _, _, err := DecodeBlock(&c, nil); !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}

	// Token-level corruption inside the LZ payload: flip every byte in
	// turn. The block layer carries no checksum (integrity lives at the
	// segment CRC and ingest digest layers), so a flipped literal can
	// decode cleanly to different bytes — what must hold is that every
	// failure is typed and nothing panics.
	for i := range valid {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0xFF
		c := CursorOf(mut)
		_, _, err := DecodeBlock(&c, nil)
		if err != nil && !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
			t.Fatalf("byte %d: untyped error %v", i, err)
		}
	}
}

func TestBlockFlavoredSentinels(t *testing.T) {
	flavorC := errors.New("flavored corrupt")
	c := CursorWith([]byte{9, 4, 2, 1, 2}, errors.New("flavored trunc"), flavorC)
	if _, _, err := DecodeBlock(&c, nil); !errors.Is(err, flavorC) {
		t.Fatalf("block error lost the container's sentinel: %v", err)
	}
}

func TestLZDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := make([]byte, 32768)
	rng.Read(data)
	copy(data[16384:], data[:8192]) // some long-range structure
	first := lzAppend(nil, data)
	for i := 0; i < 3; i++ {
		if !bytes.Equal(lzAppend(nil, data), first) {
			t.Fatal("lzAppend is not deterministic")
		}
	}
}
