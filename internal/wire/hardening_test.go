package wire

import (
	"errors"
	"strings"
	"testing"
)

// Regression: Skip had no bounds check, so a sub-decoder that
// over-reported its consumed bytes drove pos past len(data) and the
// next read panicked with a slice-bounds error. An out-of-range skip
// must instead poison the cursor so every later operation returns the
// corruption sentinel.
func TestCursorSkipOverrun(t *testing.T) {
	reads := []struct {
		name string
		op   func(c *Cursor) error
	}{
		{"uvarint", func(c *Cursor) error { _, err := c.Uvarint(); return err }},
		{"byte", func(c *Cursor) error { _, err := c.Byte(); return err }},
		{"raw", func(c *Cursor) error { _, err := c.Raw(1); return err }},
		{"raw-zero", func(c *Cursor) error { _, err := c.Raw(0); return err }},
		{"view", func(c *Cursor) error { _, err := c.View(); return err }},
		{"blob", func(c *Cursor) error { _, err := c.Blob(); return err }},
		{"u32", func(c *Cursor) error { _, err := c.U32(); return err }},
		{"u64", func(c *Cursor) error { _, err := c.U64(); return err }},
		{"done", func(c *Cursor) error { return c.Done() }},
	}
	for _, r := range reads {
		t.Run(r.name, func(t *testing.T) {
			c := CursorOf([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
			c.Skip(3)
			c.Skip(100) // over-reported consumption
			if c.Remaining() != 0 {
				t.Fatalf("overrun skip did not clamp: %d remaining", c.Remaining())
			}
			err := r.op(&c)
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("%s after overrun skip: got %v, want ErrCorrupt", r.name, err)
			}
		})
	}

	t.Run("negative", func(t *testing.T) {
		c := CursorOf([]byte{1, 2, 3})
		c.Skip(-1)
		if err := c.Done(); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("negative skip: got %v, want ErrCorrupt", err)
		}
	})

	t.Run("exact-end-is-fine", func(t *testing.T) {
		c := CursorOf([]byte{1, 2, 3})
		c.Skip(3)
		if err := c.Done(); err != nil {
			t.Fatalf("skip to exact end: %v", err)
		}
	})

	t.Run("flavored", func(t *testing.T) {
		flavor := errors.New("flavored corrupt")
		c := CursorWith([]byte{1}, errors.New("t"), flavor)
		c.Skip(2)
		if _, err := c.Byte(); !errors.Is(err, flavor) {
			t.Fatalf("poisoned read lost flavored sentinel: %v", err)
		}
	})
}

// Regression: Int silently sign-extended a negative value into a
// ~10-byte uvarint, planting an enormous count in the log. It must
// panic at the encode site instead.
func TestAppenderIntNegativePanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Int(-1) did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "negative") {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	var a Appender
	a.Int(3) // non-negative stays fine
	a.Int(-1)
}
