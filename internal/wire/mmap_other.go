//go:build !linux

package wire

import "os"

// MapFile reads path into memory on platforms without the mmap fast
// path. The contract matches the linux implementation: immutable bytes
// plus a closer that invalidates them.
func MapFile(path string) ([]byte, func() error, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
