package wire

import "encoding/binary"

// Cursor is a bounds-checked decoder over a byte slice. Every failure
// wraps one of two sentinels — a truncation error when the input ends
// mid-field, a corruption error on structural violations — and carries
// the byte offset where decoding stopped, so a failure deep inside a
// nested log still names the exact position in the enclosing buffer.
//
// The sentinels default to ErrTruncated / ErrCorrupt; a codec with its
// own error identity (capo's ErrCorruptInput, segment's torn-stream
// errors, the bundle's ErrCorruptBundle) substitutes flavored sentinels
// with CursorWith — those must themselves wrap the shared ones so
// errors.Is triage keeps working across all five formats.
type Cursor struct {
	data    []byte
	pos     int
	overrun bool // a Skip ran past the buffer; every later read fails
	trunc   error
	corrupt error
}

// CursorOf returns a cursor over data using the shared sentinels.
func CursorOf(data []byte) Cursor {
	return Cursor{data: data, trunc: ErrTruncated, corrupt: ErrCorrupt}
}

// CursorWith returns a cursor whose failures wrap the given sentinels
// instead of the shared ones. Pass errors that themselves wrap
// ErrTruncated / ErrCorrupt.
func CursorWith(data []byte, trunc, corrupt error) Cursor {
	return Cursor{data: data, trunc: trunc, corrupt: corrupt}
}

// Pos returns the current offset.
func (c *Cursor) Pos() int { return c.pos }

// Remaining returns the number of unread bytes.
func (c *Cursor) Remaining() int { return len(c.data) - c.pos }

// Rest returns the unread tail of the buffer without consuming it.
// Zero-copy: the result aliases the cursor's data.
func (c *Cursor) Rest() []byte { return c.data[c.pos:] }

// Skip advances past n bytes already consumed externally (e.g. by a
// sub-decoder handed Rest()). A skip beyond the remaining bytes means
// the sub-decoder over-reported its consumption: the cursor clamps to
// the end and poisons itself, so every subsequent read returns the
// corruption sentinel instead of panicking on a slice bound.
func (c *Cursor) Skip(n int) {
	if n < 0 || n > len(c.data)-c.pos {
		c.pos = len(c.data)
		c.overrun = true
		return
	}
	c.pos += n
}

// Sub returns a cursor over data that inherits this cursor's flavored
// sentinels, for decoding a nested payload (e.g. a compressed block's
// token stream) with the same error identity as the container.
func (c *Cursor) Sub(data []byte) Cursor {
	return Cursor{data: data, trunc: c.trunc, corrupt: c.corrupt}
}

// poisoned reports the sticky out-of-range-Skip error, if any.
func (c *Cursor) poisoned() error {
	if !c.overrun {
		return nil
	}
	return c.corruptf("read after out-of-range skip")
}

// Uvarint decodes one unsigned LEB128 varint.
func (c *Cursor) Uvarint() (uint64, error) {
	if err := c.poisoned(); err != nil {
		return 0, err
	}
	v, n := binary.Uvarint(c.data[c.pos:])
	if n == 0 {
		return 0, c.truncated("input ends mid-varint")
	}
	if n < 0 {
		return 0, c.corruptf("varint overflow")
	}
	c.pos += n
	return v, nil
}

// Varint decodes one zigzag-encoded signed LEB128 varint.
func (c *Cursor) Varint() (int64, error) {
	if err := c.poisoned(); err != nil {
		return 0, err
	}
	v, n := binary.Varint(c.data[c.pos:])
	if n == 0 {
		return 0, c.truncated("input ends mid-varint")
	}
	if n < 0 {
		return 0, c.corruptf("varint overflow")
	}
	c.pos += n
	return v, nil
}

// Byte decodes one raw byte.
func (c *Cursor) Byte() (byte, error) {
	if err := c.poisoned(); err != nil {
		return 0, err
	}
	if c.pos >= len(c.data) {
		return 0, c.truncated("input ends mid-field")
	}
	b := c.data[c.pos]
	c.pos++
	return b, nil
}

// Raw consumes exactly n bytes. Zero-copy: the result aliases the
// cursor's data and must not be retained past the decode.
func (c *Cursor) Raw(n int) ([]byte, error) {
	if err := c.poisoned(); err != nil {
		return nil, err
	}
	if n < 0 || n > c.Remaining() {
		return nil, c.truncatedf("%d-byte field overruns buffer", n)
	}
	out := c.data[c.pos : c.pos+n]
	c.pos += n
	return out, nil
}

// View decodes a uvarint-length-prefixed blob without copying. The
// result aliases the cursor's data: use it for fields parsed and
// discarded within the decode (nested logs, names converted to string);
// use Blob for anything the decoded value retains.
func (c *Cursor) View() ([]byte, error) {
	n, err := c.Uvarint()
	if err != nil {
		return nil, err
	}
	// Compare as uint64: a huge length must not overflow int.
	if n > uint64(c.Remaining()) {
		return nil, c.truncatedf("length %d overruns buffer", n)
	}
	out := c.data[c.pos : c.pos+int(n)]
	c.pos += int(n)
	return out, nil
}

// Blob decodes a uvarint-length-prefixed blob into freshly owned bytes.
func (c *Cursor) Blob() ([]byte, error) {
	v, err := c.View()
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), v...), nil
}

// U32 decodes a little-endian 32-bit word.
func (c *Cursor) U32() (uint32, error) {
	if err := c.poisoned(); err != nil {
		return 0, err
	}
	if c.Remaining() < 4 {
		return 0, c.truncated("input ends mid-word")
	}
	v := binary.LittleEndian.Uint32(c.data[c.pos:])
	c.pos += 4
	return v, nil
}

// U64 decodes a little-endian 64-bit word.
func (c *Cursor) U64() (uint64, error) {
	if err := c.poisoned(); err != nil {
		return 0, err
	}
	if c.Remaining() < 8 {
		return 0, c.truncated("input ends mid-word")
	}
	v := binary.LittleEndian.Uint64(c.data[c.pos:])
	c.pos += 8
	return v, nil
}

// Done verifies every byte was consumed; trailing bytes are corruption
// (a decoder that stopped early would silently accept appended garbage).
// A cursor poisoned by an out-of-range Skip never reports success even
// though its position sits at the end.
func (c *Cursor) Done() error {
	if err := c.poisoned(); err != nil {
		return err
	}
	if c.pos != len(c.data) {
		return c.corruptf("%d trailing bytes", len(c.data)-c.pos)
	}
	return nil
}
