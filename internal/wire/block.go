package wire

// Block framing: the one choke point through which every codec gets
// optional compression. A block is
//
//	method u8 | rawLen uvarint | blob(payload)
//
// where method selects how payload reconstructs the rawLen original
// bytes: BlockRaw stores them verbatim (payload length must equal
// rawLen, and decode returns a zero-copy view), BlockLZ stores the
// deterministic LZ token stream from lz.go. The rawLen field is
// redundant for raw blocks but keeps the header shape uniform, so a
// reader can size a destination buffer before touching the payload.
//
// AppendBlock picks whichever method is smaller; AppendBlockMethod
// forces one, which is what re-encode-is-identity needs — a decoded
// container remembers the method its source used and reproduces it
// even when the other would now win.

// Block methods. Anything else is corruption.
const (
	BlockRaw byte = 0 // payload is the original bytes
	BlockLZ  byte = 1 // payload is an LZ token stream (lz.go)
)

// AppendBlock frames data as a block, compressing when the LZ token
// stream is strictly smaller and falling back to raw framing otherwise.
// The choice is deterministic in data. Returns the method used.
func AppendBlock(a *Appender, data []byte) byte {
	s := GetAppender()
	s.Buf = lzAppend(s.Buf, data)
	method := BlockRaw
	if s.Len() < len(data) {
		method = BlockLZ
		appendBlockFrame(a, data, s.Buf, method)
	} else {
		appendBlockFrame(a, data, data, method)
	}
	PutAppender(s)
	return method
}

// AppendBlockMethod frames data using the given method regardless of
// which is smaller.
func AppendBlockMethod(a *Appender, data []byte, method byte) {
	switch method {
	case BlockRaw:
		appendBlockFrame(a, data, data, BlockRaw)
	case BlockLZ:
		s := GetAppender()
		s.Buf = lzAppend(s.Buf, data)
		appendBlockFrame(a, data, s.Buf, BlockLZ)
		PutAppender(s)
	default:
		panic("wire: unknown block method")
	}
}

func appendBlockFrame(a *Appender, orig, payload []byte, method byte) {
	a.Byte(method)
	a.Uvarint(uint64(len(orig)))
	a.Blob(payload)
}

// DecodeBlock reads one block from c. Raw payloads come back as a
// zero-copy view of the cursor's data; compressed payloads decompress
// into dst's capacity (dst may be nil — a caller that passes the same
// buffer across decodes pays no steady-state allocation). Errors wrap
// the cursor's flavored sentinels.
func DecodeBlock(c *Cursor, dst []byte) (data []byte, method byte, err error) {
	method, err = c.Byte()
	if err != nil {
		return nil, 0, err
	}
	rawLen, err := c.Uvarint()
	if err != nil {
		return nil, 0, err
	}
	// An absurd declared size is a corrupt header, not a license to
	// build gigabytes of output. The decompressor grows its buffer as
	// tokens actually produce bytes (so a lying rawLen with a short
	// token stream fails long before the declared size), but a valid
	// token stream can legitimately expand enormously — this cap is
	// the only bound on that work.
	if rawLen > maxBlockRaw {
		return nil, 0, c.corruptf("block declares %d bytes (cap %d)", rawLen, uint64(maxBlockRaw))
	}
	payload, err := c.View()
	if err != nil {
		return nil, 0, err
	}
	switch method {
	case BlockRaw:
		if uint64(len(payload)) != rawLen {
			return nil, 0, c.corruptf("raw block: payload %d bytes, declares %d", len(payload), rawLen)
		}
		return payload, BlockRaw, nil
	case BlockLZ:
		sub := c.Sub(payload)
		out, err := lzExpand(dst[:0], &sub, int(rawLen))
		if err != nil {
			return nil, 0, err
		}
		return out, BlockLZ, nil
	default:
		return nil, 0, c.corruptf("unknown block method %d", method)
	}
}

// maxBlockRaw caps the original size a block may declare, matching the
// order of the largest container in the system (a whole bundle body).
const maxBlockRaw = 1 << 30
