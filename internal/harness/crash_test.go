package harness

import (
	"strings"
	"testing"
)

func TestCrashSweepSmall(t *testing.T) {
	cfg := CrashConfig{
		Workloads:  []string{"counter"},
		Cores:      []int{2},
		RandomCuts: 6,
		BitFlips:   6,
		Seed:       3,
	}
	rep, err := CrashSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Silent() != 0 {
		t.Fatalf("silent crash outcomes:\n%s", rep)
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(rep.Cells))
	}
	torn := rep.Cells[0]
	if torn.Class != FaultTornWrite {
		t.Fatalf("first cell class %q", torn.Class)
	}
	// Every segment boundary plus the random cuts was exercised, and
	// each landed on a detection point.
	if torn.Injected < 6+3 {
		t.Fatalf("only %d torn-write points", torn.Injected)
	}
	if torn.Detected() != torn.Injected {
		t.Fatalf("torn-write: %d of %d detected", torn.Detected(), torn.Injected)
	}
	if torn.Prefix == 0 {
		t.Fatal("no torn cut yielded a verified prefix replay")
	}
	if torn.Verify != 1 {
		t.Fatalf("whole-stream cut verified %d times, want 1", torn.Verify)
	}
	flips := rep.Cells[1]
	if flips.Class != FaultStreamCorrupt {
		t.Fatalf("second cell class %q", flips.Class)
	}
	if flips.Injected != 6 || flips.Detected() != 6 {
		t.Fatalf("bit flips: %d of %d detected", flips.Detected(), flips.Injected)
	}
	if !strings.Contains(rep.String(), "torn-write") {
		t.Fatal("report table misses the torn-write class")
	}
}

// TestCrashSweepAcceptance runs the full acceptance matrix: every
// segment boundary plus ≥100 random intra-segment cuts across three
// workloads × 1/2/4 cores, with zero silent outcomes.
func TestCrashSweepAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rep, err := CrashSweep(DefaultCrashConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Silent() != 0 {
		t.Fatalf("silent crash outcomes:\n%s", rep)
	}
	randomCuts := 0
	for _, c := range rep.Cells {
		if c.Detected() != c.Injected {
			t.Fatalf("%s × %d × %s: %d of %d detected", c.Workload, c.Cores, c.Class, c.Detected(), c.Injected)
		}
		if c.Class == FaultTornWrite {
			randomCuts += DefaultCrashConfig().RandomCuts
		}
	}
	if randomCuts < 100 {
		t.Fatalf("only %d random cut points swept", randomCuts)
	}
}
