package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/segment"
	"repro/internal/workload"
)

func TestCrashSweepSmall(t *testing.T) {
	cfg := CrashConfig{
		Workloads:  []string{"counter"},
		Cores:      []int{2},
		RandomCuts: 6,
		BitFlips:   6,
		Seed:       3,
	}
	rep, err := CrashSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Silent() != 0 {
		t.Fatalf("silent crash outcomes:\n%s", rep)
	}
	if len(rep.Cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(rep.Cells))
	}
	torn := rep.Cells[0]
	if torn.Class != FaultTornWrite {
		t.Fatalf("first cell class %q", torn.Class)
	}
	// Every segment boundary plus the random cuts was exercised, and
	// each landed on a detection point.
	if torn.Injected < 6+3 {
		t.Fatalf("only %d torn-write points", torn.Injected)
	}
	if torn.Detected() != torn.Injected {
		t.Fatalf("torn-write: %d of %d detected", torn.Detected(), torn.Injected)
	}
	if torn.Prefix == 0 {
		t.Fatal("no torn cut yielded a verified prefix replay")
	}
	if torn.Verify != 1 {
		t.Fatalf("whole-stream cut verified %d times, want 1", torn.Verify)
	}
	flips := rep.Cells[1]
	if flips.Class != FaultStreamCorrupt {
		t.Fatalf("second cell class %q", flips.Class)
	}
	if flips.Injected != 6 || flips.Detected() != 6 {
		t.Fatalf("bit flips: %d of %d detected", flips.Detected(), flips.Injected)
	}
	wtorn := rep.Cells[2]
	if wtorn.Class != FaultWindowTorn {
		t.Fatalf("third cell class %q", wtorn.Class)
	}
	if wtorn.Detected() != wtorn.Injected {
		t.Fatalf("window-torn: %d of %d detected:\n%s", wtorn.Detected(), wtorn.Injected, rep)
	}
	if wtorn.Window == 0 {
		t.Fatal("no torn window cut yielded a replayable suffix")
	}
	if wtorn.Verify != 1 {
		t.Fatalf("whole-window cut verified %d times, want 1", wtorn.Verify)
	}
	wflips := rep.Cells[3]
	if wflips.Class != FaultWindowCorrupt {
		t.Fatalf("fourth cell class %q", wflips.Class)
	}
	if wflips.Injected != 6 || wflips.Detected() != 6 {
		t.Fatalf("window bit flips: %d of %d detected:\n%s", wflips.Detected(), wflips.Injected, rep)
	}
	for _, want := range []string{"torn-write", "window-torn", "window-corrupt"} {
		if !strings.Contains(rep.String(), want) {
			t.Fatalf("report table misses the %s class", want)
		}
	}
}

// TestWindowedCrashServerWorkloads pins the flight-recorder acceptance
// scenario end to end: a long-running server workload records through a
// K-interval retention window at a fixed disk cost below the unbounded
// stream, the recorder crashes mid-stream (inside the open interval),
// and the dump salvages to a replayable suffix of at least K−1 full
// checkpoint intervals anchored at the surviving base checkpoint.
func TestWindowedCrashServerWorkloads(t *testing.T) {
	const k, threads = 3, 4
	// Longer instances than the suite's defaults, so the run crosses
	// well over K checkpoint boundaries and the window genuinely evicts.
	progs := map[string]*isa.Program{
		"reqserver": workload.ReqServer(96, 4, 16, threads),
		"sigserver": workload.SigServer(400, threads),
	}
	for _, name := range []string{"reqserver", "sigserver"} {
		t.Run(name, func(t *testing.T) {
			prog := progs[name]
			mcfg := recordConfig(2, threads, 21)
			mcfg.FlushEveryChunks = 8
			mcfg.CheckpointEveryInstrs = 2000
			if name == "sigserver" {
				mcfg.SignalPeriodInstrs = 700
			}
			var ub, wb bytes.Buffer
			full, err := core.StreamRecord(prog, mcfg, &ub)
			if err != nil {
				t.Fatal(err)
			}
			wcfg := mcfg
			wcfg.RetainCheckpoints = k
			if _, err := core.StreamRecord(prog, wcfg, &wb); err != nil {
				t.Fatal(err)
			}
			if n := len(full.IntervalCheckpoints); n < k+2 {
				t.Fatalf("only %d checkpoints; the workload is too short to evict", n)
			}
			if wb.Len() >= ub.Len() {
				t.Errorf("window did not bound disk cost: %d windowed vs %d unbounded bytes", wb.Len(), ub.Len())
			}
			offs := segment.Offsets(wb.Bytes())
			if len(offs) < 3 {
				t.Fatalf("window dump has only %d segments", len(offs))
			}
			maxSteps := full.RecordStats.Retired*4 + 100_000
			// Crash points inside the open interval: just before the final
			// segment and torn through it.
			for _, cut := range []int{offs[len(offs)-2], (offs[len(offs)-2] + offs[len(offs)-1]) / 2} {
				sv, err := core.SalvageStream(wb.Bytes()[:cut])
				if err != nil {
					t.Fatalf("cut at %d/%d: %v", cut, wb.Len(), err)
				}
				if sv.Window() != k {
					t.Fatalf("cut at %d: salvaged window K=%d, want %d", cut, sv.Window(), k)
				}
				if _, evicted := sv.WindowBase(); !evicted {
					t.Fatalf("cut at %d: no base checkpoint — window never evicted?", cut)
				}
				if got := len(sv.Bundle.IntervalCheckpoints); got < k-1 {
					t.Fatalf("cut at %d: only %d checkpoint intervals survive, want >= %d", cut, got, k-1)
				}
				if _, err := core.ReplayBounded(prog, sv.Bundle, maxSteps); err != nil {
					t.Fatalf("cut at %d: salvaged window suffix does not replay: %v", cut, err)
				}
			}
		})
	}
}

// TestCrashSweepAcceptance runs the full acceptance matrix: every
// segment boundary plus ≥100 random intra-segment cuts across three
// workloads × 1/2/4 cores, with zero silent outcomes.
func TestCrashSweepAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rep, err := CrashSweep(DefaultCrashConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Silent() != 0 {
		t.Fatalf("silent crash outcomes:\n%s", rep)
	}
	randomCuts := 0
	for _, c := range rep.Cells {
		if c.Detected() != c.Injected {
			t.Fatalf("%s × %d × %s: %d of %d detected", c.Workload, c.Cores, c.Class, c.Detected(), c.Injected)
		}
		if c.Class == FaultTornWrite {
			randomCuts += DefaultCrashConfig().RandomCuts
		}
	}
	if randomCuts < 100 {
		t.Fatalf("only %d random cut points swept", randomCuts)
	}
}
