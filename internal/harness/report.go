package harness

import (
	"fmt"
	"strings"

	"repro/internal/report"
)

// Cell is one (workload, cores, fault class) point of the matrix.
type Cell struct {
	Workload string
	Cores    int
	Class    FaultClass
	// Injected counts placed material faults; Decode/Replay/Verify are
	// the detection points; Silent counts wrong executions accepted as
	// correct (the conformance failure).
	Injected int
	Decode   int
	Replay   int
	Verify   int
	Silent   int
	// Prefix counts torn streams salvaged to a verified prefix replay —
	// the crash sweep's detection point (zero for bundle-mutation cells).
	Prefix int
	// Window counts torn flight-recorder windows salvaged to a
	// replayable suffix anchored at the surviving base checkpoint — the
	// windowed variant of Prefix (zero outside the windowed crash cells).
	Window int
	// Benign counts mutations that replayed to exactly the original
	// execution (legal alternative serializations); they are re-rolled
	// and excluded from the detection denominator.
	Benign int
	// Unplaced counts mutation slots whose re-roll budget ran out before
	// a material, non-benign site was found.
	Unplaced int
	// SilentExamples carries up to four descriptions of silent faults.
	SilentExamples []string
}

// Detected sums the detection points: decode rejection, replay
// divergence, verification failure, and verified prefix (or windowed
// suffix) salvage.
func (c Cell) Detected() int { return c.Decode + c.Replay + c.Verify + c.Prefix + c.Window }

// MetaResult is one metamorphic property's outcome at one matrix point.
type MetaResult struct {
	Workload string
	Cores    int
	Property string
	Err      string // empty on success
}

// Report is a complete conformance run's findings.
type Report struct {
	Config Config
	Cells  []Cell
	Meta   []MetaResult
}

// Injected totals placed material faults.
func (r *Report) Injected() int {
	n := 0
	for _, c := range r.Cells {
		n += c.Injected
	}
	return n
}

// Detected totals faults caught at any detection point.
func (r *Report) Detected() int {
	n := 0
	for _, c := range r.Cells {
		n += c.Detected()
	}
	return n
}

// Silent totals silent divergences — wrong executions accepted as
// correct.
func (r *Report) Silent() int {
	n := 0
	for _, c := range r.Cells {
		n += c.Silent
	}
	return n
}

// MetaFailures lists the failed metamorphic properties.
func (r *Report) MetaFailures() []MetaResult {
	var out []MetaResult
	for _, m := range r.Meta {
		if m.Err != "" {
			out = append(out, m)
		}
	}
	return out
}

// OK reports conformance: no silent divergence, no metamorphic failure,
// and at least one material fault placed overall.
func (r *Report) OK() bool {
	return r.Silent() == 0 && len(r.MetaFailures()) == 0 && r.Injected() > 0
}

// String renders the triage report: the metamorphic summary, the
// per-cell coverage table, and the detection totals.
func (r *Report) String() string {
	var sb strings.Builder

	passed, failed := 0, 0
	for _, m := range r.Meta {
		if m.Err == "" {
			passed++
		} else {
			failed++
		}
	}
	if passed+failed > 0 {
		fmt.Fprintf(&sb, "Metamorphic properties: %d passed, %d failed\n", passed, failed)
		for _, m := range r.MetaFailures() {
			fmt.Fprintf(&sb, "  FAIL %s × %d cores: %s: %s\n", m.Workload, m.Cores, m.Property, m.Err)
		}
		sb.WriteString("\n")
	}

	t := report.Table{
		Title:   "Fault-injection coverage (single-fault log mutations)",
		Columns: []string{"workload", "cores", "fault", "injected", "decode", "replay", "verify", "prefix", "window", "benign*", "silent"},
	}
	for _, c := range r.Cells {
		t.AddRow(c.Workload, fmt.Sprint(c.Cores), string(c.Class),
			fmt.Sprint(c.Injected), fmt.Sprint(c.Decode), fmt.Sprint(c.Replay),
			fmt.Sprint(c.Verify), fmt.Sprint(c.Prefix), fmt.Sprint(c.Window),
			fmt.Sprint(c.Benign), fmt.Sprint(c.Silent))
	}
	sb.WriteString(t.String())
	sb.WriteString("  *benign = mutation replayed to exactly the original execution (legal\n" +
		"   alternative serialization); re-rolled, excluded from the denominator.\n\n")

	inj, det, sil := r.Injected(), r.Detected(), r.Silent()
	rate := 0.0
	if inj > 0 {
		rate = float64(det) / float64(inj)
	}
	fmt.Fprintf(&sb, "Totals: %d material faults injected, %d detected (%.1f%%), %d silent\n",
		inj, det, rate*100, sil)
	for _, c := range r.Cells {
		for _, ex := range c.SilentExamples {
			fmt.Fprintf(&sb, "  SILENT %s × %d cores × %s: %s\n", c.Workload, c.Cores, c.Class, ex)
		}
	}
	if r.OK() {
		sb.WriteString("CONFORMANCE: PASS — every material fault was detected explicitly\n")
	} else {
		sb.WriteString("CONFORMANCE: FAIL\n")
	}
	return sb.String()
}
