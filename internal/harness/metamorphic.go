package harness

import (
	"bytes"
	"fmt"
	"os"
	"reflect"

	"repro/internal/capo"
	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/ingest"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/races"
	"repro/internal/signature"
	"repro/internal/workload"
)

// PropertyResult is one metamorphic property's outcome; Err is empty on
// success.
type PropertyResult struct {
	Property string
	Err      string
}

// Metamorphic property names.
const (
	PropRecordDeterminism    = "record-twice-is-identical"
	PropReplayFidelity       = "replay-reaches-recorded-state"
	PropSerializationClosure = "recording-survives-serialization"
	PropReplayDeterminism    = "replay-twice-is-identical"
	PropRaceExpectation      = "race-expectation-holds"
	PropParallelReplay       = "parallel-replay-matches-serial"
	PropDistributed          = "distributed-matches-serial"
	PropReencodeIdentity     = "reencode-is-identity"
	PropWindowedTail         = "windowed-tail-matches-unbounded"
	PropWindowMonotone       = "window-size-monotone"
)

// checkMetamorphic runs the metamorphic properties against prog under
// cfg, given an already-made recording rec (recorded under cfg).
//
//   - record-twice-is-identical: recording is a pure function of
//     (program, config); a second recording marshals byte-identically.
//   - replay-reaches-recorded-state: replay reproduces the recorded
//     final memory, output and per-thread architectural state.
//   - recording-survives-serialization: marshal→unmarshal is the
//     identity (re-marshal is byte-identical) and the reloaded recording
//     still replays and verifies — a recording on disk is as replayable
//     as one in memory.
//   - replay-twice-is-identical: replay is itself deterministic, the
//     property that makes "replay the replay" debugging sound.
//   - reencode-is-identity: decode followed by re-encode is byte-identical
//     for the bundle and every nested codec — each chunk log under every
//     registered encoding, the input log under both framings, and every
//     captured signature. The per-codec version of serialization closure:
//     it localizes a wire-format asymmetry to the codec that has it.
func checkMetamorphic(prog *isa.Program, cfg machine.Config, rec *core.Bundle) []PropertyResult {
	var out []PropertyResult
	add := func(prop string, err error) {
		pr := PropertyResult{Property: prop}
		if err != nil {
			pr.Err = err.Error()
		}
		out = append(out, pr)
	}

	add(PropRecordDeterminism, func() error {
		again, err := core.Record(prog, cfg)
		if err != nil {
			return fmt.Errorf("second recording failed: %w", err)
		}
		a, b := rec.Marshal(), again.Marshal()
		if !bytes.Equal(a, b) {
			return fmt.Errorf("recordings differ: %d vs %d bytes", len(a), len(b))
		}
		return nil
	}())

	add(PropReplayFidelity, func() error {
		rr, err := core.Replay(prog, rec)
		if err != nil {
			return err
		}
		return core.Verify(rec, rr)
	}())

	add(PropSerializationClosure, func() error {
		data := rec.Marshal()
		loaded, err := core.UnmarshalBundle(data)
		if err != nil {
			return fmt.Errorf("unmarshal: %w", err)
		}
		if !bytes.Equal(loaded.Marshal(), data) {
			return fmt.Errorf("re-marshal is not byte-identical")
		}
		rr, err := core.Replay(prog, loaded)
		if err != nil {
			return fmt.Errorf("replay of reloaded recording: %w", err)
		}
		return core.Verify(loaded, rr)
	}())

	add(PropReencodeIdentity, func() error {
		for _, enc := range []chunk.Encoding{chunk.Fixed{}, chunk.Var{}, chunk.Delta{}} {
			for t, l := range rec.ChunkLogs {
				blob := l.Marshal(enc)
				dec, err := chunk.UnmarshalLog(blob)
				if err != nil {
					return fmt.Errorf("chunk log %d (%s): decode: %w", t, enc.Name(), err)
				}
				if !bytes.Equal(dec.Marshal(enc), blob) {
					return fmt.Errorf("chunk log %d (%s): re-encode differs", t, enc.Name())
				}
			}
		}
		blob := rec.InputLog.Marshal()
		il, err := capo.UnmarshalInputLog(blob)
		if err != nil {
			return fmt.Errorf("input log: decode: %w", err)
		}
		if !bytes.Equal(il.Marshal(), blob) {
			return fmt.Errorf("input log: re-encode differs")
		}
		rblob := capo.MarshalRecords(rec.InputLog.Records)
		recs, err := capo.UnmarshalRecords(rblob)
		if err != nil {
			return fmt.Errorf("input records: decode: %w", err)
		}
		if !bytes.Equal(capo.MarshalRecords(recs), rblob) {
			return fmt.Errorf("input records: re-encode differs")
		}
		for t, pairs := range rec.SigLogs {
			for i, p := range pairs {
				for side, raw := range map[string][]byte{"read": p.Read, "write": p.Write} {
					s, err := signature.Unmarshal(raw)
					if err != nil {
						return fmt.Errorf("thread %d sig %d %s: decode: %w", t, i, side, err)
					}
					if !bytes.Equal(s.Marshal(), raw) {
						return fmt.Errorf("thread %d sig %d %s: re-encode differs", t, i, side)
					}
				}
			}
		}
		// Both wire versions: a decoded bundle remembers the format it
		// came from, so decode→re-encode must round-trip byte-identically
		// whether the bytes were v1, uncompressed v2 or compressed v2.
		for _, f := range []core.Format{core.FormatV1, core.FormatV2Raw, core.FormatV2LZ} {
			saved := rec.Format
			rec.Format = f
			data := rec.Marshal()
			rec.Format = saved
			loaded, err := core.UnmarshalBundle(data)
			if err != nil {
				return fmt.Errorf("bundle (%s): decode: %w", f, err)
			}
			if !bytes.Equal(loaded.Marshal(), data) {
				return fmt.Errorf("bundle (%s): re-encode differs", f)
			}
		}
		return nil
	}())

	add(PropReplayDeterminism, func() error {
		r1, err := core.Replay(prog, rec)
		if err != nil {
			return err
		}
		r2, err := core.Replay(prog, rec)
		if err != nil {
			return err
		}
		if r1.MemChecksum != r2.MemChecksum {
			return fmt.Errorf("memory checksums differ: %#x vs %#x", r1.MemChecksum, r2.MemChecksum)
		}
		if !bytes.Equal(r1.Output, r2.Output) {
			return fmt.Errorf("outputs differ: %d vs %d bytes", len(r1.Output), len(r2.Output))
		}
		if r1.Steps != r2.Steps {
			return fmt.Errorf("step counts differ: %d vs %d", r1.Steps, r2.Steps)
		}
		for t := range r1.FinalContexts {
			if r1.FinalContexts[t] != r2.FinalContexts[t] {
				return fmt.Errorf("thread %d final context differs", t)
			}
		}
		return nil
	}())

	return out
}

// checkParallelReplay pins the parallel replay engine's defining
// property: splitting a checkpointed recording into intervals and
// replaying them on 4 workers produces a Result identical to serial
// replay — state, output, counters, everything. The conformance
// recording is made without checkpoints, so the property records its own
// flight-recorder bundle under the same config.
func checkParallelReplay(prog *isa.Program, cfg machine.Config) *PropertyResult {
	pr := &PropertyResult{Property: PropParallelReplay}
	err := func() error {
		// Cadence low enough that even the short conformance workloads
		// partition into several intervals; a workload too small to cross
		// it even once still gets the 1-vs-4 comparison (both serial),
		// which keeps the Workers plumbing honest without failing
		// vacuously.
		cfg.CheckpointEveryInstrs = 500
		rec, err := core.Record(prog, cfg)
		if err != nil {
			return fmt.Errorf("checkpointed recording failed: %w", err)
		}
		serial, err := core.ReplayWorkers(prog, rec, 1)
		if err != nil {
			return fmt.Errorf("serial replay: %w", err)
		}
		par, err := core.ReplayWorkers(prog, rec, 4)
		if err != nil {
			return fmt.Errorf("parallel replay: %w", err)
		}
		if serial.MemChecksum != par.MemChecksum {
			return fmt.Errorf("memory checksums differ: %#x vs %#x", serial.MemChecksum, par.MemChecksum)
		}
		if !bytes.Equal(serial.Output, par.Output) {
			return fmt.Errorf("outputs differ: %d vs %d bytes", len(serial.Output), len(par.Output))
		}
		if serial.Steps != par.Steps || serial.ChunksExecuted != par.ChunksExecuted ||
			serial.InputsApplied != par.InputsApplied {
			return fmt.Errorf("counters differ: steps %d/%d chunks %d/%d inputs %d/%d",
				serial.Steps, par.Steps, serial.ChunksExecuted, par.ChunksExecuted,
				serial.InputsApplied, par.InputsApplied)
		}
		for t := range serial.FinalContexts {
			if serial.FinalContexts[t] != par.FinalContexts[t] {
				return fmt.Errorf("thread %d final context differs", t)
			}
		}
		if !serial.FinalMem.Equal(par.FinalMem) {
			return fmt.Errorf("final memory images differ")
		}
		if err := core.Verify(rec, par); err != nil {
			return fmt.Errorf("parallel replay fails verification: %w", err)
		}
		return nil
	}()
	if err != nil {
		pr.Err = err.Error()
	}
	return pr
}

// checkDistributed pins the fleet executor's defining property:
// shipping a recording's replay intervals, screening blocks and
// confirmation slices to remote workers produces results bit-identical
// to serial local runs. The property stands up a loopback fleet — an
// ingest server with its job broker plus two in-process workers — per
// cell, records its own checkpointed signature-capturing bundle under
// the cell's config, and compares the fleet replay and race report
// against serial ones field by field.
func checkDistributed(prog *isa.Program, cfg machine.Config) *PropertyResult {
	pr := &PropertyResult{Property: PropDistributed}
	err := func() error {
		cfg.CheckpointEveryInstrs = 500
		cfg.CaptureSignatures = true
		rec, err := core.Record(prog, cfg)
		if err != nil {
			return fmt.Errorf("checkpointed recording failed: %w", err)
		}
		dir, err := os.MkdirTemp("", "quickrec-fleet-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		scfg := ingest.DefaultConfig()
		scfg.StoreDir = dir
		scfg.Shards = 1
		scfg.Verifiers = 1
		srv, err := ingest.NewServer(scfg)
		if err != nil {
			return fmt.Errorf("fleet server: %w", err)
		}
		go srv.Serve()
		defer srv.Close()
		for i := 0; i < 2; i++ {
			go (&fleet.Worker{Addr: srv.Addr(), Slots: 2}).Run()
		}
		client, err := fleet.Dial(srv.Addr())
		if err != nil {
			return fmt.Errorf("fleet dial: %w", err)
		}
		defer client.Close()

		serial, err := core.ReplayWorkers(prog, rec, 1)
		if err != nil {
			return fmt.Errorf("serial replay: %w", err)
		}
		dist, err := client.Replay(prog, rec)
		if err != nil {
			return fmt.Errorf("distributed replay: %w", err)
		}
		if serial.MemChecksum != dist.MemChecksum {
			return fmt.Errorf("memory checksums differ: %#x vs %#x", serial.MemChecksum, dist.MemChecksum)
		}
		if !bytes.Equal(serial.Output, dist.Output) {
			return fmt.Errorf("outputs differ: %d vs %d bytes", len(serial.Output), len(dist.Output))
		}
		if serial.Steps != dist.Steps || serial.ChunksExecuted != dist.ChunksExecuted ||
			serial.InputsApplied != dist.InputsApplied {
			return fmt.Errorf("counters differ: steps %d/%d chunks %d/%d inputs %d/%d",
				serial.Steps, dist.Steps, serial.ChunksExecuted, dist.ChunksExecuted,
				serial.InputsApplied, dist.InputsApplied)
		}
		for t := range serial.FinalContexts {
			if serial.FinalContexts[t] != dist.FinalContexts[t] {
				return fmt.Errorf("thread %d final context differs", t)
			}
		}
		if !serial.FinalMem.Equal(dist.FinalMem) {
			return fmt.Errorf("final memory images differ")
		}
		if err := core.Verify(rec, dist); err != nil {
			return fmt.Errorf("distributed replay fails verification: %w", err)
		}

		sRep, err := races.Detect(prog, rec)
		if err != nil {
			return fmt.Errorf("serial race detection: %w", err)
		}
		dRep, err := client.Races(prog, rec)
		if err != nil {
			return fmt.Errorf("distributed race detection: %w", err)
		}
		if !reflect.DeepEqual(sRep, dRep) {
			return fmt.Errorf("race reports differ: serial %d races / %d candidates, distributed %d / %d",
				len(sRep.Races), len(sRep.Candidates), len(dRep.Races), len(dRep.Candidates))
		}
		return nil
	}()
	if err != nil {
		pr.Err = err.Error()
	}
	return pr
}

// checkWindowed pins the flight-recorder ring's defining properties by
// recording the same execution three ways — streamed unbounded, streamed
// through a K=2 retention window, and streamed through a window too
// large to ever evict — and relating the salvaged results:
//
//   - windowed-tail-matches-unbounded: the windowed stream salvages to
//     exactly the tail of the unbounded recording from the window's base
//     checkpoint — identical logs, identical serial replay, and parallel
//     replay from the window base agrees with both and verifies. An
//     operator replaying a flight-recorder window sees bit-for-bit what
//     an unbounded recording would have shown from that point.
//   - window-size-monotone: a window large enough to never evict is the
//     unbounded stream — its salvaged bundle is byte-identical — and a
//     smaller window never costs more stream bytes than a larger one.
func checkWindowed(prog *isa.Program, cfg machine.Config) []PropertyResult {
	var out []PropertyResult
	add := func(prop string, err error) {
		pr := PropertyResult{Property: prop}
		if err != nil {
			pr.Err = err.Error()
		}
		out = append(out, pr)
	}

	// Same low cadence as the parallel-replay property, so even short
	// conformance workloads cross several checkpoints and actually evict.
	cfg.CheckpointEveryInstrs = 500
	var bufU, bufW, bufM bytes.Buffer
	full, err := core.StreamRecord(prog, cfg, &bufU)
	if err == nil {
		wcfg := cfg
		wcfg.RetainCheckpoints = 2
		_, err = core.StreamRecord(prog, wcfg, &bufW)
	}
	if err == nil {
		mcfg := cfg
		mcfg.RetainCheckpoints = 1 << 30
		_, err = core.StreamRecord(prog, mcfg, &bufM)
	}
	if err != nil {
		err = fmt.Errorf("windowed recording failed: %w", err)
		add(PropWindowedTail, err)
		add(PropWindowMonotone, err)
		return out
	}

	add(PropWindowedTail, func() error {
		sw, err := core.SalvageStream(bufW.Bytes())
		if err != nil {
			return fmt.Errorf("salvage of clean windowed stream: %w", err)
		}
		wb := sw.Bundle
		if wb.Partial {
			return fmt.Errorf("clean windowed stream salvaged as partial")
		}
		j := len(full.IntervalCheckpoints) - len(wb.IntervalCheckpoints)
		if j < 0 {
			return fmt.Errorf("window kept %d checkpoints, unbounded recording has only %d",
				len(wb.IntervalCheckpoints), len(full.IntervalCheckpoints))
		}
		ref := full
		if base, evicted := sw.WindowBase(); evicted {
			if j == 0 {
				return fmt.Errorf("window evicted history yet kept all %d checkpoints",
					len(full.IntervalCheckpoints))
			}
			if want := full.IntervalCheckpoints[j].RetiredAt; base != want {
				return fmt.Errorf("window base at %d retired instructions, unbounded checkpoint %d is at %d",
					base, j, want)
			}
			if ref, err = core.TailAt(full, j); err != nil {
				return fmt.Errorf("tail of unbounded recording at checkpoint %d: %w", j, err)
			}
		} else if j != 0 {
			return fmt.Errorf("window dropped %d checkpoints without reporting a base", j)
		}
		for t := range ref.ChunkLogs {
			if !bytes.Equal(wb.ChunkLogs[t].Marshal(chunk.Fixed{}), ref.ChunkLogs[t].Marshal(chunk.Fixed{})) {
				return fmt.Errorf("thread %d chunk log differs from unbounded tail", t)
			}
		}
		if !bytes.Equal(capo.MarshalRecords(wb.InputLog.Records), capo.MarshalRecords(ref.InputLog.Records)) {
			return fmt.Errorf("input log differs from unbounded tail")
		}
		rw, err := core.Replay(prog, wb)
		if err != nil {
			return fmt.Errorf("serial replay of windowed bundle: %w", err)
		}
		rt, err := core.Replay(prog, ref)
		if err != nil {
			return fmt.Errorf("serial replay of unbounded tail: %w", err)
		}
		if rw.MemChecksum != rt.MemChecksum || !bytes.Equal(rw.Output, rt.Output) || rw.Steps != rt.Steps {
			return fmt.Errorf("windowed replay (checksum %#x, %d bytes out, %d steps) != tail replay (%#x, %d, %d)",
				rw.MemChecksum, len(rw.Output), rw.Steps, rt.MemChecksum, len(rt.Output), rt.Steps)
		}
		for t := range rw.FinalContexts {
			if rw.FinalContexts[t] != rt.FinalContexts[t] {
				return fmt.Errorf("thread %d final context differs from tail replay", t)
			}
		}
		// Parallel replay of the windowed bundle partitions from the
		// window base at the retained interior checkpoints.
		pw, err := core.ReplayWorkers(prog, wb, 4)
		if err != nil {
			return fmt.Errorf("parallel replay from window base: %w", err)
		}
		if pw.MemChecksum != rw.MemChecksum || !bytes.Equal(pw.Output, rw.Output) || pw.Steps != rw.Steps {
			return fmt.Errorf("parallel replay from window base diverges from serial")
		}
		if err := core.Verify(wb, pw); err != nil {
			return fmt.Errorf("windowed bundle fails verification: %w", err)
		}
		return nil
	}())

	add(PropWindowMonotone, func() error {
		su, err := core.SalvageStream(bufU.Bytes())
		if err != nil {
			return fmt.Errorf("salvage of unbounded stream: %w", err)
		}
		sm, err := core.SalvageStream(bufM.Bytes())
		if err != nil {
			return fmt.Errorf("salvage of never-evicting windowed stream: %w", err)
		}
		if !su.Report.Complete || !sm.Report.Complete {
			return fmt.Errorf("clean streams salvaged as incomplete (unbounded %v, windowed %v)",
				su.Report.Complete, sm.Report.Complete)
		}
		if _, evicted := sm.WindowBase(); evicted {
			return fmt.Errorf("never-evicting window reports an evicted base")
		}
		if !bytes.Equal(su.Bundle.Marshal(), sm.Bundle.Marshal()) {
			return fmt.Errorf("never-evicting window salvages to a different bundle than the unbounded stream")
		}
		if bufW.Len() > bufM.Len() {
			return fmt.Errorf("K=2 window wrote %d stream bytes, larger window wrote %d",
				bufW.Len(), bufM.Len())
		}
		return nil
	}())

	return out
}

// checkRaceExpectation runs the offline race detector against workloads
// with a declared race status (Spec.RaceExpectation): a "racy" workload
// must yield at least one confirmed race, a "racefree" one exactly zero.
// The conformance recording is made without signature capture, so the
// property records its own capture-enabled bundle under the same config.
// Returns nil for unclassified workloads (including fuzz programs).
func checkRaceExpectation(name string, prog *isa.Program, cfg machine.Config) *PropertyResult {
	spec, ok := workload.ByName(name)
	if !ok || spec.RaceExpectation == "" {
		return nil
	}
	pr := &PropertyResult{Property: PropRaceExpectation}
	err := func() error {
		cfg.CaptureSignatures = true
		rec, err := core.Record(prog, cfg)
		if err != nil {
			return fmt.Errorf("signature-capture recording failed: %w", err)
		}
		rep, err := races.Detect(prog, rec)
		if err != nil {
			return err
		}
		switch spec.RaceExpectation {
		case "racy":
			if len(rep.Races) == 0 {
				return fmt.Errorf("racy workload: %d candidate pairs but no confirmed races",
					len(rep.Candidates))
			}
		case "racefree":
			if len(rep.Races) != 0 {
				return fmt.Errorf("race-free workload: %d confirmed races (first: %+v)",
					len(rep.Races), rep.Races[0])
			}
		default:
			return fmt.Errorf("unknown race expectation %q", spec.RaceExpectation)
		}
		return nil
	}()
	if err != nil {
		pr.Err = err.Error()
	}
	return pr
}
