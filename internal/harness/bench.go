package harness

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/ingest"
	"repro/internal/isa"
	"repro/internal/races"
	"repro/internal/workload"
)

// BenchResult is one workload's measured recording throughput —
// simulated instructions retired per second of host wall time while
// recording with full logging enabled — plus its allocation profile:
// heap allocations and bytes per measured operation (one recording,
// screening, replay or codec-round-trip run).
type BenchResult struct {
	Workload     string  `json:"workload"`
	Threads      int     `json:"threads"`
	Cores        int     `json:"cores"`
	Instrs       uint64  `json:"instrs_per_run"`
	InstrsPerSec float64 `json:"instrs_per_sec"`
	AllocsPerOp  uint64  `json:"allocs_per_op"`
	BytesPerOp   uint64  `json:"bytes_per_op"`
	// StreamBytes is the recording's on-disk size, set only by stream
	// benchmarks (flight:window). For a windowed recording it is the
	// steady-state footprint the retention guard bounds.
	StreamBytes uint64 `json:"stream_bytes,omitempty"`
}

// BaselineWorkloads is the committed baseline's workload set; the guard
// measures exactly these. codec:counter times steady-state v1 bundle
// decoding and codec:v2 the same recording through the v2 wire format,
// so the baseline pins the wire layer's allocation profile for both
// versions; ingest:fanin pushes a 64-uploader fleet through a loopback
// ingest server, so it pins the service path end to end (framing,
// sharding, store, verification).
var BaselineWorkloads = []string{"counter", "ioheavy", "repcopy", "screen:racy", "replay:par", "screen:par", "replay:dist", "screen:dist", "codec:counter", "codec:v2", "flight:window", "ingest:fanin"}

// allocMeter samples the runtime's allocation counters around a measured
// loop. The harness is library code, so it cannot use testing.B's
// ReportAllocs; ReadMemStats deltas give the same Mallocs/TotalAlloc
// numbers.
type allocMeter struct{ before runtime.MemStats }

func (m *allocMeter) start() {
	runtime.GC()
	runtime.ReadMemStats(&m.before)
}

func (m *allocMeter) stop(res *BenchResult, ops int) {
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if ops < 1 {
		ops = 1
	}
	res.AllocsPerOp = (after.Mallocs - m.before.Mallocs) / uint64(ops)
	res.BytesPerOp = (after.TotalAlloc - m.before.TotalAlloc) / uint64(ops)
}

// Baseline is the committed reference point the regression guard
// compares against (BENCH_baseline.json).
type Baseline struct {
	// Note records how the numbers were produced.
	Note    string        `json:"note"`
	Results []BenchResult `json:"results"`
	// Shootout is the serialization shootout over the ioheavy workload:
	// every bundle codec (v1, v2 raw/compressed, gob and JSON strawmen)
	// measured on the same recording. Informational — the regression
	// guard reads Results; the shootout documents why v2 exists.
	Shootout []ShootoutResult `json:"shootout,omitempty"`
}

// MeasureRecordThroughput records the named workload runs times and
// returns the best observed throughput. Best-of damps scheduler noise;
// the guard's tolerance absorbs the rest.
func MeasureRecordThroughput(name string, threads, cores, runs int) (*BenchResult, error) {
	prog, err := buildProgram(name, threads)
	if err != nil {
		return nil, err
	}
	cfg := recordConfig(cores, threads, 1)
	if runs < 1 {
		runs = 1
	}
	res := &BenchResult{Workload: name, Threads: threads, Cores: cores}
	var meter allocMeter
	meter.start()
	for i := 0; i < runs; i++ {
		start := time.Now()
		rec, err := core.Record(prog, cfg)
		elapsed := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("harness: bench recording of %s failed: %w", name, err)
		}
		var instrs uint64
		for _, r := range rec.RetiredPerThread {
			instrs += r
		}
		res.Instrs = instrs
		if tput := float64(instrs) / elapsed.Seconds(); tput > res.InstrsPerSec {
			res.InstrsPerSec = tput
		}
	}
	meter.stop(res, runs)
	return res, nil
}

// MeasureScreenThroughput records the named workload once with
// signature capture, then times the race detector's screening phase over
// that recording runs times, on the given worker count (0 or 1: serial).
// Throughput is recorded instructions screened per second of host wall
// time, so the number is comparable to the recording benchmarks: how
// fast the offline pass chews through a recording relative to its
// execution size.
func MeasureScreenThroughput(name string, threads, cores, workers, runs int) (*BenchResult, error) {
	prog, err := buildProgram(name, threads)
	if err != nil {
		return nil, err
	}
	cfg := recordConfig(cores, threads, 1)
	cfg.CaptureSignatures = true
	rec, err := core.Record(prog, cfg)
	if err != nil {
		return nil, fmt.Errorf("harness: bench recording of %s failed: %w", name, err)
	}
	var instrs uint64
	for _, r := range rec.RetiredPerThread {
		instrs += r
	}
	if runs < 1 {
		runs = 1
	}
	label := "screen:" + name
	if workers > 1 {
		label = "screen:par"
	}
	res := &BenchResult{Workload: label, Threads: threads, Cores: cores, Instrs: instrs}
	var meter allocMeter
	meter.start()
	for i := 0; i < runs; i++ {
		start := time.Now()
		if _, err := races.ScreenWorkers(rec, workers); err != nil {
			return nil, fmt.Errorf("harness: bench screening of %s failed: %w", name, err)
		}
		if tput := float64(instrs) / time.Since(start).Seconds(); tput > res.InstrsPerSec {
			res.InstrsPerSec = tput
		}
	}
	meter.stop(res, runs)
	return res, nil
}

// benchReplayIters sizes the replay benchmark's counter workload, and
// benchReplayCheckpointEvery its flight-recorder cadence — together they
// yield a recording of a dozen-plus intervals, enough for a 4-worker
// pool to show its speedup over serial replay.
const (
	benchReplayIters           = 50000
	benchReplayCheckpointEvery = 50000
)

// MeasureReplayThroughput records one large checkpointed counter run and
// times core.ReplayWorkers over it runs times on the given worker count
// (0 or 1: serial interval-free replay; >1: checkpoint-partitioned
// parallel replay). Throughput is recorded instructions replayed per
// second of host wall time.
func MeasureReplayThroughput(threads, cores, workers, runs int) (*BenchResult, error) {
	prog := workload.Counter(benchReplayIters, threads)
	cfg := recordConfig(cores, threads, 1)
	cfg.CheckpointEveryInstrs = benchReplayCheckpointEvery
	rec, err := core.Record(prog, cfg)
	if err != nil {
		return nil, fmt.Errorf("harness: bench recording for replay failed: %w", err)
	}
	var instrs uint64
	for _, r := range rec.RetiredPerThread {
		instrs += r
	}
	if runs < 1 {
		runs = 1
	}
	label := "replay:serial"
	if workers > 1 {
		label = "replay:par"
	}
	res := &BenchResult{Workload: label, Threads: threads, Cores: cores, Instrs: instrs}
	var meter allocMeter
	meter.start()
	for i := 0; i < runs; i++ {
		start := time.Now()
		if _, err := core.ReplayWorkers(prog, rec, workers); err != nil {
			return nil, fmt.Errorf("harness: bench replay failed: %w", err)
		}
		if tput := float64(instrs) / time.Since(start).Seconds(); tput > res.InstrsPerSec {
			res.InstrsPerSec = tput
		}
	}
	meter.stop(res, runs)
	return res, nil
}

// benchDistWorkers is the loopback fleet size behind the replay:dist
// and screen:dist baselines — two in-process workers, the smallest
// fleet where distribution is real.
const benchDistWorkers = 2

// MeasureDistThroughput times the fleet dispatch path end to end: a
// loopback broker server, benchDistWorkers in-process workers, and a
// client shipping per-interval replay jobs (kind "replay") or
// signature-screening blocks (kind "screen") through them — upload,
// job framing, bundle fetch and result chunking included. Throughput is
// recorded instructions processed per second of host wall time, so the
// dispatch tax is directly readable against replay:par and screen:par.
func MeasureDistThroughput(kind string, threads, cores, runs int) (*BenchResult, error) {
	// Fleet workers re-derive the program from the bundle's manifest
	// name, so this bench must record a catalogue workload as-is — a
	// custom-sized variant sharing a catalogue name would silently
	// rebuild differently on the worker (and be caught as divergence).
	cfg := recordConfig(cores, threads, 1)
	var prog *isa.Program
	var err error
	switch kind {
	case "replay":
		if prog, err = buildProgram("counter", threads); err != nil {
			return nil, err
		}
		cfg.CheckpointEveryInstrs = 2000 // a dozen-plus intervals to ship
	case "screen":
		if prog, err = buildProgram("racy", threads); err != nil {
			return nil, err
		}
		cfg.CaptureSignatures = true
	default:
		return nil, fmt.Errorf("harness: unknown dist bench kind %q", kind)
	}
	rec, err := core.Record(prog, cfg)
	if err != nil {
		return nil, fmt.Errorf("harness: bench recording for %s:dist failed: %w", kind, err)
	}
	var instrs uint64
	for _, r := range rec.RetiredPerThread {
		instrs += r
	}
	dir, err := os.MkdirTemp("", "quickrec-dist-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	scfg := ingest.DefaultConfig()
	scfg.StoreDir = dir
	srv, err := ingest.NewServer(scfg)
	if err != nil {
		return nil, err
	}
	go srv.Serve()
	defer srv.Close()
	for i := 0; i < benchDistWorkers; i++ {
		go (&fleet.Worker{Addr: srv.Addr(), Slots: 2}).Run()
	}
	client, err := fleet.Dial(srv.Addr())
	if err != nil {
		return nil, err
	}
	defer client.Close()

	if runs < 1 {
		runs = 1
	}
	res := &BenchResult{Workload: kind + ":dist", Threads: threads, Cores: cores, Instrs: instrs}
	var meter allocMeter
	meter.start()
	for i := 0; i < runs; i++ {
		start := time.Now()
		switch kind {
		case "replay":
			_, err = client.Replay(prog, rec)
		case "screen":
			var digest string
			if digest, err = client.Upload(rec); err == nil {
				_, err = races.ScreenExec(rec, client, digest)
			}
		}
		if err != nil {
			return nil, fmt.Errorf("harness: bench %s:dist failed: %w", kind, err)
		}
		if tput := float64(instrs) / time.Since(start).Seconds(); tput > res.InstrsPerSec {
			res.InstrsPerSec = tput
		}
	}
	meter.stop(res, runs)
	return res, nil
}

// benchWindowRequests sizes the flight-recorder benchmark's server
// workload, benchWindowCheckpointEvery its checkpoint cadence and
// benchWindowRetain its retention window — together they yield a run
// long enough to evict several intervals, so the measured stream is the
// window's steady-state footprint rather than a growing prefix.
const (
	benchWindowRequests        = 96
	benchWindowCheckpointEvery = 20000
	benchWindowRetain          = 4
)

// MeasureWindowThroughput records the long-running request-server
// workload through a K-interval flight-recorder window runs times.
// Throughput is windowed-recording instructions per second of host wall
// time (comparable to the plain recording benchmarks: the delta is the
// ring's buffering overhead), and StreamBytes is the rendered window's
// on-disk size — the fixed steady-state cost the retention guard keeps
// from silently growing back into an unbounded log.
func MeasureWindowThroughput(threads, cores, runs int) (*BenchResult, error) {
	prog := workload.ReqServer(benchWindowRequests, 4, 16, threads)
	cfg := recordConfig(cores, threads, 1)
	cfg.CheckpointEveryInstrs = benchWindowCheckpointEvery
	cfg.RetainCheckpoints = benchWindowRetain
	if runs < 1 {
		runs = 1
	}
	res := &BenchResult{Workload: "flight:window", Threads: threads, Cores: cores}
	var meter allocMeter
	meter.start()
	for i := 0; i < runs; i++ {
		var buf bytes.Buffer
		start := time.Now()
		rec, err := core.StreamRecord(prog, cfg, &buf)
		elapsed := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("harness: bench windowed recording failed: %w", err)
		}
		var instrs uint64
		for _, r := range rec.RetiredPerThread {
			instrs += r
		}
		res.Instrs = instrs
		res.StreamBytes = uint64(buf.Len())
		if tput := float64(instrs) / elapsed.Seconds(); tput > res.InstrsPerSec {
			res.InstrsPerSec = tput
		}
	}
	meter.stop(res, runs)
	return res, nil
}

// benchFaninUploaders is the ingest benchmark's fleet size, and
// benchFaninStreams how many distinct seed-variant recordings the fleet
// uploads (content addressing deduplicates identical uploads, so
// distinct streams keep the store and verifier pool honest).
const (
	benchFaninUploaders = 64
	benchFaninStreams   = 4
)

// MeasureIngestFanin records benchFaninStreams seed-variant counter
// workloads, then times a benchFaninUploaders-strong uploader fleet
// pushing them through a loopback ingest server — framing, credit flow
// control, tenant sharding, content-addressed store and background
// verification included; a run only counts once every stored bundle's
// verdict is published. Throughput is recorded instructions ingested
// and verified per second of host wall time; StreamBytes is the bytes
// the fleet pushed per run. The measurement doubles as a correctness
// gate: any lost, failed or non-accepted upload fails the bench.
func MeasureIngestFanin(threads, cores, runs int) (*BenchResult, error) {
	var streams [][]byte
	distinct := make(map[string]bool)
	var instrsPerStream []uint64
	for s := 0; s < benchFaninStreams; s++ {
		data, err := ingest.RecordWorkloadStream("counter", threads, uint64(s+1))
		if err != nil {
			return nil, err
		}
		sv, err := core.SalvageStream(data)
		if err != nil {
			return nil, fmt.Errorf("harness: bench ingest stream did not salvage: %w", err)
		}
		var instrs uint64
		for _, r := range sv.Bundle.RetiredPerThread {
			instrs += r
		}
		streams = append(streams, data)
		instrsPerStream = append(instrsPerStream, instrs)
		sum := sha256.Sum256(data)
		distinct[hex.EncodeToString(sum[:])] = true
	}
	var instrs, pushedBytes uint64
	for i := 0; i < benchFaninUploaders; i++ {
		instrs += instrsPerStream[i%benchFaninStreams]
		pushedBytes += uint64(len(streams[i%benchFaninStreams]))
	}
	if runs < 1 {
		runs = 1
	}
	res := &BenchResult{Workload: "ingest:fanin", Threads: threads, Cores: cores,
		Instrs: instrs, StreamBytes: pushedBytes}
	var meter allocMeter
	meter.start()
	for i := 0; i < runs; i++ {
		// A fresh store per run: re-running against a populated store would
		// measure the dedupe fast path instead of ingest.
		dir, err := os.MkdirTemp("", "quickrec-fanin-")
		if err != nil {
			return nil, err
		}
		cfg := ingest.DefaultConfig()
		cfg.StoreDir = dir
		srv, err := ingest.NewServer(cfg)
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		go srv.Serve()
		start := time.Now()
		lg, err := ingest.Loadgen(ingest.LoadgenConfig{
			Addr:       srv.Addr(),
			Uploaders:  benchFaninUploaders,
			UploadsPer: 1,
			Tenants:    []string{"bench-0", "bench-1", "bench-2", "bench-3"},
			Streams:    streams,
			Attempts:   5,
			Backoff:    10 * time.Millisecond,
		})
		if err == nil {
			srv.WaitIdle()
		}
		elapsed := time.Since(start)
		var verr error
		if err == nil {
			verr = checkFaninRun(srv, lg, distinct)
		}
		srv.Close()
		os.RemoveAll(dir)
		if err != nil {
			return nil, err
		}
		if verr != nil {
			return nil, verr
		}
		if tput := float64(instrs) / elapsed.Seconds(); tput > res.InstrsPerSec {
			res.InstrsPerSec = tput
		}
	}
	meter.stop(res, runs)
	return res, nil
}

// checkFaninRun asserts the ingest benchmark's correctness half: no
// lost or failed uploads, exactly the distinct bundles stored, every
// verdict accepted.
func checkFaninRun(srv *ingest.Server, lg *ingest.LoadgenResult, distinct map[string]bool) error {
	if lg.Failures > 0 {
		return fmt.Errorf("harness: ingest bench lost %d uploads", lg.Failures)
	}
	if lg.Uploads != benchFaninUploaders {
		return fmt.Errorf("harness: ingest bench acked %d of %d uploads", lg.Uploads, benchFaninUploaders)
	}
	stored, err := srv.Store().List()
	if err != nil {
		return err
	}
	if len(stored) != len(distinct) {
		return fmt.Errorf("harness: ingest bench stored %d bundles, want %d distinct", len(stored), len(distinct))
	}
	for _, d := range stored {
		if !distinct[d] {
			return fmt.Errorf("harness: ingest bench stored unexpected bundle %s", d)
		}
	}
	ctrs := srv.Counters()
	for _, st := range []ingest.VerdictStatus{ingest.StatusTorn, ingest.StatusDiverged, ingest.StatusUnverifiable} {
		if n := ctrs.VerdictsBy[st]; n != 0 {
			return fmt.Errorf("harness: ingest bench published %d %s verdicts", n, st)
		}
	}
	if ctrs.VerdictsBy[ingest.StatusAccepted] == 0 {
		return fmt.Errorf("harness: ingest bench published no accepted verdicts")
	}
	return nil
}

// benchCodecDecodes is how many steady-state decodes one measured codec
// op covers; amortizing keeps the per-op timer noise below the decode
// cost being measured.
const benchCodecDecodes = 64

// MeasureCodecThroughput records the named workload once, encodes it in
// the given wire format, then times runs batches of steady-state
// decodes through one reused BundleDecoder — the same zero-copy path
// replay uses over an mmapped bundle file. Instrs is the recorded
// instruction count, so throughput reads as recorded instructions
// decoded per second; the allocation columns are the wire layer's
// scoreboard and should sit at ~0 once the decoder is warm.
func MeasureCodecThroughput(name string, threads, cores, runs int, format core.Format) (*BenchResult, error) {
	prog, err := buildProgram(name, threads)
	if err != nil {
		return nil, err
	}
	cfg := recordConfig(cores, threads, 1)
	rec, err := core.Record(prog, cfg)
	if err != nil {
		return nil, fmt.Errorf("harness: bench recording of %s failed: %w", name, err)
	}
	var instrs uint64
	for _, r := range rec.RetiredPerThread {
		instrs += r
	}
	if runs < 1 {
		runs = 1
	}
	rec.Format = format
	data := rec.Marshal()
	dec := &core.BundleDecoder{}
	// Warm decode: the first pass grows the decoder's reusable buffers;
	// the measured passes are the steady state.
	if _, err := dec.Decode(data); err != nil {
		return nil, fmt.Errorf("harness: bench codec decode of %s (%s) failed: %w", name, format, err)
	}
	res := &BenchResult{Workload: "codec:" + name, Threads: threads, Cores: cores, Instrs: instrs}
	var meter allocMeter
	meter.start()
	for i := 0; i < runs; i++ {
		start := time.Now()
		for j := 0; j < benchCodecDecodes; j++ {
			if _, err := dec.Decode(data); err != nil {
				return nil, fmt.Errorf("harness: bench codec decode of %s (%s) failed: %w", name, format, err)
			}
		}
		perDecode := time.Since(start).Seconds() / benchCodecDecodes
		if tput := float64(instrs) / perDecode; tput > res.InstrsPerSec {
			res.InstrsPerSec = tput
		}
	}
	meter.stop(res, runs*benchCodecDecodes)
	return res, nil
}

// measureWorkload dispatches a baseline entry: plain names bench
// recording throughput, "screen:<name>" benches the race detector's
// screening phase over a recording of <name>, "screen:par" the same
// phase for racy on a 4-worker pool, "replay:par" the
// checkpoint-partitioned parallel replay engine on 4 workers,
// "replay:dist"/"screen:dist" the same work shipped through a loopback
// worker fleet, "codec:<name>" steady-state v1 bundle decoding of
// <name>, and "codec:v2" the same counter recording through the v2 wire
// format.
func measureWorkload(name string, threads, cores, runs int) (*BenchResult, error) {
	switch name {
	case "replay:par":
		return MeasureReplayThroughput(threads, cores, 4, runs)
	case "screen:par":
		return MeasureScreenThroughput("racy", threads, cores, 4, runs)
	case "replay:dist":
		return MeasureDistThroughput("replay", threads, cores, runs)
	case "screen:dist":
		return MeasureDistThroughput("screen", threads, cores, runs)
	case "flight:window":
		return MeasureWindowThroughput(threads, cores, runs)
	case "ingest:fanin":
		return MeasureIngestFanin(threads, cores, runs)
	case "codec:v2":
		res, err := MeasureCodecThroughput("counter", threads, cores, runs, core.FormatAuto)
		if err == nil {
			res.Workload = "codec:v2"
		}
		return res, err
	}
	if rest, ok := strings.CutPrefix(name, "screen:"); ok {
		return MeasureScreenThroughput(rest, threads, cores, 0, runs)
	}
	if rest, ok := strings.CutPrefix(name, "codec:"); ok {
		return MeasureCodecThroughput(rest, threads, cores, runs, core.FormatV1)
	}
	return MeasureRecordThroughput(name, threads, cores, runs)
}

// WriteBaseline measures every listed workload and writes the baseline
// file the regression guard reads.
func WriteBaseline(path string, workloads []string, threads, cores, runs int) (*Baseline, error) {
	b := &Baseline{
		Note: fmt.Sprintf("best of %d record runs per workload, %d threads on %d cores; regenerate with QUICKREC_WRITE_BASELINE=1 go test ./internal/harness/ -run TestWriteBenchBaseline, or quickbench -baseline", runs, threads, cores),
	}
	for _, w := range workloads {
		r, err := measureWorkload(w, threads, cores, runs)
		if err != nil {
			return nil, err
		}
		b.Results = append(b.Results, *r)
	}
	shootout, err := MeasureShootout("ioheavy", threads, cores, runs)
	if err != nil {
		return nil, err
	}
	b.Shootout = shootout
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return b, os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadBaseline reads a baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("harness: corrupt baseline %s: %w", path, err)
	}
	return &b, nil
}

// CheckRegression compares a fresh measurement against the baseline and
// returns an error when throughput fell below (1 - tolerance) of it, or
// when allocations per op more than doubled. The allocation guard is
// deliberately loose: alloc counts are stable across machines and small
// drifts are routine, but only a structural regression — a dropped
// pooling or presizing path — doubles them.
func CheckRegression(base BenchResult, got *BenchResult, tolerance float64) error {
	floor := base.InstrsPerSec * (1 - tolerance)
	if got.InstrsPerSec < floor {
		return fmt.Errorf("harness: %s throughput regressed: %.0f instrs/s vs baseline %.0f (floor %.0f, tolerance %.0f%%)",
			base.Workload, got.InstrsPerSec, base.InstrsPerSec, floor, tolerance*100)
	}
	if base.AllocsPerOp > 0 && got.AllocsPerOp > 2*base.AllocsPerOp {
		return fmt.Errorf("harness: %s allocations regressed: %d allocs/op vs baseline %d (ceiling 2x)",
			base.Workload, got.AllocsPerOp, base.AllocsPerOp)
	}
	if base.BytesPerOp > 0 && got.BytesPerOp > 2*base.BytesPerOp {
		return fmt.Errorf("harness: %s allocated bytes regressed: %d B/op vs baseline %d (ceiling 2x)",
			base.Workload, got.BytesPerOp, base.BytesPerOp)
	}
	if base.StreamBytes > 0 && got.StreamBytes > 2*base.StreamBytes {
		return fmt.Errorf("harness: %s stream grew: %d bytes on disk vs baseline %d (ceiling 2x) — retention window leaking?",
			base.Workload, got.StreamBytes, base.StreamBytes)
	}
	return nil
}
