package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/races"
	"repro/internal/workload"
)

// BenchResult is one workload's measured recording throughput:
// simulated instructions retired per second of host wall time while
// recording with full logging enabled.
type BenchResult struct {
	Workload     string  `json:"workload"`
	Threads      int     `json:"threads"`
	Cores        int     `json:"cores"`
	Instrs       uint64  `json:"instrs_per_run"`
	InstrsPerSec float64 `json:"instrs_per_sec"`
}

// Baseline is the committed reference point the regression guard
// compares against (BENCH_baseline.json).
type Baseline struct {
	// Note records how the numbers were produced.
	Note    string        `json:"note"`
	Results []BenchResult `json:"results"`
}

// MeasureRecordThroughput records the named workload runs times and
// returns the best observed throughput. Best-of damps scheduler noise;
// the guard's tolerance absorbs the rest.
func MeasureRecordThroughput(name string, threads, cores, runs int) (*BenchResult, error) {
	prog, err := buildProgram(name, threads)
	if err != nil {
		return nil, err
	}
	cfg := recordConfig(cores, threads, 1)
	if runs < 1 {
		runs = 1
	}
	res := &BenchResult{Workload: name, Threads: threads, Cores: cores}
	for i := 0; i < runs; i++ {
		start := time.Now()
		rec, err := core.Record(prog, cfg)
		elapsed := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("harness: bench recording of %s failed: %w", name, err)
		}
		var instrs uint64
		for _, r := range rec.RetiredPerThread {
			instrs += r
		}
		res.Instrs = instrs
		if tput := float64(instrs) / elapsed.Seconds(); tput > res.InstrsPerSec {
			res.InstrsPerSec = tput
		}
	}
	return res, nil
}

// MeasureScreenThroughput records the named workload once with
// signature capture, then times the race detector's screening phase over
// that recording runs times, on the given worker count (0 or 1: serial).
// Throughput is recorded instructions screened per second of host wall
// time, so the number is comparable to the recording benchmarks: how
// fast the offline pass chews through a recording relative to its
// execution size.
func MeasureScreenThroughput(name string, threads, cores, workers, runs int) (*BenchResult, error) {
	prog, err := buildProgram(name, threads)
	if err != nil {
		return nil, err
	}
	cfg := recordConfig(cores, threads, 1)
	cfg.CaptureSignatures = true
	rec, err := core.Record(prog, cfg)
	if err != nil {
		return nil, fmt.Errorf("harness: bench recording of %s failed: %w", name, err)
	}
	var instrs uint64
	for _, r := range rec.RetiredPerThread {
		instrs += r
	}
	if runs < 1 {
		runs = 1
	}
	label := "screen:" + name
	if workers > 1 {
		label = "screen:par"
	}
	res := &BenchResult{Workload: label, Threads: threads, Cores: cores, Instrs: instrs}
	for i := 0; i < runs; i++ {
		start := time.Now()
		if _, err := races.ScreenWorkers(rec, workers); err != nil {
			return nil, fmt.Errorf("harness: bench screening of %s failed: %w", name, err)
		}
		if tput := float64(instrs) / time.Since(start).Seconds(); tput > res.InstrsPerSec {
			res.InstrsPerSec = tput
		}
	}
	return res, nil
}

// benchReplayIters sizes the replay benchmark's counter workload, and
// benchReplayCheckpointEvery its flight-recorder cadence — together they
// yield a recording of a dozen-plus intervals, enough for a 4-worker
// pool to show its speedup over serial replay.
const (
	benchReplayIters           = 50000
	benchReplayCheckpointEvery = 50000
)

// MeasureReplayThroughput records one large checkpointed counter run and
// times core.ReplayWorkers over it runs times on the given worker count
// (0 or 1: serial interval-free replay; >1: checkpoint-partitioned
// parallel replay). Throughput is recorded instructions replayed per
// second of host wall time.
func MeasureReplayThroughput(threads, cores, workers, runs int) (*BenchResult, error) {
	prog := workload.Counter(benchReplayIters, threads)
	cfg := recordConfig(cores, threads, 1)
	cfg.CheckpointEveryInstrs = benchReplayCheckpointEvery
	rec, err := core.Record(prog, cfg)
	if err != nil {
		return nil, fmt.Errorf("harness: bench recording for replay failed: %w", err)
	}
	var instrs uint64
	for _, r := range rec.RetiredPerThread {
		instrs += r
	}
	if runs < 1 {
		runs = 1
	}
	label := "replay:serial"
	if workers > 1 {
		label = "replay:par"
	}
	res := &BenchResult{Workload: label, Threads: threads, Cores: cores, Instrs: instrs}
	for i := 0; i < runs; i++ {
		start := time.Now()
		if _, err := core.ReplayWorkers(prog, rec, workers); err != nil {
			return nil, fmt.Errorf("harness: bench replay failed: %w", err)
		}
		if tput := float64(instrs) / time.Since(start).Seconds(); tput > res.InstrsPerSec {
			res.InstrsPerSec = tput
		}
	}
	return res, nil
}

// measureWorkload dispatches a baseline entry: plain names bench
// recording throughput, "screen:<name>" benches the race detector's
// screening phase over a recording of <name>, "screen:par" the same
// phase for racy on a 4-worker pool, and "replay:par" the
// checkpoint-partitioned parallel replay engine on 4 workers.
func measureWorkload(name string, threads, cores, runs int) (*BenchResult, error) {
	switch name {
	case "replay:par":
		return MeasureReplayThroughput(threads, cores, 4, runs)
	case "screen:par":
		return MeasureScreenThroughput("racy", threads, cores, 4, runs)
	}
	if rest, ok := strings.CutPrefix(name, "screen:"); ok {
		return MeasureScreenThroughput(rest, threads, cores, 0, runs)
	}
	return MeasureRecordThroughput(name, threads, cores, runs)
}

// WriteBaseline measures every listed workload and writes the baseline
// file the regression guard reads.
func WriteBaseline(path string, workloads []string, threads, cores, runs int) (*Baseline, error) {
	b := &Baseline{
		Note: fmt.Sprintf("best of %d record runs per workload, %d threads on %d cores; regenerate with QUICKREC_WRITE_BASELINE=1 go test ./internal/harness/ -run TestWriteBenchBaseline", runs, threads, cores),
	}
	for _, w := range workloads {
		r, err := measureWorkload(w, threads, cores, runs)
		if err != nil {
			return nil, err
		}
		b.Results = append(b.Results, *r)
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return b, os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadBaseline reads a baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("harness: corrupt baseline %s: %w", path, err)
	}
	return &b, nil
}

// CheckRegression compares a fresh measurement against the baseline and
// returns an error when throughput fell below (1 - tolerance) of it.
func CheckRegression(base BenchResult, got *BenchResult, tolerance float64) error {
	floor := base.InstrsPerSec * (1 - tolerance)
	if got.InstrsPerSec < floor {
		return fmt.Errorf("harness: %s throughput regressed: %.0f instrs/s vs baseline %.0f (floor %.0f, tolerance %.0f%%)",
			base.Workload, got.InstrsPerSec, base.InstrsPerSec, floor, tolerance*100)
	}
	return nil
}
