package harness

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/ingest"
	"repro/internal/races"
	"repro/internal/workload"
)

// buildQuickrecd compiles the daemon binary into a test temp dir so the
// e2e test runs real worker processes, not goroutines.
func buildQuickrecd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "quickrecd")
	out, err := exec.Command("go", "build", "-o", bin, "repro/cmd/quickrecd").CombinedOutput()
	if err != nil {
		t.Fatalf("build quickrecd: %v\n%s", err, out)
	}
	return bin
}

// TestFleetMultiProcessE2E is the distributed-analysis conformance cell
// with real process isolation: an in-process broker server, two
// quickrecd worker processes attached to it, a distributed replay
// checked bit-for-bit against a local one — then one worker killed with
// SIGKILL mid-race-detection, whose in-flight jobs must be re-dispatched
// to the survivor without changing a byte of the report.
func TestFleetMultiProcessE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	bin := buildQuickrecd(t)

	cfg := ingest.DefaultConfig()
	cfg.StoreDir = t.TempDir()
	cfg.JobTimeout = 2 * time.Second
	srv, err := ingest.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	workers := make([]*exec.Cmd, 2)
	for i := range workers {
		w := exec.Command(bin, "worker", "-addr", srv.Addr(), "-slots", "2")
		if err := w.Start(); err != nil {
			t.Fatalf("start worker %d: %v", i, err)
		}
		workers[i] = w
		t.Cleanup(func() {
			w.Process.Kill()
			w.Wait()
		})
	}

	spec, ok := workload.ByName("racy")
	if !ok {
		t.Fatal("racy workload missing from catalogue")
	}
	prog := spec.Build(3)
	mcfg := recordConfig(2, 3, 5)
	mcfg.CheckpointEveryInstrs = 500
	mcfg.CaptureSignatures = true
	rec, err := core.Record(prog, mcfg)
	if err != nil {
		t.Fatalf("record: %v", err)
	}

	client, err := fleet.Dial(srv.Addr())
	if err != nil {
		t.Fatalf("dial fleet: %v", err)
	}
	defer client.Close()

	// Phase 1: both worker processes healthy; the distributed replay is
	// bit-identical to the local one and passes verification.
	got, err := client.Replay(prog, rec)
	if err != nil {
		t.Fatalf("distributed replay: %v", err)
	}
	want, err := core.Replay(prog, rec)
	if err != nil {
		t.Fatalf("local replay: %v", err)
	}
	if got.MemChecksum != want.MemChecksum || !bytes.Equal(got.Output, want.Output) ||
		got.Steps != want.Steps {
		t.Fatalf("distributed replay diverged: sum %#x/%#x, %d/%d steps",
			got.MemChecksum, want.MemChecksum, got.Steps, want.Steps)
	}
	if err := core.Verify(rec, got); err != nil {
		t.Fatalf("distributed replay fails verification: %v", err)
	}

	// Phase 2: SIGKILL one worker while race detection is in flight. Its
	// connection teardown requeues whatever it held; the surviving
	// process finishes, and the report matches the local detector's.
	killed := make(chan error, 1)
	go func() {
		time.Sleep(10 * time.Millisecond)
		killed <- workers[0].Process.Kill()
	}()
	gotRep, err := client.Races(prog, rec)
	if err != nil {
		t.Fatalf("distributed races with dying worker: %v", err)
	}
	if err := <-killed; err != nil {
		t.Fatalf("kill worker 0: %v", err)
	}
	wantRep, err := races.Detect(prog, rec)
	if err != nil {
		t.Fatalf("local races: %v", err)
	}
	if !reflect.DeepEqual(wantRep, gotRep) {
		t.Errorf("race reports differ after worker kill:\nfleet: %+v\nlocal: %+v", gotRep, wantRep)
	}
	if len(wantRep.Races) == 0 {
		t.Error("racy workload confirmed no races — test is vacuous")
	}
}
