// Package harness is the conformance and fault-injection subsystem: it
// turns the record→replay→verify contract into a checked invariant at
// scale.
//
// The paper's core claim is determinism — Capo3 + MRR logs replay a
// multithreaded execution byte-for-byte — and its deployability hinges on
// replay never *silently* diverging. The harness attacks that claim from
// two sides:
//
//   - Metamorphic properties over the workload catalogue and randomly
//     generated programs: recording is deterministic (record twice, get
//     identical bytes), replay reproduces the recorded final state,
//     recordings survive serialization, and replay itself is
//     deterministic.
//
//   - Systematic single-fault injection into serialized chunk logs and
//     Capo input logs: bit flips, truncations, record drops, duplicates,
//     reorderings, chunk-counter lies, header length-field lies and
//     payload corruption. Every *material* fault must surface as an
//     explicit error at one of three detection points — decode, replay
//     (*replay.DivergenceError) or verify — and never as a silent
//     replay success. A mutation that provably does not change the
//     execution (MRR logs are conservative over-approximations, so some
//     perturbations are legal alternative serializations) is classified
//     as benign by replaying it and comparing against the *original*
//     reference state.
//
// The matrix runner sweeps workloads × core counts × fault classes and
// produces a triage Report; cmd/quickconform is its CLI.
package harness

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/replay"
	"repro/internal/workload"
)

// Config parameterises a conformance run.
type Config struct {
	// Workloads names catalogue workloads; an entry "fuzz:<seed>"
	// generates a random program from that seed instead.
	Workloads []string
	// Cores lists the core counts to sweep.
	Cores []int
	// Threads is the thread count for every workload (default 4).
	Threads int
	// Faults lists the fault classes to inject (default AllFaults).
	Faults []FaultClass
	// MutationsPerClass is the number of material faults to place per
	// (workload, cores, class) cell (default 12).
	MutationsPerClass int
	// RerollBudget bounds the attempts to find a material, non-benign
	// injection site for each mutation slot (default 24).
	RerollBudget int
	// Seed drives both the recording schedules and the injection sites.
	// Every value is honored, including 0 — zero is a valid seed, not a
	// request for the default (DefaultConfig uses 1).
	Seed uint64
	// SkipMetamorphic disables the metamorphic property pass.
	SkipMetamorphic bool
}

// DefaultConfig is the acceptance matrix: four catalogue workloads plus
// a generated program, swept over 1, 2 and 4 cores under every fault
// class.
func DefaultConfig() Config {
	return Config{
		Workloads:         []string{"counter", "pingpong", "ioheavy", "repcopy", "fuzz:11"},
		Cores:             []int{1, 2, 4},
		Threads:           4,
		Faults:            AllFaults(),
		MutationsPerClass: 12,
		RerollBudget:      24,
		Seed:              1,
	}
}

func (c *Config) fill() {
	d := DefaultConfig()
	if len(c.Workloads) == 0 {
		c.Workloads = d.Workloads
	}
	if len(c.Cores) == 0 {
		c.Cores = d.Cores
	}
	if c.Threads <= 0 {
		c.Threads = d.Threads
	}
	if len(c.Faults) == 0 {
		c.Faults = d.Faults
	}
	if c.MutationsPerClass <= 0 {
		c.MutationsPerClass = d.MutationsPerClass
	}
	if c.RerollBudget <= 0 {
		c.RerollBudget = d.RerollBudget
	}
	// Seed is deliberately not defaulted: 0 is a valid seed, and silently
	// substituting 1 would make two distinct configurations alias.
}

// buildProgram resolves a workload name — catalogue entry or
// "fuzz:<seed>" — into a program.
func buildProgram(name string, threads int) (*isa.Program, error) {
	if rest, ok := strings.CutPrefix(name, "fuzz:"); ok {
		var seed uint64
		if _, err := fmt.Sscanf(rest, "%d", &seed); err != nil {
			return nil, fmt.Errorf("harness: bad fuzz workload %q: %w", name, err)
		}
		return workload.RandomProgram(seed, threads), nil
	}
	spec, ok := workload.ByName(name)
	if !ok {
		return nil, fmt.Errorf("harness: unknown workload %q", name)
	}
	return spec.Build(threads), nil
}

// recordConfig builds the machine configuration for one matrix cell.
func recordConfig(cores, threads int, seed uint64) machine.Config {
	cfg := machine.DefaultConfig()
	cfg.Mode = machine.ModeFull
	cfg.Cores = cores
	cfg.Threads = threads
	cfg.Seed = seed
	cfg.KernelSeed = seed + 1000
	if threads > cores {
		cfg.TimeSliceInstrs = 5000 // force preemption into the logs
	}
	return cfg
}

// Run executes the full conformance matrix and returns the triage
// report. The run itself only errors on misconfiguration (unknown
// workload, failed recording); conformance findings — silent divergences,
// metamorphic failures — are reported in the Report, and Report.OK()
// decides pass/fail.
func Run(cfg Config) (*Report, error) {
	cfg.fill()
	rep := &Report{Config: cfg}
	for _, name := range cfg.Workloads {
		prog, err := buildProgram(name, cfg.Threads)
		if err != nil {
			return nil, err
		}
		for _, cores := range cfg.Cores {
			if err := runCell(cfg, rep, name, prog, cores); err != nil {
				return nil, fmt.Errorf("harness: %s on %d cores: %w", name, cores, err)
			}
		}
	}
	return rep, nil
}

// runCell records one (workload, cores) point, checks the metamorphic
// properties, and sweeps every fault class against the recording.
func runCell(cfg Config, rep *Report, name string, prog *isa.Program, cores int) error {
	mcfg := recordConfig(cores, cfg.Threads, cfg.Seed)
	rec, err := core.Record(prog, mcfg)
	if err != nil {
		return fmt.Errorf("recording failed: %w", err)
	}
	if !cfg.SkipMetamorphic {
		for _, pr := range checkMetamorphic(prog, mcfg, rec) {
			rep.Meta = append(rep.Meta, MetaResult{
				Workload: name, Cores: cores, Property: pr.Property, Err: pr.Err,
			})
		}
		if pr := checkParallelReplay(prog, mcfg); pr != nil {
			rep.Meta = append(rep.Meta, MetaResult{
				Workload: name, Cores: cores, Property: pr.Property, Err: pr.Err,
			})
		}
		if pr := checkDistributed(prog, mcfg); pr != nil {
			rep.Meta = append(rep.Meta, MetaResult{
				Workload: name, Cores: cores, Property: pr.Property, Err: pr.Err,
			})
		}
		for _, pr := range checkWindowed(prog, mcfg) {
			rep.Meta = append(rep.Meta, MetaResult{
				Workload: name, Cores: cores, Property: pr.Property, Err: pr.Err,
			})
		}
		if pr := checkRaceExpectation(name, prog, mcfg); pr != nil {
			rep.Meta = append(rep.Meta, MetaResult{
				Workload: name, Cores: cores, Property: pr.Property, Err: pr.Err,
			})
		}
	}
	// One pristine replay bounds the step budget for mutated replays and
	// pins the reference the benign/silent classification compares against.
	rr, err := core.Replay(prog, rec)
	if err != nil {
		return fmt.Errorf("pristine replay failed: %w", err)
	}
	if err := core.Verify(rec, rr); err != nil {
		return fmt.Errorf("pristine verify failed: %w", err)
	}
	maxSteps := rr.Steps*4 + 100_000
	origKey := scheduleKey(rec)

	for ci, class := range cfg.Faults {
		m := &mutator{rng: cfg.Seed ^ hashCell(name, cores, ci)}
		cell := Cell{Workload: name, Cores: cores, Class: class}
		for slot := 0; slot < cfg.MutationsPerClass; slot++ {
			placed := false
			for attempt := 0; attempt < cfg.RerollBudget; attempt++ {
				out, detail := injectOnce(prog, rec, origKey, maxSteps, class, m)
				switch out {
				case OutcomeInert:
					continue // perturbation changed nothing semantically; new site
				case OutcomeBenign:
					cell.Benign++
					continue // legal alternative serialization; new site
				case OutcomeDecode:
					cell.Decode++
				case OutcomeReplay:
					cell.Replay++
				case OutcomeVerify:
					cell.Verify++
				case OutcomeSilent:
					cell.Silent++
					if len(cell.SilentExamples) < 4 {
						cell.SilentExamples = append(cell.SilentExamples, detail)
					}
				}
				cell.Injected++
				placed = true
				break
			}
			if !placed {
				cell.Unplaced++
			}
		}
		rep.Cells = append(rep.Cells, cell)
	}
	return nil
}

// hashCell derives a per-cell RNG stream from the matrix coordinates.
func hashCell(name string, cores, class int) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range []byte(name) {
		h = (h ^ uint64(b)) * 1099511628211
	}
	h = (h ^ uint64(cores)) * 1099511628211
	h = (h ^ uint64(class)) * 1099511628211
	return h
}

// scheduleKey projects a bundle onto its replay-relevant semantics: the
// deterministic global execution order (via replay.ScheduleOf) with the
// fields replay consumes, plus the bundle metadata and the reference
// state verification compares against. Two bundles with equal keys replay
// identically by construction; fields replay ignores (chunk termination
// reasons, signal numbers, record sequence numbers, raw timestamp values
// beyond their ordering) are deliberately excluded.
func scheduleKey(b *core.Bundle) []byte {
	var sb []byte
	app := func(vs ...uint64) {
		for _, v := range vs {
			sb = append(sb, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
				byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
		}
	}
	sb = append(sb, b.ProgramName...)
	app(uint64(b.Threads), b.StackWordsPerThread, boolU64(b.CountRepIterations), b.MemChecksum)
	sb = append(sb, b.Output...)
	for _, r := range b.RetiredPerThread {
		app(r)
	}
	for _, ctx := range b.FinalContexts {
		for _, r := range ctx.Regs {
			app(r)
		}
		app(uint64(ctx.PC), ctx.Retired, boolU64(ctx.Halted), boolU64(ctx.RepActive), ctx.RepDone)
	}
	in := replay.Input{
		Prog: nil, Threads: b.Threads, ChunkLogs: b.ChunkLogs, InputLog: b.InputLog,
	}
	for _, it := range replay.ScheduleOf(in) {
		if it.IsChunk {
			app(1, uint64(it.Thread), it.Entry.Size, it.Entry.RepResidue)
			continue
		}
		r := it.Rec
		app(2, uint64(it.Thread), uint64(r.Kind), r.Sysno, r.Ret, r.Addr,
			uint64(len(r.Data)), r.Retired, r.RepDone)
		sb = append(sb, r.Data...)
	}
	return sb
}

func boolU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
