package harness

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/capo"
	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/isa"
)

// ShootoutResult is one codec's row in the serialization shootout: how
// many bytes the codec spends per recording (and per thousand recorded
// instructions — the paper's log-growth unit), how fast it encodes and
// decodes, and how it compares to the v1 wire format. Modeled on the
// arpc serialization shootout: the same recording pushed through every
// candidate so the numbers are directly comparable.
type ShootoutResult struct {
	Codec          string  `json:"codec"`
	Workload       string  `json:"workload"`
	Bytes          uint64  `json:"bytes"`
	BytesPerKinstr float64 `json:"bytes_per_kinstr"`
	EncodeMBps     float64 `json:"encode_mb_s"`
	DecodeMBps     float64 `json:"decode_mb_s"`
	// RatioVsV1 is v1's encoded size divided by this codec's: >1 means
	// smaller than v1, <1 means the codec inflates the recording.
	RatioVsV1 float64 `json:"ratio_vs_v1"`
}

// shootoutCodec is one shootout candidate: a named encode/decode pair
// over a *core.Bundle. Decode must fully parse (it may alias the input,
// like the v2 mmap path does — that IS the measured design point).
type shootoutCodec struct {
	name   string
	encode func(*core.Bundle) ([]byte, error)
	decode func([]byte) error
}

// strawBundle is the stdlib strawmen's view of a recording: the same
// payload surface the wire formats serialize (logs, signatures, final
// state), minus the checkpoint sections the shootout workloads don't
// record. gob cannot encode the full Bundle — runtime-only fields reach
// types with no exported fields — and giving the strawmen a trimmed
// struct only flatters them.
type strawBundle struct {
	ProgramName         string
	Threads             int
	StackWordsPerThread uint64
	ChunkLogs           []*chunk.Log
	InputLog            *capo.InputLog
	SigLogs             [][]capo.SigPair
	CountRepIterations  bool
	Partial             bool
	MemChecksum         uint64
	Output              []byte
	FinalContexts       []isa.Context
	RetiredPerThread    []uint64
}

func strawView(b *core.Bundle) *strawBundle {
	return &strawBundle{
		ProgramName:         b.ProgramName,
		Threads:             b.Threads,
		StackWordsPerThread: b.StackWordsPerThread,
		ChunkLogs:           b.ChunkLogs,
		InputLog:            b.InputLog,
		SigLogs:             b.SigLogs,
		CountRepIterations:  b.CountRepIterations,
		Partial:             b.Partial,
		MemChecksum:         b.MemChecksum,
		Output:              b.Output,
		FinalContexts:       b.FinalContexts,
		RetiredPerThread:    b.RetiredPerThread,
	}
}

// shootoutCodecs builds the candidate list: the three bundle wire
// formats through the real encoder/decoder (the v1/v2 decoders reuse
// one BundleDecoder each, so they're measured on the steady-state
// zero-copy path), plus gob and JSON strawmen — the "just use the
// stdlib" baselines the custom format has to beat.
func shootoutCodecs() []shootoutCodec {
	formatCodec := func(name string, f core.Format) shootoutCodec {
		dec := &core.BundleDecoder{}
		return shootoutCodec{
			name: name,
			encode: func(b *core.Bundle) ([]byte, error) {
				saved := b.Format
				b.Format = f
				data := b.Marshal()
				b.Format = saved
				return data, nil
			},
			decode: func(data []byte) error {
				_, err := dec.Decode(data)
				return err
			},
		}
	}
	return []shootoutCodec{
		formatCodec("v1", core.FormatV1),
		formatCodec("v2-raw", core.FormatV2Raw),
		formatCodec("v2-lz", core.FormatV2LZ),
		{
			name: "gob",
			encode: func(b *core.Bundle) ([]byte, error) {
				var buf bytes.Buffer
				if err := gob.NewEncoder(&buf).Encode(strawView(b)); err != nil {
					return nil, err
				}
				return buf.Bytes(), nil
			},
			decode: func(data []byte) error {
				var b strawBundle
				return gob.NewDecoder(bytes.NewReader(data)).Decode(&b)
			},
		},
		{
			name: "json",
			encode: func(b *core.Bundle) ([]byte, error) {
				return json.Marshal(strawView(b))
			},
			decode: func(data []byte) error {
				var b strawBundle
				return json.Unmarshal(data, &b)
			},
		},
	}
}

// MeasureShootout records the named workload once, then pushes the
// recording through every shootout codec runs times, keeping each
// codec's best encode and decode throughput. The bytes column is exact
// (codecs are deterministic); the throughput columns are best-of-runs
// like the rest of the bench harness.
func MeasureShootout(name string, threads, cores, runs int) ([]ShootoutResult, error) {
	prog, err := buildProgram(name, threads)
	if err != nil {
		return nil, err
	}
	cfg := recordConfig(cores, threads, 1)
	rec, err := core.Record(prog, cfg)
	if err != nil {
		return nil, fmt.Errorf("harness: shootout recording of %s failed: %w", name, err)
	}
	var instrs uint64
	for _, r := range rec.RetiredPerThread {
		instrs += r
	}
	if runs < 1 {
		runs = 1
	}
	var out []ShootoutResult
	var v1Bytes uint64
	for _, c := range shootoutCodecs() {
		data, err := c.encode(rec)
		if err != nil {
			return nil, fmt.Errorf("harness: shootout %s encode failed: %w", c.name, err)
		}
		if err := c.decode(data); err != nil {
			return nil, fmt.Errorf("harness: shootout %s decode failed: %w", c.name, err)
		}
		r := ShootoutResult{
			Codec:          c.name,
			Workload:       name,
			Bytes:          uint64(len(data)),
			BytesPerKinstr: float64(len(data)) / (float64(instrs) / 1000),
		}
		mb := float64(len(data)) / (1 << 20)
		for i := 0; i < runs; i++ {
			start := time.Now()
			if _, err := c.encode(rec); err != nil {
				return nil, err
			}
			if tput := mb / time.Since(start).Seconds(); tput > r.EncodeMBps {
				r.EncodeMBps = tput
			}
			start = time.Now()
			if err := c.decode(data); err != nil {
				return nil, err
			}
			if tput := mb / time.Since(start).Seconds(); tput > r.DecodeMBps {
				r.DecodeMBps = tput
			}
		}
		if c.name == "v1" {
			v1Bytes = r.Bytes
		}
		r.RatioVsV1 = float64(v1Bytes) / float64(r.Bytes)
		out = append(out, r)
	}
	return out, nil
}
