package harness

import (
	"strings"
	"testing"
)

// TestRunSmallMatrix is the tier-1 conformance smoke: a reduced matrix
// must place faults under every class, detect all of them, and pass the
// metamorphic properties.
func TestRunSmallMatrix(t *testing.T) {
	cfg := Config{
		Workloads:         []string{"counter", "fuzz:7"},
		Cores:             []int{1, 2},
		Threads:           3,
		MutationsPerClass: 4,
		Seed:              5,
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if n := rep.Silent(); n != 0 {
		t.Errorf("silent divergences: got %d, want 0", n)
		for _, c := range rep.Cells {
			for _, ex := range c.SilentExamples {
				t.Logf("SILENT %s × %d × %s: %s", c.Workload, c.Cores, c.Class, ex)
			}
		}
	}
	if fails := rep.MetaFailures(); len(fails) != 0 {
		t.Errorf("metamorphic failures: %v", fails)
	}
	// Five base properties plus parallel-replay-matches-serial,
	// distributed-matches-serial and the two flight-recorder window
	// properties per cell; neither workload here declares a race
	// expectation.
	wantMeta := len(cfg.Workloads) * len(cfg.Cores) * 9
	if got := len(rep.Meta); got != wantMeta {
		t.Errorf("metamorphic results: got %d, want %d", got, wantMeta)
	}

	// Every fault class must actually land material injections somewhere
	// in the matrix; a class that never places is a dead test dimension.
	perClass := map[FaultClass]int{}
	for _, c := range rep.Cells {
		perClass[c.Class] += c.Injected
		if c.Detected()+c.Silent != c.Injected {
			t.Errorf("%s × %d × %s: injected %d but classified %d",
				c.Workload, c.Cores, c.Class, c.Injected, c.Detected()+c.Silent)
		}
	}
	for _, class := range AllFaults() {
		if perClass[class] == 0 {
			t.Errorf("fault class %s placed no material injections", class)
		}
	}

	if !rep.OK() {
		t.Errorf("report not OK")
	}
	s := rep.String()
	for _, want := range []string{
		"Metamorphic properties:",
		"Fault-injection coverage",
		"CONFORMANCE: PASS",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("report string missing %q:\n%s", want, s)
		}
	}
}

// TestRunDeterminism pins that the whole matrix is a pure function of
// its configuration: two runs produce cell-for-cell identical counts.
func TestRunDeterminism(t *testing.T) {
	cfg := Config{
		Workloads:         []string{"pingpong"},
		Cores:             []int{2},
		Threads:           3,
		MutationsPerClass: 3,
		Seed:              9,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if a.String() != b.String() {
		t.Errorf("reports differ between identical runs:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

func TestBuildProgramErrors(t *testing.T) {
	if _, err := buildProgram("no-such-workload", 2); err == nil {
		t.Errorf("unknown workload: want error")
	}
	if _, err := buildProgram("fuzz:not-a-number", 2); err == nil {
		t.Errorf("bad fuzz seed: want error")
	}
	if p, err := buildProgram("fuzz:42", 2); err != nil || p == nil {
		t.Errorf("fuzz:42: got (%v, %v)", p, err)
	}
}

func TestConfigFill(t *testing.T) {
	var c Config
	c.fill()
	d := DefaultConfig()
	if len(c.Workloads) != len(d.Workloads) || c.Threads != d.Threads ||
		c.MutationsPerClass != d.MutationsPerClass || c.RerollBudget != d.RerollBudget ||
		len(c.Faults) != len(d.Faults) {
		t.Errorf("fill() did not apply defaults: %+v", c)
	}
	// Seed 0 is a valid seed and must survive fill() untouched — it is
	// not an ask for the default.
	if c.Seed != 0 {
		t.Errorf("fill() replaced zero seed with %d", c.Seed)
	}
	// Explicit values survive.
	c = Config{Workloads: []string{"counter"}, Cores: []int{1}, Threads: 2, MutationsPerClass: 1, Seed: 3}
	c.fill()
	if len(c.Workloads) != 1 || c.Threads != 2 || c.MutationsPerClass != 1 || c.Seed != 3 {
		t.Errorf("fill() clobbered explicit values: %+v", c)
	}
}

func TestFaultByName(t *testing.T) {
	for _, class := range AllFaults() {
		got, ok := FaultByName(string(class))
		if !ok || got != class {
			t.Errorf("FaultByName(%q) = (%q, %v)", class, got, ok)
		}
	}
	if _, ok := FaultByName("meteor-strike"); ok {
		t.Errorf("FaultByName accepted an unknown class")
	}
}

func TestOutcomeString(t *testing.T) {
	cases := map[Outcome]string{
		OutcomeInert:  "inert",
		OutcomeDecode: "decode",
		OutcomeReplay: "replay",
		OutcomeVerify: "verify",
		OutcomeBenign: "benign",
		OutcomeSilent: "SILENT",
		OutcomePrefix: "prefix",
		OutcomeWindow: "window",
	}
	for o, want := range cases {
		if got := o.String(); got != want {
			t.Errorf("Outcome(%d).String() = %q, want %q", int(o), got, want)
		}
	}
}
