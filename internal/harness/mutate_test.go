package harness

import (
	"testing"

	"repro/internal/capo"
	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/wire"
)

// testRecording records a small two-thread workload on one core: enough
// chunks, syscalls and preemptions to give every fault class a site.
func testRecording(t *testing.T) (*isa.Program, *core.Bundle) {
	t.Helper()
	prog, err := buildProgram("ioheavy", 2)
	if err != nil {
		t.Fatalf("buildProgram: %v", err)
	}
	rec, err := core.Record(prog, recordConfig(1, 2, 21))
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	return prog, rec
}

func TestMutatorDeterminism(t *testing.T) {
	a, b := &mutator{rng: 77}, &mutator{rng: 77}
	for i := 0; i < 100; i++ {
		if x, y := a.next(), b.next(); x != y {
			t.Fatalf("streams diverge at %d: %#x vs %#x", i, x, y)
		}
	}
	// Zero seed must not produce the all-zero fixed point.
	z := &mutator{}
	if z.next() == 0 || z.next() == 0 {
		t.Errorf("zero-seeded mutator emitted zero")
	}
	m := &mutator{rng: 5}
	for i := 0; i < 1000; i++ {
		if v := m.pick(7); v < 0 || v >= 7 {
			t.Fatalf("pick(7) out of range: %d", v)
		}
	}
}

// TestScheduleKeyProjection pins which fields the semantic projection
// sees. Fields replay consumes (chunk sizes, REP residues, record
// payloads, the TS order) must change the key; fields replay ignores
// (chunk close reasons, signal numbers, sequence numbers, the raw TS
// values when the order is unchanged) must not.
func TestScheduleKeyProjection(t *testing.T) {
	_, rec := testRecording(t)
	orig := scheduleKey(rec)

	mutations := []struct {
		name      string
		wantEqual bool
		apply     func(b *core.Bundle) bool // false = no site in this recording
	}{
		{"chunk reason change", true, func(b *core.Bundle) bool {
			for _, l := range b.ChunkLogs {
				if len(l.Entries) > 0 {
					l.Entries[0].Reason ^= 1
					return true
				}
			}
			return false
		}},
		{"record seq change", true, func(b *core.Bundle) bool {
			if len(b.InputLog.Records) == 0 {
				return false
			}
			b.InputLog.Records[0].Seq += 100
			return true
		}},
		{"uniform TS inflation keeps order", true, func(b *core.Bundle) bool {
			for _, l := range b.ChunkLogs {
				for i := range l.Entries {
					l.Entries[i].TS *= 2
				}
			}
			for i := range b.InputLog.Records {
				b.InputLog.Records[i].TS *= 2
			}
			return true
		}},
		{"chunk size change", false, func(b *core.Bundle) bool {
			for _, l := range b.ChunkLogs {
				if len(l.Entries) > 0 {
					l.Entries[0].Size++
					return true
				}
			}
			return false
		}},
		{"record ret change", false, func(b *core.Bundle) bool {
			for i := range b.InputLog.Records {
				if b.InputLog.Records[i].Kind == capo.KindSyscall {
					b.InputLog.Records[i].Ret ^= 0xff
					return true
				}
			}
			return false
		}},
		{"record data change", false, func(b *core.Bundle) bool {
			for i := range b.InputLog.Records {
				r := &b.InputLog.Records[i]
				if len(r.Data) > 0 {
					r.Data = append([]byte(nil), r.Data...)
					r.Data[0] ^= 0x55
					return true
				}
			}
			return false
		}},
		{"dropped chunk entry", false, func(b *core.Bundle) bool {
			for _, l := range b.ChunkLogs {
				if len(l.Entries) > 1 {
					l.Entries = l.Entries[:len(l.Entries)-1]
					return true
				}
			}
			return false
		}},
	}
	for _, mu := range mutations {
		t.Run(mu.name, func(t *testing.T) {
			b := copyBundle(rec)
			if !mu.apply(b) {
				t.Skipf("no site for %q in this recording", mu.name)
			}
			equal := bytesEqual(scheduleKey(b), orig)
			if equal != mu.wantEqual {
				t.Errorf("key equality after %q = %v, want %v", mu.name, equal, mu.wantEqual)
			}
		})
	}
}

func TestCopyBundleIndependence(t *testing.T) {
	_, rec := testRecording(t)
	before := rec.Marshal()
	cp := copyBundle(rec)

	for _, l := range cp.ChunkLogs {
		for i := range l.Entries {
			l.Entries[i].Size += 999
			l.Entries[i].TS += 999
		}
	}
	for i := range cp.InputLog.Records {
		cp.InputLog.Records[i].Ret ^= 0xdead
		cp.InputLog.Records[i].TS += 999
	}
	cp.ChunkLogs[0].Entries = append(cp.ChunkLogs[0].Entries, chunk.Entry{Size: 1, TS: 1 << 60})
	cp.InputLog.Records = append(cp.InputLog.Records, capo.Record{Kind: capo.KindSyscall})

	if !bytesEqual(rec.Marshal(), before) {
		t.Errorf("mutating the copy changed the original bundle")
	}
}

func TestAdjacentSameThread(t *testing.T) {
	mk := func(threads ...int) []capo.Record {
		out := make([]capo.Record, len(threads))
		for i, th := range threads {
			out[i].Thread = th
		}
		return out
	}
	cases := []struct {
		name string
		recs []capo.Record
		want [][2]int
	}{
		{"empty", nil, nil},
		{"single", mk(0), nil},
		{"no repeats", mk(0, 1, 2), nil},
		{"adjacent pair", mk(0, 0), [][2]int{{0, 1}}},
		{"interleaved", mk(0, 1, 0, 1), [][2]int{{0, 2}, {1, 3}}},
		{"chain", mk(2, 2, 2), [][2]int{{0, 1}, {1, 2}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := adjacentSameThread(tc.recs)
			if len(got) != len(tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("pair %d: got %v, want %v", i, got[i], tc.want[i])
				}
			}
		})
	}
}

// TestLieAboutCount checks the header rewrite against real marshaled
// logs: the body must be untouched and the count must be the lie.
func TestLieAboutCount(t *testing.T) {
	_, rec := testRecording(t)

	t.Run("chunk log", func(t *testing.T) {
		blob := rec.ChunkLogs[0].Marshal(chunk.Delta{})
		lied, detail, ok := lieAboutCount(blob, true, &mutator{rng: 1})
		if !ok {
			t.Fatalf("lieAboutCount not applicable to a real chunk log")
		}
		if detail == "" {
			t.Errorf("empty detail")
		}
		// Re-read the count field from the lied blob and compare.
		readCount := func(b []byte) uint64 {
			c := wire.CursorOf(b)
			c.Skip(6)
			if _, err := c.Uvarint(); err != nil { // thread
				t.Fatalf("thread uvarint: %v", err)
			}
			v, err := c.Uvarint()
			if err != nil {
				t.Fatalf("count uvarint: %v", err)
			}
			return v
		}
		origCount := readCount(blob)
		liedCount := readCount(lied)
		if origCount == liedCount {
			t.Errorf("count unchanged: %d", origCount)
		}
	})

	t.Run("input log", func(t *testing.T) {
		blob := rec.InputLog.Marshal()
		lied, _, ok := lieAboutCount(blob, false, &mutator{rng: 2})
		if !ok {
			t.Fatalf("lieAboutCount not applicable to a real input log")
		}
		readCount := func(b []byte) uint64 {
			c := wire.CursorOf(b)
			c.Skip(5)
			v, err := c.Uvarint()
			if err != nil {
				t.Fatalf("count uvarint: %v", err)
			}
			return v
		}
		origCount := readCount(blob)
		liedCount := readCount(lied)
		if origCount == liedCount {
			t.Errorf("count unchanged: %d", origCount)
		}
		// The lie must be caught at decode or at replay — never accepted
		// silently; exercise the decoder directly.
		if il, err := capo.UnmarshalInputLog(lied); err == nil && len(il.Records) == int(origCount) {
			t.Errorf("decoder returned the original %d records despite lied count %d", origCount, liedCount)
		}
	})
}

// TestInjectOnceNeverSilent hammers one recording with every class and
// asserts the zero-tolerance invariant directly at the injectOnce level.
func TestInjectOnceNeverSilent(t *testing.T) {
	prog, rec := testRecording(t)
	rr, err := core.Replay(prog, rec)
	if err != nil {
		t.Fatalf("pristine replay: %v", err)
	}
	if err := core.Verify(rec, rr); err != nil {
		t.Fatalf("pristine verify: %v", err)
	}
	maxSteps := rr.Steps*4 + 100_000
	origKey := scheduleKey(rec)

	for _, class := range AllFaults() {
		m := &mutator{rng: 0xabcdef ^ hashCell("unit", 1, 0)}
		material := 0
		for attempt := 0; attempt < 60; attempt++ {
			out, detail := injectOnce(prog, rec, origKey, maxSteps, class, m)
			if out == OutcomeSilent {
				t.Errorf("%s: SILENT outcome: %s", class, detail)
			}
			if out == OutcomeDecode || out == OutcomeReplay || out == OutcomeVerify {
				material++
			}
		}
		if material == 0 {
			t.Errorf("%s: no material fault found in 60 attempts", class)
		}
	}
}

// TestInjectOnceLeavesOriginalIntact pins that injection never corrupts
// the shared reference recording across many attempts.
func TestInjectOnceLeavesOriginalIntact(t *testing.T) {
	prog, rec := testRecording(t)
	before := rec.Marshal()
	m := &mutator{rng: 31}
	for _, class := range AllFaults() {
		for attempt := 0; attempt < 10; attempt++ {
			injectOnce(prog, rec, scheduleKey(rec), 1_000_000, class, m)
		}
	}
	if !bytesEqual(rec.Marshal(), before) {
		t.Fatalf("injectOnce mutated the original recording")
	}
}
