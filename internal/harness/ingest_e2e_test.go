package harness

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ingest"
)

// localExpectation is the client-side ground truth for one stream: what
// a local salvage + parallel replay + verify of the exact upload bytes
// produces. The ingest server's published verdict must match it
// bit-for-bit.
type localExpectation struct {
	memChecksum uint64
	steps       uint64
	program     string
	threads     int
}

func expectLocally(t *testing.T, stream []byte) localExpectation {
	t.Helper()
	sv, err := core.SalvageStream(stream)
	if err != nil {
		t.Fatalf("local salvage: %v", err)
	}
	// The harness spells random programs "fuzz:<seed>"; recorded manifests
	// carry the program's own "fuzz-<seed>" name.
	name := sv.Bundle.ProgramName
	if rest, ok := strings.CutPrefix(name, "fuzz-"); ok {
		name = "fuzz:" + rest
	}
	prog, err := buildProgram(name, sv.Bundle.Threads)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := core.ReplayWorkers(prog, sv.Bundle, 4)
	if err != nil {
		t.Fatalf("local replay: %v", err)
	}
	if !sv.Bundle.Partial {
		if err := core.Verify(sv.Bundle, rr); err != nil {
			t.Fatalf("local verify: %v", err)
		}
	}
	return localExpectation{
		memChecksum: rr.MemChecksum,
		steps:       rr.Steps,
		program:     sv.Bundle.ProgramName,
		threads:     sv.Bundle.Threads,
	}
}

// TestIngestLoopbackE2E is the recording-as-a-service conformance cell:
// record real workloads, push them through a real quickrecd listener
// from at least 8 concurrent uploaders (one of them torn mid-upload),
// and require that every stored bundle is byte-identical to its upload
// and that the server's salvage + parallel prefix-replay verdict agrees
// bit-for-bit with local verification of the same bytes. The small
// credit forces the flow-control loop to actually cycle; the test is in
// CI's -race step, so the shard/verifier concurrency is exercised under
// the detector.
func TestIngestLoopbackE2E(t *testing.T) {
	workloads := []string{"counter", "reqserver", "fuzz-11"}
	var streams [][]byte
	var expect []localExpectation
	for i, name := range workloads {
		data, err := ingest.RecordWorkloadStream(name, 3, uint64(10+i))
		if err != nil {
			t.Fatal(err)
		}
		streams = append(streams, data)
		expect = append(expect, expectLocally(t, data))
	}

	cfg := ingest.DefaultConfig()
	cfg.StoreDir = t.TempDir()
	cfg.Shards = 2
	cfg.Verifiers = 2
	cfg.ReplayWorkers = 2
	cfg.Credit = 8 << 10 // several grant cycles per upload
	srv, err := ingest.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	// 8 complete uploaders across 4 tenants, plus one severed mid-upload.
	const uploaders = 8
	type acked struct {
		tenant string
		digest string
		stream int
	}
	var mu sync.Mutex
	var acks []acked
	var wg sync.WaitGroup
	errs := make(chan error, uploaders+1)
	for i := 0; i < uploaders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := []string{"sphere-a", "sphere-b", "sphere-c", "sphere-d"}[i%4]
			si := i % len(streams)
			digest, _, _, err := ingest.Upload(srv.Addr(), tenant, streams[si], 5, 10*time.Millisecond)
			if err != nil {
				errs <- err
				return
			}
			mu.Lock()
			acks = append(acks, acked{tenant: tenant, digest: digest, stream: si})
			mu.Unlock()
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := ingest.Dial(srv.Addr())
		if err != nil {
			errs <- err
			return
		}
		if err := c.UploadTorn("sphere-torn", streams[0], len(streams[0])/2); err != nil {
			errs <- err
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if len(acks) != uploaders {
		t.Fatalf("%d acked uploads, want %d", len(acks), uploaders)
	}

	// The torn session must be counted as aborted and must not have
	// stored anything beyond the complete uploads' distinct bundles.
	deadline := time.Now().Add(10 * time.Second)
	for srv.Counters().Aborted == 0 {
		if time.Now().After(deadline) {
			t.Fatal("torn session never counted as aborted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	stored, err := srv.Store().List()
	if err != nil {
		t.Fatal(err)
	}
	if len(stored) != len(streams) {
		t.Fatalf("store holds %d bundles, want %d distinct", len(stored), len(streams))
	}

	// Every stored bundle is byte-identical to its upload, and the
	// server's verdict matches the local ground truth bit-for-bit.
	srv.WaitIdle()
	for _, a := range acks {
		data, err := srv.Store().Get(a.digest)
		if err != nil {
			t.Fatalf("stored bundle %s: %v", a.digest, err)
		}
		if !bytes.Equal(data, streams[a.stream]) {
			t.Fatalf("stored bundle %s differs from the uploaded stream", a.digest)
		}
		v, ok := srv.Verdict(a.tenant, a.digest)
		if !ok {
			t.Fatalf("no verdict for %s/%s", a.tenant, a.digest)
		}
		want := expect[a.stream]
		if v.Status != ingest.StatusAccepted {
			t.Fatalf("verdict for %s/%s: %s (%s), want accepted", a.tenant, a.digest, v.Status, v.Detail)
		}
		if v.MemChecksum != want.memChecksum || v.Steps != want.steps ||
			v.Program != want.program || v.Threads != want.threads {
			t.Fatalf("server verdict (%s, %d threads, sum %#x, %d steps) disagrees with local verification (%s, %d threads, sum %#x, %d steps)",
				v.Program, v.Threads, v.MemChecksum, v.Steps,
				want.program, want.threads, want.memChecksum, want.steps)
		}
	}

	ctrs := srv.Counters()
	if ctrs.Accepted != uploaders {
		t.Fatalf("server acked %d uploads, fleet saw %d", ctrs.Accepted, uploaders)
	}
	if n := ctrs.VerdictsBy[ingest.StatusDiverged] + ctrs.VerdictsBy[ingest.StatusTorn] +
		ctrs.VerdictsBy[ingest.StatusUnverifiable]; n != 0 {
		t.Fatalf("%d non-accepted verdicts: %+v", n, ctrs.VerdictsBy)
	}
}

// TestIngestShedSurfacesTypedError pins the backpressure contract at
// the harness level: a server whose shards cannot keep up must shed
// with the typed retryable error, never hang or drop silently.
func TestIngestShedSurfacesTypedError(t *testing.T) {
	data, err := ingest.RecordWorkloadStream("counter", 2, 99)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ingest.DefaultConfig()
	cfg.StoreDir = t.TempDir()
	cfg.Shards = 1
	cfg.QueueDepth = 1
	cfg.ShedTimeout = time.Millisecond
	cfg.Credit = 1 << 20
	srv, err := ingest.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	// Hammer the single 1-deep shard from many uploaders with no retries:
	// under this configuration at least one session is statistically
	// certain to hit a full queue; every outcome must be either a clean
	// ack or the typed retryable rejection.
	var wg sync.WaitGroup
	var mu sync.Mutex
	var okN, shedN int
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, _, err := ingest.Upload(srv.Addr(), "sphere", data, 1, 0)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				okN++
			case ingest.IsRetryable(err):
				shedN++
			default:
				t.Errorf("uploader %d: %v (neither ack nor retryable shed)", i, err)
			}
		}(i)
	}
	wg.Wait()
	if okN == 0 {
		t.Fatal("no upload succeeded even once")
	}
	t.Logf("%d acked, %d shed with retryable errors", okN, shedN)
	if shedN > 0 && srv.Counters().Shed == 0 {
		t.Fatal("sessions shed but the shed counter stayed zero")
	}
}
