package harness

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/replay"
	"repro/internal/segment"
)

// Stream-level fault classes, swept by CrashSweep rather than the
// bundle-mutation matrix: they corrupt the segmented on-disk stream a
// crashed recorder leaves behind, not a decoded recording.
const (
	// FaultTornWrite kills the stream writer mid-write: the stream is cut
	// at a segment boundary or at an arbitrary intra-segment offset.
	FaultTornWrite FaultClass = "torn-write"
	// FaultStreamCorrupt flips one bit somewhere in the stream, as disk
	// or transport corruption would.
	FaultStreamCorrupt FaultClass = "stream-corrupt"
	// FaultWindowTorn tears a flight-recorder window dump: recording ran
	// with RetainCheckpoints, and the rendered ring is cut at a segment
	// boundary or an arbitrary offset mid-dump.
	FaultWindowTorn FaultClass = "window-torn"
	// FaultWindowCorrupt flips one bit in a flight-recorder window dump,
	// inside or outside the epochs the window retained.
	FaultWindowCorrupt FaultClass = "window-corrupt"
)

// CrashConfig parameterises the crash-consistency sweep.
type CrashConfig struct {
	// Workloads and Cores span the matrix (defaults below).
	Workloads []string
	Cores     []int
	// Threads is the thread count per workload (default 4).
	Threads int
	// RandomCuts is the number of random intra-segment cut points per
	// cell, on top of every segment boundary (default 12).
	RandomCuts int
	// BitFlips is the number of single-bit stream corruptions per cell
	// (default 12).
	BitFlips int
	// Seed drives schedules and injection sites. Every value is honored,
	// including 0 — zero is a valid seed, not a request for the default
	// (DefaultCrashConfig uses 1).
	Seed uint64
	// FlushEveryChunks is the stream flush cadence; kept small so even
	// short workloads span many epochs (default 8).
	FlushEveryChunks uint64
	// CheckpointEveryInstrs arms the flight recorder so checkpoint
	// segments land inside the sweep (default 3000).
	CheckpointEveryInstrs uint64
	// Window is the retention window (checkpoint intervals) for the
	// windowed-stream fault cells (default 2).
	Window uint64
}

// DefaultCrashConfig is the acceptance sweep: three workloads × three
// core counts, every segment boundary plus 12 random cuts and 12 bit
// flips each.
func DefaultCrashConfig() CrashConfig {
	return CrashConfig{
		Workloads:             []string{"counter", "pingpong", "ioheavy", "reqserver"},
		Cores:                 []int{1, 2, 4},
		Threads:               4,
		RandomCuts:            12,
		BitFlips:              12,
		Seed:                  1,
		FlushEveryChunks:      8,
		CheckpointEveryInstrs: 3000,
		Window:                2,
	}
}

func (c *CrashConfig) fill() {
	d := DefaultCrashConfig()
	if len(c.Workloads) == 0 {
		c.Workloads = d.Workloads
	}
	if len(c.Cores) == 0 {
		c.Cores = d.Cores
	}
	if c.Threads <= 0 {
		c.Threads = d.Threads
	}
	if c.RandomCuts <= 0 {
		c.RandomCuts = d.RandomCuts
	}
	if c.BitFlips <= 0 {
		c.BitFlips = d.BitFlips
	}
	// Seed is deliberately not defaulted: 0 is a valid seed (see Config).
	if c.FlushEveryChunks == 0 {
		c.FlushEveryChunks = d.FlushEveryChunks
	}
	if c.CheckpointEveryInstrs == 0 {
		c.CheckpointEveryInstrs = d.CheckpointEveryInstrs
	}
	if c.Window == 0 {
		c.Window = d.Window
	}
}

// CrashSweep records every (workload, cores) cell as a segmented stream,
// then simulates recorder crashes (a cut at every segment boundary plus
// random intra-segment offsets) and stream corruption (single bit
// flips). Every crash point must yield either an explicit typed decode
// error or a verified prefix replay — never a silent wrong replay. The
// findings land in a Report whose cells carry the stream fault classes.
func CrashSweep(cfg CrashConfig) (*Report, error) {
	cfg.fill()
	rep := &Report{Config: Config{
		Workloads: cfg.Workloads, Cores: cfg.Cores, Threads: cfg.Threads, Seed: cfg.Seed,
	}}
	for _, name := range cfg.Workloads {
		prog, err := buildProgram(name, cfg.Threads)
		if err != nil {
			return nil, err
		}
		for _, cores := range cfg.Cores {
			if err := runCrashCell(cfg, rep, name, prog, cores); err != nil {
				return nil, fmt.Errorf("harness: crash sweep %s on %d cores: %w", name, cores, err)
			}
		}
	}
	return rep, nil
}

func runCrashCell(cfg CrashConfig, rep *Report, name string, prog *isa.Program, cores int) error {
	mcfg := recordConfig(cores, cfg.Threads, cfg.Seed)
	mcfg.FlushEveryChunks = cfg.FlushEveryChunks
	mcfg.CheckpointEveryInstrs = cfg.CheckpointEveryInstrs
	var buf bytes.Buffer
	full, err := core.StreamRecord(prog, mcfg, &buf)
	if err != nil {
		return fmt.Errorf("stream recording failed: %w", err)
	}
	data := buf.Bytes()
	offs := segment.Offsets(data)
	if len(offs) < 3 || offs[len(offs)-1] != len(data) {
		return fmt.Errorf("pristine stream scans to %d segments covering %d/%d bytes",
			len(offs), offs[len(offs)-1], len(data))
	}
	maxSteps := full.RecordStats.Retired*4 + 100_000
	m := &mutator{rng: cfg.Seed ^ hashCell(name, cores, 0x7c)}

	// Torn writes: the writer dies at every segment boundary and at
	// random offsets inside segments.
	cell := Cell{Workload: name, Cores: cores, Class: FaultTornWrite}
	cuts := append([]int(nil), offs...)
	for i := 0; i < cfg.RandomCuts; i++ {
		cuts = append(cuts, 1+m.pick(len(data)-1))
	}
	for _, cut := range cuts {
		out, detail := checkCrashPoint(prog, full, data[:cut], cut == len(data), maxSteps)
		cell.count(out, fmt.Sprintf("cut at byte %d/%d: %s", cut, len(data), detail))
	}
	rep.Cells = append(rep.Cells, cell)

	// Bit flips: single-bit corruption anywhere in the stream must cut
	// the salvage at (or before) the corrupted segment.
	cell = Cell{Workload: name, Cores: cores, Class: FaultStreamCorrupt}
	for i := 0; i < cfg.BitFlips; i++ {
		pos, bit := m.pick(len(data)), m.pick(8)
		flipped := append([]byte(nil), data...)
		flipped[pos] ^= 1 << bit
		out, detail := checkBitFlip(prog, full, flipped, segOf(offs, pos), maxSteps)
		cell.count(out, fmt.Sprintf("bit %d of byte %d/%d flipped: %s", bit, pos, len(data), detail))
	}
	rep.Cells = append(rep.Cells, cell)

	// The same crashes against a flight-recorder window: the recorder ran
	// with a K-interval retention ring and dumped it; the dump is torn or
	// corrupted. The reference is the pristine window's own salvage — a
	// damaged dump must recover a replayable suffix of it, anchored at
	// the surviving base checkpoint.
	wcfg := mcfg
	wcfg.RetainCheckpoints = cfg.Window
	var wbuf bytes.Buffer
	if _, err := core.StreamRecord(prog, wcfg, &wbuf); err != nil {
		return fmt.Errorf("windowed stream recording failed: %w", err)
	}
	wdata := wbuf.Bytes()
	woffs := segment.Offsets(wdata)
	if len(woffs) < 2 || woffs[len(woffs)-1] != len(wdata) {
		return fmt.Errorf("pristine window scans to %d segments covering %d/%d bytes",
			len(woffs), woffs[len(woffs)-1], len(wdata))
	}
	wref, err := core.SalvageStream(wdata)
	if err != nil {
		return fmt.Errorf("pristine window does not salvage: %w", err)
	}
	refRes, err := core.ReplayBounded(prog, wref.Bundle, maxSteps)
	if err != nil {
		return fmt.Errorf("pristine window does not replay: %w", err)
	}

	cell = Cell{Workload: name, Cores: cores, Class: FaultWindowTorn}
	wcuts := append([]int(nil), woffs...)
	for i := 0; i < cfg.RandomCuts; i++ {
		wcuts = append(wcuts, 1+m.pick(len(wdata)-1))
	}
	for _, cut := range wcuts {
		out, detail := checkWindowCrash(prog, wref, refRes, wdata[:cut], cut == len(wdata), maxSteps)
		cell.count(out, fmt.Sprintf("window cut at byte %d/%d: %s", cut, len(wdata), detail))
	}
	rep.Cells = append(rep.Cells, cell)

	cell = Cell{Workload: name, Cores: cores, Class: FaultWindowCorrupt}
	// A windowed stream is only replayable from its base checkpoint;
	// corruption there (or in the manifest) legitimately loses the whole
	// recording, as long as it surfaces as a typed error.
	fatalSeg := 0
	if _, evicted := wref.WindowBase(); evicted {
		fatalSeg = 1
	}
	for i := 0; i < cfg.BitFlips; i++ {
		pos, bit := m.pick(len(wdata)), m.pick(8)
		flipped := append([]byte(nil), wdata...)
		flipped[pos] ^= 1 << bit
		out, detail := checkWindowBitFlip(prog, wref, refRes, flipped, segOf(woffs, pos), fatalSeg, maxSteps)
		cell.count(out, fmt.Sprintf("bit %d of window byte %d/%d flipped: %s", bit, pos, len(wdata), detail))
	}
	rep.Cells = append(rep.Cells, cell)
	return nil
}

// segOf returns the index of the segment containing byte pos, given the
// segment end offsets of the pristine stream.
func segOf(offs []int, pos int) int {
	for i, end := range offs {
		if pos < end {
			return i
		}
	}
	return len(offs)
}

// count tallies one classified injection into the cell.
func (c *Cell) count(out Outcome, detail string) {
	c.Injected++
	switch out {
	case OutcomeDecode:
		c.Decode++
	case OutcomePrefix:
		c.Prefix++
	case OutcomeWindow:
		c.Window++
	case OutcomeVerify:
		c.Verify++
	case OutcomeReplay:
		c.Replay++
	default:
		c.Silent++
		if len(c.SilentExamples) < 4 {
			c.SilentExamples = append(c.SilentExamples, detail)
		}
	}
}

// checkCrashPoint classifies one torn stream: it must salvage to a
// verified prefix of the original execution (OutcomePrefix; OutcomeVerify
// when the stream is actually whole), or fail with a typed decode error
// (OutcomeDecode). Anything else — untyped error, non-prefix data, a
// replay that strays off the recorded execution — is OutcomeSilent.
func checkCrashPoint(prog *isa.Program, full *core.Bundle, torn []byte, whole bool, maxSteps uint64) (Outcome, string) {
	sv, err := core.SalvageStream(torn)
	if err != nil {
		if errors.Is(err, chunk.ErrTruncated) || errors.Is(err, chunk.ErrCorrupt) {
			return OutcomeDecode, err.Error()
		}
		return OutcomeSilent, "untyped salvage error: " + err.Error()
	}
	if err := checkSalvagedPrefix(prog, full, sv, maxSteps); err != nil {
		return OutcomeSilent, err.Error()
	}
	if whole {
		if sv.Bundle.Partial {
			return OutcomeSilent, "whole stream salvaged as partial"
		}
		return OutcomeVerify, "whole stream verified"
	}
	return OutcomePrefix, fmt.Sprintf("verified prefix (%s)", sv.Report)
}

// checkBitFlip classifies one corrupted stream: salvage must cut at or
// before the corrupted segment (the CRC catches every single-bit error),
// and whatever survives must still be a verified prefix.
func checkBitFlip(prog *isa.Program, full *core.Bundle, flipped []byte, seg int, maxSteps uint64) (Outcome, string) {
	sv, err := core.SalvageStream(flipped)
	if err != nil {
		if seg > 0 {
			return OutcomeSilent, fmt.Sprintf("flip in segment %d killed the whole salvage: %v", seg, err)
		}
		if errors.Is(err, chunk.ErrTruncated) || errors.Is(err, chunk.ErrCorrupt) {
			return OutcomeDecode, err.Error()
		}
		return OutcomeSilent, "untyped salvage error: " + err.Error()
	}
	if sv.Report.SegmentsKept > seg {
		return OutcomeSilent, fmt.Sprintf("kept %d segments, corruption was in segment %d", sv.Report.SegmentsKept, seg)
	}
	if err := checkSalvagedPrefix(prog, full, sv, maxSteps); err != nil {
		return OutcomeSilent, err.Error()
	}
	return OutcomeDecode, fmt.Sprintf("corrupt segment %d discarded (%s)", seg, sv.Report)
}

// checkWindowCrash classifies one torn flight-recorder window dump: it
// must salvage to a replayable suffix of the pristine window anchored at
// the surviving base checkpoint (OutcomeWindow; OutcomeVerify when the
// dump is whole), or fail with a typed decode error — a cut that lands
// before the base checkpoint survives loses the recording by design, and
// must say so explicitly (OutcomeDecode).
func checkWindowCrash(prog *isa.Program, ref *core.Salvaged, refRes *replay.Result, torn []byte, whole bool, maxSteps uint64) (Outcome, string) {
	sv, err := core.SalvageStream(torn)
	if err != nil {
		if errors.Is(err, chunk.ErrTruncated) || errors.Is(err, chunk.ErrCorrupt) {
			return OutcomeDecode, err.Error()
		}
		return OutcomeSilent, "untyped salvage error: " + err.Error()
	}
	if err := checkWindowedSuffix(prog, ref, refRes, sv, maxSteps); err != nil {
		return OutcomeSilent, err.Error()
	}
	if whole {
		if sv.Bundle.Partial {
			return OutcomeSilent, "whole window dump salvaged as partial"
		}
		return OutcomeVerify, "whole window verified"
	}
	return OutcomeWindow, fmt.Sprintf("replayable window suffix (%s)", sv.Report)
}

// checkWindowBitFlip classifies one corrupted window dump: salvage must
// cut at or before the corrupted segment and still yield a replayable
// window suffix. Corruption in a segment at or before fatalSeg (the
// manifest, or the base checkpoint the window resumes from) may instead
// lose the whole recording with a typed error.
func checkWindowBitFlip(prog *isa.Program, ref *core.Salvaged, refRes *replay.Result, flipped []byte, seg, fatalSeg int, maxSteps uint64) (Outcome, string) {
	sv, err := core.SalvageStream(flipped)
	if err != nil {
		if seg > fatalSeg {
			return OutcomeSilent, fmt.Sprintf("flip in segment %d killed the whole salvage: %v", seg, err)
		}
		if errors.Is(err, chunk.ErrTruncated) || errors.Is(err, chunk.ErrCorrupt) {
			return OutcomeDecode, err.Error()
		}
		return OutcomeSilent, "untyped salvage error: " + err.Error()
	}
	if sv.Report.SegmentsKept > seg {
		return OutcomeSilent, fmt.Sprintf("kept %d segments, corruption was in segment %d", sv.Report.SegmentsKept, seg)
	}
	if err := checkWindowedSuffix(prog, ref, refRes, sv, maxSteps); err != nil {
		return OutcomeSilent, err.Error()
	}
	return OutcomeDecode, fmt.Sprintf("corrupt window segment %d discarded (%s)", seg, sv.Report)
}

// checkWindowedSuffix verifies the windowed crash contract for one
// salvaged dump against the pristine window: the salvage resumes from
// the same base checkpoint, every salvaged log is an entry-wise prefix
// of the window's, the bundle replays from the base within the step
// budget, and the replayed execution is a prefix of the pristine
// window's replay. Whole salvages must verify exactly.
func checkWindowedSuffix(prog *isa.Program, ref *core.Salvaged, refRes *replay.Result, sv *core.Salvaged, maxSteps uint64) error {
	b, rb := sv.Bundle, ref.Bundle
	svBase, svEvicted := sv.WindowBase()
	refBase, refEvicted := ref.WindowBase()
	if svEvicted != refEvicted || svBase != refBase {
		return fmt.Errorf("salvage resumes from base (%d, %v), pristine window from (%d, %v)",
			svBase, svEvicted, refBase, refEvicted)
	}
	if len(b.ChunkLogs) != len(rb.ChunkLogs) {
		return fmt.Errorf("salvaged %d chunk logs, window has %d", len(b.ChunkLogs), len(rb.ChunkLogs))
	}
	for t, l := range b.ChunkLogs {
		orig := rb.ChunkLogs[t]
		if l.Len() > orig.Len() {
			return fmt.Errorf("thread %d: salvaged %d entries, window has %d", t, l.Len(), orig.Len())
		}
		for i, e := range l.Entries {
			if e != orig.Entries[i] {
				return fmt.Errorf("thread %d entry %d: salvaged %v, window has %v", t, i, e, orig.Entries[i])
			}
		}
	}
	// Per-thread prefix, not positional: a torn epoch's horizon cut can
	// trim a different number of trailing records per thread.
	perThread := map[int]int{}
	for _, r := range b.InputLog.Records {
		origs := rb.InputLog.PerThread(r.Thread)
		i := perThread[r.Thread]
		if i >= len(origs) || r.String() != origs[i].String() {
			return fmt.Errorf("input record %v is not record %d of the window's thread-%d sequence", r, i, r.Thread)
		}
		perThread[r.Thread] = i + 1
	}
	rr, err := core.ReplayBounded(prog, b, maxSteps)
	if err != nil {
		return fmt.Errorf("salvaged window suffix does not replay: %w", err)
	}
	if !bytes.HasPrefix(refRes.Output, rr.Output) {
		return fmt.Errorf("replayed %d output bytes are not a prefix of the window's %d", len(rr.Output), len(refRes.Output))
	}
	for t, r := range rr.RetiredPerThread {
		if r > refRes.RetiredPerThread[t] {
			return fmt.Errorf("thread %d replayed %d instructions past the window's %d", t, r, refRes.RetiredPerThread[t])
		}
	}
	if !b.Partial {
		if err := core.Verify(b, rr); err != nil {
			return fmt.Errorf("whole window salvage failed verification: %w", err)
		}
	}
	return nil
}

// checkSalvagedPrefix verifies the crash-consistency contract for one
// salvaged recording against the pristine full recording: every salvaged
// log is an entry-wise prefix of the original, the salvaged bundle
// replays, and the replayed execution is a prefix of the recorded one
// (output bytes, retired counts). Whole salvages must verify exactly.
func checkSalvagedPrefix(prog *isa.Program, full *core.Bundle, sv *core.Salvaged, maxSteps uint64) error {
	b := sv.Bundle
	if len(b.ChunkLogs) != len(full.ChunkLogs) {
		return fmt.Errorf("salvaged %d chunk logs, recorded %d", len(b.ChunkLogs), len(full.ChunkLogs))
	}
	for t, l := range b.ChunkLogs {
		orig := full.ChunkLogs[t]
		if l.Len() > orig.Len() {
			return fmt.Errorf("thread %d: salvaged %d entries, recorded %d", t, l.Len(), orig.Len())
		}
		for i, e := range l.Entries {
			if e != orig.Entries[i] {
				return fmt.Errorf("thread %d entry %d: salvaged %v, recorded %v", t, i, e, orig.Entries[i])
			}
		}
	}
	perThread := map[int]int{}
	for _, r := range b.InputLog.Records {
		origs := full.InputLog.PerThread(r.Thread)
		i := perThread[r.Thread]
		if i >= len(origs) || r.String() != origs[i].String() {
			return fmt.Errorf("input record %v is not record %d of thread %d's recorded sequence", r, i, r.Thread)
		}
		perThread[r.Thread] = i + 1
	}

	rr, err := replay.Run(replay.Input{
		Prog:                prog,
		Threads:             b.Threads,
		ChunkLogs:           b.ChunkLogs,
		InputLog:            b.InputLog,
		StackWordsPerThread: b.StackWordsPerThread,
		CountRepIterations:  b.CountRepIterations,
		AllowTruncated:      b.Partial,
		MaxSteps:            maxSteps,
	})
	if err != nil {
		return fmt.Errorf("salvaged prefix does not replay: %w", err)
	}
	if !bytes.HasPrefix(full.Output, rr.Output) {
		return fmt.Errorf("replayed %d output bytes are not a prefix of the recorded %d", len(rr.Output), len(full.Output))
	}
	for t, r := range rr.RetiredPerThread {
		if r > full.RetiredPerThread[t] {
			return fmt.Errorf("thread %d replayed %d instructions past the recorded %d", t, r, full.RetiredPerThread[t])
		}
	}
	if !b.Partial {
		if err := core.Verify(b, rr); err != nil {
			return fmt.Errorf("whole salvage failed verification: %w", err)
		}
	}
	return nil
}
