package harness

import "testing"

// TestCodecShootout runs the serialization shootout on ioheavy — the
// workload the compression target is stated against — and pins the
// headline claims: every codec round-trips, the compressed v2 format
// beats v1 by at least 2x, and the custom formats are never larger
// than the stdlib strawmen.
func TestCodecShootout(t *testing.T) {
	rows, err := MeasureShootout("ioheavy", 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	byCodec := map[string]ShootoutResult{}
	for _, r := range rows {
		byCodec[r.Codec] = r
		if r.Bytes == 0 || r.EncodeMBps <= 0 || r.DecodeMBps <= 0 {
			t.Errorf("%s: degenerate row %+v", r.Codec, r)
		}
		t.Logf("%-7s %8d B  %8.1f B/kinstr  enc %8.1f MB/s  dec %8.1f MB/s  %5.2fx vs v1",
			r.Codec, r.Bytes, r.BytesPerKinstr, r.EncodeMBps, r.DecodeMBps, r.RatioVsV1)
	}
	for _, want := range []string{"v1", "v2-raw", "v2-lz", "gob", "json"} {
		if _, ok := byCodec[want]; !ok {
			t.Fatalf("shootout is missing codec %s", want)
		}
	}
	if r := byCodec["v2-lz"].RatioVsV1; r < 2.0 {
		t.Errorf("v2-lz compresses ioheavy only %.4fx vs v1, want >= 2x", r)
	}
	for _, straw := range []string{"gob", "json"} {
		if byCodec["v2-lz"].Bytes > byCodec[straw].Bytes {
			t.Errorf("v2-lz (%d B) is larger than the %s strawman (%d B)",
				byCodec["v2-lz"].Bytes, straw, byCodec[straw].Bytes)
		}
	}
}
