package harness

import (
	"os"
	"testing"
)

const (
	baselineFile   = "BENCH_baseline.json"
	benchTolerance = 0.20
)

var benchWorkloads = []string{"counter", "ioheavy", "repcopy", "screen:racy"}

// BenchmarkRecordThroughput reports recording throughput per workload in
// simulated instructions per second of host time.
func BenchmarkRecordThroughput(b *testing.B) {
	for _, w := range benchWorkloads {
		b.Run(w, func(b *testing.B) {
			var instrs float64
			for i := 0; i < b.N; i++ {
				r, err := measureWorkload(w, 4, 4, 1)
				if err != nil {
					b.Fatal(err)
				}
				instrs += float64(r.Instrs)
			}
			b.ReportMetric(instrs/b.Elapsed().Seconds(), "instrs/s")
		})
	}
}

// TestWriteBenchBaseline regenerates the committed baseline. Gated on
// QUICKREC_WRITE_BASELINE so routine test runs never move the goalposts.
func TestWriteBenchBaseline(t *testing.T) {
	if os.Getenv("QUICKREC_WRITE_BASELINE") == "" {
		t.Skip("set QUICKREC_WRITE_BASELINE=1 to rewrite " + baselineFile)
	}
	b, err := WriteBaseline(baselineFile, benchWorkloads, 4, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range b.Results {
		t.Logf("%-10s %6.2f M instrs/s", r.Workload, r.InstrsPerSec/1e6)
	}
}

// TestRecordThroughputRegression is the tier-2 guard: recording must
// stay within benchTolerance of the committed baseline. Gated on
// QUICKREC_BENCH_GUARD because wall-clock throughput is machine-bound;
// run it on the machine that wrote the baseline.
func TestRecordThroughputRegression(t *testing.T) {
	if os.Getenv("QUICKREC_BENCH_GUARD") == "" {
		t.Skip("set QUICKREC_BENCH_GUARD=1 to compare against " + baselineFile)
	}
	base, err := LoadBaseline(baselineFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Results) == 0 {
		t.Fatal("baseline holds no results")
	}
	for _, br := range base.Results {
		got, err := measureWorkload(br.Workload, br.Threads, br.Cores, 5)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckRegression(br, got, benchTolerance); err != nil {
			t.Error(err)
		} else {
			t.Logf("%-10s %6.2f M instrs/s (baseline %.2f M)",
				br.Workload, got.InstrsPerSec/1e6, br.InstrsPerSec/1e6)
		}
	}
}
