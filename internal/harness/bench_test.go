package harness

import (
	"os"
	"runtime"
	"testing"
)

const (
	baselineFile   = "BENCH_baseline.json"
	benchTolerance = 0.20
)

var benchWorkloads = BaselineWorkloads

// BenchmarkRecordThroughput reports recording throughput per workload in
// simulated instructions per second of host time.
func BenchmarkRecordThroughput(b *testing.B) {
	for _, w := range benchWorkloads {
		b.Run(w, func(b *testing.B) {
			var instrs float64
			for i := 0; i < b.N; i++ {
				r, err := measureWorkload(w, 4, 4, 1)
				if err != nil {
					b.Fatal(err)
				}
				instrs += float64(r.Instrs)
			}
			b.ReportMetric(instrs/b.Elapsed().Seconds(), "instrs/s")
		})
	}
}

// TestWriteBenchBaseline regenerates the committed baseline. Gated on
// QUICKREC_WRITE_BASELINE so routine test runs never move the goalposts.
func TestWriteBenchBaseline(t *testing.T) {
	if os.Getenv("QUICKREC_WRITE_BASELINE") == "" {
		t.Skip("set QUICKREC_WRITE_BASELINE=1 to rewrite " + baselineFile)
	}
	b, err := WriteBaseline(baselineFile, benchWorkloads, 4, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range b.Results {
		t.Logf("%-13s %8.2f M instrs/s  %8d allocs/op  %10d B/op",
			r.Workload, r.InstrsPerSec/1e6, r.AllocsPerOp, r.BytesPerOp)
	}
}

// TestRecordThroughputRegression is the tier-2 guard: recording must
// stay within benchTolerance of the committed baseline. Gated on
// QUICKREC_BENCH_GUARD because wall-clock throughput is machine-bound;
// run it on the machine that wrote the baseline.
func TestRecordThroughputRegression(t *testing.T) {
	if os.Getenv("QUICKREC_BENCH_GUARD") == "" {
		t.Skip("set QUICKREC_BENCH_GUARD=1 to compare against " + baselineFile)
	}
	base, err := LoadBaseline(baselineFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Results) == 0 {
		t.Fatal("baseline holds no results")
	}
	for _, br := range base.Results {
		got, err := measureWorkload(br.Workload, br.Threads, br.Cores, 5)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckRegression(br, got, benchTolerance); err != nil {
			t.Error(err)
		} else {
			t.Logf("%-13s %8.2f M instrs/s (baseline %.2f M)  %d allocs/op (baseline %d)",
				br.Workload, got.InstrsPerSec/1e6, br.InstrsPerSec/1e6,
				got.AllocsPerOp, br.AllocsPerOp)
		}
	}
}

// TestParallelReplaySpeedup is the parallel engine's raison d'être:
// replaying the benchmark recording on a 4-worker pool must be at least
// 1.5x faster than serial replay of the same recording. Gated on having
// 4 real cores to run on, and skipped in -short runs because it is a
// wall-clock measurement.
func TestParallelReplaySpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock benchmark, skipped in -short")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need 4 CPUs for a meaningful speedup, have %d", runtime.NumCPU())
	}
	serial, err := MeasureReplayThroughput(4, 4, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	par, err := MeasureReplayThroughput(4, 4, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	speedup := par.InstrsPerSec / serial.InstrsPerSec
	t.Logf("serial %.2f M instrs/s, 4 workers %.2f M instrs/s: %.2fx",
		serial.InstrsPerSec/1e6, par.InstrsPerSec/1e6, speedup)
	if speedup < 1.5 {
		t.Errorf("4-worker replay speedup %.2fx, want >= 1.5x", speedup)
	}
}
