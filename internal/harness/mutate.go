package harness

import (
	"fmt"

	"repro/internal/capo"
	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/replay"
	"repro/internal/wire"
)

// FaultClass names one family of single-fault log corruptions.
type FaultClass string

// The fault classes. Byte-level classes corrupt a serialized chunk-log or
// input-log blob and go through the real decoder; structural classes
// corrupt the decoded form directly (their serialized form always
// re-decodes, so decode-stage detection is not available to them by
// construction).
const (
	// FaultBitFlip flips one bit anywhere in a serialized log blob.
	FaultBitFlip FaultClass = "bit-flip"
	// FaultTruncate cuts a serialized log blob at an arbitrary point.
	FaultTruncate FaultClass = "truncate"
	// FaultLenLie rewrites a header count field to lie about how many
	// entries/records follow.
	FaultLenLie FaultClass = "length-lie"
	// FaultDrop deletes one chunk entry or input record.
	FaultDrop FaultClass = "drop"
	// FaultDuplicate duplicates one chunk entry or input record in place.
	FaultDuplicate FaultClass = "duplicate"
	// FaultReorder swaps two adjacent same-thread log items: the payloads
	// of neighbouring chunk entries, or the timestamps (and hence the
	// replay order) of neighbouring input records.
	FaultReorder FaultClass = "reorder"
	// FaultSizeLie perturbs one chunk's instruction counter by a few
	// units — the classic off-by-N the paper's REP-counting lesson is
	// about.
	FaultSizeLie FaultClass = "size-lie"
	// FaultPayload corrupts an input record's replay-relevant payload:
	// syscall result, copied data, syscall number, or a signal's delivery
	// position.
	FaultPayload FaultClass = "payload"
)

// AllFaults returns every fault class, in report order.
func AllFaults() []FaultClass {
	return []FaultClass{
		FaultBitFlip, FaultTruncate, FaultLenLie,
		FaultDrop, FaultDuplicate, FaultReorder, FaultSizeLie, FaultPayload,
	}
}

// FaultByName resolves a class name.
func FaultByName(name string) (FaultClass, bool) {
	for _, c := range AllFaults() {
		if string(c) == name {
			return c, true
		}
	}
	return "", false
}

// Outcome classifies one injection attempt.
type Outcome int

// Injection outcomes. Inert and Benign mutations are re-rolled by the
// matrix runner; the other four are terminal classifications.
const (
	// OutcomeInert: the mutation did not change replay semantics at all
	// (e.g. a bit flip confined to a field replay ignores).
	OutcomeInert Outcome = iota
	// OutcomeDecode: the corrupted blob was rejected by the log decoder.
	OutcomeDecode
	// OutcomeReplay: replay detected the corruption (divergence or
	// contained execution fault).
	OutcomeReplay
	// OutcomeVerify: replay ran to completion but final-state
	// verification against the (mutated) bundle failed.
	OutcomeVerify
	// OutcomeBenign: replay succeeded AND reproduced the original
	// recording's reference state exactly — the mutation was a legal
	// alternative serialization of the same execution (MRR logs are
	// conservative), so there was nothing to detect.
	OutcomeBenign
	// OutcomeSilent: replay succeeded, verification against the mutated
	// bundle passed, and the execution differs from the original — a
	// wrong execution accepted as correct. This is the conformance
	// failure the harness exists to catch.
	OutcomeSilent
	// OutcomePrefix: a torn stream salvaged to a consistent prefix that
	// replayed as a verified prefix of the original execution — the
	// crash sweep's good outcome (see CrashSweep).
	OutcomePrefix
	// OutcomeWindow: a torn flight-recorder window salvaged to a
	// replayable suffix anchored at its surviving base checkpoint — the
	// windowed-stream variant of OutcomePrefix.
	OutcomeWindow
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeInert:
		return "inert"
	case OutcomeDecode:
		return "decode"
	case OutcomeReplay:
		return "replay"
	case OutcomeVerify:
		return "verify"
	case OutcomeBenign:
		return "benign"
	case OutcomeSilent:
		return "SILENT"
	case OutcomePrefix:
		return "prefix"
	case OutcomeWindow:
		return "window"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// mutator is a deterministic xorshift64 stream driving site selection.
type mutator struct{ rng uint64 }

func (m *mutator) next() uint64 {
	if m.rng == 0 {
		m.rng = 0x2545f4914f6cdd1d
	}
	m.rng ^= m.rng << 13
	m.rng ^= m.rng >> 7
	m.rng ^= m.rng << 17
	return m.rng
}

// pick returns a value in [0, n).
func (m *mutator) pick(n int) int { return int(m.next() % uint64(n)) }

// injectOnce applies one single-fault mutation of class to a copy of
// rec's logs, then classifies the outcome: decode rejection, replay
// divergence, verification failure, benign equivalence against the
// original, or silent acceptance of a wrong execution. origKey is the
// pristine bundle's scheduleKey; maxSteps bounds mutated replays so a
// lied chunk counter cannot hang the harness.
func injectOnce(prog *isa.Program, rec *core.Bundle, origKey []byte, maxSteps uint64,
	class FaultClass, m *mutator) (Outcome, string) {

	mut, detail, decodeErr := applyFault(rec, class, m)
	if decodeErr != nil {
		return OutcomeDecode, detail + ": " + decodeErr.Error()
	}
	if mut == nil {
		return OutcomeInert, detail // no viable site this attempt
	}
	if bytesEqual(scheduleKey(mut), origKey) {
		return OutcomeInert, detail
	}
	rr, err := replayBundle(prog, mut, maxSteps)
	if err != nil {
		return OutcomeReplay, detail + ": " + err.Error()
	}
	if err := core.Verify(mut, rr); err != nil {
		return OutcomeVerify, detail + ": " + err.Error()
	}
	if err := core.Verify(rec, rr); err == nil {
		return OutcomeBenign, detail
	}
	return OutcomeSilent, detail + ": replay of mutated log verified but diverged from the original execution"
}

// replayBundle mirrors core.Replay but threads the step budget through.
func replayBundle(prog *isa.Program, b *core.Bundle, maxSteps uint64) (*replay.Result, error) {
	return replay.Run(replay.Input{
		Prog:                prog,
		Threads:             b.Threads,
		ChunkLogs:           b.ChunkLogs,
		InputLog:            b.InputLog,
		StackWordsPerThread: b.StackWordsPerThread,
		CountRepIterations:  b.CountRepIterations,
		MaxSteps:            maxSteps,
	})
}

// applyFault produces a mutated copy of rec (or a decode error for
// byte-level faults the decoder rejects). A nil bundle with nil error
// means no viable injection site was found on this attempt.
func applyFault(rec *core.Bundle, class FaultClass, m *mutator) (*core.Bundle, string, error) {
	switch class {
	case FaultBitFlip, FaultTruncate, FaultLenLie:
		return applyByteFault(rec, class, m)
	case FaultDrop, FaultDuplicate, FaultReorder, FaultSizeLie, FaultPayload:
		return applyStructuralFault(rec, class, m)
	}
	return nil, fmt.Sprintf("unknown fault class %q", class), nil
}

// applyByteFault corrupts the serialized form of one log and runs it
// through the real decoder, exactly as a corrupted file on disk would be.
func applyByteFault(rec *core.Bundle, class FaultClass, m *mutator) (*core.Bundle, string, error) {
	// Choose a victim: one thread's chunk log, or the input log.
	victim := m.pick(rec.Threads + 1)
	var blob []byte
	var where string
	if victim < rec.Threads {
		blob = rec.ChunkLogs[victim].Marshal(chunk.Delta{})
		where = fmt.Sprintf("chunk log t%d", victim)
	} else {
		blob = rec.InputLog.Marshal()
		where = "input log"
	}

	var detail string
	switch class {
	case FaultBitFlip:
		if len(blob) == 0 {
			return nil, "empty blob", nil
		}
		off := m.pick(len(blob))
		bit := m.pick(8)
		blob = append([]byte(nil), blob...)
		blob[off] ^= 1 << bit
		detail = fmt.Sprintf("%s: bit %d of byte %d/%d flipped", where, bit, off, len(blob))
	case FaultTruncate:
		if len(blob) == 0 {
			return nil, "empty blob", nil
		}
		cut := m.pick(len(blob))
		detail = fmt.Sprintf("%s: truncated to %d/%d bytes", where, cut, len(blob))
		blob = append([]byte(nil), blob[:cut]...)
	case FaultLenLie:
		lied, d, ok := lieAboutCount(blob, victim < rec.Threads, m)
		if !ok {
			return nil, "count lie not applicable", nil
		}
		blob, detail = lied, where+": "+d
	}

	// Decode through the real parser.
	mut := copyBundle(rec)
	if victim < rec.Threads {
		l, err := chunk.UnmarshalLog(blob)
		if err != nil {
			return nil, detail, err
		}
		mut.ChunkLogs[victim] = l
	} else {
		il, err := capo.UnmarshalInputLog(blob)
		if err != nil {
			return nil, detail, err
		}
		mut.InputLog = il
	}
	return mut, detail, nil
}

// lieAboutCount rewrites the entry/record count uvarint in a log header,
// keeping the body bytes untouched — the classic length-field lie.
func lieAboutCount(blob []byte, isChunkLog bool, m *mutator) (out []byte, detail string, ok bool) {
	// Header prefix before the count varint: chunk logs carry
	// magic[4] version[1] encodingID[1] thread[uvarint]; input logs
	// magic[4] version[1].
	pos := 5
	if isChunkLog {
		pos = 6
		c := wire.CursorOf(blob[pos:])
		if _, err := c.Uvarint(); err != nil {
			return nil, "", false
		}
		pos += c.Pos()
	}
	c := wire.CursorOf(blob[pos:])
	count, err := c.Uvarint()
	if err != nil {
		return nil, "", false
	}
	n := c.Pos()
	deltas := []int64{1, 3, -1, 7}
	d := deltas[m.pick(len(deltas))]
	lied := int64(count) + d
	if lied < 0 {
		lied = 0
	}
	a := wire.AppenderOf(append(out, blob[:pos]...))
	a.Uvarint(uint64(lied))
	a.Raw(blob[pos+n:])
	return a.Buf, fmt.Sprintf("count %d rewritten to %d", count, lied), true
}

// applyStructuralFault corrupts the decoded form of one log.
func applyStructuralFault(rec *core.Bundle, class FaultClass, m *mutator) (*core.Bundle, string, error) {
	mut := copyBundle(rec)
	switch class {
	case FaultDrop:
		if m.next()%2 == 0 {
			t, l := pickChunkLog(mut, m, 1)
			if l == nil {
				return nil, "no chunk entries", nil
			}
			i := m.pick(len(l.Entries))
			dropped := l.Entries[i]
			l.Entries = append(l.Entries[:i], l.Entries[i+1:]...)
			return mut, fmt.Sprintf("chunk log t%d: entry %d (%v) dropped", t, i, dropped), nil
		}
		if len(mut.InputLog.Records) == 0 {
			return nil, "no input records", nil
		}
		i := m.pick(len(mut.InputLog.Records))
		dropped := mut.InputLog.Records[i]
		mut.InputLog.Records = append(mut.InputLog.Records[:i], mut.InputLog.Records[i+1:]...)
		return mut, fmt.Sprintf("input log: record %d (%v) dropped", i, dropped), nil

	case FaultDuplicate:
		if m.next()%2 == 0 {
			t, l := pickChunkLog(mut, m, 1)
			if l == nil {
				return nil, "no chunk entries", nil
			}
			i := m.pick(len(l.Entries))
			l.Entries = append(l.Entries[:i+1], l.Entries[i:]...)
			return mut, fmt.Sprintf("chunk log t%d: entry %d duplicated", t, i), nil
		}
		if len(mut.InputLog.Records) == 0 {
			return nil, "no input records", nil
		}
		i := m.pick(len(mut.InputLog.Records))
		recs := mut.InputLog.Records
		mut.InputLog.Records = append(recs[:i+1], recs[i:]...)
		return mut, fmt.Sprintf("input log: record %d duplicated", i), nil

	case FaultReorder:
		if m.next()%2 == 0 {
			t, l := pickChunkLog(mut, m, 2)
			if l == nil {
				return nil, "no adjacent chunk pair", nil
			}
			i := m.pick(len(l.Entries) - 1)
			a, b := &l.Entries[i], &l.Entries[i+1]
			if a.Size == b.Size && a.RepResidue == b.RepResidue {
				return nil, "adjacent chunks identical", nil
			}
			// Swap payloads, keep the timestamps in place: the stream
			// stays monotonic but the chunks arrive in the wrong order.
			a.Size, b.Size = b.Size, a.Size
			a.Reason, b.Reason = b.Reason, a.Reason
			a.RepResidue, b.RepResidue = b.RepResidue, a.RepResidue
			return mut, fmt.Sprintf("chunk log t%d: entries %d,%d reordered", t, i, i+1), nil
		}
		// Swap the timestamps of two consecutive same-thread records:
		// replay consumes them in TS order, so this reorders the kernel
		// events.
		pairs := adjacentSameThread(mut.InputLog.Records)
		if len(pairs) == 0 {
			return nil, "no same-thread record pair", nil
		}
		p := pairs[m.pick(len(pairs))]
		recs := mut.InputLog.Records
		if recs[p[0]].TS == recs[p[1]].TS {
			return nil, "records share a timestamp", nil
		}
		recs[p[0]].TS, recs[p[1]].TS = recs[p[1]].TS, recs[p[0]].TS
		return mut, fmt.Sprintf("input log: records %d,%d (t%d) reordered", p[0], p[1], recs[p[0]].Thread), nil

	case FaultSizeLie:
		t, l := pickChunkLog(mut, m, 1)
		if l == nil {
			return nil, "no chunk entries", nil
		}
		i := m.pick(len(l.Entries))
		e := &l.Entries[i]
		delta := int64(1 + m.pick(3))
		if m.next()%2 == 0 && e.Size >= uint64(delta) {
			e.Size -= uint64(delta)
			delta = -delta
		} else {
			e.Size += uint64(delta)
		}
		return mut, fmt.Sprintf("chunk log t%d: entry %d size lied by %+d", t, i, delta), nil

	case FaultPayload:
		if len(mut.InputLog.Records) == 0 {
			return nil, "no input records", nil
		}
		i := m.pick(len(mut.InputLog.Records))
		r := &mut.InputLog.Records[i]
		if r.Kind == capo.KindSignal {
			if m.next()%2 == 0 {
				r.Retired++
				return mut, fmt.Sprintf("input log: signal %d delivery position lied (+1)", i), nil
			}
			r.RepDone++
			return mut, fmt.Sprintf("input log: signal %d REP residue lied (+1)", i), nil
		}
		switch m.pick(4) {
		case 0:
			r.Ret ^= 1 + m.next()%255
			return mut, fmt.Sprintf("input log: syscall %d result corrupted", i), nil
		case 1:
			if len(r.Data) == 0 {
				return nil, "syscall carries no data", nil
			}
			off := m.pick(len(r.Data))
			r.Data = append([]byte(nil), r.Data...)
			r.Data[off] ^= byte(1 + m.next()%255)
			return mut, fmt.Sprintf("input log: syscall %d data byte %d corrupted", i, off), nil
		case 2:
			alt := []uint64{capo.SysGetTime, capo.SysRandom, capo.SysGetTID, capo.SysYield}
			was := r.Sysno
			r.Sysno = alt[m.pick(len(alt))]
			if r.Sysno == was {
				return nil, "sysno swap landed on itself", nil
			}
			return mut, fmt.Sprintf("input log: syscall %d number %d rewritten to %d", i, was, r.Sysno), nil
		default:
			if len(r.Data) == 0 {
				return nil, "syscall carries no data", nil
			}
			r.Addr += 8
			return mut, fmt.Sprintf("input log: syscall %d destination address shifted", i), nil
		}
	}
	return nil, fmt.Sprintf("unknown structural class %q", class), nil
}

// pickChunkLog returns a random thread's chunk log with at least min
// entries, or nil when none qualifies.
func pickChunkLog(b *core.Bundle, m *mutator, min int) (int, *chunk.Log) {
	start := m.pick(b.Threads)
	for k := 0; k < b.Threads; k++ {
		t := (start + k) % b.Threads
		if len(b.ChunkLogs[t].Entries) >= min {
			return t, b.ChunkLogs[t]
		}
	}
	return -1, nil
}

// adjacentSameThread lists index pairs of consecutive records belonging
// to the same thread (consecutive in that thread's subsequence).
func adjacentSameThread(recs []capo.Record) [][2]int {
	last := map[int]int{}
	var out [][2]int
	for i, r := range recs {
		if j, ok := last[r.Thread]; ok {
			out = append(out, [2]int{j, i})
		}
		last[r.Thread] = i
	}
	return out
}

// copyBundle deep-copies the parts of a bundle the mutation engine may
// touch (logs); reference state and metadata are shared, since no fault
// class rewrites them.
func copyBundle(b *core.Bundle) *core.Bundle {
	out := *b
	out.ChunkLogs = make([]*chunk.Log, len(b.ChunkLogs))
	for i, l := range b.ChunkLogs {
		cl := &chunk.Log{Thread: l.Thread, Entries: append([]chunk.Entry(nil), l.Entries...)}
		out.ChunkLogs[i] = cl
	}
	out.InputLog = &capo.InputLog{Records: append([]capo.Record(nil), b.InputLog.Records...)}
	return &out
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
