package workload

import (
	"repro/internal/isa"
	"repro/internal/mem"
)

// FMM builds the fast-multipole-like kernel: a quadtree of cells stored
// level by level, with a barrier-separated upward pass (each cell
// combines its four children, which other threads wrote) and a downward
// pass (each cell reads its parent and siblings) — SPLASH-2 FMM's
// hierarchical producer/consumer sharing. levels counts tree levels;
// level l holds 4^l cells, owned cyclically by thread.
func FMM(levels int, threads int) *isa.Program {
	if levels < 2 || levels > 8 {
		panic("workload: FMM needs 2..8 levels")
	}
	var lay mem.Layout
	levelBase := make([]uint64, levels)
	cells := make([]uint64, levels)
	for l := 0; l < levels; l++ {
		cells[l] = 1 << (2 * uint(l)) // 4^l
		levelBase[l] = lay.AllocWords(cells[l])
	}
	// Scratch buffer for the downward pass's double buffering (sized for
	// the largest level).
	scratch := lay.AllocWords(cells[levels-1])
	bar := lay.AllocWords(2)
	p := uint64(threads)

	b := isa.NewBuilder("fmm")
	b.Liu(isa.R31, p)

	// Upward pass: for l = levels-2 down to 0, each owned cell combines
	// its four children from level l+1.
	for l := levels - 2; l >= 0; l-- {
		pfx := uniquePrefix("up", l)
		b.Li(isa.R3, 0) // cell index c
		b.Liu(isa.R30, cells[l])
		b.Label(pfx + "_loop")
		b.Bgeu(isa.R3, isa.R30, pfx+"_done")
		b.Rem(isa.R4, isa.R3, isa.R31)
		b.Bne(isa.R4, RegTID, pfx+"_next")
		// children at level l+1: indices 4c..4c+3
		b.Shli(isa.R5, isa.R3, 2)
		b.Shli(isa.R5, isa.R5, 3)
		b.Liu(isa.R6, levelBase[l+1])
		b.Add(isa.R5, isa.R6, isa.R5) // &child[4c]
		b.Ld(isa.R7, isa.R5, 0)
		b.Ld(isa.R8, isa.R5, 8)
		b.Add(isa.R7, isa.R7, isa.R8)
		b.Ld(isa.R8, isa.R5, 16)
		b.Add(isa.R7, isa.R7, isa.R8)
		b.Ld(isa.R8, isa.R5, 24)
		b.Add(isa.R7, isa.R7, isa.R8)
		b.Muli(isa.R7, isa.R7, fftMixMul)
		b.Shli(isa.R8, isa.R3, 3)
		b.Liu(isa.R6, levelBase[l])
		b.Add(isa.R8, isa.R6, isa.R8)
		b.St(isa.R8, 0, isa.R7) // cell[l][c] = mix(sum of children)
		b.Label(pfx + "_next")
		b.Addi(isa.R3, isa.R3, 1)
		b.Jmp(pfx + "_loop")
		b.Label(pfx + "_done")
		b.Liu(isa.R9, bar)
		EmitBarrier(b, pfx+"_b", isa.R9)
	}

	// Downward pass: for l = 1..levels-1, each owned cell folds in its
	// parent (level l-1) and its previous sibling within the level.
	// Double-buffered through scratch so sibling reads see the pre-pass
	// values regardless of schedule (the pass is race-free).
	for l := 1; l < levels; l++ {
		pfx := uniquePrefix("down", l)
		b.Li(isa.R3, 0)
		b.Liu(isa.R30, cells[l])
		b.Label(pfx + "_loop")
		b.Bgeu(isa.R3, isa.R30, pfx+"_done")
		b.Rem(isa.R4, isa.R3, isa.R31)
		b.Bne(isa.R4, RegTID, pfx+"_next")
		b.Shri(isa.R5, isa.R3, 2) // parent index c/4
		b.Shli(isa.R5, isa.R5, 3)
		b.Liu(isa.R6, levelBase[l-1])
		b.Add(isa.R5, isa.R6, isa.R5)
		b.Ld(isa.R7, isa.R5, 0) // parent value
		// previous sibling (c-1 mod cells) in this level
		b.Addi(isa.R8, isa.R3, -1)
		b.Addi(isa.R15, isa.R30, -1)
		b.And(isa.R8, isa.R8, isa.R15) // cells is a power of 4: mask wraps
		b.Shli(isa.R8, isa.R8, 3)
		b.Liu(isa.R6, levelBase[l])
		b.Add(isa.R8, isa.R6, isa.R8)
		b.Ld(isa.R15, isa.R8, 0)
		b.Xor(isa.R7, isa.R7, isa.R15)
		b.Shli(isa.R8, isa.R3, 3)
		b.Add(isa.R16, isa.R6, isa.R8)
		b.Ld(isa.R15, isa.R16, 0)
		b.Add(isa.R7, isa.R7, isa.R15)
		b.Liu(isa.R16, scratch)
		b.Add(isa.R16, isa.R16, isa.R8)
		b.St(isa.R16, 0, isa.R7) // scratch[c] = cell + (parent ^ sibling)
		b.Label(pfx + "_next")
		b.Addi(isa.R3, isa.R3, 1)
		b.Jmp(pfx + "_loop")
		b.Label(pfx + "_done")
		b.Liu(isa.R9, bar)
		EmitBarrier(b, pfx+"_b", isa.R9)

		// Publish: copy owned scratch cells into the level.
		b.Li(isa.R3, 0)
		b.Label(pfx + "_pub")
		b.Bgeu(isa.R3, isa.R30, pfx+"_pubdone")
		b.Rem(isa.R4, isa.R3, isa.R31)
		b.Bne(isa.R4, RegTID, pfx+"_pubnext")
		b.Shli(isa.R8, isa.R3, 3)
		b.Liu(isa.R16, scratch)
		b.Add(isa.R16, isa.R16, isa.R8)
		b.Ld(isa.R7, isa.R16, 0)
		b.Liu(isa.R6, levelBase[l])
		b.Add(isa.R6, isa.R6, isa.R8)
		b.St(isa.R6, 0, isa.R7)
		b.Label(pfx + "_pubnext")
		b.Addi(isa.R3, isa.R3, 1)
		b.Jmp(pfx + "_pub")
		b.Label(pfx + "_pubdone")
		b.Liu(isa.R9, bar)
		EmitBarrier(b, pfx+"_pb", isa.R9)
	}
	b.Halt()

	init := func(m *mem.Memory) {
		for l := 0; l < levels; l++ {
			for c := uint64(0); c < cells[l]; c++ {
				m.Store(levelBase[l]+c*8, c*uint64(l*1009+31)+7)
			}
		}
	}
	prog := b.Build(lay.Size(), threads, init)
	prog.Symbols["level0"] = levelBase[0]
	prog.Symbols["leaf"] = levelBase[levels-1]
	return prog
}

// FMMReference computes FMM's expected per-level final arrays. The
// downward pass's sibling reads see pre-pass values (the kernel double
// buffers through scratch), so the snapshot semantics here match it
// exactly for every schedule.
func FMMReference(levels int, threads int) [][]uint64 {
	cells := make([]uint64, levels)
	base := make([][]uint64, levels)
	for l := 0; l < levels; l++ {
		cells[l] = 1 << (2 * uint(l))
		base[l] = make([]uint64, cells[l])
		for c := uint64(0); c < cells[l]; c++ {
			base[l][c] = c*uint64(l*1009+31) + 7
		}
	}
	for l := levels - 2; l >= 0; l-- {
		for c := uint64(0); c < cells[l]; c++ {
			sum := base[l+1][4*c] + base[l+1][4*c+1] + base[l+1][4*c+2] + base[l+1][4*c+3]
			base[l][c] = sum * fftMixMul
		}
	}
	for l := 1; l < levels; l++ {
		prev := append([]uint64(nil), base[l]...) // pre-pass snapshot
		for c := uint64(0); c < cells[l]; c++ {
			sib := (c - 1) & (cells[l] - 1)
			base[l][c] = prev[c] + (base[l-1][c/4] ^ prev[sib])
		}
	}
	return base
}
