package workload

import (
	"repro/internal/capo"
	"repro/internal/isa"
	"repro/internal/mem"
)

// Barnes builds the tree-update-like kernel: threads perform
// pseudo-random walks over a shared node array, updating per-node
// accumulators under per-node futex locks — the irregular, fine-grained
// locking of SPLASH-2 BARNES. Each node occupies one cache line with its
// lock word co-resident, so lock and data contention coincide.
func Barnes(nodes uint64, steps int64, threads int) *isa.Program {
	var lay mem.Layout
	tree := lay.AllocWords(nodes * 8) // 8 words (one line) per node: [lock, value, ...]
	bar := lay.AllocWords(2)

	b := isa.NewBuilder("barnes")
	b.Liu(isa.R30, nodes)
	b.Liu(isa.R28, 0x9E3779B97F4A7C15)
	b.Li(isa.R3, 0) // step s
	b.Li(isa.R4, steps)
	// seed = tid*steps so every thread walks a distinct sequence
	b.Li(isa.R5, steps)
	b.Mul(isa.R5, RegTID, isa.R5)

	b.Label("walk")
	// idx = mix(seed + s) % nodes
	b.Add(isa.R6, isa.R5, isa.R3)
	b.Mul(isa.R6, isa.R6, isa.R28)
	b.Shri(isa.R7, isa.R6, 29)
	b.Xor(isa.R6, isa.R6, isa.R7)
	b.Rem(isa.R6, isa.R6, isa.R30)
	b.Muli(isa.R6, isa.R6, 64)
	b.Liu(isa.R7, tree)
	b.Add(isa.R6, isa.R7, isa.R6) // node base = lock word address
	EmitFutexLock(b, "bn", isa.R6)
	b.Ld(isa.R8, isa.R6, 8)
	b.Addi(isa.R9, isa.R3, 1)
	b.Add(isa.R8, isa.R8, isa.R9) // value += s+1
	b.St(isa.R6, 8, isa.R8)
	EmitFutexUnlock(b, "bn", isa.R6)
	b.Addi(isa.R3, isa.R3, 1)
	b.Bne(isa.R3, isa.R4, "walk")
	b.Liu(isa.R9, bar)
	EmitBarrier(b, "bb", isa.R9)
	b.Halt()

	prog := b.Build(lay.Size(), threads, nil)
	prog.Symbols["tree"] = tree
	return prog
}

// BarnesExpectedSum returns the schedule-independent total of all node
// values after a Barnes run: every thread adds 1+2+...+steps.
func BarnesExpectedSum(steps int64, threads int) uint64 {
	per := uint64(steps) * uint64(steps+1) / 2
	return per * uint64(threads)
}

const rayMixMul = 0xC2B2AE3D

// Raytrace builds the work-stealing kernel: threads race fetch-adds on a
// shared task cursor and render disjoint framebuffer slots from a
// read-only scene — SPLASH-2 RAYTRACE's dynamic load balancing. Task
// assignment is schedule-dependent; the rendered contents are not.
func Raytrace(tasks, sceneWords, samplesPerTask uint64, threads int) *isa.Program {
	var lay mem.Layout
	scene := lay.AllocWords(sceneWords)
	fb := lay.AllocWords(tasks)
	cursor := lay.AllocWords(1)
	bar := lay.AllocWords(2)

	b := isa.NewBuilder("raytrace")
	b.Liu(isa.R30, tasks)
	b.Liu(isa.R31, sceneWords)
	b.Li(isa.R15, 1)

	b.Label("steal")
	b.Liu(isa.R3, cursor)
	b.Fadd(isa.R4, isa.R3, 0, isa.R15) // t = cursor++
	b.Bgeu(isa.R4, isa.R30, "done")
	// Render task t: acc over samplesPerTask scene reads.
	b.Li(isa.R5, 0) // k
	b.Li(isa.R6, 0) // acc
	b.Liu(isa.R7, samplesPerTask)
	b.Label("sample")
	// pos = (t*samples + k) mixed % sceneWords
	b.Muli(isa.R8, isa.R4, int64(samplesPerTask))
	b.Add(isa.R8, isa.R8, isa.R5)
	b.Muli(isa.R8, isa.R8, rayMixMul)
	b.Shri(isa.R9, isa.R8, 15)
	b.Xor(isa.R8, isa.R8, isa.R9)
	b.Rem(isa.R8, isa.R8, isa.R31)
	b.Shli(isa.R8, isa.R8, 3)
	b.Liu(isa.R9, scene)
	b.Add(isa.R8, isa.R9, isa.R8)
	b.Ld(isa.R9, isa.R8, 0)
	b.Add(isa.R6, isa.R6, isa.R9)
	b.Addi(isa.R5, isa.R5, 1)
	b.Bne(isa.R5, isa.R7, "sample")
	// fb[t] = acc ^ t
	b.Xor(isa.R6, isa.R6, isa.R4)
	b.Shli(isa.R8, isa.R4, 3)
	b.Liu(isa.R9, fb)
	b.Add(isa.R8, isa.R9, isa.R8)
	b.St(isa.R8, 0, isa.R6)
	b.Jmp("steal")
	b.Label("done")
	b.Liu(isa.R9, bar)
	EmitBarrier(b, "rb", isa.R9)
	b.Halt()

	init := func(m *mem.Memory) {
		for i := uint64(0); i < sceneWords; i++ {
			m.Store(scene+i*8, i*31+7)
		}
	}
	prog := b.Build(lay.Size(), threads, init)
	prog.Symbols["scene"] = scene
	prog.Symbols["fb"] = fb
	return prog
}

// RaytraceReference computes the expected framebuffer contents (task
// outputs are deterministic regardless of which thread renders them).
func RaytraceReference(tasks, sceneWords, samplesPerTask uint64) []uint64 {
	scene := make([]uint64, sceneWords)
	for i := range scene {
		scene[i] = uint64(i)*31 + 7
	}
	fb := make([]uint64, tasks)
	for t := uint64(0); t < tasks; t++ {
		var acc uint64
		for k := uint64(0); k < samplesPerTask; k++ {
			pos := (t*samplesPerTask + k) * rayMixMul
			pos ^= pos >> 15
			acc += scene[pos%sceneWords]
		}
		fb[t] = acc ^ t
	}
	return fb
}

// Water builds the mostly-private kernel: threads iterate over private
// molecule arrays and fold a per-step partial sum into one lock-protected
// global accumulator per step, barrier-separated — SPLASH-2 WATER's
// compute/reduce cadence. Sharing is rare, so chunks should be long.
func Water(molWords uint64, steps int64, threads int) *isa.Program {
	var lay mem.Layout
	mols := make([]uint64, threads)
	for t := range mols {
		mols[t] = lay.AllocWords(molWords)
	}
	base := mols[0]
	stride := uint64(0)
	if threads > 1 {
		stride = mols[1] - mols[0]
	}
	lock := lay.AllocWords(1)
	global := lay.AllocWords(1)
	bar := lay.AllocWords(2)

	b := isa.NewBuilder("water")
	b.Liu(isa.R3, base)
	b.Liu(isa.R4, stride)
	b.Mul(isa.R4, RegTID, isa.R4)
	b.Add(isa.R3, isa.R3, isa.R4) // my molecules
	b.Li(isa.R5, 0)               // step
	b.Li(isa.R6, steps)

	b.Label("step")
	// Private update pass: mol[i] = mix(mol[i]); partial += mol[i]
	b.Li(isa.R7, 0)
	b.Mov(isa.R8, isa.R3)
	b.Li(isa.R15, 0) // partial
	b.Label("mol")
	b.Ld(isa.R9, isa.R8, 0)
	b.Muli(isa.R9, isa.R9, luMixMul)
	b.Shri(isa.R16, isa.R9, 19)
	b.Xor(isa.R9, isa.R9, isa.R16)
	b.St(isa.R8, 0, isa.R9)
	b.Add(isa.R15, isa.R15, isa.R9)
	b.Addi(isa.R8, isa.R8, 8)
	b.Addi(isa.R7, isa.R7, 1)
	b.Liu(isa.R16, molWords)
	b.Bne(isa.R7, isa.R16, "mol")
	// Reduce under the global lock.
	b.Liu(isa.R7, lock)
	EmitFutexLock(b, "wl", isa.R7)
	b.Liu(isa.R8, global)
	b.Ld(isa.R9, isa.R8, 0)
	b.Add(isa.R9, isa.R9, isa.R15)
	b.St(isa.R8, 0, isa.R9)
	EmitFutexUnlock(b, "wl", isa.R7)
	b.Liu(isa.R9, bar)
	EmitBarrier(b, "wb", isa.R9)
	b.Addi(isa.R5, isa.R5, 1)
	b.Bne(isa.R5, isa.R6, "step")
	b.Halt()

	init := func(m *mem.Memory) {
		for t := 0; t < threads; t++ {
			for i := uint64(0); i < molWords; i++ {
				m.Store(mols[t]+i*8, i^uint64(t*977+3))
			}
		}
	}
	prog := b.Build(lay.Size(), threads, init)
	prog.Symbols["global"] = global
	return prog
}

// WaterExpectedGlobal computes the deterministic final value of Water's
// global accumulator.
func WaterExpectedGlobal(molWords uint64, steps int64, threads int) uint64 {
	var total uint64
	for t := 0; t < threads; t++ {
		mol := make([]uint64, molWords)
		for i := range mol {
			mol[i] = uint64(i) ^ uint64(t*977+3)
		}
		for s := int64(0); s < steps; s++ {
			for i := range mol {
				x := mol[i] * luMixMul
				x ^= x >> 19
				mol[i] = x
				total += x
			}
		}
	}
	return total
}

// Volrend builds the read-sharing kernel: threads steal rays from a
// shared cursor and march each through a large read-only voxel volume —
// SPLASH-2 VOLREND's pattern of heavy concurrent read sharing, which
// must NOT terminate chunks (read-read is no conflict). A per-ray output
// slot plus a write syscall every few rays adds light kernel traffic.
func Volrend(rays, voxelWords, stepsPerRay uint64, threads int) *isa.Program {
	var lay mem.Layout
	voxels := lay.AllocWords(voxelWords)
	out := lay.AllocWords(rays)
	cursor := lay.AllocWords(1)
	bar := lay.AllocWords(2)

	b := isa.NewBuilder("volrend")
	b.Liu(isa.R30, rays)
	b.Liu(isa.R31, voxelWords)
	b.Li(isa.R15, 1)

	b.Label("steal")
	b.Liu(isa.R3, cursor)
	b.Fadd(isa.R4, isa.R3, 0, isa.R15)
	b.Bgeu(isa.R4, isa.R30, "done")
	// March ray t: pos advances by a ray-dependent odd stride.
	b.Muli(isa.R5, isa.R4, 2)
	b.Addi(isa.R5, isa.R5, 1) // stride = 2t+1 (odd, cycles the volume)
	b.Mov(isa.R6, isa.R4)     // pos = t
	b.Li(isa.R7, 0)           // acc
	b.Li(isa.R8, 0)           // k
	b.Label("march")
	b.Rem(isa.R9, isa.R6, isa.R31)
	b.Shli(isa.R9, isa.R9, 3)
	b.Liu(isa.R16, voxels)
	b.Add(isa.R9, isa.R16, isa.R9)
	b.Ld(isa.R16, isa.R9, 0)
	b.Xor(isa.R7, isa.R7, isa.R16)
	b.Add(isa.R7, isa.R7, isa.R8)
	b.Add(isa.R6, isa.R6, isa.R5)
	b.Addi(isa.R8, isa.R8, 1)
	b.Liu(isa.R9, stepsPerRay)
	b.Bne(isa.R8, isa.R9, "march")
	// out[t] = acc
	b.Shli(isa.R9, isa.R4, 3)
	b.Liu(isa.R16, out)
	b.Add(isa.R9, isa.R16, isa.R9)
	b.St(isa.R9, 0, isa.R7)
	// Progress beacon every 64th ray: write the ray id to fd 1.
	b.Andi(isa.R9, isa.R4, 63)
	b.Bne(isa.R9, isa.R0, "steal")
	b.St(RegStack, 0, isa.R4)
	b.Li(isa.RRet, int64(capo.SysWrite))
	b.Li(isa.R11, 1)
	b.Mov(isa.R12, RegStack)
	b.Li(isa.R13, 8)
	b.Syscall()
	b.Jmp("steal")
	b.Label("done")
	b.Liu(isa.R9, bar)
	EmitBarrier(b, "vb", isa.R9)
	b.Halt()

	init := func(m *mem.Memory) {
		for i := uint64(0); i < voxelWords; i++ {
			m.Store(voxels+i*8, i*2654435761+11)
		}
	}
	prog := b.Build(lay.Size(), threads, init)
	prog.Symbols["voxels"] = voxels
	prog.Symbols["out"] = out
	return prog
}

// VolrendReference computes the expected per-ray outputs.
func VolrendReference(rays, voxelWords, stepsPerRay uint64) []uint64 {
	vox := make([]uint64, voxelWords)
	for i := range vox {
		vox[i] = uint64(i)*2654435761 + 11
	}
	out := make([]uint64, rays)
	for t := uint64(0); t < rays; t++ {
		stride := 2*t + 1
		pos := t
		var acc uint64
		for k := uint64(0); k < stepsPerRay; k++ {
			acc ^= vox[pos%voxelWords]
			acc += k
			pos += stride
		}
		out[t] = acc
	}
	return out
}
