package workload

import (
	"repro/internal/capo"
	"repro/internal/isa"
	"repro/internal/mem"
)

// Long-running server workloads: request-processing loops that sustain
// syscall and synchronization traffic indefinitely — the always-on
// services a flight recorder (Config.RetainCheckpoints) is built for.
// Both are bounded by a per-thread request count so tests terminate, but
// the loop body has no phase structure: any checkpoint window cut out of
// the middle of a run looks like any other, which is exactly what the
// windowed-recording properties need.

// ReqServer builds a request server over a shared futex-locked bounded
// ring: every thread is both producer and consumer. Per iteration a
// thread reads a 16-byte request from fd 0 (external nondeterminism),
// enqueues the payload, dequeues one item (not necessarily its own),
// folds it into a bucket-locked stats table, stamps the iteration with
// SysGetTime, and every 8th iteration writes an 8-byte response to fd 1.
// Full/empty conditions park on the ring's count word with FutexWait.
//
// The produce-then-consume-per-iteration shape makes the queue protocol
// deadlock-free without a drain phase: a thread waiting to produce has
// produced exactly as many items as it consumed, so "all threads stuck
// producing" would need count == slots and count == 0 at once; a thread
// waiting to consume has produced one more than it consumed, so the ring
// cannot be globally empty while anyone waits on it. Every enqueue and
// dequeue wakes all sleepers on the count word.
//
// slots and buckets must be powers of two.
func ReqServer(requestsPerThread int64, slots, buckets uint64, threads int) *isa.Program {
	if slots&(slots-1) != 0 || buckets&(buckets-1) != 0 {
		panic("workload: ReqServer slots and buckets must be powers of two")
	}
	var lay mem.Layout
	// Ring control words, one cache line: [lock, count, head, tail, ...].
	qctl := lay.AllocWords(8)
	ring := lay.AllocWords(slots)
	// One cache line per stats bucket: [lock, count, sum, ...].
	stats := lay.AllocWords(buckets * 8)
	bar := lay.AllocWords(2)

	b := isa.NewBuilder("reqserver")
	b.Liu(isa.R3, qctl)
	b.Liu(isa.R4, ring)
	b.Liu(isa.R6, stats)
	b.Addi(isa.R5, RegStack, 64) // private request buffer
	b.Li(isa.R7, 0)              // iteration counter
	b.Li(isa.R17, 0)             // response accumulator

	b.Label("serve")
	// Receive one request: key, value (external input).
	b.Li(isa.RRet, int64(capo.SysRead))
	b.Li(isa.R11, 0)
	b.Mov(isa.R12, isa.R5)
	b.Li(isa.R13, 16)
	b.Syscall()
	b.Ld(isa.R15, isa.R5, 0)
	b.Ld(isa.R16, isa.R5, 8)
	b.Add(isa.R18, isa.R15, isa.R16) // payload = key + value

	b.Label("produce")
	EmitFutexLock(b, "qp", isa.R3)
	b.Ld(isa.R19, isa.R3, 8) // count
	b.Li(isa.R28, int64(slots))
	b.Bne(isa.R19, isa.R28, "havespace")
	// Ring full: release the lock and park until a dequeue moves count.
	EmitFutexUnlock(b, "qpf", isa.R3)
	b.Li(isa.RRet, int64(capo.SysFutexWait))
	b.Addi(isa.R11, isa.R3, 8)
	b.Li(isa.R12, int64(slots))
	b.Syscall()
	b.Jmp("produce")
	b.Label("havespace")
	b.Ld(isa.R19, isa.R3, 24) // tail
	b.Andi(isa.R15, isa.R19, int64(slots-1))
	b.Muli(isa.R15, isa.R15, 8)
	b.Add(isa.R15, isa.R4, isa.R15)
	b.St(isa.R15, 0, isa.R18) // ring[tail % slots] = payload
	b.Addi(isa.R19, isa.R19, 1)
	b.St(isa.R3, 24, isa.R19)
	b.Ld(isa.R19, isa.R3, 8)
	b.Addi(isa.R19, isa.R19, 1)
	b.St(isa.R3, 8, isa.R19) // count++
	EmitFutexUnlock(b, "qpu", isa.R3)
	b.Li(isa.RRet, int64(capo.SysFutexWake))
	b.Addi(isa.R11, isa.R3, 8)
	b.Li(isa.R12, 1<<30) // wake all sleepers on count
	b.Syscall()

	b.Label("consume")
	EmitFutexLock(b, "qc", isa.R3)
	b.Ld(isa.R19, isa.R3, 8) // count
	b.Bne(isa.R19, isa.R0, "haveitem")
	// Ring empty: release the lock and park until an enqueue moves count.
	EmitFutexUnlock(b, "qce", isa.R3)
	b.Li(isa.RRet, int64(capo.SysFutexWait))
	b.Addi(isa.R11, isa.R3, 8)
	b.Li(isa.R12, 0)
	b.Syscall()
	b.Jmp("consume")
	b.Label("haveitem")
	b.Ld(isa.R19, isa.R3, 16) // head
	b.Andi(isa.R15, isa.R19, int64(slots-1))
	b.Muli(isa.R15, isa.R15, 8)
	b.Add(isa.R15, isa.R4, isa.R15)
	b.Ld(isa.R28, isa.R15, 0) // item (any thread's payload)
	b.Addi(isa.R19, isa.R19, 1)
	b.St(isa.R3, 16, isa.R19)
	b.Ld(isa.R19, isa.R3, 8)
	b.Addi(isa.R19, isa.R19, -1)
	b.St(isa.R3, 8, isa.R19) // count--
	EmitFutexUnlock(b, "qcu", isa.R3)
	b.Li(isa.RRet, int64(capo.SysFutexWake))
	b.Addi(isa.R11, isa.R3, 8)
	b.Li(isa.R12, 1<<30)
	b.Syscall()

	// Process: fold the item into its bucket-locked stats line.
	b.Andi(isa.R15, isa.R28, int64(buckets-1))
	b.Muli(isa.R15, isa.R15, 64)
	b.Add(isa.R15, isa.R6, isa.R15) // bucket base (lock word)
	EmitFutexLock(b, "sb", isa.R15)
	b.Ld(isa.R16, isa.R15, 8)
	b.Addi(isa.R16, isa.R16, 1)
	b.St(isa.R15, 8, isa.R16) // count++
	b.Ld(isa.R16, isa.R15, 16)
	b.Add(isa.R16, isa.R16, isa.R28)
	b.St(isa.R15, 16, isa.R16) // sum += item
	EmitFutexUnlock(b, "sbu", isa.R15)
	b.Add(isa.R17, isa.R17, isa.R28)

	// Stamp the iteration (more input-log traffic) and respond every 8th.
	EmitSyscall0(b, capo.SysGetTime)
	b.Andi(isa.R19, isa.R7, 7)
	b.Bne(isa.R19, isa.R0, "next")
	b.St(isa.R5, 0, isa.R17)
	b.Li(isa.RRet, int64(capo.SysWrite))
	b.Li(isa.R11, 1)
	b.Mov(isa.R12, isa.R5)
	b.Li(isa.R13, 8)
	b.Syscall()
	b.Label("next")
	b.Addi(isa.R7, isa.R7, 1)
	b.Li(isa.R19, requestsPerThread)
	b.Bne(isa.R7, isa.R19, "serve")

	// Final response and shutdown barrier.
	b.St(isa.R5, 0, isa.R17)
	b.Li(isa.RRet, int64(capo.SysWrite))
	b.Li(isa.R11, 1)
	b.Mov(isa.R12, isa.R5)
	b.Li(isa.R13, 8)
	b.Syscall()
	b.Liu(isa.R9, bar)
	EmitBarrier(b, "rb", isa.R9)
	b.Halt()

	prog := b.Build(lay.Size(), threads, nil)
	prog.Symbols["stats"] = stats
	return prog
}

// SigServer builds a signal-driven server: thread 0 registers a handler
// that counts asynchronous signal deliveries, then every thread runs a
// sustained request loop — SysRead a request, fold it into a shared
// atomic total, SysGetTime, and every 4th iteration SysWrite a response.
// Under a config with SignalPeriodInstrs set, signals interleave with
// the syscall traffic at arbitrary instruction boundaries; without it
// the handler simply never fires and the workload is a plain
// syscall-heavy service loop. Either way the request loop sustains
// input-log and chunk traffic for flight-recorder windows to cut.
func SigServer(requestsPerThread int64, threads int) *isa.Program {
	var lay mem.Layout
	total := lay.AllocWords(1)
	sigCount := lay.AllocWords(1)
	bar := lay.AllocWords(2)

	b := isa.NewBuilder("sigserver")
	b.Bne(RegTID, isa.R0, "wait")
	b.LiLabel(isa.R11, "handler")
	b.Li(isa.RRet, int64(capo.SysSigHandler))
	b.Syscall()
	b.Label("wait")
	b.Liu(isa.R9, bar)
	EmitBarrier(b, "s0", isa.R9)

	b.Liu(isa.R3, total)
	b.Addi(isa.R5, RegStack, 64) // private request buffer
	b.Li(isa.R7, 0)              // iteration counter
	b.Li(isa.R17, 0)             // response accumulator

	b.Label("serve")
	b.Li(isa.RRet, int64(capo.SysRead))
	b.Li(isa.R11, 0)
	b.Mov(isa.R12, isa.R5)
	b.Li(isa.R13, 8)
	b.Syscall()
	b.Ld(isa.R15, isa.R5, 0)
	b.Add(isa.R17, isa.R17, isa.R15)
	b.Fadd(isa.R16, isa.R3, 0, isa.R15) // shared atomic total
	EmitSyscall0(b, capo.SysGetTime)
	b.Andi(isa.R19, isa.R7, 3)
	b.Bne(isa.R19, isa.R0, "next")
	b.St(isa.R5, 0, isa.R17)
	b.Li(isa.RRet, int64(capo.SysWrite))
	b.Li(isa.R11, 1)
	b.Mov(isa.R12, isa.R5)
	b.Li(isa.R13, 8)
	b.Syscall()
	b.Label("next")
	b.Addi(isa.R7, isa.R7, 1)
	b.Li(isa.R19, requestsPerThread)
	b.Bne(isa.R7, isa.R19, "serve")

	EmitBarrier(b, "s1", isa.R9)
	b.Halt()

	b.Label("handler")
	b.Liu(isa.R20, sigCount)
	b.Li(isa.R21, 1)
	b.Fadd(isa.R22, isa.R20, 0, isa.R21)
	b.Li(isa.RRet, int64(capo.SysSigReturn))
	b.Syscall() // sigreturn restores the interrupted frame; no code follows

	prog := b.Build(lay.Size(), threads, nil)
	prog.Symbols["total"] = total
	prog.Symbols["sigcount"] = sigCount
	return prog
}
