package workload_test

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/workload"
)

func TestFMMMatchesReference(t *testing.T) {
	const levels, threads = 4, 4
	want := workload.FMMReference(levels, threads)
	for _, seed := range []uint64{31, 32, 33} {
		prog := workload.FMM(levels, threads)
		m := runNative(t, prog, threads, seed)
		// Verify the root and the leaf level (ends of both passes).
		if got := m.Memory().Load(prog.Symbol("level0")); got != want[0][0] {
			t.Fatalf("seed %d: root = %#x, want %#x", seed, got, want[0][0])
		}
		leafBase := prog.Symbol("leaf")
		for c := range want[levels-1] {
			if got := m.Memory().Load(leafBase + uint64(c)*8); got != want[levels-1][c] {
				t.Fatalf("seed %d: leaf[%d] = %#x, want %#x", seed, c, got, want[levels-1][c])
			}
		}
	}
}

func TestFMMLevelValidation(t *testing.T) {
	for _, levels := range []int{1, 9} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FMM(%d) did not panic", levels)
				}
			}()
			workload.FMM(levels, 2)
		}()
	}
}

func TestCholeskyMatchesReference(t *testing.T) {
	const blocks, threads = 12, 4
	want := workload.CholeskyReference(blocks)
	// Task claiming races across seeds; the factorization must not.
	for _, seed := range []uint64{41, 42} {
		prog := workload.Cholesky(blocks, threads)
		m := runNative(t, prog, threads, seed)
		base := prog.Symbol("data")
		for i := range want {
			if got := m.Memory().Load(base + uint64(i)*8); got != want[i] {
				t.Fatalf("seed %d: data[%d] = %#x, want %#x", seed, i, got, want[i])
			}
		}
	}
}

func TestRadiosityMatchesReference(t *testing.T) {
	const patches, tasks, threads = 32, 256, 4
	want := workload.RadiosityReference(patches, tasks)
	prog := workload.Radiosity(patches, tasks, 10, threads)
	m := runNative(t, prog, threads, 51)
	base := prog.Symbol("scene")
	for i := range want {
		if got := m.Memory().Load(base + uint64(i)*64 + 8); got != want[i] {
			t.Fatalf("patch %d energy = %d, want %d", i, got, want[i])
		}
		if lock := m.Memory().Load(base + uint64(i)*64); lock != 0 {
			t.Fatalf("patch %d lock still held", i)
		}
	}
}

func TestNewKernelsRoundTripViaMachineModes(t *testing.T) {
	// Functional equality across recording modes for the new kernels.
	for _, name := range []string{"fmm", "cholesky", "radiosity"} {
		spec, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("%s missing from suite", name)
		}
		prog := spec.Build(4)
		var checksums []uint64
		for _, mode := range []machine.RecordingMode{machine.ModeOff, machine.ModeFull} {
			cfg := machine.DefaultConfig()
			cfg.Mode = mode
			cfg.Threads = 4
			cfg.Seed = 5
			res, err := machine.New(prog, cfg).Run()
			if err != nil {
				t.Fatalf("%s %v: %v", name, mode, err)
			}
			checksums = append(checksums, res.MemChecksum)
		}
		if checksums[0] != checksums[1] {
			t.Errorf("%s: recording changed the execution", name)
		}
	}
}

func TestKVServerInvariants(t *testing.T) {
	const reqs, buckets, threads = 80, 16, 4
	prog := workload.KVServer(reqs, buckets, threads)
	m := runNative(t, prog, threads, 61)
	base := prog.Symbol("table")
	var puts uint64
	for i := uint64(0); i < buckets; i++ {
		if lock := m.Memory().Load(base + i*64); lock != 0 {
			t.Fatalf("bucket %d lock still held", i)
		}
		puts += m.Memory().Load(base + i*64 + 8)
	}
	// Each request is PUT or GET by one input bit: puts <= total and,
	// with random ops, both kinds occur.
	if puts == 0 || puts >= reqs*threads {
		t.Errorf("puts = %d of %d requests; expected a mix", puts, reqs*threads)
	}
}

func TestByteShareLanesIndependent(t *testing.T) {
	const words, iters, threads = 32, 25, 4
	prog := workload.ByteShare(words, iters, threads)
	m := runNative(t, prog, threads, 71)
	base := prog.Symbol("arr")
	want := workload.ByteShareExpected(iters)
	for w := uint64(0); w < words; w++ {
		word := m.Memory().Load(base + w*8)
		for lane := 0; lane < threads; lane++ {
			got := byte(word >> (8 * lane))
			if got != want {
				t.Fatalf("word %d lane %d = %d, want %d (byte stores interfered)", w, lane, got, want)
			}
		}
	}
}

func TestScaledSuiteRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, scale := range []uint64{2, 4} {
		for _, spec := range workload.ScaledSuite(scale) {
			if spec.Kind != "splash" {
				continue
			}
			prog := spec.Build(4)
			cfg := machine.DefaultConfig()
			cfg.Threads = 4
			cfg.Seed = scale
			if _, err := machine.New(prog, cfg).Run(); err != nil {
				t.Fatalf("scale %d %s: %v", scale, spec.Name, err)
			}
		}
	}
	// Scale 1 passes through to the default suite.
	if len(workload.ScaledSuite(1)) != len(workload.Suite()) {
		t.Error("scale 1 differs from default suite")
	}
	if len(workload.ScaledSuite(0)) != len(workload.Suite()) {
		t.Error("scale 0 not treated as default")
	}
}
