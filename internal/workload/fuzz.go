package workload

import (
	"fmt"

	"repro/internal/capo"
	"repro/internal/isa"
	"repro/internal/mem"
)

// RandomProgram generates a terminating SPMD program from a seed: a
// bounded outer loop whose body mixes register arithmetic, shared and
// private memory traffic, atomics, REP string bursts, futex-locked
// critical sections, barriers and syscalls. Every thread runs the same
// code, so barriers always match up, and all addresses are masked into
// valid regions, so any generated program runs to completion.
//
// This is the soundness fuzzer's substrate: curated kernels exercise
// known sharing patterns, while random programs explore the interaction
// space (a REP split inside a critical section two instructions after a
// signal-prone barrier, and so on). The record→replay→verify contract
// must hold for all of them.
func RandomProgram(seed uint64, threads int) *isa.Program {
	g := &progGen{rng: seed*0x9e3779b97f4a7c15 + 1}

	const (
		sharedWords  = 256 // 32 lines of shared data
		privateWords = 128
		outerIters   = 8
	)
	var lay mem.Layout
	shared := lay.AllocWords(sharedWords)
	privates := make([]uint64, threads)
	for t := range privates {
		privates[t] = lay.AllocWords(privateWords)
	}
	stride := uint64(0)
	if threads > 1 {
		stride = privates[1] - privates[0]
	}
	lock := lay.AllocWords(1)
	bar := lay.AllocWords(2)
	repBuf := lay.AllocWords(64)

	b := isa.NewBuilder(fmt.Sprintf("fuzz-%d", seed))
	// R3 = &shared, R4 = &private[tid], R5 = &lock, R6 = loop counter.
	b.Liu(isa.R3, shared)
	b.Liu(isa.R4, stride)
	b.Mul(isa.R4, RegTID, isa.R4)
	b.Liu(isa.R5, privates[0])
	b.Add(isa.R4, isa.R4, isa.R5)
	b.Liu(isa.R5, lock)
	b.Li(isa.R6, 0)
	// Seed working registers with thread-dependent values.
	b.Addi(isa.R7, RegTID, 1)
	b.Liu(isa.R8, seed|1)
	b.Li(isa.R9, 0)

	b.Label("outer")
	nOps := 16 + int(g.next()%24)
	for i := 0; i < nOps; i++ {
		g.emitOp(b, i, repBuf, bar)
	}
	b.Addi(isa.R6, isa.R6, 1)
	b.Li(isa.R15, outerIters)
	b.Bne(isa.R6, isa.R15, "outer")
	// Every thread writes its accumulator so divergence is state-visible.
	b.St(isa.R4, 0, isa.R7)
	b.St(isa.R4, 8, isa.R8)
	b.Liu(isa.R9, bar)
	EmitBarrier(b, "fz", isa.R9)
	b.Halt()

	init := func(m *mem.Memory) {
		for i := uint64(0); i < sharedWords; i++ {
			m.Store(shared+i*8, i*11+seed)
		}
	}
	prog := b.Build(lay.Size(), threads, init)
	prog.Symbols["shared"] = shared
	return prog
}

// progGen drives generation with an xorshift stream.
type progGen struct {
	rng     uint64
}

func (g *progGen) next() uint64 {
	g.rng ^= g.rng << 13
	g.rng ^= g.rng >> 7
	g.rng ^= g.rng << 17
	return g.rng
}

// sharedOff returns a random word offset within the shared region.
func (g *progGen) sharedOff() int64 { return int64(g.next()%256) * 8 }

// privateOff returns a random word offset within the private region.
func (g *progGen) privateOff() int64 { return int64(g.next()%128) * 8 }

// emitOp appends one random operation. idx uniquifies label prefixes.
func (g *progGen) emitOp(b *isa.Builder, idx int, repBuf, bar uint64) {
	pfx := fmt.Sprintf("op%d_%d", idx, g.next()%1000)
	switch g.next() % 17 {
	case 0, 1, 2: // register arithmetic
		switch g.next() % 4 {
		case 0:
			b.Add(isa.R7, isa.R7, isa.R8)
		case 1:
			b.Muli(isa.R8, isa.R8, 0x9E3779B1)
		case 2:
			b.Shri(isa.R9, isa.R8, int64(1+g.next()%31))
			b.Xor(isa.R8, isa.R8, isa.R9)
		case 3:
			b.Sub(isa.R7, isa.R7, isa.R9)
		}
	case 3, 4: // shared load
		b.Ld(isa.R9, isa.R3, g.sharedOff())
		b.Add(isa.R7, isa.R7, isa.R9)
	case 5, 6: // shared store
		b.St(isa.R3, g.sharedOff(), isa.R7)
	case 7: // private traffic
		b.St(isa.R4, g.privateOff(), isa.R8)
		b.Ld(isa.R9, isa.R4, g.privateOff())
	case 8: // atomic on shared
		switch g.next() % 3 {
		case 0:
			b.Fadd(isa.R9, isa.R3, g.sharedOff(), isa.R7)
		case 1:
			b.Xchg(isa.R9, isa.R3, g.sharedOff(), isa.R8)
		case 2:
			b.Cas(isa.R9, isa.R3, g.sharedOff(), isa.R7, isa.R8)
		}
	case 9: // locked critical section over a fixed shared word
		EmitFutexLock(b, pfx, isa.R5)
		b.Ld(isa.R9, isa.R3, 0)
		b.Add(isa.R9, isa.R9, isa.R7)
		b.St(isa.R3, 0, isa.R9)
		EmitFutexUnlock(b, pfx, isa.R5)
	case 10: // barrier (all threads run the same code, so it matches up)
		b.Liu(isa.R9, bar)
		EmitBarrier(b, pfx, isa.R9)
	case 11: // REP burst into the scratch region
		b.Liu(isa.R15, repBuf)
		b.Mov(isa.R16, isa.R8)
		b.Li(isa.R17, int64(1+g.next()%48))
		b.RepStos(isa.R15, isa.R16, isa.R17)
	case 12: // REP copy shared -> scratch
		b.Liu(isa.R15, repBuf)
		b.Mov(isa.R16, isa.R3)
		b.Li(isa.R17, int64(1+g.next()%32))
		b.RepMovs(isa.R15, isa.R16, isa.R17)
	case 13: // nondeterministic input syscall
		switch g.next() % 3 {
		case 0:
			b.Li(isa.RRet, int64(capo.SysRandom))
		case 1:
			b.Li(isa.RRet, int64(capo.SysGetTime))
		default:
			b.Li(isa.RRet, int64(capo.SysGetTID))
		}
		b.Syscall()
		b.Add(isa.R8, isa.R8, isa.RRet)
	case 14: // read external data into the private region
		b.Li(isa.RRet, int64(capo.SysRead))
		b.Li(isa.R11, 0)
		b.Mov(isa.R12, isa.R4)
		b.Li(isa.R13, int64(8*(1+g.next()%8)))
		b.Syscall()
	case 16: // byte-granular traffic on shared words
		b.Lbu(isa.R9, isa.R3, g.sharedOff()+int64(g.next()%8))
		b.Add(isa.R7, isa.R7, isa.R9)
		b.Sb(isa.R3, g.sharedOff()+int64(g.next()%8), isa.R8)
	case 15: // write from the shared region
		b.Li(isa.RRet, int64(capo.SysWrite))
		b.Li(isa.R11, 1)
		b.Mov(isa.R12, isa.R3)
		b.Li(isa.R13, int64(8*(1+g.next()%4)))
		b.Syscall()
	}
}
