package workload

import (
	"repro/internal/isa"
	"repro/internal/mem"
)

// Race-detector ground-truth workloads: a pair of programs with the same
// shape — threads increment a shared word, then thread 0 reports it —
// differing only in synchronization. Racy omits it entirely (every
// increment is an unordered read-modify-write against every other
// thread's); RaceFree guards every shared access with one futex mutex,
// including the final join, so all conflicting accesses are ordered by
// happens-before. The offline detector must confirm races in the first
// and none in the second.

// Racy builds the deliberately unsynchronized microbenchmark: plain
// load/add/store increments of one shared word from every thread, with
// no lock. Lost updates are expected; the final barrier only keeps the
// reporting write after the racing phase.
func Racy(iters int64, threads int) *isa.Program {
	var lay mem.Layout
	shared := lay.AllocWords(1)
	barrier := lay.AllocWords(2)

	b := isa.NewBuilder("racy")
	b.Liu(isa.R3, shared)
	b.Li(isa.R4, 0)
	b.Li(isa.R5, iters)
	b.Label("loop")
	b.Ld(isa.R6, isa.R3, 0) // racy read
	b.Addi(isa.R6, isa.R6, 1)
	b.St(isa.R3, 0, isa.R6) // racy write
	b.Addi(isa.R4, isa.R4, 1)
	b.Bne(isa.R4, isa.R5, "loop")
	b.Liu(isa.R8, barrier)
	EmitBarrier(b, "b0", isa.R8)
	emitWriteWord(b, isa.R3, "skipwrite")
	b.Halt()

	prog := b.Build(lay.Size(), threads, nil)
	prog.Symbols["shared"] = shared
	return prog
}

// RaceFree builds the fully synchronized twin: the same shared-word
// increments, each inside a futex mutex, and a lock-protected done
// counter as the join. Thread 0 polls the counter under the same lock
// before reading the total, so its report is ordered after every
// increment by the lock's happens-before edges alone — no barrier, no
// timing windows.
func RaceFree(iters int64, threads int) *isa.Program {
	var lay mem.Layout
	lock := lay.AllocWords(1)
	shared := lay.AllocWords(1)
	done := lay.AllocWords(1)

	b := isa.NewBuilder("racefree")
	b.Liu(isa.R3, lock)
	b.Liu(isa.R4, shared)
	b.Liu(isa.R5, done)
	b.Li(isa.R6, 0)
	b.Li(isa.R7, iters)
	b.Label("loop")
	EmitFutexLock(b, "l", isa.R3)
	b.Ld(isa.R8, isa.R4, 0)
	b.Addi(isa.R8, isa.R8, 1)
	b.St(isa.R4, 0, isa.R8)
	EmitFutexUnlock(b, "l", isa.R3)
	b.Addi(isa.R6, isa.R6, 1)
	b.Bne(isa.R6, isa.R7, "loop")
	// Announce completion under the same lock.
	EmitFutexLock(b, "d", isa.R3)
	b.Ld(isa.R8, isa.R5, 0)
	b.Addi(isa.R8, isa.R8, 1)
	b.St(isa.R5, 0, isa.R8)
	EmitFutexUnlock(b, "d", isa.R3)
	b.Bne(RegTID, isa.R0, "skipwrite")
	b.Label("join")
	EmitFutexLock(b, "j", isa.R3)
	b.Ld(isa.R8, isa.R5, 0)
	EmitFutexUnlock(b, "j", isa.R3)
	b.Bne(isa.R8, RegNThreads, "join")
	emitWriteWord(b, isa.R4, "skipwrite")
	b.Halt()

	prog := b.Build(lay.Size(), threads, nil)
	prog.Symbols["shared"] = shared
	return prog
}
