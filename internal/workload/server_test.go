package workload_test

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/workload"
)

// runServer executes prog and returns both the machine and its result.
func runServer(t *testing.T, prog *isa.Program, threads int, seed uint64, tweak func(*machine.Config)) (*machine.Machine, *machine.Result) {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.Threads = threads
	cfg.Seed = seed
	if tweak != nil {
		tweak(&cfg)
	}
	m := machine.New(prog, cfg)
	res, err := m.Run()
	if err != nil {
		t.Fatalf("%s: %v", prog.Name, err)
	}
	return m, res
}

func TestReqServerInvariants(t *testing.T) {
	const reqs, slots, buckets = 40, 4, 8
	for _, threads := range []int{1, 2, 4, 8} {
		prog := workload.ReqServer(reqs, slots, buckets, threads)
		m, _ := runServer(t, prog, threads, uint64(90+threads), nil)
		// The ring control block sits at offset 0: [lock, count, head, tail].
		if lock := m.Memory().Load(0); lock != 0 {
			t.Fatalf("threads=%d: ring lock still held: %d", threads, lock)
		}
		if count := m.Memory().Load(8); count != 0 {
			t.Fatalf("threads=%d: %d items left in ring", threads, count)
		}
		head, tail := m.Memory().Load(16), m.Memory().Load(24)
		total := uint64(reqs) * uint64(threads)
		if head != total || tail != total {
			t.Fatalf("threads=%d: head=%d tail=%d, want both %d", threads, head, tail, total)
		}
		// Every dequeued item landed in exactly one stats bucket.
		stats := prog.Symbol("stats")
		var processed uint64
		for i := uint64(0); i < buckets; i++ {
			if lock := m.Memory().Load(stats + i*64); lock != 0 {
				t.Fatalf("threads=%d: bucket %d lock still held", threads, i)
			}
			processed += m.Memory().Load(stats + i*64 + 8)
		}
		if processed != total {
			t.Fatalf("threads=%d: %d items processed, want %d", threads, processed, total)
		}
	}
}

func TestReqServerDeterministicPerSeed(t *testing.T) {
	const reqs, slots, buckets, threads = 24, 4, 8, 4
	// Same seed twice must reproduce the execution exactly; different
	// seeds draw different request streams (the invariants still hold —
	// TestReqServerInvariants — but the stats sums should move).
	sums := make(map[uint64]uint64)
	for _, seed := range []uint64{5, 5, 6} {
		prog := workload.ReqServer(reqs, slots, buckets, threads)
		m, res := runServer(t, prog, threads, seed, nil)
		stats := prog.Symbol("stats")
		var sum uint64
		for i := uint64(0); i < buckets; i++ {
			sum += m.Memory().Load(stats + i*64 + 16)
		}
		if prev, ok := sums[seed]; ok && prev != sum {
			t.Fatalf("seed %d: stats sum %d then %d — rerun diverged", seed, prev, sum)
		}
		sums[seed] = sum
		if res.Syscalls == 0 {
			t.Fatalf("seed %d: no syscalls recorded for a request loop", seed)
		}
	}
	if sums[5] == sums[6] {
		t.Errorf("seeds 5 and 6 produced identical stats sums %d; request stream not seed-driven?", sums[5])
	}
}

func TestReqServerRunLengthKnob(t *testing.T) {
	const slots, buckets, threads = 4, 8, 2
	short := workload.ReqServer(16, slots, buckets, threads)
	long := workload.ReqServer(64, slots, buckets, threads)
	_, rs := runServer(t, short, threads, 3, nil)
	_, rl := runServer(t, long, threads, 3, nil)
	if rl.Retired < 2*rs.Retired {
		t.Errorf("4x requests retired %d vs %d instructions; knob not scaling run length", rl.Retired, rs.Retired)
	}
	if rl.Syscalls <= rs.Syscalls {
		t.Errorf("4x requests made %d vs %d syscalls", rl.Syscalls, rs.Syscalls)
	}
}

func TestSigServerDeliversSignals(t *testing.T) {
	const reqs, threads = 48, 4
	prog := workload.SigServer(reqs, threads)
	m, res := runServer(t, prog, threads, 31, func(cfg *machine.Config) {
		cfg.SignalPeriodInstrs = 400
	})
	if res.SignalsDelivered == 0 {
		t.Fatal("no signals delivered despite SignalPeriodInstrs")
	}
	if got := m.Memory().Load(prog.Symbol("sigcount")); got != res.SignalsDelivered {
		t.Fatalf("handler counted %d signals, machine delivered %d", got, res.SignalsDelivered)
	}
	if m.Memory().Load(prog.Symbol("total")) == 0 {
		t.Fatal("shared request total still zero")
	}
}

func TestSigServerRunsWithoutSignals(t *testing.T) {
	const reqs, threads = 32, 2
	prog := workload.SigServer(reqs, threads)
	m, res := runServer(t, prog, threads, 32, nil)
	if res.SignalsDelivered != 0 {
		t.Fatalf("unexpected signals: %d", res.SignalsDelivered)
	}
	if got := m.Memory().Load(prog.Symbol("sigcount")); got != 0 {
		t.Fatalf("handler ran %d times without a signal source", got)
	}
	if m.Memory().Load(prog.Symbol("total")) == 0 {
		t.Fatal("shared request total still zero")
	}
}

func TestReqServerSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two ring size accepted")
		}
	}()
	workload.ReqServer(8, 3, 8, 2)
}
