package workload

import (
	"repro/internal/capo"
	"repro/internal/isa"
	"repro/internal/mem"
)

// KVServer builds an application-style workload: worker threads service
// externally supplied requests against a shared, bucket-locked key-value
// table — the "always-on production service" scenario QuickRec is meant
// to record. Each request arrives via SysRead (24 bytes of external
// nondeterminism: key, op, value), so the input log carries the entire
// request stream and replay reproduces the service's exact behaviour.
func KVServer(requestsPerThread int64, buckets uint64, threads int) *isa.Program {
	var lay mem.Layout
	// One cache line per bucket: [lock, count, sum, ...].
	table := lay.AllocWords(buckets * 8)
	bar := lay.AllocWords(2)

	b := isa.NewBuilder("kvserver")
	b.Liu(isa.R3, table)
	b.Liu(isa.R30, buckets)
	b.Li(isa.R4, 0)  // request index
	b.Li(isa.R17, 0) // GET accumulator
	b.Addi(isa.R5, RegStack, 64) // private request buffer

	b.Label("serve")
	// Receive one request: key, op, value (external input).
	b.Li(isa.RRet, int64(capo.SysRead))
	b.Li(isa.R11, 0)
	b.Mov(isa.R12, isa.R5)
	b.Li(isa.R13, 24)
	b.Syscall()
	b.Ld(isa.R7, isa.R5, 0)  // key
	b.Ld(isa.R8, isa.R5, 8)  // op
	b.Ld(isa.R9, isa.R5, 16) // value
	b.Rem(isa.R7, isa.R7, isa.R30)
	b.Muli(isa.R7, isa.R7, 64)
	b.Add(isa.R7, isa.R3, isa.R7) // bucket base (lock word)
	b.Andi(isa.R8, isa.R8, 1)

	EmitFutexLock(b, "kv", isa.R7)
	b.Bne(isa.R8, isa.R0, "get")
	// PUT: count++; sum += value.
	b.Ld(isa.R15, isa.R7, 8)
	b.Addi(isa.R15, isa.R15, 1)
	b.St(isa.R7, 8, isa.R15)
	b.Ld(isa.R16, isa.R7, 16)
	b.Add(isa.R16, isa.R16, isa.R9)
	b.St(isa.R7, 16, isa.R16)
	b.Jmp("reqdone")
	b.Label("get")
	// GET: fold the bucket's sum into the private accumulator.
	b.Ld(isa.R16, isa.R7, 16)
	b.Add(isa.R17, isa.R17, isa.R16)
	b.Label("reqdone")
	EmitFutexUnlock(b, "kv", isa.R7)

	b.Addi(isa.R4, isa.R4, 1)
	b.Li(isa.R15, requestsPerThread)
	b.Bne(isa.R4, isa.R15, "serve")

	// Respond: write the accumulator to fd 1.
	b.St(RegStack, 0, isa.R17)
	b.Li(isa.RRet, int64(capo.SysWrite))
	b.Li(isa.R11, 1)
	b.Mov(isa.R12, RegStack)
	b.Li(isa.R13, 8)
	b.Syscall()
	b.Liu(isa.R9, bar)
	EmitBarrier(b, "kb", isa.R9)
	b.Halt()

	prog := b.Build(lay.Size(), threads, nil)
	prog.Symbols["table"] = table
	return prog
}
