// Package workload defines the benchmark programs the reproduction runs:
// SPLASH-2-like parallel kernels with the same sharing structure as the
// paper's suite (barrier phases, lock-protected shared structures, atomic
// histograms, stencils, work stealing) plus microbenchmarks that isolate
// single behaviours. Programs are written against the simulated ISA via
// the assembler DSL; this file provides the synchronization idioms they
// share — futex-backed mutexes and sense-reversing barriers, the shapes
// pthreads lowers to on Linux.
package workload

import (
	"fmt"

	"repro/internal/capo"
	"repro/internal/isa"
)

// Registers with fixed roles in all workloads (set up by the machine):
// R1 = thread ID, R2 = thread count, R29 = per-thread scratch base.
// The sync emitters clobber R20..R27; workload bodies use R3..R19.
const (
	RegTID      = isa.R1
	RegNThreads = isa.R2
	RegStack    = isa.R29
)

// EmitSyscall0 emits a syscall with no arguments.
func EmitSyscall0(b *isa.Builder, sysno uint64) {
	b.Li(isa.RRet, int64(sysno))
	b.Syscall()
}

// EmitSpinLock emits a pure test-and-set spin acquire of the lock word at
// [addrReg]. It never enters the kernel, so all contention is visible to
// the coherence fabric (and therefore to the MRR). Clobbers R20, R21.
func EmitSpinLock(b *isa.Builder, prefix string, addrReg isa.Reg) {
	top := prefix + "_spin"
	b.Label(top)
	b.Li(isa.R20, 1)
	b.Xchg(isa.R21, addrReg, 0, isa.R20)
	b.Bne(isa.R21, isa.R0, top)
}

// EmitSpinUnlock releases a spin lock.
func EmitSpinUnlock(b *isa.Builder, addrReg isa.Reg) {
	b.St(addrReg, 0, isa.R0)
}

// EmitFutexLock emits a futex-backed mutex acquire of the word at
// [addrReg] using the classic three-state protocol glibc's
// pthread_mutex_lock lowers to (0 = free, 1 = locked, 2 = locked with
// waiters): an uncontended acquire is one CAS with no kernel crossing;
// contended acquirers mark the lock and sleep. Clobbers R20..R22.
// prefix must be unique per call site (it names labels).
func EmitFutexLock(b *isa.Builder, prefix string, addrReg isa.Reg) {
	checkOperandReg(addrReg)
	slow := prefix + "_lock_slow"
	done := prefix + "_lock_done"
	b.Li(isa.R20, 0)
	b.Li(isa.R21, 1)
	b.Cas(isa.R22, addrReg, 0, isa.R20, isa.R21)
	b.Beq(isa.R22, isa.R0, done) // fast path: 0 -> 1
	b.Label(slow)
	// Mark contended and take the lock if it happens to be free; the
	// lock is then held in state 2, which only costs a spurious wake.
	b.Li(isa.R21, 2)
	b.Xchg(isa.R22, addrReg, 0, isa.R21)
	b.Beq(isa.R22, isa.R0, done)
	b.Li(isa.RRet, int64(capo.SysFutexWait))
	b.Mov(isa.R11, addrReg)
	b.Li(isa.R12, 2)
	b.Syscall()
	b.Jmp(slow)
	b.Label(done)
}

// EmitFutexUnlock releases a three-state futex mutex, entering the
// kernel to wake a waiter only when the contended state was observed —
// the fast path is a single atomic exchange. Clobbers R20, R21 and the
// syscall registers. prefix must be unique per call site.
func EmitFutexUnlock(b *isa.Builder, prefix string, addrReg isa.Reg) {
	checkOperandReg(addrReg)
	skip := prefix + "_unlock_skip"
	b.Xchg(isa.R21, addrReg, 0, isa.R0) // release; R21 = prior state
	b.Li(isa.R20, 2)
	b.Bne(isa.R21, isa.R20, skip)
	b.Li(isa.RRet, int64(capo.SysFutexWake))
	b.Mov(isa.R11, addrReg)
	b.Li(isa.R12, 1)
	b.Syscall()
	b.Label(skip)
}

// EmitBarrier emits a sense-reversing futex barrier over the two-word
// structure at [baseReg]: word 0 is the arrival count, word 1 the
// generation. The last arriver resets the count, bumps the generation and
// wakes everyone; the rest sleep on the generation word. Clobbers
// R20..R23 and the syscall registers. prefix must be unique per call
// site.
func EmitBarrier(b *isa.Builder, prefix string, baseReg isa.Reg) {
	checkOperandReg(baseReg)
	wait := prefix + "_bar_wait"
	last := prefix + "_bar_last"
	done := prefix + "_bar_done"

	b.Ld(isa.R20, baseReg, 8) // generation before arrival
	b.Li(isa.R21, 1)
	b.Fadd(isa.R22, baseReg, 0, isa.R21) // old count
	b.Addi(isa.R22, isa.R22, 1)
	b.Beq(isa.R22, RegNThreads, last)

	b.Label(wait)
	b.Li(isa.RRet, int64(capo.SysFutexWait))
	b.Addi(isa.R11, baseReg, 8)
	b.Mov(isa.R12, isa.R20)
	b.Syscall()
	b.Ld(isa.R23, baseReg, 8)
	b.Beq(isa.R23, isa.R20, wait) // spurious wake: generation unchanged
	b.Jmp(done)

	b.Label(last)
	b.St(baseReg, 0, isa.R0) // reset arrival count
	b.Ld(isa.R23, baseReg, 8)
	b.Addi(isa.R23, isa.R23, 1)
	b.St(baseReg, 8, isa.R23) // bump generation
	b.Li(isa.RRet, int64(capo.SysFutexWake))
	b.Addi(isa.R11, baseReg, 8)
	b.Li(isa.R12, 1<<30) // wake all
	b.Syscall()

	b.Label(done)
}

// EmitExit emits a SysExit trap (thread termination via the kernel, as
// opposed to HALT which ends the thread in user mode).
func EmitExit(b *isa.Builder) { EmitSyscall0(b, capo.SysExit) }

// uniquePrefix builds distinct label prefixes for repeated emissions.
func uniquePrefix(base string, n int) string { return fmt.Sprintf("%s%d", base, n) }

// checkOperandReg panics when an emitter operand register collides with
// the scratch (R20..R27) or syscall (R10..R14) registers the emitters
// clobber — a workload construction bug that would corrupt the idiom.
func checkOperandReg(r isa.Reg) {
	if (r >= isa.R10 && r <= isa.R14) || (r >= isa.R20 && r <= isa.R27) {
		panic(fmt.Sprintf("workload: operand register r%d collides with emitter scratch", r))
	}
}
