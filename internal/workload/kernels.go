package workload

import (
	"sort"

	"repro/internal/isa"
	"repro/internal/mem"
)

// SPLASH-2-like kernels. Each mirrors the sharing structure of its
// namesake — the property chunk-based recording is sensitive to — using
// integer arithmetic in place of floating point (chunking behaviour
// depends on communication patterns, not on FP semantics; see DESIGN.md).
//
// Register conventions: constants live in R28/R30/R31, locals in R3..R9
// and R15..R19; R10..R14 and R20..R27 belong to syscall/sync emitters.

// fftMixMul is the multiplicative constant of the kernels' integer mixer.
const fftMixMul = 0x9E3779B1

// FFT builds the six-step-FFT-like kernel: barrier-separated phases of
// (a) private mixing of each thread's partition, (b) an all-to-all
// strided "transpose" read across every partition, and (c) a private
// write-back. Communication is the bulk strided read — the same pattern
// that dominates SPLASH-2 FFT.
func FFT(n uint64, phases int64, threads int) *isa.Program {
	p := uint64(threads)
	if n%p != 0 {
		panic("workload: FFT size must be a multiple of the thread count")
	}
	chunkLen := n / p
	var lay mem.Layout
	a0 := lay.AllocWords(n)
	bar := lay.AllocWords(2)

	b := isa.NewBuilder("fft")
	b.Liu(isa.R3, chunkLen)
	b.Liu(isa.R4, chunkLen*8)
	b.Mul(isa.R4, RegTID, isa.R4)
	b.Liu(isa.R5, a0)
	b.Add(isa.R5, isa.R5, isa.R4) // R5 = my partition base
	b.Li(isa.R6, 0)               // phase
	b.Li(isa.R7, phases)

	b.Label("phase")
	// (a) private mix of own partition.
	b.Li(isa.R8, 0)
	b.Mov(isa.R9, isa.R5)
	b.Label("mix")
	b.Ld(isa.R15, isa.R9, 0)
	b.Muli(isa.R15, isa.R15, fftMixMul)
	b.Shri(isa.R16, isa.R15, 13)
	b.Xor(isa.R15, isa.R15, isa.R16)
	b.Add(isa.R15, isa.R15, isa.R6)
	b.St(isa.R9, 0, isa.R15)
	b.Addi(isa.R9, isa.R9, 8)
	b.Addi(isa.R8, isa.R8, 1)
	b.Bne(isa.R8, isa.R3, "mix")
	b.Liu(isa.R9, bar)
	EmitBarrier(b, "fb1", isa.R9)

	// (b) transpose read: accumulate A[i*p + tid] over the whole array.
	b.Li(isa.R8, 0)
	b.Li(isa.R15, 0) // acc
	b.Label("transpose")
	b.Muli(isa.R16, isa.R8, int64(p))
	b.Add(isa.R16, isa.R16, RegTID)
	b.Shli(isa.R16, isa.R16, 3)
	b.Liu(isa.R17, a0)
	b.Add(isa.R16, isa.R17, isa.R16)
	b.Ld(isa.R18, isa.R16, 0)
	b.Add(isa.R15, isa.R15, isa.R18)
	b.Addi(isa.R8, isa.R8, 1)
	b.Bne(isa.R8, isa.R3, "transpose")
	b.Liu(isa.R9, bar)
	EmitBarrier(b, "fb2", isa.R9)

	// (c) private write-back of the accumulated value.
	b.Li(isa.R8, 0)
	b.Mov(isa.R9, isa.R5)
	b.Label("writeback")
	b.Ld(isa.R16, isa.R9, 0)
	b.Xor(isa.R16, isa.R16, isa.R15)
	b.St(isa.R9, 0, isa.R16)
	b.Addi(isa.R9, isa.R9, 8)
	b.Addi(isa.R8, isa.R8, 1)
	b.Bne(isa.R8, isa.R3, "writeback")
	b.Liu(isa.R9, bar)
	EmitBarrier(b, "fb3", isa.R9)

	b.Addi(isa.R6, isa.R6, 1)
	b.Bne(isa.R6, isa.R7, "phase")
	b.Halt()

	init := func(m *mem.Memory) {
		for i := uint64(0); i < n; i++ {
			m.Store(a0+i*8, i*7+1)
		}
	}
	prog := b.Build(lay.Size(), threads, init)
	prog.Symbols["a"] = a0
	return prog
}

// FFTReference computes the expected final array of FFT in Go.
func FFTReference(n uint64, phases int64, threads int) []uint64 {
	p := uint64(threads)
	chunkLen := n / p
	a := make([]uint64, n)
	for i := range a {
		a[i] = uint64(i)*7 + 1
	}
	for phase := uint64(0); phase < uint64(phases); phase++ {
		for t := uint64(0); t < p; t++ {
			base := t * chunkLen
			for i := uint64(0); i < chunkLen; i++ {
				x := a[base+i] * fftMixMul
				x ^= x >> 13
				a[base+i] = x + phase
			}
		}
		accs := make([]uint64, p)
		for t := uint64(0); t < p; t++ {
			for i := uint64(0); i < chunkLen; i++ {
				accs[t] += a[i*p+t]
			}
		}
		for t := uint64(0); t < p; t++ {
			base := t * chunkLen
			for i := uint64(0); i < chunkLen; i++ {
				a[base+i] ^= accs[t]
			}
		}
	}
	return a
}

const luMixMul = 0x85EBCA77

// LU builds the blocked-LU-like kernel: for each step k, the owner of
// diagonal block k updates it privately; after a barrier every thread
// folds the (read-shared) diagonal block into its own later blocks. The
// one-producer/many-consumer block sharing is SPLASH-2 LU's signature.
func LU(blocks, blockWords uint64, threads int) *isa.Program {
	p := uint64(threads)
	var lay mem.Layout
	a0 := lay.AllocWords(blocks * blockWords)
	bar := lay.AllocWords(2)

	b := isa.NewBuilder("lu")
	b.Liu(isa.R28, blockWords)
	b.Liu(isa.R30, blocks)
	b.Liu(isa.R31, p)
	b.Li(isa.R3, 0) // k

	b.Label("kloop")
	// Diagonal update by owner(k) = k mod p.
	b.Rem(isa.R4, isa.R3, isa.R31)
	b.Bne(isa.R4, RegTID, "skipdiag")
	b.Muli(isa.R5, isa.R3, int64(blockWords*8))
	b.Liu(isa.R6, a0)
	b.Add(isa.R5, isa.R5, isa.R6) // diag base
	b.Li(isa.R7, 0)
	b.Label("diag")
	b.Ld(isa.R8, isa.R5, 0)
	b.Muli(isa.R8, isa.R8, luMixMul)
	b.Shri(isa.R9, isa.R8, 17)
	b.Xor(isa.R8, isa.R8, isa.R9)
	b.St(isa.R5, 0, isa.R8)
	b.Addi(isa.R5, isa.R5, 8)
	b.Addi(isa.R7, isa.R7, 1)
	b.Bne(isa.R7, isa.R28, "diag")
	b.Label("skipdiag")
	b.Liu(isa.R9, bar)
	EmitBarrier(b, "lb1", isa.R9)

	// Trailing update: blocks j in (k, blocks) owned by this thread.
	b.Addi(isa.R7, isa.R3, 1) // j
	b.Label("jloop")
	b.Bge(isa.R7, isa.R30, "jdone")
	b.Rem(isa.R8, isa.R7, isa.R31)
	b.Bne(isa.R8, RegTID, "jnext")
	b.Muli(isa.R5, isa.R3, int64(blockWords*8))
	b.Liu(isa.R6, a0)
	b.Add(isa.R5, isa.R5, isa.R6) // diag base
	b.Muli(isa.R9, isa.R7, int64(blockWords*8))
	b.Add(isa.R9, isa.R9, isa.R6) // block j base
	b.Li(isa.R17, 0)
	b.Label("iloop")
	b.Ld(isa.R18, isa.R5, 0) // diag word (read-shared)
	b.Muli(isa.R18, isa.R18, luMixMul)
	b.Shri(isa.R19, isa.R18, 11)
	b.Xor(isa.R18, isa.R18, isa.R19)
	b.Ld(isa.R16, isa.R9, 0)
	b.Xor(isa.R16, isa.R16, isa.R18)
	b.St(isa.R9, 0, isa.R16)
	b.Addi(isa.R5, isa.R5, 8)
	b.Addi(isa.R9, isa.R9, 8)
	b.Addi(isa.R17, isa.R17, 1)
	b.Bne(isa.R17, isa.R28, "iloop")
	b.Label("jnext")
	b.Addi(isa.R7, isa.R7, 1)
	b.Jmp("jloop")
	b.Label("jdone")
	b.Liu(isa.R9, bar)
	EmitBarrier(b, "lb2", isa.R9)

	b.Addi(isa.R3, isa.R3, 1)
	b.Bne(isa.R3, isa.R30, "kloop")
	b.Halt()

	init := func(m *mem.Memory) {
		for i := uint64(0); i < blocks*blockWords; i++ {
			m.Store(a0+i*8, i*13+5)
		}
	}
	prog := b.Build(lay.Size(), threads, init)
	prog.Symbols["a"] = a0
	return prog
}

// LUReference computes LU's expected final array in Go.
func LUReference(blocks, blockWords uint64, threads int) []uint64 {
	a := make([]uint64, blocks*blockWords)
	for i := range a {
		a[i] = uint64(i)*13 + 5
	}
	for k := uint64(0); k < blocks; k++ {
		diag := a[k*blockWords : (k+1)*blockWords]
		for i := range diag {
			x := diag[i] * luMixMul
			x ^= x >> 17
			diag[i] = x
		}
		for j := k + 1; j < blocks; j++ {
			blk := a[j*blockWords : (j+1)*blockWords]
			for i := range blk {
				x := diag[i] * luMixMul
				x ^= x >> 11
				blk[i] ^= x
			}
		}
	}
	return a
}

// Radix builds the radix-sort kernel, following SPLASH-2 RADIX's
// rank-based algorithm: per digit pass, every thread counts its
// partition into its own row of a shared histogram matrix (disjoint
// writes), a serial rank step turns the matrix into per-thread,
// per-bucket starting offsets, and each thread then scatters its
// elements into the shared output array at ranked positions — a stable
// permutation with heavy scattered write sharing but no atomics. Keys
// are bytes, sorted completely by two 4-bit passes; the result is
// deterministic and verified against a Go reference.
func Radix(n uint64, threads int) *isa.Program {
	p := uint64(threads)
	if n%p != 0 {
		panic("workload: Radix size must be a multiple of the thread count")
	}
	part := n / p
	var lay mem.Layout
	src := lay.AllocWords(n)
	dst := lay.AllocWords(n)
	// hist[t][d] and offs[t][d]: one 16-word row per thread.
	hists := make([]uint64, threads)
	offs := make([]uint64, threads)
	for t := 0; t < threads; t++ {
		hists[t] = lay.AllocWords(16)
	}
	for t := 0; t < threads; t++ {
		offs[t] = lay.AllocWords(16)
	}
	bar := lay.AllocWords(2)
	histStride := uint64(0)
	offStride := uint64(0)
	if threads > 1 {
		histStride = hists[1] - hists[0]
		offStride = offs[1] - offs[0]
	}

	b := isa.NewBuilder("radix")
	b.Liu(isa.R30, part)

	for pass, shift := range []int64{0, 4} {
		pfx := uniquePrefix("r", pass)

		// My histogram row: zero it, then count my partition.
		b.Liu(isa.R3, histStride)
		b.Mul(isa.R3, RegTID, isa.R3)
		b.Liu(isa.R4, hists[0])
		b.Add(isa.R3, isa.R3, isa.R4) // my hist row
		b.Mov(isa.R4, isa.R3)
		b.Li(isa.R5, 0)
		b.Label(pfx + "_zero")
		b.St(isa.R4, 0, isa.R0)
		b.Addi(isa.R4, isa.R4, 8)
		b.Addi(isa.R5, isa.R5, 1)
		b.Li(isa.R6, 16)
		b.Bne(isa.R5, isa.R6, pfx+"_zero")

		b.Liu(isa.R5, part*8)
		b.Mul(isa.R5, RegTID, isa.R5)
		b.Liu(isa.R6, src)
		b.Add(isa.R5, isa.R5, isa.R6) // my src partition
		b.Li(isa.R4, 0)
		b.Label(pfx + "_count")
		b.Ld(isa.R7, isa.R5, 0)
		b.Shri(isa.R7, isa.R7, shift)
		b.Andi(isa.R7, isa.R7, 15)
		b.Shli(isa.R7, isa.R7, 3)
		b.Add(isa.R7, isa.R3, isa.R7)
		b.Ld(isa.R8, isa.R7, 0)
		b.Addi(isa.R8, isa.R8, 1)
		b.St(isa.R7, 0, isa.R8)
		b.Addi(isa.R5, isa.R5, 8)
		b.Addi(isa.R4, isa.R4, 1)
		b.Bne(isa.R4, isa.R30, pfx+"_count")
		b.Liu(isa.R9, bar)
		EmitBarrier(b, pfx+"_b0", isa.R9)

		// Serial rank step by thread 0:
		// offs[t][d] = sum(hist[*][d'<d]) + sum(hist[u<t][d]).
		b.Bne(RegTID, isa.R0, pfx+"_rdone")
		b.Li(isa.R3, 0) // running base over buckets
		b.Li(isa.R4, 0) // d
		b.Label(pfx + "_dloop")
		b.Shli(isa.R5, isa.R4, 3) // byte offset of bucket d
		b.Li(isa.R6, 0)           // t
		b.Label(pfx + "_tloop")
		b.Liu(isa.R7, offStride)
		b.Mul(isa.R7, isa.R6, isa.R7)
		b.Liu(isa.R8, offs[0])
		b.Add(isa.R7, isa.R7, isa.R8)
		b.Add(isa.R7, isa.R7, isa.R5)
		b.St(isa.R7, 0, isa.R3) // offs[t][d] = base
		b.Liu(isa.R7, histStride)
		b.Mul(isa.R7, isa.R6, isa.R7)
		b.Liu(isa.R8, hists[0])
		b.Add(isa.R7, isa.R7, isa.R8)
		b.Add(isa.R7, isa.R7, isa.R5)
		b.Ld(isa.R8, isa.R7, 0)
		b.Add(isa.R3, isa.R3, isa.R8) // base += hist[t][d]
		b.Addi(isa.R6, isa.R6, 1)
		b.Li(isa.R7, int64(threads))
		b.Bne(isa.R6, isa.R7, pfx+"_tloop")
		b.Addi(isa.R4, isa.R4, 1)
		b.Li(isa.R7, 16)
		b.Bne(isa.R4, isa.R7, pfx+"_dloop")
		b.Label(pfx + "_rdone")
		b.Liu(isa.R9, bar)
		EmitBarrier(b, pfx+"_b1", isa.R9)

		// Ranked scatter: cursors live in my offs row (private writes).
		b.Liu(isa.R3, offStride)
		b.Mul(isa.R3, RegTID, isa.R3)
		b.Liu(isa.R4, offs[0])
		b.Add(isa.R3, isa.R3, isa.R4) // my offs row
		b.Liu(isa.R5, part*8)
		b.Mul(isa.R5, RegTID, isa.R5)
		b.Liu(isa.R6, src)
		b.Add(isa.R5, isa.R5, isa.R6)
		b.Li(isa.R4, 0)
		b.Label(pfx + "_place")
		b.Ld(isa.R7, isa.R5, 0)
		b.Shri(isa.R8, isa.R7, shift)
		b.Andi(isa.R8, isa.R8, 15)
		b.Shli(isa.R8, isa.R8, 3)
		b.Add(isa.R8, isa.R3, isa.R8) // &cursor[d]
		b.Ld(isa.R15, isa.R8, 0)      // slot
		b.Addi(isa.R16, isa.R15, 1)
		b.St(isa.R8, 0, isa.R16)
		b.Shli(isa.R15, isa.R15, 3)
		b.Liu(isa.R16, dst)
		b.Add(isa.R15, isa.R16, isa.R15)
		b.St(isa.R15, 0, isa.R7) // dst[slot] = elem
		b.Addi(isa.R5, isa.R5, 8)
		b.Addi(isa.R4, isa.R4, 1)
		b.Bne(isa.R4, isa.R30, pfx+"_place")
		b.Liu(isa.R9, bar)
		EmitBarrier(b, pfx+"_b2", isa.R9)

		// Copy my partition back from dst to src for the next pass.
		b.Liu(isa.R5, part*8)
		b.Mul(isa.R5, RegTID, isa.R5)
		b.Liu(isa.R6, src)
		b.Add(isa.R6, isa.R6, isa.R5)
		b.Liu(isa.R7, dst)
		b.Add(isa.R7, isa.R7, isa.R5)
		b.Liu(isa.R8, part)
		b.RepMovs(isa.R6, isa.R7, isa.R8)
		b.Liu(isa.R9, bar)
		EmitBarrier(b, pfx+"_b3", isa.R9)
	}
	b.Halt()

	init := func(m *mem.Memory) {
		for i, v := range RadixInitValues(n) {
			m.Store(src+uint64(i)*8, v)
		}
	}
	prog := b.Build(lay.Size(), threads, init)
	prog.Symbols["src"] = src
	prog.Symbols["dst"] = dst
	return prog
}

// RadixInitValues returns the initial byte-valued keys.
func RadixInitValues(n uint64) []uint64 {
	out := make([]uint64, n)
	x := uint64(0x243F6A8885A308D3)
	for i := range out {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out[i] = x & 0xFF
	}
	return out
}

// RadixReference returns the expected fully sorted key array.
func RadixReference(n uint64) []uint64 {
	out := RadixInitValues(n)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Ocean builds the grid-stencil kernel: threads own horizontal bands of
// a 2D grid and Jacobi-iterate with double buffering; only band-edge rows
// are communicated, through barrier-separated neighbour reads — SPLASH-2
// OCEAN's nearest-neighbour pattern.
func Ocean(rows, cols uint64, iters int64, threads int) *isa.Program {
	p := uint64(threads)
	if rows%p != 0 || rows < 3 {
		panic("workload: Ocean rows must be a positive multiple of the thread count (>= 3)")
	}
	var lay mem.Layout
	g1 := lay.AllocWords(rows * cols)
	g2 := lay.AllocWords(rows * cols)
	bar := lay.AllocWords(2)
	band := rows / p

	b := isa.NewBuilder("ocean")
	// R4 = first row (clamped to 1), R5 = limit row (clamped to rows-1).
	b.Liu(isa.R3, band)
	b.Mul(isa.R4, RegTID, isa.R3)
	b.Add(isa.R5, isa.R4, isa.R3)
	b.Li(isa.R6, 1)
	b.Bge(isa.R4, isa.R6, "lo_ok")
	b.Li(isa.R4, 1)
	b.Label("lo_ok")
	b.Liu(isa.R6, rows-1)
	b.Blt(isa.R5, isa.R6, "hi_ok")
	b.Liu(isa.R5, rows-1)
	b.Label("hi_ok")

	b.Liu(isa.R15, g1) // src
	b.Liu(isa.R16, g2) // dst
	b.Li(isa.R3, 0)    // iteration
	b.Label("iter")

	b.Mov(isa.R6, isa.R4) // i
	b.Label("rowloop")
	b.Bge(isa.R6, isa.R5, "rowdone")
	b.Li(isa.R7, 1) // j
	b.Label("colloop")
	// addr(i,j) = base + (i*cols + j)*8
	b.Muli(isa.R8, isa.R6, int64(cols))
	b.Add(isa.R8, isa.R8, isa.R7)
	b.Shli(isa.R8, isa.R8, 3)
	b.Add(isa.R9, isa.R15, isa.R8) // &src[i][j]
	b.Ld(isa.R18, isa.R9, -int64(cols)*8)
	b.Ld(isa.R19, isa.R9, int64(cols)*8)
	b.Add(isa.R18, isa.R18, isa.R19)
	b.Ld(isa.R19, isa.R9, -8)
	b.Add(isa.R18, isa.R18, isa.R19)
	b.Ld(isa.R19, isa.R9, 8)
	b.Add(isa.R18, isa.R18, isa.R19)
	b.Shri(isa.R18, isa.R18, 2)
	b.Add(isa.R17, isa.R16, isa.R8) // &dst[i][j]
	b.St(isa.R17, 0, isa.R18)
	b.Addi(isa.R7, isa.R7, 1)
	b.Liu(isa.R19, cols-1)
	b.Bne(isa.R7, isa.R19, "colloop")
	b.Addi(isa.R6, isa.R6, 1)
	b.Jmp("rowloop")
	b.Label("rowdone")
	b.Liu(isa.R9, bar)
	EmitBarrier(b, "ob", isa.R9)

	// Swap src/dst for the next sweep.
	b.Mov(isa.R17, isa.R15)
	b.Mov(isa.R15, isa.R16)
	b.Mov(isa.R16, isa.R17)
	b.Addi(isa.R3, isa.R3, 1)
	b.Li(isa.R19, iters)
	b.Bne(isa.R3, isa.R19, "iter")
	b.Halt()

	init := func(m *mem.Memory) {
		for i := uint64(0); i < rows*cols; i++ {
			v := (i*2654435761 + 17) % 4096
			m.Store(g1+i*8, v)
			m.Store(g2+i*8, v) // boundaries must match in both buffers
		}
	}
	prog := b.Build(lay.Size(), threads, init)
	prog.Symbols["g1"] = g1
	prog.Symbols["g2"] = g2
	return prog
}

// OceanReference computes Ocean's expected final grids in Go, returning
// (g1, g2) contents after iters sweeps.
func OceanReference(rows, cols uint64, iters int64) (g1, g2 []uint64) {
	g1 = make([]uint64, rows*cols)
	for i := range g1 {
		g1[i] = (uint64(i)*2654435761 + 17) % 4096
	}
	g2 = append([]uint64(nil), g1...)
	src, dst := g1, g2
	for it := int64(0); it < iters; it++ {
		for i := uint64(1); i < rows-1; i++ {
			for j := uint64(1); j < cols-1; j++ {
				sum := src[(i-1)*cols+j] + src[(i+1)*cols+j] + src[i*cols+j-1] + src[i*cols+j+1]
				dst[i*cols+j] = sum >> 2
			}
		}
		src, dst = dst, src
	}
	return g1, g2
}
