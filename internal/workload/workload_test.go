package workload_test

import (
	"sort"
	"testing"

	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/workload"
)

// runNative executes prog natively and returns the machine for memory
// inspection.
func runNative(t *testing.T, prog *isa.Program, threads int, seed uint64) *machine.Machine {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.Threads = threads
	cfg.Seed = seed
	m := machine.New(prog, cfg)
	if _, err := m.Run(); err != nil {
		t.Fatalf("%s: %v", prog.Name, err)
	}
	return m
}

func TestFFTMatchesReference(t *testing.T) {
	const n, phases, threads = 512, 3, 4
	prog := workload.FFT(n, phases, threads)
	m := runNative(t, prog, threads, 7)
	want := workload.FFTReference(n, phases, threads)
	base := prog.Symbol("a")
	for i := uint64(0); i < n; i++ {
		if got := m.Memory().Load(base + i*8); got != want[i] {
			t.Fatalf("a[%d] = %#x, want %#x", i, got, want[i])
		}
	}
}

func TestFFTReferenceScheduleIndependent(t *testing.T) {
	const n, phases, threads = 256, 2, 4
	want := workload.FFTReference(n, phases, threads)
	for _, seed := range []uint64{1, 2, 3} {
		prog := workload.FFT(n, phases, threads)
		m := runNative(t, prog, threads, seed)
		base := prog.Symbol("a")
		for i := uint64(0); i < n; i++ {
			if got := m.Memory().Load(base + i*8); got != want[i] {
				t.Fatalf("seed %d: a[%d] = %#x, want %#x", seed, i, got, want[i])
			}
		}
	}
}

func TestLUMatchesReference(t *testing.T) {
	const blocks, bw, threads = 12, 32, 4
	prog := workload.LU(blocks, bw, threads)
	m := runNative(t, prog, threads, 9)
	want := workload.LUReference(blocks, bw, threads)
	base := prog.Symbol("a")
	for i := range want {
		if got := m.Memory().Load(base + uint64(i)*8); got != want[i] {
			t.Fatalf("a[%d] = %#x, want %#x", i, got, want[i])
		}
	}
}

func TestOceanMatchesReference(t *testing.T) {
	const rows, cols, iters, threads = 16, 32, 5, 4
	prog := workload.Ocean(rows, cols, iters, threads)
	m := runNative(t, prog, threads, 11)
	g1, g2 := workload.OceanReference(rows, cols, iters)
	b1, b2 := prog.Symbol("g1"), prog.Symbol("g2")
	for i := range g1 {
		if got := m.Memory().Load(b1 + uint64(i)*8); got != g1[i] {
			t.Fatalf("g1[%d] = %d, want %d", i, got, g1[i])
		}
		if got := m.Memory().Load(b2 + uint64(i)*8); got != g2[i] {
			t.Fatalf("g2[%d] = %d, want %d", i, got, g2[i])
		}
	}
}

func TestRadixSortsExactly(t *testing.T) {
	const n, threads = 1024, 4
	want := workload.RadixReference(n)
	for _, seed := range []uint64{13, 14} {
		prog := workload.Radix(n, threads)
		m := runNative(t, prog, threads, seed)
		base := prog.Symbol("src")
		for i := uint64(0); i < n; i++ {
			if got := m.Memory().Load(base + i*8); got != want[i] {
				t.Fatalf("seed %d: src[%d] = %d, want %d (rank-based sort broken)", seed, i, got, want[i])
			}
		}
	}
}

func TestRadixInitValuesAreBytes(t *testing.T) {
	for i, v := range workload.RadixInitValues(512) {
		if v > 0xFF {
			t.Fatalf("key %d = %#x exceeds byte range", i, v)
		}
	}
	if sort.SliceIsSorted(workload.RadixInitValues(512), func(i, j int) bool { return i < j }) {
		t.Log("init values trivially ordered?") // informational only
	}
}

func TestBarnesSumInvariant(t *testing.T) {
	const nodes, steps, threads = 32, 200, 4
	prog := workload.Barnes(nodes, steps, threads)
	m := runNative(t, prog, threads, 17)
	base := prog.Symbol("tree")
	var sum uint64
	for i := uint64(0); i < nodes; i++ {
		sum += m.Memory().Load(base + i*64 + 8)
		if lock := m.Memory().Load(base + i*64); lock != 0 {
			t.Errorf("node %d lock still held: %d", i, lock)
		}
	}
	if want := workload.BarnesExpectedSum(steps, threads); sum != want {
		t.Errorf("tree sum = %d, want %d (lost updates under per-node locks)", sum, want)
	}
}

func TestRaytraceMatchesReference(t *testing.T) {
	const tasks, scene, samples, threads = 128, 512, 32, 4
	prog := workload.Raytrace(tasks, scene, samples, threads)
	m := runNative(t, prog, threads, 19)
	want := workload.RaytraceReference(tasks, scene, samples)
	base := prog.Symbol("fb")
	for i := range want {
		if got := m.Memory().Load(base + uint64(i)*8); got != want[i] {
			t.Fatalf("fb[%d] = %#x, want %#x", i, got, want[i])
		}
	}
}

func TestRaytraceLoadBalances(t *testing.T) {
	// With work stealing, different seeds may distribute tasks
	// differently but the framebuffer must not change.
	const tasks, scene, samples, threads = 64, 256, 16, 4
	want := workload.RaytraceReference(tasks, scene, samples)
	for _, seed := range []uint64{3, 4} {
		prog := workload.Raytrace(tasks, scene, samples, threads)
		m := runNative(t, prog, threads, seed)
		base := prog.Symbol("fb")
		for i := range want {
			if got := m.Memory().Load(base + uint64(i)*8); got != want[i] {
				t.Fatalf("seed %d: fb[%d] differs", seed, i)
			}
		}
	}
}

func TestWaterGlobalAccumulator(t *testing.T) {
	const molWords, steps, threads = 256, 4, 4
	prog := workload.Water(molWords, steps, threads)
	m := runNative(t, prog, threads, 23)
	want := workload.WaterExpectedGlobal(molWords, steps, threads)
	if got := m.Memory().Load(prog.Symbol("global")); got != want {
		t.Errorf("global = %d, want %d", got, want)
	}
}

func TestVolrendMatchesReference(t *testing.T) {
	const rays, voxels, steps, threads = 128, 512, 24, 4
	prog := workload.Volrend(rays, voxels, steps, threads)
	m := runNative(t, prog, threads, 29)
	want := workload.VolrendReference(rays, voxels, steps)
	base := prog.Symbol("out")
	for i := range want {
		if got := m.Memory().Load(base + uint64(i)*8); got != want[i] {
			t.Fatalf("out[%d] = %#x, want %#x", i, got, want[i])
		}
	}
}

func TestSuiteSpecsRunAtAllThreadCounts(t *testing.T) {
	for _, spec := range workload.Suite() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			for _, threads := range []int{1, 2, 4} {
				prog := spec.Build(threads)
				cfg := machine.DefaultConfig()
				cfg.Threads = threads
				cfg.Seed = uint64(41 + threads)
				if _, err := machine.New(prog, cfg).Run(); err != nil {
					t.Fatalf("threads=%d: %v", threads, err)
				}
			}
		})
	}
}

func TestByName(t *testing.T) {
	if _, ok := workload.ByName("fft"); !ok {
		t.Error("fft missing from suite")
	}
	if _, ok := workload.ByName("nope"); ok {
		t.Error("unknown workload found")
	}
	if len(workload.Suite()) < 12 {
		t.Errorf("suite has only %d workloads", len(workload.Suite()))
	}
}

func TestSuiteDescriptionsComplete(t *testing.T) {
	for _, s := range workload.Suite() {
		if s.Name == "" || s.Description == "" || s.Build == nil || (s.Kind != "splash" && s.Kind != "micro" && s.Kind != "app") {
			t.Errorf("incomplete spec: %+v", s)
		}
	}
}

func TestEmitterRegisterValidation(t *testing.T) {
	b := isa.NewBuilder("bad")
	defer func() {
		if recover() == nil {
			t.Error("scratch-register collision not detected")
		}
	}()
	workload.EmitBarrier(b, "x", isa.R21)
}

func TestFFTSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-divisible FFT size accepted")
		}
	}()
	workload.FFT(100, 1, 3)
}
