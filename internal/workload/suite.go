package workload

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// Spec describes one benchmark in the evaluation suite.
type Spec struct {
	// Name identifies the workload in reports (matches the SPLASH-2
	// namesake where applicable).
	Name string
	// Kind is "splash" for the SPLASH-2-like kernels, "micro" for the
	// microbenchmarks, or "app" for application-style workloads.
	Kind string
	// Description says what behaviour the workload exercises.
	Description string
	// RaceExpectation tags workloads with known race status: "racy"
	// (the offline detector must confirm at least one race), "racefree"
	// (it must confirm none), or "" (unclassified). Drives the harness's
	// race-detection metamorphic property.
	RaceExpectation string
	// Build constructs the program for the given thread count.
	Build func(threads int) *isa.Program
}

// SplashSuite returns the SPLASH-2-like kernels at the standard sizes
// the experiments use. Sizes are chosen so the full suite runs in
// seconds under `go test` while still retiring hundreds of thousands of
// instructions per benchmark.
func SplashSuite() []Spec {
	return []Spec{
		{
			Name: "barnes", Kind: "splash",
			Description: "irregular per-node futex locking over a shared tree",
			Build:       func(t int) *isa.Program { return Barnes(256, 400, t) },
		},
		{
			Name: "cholesky", Kind: "splash",
			Description: "irregular supernodes with dynamically claimed trailing updates",
			Build:       func(t int) *isa.Program { return Cholesky(10, t) },
		},
		{
			Name: "fft", Kind: "splash",
			Description: "barrier phases with all-to-all strided transpose reads",
			Build:       func(t int) *isa.Program { return FFT(8192, 5, t) },
		},
		{
			Name: "fmm", Kind: "splash",
			Description: "hierarchical upward/downward tree passes with level barriers",
			Build:       func(t int) *isa.Program { return FMM(7, t) },
		},
		{
			Name: "lu", Kind: "splash",
			Description: "blocked elimination; one producer, many consumers per step",
			Build:       func(t int) *isa.Program { return LU(16, 256, t) },
		},
		{
			Name: "ocean", Kind: "splash",
			Description: "banded grid stencil with neighbour-row communication",
			Build:       func(t int) *isa.Program { return Ocean(32, 128, 6, t) },
		},
		{
			Name: "radix", Kind: "splash",
			Description: "atomic shared histograms and racing scatter permutation",
			Build:       func(t int) *isa.Program { return Radix(4096, t) },
		},
		{
			Name: "radiosity", Kind: "splash",
			Description: "dynamic task queue over fine-grained locked scene patches",
			Build:       func(t int) *isa.Program { return Radiosity(128, 384, 60, t) },
		},
		{
			Name: "raytrace", Kind: "splash",
			Description: "work stealing from a shared cursor, read-only scene",
			Build:       func(t int) *isa.Program { return Raytrace(256, 1024, 64, t) },
		},
		{
			Name: "volrend", Kind: "splash",
			Description: "heavy concurrent read sharing plus light output syscalls",
			Build:       func(t int) *isa.Program { return Volrend(256, 2048, 48, t) },
		},
		{
			Name: "water", Kind: "splash",
			Description: "mostly-private compute with per-step locked reduction",
			Build:       func(t int) *isa.Program { return Water(1024, 8, t) },
		},
	}
}

// MicroSuite returns the microbenchmarks at standard sizes.
func MicroSuite() []Spec {
	return []Spec{
		{
			Name: "counter", Kind: "micro",
			Description: "maximum-contention shared atomic counter",
			Build:       func(t int) *isa.Program { return Counter(2000, t) },
		},
		{
			Name: "pingpong", Kind: "micro",
			Description: "false-sharing line ping-pong",
			Build:       func(t int) *isa.Program { return Pingpong(2000, t) },
		},
		{
			Name: "private", Kind: "micro",
			Description: "no sharing; chunks end only on CTR/capacity events",
			Build:       func(t int) *isa.Program { return Private(8192, t) },
		},
		{
			Name: "ioheavy", Kind: "micro",
			Description: "input-log stress: read/write syscall loop",
			Build:       func(t int) *isa.Program { return IOHeavy(40, 128, t) },
		},
		{
			Name: "byteshare", Kind: "micro",
			Description: "per-thread byte lanes inside shared words: sub-word false sharing",
			Build:       func(t int) *isa.Program { return ByteShare(64, 40, t) },
		},
		{
			Name: "repcopy", Kind: "micro",
			Description: "REP string copies split by conflicting writers",
			Build:       func(t int) *isa.Program { return RepCopy(8192, t) },
		},
		{
			Name: "racy", Kind: "micro",
			Description:     "unsynchronized shared-word increments: known data races",
			RaceExpectation: "racy",
			Build:           func(t int) *isa.Program { return Racy(200, t) },
		},
		{
			Name: "racefree", Kind: "micro",
			Description:     "futex-mutex-guarded twin of racy: provably no data races",
			RaceExpectation: "racefree",
			Build:           func(t int) *isa.Program { return RaceFree(100, t) },
		},
	}
}

// AppSuite returns application-style workloads beyond the paper's
// benchmark suite: the always-on service scenarios RnR targets.
func AppSuite() []Spec {
	return []Spec{
		{
			Name: "kvserver", Kind: "app",
			Description: "worker threads service external requests against a bucket-locked KV table",
			Build:       func(t int) *isa.Program { return KVServer(120, 32, t) },
		},
		{
			Name: "reqserver", Kind: "app",
			Description: "request loop over a futex-locked bounded ring with bucket-locked stats",
			Build:       func(t int) *isa.Program { return ReqServer(48, 4, 16, t) },
		},
		{
			Name: "sigserver", Kind: "app",
			Description: "signal-driven request loop: sustained syscalls with async handler traffic",
			Build:       func(t int) *isa.Program { return SigServer(64, t) },
		},
	}
}

// Suite returns the full evaluation suite: SPLASH-2-like kernels, then
// microbenchmarks, then application workloads.
func Suite() []Spec { return append(append(SplashSuite(), MicroSuite()...), AppSuite()...) }

// ByName returns the named workload spec, or false.
func ByName(name string) (Spec, bool) {
	for _, s := range Suite() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// ProgramByName rebuilds a program from a recording's manifest name:
// catalogue workloads resolve through the suite, fuzz programs
// ("fuzz-<seed>") regenerate from their seed. This is how services that
// receive only a bundle — the ingest verifier, fleet workers — recover
// the code a recording ran.
func ProgramByName(name string, threads int) (*isa.Program, error) {
	if spec, ok := ByName(name); ok {
		return spec.Build(threads), nil
	}
	if s, ok := strings.CutPrefix(name, "fuzz-"); ok {
		seed, err := strconv.ParseUint(s, 10, 64)
		if err == nil {
			return RandomProgram(seed, threads), nil
		}
	}
	return nil, fmt.Errorf("workload: program %q not in the catalogue", name)
}

// ScaledSuite returns the evaluation suite with workload inputs grown by
// the given factor (1 = the default sizes used in tests). Larger scales
// approach the paper's input regime: more instructions between
// synchronization events, longer chunks, and lower per-instruction log
// rates. Scales beyond ~16 make a full sweep take minutes.
func ScaledSuite(scale uint64) []Spec {
	if scale <= 1 {
		return Suite()
	}
	s := int64(scale)
	u := scale
	specs := []Spec{
		{Name: "barnes", Kind: "splash",
			Description: "irregular per-node futex locking over a shared tree",
			Build:       func(t int) *isa.Program { return Barnes(256*u, 400*s, t) }},
		{Name: "cholesky", Kind: "splash",
			Description: "irregular supernodes with dynamically claimed trailing updates",
			Build:       func(t int) *isa.Program { return Cholesky(10+2*(u-1), t) }},
		{Name: "fft", Kind: "splash",
			Description: "barrier phases with all-to-all strided transpose reads",
			Build:       func(t int) *isa.Program { return FFT(8192*u, 5, t) }},
		{Name: "fmm", Kind: "splash",
			Description: "hierarchical upward/downward tree passes with level barriers",
			Build:       func(t int) *isa.Program { return FMM(min8(7+levelsFor(u)), t) }},
		{Name: "lu", Kind: "splash",
			Description: "blocked elimination; one producer, many consumers per step",
			Build:       func(t int) *isa.Program { return LU(16, 256*u, t) }},
		{Name: "ocean", Kind: "splash",
			Description: "banded grid stencil with neighbour-row communication",
			Build:       func(t int) *isa.Program { return Ocean(32, 128*u, 6, t) }},
		{Name: "radix", Kind: "splash",
			Description: "atomic shared histograms and racing scatter permutation",
			Build:       func(t int) *isa.Program { return Radix(4096*u, t) }},
		{Name: "radiosity", Kind: "splash",
			Description: "dynamic task queue over fine-grained locked scene patches",
			Build:       func(t int) *isa.Program { return Radiosity(128, 384*u, 60*u, t) }},
		{Name: "raytrace", Kind: "splash",
			Description: "work stealing from a shared cursor, read-only scene",
			Build:       func(t int) *isa.Program { return Raytrace(256*u, 1024, 64*u, t) }},
		{Name: "volrend", Kind: "splash",
			Description: "heavy concurrent read sharing plus light output syscalls",
			Build:       func(t int) *isa.Program { return Volrend(256*u, 2048, 48*u, t) }},
		{Name: "water", Kind: "splash",
			Description: "mostly-private compute with per-step locked reduction",
			Build:       func(t int) *isa.Program { return Water(1024*u, 8, t) }},
	}
	specs = append(specs, MicroSuite()...)
	return append(specs, AppSuite()...)
}

// levelsFor grows the FMM tree slowly with scale (each level quadruples
// the leaf count).
func levelsFor(scale uint64) int {
	extra := 0
	for s := scale; s >= 4; s /= 4 {
		extra++
	}
	return extra
}

func min8(l int) int {
	if l > 8 {
		return 8
	}
	return l
}
