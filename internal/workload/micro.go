package workload

import (
	"repro/internal/capo"
	"repro/internal/isa"
	"repro/internal/mem"
)

// Microbenchmarks: minimal programs that each isolate one recording
// behaviour (conflict chunking, kernel input logging, REP splitting,
// private computation). The SPLASH-2-like kernels live in kernels.go.

// Counter builds the contended-atomic microbenchmark: every thread
// fetch-adds a single shared word iters times, barriers, and thread 0
// writes the total to fd 1. Maximum inter-thread conflict density.
func Counter(iters int64, threads int) *isa.Program {
	var lay mem.Layout
	counter := lay.AllocWords(1)
	barrier := lay.AllocWords(2)

	b := isa.NewBuilder("counter")
	b.Liu(isa.R3, counter)
	b.Li(isa.R4, 0)
	b.Li(isa.R5, iters)
	b.Li(isa.R6, 1)
	b.Label("loop")
	b.Fadd(isa.R7, isa.R3, 0, isa.R6)
	b.Addi(isa.R4, isa.R4, 1)
	b.Bne(isa.R4, isa.R5, "loop")
	b.Liu(isa.R8, barrier)
	EmitBarrier(b, "b0", isa.R8)
	emitWriteWord(b, isa.R3, "skipwrite")
	b.Halt()

	prog := b.Build(lay.Size(), threads, nil)
	prog.Symbols["counter"] = counter
	return prog
}

// emitWriteWord makes thread 0 write the 8-byte word at [srcAddrReg] to
// fd 1; other threads jump to skipLabel.
func emitWriteWord(b *isa.Builder, srcAddrReg isa.Reg, skipLabel string) {
	b.Bne(RegTID, isa.R0, skipLabel)
	b.Ld(isa.R9, srcAddrReg, 0)
	b.St(RegStack, 0, isa.R9)
	b.Li(isa.RRet, int64(capo.SysWrite))
	b.Li(isa.R11, 1)
	b.Mov(isa.R12, RegStack)
	b.Li(isa.R13, 8)
	b.Syscall()
	b.Label(skipLabel)
}

// Mutex builds the lock-contention microbenchmark: threads increment a
// shared word non-atomically inside a futex mutex. Exercises kernel
// futex paths and lock-ordering recording.
func Mutex(iters int64, threads int) *isa.Program {
	var lay mem.Layout
	lock := lay.AllocWords(1)
	shared := lay.AllocWords(1)
	barrier := lay.AllocWords(2)

	b := isa.NewBuilder("mutex")
	b.Liu(isa.R3, lock)
	b.Liu(isa.R4, shared)
	b.Li(isa.R5, 0)
	b.Li(isa.R7, iters)
	b.Label("loop")
	EmitFutexLock(b, "l", isa.R3)
	b.Ld(isa.R6, isa.R4, 0)
	b.Addi(isa.R6, isa.R6, 1)
	b.St(isa.R4, 0, isa.R6)
	EmitFutexUnlock(b, "l", isa.R3)
	b.Addi(isa.R5, isa.R5, 1)
	b.Bne(isa.R5, isa.R7, "loop")
	b.Liu(isa.R8, barrier)
	EmitBarrier(b, "b0", isa.R8)
	emitWriteWord(b, isa.R4, "skipwrite")
	b.Halt()

	prog := b.Build(lay.Size(), threads, nil)
	prog.Symbols["shared"] = shared
	return prog
}

// Pingpong builds the false-sharing-style microbenchmark: pairs of
// threads alternately write words on the same cache line, maximising
// coherence ping-ponging (WAW/WAR conflicts) without atomics.
func Pingpong(iters int64, threads int) *isa.Program {
	var lay mem.Layout
	line := lay.AllocWords(8) // one cache line shared by all threads
	barrier := lay.AllocWords(2)

	b := isa.NewBuilder("pingpong")
	// Each thread writes word (tid % 8) of the shared line, then reads a
	// neighbour's word.
	b.Liu(isa.R3, line)
	b.Andi(isa.R4, RegTID, 7)
	b.Shli(isa.R4, isa.R4, 3)
	b.Add(isa.R3, isa.R3, isa.R4) // &line[tid%8]
	b.Liu(isa.R5, line)
	b.Addi(isa.R6, RegTID, 1)
	b.Andi(isa.R6, isa.R6, 7)
	b.Shli(isa.R6, isa.R6, 3)
	b.Add(isa.R5, isa.R5, isa.R6) // &line[(tid+1)%8]
	b.Li(isa.R7, 0)
	b.Li(isa.R8, iters)
	b.Label("loop")
	b.St(isa.R3, 0, isa.R7)
	b.Ld(isa.R9, isa.R5, 0)
	b.Addi(isa.R7, isa.R7, 1)
	b.Bne(isa.R7, isa.R8, "loop")
	b.Liu(isa.R9, barrier)
	EmitBarrier(b, "b0", isa.R9)
	b.Halt()
	return b.Build(lay.Size(), threads, nil)
}

// Private builds the no-sharing microbenchmark: each thread sums over a
// private array. Chunks should terminate almost exclusively on CTR
// saturation — the paper's best case.
func Private(words uint64, threads int) *isa.Program {
	var lay mem.Layout
	arrays := make([]uint64, threads)
	for t := range arrays {
		arrays[t] = lay.AllocWords(words)
	}
	base := arrays[0]
	stride := uint64(0)
	if threads > 1 {
		stride = arrays[1] - arrays[0]
	}

	b := isa.NewBuilder("private")
	b.Liu(isa.R3, base)
	b.Liu(isa.R4, stride)
	b.Mul(isa.R4, RegTID, isa.R4)
	b.Add(isa.R3, isa.R3, isa.R4) // this thread's array
	b.Li(isa.R5, 0)               // index
	b.Liu(isa.R6, words)
	b.Li(isa.R7, 0) // sum
	b.Label("loop")
	b.Ld(isa.R8, isa.R3, 0)
	b.Add(isa.R7, isa.R7, isa.R8)
	b.St(isa.R3, 0, isa.R7) // write back running sum (private traffic)
	b.Addi(isa.R3, isa.R3, 8)
	b.Addi(isa.R5, isa.R5, 1)
	b.Bne(isa.R5, isa.R6, "loop")
	b.Halt()

	init := func(m *mem.Memory) {
		for t := 0; t < threads; t++ {
			for i := uint64(0); i < words; i++ {
				m.Store(arrays[t]+i*8, i+uint64(t))
			}
		}
	}
	return b.Build(lay.Size(), threads, init)
}

// IOHeavy builds the input-logging stress microbenchmark: threads loop
// reading external data into a private buffer and writing it back out.
// The input log dominates total log volume, the paper's worst case for
// the software stack.
func IOHeavy(iters int64, bufWords uint64, threads int) *isa.Program {
	var lay mem.Layout
	bufs := make([]uint64, threads)
	for t := range bufs {
		bufs[t] = lay.AllocWords(bufWords)
	}
	base := bufs[0]
	stride := uint64(0)
	if threads > 1 {
		stride = bufs[1] - bufs[0]
	}

	b := isa.NewBuilder("ioheavy")
	b.Liu(isa.R3, base)
	b.Liu(isa.R4, stride)
	b.Mul(isa.R4, RegTID, isa.R4)
	b.Add(isa.R3, isa.R3, isa.R4)
	b.Li(isa.R5, 0)
	b.Li(isa.R6, iters)
	b.Label("loop")
	b.Li(isa.RRet, int64(capo.SysRead))
	b.Li(isa.R11, 0)
	b.Mov(isa.R12, isa.R3)
	b.Liu(isa.R13, bufWords*8)
	b.Syscall()
	b.Li(isa.RRet, int64(capo.SysWrite))
	b.Li(isa.R11, 1)
	b.Mov(isa.R12, isa.R3)
	b.Liu(isa.R13, bufWords*8)
	b.Syscall()
	b.Addi(isa.R5, isa.R5, 1)
	b.Bne(isa.R5, isa.R6, "loop")
	b.Halt()
	return b.Build(lay.Size(), threads, nil)
}

// RepCopy builds the string-instruction microbenchmark: even threads
// REPMOVS a large shared region while odd threads race reads and writes
// over the destination, folding every racy observation into a stored
// checksum. Chunk boundaries land inside REP instructions, and the
// observers make the final state sensitive to the exact split point —
// the property experiment A3's residue ablation demonstrates.
func RepCopy(words uint64, threads int) *isa.Program {
	probes := words / 64
	var lay mem.Layout
	src := lay.AllocWords(words)
	dst := lay.AllocWords(words)
	probe := lay.AllocWords(probes * uint64(threads))
	barrier := lay.AllocWords(2)

	b := isa.NewBuilder("repcopy")
	b.Andi(isa.R3, RegTID, 1)
	b.Bne(isa.R3, isa.R0, "scribbler")

	b.Liu(isa.R4, dst)
	b.Liu(isa.R5, src)
	b.Liu(isa.R6, words)
	b.RepMovs(isa.R4, isa.R5, isa.R6)
	b.Jmp("join")

	b.Label("scribbler")
	b.Liu(isa.R4, dst)
	b.Li(isa.R5, 0)
	b.Liu(isa.R6, probes)
	b.Li(isa.R7, 0) // racy-observation checksum
	b.Liu(isa.R8, probes*8)
	b.Mul(isa.R8, RegTID, isa.R8)
	b.Liu(isa.R15, probe)
	b.Add(isa.R8, isa.R8, isa.R15) // this thread's probe row
	b.Label("scribble_loop")
	b.Ld(isa.R16, isa.R4, 0) // racy read of in-flight copy state
	b.Muli(isa.R7, isa.R7, 3)
	b.Add(isa.R7, isa.R7, isa.R16)
	b.St(isa.R8, 0, isa.R7) // record the observation
	b.St(isa.R4, 0, isa.R5) // racy write back into the copy range
	b.Addi(isa.R4, isa.R4, 512)
	b.Addi(isa.R8, isa.R8, 8)
	b.Addi(isa.R5, isa.R5, 1)
	b.Bne(isa.R5, isa.R6, "scribble_loop")

	b.Label("join")
	b.Liu(isa.R9, barrier)
	EmitBarrier(b, "b0", isa.R9)
	b.Halt()

	init := func(m *mem.Memory) {
		for i := uint64(0); i < words; i++ {
			m.Store(src+i*8, i*3+1)
		}
	}
	prog := b.Build(lay.Size(), threads, init)
	prog.Symbols["src"] = src
	prog.Symbols["dst"] = dst
	prog.Symbols["probe"] = probe
	return prog
}

// SignalLoop builds the async-signal microbenchmark: worker threads spin
// on private counters while the machine delivers signals whose handler
// bumps a shared word. Thread 0 registers the handler first and all
// threads synchronize before working, so delivery can target any thread.
func SignalLoop(iters int64, threads int) *isa.Program {
	var lay mem.Layout
	sigCount := lay.AllocWords(1)
	barrier := lay.AllocWords(2)

	b := isa.NewBuilder("signalloop")
	b.Bne(RegTID, isa.R0, "wait")
	b.LiLabel(isa.R11, "handler")
	b.Li(isa.RRet, int64(capo.SysSigHandler))
	b.Syscall()
	b.Label("wait")
	b.Liu(isa.R9, barrier)
	EmitBarrier(b, "b0", isa.R9)
	b.Li(isa.R3, 0)
	b.Li(isa.R4, iters)
	b.Label("loop")
	b.Addi(isa.R3, isa.R3, 1)
	b.Bne(isa.R3, isa.R4, "loop")
	b.Halt()

	b.Label("handler")
	b.Liu(isa.R20, sigCount)
	b.Li(isa.R21, 1)
	b.Fadd(isa.R22, isa.R20, 0, isa.R21)
	b.Li(isa.RRet, int64(capo.SysSigReturn))
	b.Syscall() // sigreturn restores the interrupted frame; no code follows

	prog := b.Build(lay.Size(), threads, nil)
	prog.Symbols["sigcount"] = sigCount
	return prog
}

// ByteShare builds the sub-word false-sharing microbenchmark: each
// thread owns one BYTE of every word in a shared array and repeatedly
// read-modify-writes it with byte loads/stores. Byte-granular ownership
// inside a single word is invisible to cache-line-granularity conflict
// detection, so the recorder sees (and must order) constant WAW/RAW
// traffic even though no thread ever touches another's data — the
// paper's conservative-detection worst case at the finest granularity.
func ByteShare(words uint64, iters int64, threads int) *isa.Program {
	if threads > 8 {
		threads = 8 // one byte lane per thread
	}
	var lay mem.Layout
	arr := lay.AllocWords(words)
	bar := lay.AllocWords(2)

	b := isa.NewBuilder("byteshare")
	// lane address of word w = arr + w*8 + (tid % 8)
	b.Andi(isa.R3, RegTID, 7)
	b.Liu(isa.R4, arr)
	b.Add(isa.R3, isa.R3, isa.R4) // &arr[0] + lane
	b.Li(isa.R5, 0)               // iteration
	b.Li(isa.R6, iters)
	b.Label("iter")
	b.Mov(isa.R7, isa.R3)
	b.Li(isa.R8, 0)
	b.Liu(isa.R9, words)
	b.Label("sweep")
	b.Lbu(isa.R15, isa.R7, 0)
	b.Addi(isa.R15, isa.R15, 1)
	b.Sb(isa.R7, 0, isa.R15)
	b.Addi(isa.R7, isa.R7, 8)
	b.Addi(isa.R8, isa.R8, 1)
	b.Bne(isa.R8, isa.R9, "sweep")
	b.Addi(isa.R5, isa.R5, 1)
	b.Bne(isa.R5, isa.R6, "iter")
	b.Liu(isa.R9, bar)
	EmitBarrier(b, "bs", isa.R9)
	b.Halt()

	prog := b.Build(lay.Size(), threads, nil)
	prog.Symbols["arr"] = arr
	return prog
}

// ByteShareExpected returns the expected final byte value in every
// thread's lane: iters increments per sweep word, mod 256.
func ByteShareExpected(iters int64) byte { return byte(iters) }
