package workload

import (
	"repro/internal/isa"
	"repro/internal/mem"
)

// choleskyBlockWords returns cholesky's irregular block sizes: sparse
// supernodes vary widely, unlike LU's uniform tiles.
func choleskyBlockWords(blocks uint64) []uint64 {
	sizes := make([]uint64, blocks)
	for j := range sizes {
		sizes[j] = 160 + (uint64(j)*61)%256
	}
	return sizes
}

// Cholesky builds the sparse-factorization-like kernel: blocked
// elimination like LU, but with irregular block sizes read from an
// in-memory descriptor table and *dynamically claimed* trailing updates
// (threads race fetch-adds on a per-step cursor) — SPLASH-2 CHOLESKY's
// combination of irregular supernodes and task-queue load balancing.
// Which thread performs an update is schedule-dependent; the data result
// is not.
func Cholesky(blocks uint64, threads int) *isa.Program {
	sizes := choleskyBlockWords(blocks)
	var lay mem.Layout
	offTab := lay.AllocWords(blocks)  // byte offset of each block
	sizeTab := lay.AllocWords(blocks) // word count of each block
	cursors := lay.AllocWords(blocks) // per-step steal cursor, init k+1
	blockOff := make([]uint64, blocks)
	var total uint64
	for j := range sizes {
		blockOff[j] = total
		total += sizes[j]
	}
	data := lay.AllocWords(total)
	bar := lay.AllocWords(2)
	p := uint64(threads)

	b := isa.NewBuilder("cholesky")
	b.Liu(isa.R30, blocks)
	b.Liu(isa.R31, p)
	b.Li(isa.R3, 0) // k

	b.Label("kloop")
	// Owner updates diagonal block k: diag[i] = mix(diag[i]).
	b.Rem(isa.R4, isa.R3, isa.R31)
	b.Bne(isa.R4, RegTID, "skipdiag")
	b.Shli(isa.R4, isa.R3, 3)
	b.Liu(isa.R5, offTab)
	b.Add(isa.R5, isa.R5, isa.R4)
	b.Ld(isa.R5, isa.R5, 0) // diag byte offset
	b.Liu(isa.R6, data)
	b.Add(isa.R5, isa.R5, isa.R6) // diag base
	b.Liu(isa.R6, sizeTab)
	b.Add(isa.R6, isa.R6, isa.R4)
	b.Ld(isa.R6, isa.R6, 0) // diag words
	b.Li(isa.R7, 0)
	b.Label("diag")
	b.Ld(isa.R8, isa.R5, 0)
	b.Muli(isa.R8, isa.R8, luMixMul)
	b.Shri(isa.R9, isa.R8, 17)
	b.Xor(isa.R8, isa.R8, isa.R9)
	b.St(isa.R5, 0, isa.R8)
	b.Addi(isa.R5, isa.R5, 8)
	b.Addi(isa.R7, isa.R7, 1)
	b.Bne(isa.R7, isa.R6, "diag")
	b.Label("skipdiag")
	b.Liu(isa.R9, bar)
	EmitBarrier(b, "cb1", isa.R9)

	// Trailing updates claimed dynamically: j = cursor[k]++ while j < B.
	b.Li(isa.R15, 1)
	b.Label("steal")
	b.Shli(isa.R4, isa.R3, 3)
	b.Liu(isa.R5, cursors)
	b.Add(isa.R5, isa.R5, isa.R4)
	b.Fadd(isa.R7, isa.R5, 0, isa.R15) // j
	b.Bgeu(isa.R7, isa.R30, "stealdone")
	// diag base/size for k.
	b.Liu(isa.R5, offTab)
	b.Add(isa.R5, isa.R5, isa.R4)
	b.Ld(isa.R16, isa.R5, 0)
	b.Liu(isa.R6, data)
	b.Add(isa.R16, isa.R16, isa.R6) // diag base
	b.Liu(isa.R5, sizeTab)
	b.Add(isa.R5, isa.R5, isa.R4)
	b.Ld(isa.R17, isa.R5, 0) // diag words
	// block j base/size.
	b.Shli(isa.R4, isa.R7, 3)
	b.Liu(isa.R5, offTab)
	b.Add(isa.R5, isa.R5, isa.R4)
	b.Ld(isa.R18, isa.R5, 0)
	b.Add(isa.R18, isa.R18, isa.R6) // block base
	b.Liu(isa.R5, sizeTab)
	b.Add(isa.R5, isa.R5, isa.R4)
	b.Ld(isa.R19, isa.R5, 0) // block words
	// for i in 0..bw-1: blk[i] ^= mix(diag[i % dw])
	b.Li(isa.R8, 0)
	b.Label("fold")
	b.Rem(isa.R9, isa.R8, isa.R17)
	b.Shli(isa.R9, isa.R9, 3)
	b.Add(isa.R9, isa.R16, isa.R9)
	b.Ld(isa.R9, isa.R9, 0)
	b.Muli(isa.R9, isa.R9, luMixMul)
	b.Shri(isa.R5, isa.R9, 11)
	b.Xor(isa.R9, isa.R9, isa.R5)
	b.Shli(isa.R5, isa.R8, 3)
	b.Add(isa.R5, isa.R18, isa.R5)
	b.Ld(isa.R6, isa.R5, 0)
	b.Xor(isa.R6, isa.R6, isa.R9)
	b.St(isa.R5, 0, isa.R6)
	b.Addi(isa.R8, isa.R8, 1)
	b.Bne(isa.R8, isa.R19, "fold")
	b.Jmp("steal") // every claim re-derives its bases
	b.Label("stealdone")
	b.Liu(isa.R9, bar)
	EmitBarrier(b, "cb2", isa.R9)

	b.Addi(isa.R3, isa.R3, 1)
	b.Bne(isa.R3, isa.R30, "kloop")
	b.Halt()

	init := func(m *mem.Memory) {
		for j := uint64(0); j < blocks; j++ {
			m.Store(offTab+j*8, blockOff[j]*8)
			m.Store(sizeTab+j*8, sizes[j])
			m.Store(cursors+j*8, j+1)
		}
		for i := uint64(0); i < total; i++ {
			m.Store(data+i*8, i*29+3)
		}
	}
	prog := b.Build(lay.Size(), threads, init)
	prog.Symbols["data"] = data
	return prog
}

// CholeskyReference computes the expected final data array.
func CholeskyReference(blocks uint64) []uint64 {
	sizes := choleskyBlockWords(blocks)
	blockOff := make([]uint64, blocks)
	var total uint64
	for j := range sizes {
		blockOff[j] = total
		total += sizes[j]
	}
	data := make([]uint64, total)
	for i := range data {
		data[i] = uint64(i)*29 + 3
	}
	for k := uint64(0); k < blocks; k++ {
		diag := data[blockOff[k] : blockOff[k]+sizes[k]]
		for i := range diag {
			x := diag[i] * luMixMul
			x ^= x >> 17
			diag[i] = x
		}
		for j := k + 1; j < blocks; j++ {
			blk := data[blockOff[j] : blockOff[j]+sizes[j]]
			for i := range blk {
				x := diag[uint64(i)%sizes[k]] * luMixMul
				x ^= x >> 11
				blk[i] ^= x
			}
		}
	}
	return data
}

// Radiosity builds the iterative-refinement-like kernel: a shared queue
// of energy-transfer tasks, each computing a "form factor" privately
// (formSteps mixing iterations) and then adding a task-determined amount
// to a pseudo-randomly chosen patch under that patch's futex lock —
// SPLASH-2 RADIOSITY's dynamic tasking over fine-grained locked scene
// state. Task-to-thread assignment races; per-patch sums do not.
func Radiosity(patches, tasks, formSteps uint64, threads int) *isa.Program {
	var lay mem.Layout
	scene := lay.AllocWords(patches * 8) // one line per patch: [lock, energy, ...]
	cursor := lay.AllocWords(1)
	bar := lay.AllocWords(2)

	b := isa.NewBuilder("radiosity")
	b.Liu(isa.R30, tasks)
	b.Liu(isa.R31, patches)
	b.Liu(isa.R28, 0x9E3779B97F4A7C15)
	b.Li(isa.R15, 1)

	b.Label("steal")
	b.Liu(isa.R3, cursor)
	b.Fadd(isa.R4, isa.R3, 0, isa.R15) // t
	b.Bgeu(isa.R4, isa.R30, "done")
	// target = mix(t) % patches; delta = t*3 + 1
	b.Mul(isa.R5, isa.R4, isa.R28)
	b.Shri(isa.R6, isa.R5, 31)
	b.Xor(isa.R5, isa.R5, isa.R6)
	b.Rem(isa.R5, isa.R5, isa.R31)
	b.Muli(isa.R5, isa.R5, 64)
	b.Liu(isa.R6, scene)
	b.Add(isa.R5, isa.R6, isa.R5) // patch base (lock word)
	// Private form-factor computation before touching shared state.
	b.Mov(isa.R7, isa.R4)
	b.Li(isa.R8, 0)
	b.Liu(isa.R9, formSteps)
	b.Label("form")
	b.Muli(isa.R7, isa.R7, luMixMul)
	b.Shri(isa.R16, isa.R7, 13)
	b.Xor(isa.R7, isa.R7, isa.R16)
	b.Addi(isa.R8, isa.R8, 1)
	b.Bne(isa.R8, isa.R9, "form")
	b.Muli(isa.R7, isa.R4, 3)
	b.Addi(isa.R7, isa.R7, 1) // delta (task-determined, schedule-free)
	EmitFutexLock(b, "rp", isa.R5)
	b.Ld(isa.R8, isa.R5, 8)
	b.Add(isa.R8, isa.R8, isa.R7)
	b.St(isa.R5, 8, isa.R8)
	EmitFutexUnlock(b, "rp", isa.R5)
	b.Jmp("steal")
	b.Label("done")
	b.Liu(isa.R9, bar)
	EmitBarrier(b, "rdb", isa.R9)
	b.Halt()

	prog := b.Build(lay.Size(), threads, nil)
	prog.Symbols["scene"] = scene
	return prog
}

// RadiosityReference computes the expected per-patch energies.
func RadiosityReference(patches, tasks uint64) []uint64 {
	out := make([]uint64, patches)
	for t := uint64(0); t < tasks; t++ {
		x := t * 0x9E3779B97F4A7C15
		x ^= x >> 31
		out[x%patches] += t*3 + 1
	}
	return out
}
