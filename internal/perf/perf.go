// Package perf is the cycle-accounting performance model of the QuickRec
// prototype. The simulator is functionally driven; perf attaches costs to
// the events it produces (instructions, cache misses, kernel crossings,
// recording-stack work) so experiments can report execution-time overhead
// the way the paper does: native vs hardware-only recording vs the full
// Capo3 software stack.
//
// Calibration. The absolute constants are not the paper's (the prototype
// ran FPGA-emulated Pentiums at 60 MHz); they are chosen so the *shapes*
// the abstract commits to hold on our workload suite:
//
//   - recording hardware overhead is negligible (chunk log writes are
//     DMA-style and cost a few cycles of pipeline disturbance each);
//   - the software stack adds ~13% on average, dominated by input
//     logging (per-byte copy cost) and driver entry/exit on syscalls.
//
// EXPERIMENTS.md records measured-vs-target values for each experiment.
package perf

// Params holds the cycle costs of every modelled event.
type Params struct {
	// BaseCPI is the cost of any retired instruction (and of one REP
	// iteration).
	BaseCPI uint64
	// Memory-hierarchy costs, added on top of BaseCPI per access class.
	HitCost     uint64
	UpgradeCost uint64
	MissMemCost uint64
	MissC2CCost uint64

	// Kernel costs (native).
	SyscallBase   uint64 // kernel entry + exit
	CopyPerWord   uint64 // kernel copy loop cost per 64-bit word, on top of cache costs
	CtxSwitch     uint64 // scheduler + register file swap
	SignalDeliver uint64 // signal frame setup

	// Recording software stack (Capo3) costs, added when a session is on.
	RecSyscallExtra  uint64 // RSM driver interception per kernel crossing
	RecInputPerWord  uint64 // logging copy of input data per 64-bit word
	RecCbufFlush     uint64 // flushing one CBUF to the logging daemon
	RecSwitchExtra   uint64 // RSM bookkeeping per context switch
	RecSignalExtra   uint64 // RSM bookkeeping per signal delivery
	// Flight-recorder checkpoint costs (extension).
	CheckpointCost     uint64 // copy-on-snapshot of the memory image
	RecCheckpointExtra uint64 // RSM bookkeeping per checkpoint
	// Recording hardware cost.
	RecChunkWrite uint64 // pipeline disturbance per chunk log entry
}

// DefaultParams returns the calibrated model.
func DefaultParams() Params {
	return Params{
		BaseCPI:     1,
		HitCost:     0,
		UpgradeCost: 12,
		MissMemCost: 30,
		MissC2CCost: 18,

		SyscallBase:   250,
		CopyPerWord:   1,
		CtxSwitch:     400,
		SignalDeliver: 300,

		RecSyscallExtra: 900,
		RecInputPerWord: 24,
		RecCbufFlush:    1500,
		RecSwitchExtra:  300,
		RecSignalExtra:  300,

		CheckpointCost:     20000,
		RecCheckpointExtra: 4000,

		RecChunkWrite: 1,
	}
}

// Component identifies where cycles were spent, for overhead breakdowns.
type Component int

// Cycle components.
const (
	CompInstr Component = iota // instruction execution
	CompMem                    // cache/coherence stalls
	CompKernel                 // native kernel work (syscalls, switches, signals)
	CompRecDriver              // RSM driver entry/exit on kernel crossings
	CompRecInputCopy           // input-log data copying
	CompRecCbufFlush           // CBUF flushes to the logging daemon
	CompRecSched               // RSM context-switch/signal bookkeeping
	CompRecHardware            // chunk log writes

	NumComponents
)

var componentNames = [NumComponents]string{
	CompInstr: "instr", CompMem: "mem", CompKernel: "kernel",
	CompRecDriver: "rec-driver", CompRecInputCopy: "rec-input-copy",
	CompRecCbufFlush: "rec-cbuf-flush", CompRecSched: "rec-sched",
	CompRecHardware: "rec-hardware",
}

// String returns the component's short name.
func (c Component) String() string {
	if c >= 0 && int(c) < len(componentNames) {
		return componentNames[c]
	}
	return "unknown"
}

// IsRecording reports whether the component exists only because
// recording is on.
func (c Component) IsRecording() bool {
	switch c {
	case CompRecDriver, CompRecInputCopy, CompRecCbufFlush, CompRecSched, CompRecHardware:
		return true
	}
	return false
}

// Accounting accumulates cycles by component. The machine model keeps one
// global accounting (the prototype measures wall-clock execution time of
// the parallel run; our scheduler advances one core at a time, so global
// cycles model the same quantity at the simulator's interleaving
// granularity).
type Accounting struct {
	byComp [NumComponents]uint64
}

// Add charges n cycles to component c.
func (a *Accounting) Add(c Component, n uint64) { a.byComp[c] += n }

// Get returns the cycles charged to component c.
func (a *Accounting) Get(c Component) uint64 { return a.byComp[c] }

// Total returns all cycles.
func (a *Accounting) Total() uint64 {
	var t uint64
	for _, v := range a.byComp {
		t += v
	}
	return t
}

// RecordingTotal returns cycles attributable to recording (hardware and
// software).
func (a *Accounting) RecordingTotal() uint64 {
	var t uint64
	for c := Component(0); c < NumComponents; c++ {
		if c.IsRecording() {
			t += a.byComp[c]
		}
	}
	return t
}

// SoftwareRecordingTotal returns recording cycles excluding the hardware
// component — the Capo3 software-stack share.
func (a *Accounting) SoftwareRecordingTotal() uint64 {
	return a.RecordingTotal() - a.byComp[CompRecHardware]
}

// Breakdown returns a copy of the per-component cycle counts.
func (a *Accounting) Breakdown() [NumComponents]uint64 { return a.byComp }
