package perf

import "testing"

func TestAccountingTotals(t *testing.T) {
	var a Accounting
	a.Add(CompInstr, 100)
	a.Add(CompMem, 50)
	a.Add(CompKernel, 25)
	a.Add(CompRecDriver, 10)
	a.Add(CompRecInputCopy, 5)
	a.Add(CompRecHardware, 2)
	if a.Total() != 192 {
		t.Errorf("Total = %d, want 192", a.Total())
	}
	if a.RecordingTotal() != 17 {
		t.Errorf("RecordingTotal = %d, want 17", a.RecordingTotal())
	}
	if a.SoftwareRecordingTotal() != 15 {
		t.Errorf("SoftwareRecordingTotal = %d, want 15", a.SoftwareRecordingTotal())
	}
	if a.Get(CompMem) != 50 {
		t.Errorf("Get(CompMem) = %d, want 50", a.Get(CompMem))
	}
	b := a.Breakdown()
	if b[CompInstr] != 100 {
		t.Errorf("Breakdown[CompInstr] = %d, want 100", b[CompInstr])
	}
}

func TestComponentClassification(t *testing.T) {
	recording := map[Component]bool{
		CompInstr: false, CompMem: false, CompKernel: false,
		CompRecDriver: true, CompRecInputCopy: true, CompRecCbufFlush: true,
		CompRecSched: true, CompRecHardware: true,
	}
	for c, want := range recording {
		if c.IsRecording() != want {
			t.Errorf("%v.IsRecording() = %v, want %v", c, !want, want)
		}
	}
}

func TestComponentNames(t *testing.T) {
	for c := Component(0); c < NumComponents; c++ {
		if c.String() == "" || c.String() == "unknown" {
			t.Errorf("component %d unnamed", c)
		}
	}
	if Component(99).String() != "unknown" {
		t.Error("out-of-range component should be 'unknown'")
	}
}

func TestDefaultParamsSane(t *testing.T) {
	p := DefaultParams()
	if p.BaseCPI == 0 {
		t.Error("BaseCPI must be positive")
	}
	if p.MissMemCost <= p.HitCost {
		t.Error("memory miss must cost more than a hit")
	}
	if p.RecChunkWrite >= p.RecSyscallExtra {
		t.Error("hardware chunk write must be far cheaper than driver crossings")
	}
}
