package machine

import (
	"bytes"
	"testing"

	"repro/internal/segment"
)

// TestStreamMatchesSession records with StreamTo set and checks that the
// strict segment decoder reconstructs exactly the session's chunk and
// input logs, plus a final segment mirroring the run's reference state.
func TestStreamMatchesSession(t *testing.T) {
	prog := counterProg(200, 4)
	var buf bytes.Buffer
	res := run(t, prog, func(c *Config) {
		c.Mode = ModeFull
		c.Cores = 2
		c.Seed = 7
		c.StreamTo = &buf
		c.FlushEveryChunks = 4
	})
	if res.StreamSegments == 0 || res.StreamBytes == 0 {
		t.Fatalf("no stream accounting: segments=%d bytes=%d", res.StreamSegments, res.StreamBytes)
	}
	if uint64(buf.Len()) != res.StreamBytes {
		t.Fatalf("StreamBytes=%d but wrote %d", res.StreamBytes, buf.Len())
	}
	if res.StreamFramingBytes == 0 || res.StreamFramingBytes >= res.StreamBytes {
		t.Fatalf("implausible framing bytes %d of %d", res.StreamFramingBytes, res.StreamBytes)
	}

	st, err := segment.Decode(buf.Bytes())
	if err != nil {
		t.Fatalf("strict decode of live stream: %v", err)
	}
	if st.Manifest.ProgramName != prog.Name || st.Manifest.Threads != 4 {
		t.Fatalf("manifest = %+v", st.Manifest)
	}
	if st.Final == nil {
		t.Fatal("stream missing final segment")
	}
	if st.Final.MemChecksum != res.MemChecksum || !bytes.Equal(st.Final.Output, res.Output) {
		t.Fatal("final segment disagrees with run result")
	}
	for tid, l := range st.ChunkLogs {
		want := res.Session.ChunkLog(tid)
		if l.Len() != want.Len() {
			t.Fatalf("thread %d: streamed %d chunks, session has %d", tid, l.Len(), want.Len())
		}
		for i, e := range l.Entries {
			if e != want.Entries[i] {
				t.Fatalf("thread %d entry %d: streamed %v, session %v", tid, i, e, want.Entries[i])
			}
		}
	}
	sessIn := res.Session.InputLog()
	if st.InputLog.Len() != sessIn.Len() {
		t.Fatalf("streamed %d input records, session has %d", st.InputLog.Len(), sessIn.Len())
	}
	for i, r := range st.InputLog.Records {
		if r.String() != sessIn.Records[i].String() {
			t.Fatalf("input record %d: streamed %v, session %v", i, r, sessIn.Records[i])
		}
	}
}

// TestStreamCarriesCheckpoint checks that a checkpointed run embeds a
// checkpoint segment whose stream positions line up with the machine's
// snapshot.
func TestStreamCarriesCheckpoint(t *testing.T) {
	prog := counterProg(400, 2)
	var buf bytes.Buffer
	res := run(t, prog, func(c *Config) {
		c.Mode = ModeFull
		c.Cores = 2
		c.StreamTo = &buf
		c.FlushEveryChunks = 4
		c.CheckpointEveryInstrs = 500
	})
	if res.Checkpoint == nil {
		t.Fatal("run took no checkpoint")
	}
	st, err := segment.Decode(buf.Bytes())
	if err != nil {
		t.Fatalf("strict decode: %v", err)
	}
	if st.Checkpoint == nil {
		t.Fatal("stream missing checkpoint segment")
	}
	ck := res.Checkpoint
	cp := st.Checkpoint
	if cp.RetiredAt != ck.RetiredAt {
		t.Fatalf("checkpoint RetiredAt: stream %d, machine %d", cp.RetiredAt, ck.RetiredAt)
	}
	for tid, pos := range cp.ChunkPos {
		if pos != ck.ChunkPos[tid] {
			t.Fatalf("thread %d ChunkPos: stream %d, machine %d", tid, pos, ck.ChunkPos[tid])
		}
		if pos > st.ChunkLogs[tid].Len() {
			t.Fatalf("thread %d ChunkPos %d beyond streamed log %d", tid, pos, st.ChunkLogs[tid].Len())
		}
	}
	if cp.InputPos != ck.InputPos || cp.InputPos > st.InputLog.Len() {
		t.Fatalf("InputPos: stream %d, machine %d, log %d", cp.InputPos, ck.InputPos, st.InputLog.Len())
	}
}

// TestStreamDefaultFlushCadence checks the default flush interval kicks
// in when FlushEveryChunks is left zero.
func TestStreamDefaultFlushCadence(t *testing.T) {
	prog := counterProg(50, 2)
	var buf bytes.Buffer
	res := run(t, prog, func(c *Config) {
		c.Mode = ModeFull
		c.StreamTo = &buf
	})
	if res.StreamSegments < 3 { // manifest + at least one epoch + final
		t.Fatalf("only %d segments streamed", res.StreamSegments)
	}
	if _, err := segment.Decode(buf.Bytes()); err != nil {
		t.Fatalf("strict decode: %v", err)
	}
}
