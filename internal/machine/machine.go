// Package machine assembles the QuickRec prototype: simulated cores
// executing a program through private MESI caches on a snooping bus,
// with a Memory Race Recorder per core and the Capo3 kernel stack
// managing threads, syscalls, signals and recording sessions.
//
// The machine is a deterministic discrete-event simulator: cores advance
// one at a time in bursts chosen by a seeded scheduler, so a given
// (program, config, seed) triple always produces the same execution —
// which lets experiments compare native and recorded runs of the *same*
// interleaving — while different seeds exercise different thread
// interleavings, the nondeterminism RnR exists to capture.
package machine

import (
	"io"

	"repro/internal/cache"
	"repro/internal/capo"
	"repro/internal/chunk"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/mrr"
	"repro/internal/perf"
	"repro/internal/segment"
)

// RecordingMode selects how much of QuickRec is active.
type RecordingMode int

// Recording modes.
const (
	// ModeOff runs natively: no recording hardware, no RSM.
	ModeOff RecordingMode = iota
	// ModeHardwareOnly runs the MRR and collects logs, charging only the
	// hardware's cycle costs — the paper's "recording hardware has
	// negligible overhead" configuration.
	ModeHardwareOnly
	// ModeFull runs the complete stack: MRR plus Capo3 software costs
	// (driver crossings, input copying, CBUF flushes).
	ModeFull
)

// String names the mode.
func (m RecordingMode) String() string {
	switch m {
	case ModeOff:
		return "native"
	case ModeHardwareOnly:
		return "hw-only"
	case ModeFull:
		return "full"
	}
	return "unknown"
}

// Config parameterises a machine.
type Config struct {
	// Cores is the number of cores (the prototype had 4).
	Cores int
	// Threads is the number of threads to spawn; 0 means the program's
	// default. Threads beyond Cores are time-multiplexed.
	Threads int
	// Cache configures each core's private cache.
	Cache cache.Config
	// MRR configures each core's recorder.
	MRR mrr.Config
	// Perf holds the cycle-cost model.
	Perf perf.Params
	// Mode selects recording behaviour.
	Mode RecordingMode
	// Seed drives scheduler nondeterminism (burst choice, preemption
	// victims, signal targets).
	Seed uint64
	// KernelSeed drives external-input nondeterminism (read data, time
	// jitter, entropy).
	KernelSeed uint64
	// TimeSliceInstrs is the preemption quantum in retired instructions
	// per core (instruction-based so all recording modes see identical
	// schedules). 0 disables preemption.
	TimeSliceInstrs uint64
	// SignalPeriodInstrs delivers an asynchronous signal roughly every
	// this many globally retired instructions, if the program registered
	// a handler. 0 disables signals.
	SignalPeriodInstrs uint64
	// BurstMax bounds the instructions a core runs per scheduling turn.
	BurstMax int
	// MaxSteps aborts runaway programs (0 = a large default).
	MaxSteps uint64
	// CheckpointEveryInstrs takes a flight-recorder checkpoint roughly
	// every that many globally retired instructions (0 = never). Only
	// meaningful when recording.
	CheckpointEveryInstrs uint64
	// Encoding is the chunk-log format used by the session.
	Encoding chunk.Encoding
	// CbufBytes sizes the per-thread kernel log buffers.
	CbufBytes int
	// StackWordsPerThread sizes each thread's scratch region.
	StackWordsPerThread uint64
	// StreamTo, when non-nil and recording, streams the session
	// incrementally as a segmented, checksummed stream (see
	// internal/segment): a writer that dies mid-run leaves a salvageable
	// prefix behind instead of nothing. Underlying write errors are
	// sticky and surface once, from Run.
	StreamTo io.Writer
	// FlushEveryChunks is the streaming flush cadence: an epoch (commit +
	// data batches) is emitted once this many chunk entries accumulate.
	// Flushes also happen at checkpoint boundaries and at run end.
	// 0 means the default (1024, which keeps steady-state framing
	// overhead under 5% of log payload; see experiment A6). Smaller
	// values tighten the crash-consistency window at the cost of framing.
	FlushEveryChunks uint64
	// RetainCheckpoints, when > 0 and streaming, turns StreamTo into a
	// flight-recorder ring: only the last RetainCheckpoints checkpoint
	// intervals of the stream are retained, with whole epochs older
	// than the oldest retained checkpoint garbage-collected, so an
	// always-on recording runs forever at fixed disk cost. The rendered
	// window (written at run end, or whatever a crashed recorder's last
	// render left behind) replays from its base checkpoint exactly like
	// the tail of the unbounded stream. Requires StreamTo; pointless
	// without CheckpointEveryInstrs, since the window only rolls at
	// checkpoint boundaries.
	RetainCheckpoints uint64
	// CompressStream, when streaming, LZ-compresses chunk and input
	// batch payloads through the shared wire block codec (marked with a
	// kind bit, checksummed post-compression). Off by default: the
	// uncompressed stream format is what pre-v2 salvagers understand.
	CompressStream bool
	// CaptureSignatures retains each chunk's serialized read/write Bloom
	// signatures alongside the chunk log, for offline conflict screening
	// (the race detector). Off by default: the captured bytes are an
	// analysis artefact, deliberately outside the log stream and its CBUF
	// and perf accounting.
	CaptureSignatures bool
}

// DefaultConfig mirrors the prototype: four Pentium-class cores with
// 32 KiB caches and the default MRR.
func DefaultConfig() Config {
	return Config{
		Cores:               4,
		Cache:               cache.DefaultConfig(),
		MRR:                 mrr.DefaultConfig(),
		Perf:                perf.DefaultParams(),
		Mode:                ModeOff,
		Seed:                1,
		KernelSeed:          1,
		TimeSliceInstrs:     200_000,
		BurstMax:            32,
		MaxSteps:            2_000_000_000,
		Encoding:            chunk.Delta{},
		CbufBytes:           16 << 10,
		StackWordsPerThread: 1024,
	}
}

// threadState is a thread's scheduling state.
type threadState int

const (
	thRunnable threadState = iota
	thRunning
	thBlocked
	thExited
)

// thread is the kernel's view of one program thread.
type thread struct {
	id         int
	state      threadState
	ctx        isa.Context
	savedClock uint64
	core       int // core index while running, else -1
	sigMasked  bool
	// Signal frame: the kernel saves the full register file and PC at
	// delivery; SysSigReturn restores them atomically (as sigreturn(2)
	// does), so handlers are fully transparent to interrupted code.
	sigRegs [isa.NumRegs]uint64
	sigPC   int
	// sliceInstrs counts retired instructions since the thread was
	// scheduled, for instruction-based preemption.
	sliceInstrs uint64
	finalCtx    isa.Context
}

// Result summarises a completed run.
type Result struct {
	// Cycles is the modelled execution time.
	Cycles uint64
	// Acct is the per-component cycle breakdown.
	Acct perf.Accounting
	// Retired is the total retired instruction count across threads.
	Retired uint64
	// RetiredPerThread is each thread's retired count.
	RetiredPerThread []uint64
	// Output is what the program wrote to fd 1.
	Output []byte
	// MemChecksum hashes the final memory image (after cache flush).
	MemChecksum uint64
	// FinalContexts holds each thread's architectural state at exit.
	FinalContexts []isa.Context
	// Session is the recording session (nil in ModeOff).
	Session *capo.Session
	// MRRStats aggregates recorder statistics per core (nil in ModeOff).
	MRRStats []*mrr.Stats
	// CacheStats and BusStats describe memory-system activity.
	CacheStats []cache.Stats
	BusStats   cache.BusStats
	// Syscalls counts completed system calls.
	Syscalls uint64
	// CtxSwitches counts involuntary context switches.
	CtxSwitches uint64
	// SignalsDelivered counts asynchronous signals delivered.
	SignalsDelivered uint64
	// MemAccesses counts data-memory accesses (loads + stores).
	MemAccesses uint64
	// Checkpoint is the last flight-recorder snapshot (nil unless
	// Config.CheckpointEveryInstrs was set and a boundary was crossed).
	Checkpoint *Checkpoint
	// AllCheckpoints holds every snapshot taken, in the order they were
	// taken; the last element aliases Checkpoint. Interval-partitioned
	// parallel replay uses these as split points.
	AllCheckpoints []*Checkpoint
	// Checkpoints counts snapshots taken.
	Checkpoints uint64
	// StreamSegments/StreamBytes/StreamFramingBytes describe the
	// segmented stream written to Config.StreamTo (zero when not
	// streaming). FramingBytes is the streaming-only overhead: segment
	// headers, checksums, and commit payloads.
	StreamSegments     int
	StreamBytes        uint64
	StreamFramingBytes uint64
}

// Machine is a configured simulation instance. Create with New, run once
// with Run.
type Machine struct {
	cfg  Config
	prog *isa.Program

	memory  *mem.Memory
	bus     *cache.Bus
	caches  []*cache.Cache
	ports   []*corePort
	cores   []*isa.Core
	mrrs    []*mrr.Recorder
	kernel  *capo.Kernel
	session *capo.Session

	threads  []*thread
	runq     []int // runnable thread IDs, FIFO
	running  []int // thread ID per core, -1 if idle
	liveCnt  int
	acct     perf.Accounting
	rng      uint64
	retired  uint64 // global retired instructions
	steps    uint64
	syscalls uint64
	switches uint64
	signals  uint64
	nextSig  uint64
	// lastWriteTS orders write syscalls across threads: the kernel's
	// output stream is a shared object, so successive writes carry
	// strictly increasing timestamps.
	lastWriteTS    uint64
	nextCkpt       uint64
	checkpoint     *Checkpoint
	allCheckpoints []*Checkpoint
	checkpoints    uint64
	ran            bool

	// Streaming state (nil/zero unless Config.StreamTo is set).
	stream           segment.Sink
	streamEpoch      uint64
	pendingChunks    uint64
	streamedChunkPos []int
	streamedInputPos int
}

// corePort wires a core's memory traffic through its cache and charges
// memory-stall cycles.
type corePort struct {
	c        *cache.Cache
	m        *Machine
	accesses uint64
}

func (p *corePort) charge(cost cache.Cost) {
	p.accesses++
	pp := &p.m.cfg.Perf
	var cycles uint64
	switch cost {
	case cache.CostHit:
		cycles = pp.HitCost
	case cache.CostUpgrade:
		cycles = pp.UpgradeCost
	case cache.CostMissMem:
		cycles = pp.MissMemCost
	case cache.CostMissC2C:
		cycles = pp.MissC2CCost
	}
	p.m.acct.Add(perf.CompMem, cycles)
}

// Load implements isa.MemPort and capo.CopyPort.
func (p *corePort) Load(addr uint64) uint64 {
	v, cost := p.c.Load(addr)
	p.charge(cost)
	return v
}

// Store implements isa.MemPort and capo.CopyPort.
func (p *corePort) Store(addr uint64, val uint64) {
	p.charge(p.c.Store(addr, val))
}

// RMW implements isa.MemPort.
func (p *corePort) RMW(addr uint64, f func(uint64) uint64) uint64 {
	v, cost := p.c.RMW(addr, f)
	p.charge(cost)
	return v
}

// New builds a machine for prog under cfg.
func New(prog *isa.Program, cfg Config) *Machine {
	if cfg.Cores <= 0 {
		panic("machine: need at least one core")
	}
	if cfg.BurstMax <= 0 {
		cfg.BurstMax = 32
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 2_000_000_000
	}
	if cfg.Threads == 0 {
		cfg.Threads = prog.DefaultThreads
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.Encoding == nil {
		cfg.Encoding = chunk.Delta{}
	}
	if cfg.CbufBytes <= 0 {
		cfg.CbufBytes = 16 << 10
	}
	if cfg.StackWordsPerThread == 0 {
		cfg.StackWordsPerThread = 1024
	}

	memBytes := prog.MemBytes
	stackBytes := cfg.StackWordsPerThread * 8 * uint64(cfg.Threads)
	m := &Machine{
		cfg:    cfg,
		prog:   prog,
		memory: mem.New(memBytes + stackBytes + 4096),
		kernel: capo.NewKernel(cfg.KernelSeed),
		rng:    cfg.Seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d,
	}
	m.bus = cache.NewBus(m.memory)

	recording := cfg.Mode != ModeOff
	for i := 0; i < cfg.Cores; i++ {
		var listener cache.Listener
		var rec *mrr.Recorder
		if recording {
			rec = mrr.New(cfg.MRR)
			listener = rec
		} else {
			listener = cache.NopListener{}
		}
		c := cache.New(cfg.Cache, m.bus, listener)
		port := &corePort{c: c, m: m}
		core := isa.NewCore(i, prog, port)
		if rec != nil {
			rec.SetResidueFunc(core.RepInFlight)
		}
		m.caches = append(m.caches, c)
		m.ports = append(m.ports, port)
		m.cores = append(m.cores, core)
		m.mrrs = append(m.mrrs, rec)
		m.running = append(m.running, -1)
	}
	if recording {
		m.session = capo.NewSession(
			capo.SessionConfig{Threads: cfg.Threads, CbufBytes: cfg.CbufBytes, Encoding: cfg.Encoding},
			m.onCbufFlush)
	}

	// Lay out the program image, then per-thread stacks beyond it.
	prog.Init(m.memory)
	m.memory.Reserve(prog.MemBytes)
	stackBase := make([]uint64, cfg.Threads)
	for t := 0; t < cfg.Threads; t++ {
		stackBase[t] = m.memory.Alloc(cfg.StackWordsPerThread * 8)
	}

	for t := 0; t < cfg.Threads; t++ {
		th := &thread{id: t, state: thRunnable, core: -1}
		th.ctx.Regs[isa.R1] = uint64(t)
		th.ctx.Regs[isa.R2] = uint64(cfg.Threads)
		th.ctx.Regs[isa.R29] = stackBase[t]
		m.threads = append(m.threads, th)
		m.runq = append(m.runq, t)
	}
	m.liveCnt = cfg.Threads
	m.nextSig = cfg.SignalPeriodInstrs
	m.nextCkpt = cfg.CheckpointEveryInstrs
	if cfg.StreamTo != nil && recording {
		if m.cfg.FlushEveryChunks == 0 {
			m.cfg.FlushEveryChunks = 1024
		}
		m.initStream()
	}
	return m
}

// rand64 is the machine's xorshift64 scheduling PRNG.
func (m *Machine) rand64() uint64 {
	m.rng ^= m.rng << 13
	m.rng ^= m.rng >> 7
	m.rng ^= m.rng << 17
	return m.rng
}

func (m *Machine) recording() bool { return m.cfg.Mode != ModeOff }

// chargeFull adds cycles to comp only when the full software stack is
// modelled.
func (m *Machine) chargeFull(comp perf.Component, cycles uint64) {
	if m.cfg.Mode == ModeFull {
		m.acct.Add(comp, cycles)
	}
}

func (m *Machine) onCbufFlush(capo.FlushKind) {
	m.chargeFull(perf.CompRecCbufFlush, m.cfg.Perf.RecCbufFlush)
}

// Kernel exposes the simulated OS (for tests and the CLI).
func (m *Machine) Kernel() *capo.Kernel { return m.kernel }

// Session exposes the recording session (nil in ModeOff).
func (m *Machine) Session() *capo.Session { return m.session }
