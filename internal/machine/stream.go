package machine

import (
	"repro/internal/segment"
)

// initStream opens the segmented stream: the manifest is written
// immediately so even a recorder that dies before its first flush leaves
// an identifiable (if empty) stream behind. With RetainCheckpoints set
// the sink is the windowed ring writer instead of the unbounded one.
func (m *Machine) initStream() {
	if m.cfg.RetainCheckpoints > 0 {
		ww := segment.NewWindowWriter(m.cfg.StreamTo, int(m.cfg.RetainCheckpoints))
		ww.Compress = m.cfg.CompressStream
		m.stream = ww
	} else {
		sw := segment.NewWriter(m.cfg.StreamTo)
		sw.Compress = m.cfg.CompressStream
		m.stream = sw
	}
	m.stream.WriteManifest(segment.Manifest{
		ProgramName:         m.prog.Name,
		Threads:             m.cfg.Threads,
		StackWordsPerThread: m.cfg.StackWordsPerThread,
		CountRepIterations:  m.cfg.MRR.CountRepIterations,
		EncodingID:          m.cfg.Encoding.ID(),
		FlushEveryChunks:    m.cfg.FlushEveryChunks,
	})
	m.streamedChunkPos = make([]int, m.cfg.Threads)
}

// noteStreamedChunk counts a freshly emitted chunk entry toward the
// flush cadence.
func (m *Machine) noteStreamedChunk() {
	m.pendingChunks++
}

// maybeFlushStream flushes an epoch once enough chunk entries
// accumulated. Called from the run loop between bursts, where every core
// sits at an instruction boundary (the same quiescence checkpoints rely
// on), so per-thread recorder clocks are coherent watermark sources.
func (m *Machine) maybeFlushStream() {
	if m.stream == nil || m.pendingChunks < m.cfg.FlushEveryChunks {
		return
	}
	m.flushStream()
}

// clockWatermark returns thread th's flush watermark: every item the
// thread has emitted so far carries a strictly smaller timestamp, and
// every item it will emit later carries a greater-or-equal one. For a
// running thread that is its core's recorder clock (Terminate stamps
// TS=clock then increments; StampInput likewise); for a parked or exited
// thread the clock was captured into savedClock at park time.
func (m *Machine) clockWatermark(th *thread) uint64 {
	if th.state == thRunning {
		return m.mrrs[th.core].Clock()
	}
	return th.savedClock
}

// flushStream emits one epoch: a commit declaring per-thread watermarks
// and batch counts, then the pending chunk batches (ascending thread),
// then the pending input batch. The commit-first order is what makes a
// torn tail salvageable — see segment.Salvage.
func (m *Machine) flushStream() {
	if m.stream == nil {
		return
	}
	m.pendingChunks = 0
	pendingInput := m.session.InputLog().Records[m.streamedInputPos:]
	anyChunks := false
	for t := range m.threads {
		if m.session.ChunkLog(t).Len() > m.streamedChunkPos[t] {
			anyChunks = true
			break
		}
	}
	if !anyChunks && len(pendingInput) == 0 {
		return
	}
	n := len(m.threads)
	c := segment.Commit{
		Epoch:      m.streamEpoch,
		Watermark:  make([]uint64, n),
		Exited:     make([]bool, n),
		ChunkCount: make([]int, n),
		InputCount: make([]int, n),
	}
	for t, th := range m.threads {
		c.Watermark[t] = m.clockWatermark(th)
		c.Exited[t] = th.state == thExited
		c.ChunkCount[t] = m.session.ChunkLog(t).Len() - m.streamedChunkPos[t]
	}
	for _, r := range pendingInput {
		c.InputCount[r.Thread]++
	}
	m.stream.WriteCommit(c)
	m.streamEpoch++
	for t := 0; t < n; t++ {
		if c.ChunkCount[t] == 0 {
			continue
		}
		entries := m.session.ChunkLog(t).Entries[m.streamedChunkPos[t]:]
		m.stream.WriteChunkBatch(t, entries)
		m.streamedChunkPos[t] += len(entries)
	}
	if len(pendingInput) > 0 {
		m.stream.WriteInputBatch(pendingInput)
		m.streamedInputPos += len(pendingInput)
	}
}

// streamCheckpoint flushes pending log data and emits the snapshot as a
// checkpoint segment. The preceding flush guarantees the snapshot's
// ChunkPos/InputPos match the streamed counts exactly, so a salvaged
// prefix that includes the checkpoint can always resume from it.
func (m *Machine) streamCheckpoint(ck *Checkpoint) {
	if m.stream == nil {
		return
	}
	m.flushStream()
	cp := &segment.CheckpointPayload{
		RetiredAt: ck.RetiredAt,
		MemImage:  ck.Mem.LoadBytes(0, ck.Mem.Size()),
		HandlerPC: ck.HandlerPC,
		HandlerOK: ck.HandlerOK,
		Output:    ck.Output,
		ChunkPos:  append([]int(nil), ck.ChunkPos...),
		InputPos:  ck.InputPos,
	}
	for _, ts := range ck.Threads {
		cp.Contexts = append(cp.Contexts, ts.Ctx)
		cp.Exited = append(cp.Exited, ts.Exited)
		cp.SigRegs = append(cp.SigRegs, ts.SigRegs)
		cp.SigPC = append(cp.SigPC, ts.SigPC)
	}
	m.stream.WriteCheckpoint(cp)
}

// finishStream flushes the last epoch and closes the stream with the
// reference final state. Close renders a windowed sink's retained ring
// to the underlying writer; for the unbounded writer it is a no-op. The
// stats therefore always describe the bytes that actually reached
// Config.StreamTo.
func (m *Machine) finishStream(res *Result) {
	if m.stream == nil {
		return
	}
	m.flushStream()
	m.stream.WriteFinal(&segment.FinalPayload{
		MemChecksum:      res.MemChecksum,
		Output:           res.Output,
		FinalContexts:    res.FinalContexts,
		RetiredPerThread: res.RetiredPerThread,
	})
	m.stream.Close() // errors are sticky; Run surfaces Err after finalize
	res.StreamSegments = m.stream.Segments()
	res.StreamBytes = m.stream.TotalBytes()
	res.StreamFramingBytes = m.stream.FramingBytes()
}
