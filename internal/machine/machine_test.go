package machine

import (
	"encoding/binary"
	"testing"

	"repro/internal/capo"
	"repro/internal/chunk"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/perf"
	"repro/internal/signature"
	"repro/internal/workload"
)

// counterProg builds a program where every thread atomically increments
// a shared counter iters times, all threads barrier, and thread 0 writes
// the final value to fd 1 as 8 little-endian bytes.
func counterProg(iters int64, threads int) *isa.Program {
	var lay mem.Layout
	counter := lay.AllocWords(1)
	barrier := lay.AllocWords(2)

	b := isa.NewBuilder("counter")
	b.Liu(isa.R3, counter)
	b.Li(isa.R4, 0)
	b.Li(isa.R5, iters)
	b.Li(isa.R6, 1)
	b.Label("loop")
	b.Fadd(isa.R7, isa.R3, 0, isa.R6)
	b.Addi(isa.R4, isa.R4, 1)
	b.Bne(isa.R4, isa.R5, "loop")
	b.Liu(isa.R8, barrier)
	workload.EmitBarrier(b, "b0", isa.R8)
	b.Bne(workload.RegTID, isa.R0, "skipwrite")
	b.Ld(isa.R9, isa.R3, 0)
	b.St(workload.RegStack, 0, isa.R9)
	b.Li(isa.RRet, int64(capo.SysWrite))
	b.Li(isa.R11, 1)
	b.Mov(isa.R12, workload.RegStack)
	b.Li(isa.R13, 8)
	b.Syscall()
	b.Label("skipwrite")
	b.Halt()

	prog := b.Build(lay.Size(), threads, nil)
	prog.Symbols["counter"] = counter
	return prog
}

func run(t *testing.T, prog *isa.Program, mut func(*Config)) *Result {
	t.Helper()
	cfg := DefaultConfig()
	if mut != nil {
		mut(&cfg)
	}
	res, err := New(prog, cfg).Run()
	if err != nil {
		t.Fatalf("run %s: %v", prog.Name, err)
	}
	return res
}

func TestSingleThreadProgram(t *testing.T) {
	prog := counterProg(100, 1)
	res := run(t, prog, nil)
	if got := binary.LittleEndian.Uint64(res.Output); got != 100 {
		t.Errorf("output counter = %d, want 100", got)
	}
	if res.Retired == 0 || res.Cycles == 0 {
		t.Error("no work accounted")
	}
	if len(res.RetiredPerThread) != 1 {
		t.Fatalf("threads = %d, want 1", len(res.RetiredPerThread))
	}
}

func TestSharedCounterAllThreadCounts(t *testing.T) {
	for _, threads := range []int{1, 2, 4} {
		prog := counterProg(200, threads)
		res := run(t, prog, func(c *Config) { c.Mode = ModeFull; c.Seed = uint64(threads) })
		want := uint64(200 * threads)
		if got := binary.LittleEndian.Uint64(res.Output); got != want {
			t.Errorf("threads=%d: counter = %d, want %d", threads, got, want)
		}
	}
}

func TestFutexLockMutualExclusion(t *testing.T) {
	// Increment a shared variable non-atomically inside a futex lock.
	// Lost updates would expose broken mutual exclusion.
	var lay mem.Layout
	lock := lay.AllocWords(1)
	shared := lay.AllocWords(1)

	const iters = 300
	b := isa.NewBuilder("mutex")
	b.Liu(isa.R3, lock)
	b.Liu(isa.R4, shared)
	b.Li(isa.R5, 0)
	b.Label("loop")
	workload.EmitFutexLock(b, "l", isa.R3)
	b.Ld(isa.R6, isa.R4, 0)
	b.Addi(isa.R6, isa.R6, 1)
	b.St(isa.R4, 0, isa.R6)
	workload.EmitFutexUnlock(b, "l", isa.R3)
	b.Addi(isa.R5, isa.R5, 1)
	b.Li(isa.R7, iters)
	b.Bne(isa.R5, isa.R7, "loop")
	b.Halt()
	prog := b.Build(lay.Size(), 4, nil)

	cfg := DefaultConfig()
	cfg.Mode = ModeFull
	cfg.Seed = 99
	m := New(prog, cfg)
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Syscalls == 0 {
		t.Error("futex path never entered the kernel")
	}
	if got := m.Memory().Load(shared); got != 4*iters {
		t.Errorf("shared = %d, want %d (lost updates => broken lock)", got, 4*iters)
	}
}

func TestSpinLockMutualExclusion(t *testing.T) {
	var lay mem.Layout
	lock := lay.AllocWords(1)
	shared := lay.AllocWords(1)
	const iters = 200
	b := isa.NewBuilder("spin")
	b.Liu(isa.R3, lock)
	b.Liu(isa.R4, shared)
	b.Li(isa.R5, 0)
	b.Label("loop")
	workload.EmitSpinLock(b, "s", isa.R3)
	b.Ld(isa.R6, isa.R4, 0)
	b.Addi(isa.R6, isa.R6, 1)
	b.St(isa.R4, 0, isa.R6)
	workload.EmitSpinUnlock(b, isa.R3)
	b.Addi(isa.R5, isa.R5, 1)
	b.Li(isa.R7, iters)
	b.Bne(isa.R5, isa.R7, "loop")
	b.Halt()
	prog := b.Build(lay.Size(), 3, nil)
	m := New(prog, DefaultConfig())
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Memory().Load(shared); got != 3*iters {
		t.Errorf("shared = %d, want %d", got, 3*iters)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	prog := counterProg(150, 4)
	a := run(t, prog, func(c *Config) { c.Mode = ModeFull; c.Seed = 7 })
	b := run(t, prog, func(c *Config) { c.Mode = ModeFull; c.Seed = 7 })
	if a.Cycles != b.Cycles || a.Retired != b.Retired || a.MemChecksum != b.MemChecksum {
		t.Errorf("same seed diverged: cycles %d/%d retired %d/%d checksum %x/%x",
			a.Cycles, b.Cycles, a.Retired, b.Retired, a.MemChecksum, b.MemChecksum)
	}
	if a.Session.ChunkBytes() != b.Session.ChunkBytes() {
		t.Error("chunk logs differ across identical runs")
	}
}

func TestSeedsChangeInterleaving(t *testing.T) {
	prog := counterProg(150, 4)
	a := run(t, prog, func(c *Config) { c.Mode = ModeFull; c.Seed = 1 })
	b := run(t, prog, func(c *Config) { c.Mode = ModeFull; c.Seed = 2 })
	// Functional result identical (counter is atomic), schedule different.
	if string(a.Output) != string(b.Output) {
		t.Error("different seeds changed the functional result")
	}
	if a.Cycles == b.Cycles && a.Session.ChunkBytes() == b.Session.ChunkBytes() {
		t.Log("warning: two seeds produced identical schedules (possible but unlikely)")
	}
}

func TestModesFunctionallyIdentical(t *testing.T) {
	prog := counterProg(150, 4)
	off := run(t, prog, func(c *Config) { c.Mode = ModeOff; c.Seed = 5 })
	hw := run(t, prog, func(c *Config) { c.Mode = ModeHardwareOnly; c.Seed = 5 })
	full := run(t, prog, func(c *Config) { c.Mode = ModeFull; c.Seed = 5 })
	if off.Retired != hw.Retired || hw.Retired != full.Retired {
		t.Errorf("retired differs across modes: %d/%d/%d", off.Retired, hw.Retired, full.Retired)
	}
	if off.MemChecksum != hw.MemChecksum || hw.MemChecksum != full.MemChecksum {
		t.Error("memory image differs across modes")
	}
	if !(off.Cycles <= hw.Cycles && hw.Cycles <= full.Cycles) {
		t.Errorf("cycle ordering violated: off=%d hw=%d full=%d", off.Cycles, hw.Cycles, full.Cycles)
	}
	// Hardware-only overhead must be tiny; full-stack overhead visible.
	hwOverhead := float64(hw.Cycles-off.Cycles) / float64(off.Cycles)
	if hwOverhead > 0.03 {
		t.Errorf("hardware-only overhead %.2f%% too large", hwOverhead*100)
	}
	if full.Acct.SoftwareRecordingTotal() == 0 {
		t.Error("full mode recorded no software cycles")
	}
}

func TestChunkLogsCoverAllRetires(t *testing.T) {
	prog := counterProg(200, 4)
	res := run(t, prog, func(c *Config) { c.Mode = ModeFull; c.Seed = 11 })
	for tid := 0; tid < 4; tid++ {
		log := res.Session.ChunkLog(tid)
		if log.Len() == 0 {
			t.Fatalf("thread %d has no chunks", tid)
		}
		if got, want := log.TotalInstructions(), res.RetiredPerThread[tid]; got != want {
			t.Errorf("thread %d: chunks cover %d instrs, retired %d", tid, got, want)
		}
		// Per-thread timestamps strictly increasing.
		for i := 1; i < log.Len(); i++ {
			if log.Entries[i].TS <= log.Entries[i-1].TS {
				t.Errorf("thread %d: TS not increasing at %d: %v -> %v",
					tid, i, log.Entries[i-1], log.Entries[i])
			}
		}
	}
}

func TestSyscallChunksAndInputRecords(t *testing.T) {
	prog := counterProg(50, 2)
	res := run(t, prog, func(c *Config) { c.Mode = ModeFull })
	sawSyscallReason := false
	for tid := 0; tid < 2; tid++ {
		for _, e := range res.Session.ChunkLog(tid).Entries {
			if e.Reason == chunk.ReasonSyscall {
				sawSyscallReason = true
			}
		}
	}
	if !sawSyscallReason {
		t.Error("no syscall-terminated chunks despite futex barrier")
	}
	in := res.Session.InputLog()
	if in.Len() == 0 {
		t.Fatal("empty input log")
	}
	if uint64(in.Len()) != res.Syscalls {
		t.Errorf("input records = %d, syscalls = %d", in.Len(), res.Syscalls)
	}
}

func TestReadSyscallLogged(t *testing.T) {
	var lay mem.Layout
	buf := lay.AllocWords(8)
	b := isa.NewBuilder("reader")
	b.Li(isa.RRet, int64(capo.SysRead))
	b.Li(isa.R11, 0)
	b.Liu(isa.R12, buf)
	b.Li(isa.R13, 64)
	b.Syscall()
	b.Halt()
	prog := b.Build(lay.Size(), 1, nil)
	res := run(t, prog, func(c *Config) { c.Mode = ModeFull })
	in := res.Session.InputLog()
	var readRec *capo.Record
	for i := range in.Records {
		if in.Records[i].Sysno == capo.SysRead {
			readRec = &in.Records[i]
		}
	}
	if readRec == nil {
		t.Fatal("no read record in input log")
	}
	if len(readRec.Data) != 64 || readRec.Addr != buf || readRec.Ret != 64 {
		t.Errorf("read record = %v", readRec)
	}
	if in.DataBytes() != 64 {
		t.Errorf("DataBytes = %d, want 64", in.DataBytes())
	}
}

func TestPreemptionWithMoreThreadsThanCores(t *testing.T) {
	prog := counterProg(300, 8)
	res := run(t, prog, func(c *Config) {
		c.Mode = ModeFull
		c.Cores = 2
		c.Threads = 8
		c.TimeSliceInstrs = 100
	})
	if got := binary.LittleEndian.Uint64(res.Output); got != 2400 {
		t.Errorf("counter = %d, want 2400", got)
	}
	if res.CtxSwitches == 0 {
		t.Error("no context switches with 8 threads on 2 cores")
	}
	sawSwitch := false
	for tid := 0; tid < 8; tid++ {
		for _, e := range res.Session.ChunkLog(tid).Entries {
			if e.Reason == chunk.ReasonSwitch {
				sawSwitch = true
			}
		}
	}
	if !sawSwitch {
		t.Error("no switch-terminated chunks")
	}
}

// sigProg spins incrementing a private counter; an async signal handler
// bumps a shared word and returns. Thread 0 registers the handler.
func sigProg(iters int64) *isa.Program {
	var lay mem.Layout
	sigCount := lay.AllocWords(1)
	b := isa.NewBuilder("sig")
	b.Bne(workload.RegTID, isa.R0, "work")
	b.LiLabel(isa.R11, "handler")
	b.Li(isa.RRet, int64(capo.SysSigHandler))
	b.Syscall()
	b.Label("work")
	b.Li(isa.R3, 0)
	b.Li(isa.R4, iters)
	b.Label("loop")
	b.Addi(isa.R3, isa.R3, 1)
	b.Bne(isa.R3, isa.R4, "loop")
	b.Halt()
	b.Label("handler")
	b.Liu(isa.R20, sigCount)
	b.Li(isa.R21, 1)
	b.Fadd(isa.R22, isa.R20, 0, isa.R21)
	b.Li(isa.RRet, int64(capo.SysSigReturn))
	b.Syscall() // sigreturn restores the interrupted frame; no code follows
	prog := b.Build(lay.Size(), 2, nil)
	prog.Symbols["sigcount"] = sigCount
	return prog
}

func TestSignalDelivery(t *testing.T) {
	prog := sigProg(20000)
	cfg := DefaultConfig()
	cfg.Mode = ModeFull
	cfg.SignalPeriodInstrs = 2000
	m := New(prog, cfg)
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.SignalsDelivered == 0 {
		t.Fatal("no signals delivered")
	}
	if got := m.Memory().Load(prog.Symbol("sigcount")); got != res.SignalsDelivered {
		t.Errorf("handler ran %d times, %d signals delivered", got, res.SignalsDelivered)
	}
	sigRecords := 0
	for _, r := range res.Session.InputLog().Records {
		if r.Kind == capo.KindSignal {
			sigRecords++
		}
	}
	if uint64(sigRecords) != res.SignalsDelivered {
		t.Errorf("signal records = %d, delivered = %d", sigRecords, res.SignalsDelivered)
	}
	sawTrap := false
	for tid := 0; tid < 2; tid++ {
		for _, e := range res.Session.ChunkLog(tid).Entries {
			if e.Reason == chunk.ReasonTrap {
				sawTrap = true
			}
		}
	}
	if !sawTrap {
		t.Error("no trap-terminated chunks")
	}
}

func TestRepMovsChunkResidue(t *testing.T) {
	// A big REP copy with a tiny signature forces chunk boundaries inside
	// the instruction, producing entries with RepResidue > 0.
	var lay mem.Layout
	src := lay.AllocWords(4096)
	dst := lay.AllocWords(4096)
	b := isa.NewBuilder("repbig")
	b.Liu(isa.R3, dst)
	b.Liu(isa.R4, src)
	b.Li(isa.R5, 4096)
	b.RepMovs(isa.R3, isa.R4, isa.R5)
	b.Halt()
	prog := b.Build(lay.Size(), 1, nil)

	cfg := DefaultConfig()
	cfg.Mode = ModeFull
	cfg.MRR.ReadSig = signature.Config{Bits: 1024, Hashes: 2, MaxInserts: 32}
	cfg.MRR.WriteSig = signature.Config{Bits: 1024, Hashes: 2, MaxInserts: 32}
	res, err := New(prog, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	log := res.Session.ChunkLog(0)
	withResidue := 0
	var lastResidue uint64
	for _, e := range log.Entries {
		if e.RepResidue > 0 {
			withResidue++
			if e.RepResidue <= lastResidue {
				t.Errorf("residues not increasing: %d after %d", e.RepResidue, lastResidue)
			}
			lastResidue = e.RepResidue
		}
	}
	if withResidue == 0 {
		t.Fatal("no chunks split a REP instruction")
	}
}

func TestSigOverflowReasonAppears(t *testing.T) {
	// Touch many distinct lines per chunk with a small signature.
	var lay mem.Layout
	arr := lay.AllocWords(8 * 1024)
	b := isa.NewBuilder("strider")
	b.Liu(isa.R3, arr)
	b.Li(isa.R4, 0)
	b.Li(isa.R5, 1024)
	b.Label("loop")
	b.St(isa.R3, 0, isa.R4)
	b.Addi(isa.R3, isa.R3, 64)
	b.Addi(isa.R4, isa.R4, 1)
	b.Bne(isa.R4, isa.R5, "loop")
	b.Halt()
	prog := b.Build(lay.Size(), 1, nil)
	cfg := DefaultConfig()
	cfg.Mode = ModeHardwareOnly
	cfg.MRR.WriteSig = signature.Config{Bits: 1024, Hashes: 2, MaxInserts: 24}
	cfg.MRR.ReadSig = signature.Config{Bits: 1024, Hashes: 2, MaxInserts: 24}
	res, err := New(prog, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	found := uint64(0)
	for _, s := range res.MRRStats {
		found += s.Reasons.Get(int(chunk.ReasonSigOverflow))
	}
	if found == 0 {
		t.Error("no signature-overflow chunk terminations")
	}
}

func TestConflictReasonsOnContendedCounter(t *testing.T) {
	prog := counterProg(500, 4)
	res := run(t, prog, func(c *Config) { c.Mode = ModeHardwareOnly; c.Seed = 3 })
	conflicts := uint64(0)
	for _, s := range res.MRRStats {
		conflicts += s.Reasons.Get(int(chunk.ReasonConflictRAW)) +
			s.Reasons.Get(int(chunk.ReasonConflictWAR)) +
			s.Reasons.Get(int(chunk.ReasonConflictWAW))
	}
	if conflicts == 0 {
		t.Error("contended atomic counter produced no conflict chunks")
	}
}

func TestDeadlockDetected(t *testing.T) {
	var lay mem.Layout
	w := lay.AllocWords(1)
	b := isa.NewBuilder("deadlock")
	b.Li(isa.RRet, int64(capo.SysFutexWait))
	b.Liu(isa.R11, w)
	b.Li(isa.R12, 0) // matches: blocks forever
	b.Syscall()
	b.Halt()
	prog := b.Build(lay.Size(), 1, nil)
	_, err := New(prog, DefaultConfig()).Run()
	if err == nil {
		t.Fatal("deadlock not detected")
	}
}

func TestStepLimit(t *testing.T) {
	b := isa.NewBuilder("spinforever")
	b.Label("x")
	b.Jmp("x")
	prog := b.Build(64, 1, nil)
	cfg := DefaultConfig()
	cfg.MaxSteps = 1000
	_, err := New(prog, cfg).Run()
	if err == nil {
		t.Fatal("step limit not enforced")
	}
}

func TestExitSyscall(t *testing.T) {
	b := isa.NewBuilder("exiter")
	b.Li(isa.R3, 42)
	workload.EmitExit(b)
	b.Halt() // unreachable
	prog := b.Build(64, 2, nil)
	res := run(t, prog, func(c *Config) { c.Mode = ModeFull })
	if len(res.FinalContexts) != 2 {
		t.Fatalf("contexts = %d", len(res.FinalContexts))
	}
	for tid, ctx := range res.FinalContexts {
		if ctx.Regs[isa.R3] != 42 {
			t.Errorf("thread %d final R3 = %d, want 42", tid, ctx.Regs[isa.R3])
		}
	}
	// Exit records present.
	exits := 0
	for _, r := range res.Session.InputLog().Records {
		if r.Sysno == capo.SysExit {
			exits++
		}
	}
	if exits != 2 {
		t.Errorf("exit records = %d, want 2", exits)
	}
}

func TestRunTwicePanics(t *testing.T) {
	prog := counterProg(10, 1)
	m := New(prog, DefaultConfig())
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("second Run did not panic")
		}
	}()
	m.Run()
}

func TestYieldReschedules(t *testing.T) {
	var lay mem.Layout
	b := isa.NewBuilder("yielder")
	b.Li(isa.R3, 0)
	b.Li(isa.R4, 20)
	b.Label("loop")
	workload.EmitSyscall0(b, capo.SysYield)
	b.Addi(isa.R3, isa.R3, 1)
	b.Bne(isa.R3, isa.R4, "loop")
	b.Halt()
	prog := b.Build(lay.Size()+64, 4, nil)
	res := run(t, prog, func(c *Config) {
		c.Cores = 2
		c.Threads = 4
	})
	if res.CtxSwitches == 0 {
		t.Error("yields caused no context switches")
	}
}

func TestModeHardwareOnlyChargesNoSoftware(t *testing.T) {
	prog := counterProg(100, 2)
	res := run(t, prog, func(c *Config) { c.Mode = ModeHardwareOnly })
	if res.Acct.SoftwareRecordingTotal() != 0 {
		t.Errorf("hw-only charged %d software cycles", res.Acct.SoftwareRecordingTotal())
	}
	if res.Acct.Get(perf.CompRecHardware) == 0 {
		t.Error("hw-only charged no hardware cycles")
	}
	if res.Session == nil || res.Session.ChunkBytes() == 0 {
		t.Error("hw-only mode produced no logs")
	}
}

func TestCheckpointStateCapture(t *testing.T) {
	prog := counterProg(5000, 4)
	cfg := DefaultConfig()
	cfg.Mode = ModeFull
	cfg.Seed = 13
	cfg.CheckpointEveryInstrs = 4000
	m := New(prog, cfg)
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Checkpoints == 0 || res.Checkpoint == nil {
		t.Fatal("no checkpoints taken")
	}
	ck := res.Checkpoint
	if ck.RetiredAt == 0 || ck.RetiredAt > res.Retired {
		t.Errorf("checkpoint position %d outside run of %d", ck.RetiredAt, res.Retired)
	}
	if len(ck.Threads) != 4 || len(ck.ChunkPos) != 4 {
		t.Fatalf("thread snapshots: %d/%d", len(ck.Threads), len(ck.ChunkPos))
	}
	var sum uint64
	for t2, th := range ck.Threads {
		sum += th.Ctx.Retired
		if ck.ChunkPos[t2] > res.Session.ChunkLog(t2).Len() {
			t.Errorf("thread %d: chunk pos %d beyond final log %d",
				t2, ck.ChunkPos[t2], res.Session.ChunkLog(t2).Len())
		}
	}
	if sum != ck.RetiredAt {
		t.Errorf("per-thread retired sums to %d, checkpoint says %d", sum, ck.RetiredAt)
	}
	if ck.InputPos > res.Session.InputLog().Len() {
		t.Error("input position beyond final log")
	}
	// The snapshot memory is the architectural image at the boundary: a
	// word like the shared counter must be <= its final value.
	ctr := prog.Symbol("counter")
	snapVal := ck.Mem.Load(ctr)
	finalVal := m.Memory().Load(ctr)
	if snapVal > finalVal {
		t.Errorf("snapshot counter %d exceeds final %d", snapVal, finalVal)
	}
	if snapVal == 0 {
		t.Error("snapshot missed cache-resident dirty data (counter reads 0)")
	}
}

func TestCheckpointDisabledByDefault(t *testing.T) {
	prog := counterProg(500, 2)
	cfg := DefaultConfig()
	cfg.Mode = ModeFull
	res, err := New(prog, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Checkpoints != 0 || res.Checkpoint != nil {
		t.Error("checkpoints taken without being configured")
	}
}
