package machine

import (
	"errors"
	"fmt"

	"repro/internal/capo"
	"repro/internal/chunk"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/mrr"
	"repro/internal/perf"
)

// ErrDeadlock reports that non-exited threads remain but none are
// runnable (all blocked on futexes).
var ErrDeadlock = errors.New("machine: deadlock: all live threads blocked")

// ErrStepLimit reports that the run exceeded Config.MaxSteps.
var ErrStepLimit = errors.New("machine: step limit exceeded")

// Run executes the program to completion and returns the result. A
// machine can run only once.
func (m *Machine) Run() (*Result, error) {
	if m.ran {
		panic("machine: Run called twice")
	}
	m.ran = true

	for m.liveCnt > 0 {
		m.scheduleIdle()
		active := m.activeCores()
		if len(active) == 0 {
			return nil, fmt.Errorf("%w (%d live, %d futex waiters)",
				ErrDeadlock, m.liveCnt, m.kernel.Waiters())
		}
		coreID := active[m.rand64()%uint64(len(active))]
		burst := 1 + int(m.rand64()%uint64(m.cfg.BurstMax))
		m.runBurst(coreID, burst)
		m.maybeCheckpoint()
		m.maybeFlushStream()
		if m.steps > m.cfg.MaxSteps {
			return nil, fmt.Errorf("%w (%d steps)", ErrStepLimit, m.steps)
		}
	}
	res := m.finalize()
	if m.stream != nil && m.stream.Err() != nil {
		return nil, m.stream.Err()
	}
	return res, nil
}

// activeCores returns cores with a running thread, ascending.
func (m *Machine) activeCores() []int {
	out := make([]int, 0, len(m.running))
	for i, tid := range m.running {
		if tid >= 0 {
			out = append(out, i)
		}
	}
	return out
}

// scheduleIdle places runnable threads onto idle cores (FIFO, ascending
// core order).
func (m *Machine) scheduleIdle() {
	for coreID, tid := range m.running {
		if tid >= 0 || len(m.runq) == 0 {
			continue
		}
		next := m.runq[0]
		m.runq = m.runq[1:]
		m.assign(next, coreID)
	}
}

// assign schedules thread tid onto coreID.
func (m *Machine) assign(tid, coreID int) {
	th := m.threads[tid]
	m.cores[coreID].RestoreContext(th.ctx)
	if rec := m.mrrs[coreID]; rec != nil {
		rec.RaiseClock(th.savedClock)
		sink := m.session.ChunkSink(tid)
		rec.SetSink(func(e chunk.Entry) {
			m.acct.Add(perf.CompRecHardware, m.cfg.Perf.RecChunkWrite)
			sink(e)
			m.noteStreamedChunk()
		})
		if m.cfg.CaptureSignatures {
			rec.SetSigSink(m.session.SigSink(tid))
		}
		rec.SetEnabled(true)
	}
	th.state = thRunning
	th.core = coreID
	th.sliceInstrs = 0
	m.running[coreID] = tid
}

// park removes the running thread from coreID, saving its context and
// recorder clock. The caller sets the thread's next state.
func (m *Machine) park(coreID int) *thread {
	tid := m.running[coreID]
	th := m.threads[tid]
	if rec := m.mrrs[coreID]; rec != nil {
		th.savedClock = rec.Clock()
		rec.SetSink(nil)
		rec.SetSigSink(nil)
		rec.SetEnabled(false)
	}
	th.ctx = m.cores[coreID].SaveContext()
	th.core = -1
	m.running[coreID] = -1
	return th
}

// runBurst steps coreID up to burst units of work, stopping early when
// the thread blocks, exits, yields or is preempted.
func (m *Machine) runBurst(coreID, burst int) {
	for i := 0; i < burst; i++ {
		if m.running[coreID] < 0 {
			return
		}
		tid := m.running[coreID]
		core := m.cores[coreID]
		rec := m.mrrs[coreID]
		kind := core.Step()
		m.steps++
		switch kind {
		case isa.StepRetired, isa.StepRepRetired:
			m.acct.Add(perf.CompInstr, m.cfg.Perf.BaseCPI)
			m.noteRetire(tid, rec)
		case isa.StepRepTick:
			m.acct.Add(perf.CompInstr, m.cfg.Perf.BaseCPI)
			if rec != nil {
				rec.OnRepTick()
			}
		case isa.StepSyscall:
			if !m.handleSyscall(coreID) {
				return // thread blocked, exited or yielded
			}
		case isa.StepHalted:
			m.retireHaltedThread(coreID)
			return
		}
		if m.maybeDeliverSignal() {
			// A signal may have landed on this core's thread; its PC
			// changed but it remains runnable. Keep going.
			continue
		}
		if m.maybePreempt(coreID) {
			return
		}
	}
}

// noteRetire performs the per-retired-instruction bookkeeping.
func (m *Machine) noteRetire(tid int, rec *mrr.Recorder) {
	m.retired++
	m.threads[tid].sliceInstrs++
	if rec != nil {
		rec.OnRetire()
	}
}

// retireHaltedThread finishes a thread that executed HALT.
func (m *Machine) retireHaltedThread(coreID int) {
	rec := m.mrrs[coreID]
	// The HALT instruction itself retired inside Step.
	m.acct.Add(perf.CompInstr, m.cfg.Perf.BaseCPI)
	m.retired++
	if rec != nil {
		rec.OnRetire()
		rec.Terminate(chunk.ReasonFlush)
	}
	th := m.park(coreID)
	th.state = thExited
	th.finalCtx = th.ctx
	m.liveCnt--
}

// handleSyscall processes a syscall trap on coreID. It returns true when
// the thread completed the call and continues running on this core.
func (m *Machine) handleSyscall(coreID int) bool {
	tid := m.running[coreID]
	core := m.cores[coreID]
	rec := m.mrrs[coreID]
	th := m.threads[tid]
	pp := &m.cfg.Perf

	if rec != nil {
		rec.Terminate(chunk.ReasonSyscall)
		rec.SetEnabled(false)
	}
	m.acct.Add(perf.CompKernel, pp.SyscallBase)
	m.chargeFull(perf.CompRecDriver, pp.RecSyscallExtra)

	sysno, a1, a2, a3, _ := core.SyscallArgs()
	res := m.kernel.Handle(tid, m.acct.Total(), sysno, a1, a2, a3, m.ports[coreID])
	m.acct.Add(perf.CompKernel, pp.CopyPerWord*uint64(res.WordsTouched))
	if len(res.CopyData) > 0 {
		m.chargeFull(perf.CompRecInputCopy, pp.RecInputPerWord*uint64((len(res.CopyData)+7)/8))
	}
	for _, w := range res.Woken {
		m.wake(w)
	}

	switch {
	case res.Exit:
		m.syscalls++
		if rec != nil {
			ts := rec.StampInput()
			m.session.RecordSyscall(tid, ts, sysno, 0, 0, nil)
		}
		core.AbortSyscall()
		exited := m.park(coreID)
		exited.state = thExited
		exited.finalCtx = exited.ctx
		m.liveCnt--
		return false

	case res.Block:
		// Futex sleep: abort the syscall so the instruction re-executes
		// when the thread wakes (sound: the wait re-checks the futex
		// word, and only the completing execution is logged).
		core.AbortSyscall()
		blocked := m.park(coreID)
		blocked.state = thBlocked
		m.acct.Add(perf.CompKernel, pp.CtxSwitch)
		m.chargeFull(perf.CompRecSched, pp.RecSwitchExtra)
		return false

	default:
		m.syscalls++
		if rec != nil {
			// Writes to a shared fd serialize through the kernel: couple
			// the clock through it so replay reproduces the recorded
			// byte order in the output stream.
			if sysno == capo.SysWrite {
				rec.RaiseClock(m.lastWriteTS + 1)
			}
			ts := rec.StampInput()
			if sysno == capo.SysWrite {
				m.lastWriteTS = ts
			}
			m.session.RecordSyscall(tid, ts, sysno, res.Ret, res.CopyAddr, res.CopyData)
		}
		if rec != nil {
			rec.SetEnabled(true)
		}
		core.CompleteSyscall(res.Ret)
		m.acct.Add(perf.CompInstr, pp.BaseCPI)
		m.noteRetire(tid, rec)
		if sysno == capo.SysSigReturn {
			// Atomically restore the signal frame and unmask.
			th.sigMasked = false
			for r := isa.Reg(1); r < isa.NumRegs; r++ {
				core.SetReg(r, th.sigRegs[r])
			}
			core.SetPC(th.sigPC)
		}
		if res.Reschedule && len(m.runq) > 0 {
			yielded := m.park(coreID)
			yielded.state = thRunnable
			m.runq = append(m.runq, tid)
			m.switches++
			m.acct.Add(perf.CompKernel, pp.CtxSwitch)
			m.chargeFull(perf.CompRecSched, pp.RecSwitchExtra)
			return false
		}
		return true
	}
}

// wake makes a futex-blocked thread runnable.
func (m *Machine) wake(tid int) {
	th := m.threads[tid]
	if th.state != thBlocked {
		panic(fmt.Sprintf("machine: waking thread %d in state %d", tid, th.state))
	}
	th.state = thRunnable
	m.runq = append(m.runq, tid)
}

// maybePreempt deschedules coreID's thread when its instruction slice
// expired and another thread is waiting. Returns true when preempted.
func (m *Machine) maybePreempt(coreID int) bool {
	if m.cfg.TimeSliceInstrs == 0 || len(m.runq) == 0 {
		return false
	}
	tid := m.running[coreID]
	if tid < 0 || m.threads[tid].sliceInstrs < m.cfg.TimeSliceInstrs {
		return false
	}
	if rec := m.mrrs[coreID]; rec != nil {
		rec.Terminate(chunk.ReasonSwitch)
	}
	preempted := m.park(coreID)
	preempted.state = thRunnable
	m.runq = append(m.runq, tid)
	m.switches++
	m.acct.Add(perf.CompKernel, m.cfg.Perf.CtxSwitch)
	m.chargeFull(perf.CompRecSched, m.cfg.Perf.RecSwitchExtra)
	return true
}

// maybeDeliverSignal delivers an asynchronous signal when the global
// retired-instruction counter crosses the next delivery point and the
// program registered a handler. Returns true if a signal was delivered.
func (m *Machine) maybeDeliverSignal() bool {
	if m.cfg.SignalPeriodInstrs == 0 || m.retired < m.nextSig {
		return false
	}
	m.nextSig = m.retired + m.cfg.SignalPeriodInstrs + m.rand64()%(m.cfg.SignalPeriodInstrs/2+1)
	handlerPC, ok := m.kernel.HandlerPC()
	if !ok {
		return false
	}
	// Candidates: running, unmasked threads at instruction boundaries
	// (all running threads are, between machine steps).
	var cands []int
	for coreID, tid := range m.running {
		if tid >= 0 && !m.threads[tid].sigMasked && !m.cores[coreID].InSyscall() {
			cands = append(cands, coreID)
		}
	}
	if len(cands) == 0 {
		return false
	}
	coreID := cands[m.rand64()%uint64(len(cands))]
	tid := m.running[coreID]
	core := m.cores[coreID]
	th := m.threads[tid]
	rec := m.mrrs[coreID]

	const signo = 1
	if rec != nil {
		rec.Terminate(chunk.ReasonTrap)
		rec.SetEnabled(false)
		_, repDone := core.RepInFlight()
		ts := rec.StampInput()
		m.session.RecordSignal(tid, ts, signo, core.Retired(), repDone)
	}
	// Vector: the kernel saves the signal frame (full register file plus
	// PC), clears in-flight REP bookkeeping (the partially executed REP
	// resumes as a fresh instruction after the handler), and jumps to
	// the handler with the signal masked.
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		th.sigRegs[r] = core.Reg(r)
	}
	th.sigPC = core.PC()
	core.ClearRepState()
	core.SetPC(handlerPC)
	th.sigMasked = true
	if rec != nil {
		rec.SetEnabled(true)
	}
	m.signals++
	m.acct.Add(perf.CompKernel, m.cfg.Perf.SignalDeliver)
	m.chargeFull(perf.CompRecSched, m.cfg.Perf.RecSignalExtra)
	return true
}

// finalize flushes caches and assembles the Result.
func (m *Machine) finalize() *Result {
	m.bus.FlushAll()
	res := &Result{
		Cycles:           m.acct.Total(),
		Acct:             m.acct,
		Retired:          m.retired,
		Output:           append([]byte(nil), m.kernel.Output(1)...),
		MemChecksum:      m.memory.Checksum(),
		Session:          m.session,
		BusStats:         m.bus.Stats(),
		Syscalls:         m.syscalls,
		CtxSwitches:      m.switches,
		SignalsDelivered: m.signals,
		Checkpoint:       m.checkpoint,
		AllCheckpoints:   m.allCheckpoints,
		Checkpoints:      m.checkpoints,
	}
	for _, th := range m.threads {
		res.FinalContexts = append(res.FinalContexts, th.finalCtx)
		res.RetiredPerThread = append(res.RetiredPerThread, th.finalCtx.Retired)
	}
	for i, c := range m.caches {
		res.CacheStats = append(res.CacheStats, c.Stats())
		res.MemAccesses += m.ports[i].accesses
	}
	if m.recording() {
		for _, r := range m.mrrs {
			res.MRRStats = append(res.MRRStats, r.Stats())
		}
	}
	m.finishStream(res)
	return res
}

// Memory exposes the machine's memory (for verification in tests and the
// CLI; read-only use expected after Run).
func (m *Machine) Memory() *mem.Memory { return m.memory }
