package machine

import (
	"repro/internal/chunk"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/perf"
)

// Checkpoint is a flight-recorder snapshot: everything replay needs to
// resume from this point instead of from program start. QuickRec's
// stated goal is always-on RnR; bounding the logs requires periodic
// checkpoints so that only the tail since the last one must be kept.
//
// A checkpoint is taken at a global quiescent point (all cores between
// instructions) after force-terminating every open chunk, so every
// logged entry after it covers only post-checkpoint execution.
type Checkpoint struct {
	// RetiredAt is the global retired-instruction count at the snapshot.
	RetiredAt uint64
	// Mem is the architectural memory image (caches overlaid).
	Mem *mem.Memory
	// Threads holds per-thread snapshots, indexed by thread ID.
	Threads []ThreadSnapshot
	// HandlerPC/HandlerOK mirror the registered signal handler.
	HandlerPC int
	HandlerOK bool
	// Output is everything written to fd 1 so far.
	Output []byte
	// ChunkPos[t] is thread t's chunk-log length at the snapshot;
	// InputPos is the input-log length. Entries beyond these positions
	// form the replayable tail.
	ChunkPos []int
	InputPos int
}

// ThreadSnapshot is one thread's state at a checkpoint.
type ThreadSnapshot struct {
	Ctx        isa.Context
	Exited     bool
	SigMasked  bool
	SigRegs    [isa.NumRegs]uint64
	SigPC      int
	SavedClock uint64
}

// maybeCheckpoint takes a flight-recorder snapshot when the retired
// instruction counter crosses the next checkpoint boundary. Called from
// the run loop between bursts, when every core sits at an instruction
// boundary and no syscall is in flight.
func (m *Machine) maybeCheckpoint() {
	if m.cfg.CheckpointEveryInstrs == 0 || !m.recording() || m.retired < m.nextCkpt {
		return
	}
	m.nextCkpt = m.retired + m.cfg.CheckpointEveryInstrs

	// Close every open chunk so post-checkpoint entries cover only
	// post-checkpoint instructions.
	for coreID, tid := range m.running {
		if tid >= 0 {
			m.mrrs[coreID].Terminate(chunk.ReasonCheckpoint)
		}
	}

	ck := &Checkpoint{
		RetiredAt: m.retired,
		Mem:       m.bus.SnapshotMemory(),
		Threads:   make([]ThreadSnapshot, len(m.threads)),
		Output:    append([]byte(nil), m.kernel.Output(1)...),
		ChunkPos:  make([]int, len(m.threads)),
		InputPos:  m.session.InputLog().Len(),
	}
	ck.HandlerPC, ck.HandlerOK = m.kernel.HandlerPC()
	for t, th := range m.threads {
		snap := ThreadSnapshot{
			SigMasked: th.sigMasked,
			SigRegs:   th.sigRegs,
			SigPC:     th.sigPC,
		}
		switch {
		case th.state == thExited:
			snap.Ctx = th.finalCtx
			snap.Exited = true
		case th.state == thRunning:
			snap.Ctx = m.cores[th.core].SaveContext()
			snap.SavedClock = m.mrrs[th.core].Clock()
		default: // runnable or blocked: parked context is current
			snap.Ctx = th.ctx
			snap.SavedClock = th.savedClock
		}
		ck.Threads[t] = snap
		ck.ChunkPos[t] = m.session.ChunkLog(t).Len()
	}
	m.checkpoint = ck
	m.allCheckpoints = append(m.allCheckpoints, ck)
	m.checkpoints++
	m.streamCheckpoint(ck)
	m.acct.Add(perf.CompKernel, m.cfg.Perf.CheckpointCost)
	m.chargeFull(perf.CompRecSched, m.cfg.Perf.RecCheckpointExtra)
}
