package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := Table{
		Title:   "Demo",
		Columns: []string{"name", "value"},
	}
	tab.AddRow("alpha", "1")
	tab.AddRow("a-much-longer-name", "22")
	out := tab.String()
	if !strings.Contains(out, "Demo") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: "value" header column starts at the same offset in
	// each data row.
	header := lines[1]
	col := strings.Index(header, "value")
	for _, l := range lines[3:] {
		if len(l) < col {
			t.Errorf("short row %q", l)
		}
	}
}

func TestAddRowClampsTooManyCells(t *testing.T) {
	tab := Table{Columns: []string{"a"}}
	tab.AddRow("x", "y", "z")
	if len(tab.Rows[0]) != 1 {
		t.Errorf("row kept %d cells, want 1", len(tab.Rows[0]))
	}
}

func TestMissingCellsRenderEmpty(t *testing.T) {
	tab := Table{Columns: []string{"a", "b"}}
	tab.AddRow("only")
	if out := tab.String(); !strings.Contains(out, "only") {
		t.Errorf("row lost: %q", out)
	}
}

func TestFormatters(t *testing.T) {
	if got := Pct(0.135); got != "13.5%" {
		t.Errorf("Pct = %q", got)
	}
	if got := F(3.14159, 2); got != "3.14" {
		t.Errorf("F = %q", got)
	}
	if got := U(42); got != "42" {
		t.Errorf("U = %q", got)
	}
}

func TestSeriesRendering(t *testing.T) {
	s := Series{
		Title: "Chunk CDF", XLabel: "size", YLabel: "fraction",
		Points: []Point{{X: 10, Y: 0.5, Label: "p50"}, {X: 100, Y: 0.99}},
	}
	out := s.String()
	for _, want := range []string{"Chunk CDF", "size", "fraction", "p50", "0.5000"} {
		if !strings.Contains(out, want) {
			t.Errorf("series output missing %q:\n%s", want, out)
		}
	}
}
