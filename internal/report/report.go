// Package report renders the benchmark harness's tables and figure
// series as aligned ASCII, the medium in which EXPERIMENTS.md records
// paper-versus-measured results.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid with a header row.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row; cells beyond len(Columns) are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Columns) {
		cells = cells[:len(t.Columns)]
	}
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title + "\n")
	}
	writeRow := func(cells []string) {
		for i, w := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", w, cell)
		}
		sb.WriteString("\n")
	}
	writeRow(t.Columns)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total) + "\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// KV is a titled two-column name/value listing — the /statsz idiom for
// counter snapshots. It renders through the same aligned-Table machinery
// as the benchmark grids.
type KV struct {
	Title string
	pairs [][2]string
}

// Add appends one name/value pair.
func (kv *KV) Add(name, value string) {
	kv.pairs = append(kv.pairs, [2]string{name, value})
}

// AddUint appends one name/count pair.
func (kv *KV) AddUint(name string, v uint64) { kv.Add(name, U(v)) }

// String renders the listing.
func (kv *KV) String() string {
	t := Table{Title: kv.Title, Columns: []string{"name", "value"}}
	for _, p := range kv.pairs {
		t.AddRow(p[0], p[1])
	}
	return t.String()
}

// Pct formats a fraction as a percentage.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// F formats a float with the given precision.
func F(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

// U formats an unsigned count.
func U(v uint64) string { return fmt.Sprintf("%d", v) }

// Series is one figure line: (x, y) points with labels.
type Series struct {
	Title  string
	XLabel string
	YLabel string
	Points []Point
}

// Point is one figure sample.
type Point struct {
	X float64
	Y float64
	// Label optionally names the point (benchmark name on a bar chart).
	Label string
}

// String renders the series as an aligned two-column listing.
func (s *Series) String() string {
	t := Table{
		Title:   fmt.Sprintf("%s  [%s vs %s]", s.Title, s.YLabel, s.XLabel),
		Columns: []string{s.XLabel, s.YLabel, ""},
	}
	for _, p := range s.Points {
		t.AddRow(F(p.X, 2), F(p.Y, 4), p.Label)
	}
	return t.String()
}
