// Package swrecord models the software-only alternative QuickRec's
// hardware replaces: binary-instrumentation race recording in the style
// of iDNA/PinPlay, where every memory access executes extra instructions
// to maintain software signatures (or access logs) and every chunk
// boundary is detected and logged in software.
//
// The paper's motivation is that such systems slow programs down by an
// order of magnitude where the hardware-assisted stack costs ~13%. We
// reproduce that comparison (experiment A1) analytically: a recorded run
// supplies exact event counts (memory accesses, chunk terminations,
// kernel crossings), and this package prices them at
// software-instrumentation rates. This is deliberately a model, not a
// second execution engine — the baseline's cost structure is what
// matters, and modelling it keeps the comparison apples-to-apples on
// identical executions.
package swrecord

import (
	"repro/internal/machine"
	"repro/internal/perf"
)

// Params prices software instrumentation in cycles.
type Params struct {
	// PerMemAccess is the instrumentation cost of one load or store:
	// address hashing, signature update/test, and the branch back —
	// typically 15-40 instructions in published software recorders.
	PerMemAccess uint64
	// PerRetired is the residual per-instruction dilation from code
	// bloat and register pressure.
	PerRetired uint64
	// PerChunk is the software cost of closing a chunk (log formatting
	// and buffer management done inline rather than by hardware).
	PerChunk uint64
	// PerSyscall is the extra interception cost relative to the
	// already-modelled kernel path.
	PerSyscall uint64
}

// DefaultParams reflects the mid-range of published software recorders
// (roughly 5-15x slowdowns on memory-intensive code).
func DefaultParams() Params {
	return Params{
		PerMemAccess: 20,
		PerRetired:   1,
		PerChunk:     120,
		PerSyscall:   400,
	}
}

// Estimate prices a recorded run under software-only instrumentation and
// returns the estimated total cycles: the run's native cycle content
// (everything that is not recording overhead) plus the modelled software
// instrumentation.
func Estimate(res *machine.Result, p Params) uint64 {
	native := res.Cycles - res.Acct.RecordingTotal()
	var chunks uint64
	for _, s := range res.MRRStats {
		chunks += s.Chunks
	}
	sw := res.MemAccesses*p.PerMemAccess +
		res.Retired*p.PerRetired +
		chunks*p.PerChunk +
		res.Syscalls*p.PerSyscall
	return native + sw
}

// Overhead returns the estimated software-recording slowdown as a
// fraction of the native run (0.25 = 25% slower).
func Overhead(res *machine.Result, p Params) float64 {
	native := res.Cycles - res.Acct.RecordingTotal()
	if native == 0 {
		return 0
	}
	return float64(Estimate(res, p)-native) / float64(native)
}

// HardwareOverhead returns the measured QuickRec overhead fractions for
// the same run: (hardware-only, full-stack), for side-by-side reporting.
func HardwareOverhead(res *machine.Result) (hw, full float64) {
	native := res.Cycles - res.Acct.RecordingTotal()
	if native == 0 {
		return 0, 0
	}
	hwCycles := res.Acct.Get(perf.CompRecHardware)
	return float64(hwCycles) / float64(native),
		float64(res.Acct.RecordingTotal()) / float64(native)
}
