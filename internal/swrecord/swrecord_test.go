package swrecord

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/workload"
)

func recordedRun(t *testing.T) *machine.Result {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.Mode = machine.ModeFull
	res, err := machine.New(workload.Counter(500, 4), cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSoftwareBaselineDominatesHardware(t *testing.T) {
	res := recordedRun(t)
	p := DefaultParams()
	sw := Overhead(res, p)
	hw, full := HardwareOverhead(res)
	if !(hw < full && full < sw) {
		t.Errorf("overhead ordering broken: hw=%.3f full=%.3f sw=%.3f", hw, full, sw)
	}
	// The paper's motivation: software recording is many times costlier
	// than the hardware-assisted stack.
	if sw < 2*full {
		t.Errorf("software overhead %.3f not clearly above full-stack %.3f", sw, full)
	}
	if sw < 1.0 {
		t.Errorf("software instrumentation overhead %.1f%% implausibly low", sw*100)
	}
}

func TestEstimateMonotonicInParams(t *testing.T) {
	res := recordedRun(t)
	base := Estimate(res, DefaultParams())
	bigger := DefaultParams()
	bigger.PerMemAccess *= 2
	if Estimate(res, bigger) <= base {
		t.Error("doubling per-access cost did not increase the estimate")
	}
	zero := Params{}
	native := res.Cycles - res.Acct.RecordingTotal()
	if Estimate(res, zero) != native {
		t.Error("zero-cost instrumentation should equal the native run")
	}
}

func TestOverheadZeroNative(t *testing.T) {
	empty := &machine.Result{}
	if Overhead(empty, DefaultParams()) != 0 {
		t.Error("zero-cycle run should report zero overhead")
	}
	if hw, full := HardwareOverhead(empty); hw != 0 || full != 0 {
		t.Error("zero-cycle run should report zero hardware overheads")
	}
}
