package cache

import (
	"math/rand"
	"testing"

	"repro/internal/mem"
)

// recListener records events for assertions.
type recListener struct {
	clock    uint64
	accesses []accessEv
	snoops   []snoopEv
	evicts   []evictEv
	acks     []uint64
}

type accessEv struct {
	line  uint64
	write bool
}
type snoopEv struct {
	line      uint64
	exclusive bool
}
type evictEv struct {
	line  uint64
	dirty bool
}

func (l *recListener) OnLocalAccess(line uint64, write bool) {
	l.accesses = append(l.accesses, accessEv{line, write})
}
func (l *recListener) OnSnoop(line uint64, exclusive bool) uint64 {
	l.snoops = append(l.snoops, snoopEv{line, exclusive})
	return l.clock
}
func (l *recListener) OnEvict(line uint64, dirty bool) {
	l.evicts = append(l.evicts, evictEv{line, dirty})
}
func (l *recListener) OnBusAck(max uint64) { l.acks = append(l.acks, max) }

func twoCaches(t *testing.T) (*Bus, *Cache, *Cache, *recListener, *recListener) {
	t.Helper()
	m := mem.New(1 << 20)
	bus := NewBus(m)
	l0, l1 := &recListener{}, &recListener{}
	c0 := New(DefaultConfig(), bus, l0)
	c1 := New(DefaultConfig(), bus, l1)
	return bus, c0, c1, l0, l1
}

func TestReadMissFromMemoryExclusive(t *testing.T) {
	bus, c0, _, _, _ := twoCaches(t)
	bus.Memory().Store(128, 42)
	v, cost := c0.Load(128)
	if v != 42 {
		t.Errorf("loaded %d, want 42", v)
	}
	if cost != CostMissMem {
		t.Errorf("cost = %v, want CostMissMem", cost)
	}
	if s := c0.StateOf(128); s != Exclusive {
		t.Errorf("state = %v, want E", s)
	}
	// Second load hits.
	if _, cost := c0.Load(128); cost != CostHit {
		t.Errorf("second load cost = %v, want hit", cost)
	}
}

func TestSharedOnSecondReader(t *testing.T) {
	bus, c0, c1, _, _ := twoCaches(t)
	bus.Memory().Store(0, 9)
	c0.Load(0)
	v, _ := c1.Load(0)
	if v != 9 {
		t.Errorf("c1 loaded %d, want 9", v)
	}
	if c0.StateOf(0) != Shared || c1.StateOf(0) != Shared {
		t.Errorf("states = %v/%v, want S/S", c0.StateOf(0), c1.StateOf(0))
	}
}

func TestWriteInvalidatesPeer(t *testing.T) {
	_, c0, c1, _, _ := twoCaches(t)
	c0.Load(64)
	c1.Load(64)
	cost := c1.Store(64, 7)
	if cost != CostUpgrade {
		t.Errorf("S->M cost = %v, want CostUpgrade", cost)
	}
	if c0.StateOf(64) != Invalid {
		t.Errorf("peer state = %v, want I", c0.StateOf(64))
	}
	if c1.StateOf(64) != Modified {
		t.Errorf("writer state = %v, want M", c1.StateOf(64))
	}
	// c0 reloading sees the new value via cache-to-cache transfer.
	v, cost := c0.Load(64)
	if v != 7 {
		t.Errorf("reload = %d, want 7", v)
	}
	if cost != CostMissC2C {
		t.Errorf("reload cost = %v, want CostMissC2C", cost)
	}
	// Snooped M line downgraded to S and memory updated.
	if c1.StateOf(64) != Shared {
		t.Errorf("downgraded state = %v, want S", c1.StateOf(64))
	}
}

func TestSilentEToMUpgrade(t *testing.T) {
	bus, c0, _, _, _ := twoCaches(t)
	c0.Load(256) // E
	before := bus.Stats().BusUpgr
	if cost := c0.Store(256, 1); cost != CostHit {
		t.Errorf("E->M store cost = %v, want CostHit", cost)
	}
	if bus.Stats().BusUpgr != before {
		t.Error("E->M upgrade generated bus traffic")
	}
	if c0.StateOf(256) != Modified {
		t.Errorf("state = %v, want M", c0.StateOf(256))
	}
}

func TestWriteMissInvalidatesModifiedPeer(t *testing.T) {
	bus, c0, c1, _, _ := twoCaches(t)
	c0.Store(512, 11) // c0 M
	_, cost := c1.RMW(512, func(old uint64) uint64 { return old + 1 })
	if cost != CostMissC2C {
		t.Errorf("RMW miss cost = %v, want CostMissC2C (peer had M)", cost)
	}
	if c0.StateOf(512) != Invalid {
		t.Errorf("peer state = %v, want I", c0.StateOf(512))
	}
	v, _ := c1.Load(512)
	if v != 12 {
		t.Errorf("value = %d, want 12", v)
	}
	// Memory also received the writeback from the snooped M line.
	if got := bus.Memory().Load(512); got != 11 {
		t.Errorf("memory = %d, want 11 (writeback of pre-RMW data)", got)
	}
}

func TestRMWAtomicAndListenerSeesReadWrite(t *testing.T) {
	_, c0, _, l0, _ := twoCaches(t)
	old, _ := c0.RMW(64, func(o uint64) uint64 { return o + 5 })
	if old != 0 {
		t.Errorf("old = %d, want 0", old)
	}
	if len(l0.accesses) != 2 || l0.accesses[0].write || !l0.accesses[1].write {
		t.Errorf("listener accesses = %+v, want read then write", l0.accesses)
	}
	if l0.accesses[0].line != LineOf(64) {
		t.Errorf("access line = %d, want %d", l0.accesses[0].line, LineOf(64))
	}
}

func TestSnoopAckCarriesClock(t *testing.T) {
	_, c0, c1, _, l1 := twoCaches(t)
	l1.clock = 77
	c0.Load(0) // snoops c1, which acks 77
	if len(l1.snoops) != 1 || l1.snoops[0].exclusive {
		t.Fatalf("snoops = %+v, want one non-exclusive", l1.snoops)
	}
	// Requester received the max ack.
	_, _, _, _ = c0, c1, l1, t
	l0acks := c0.listener.(*recListener).acks
	if len(l0acks) != 1 || l0acks[0] != 77 {
		t.Errorf("requester acks = %v, want [77]", l0acks)
	}
}

func TestEverySnooperAcksEvenWithoutLine(t *testing.T) {
	// Clock propagation must not depend on residency: c1 never touched
	// the line but still sees the snoop.
	_, c0, _, _, l1 := twoCaches(t)
	c0.Store(4096, 1)
	if len(l1.snoops) != 1 || !l1.snoops[0].exclusive {
		t.Errorf("snoops = %+v, want one exclusive snoop on non-resident cache", l1.snoops)
	}
}

func TestEvictionWritebackAndNotification(t *testing.T) {
	m := mem.New(1 << 22)
	bus := NewBus(m)
	l := &recListener{}
	// Tiny cache: 2 sets x 1 way; lines 0 and 2 collide in set 0.
	c := New(Config{Sets: 2, Ways: 1}, bus, l)
	c.Store(0, 99)            // line 0 M in set 0
	c.Load(2 * LineSize)      // line 2 -> set 0, evicts line 0
	if len(l.evicts) != 1 || !l.evicts[0].dirty || l.evicts[0].line != 0 {
		t.Fatalf("evicts = %+v, want one dirty eviction of line 0", l.evicts)
	}
	if got := m.Load(0); got != 99 {
		t.Errorf("memory after writeback = %d, want 99", got)
	}
	// Reload sees the written value.
	v, _ := c.Load(0)
	if v != 99 {
		t.Errorf("reload = %d, want 99", v)
	}
}

func TestCleanEvictionNotDirty(t *testing.T) {
	bus := NewBus(mem.New(1 << 22))
	l := &recListener{}
	c := New(Config{Sets: 2, Ways: 1}, bus, l)
	c.Load(0)
	c.Load(2 * LineSize)
	if len(l.evicts) != 1 || l.evicts[0].dirty {
		t.Fatalf("evicts = %+v, want one clean eviction", l.evicts)
	}
}

func TestLRUVictimSelection(t *testing.T) {
	bus := NewBus(mem.New(1 << 22))
	l := &recListener{}
	c := New(Config{Sets: 1, Ways: 2}, bus, l)
	c.Load(0 * LineSize)
	c.Load(1 * LineSize)
	c.Load(0 * LineSize) // touch line 0; line 1 is now LRU
	c.Load(2 * LineSize) // evicts line 1
	if len(l.evicts) != 1 || l.evicts[0].line != 1 {
		t.Fatalf("evicts = %+v, want eviction of line 1", l.evicts)
	}
	if c.StateOf(0) == Invalid {
		t.Error("MRU line was evicted")
	}
}

func TestFlushAll(t *testing.T) {
	bus, c0, c1, _, _ := twoCaches(t)
	c0.Store(0, 5)
	c1.Store(4096, 6)
	bus.FlushAll()
	if bus.Memory().Load(0) != 5 || bus.Memory().Load(4096) != 6 {
		t.Error("FlushAll did not write back dirty data")
	}
	if c0.StateOf(0) != Invalid || c1.StateOf(4096) != Invalid {
		t.Error("FlushAll left lines valid")
	}
}

func TestStatsCounting(t *testing.T) {
	bus, c0, c1, _, _ := twoCaches(t)
	c0.Load(0)     // miss
	c0.Load(0)     // hit
	c1.Load(0)     // miss (shared)
	c1.Store(0, 1) // upgrade
	s0, s1 := c0.Stats(), c1.Stats()
	if s0.Loads != 2 || s0.Hits != 1 || s0.Misses != 1 {
		t.Errorf("c0 stats = %+v", s0)
	}
	if s1.Upgrades != 1 || s1.Stores != 1 {
		t.Errorf("c1 stats = %+v", s1)
	}
	bs := bus.Stats()
	if bs.BusRd != 2 || bs.BusUpgr != 1 {
		t.Errorf("bus stats = %+v", bs)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	bus := NewBus(mem.New(1 << 10))
	for _, cfg := range []Config{{Sets: 0, Ways: 1}, {Sets: 3, Ways: 1}, {Sets: 2, Ways: 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(cfg, bus, nil)
		}()
	}
}

// TestCoherenceAgainstFlatMemory drives random loads/stores/RMWs from
// four caches and cross-checks every observed value against a flat
// reference memory. Any MESI protocol bug shows up as a value mismatch.
func TestCoherenceAgainstFlatMemory(t *testing.T) {
	const (
		ncores = 4
		nlines = 64
		ops    = 50000
	)
	m := mem.New(nlines * LineSize)
	ref := mem.New(nlines * LineSize)
	bus := NewBus(m)
	caches := make([]*Cache, ncores)
	for i := range caches {
		// Small caches force constant evictions and refills.
		caches[i] = New(Config{Sets: 4, Ways: 2}, bus, nil)
	}
	rng := rand.New(rand.NewSource(12345))
	for i := 0; i < ops; i++ {
		core := rng.Intn(ncores)
		addr := uint64(rng.Intn(nlines*8)) * 8
		switch rng.Intn(3) {
		case 0:
			got, _ := caches[core].Load(addr)
			if want := ref.Load(addr); got != want {
				t.Fatalf("op %d: core %d load [%#x] = %d, want %d", i, core, addr, got, want)
			}
		case 1:
			v := rng.Uint64()
			caches[core].Store(addr, v)
			ref.Store(addr, v)
		case 2:
			delta := uint64(rng.Intn(100))
			old, _ := caches[core].RMW(addr, func(o uint64) uint64 { return o + delta })
			refOld := ref.Load(addr)
			if old != refOld {
				t.Fatalf("op %d: core %d RMW [%#x] old = %d, want %d", i, core, addr, old, refOld)
			}
			ref.Store(addr, refOld+delta)
		}
	}
	bus.FlushAll()
	if !m.Equal(ref) {
		t.Fatal("final memory image diverged from reference")
	}
}

// TestSingleWriterInvariant checks the MESI invariant: at most one cache
// holds a line in M/E, and M/E excludes any other holder.
func TestSingleWriterInvariant(t *testing.T) {
	const ncores = 4
	m := mem.New(64 * LineSize)
	bus := NewBus(m)
	caches := make([]*Cache, ncores)
	for i := range caches {
		caches[i] = New(Config{Sets: 4, Ways: 2}, bus, nil)
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 20000; i++ {
		core := rng.Intn(ncores)
		addr := uint64(rng.Intn(64)) * LineSize
		if rng.Intn(2) == 0 {
			caches[core].Load(addr)
		} else {
			caches[core].Store(addr, uint64(i))
		}
		// Check the invariant on the touched line.
		owners, holders := 0, 0
		for _, c := range caches {
			switch c.StateOf(addr) {
			case Modified, Exclusive:
				owners++
				holders++
			case Shared:
				holders++
			}
		}
		if owners > 1 {
			t.Fatalf("op %d: %d exclusive owners of line %#x", i, owners, addr)
		}
		if owners == 1 && holders > 1 {
			t.Fatalf("op %d: exclusive owner coexists with %d holders", i, holders)
		}
	}
}

func TestStateString(t *testing.T) {
	names := map[State]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M", State(9): "?"}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("State(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestLineOf(t *testing.T) {
	if LineOf(0) != 0 || LineOf(63) != 0 || LineOf(64) != 1 || LineOf(130) != 2 {
		t.Error("LineOf arithmetic wrong")
	}
}
