// Package cache models the memory hierarchy of the QuickRec prototype:
// per-core set-associative write-back caches kept coherent with a MESI
// protocol over a snooping bus. Caches hold real data, so protocol bugs
// corrupt values and are caught by the test suite rather than hidden by a
// backing flat memory.
//
// The package exposes exactly the observation points the Memory Race
// Recorder needs:
//
//   - every local access (line address + read/write) after it completes;
//   - every remote bus transaction snooped by this cache, which the
//     listener acknowledges with its current Lamport clock — the
//     "timestamp piggybacking on coherence responses" of the paper;
//   - the maximum acknowledged clock delivered back to the requester;
//   - line evictions, which the prototype's recorder treats as a chunk
//     termination condition (its snoop filter would hide later conflicts).
//
// Every cache snoops and acknowledges every bus transaction, whether or
// not it holds the line. This models a broadcast bus and makes clock
// propagation cover dependencies that flow through memory (a line written
// long ago, evicted, then read by another core), which keeps the recorded
// chunk order sound without per-line timestamp metadata.
package cache

import "fmt"

// LineSize is the coherence granularity in bytes.
const LineSize = 64

// WordsPerLine is the number of 64-bit words in a cache line.
const WordsPerLine = LineSize / 8

// LineOf returns the cache-line number containing the byte address.
func LineOf(addr uint64) uint64 { return addr >> 6 }

// State is a MESI coherence state.
type State uint8

// MESI states.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// String returns the one-letter MESI name.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return "?"
}

// Cost classifies the latency of a completed access, consumed by the
// performance model.
type Cost uint8

// Access cost classes.
const (
	// CostHit: line present with sufficient permissions.
	CostHit Cost = iota
	// CostUpgrade: line present Shared, needed exclusive (bus upgrade).
	CostUpgrade
	// CostMissMem: miss filled from memory.
	CostMissMem
	// CostMissC2C: miss filled by a cache-to-cache transfer from a
	// Modified line in a peer cache.
	CostMissC2C
)

// Listener receives the coherence-visible events the recording hardware
// taps. Implementations must be deterministic; they run synchronously on
// the simulated bus.
type Listener interface {
	// OnLocalAccess fires after this core completes a data access to the
	// given line. An atomic read-modify-write fires twice: read, then
	// write.
	OnLocalAccess(line uint64, write bool)
	// OnSnoop fires when a remote core's transaction reaches this cache
	// (whether or not the line is resident). exclusive is true for
	// ownership-acquiring transactions (BusRdX/BusUpgr). The return value
	// is this core's current Lamport clock, piggybacked on the snoop
	// acknowledgement; the listener may terminate its chunk first.
	OnSnoop(line uint64, exclusive bool) (ackClock uint64)
	// OnEvict fires when this cache evicts a line (capacity or conflict).
	OnEvict(line uint64, dirty bool)
	// OnBusAck fires on the requesting core after a bus transaction
	// completes, carrying the maximum clock acknowledged by the snoopers.
	OnBusAck(maxClock uint64)
}

// NopListener ignores all events and acknowledges clock zero. Useful for
// running the machine with recording hardware absent.
type NopListener struct{}

// OnLocalAccess implements Listener.
func (NopListener) OnLocalAccess(uint64, bool) {}

// OnSnoop implements Listener.
func (NopListener) OnSnoop(uint64, bool) uint64 { return 0 }

// OnEvict implements Listener.
func (NopListener) OnEvict(uint64, bool) {}

// OnBusAck implements Listener.
func (NopListener) OnBusAck(uint64) {}

// Config sizes a private cache.
type Config struct {
	// Sets is the number of sets; must be a power of two.
	Sets int
	// Ways is the associativity.
	Ways int
}

// DefaultConfig mirrors the prototype's 32 KiB 4-way L1 data cache.
func DefaultConfig() Config { return Config{Sets: 128, Ways: 4} }

// SizeBytes returns the cache capacity in bytes.
func (c Config) SizeBytes() int { return c.Sets * c.Ways * LineSize }

type lineEntry struct {
	tag   uint64 // line number (addr >> 6)
	state State
	data  [WordsPerLine]uint64
	lru   uint64
}

// Stats counts cache-local events.
type Stats struct {
	Loads      uint64
	Stores     uint64
	Hits       uint64
	Misses     uint64
	Upgrades   uint64
	Evictions  uint64
	Writebacks uint64
}

// Cache is one core's private data cache.
type Cache struct {
	id       int
	cfg      Config
	sets     [][]lineEntry
	bus      *Bus
	listener Listener
	tick     uint64
	stats    Stats
}

// New creates a cache, attaches it to the bus, and wires its listener.
// Core i must create cache i in order; the bus assigns IDs sequentially.
func New(cfg Config, bus *Bus, l Listener) *Cache {
	if cfg.Sets <= 0 || cfg.Sets&(cfg.Sets-1) != 0 {
		panic("cache: Sets must be a positive power of two")
	}
	if cfg.Ways <= 0 {
		panic("cache: Ways must be positive")
	}
	if l == nil {
		l = NopListener{}
	}
	c := &Cache{cfg: cfg, listener: l}
	c.sets = make([][]lineEntry, cfg.Sets)
	for i := range c.sets {
		c.sets[i] = make([]lineEntry, cfg.Ways)
	}
	bus.attach(c)
	c.bus = bus
	return c
}

// ID returns the cache's bus index.
func (c *Cache) ID() int { return c.id }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) setIndex(line uint64) int { return int(line) & (c.cfg.Sets - 1) }

// lookup returns the entry holding line, or nil.
func (c *Cache) lookup(line uint64) *lineEntry {
	set := c.sets[c.setIndex(line)]
	for i := range set {
		if set[i].state != Invalid && set[i].tag == line {
			return &set[i]
		}
	}
	return nil
}

// victim returns the entry to fill for line: an invalid way if any,
// otherwise the LRU way (which is evicted).
func (c *Cache) victim(line uint64) *lineEntry {
	set := c.sets[c.setIndex(line)]
	var lru *lineEntry
	for i := range set {
		e := &set[i]
		if e.state == Invalid {
			return e
		}
		if lru == nil || e.lru < lru.lru {
			lru = e
		}
	}
	// Evict.
	dirty := lru.state == Modified
	c.stats.Evictions++
	if dirty {
		c.stats.Writebacks++
		c.bus.writeback(lru.tag, &lru.data)
	}
	c.listener.OnEvict(lru.tag, dirty)
	lru.state = Invalid
	return lru
}

func (c *Cache) touch(e *lineEntry) {
	c.tick++
	e.lru = c.tick
}

// Load reads the aligned 64-bit word at addr, filling the line if needed.
func (c *Cache) Load(addr uint64) (uint64, Cost) {
	line := LineOf(addr)
	word := (addr >> 3) & (WordsPerLine - 1)
	cost := CostHit
	e := c.lookup(line)
	if e == nil {
		data, supplied, maxAck := c.bus.busRd(c.id, line)
		e = c.victim(line)
		e.tag = line
		e.data = data
		if supplied.sharers > 0 {
			e.state = Shared
		} else {
			e.state = Exclusive
		}
		if supplied.fromCache {
			cost = CostMissC2C
		} else {
			cost = CostMissMem
		}
		c.stats.Misses++
		c.listener.OnBusAck(maxAck)
	} else {
		c.stats.Hits++
	}
	c.touch(e)
	c.stats.Loads++
	v := e.data[word]
	c.listener.OnLocalAccess(line, false)
	return v, cost
}

// Store writes the aligned 64-bit word at addr, acquiring ownership as
// needed.
func (c *Cache) Store(addr uint64, val uint64) Cost {
	e, cost := c.acquireExclusive(addr)
	word := (addr >> 3) & (WordsPerLine - 1)
	e.data[word] = val
	e.state = Modified
	c.touch(e)
	c.stats.Stores++
	c.listener.OnLocalAccess(LineOf(addr), true)
	return cost
}

// RMW atomically applies f to the word at addr and returns the old value.
// The line is acquired exclusively before the read, so the read and write
// are indivisible with respect to the bus; the listener sees a read
// access followed by a write access, mirroring how the MRR inserts atomic
// instructions into both signatures.
func (c *Cache) RMW(addr uint64, f func(old uint64) uint64) (uint64, Cost) {
	e, cost := c.acquireExclusive(addr)
	word := (addr >> 3) & (WordsPerLine - 1)
	old := e.data[word]
	e.data[word] = f(old)
	e.state = Modified
	c.touch(e)
	c.stats.Loads++
	c.stats.Stores++
	line := LineOf(addr)
	c.listener.OnLocalAccess(line, false)
	c.listener.OnLocalAccess(line, true)
	return old, cost
}

// acquireExclusive ensures the line is present in M or E state.
func (c *Cache) acquireExclusive(addr uint64) (*lineEntry, Cost) {
	line := LineOf(addr)
	e := c.lookup(line)
	switch {
	case e == nil:
		data, supplied, maxAck := c.bus.busRdX(c.id, line)
		e = c.victim(line)
		e.tag = line
		e.data = data
		e.state = Exclusive
		c.stats.Misses++
		c.listener.OnBusAck(maxAck)
		if supplied.fromCache {
			return e, CostMissC2C
		}
		return e, CostMissMem
	case e.state == Shared:
		maxAck := c.bus.busUpgr(c.id, line)
		e.state = Exclusive
		c.stats.Upgrades++
		c.listener.OnBusAck(maxAck)
		return e, CostUpgrade
	default: // Exclusive or Modified
		c.stats.Hits++
		return e, CostHit
	}
}

// snoop handles a remote transaction. It returns this cache's data if it
// held the line Modified, whether it held the line at all, and the
// listener's clock acknowledgement.
func (c *Cache) snoop(line uint64, exclusive bool) (had bool, hadM bool, data [WordsPerLine]uint64, ack uint64) {
	// The listener acks every transaction, resident line or not: this is
	// the broadcast-bus clock propagation the recorder relies on.
	ack = c.listener.OnSnoop(line, exclusive)
	e := c.lookup(line)
	if e == nil {
		return false, false, data, ack
	}
	had = true
	if e.state == Modified {
		hadM = true
		data = e.data
		// Fold the dirty data back to memory on any snoop; the requester
		// also receives it cache-to-cache.
		c.bus.writeback(line, &e.data)
		c.stats.Writebacks++
	}
	if exclusive {
		e.state = Invalid
	} else if e.state == Modified || e.state == Exclusive {
		e.state = Shared
	}
	return had, hadM, data, ack
}

// FlushAll writes back every dirty line and invalidates the cache. Used
// at end of run so the memory image is architecturally complete, and by
// tests.
func (c *Cache) FlushAll() {
	for si := range c.sets {
		for wi := range c.sets[si] {
			e := &c.sets[si][wi]
			if e.state == Modified {
				c.bus.writeback(e.tag, &e.data)
				c.stats.Writebacks++
			}
			e.state = Invalid
		}
	}
}

// WriteDirtyTo overlays this cache's Modified lines onto m without
// disturbing cache state — used to materialise an architecturally
// complete memory image (checkpoints) mid-run.
func (c *Cache) WriteDirtyTo(m interface {
	Store(addr uint64, v uint64)
}) {
	for si := range c.sets {
		for wi := range c.sets[si] {
			e := &c.sets[si][wi]
			if e.state != Modified {
				continue
			}
			base := e.tag * LineSize
			for w := 0; w < WordsPerLine; w++ {
				m.Store(base+uint64(w)*8, e.data[w])
			}
		}
	}
}

// StateOf reports the MESI state this cache holds for the line containing
// addr (Invalid when absent). For tests and inspection.
func (c *Cache) StateOf(addr uint64) State {
	if e := c.lookup(LineOf(addr)); e != nil {
		return e.state
	}
	return Invalid
}

// String summarises the cache for diagnostics.
func (c *Cache) String() string {
	return fmt.Sprintf("cache%d(%d sets x %d ways, %d B)", c.id, c.cfg.Sets, c.cfg.Ways, c.cfg.SizeBytes())
}
