package cache

import "repro/internal/mem"

// BusStats counts bus transactions by type.
type BusStats struct {
	BusRd      uint64
	BusRdX     uint64
	BusUpgr    uint64
	Writebacks uint64
	// CacheToCache counts misses served by a peer's Modified line.
	CacheToCache uint64
}

// supplyInfo describes how a miss was filled.
type supplyInfo struct {
	sharers   int  // peer caches still holding the line after the snoop
	fromCache bool // data came from a peer's Modified copy
}

// Bus is the snooping interconnect: it broadcasts each transaction to
// every cache except the requester (in deterministic core order), merges
// their clock acknowledgements, and falls back to memory for data.
type Bus struct {
	mem    *mem.Memory
	caches []*Cache
	stats  BusStats
}

// NewBus returns a bus backed by the given memory.
func NewBus(m *mem.Memory) *Bus { return &Bus{mem: m} }

// Memory returns the backing memory (the architectural home of all data).
func (b *Bus) Memory() *mem.Memory { return b.mem }

// Stats returns a copy of the transaction counters.
func (b *Bus) Stats() BusStats { return b.stats }

func (b *Bus) attach(c *Cache) {
	c.id = len(b.caches)
	b.caches = append(b.caches, c)
}

// readLineFromMem loads a full line image from memory.
func (b *Bus) readLineFromMem(line uint64) (data [WordsPerLine]uint64) {
	base := line * LineSize
	for i := 0; i < WordsPerLine; i++ {
		data[i] = b.mem.Load(base + uint64(i)*8)
	}
	return data
}

// writeback stores a full line image to memory.
func (b *Bus) writeback(line uint64, data *[WordsPerLine]uint64) {
	b.stats.Writebacks++
	base := line * LineSize
	for i := 0; i < WordsPerLine; i++ {
		b.mem.Store(base+uint64(i)*8, data[i])
	}
}

// broadcast snoops all peers and returns merged results.
func (b *Bus) broadcast(requester int, line uint64, exclusive bool) (sup supplyInfo, data [WordsPerLine]uint64, maxAck uint64) {
	for _, c := range b.caches {
		if c.id == requester {
			continue
		}
		had, hadM, d, ack := c.snoop(line, exclusive)
		if ack > maxAck {
			maxAck = ack
		}
		if hadM {
			sup.fromCache = true
			data = d
		}
		if had && !exclusive {
			sup.sharers++
		}
	}
	return sup, data, maxAck
}

// busRd serves a read miss: returns the line data, how it was supplied,
// and the maximum snoop-acknowledged clock.
func (b *Bus) busRd(requester int, line uint64) ([WordsPerLine]uint64, supplyInfo, uint64) {
	b.stats.BusRd++
	sup, data, maxAck := b.broadcast(requester, line, false)
	if sup.fromCache {
		b.stats.CacheToCache++
		return data, sup, maxAck
	}
	return b.readLineFromMem(line), sup, maxAck
}

// busRdX serves a write miss: invalidates all peers, returns the data.
func (b *Bus) busRdX(requester int, line uint64) ([WordsPerLine]uint64, supplyInfo, uint64) {
	b.stats.BusRdX++
	sup, data, maxAck := b.broadcast(requester, line, true)
	if sup.fromCache {
		b.stats.CacheToCache++
		return data, sup, maxAck
	}
	return b.readLineFromMem(line), sup, maxAck
}

// busUpgr invalidates peers' Shared copies so the requester can write its
// already-resident line.
func (b *Bus) busUpgr(requester int, line uint64) uint64 {
	b.stats.BusUpgr++
	_, _, maxAck := b.broadcast(requester, line, true)
	return maxAck
}

// FlushAll writes back every cache's dirty lines (deterministic order) so
// memory holds the complete architectural image.
func (b *Bus) FlushAll() {
	for _, c := range b.caches {
		c.FlushAll()
	}
}

// SnapshotMemory returns a copy of the architectural memory image —
// backing memory overlaid with every cache's dirty lines — without
// disturbing any cache state. Used for flight-recorder checkpoints.
func (b *Bus) SnapshotMemory() *mem.Memory {
	snap := b.mem.Snapshot()
	for _, c := range b.caches {
		c.WriteDirtyTo(snap)
	}
	return snap
}
