package segment_test

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/capo"
	"repro/internal/chunk"
	"repro/internal/isa"
	"repro/internal/segment"
)

// sinkManifest is the two-thread manifest the misuse and aliasing tests
// open their streams with.
func sinkManifest() segment.Manifest {
	return segment.Manifest{
		ProgramName: "misuse", Threads: 2, StackWordsPerThread: 32,
		EncodingID: chunk.DeltaID, FlushEveryChunks: 4,
	}
}

func sinkCommit(epoch uint64) segment.Commit {
	return segment.Commit{
		Epoch:      epoch,
		Watermark:  []uint64{10, 10},
		Exited:     []bool{false, false},
		ChunkCount: []int{1, 0},
		InputCount: []int{1, 0},
	}
}

func sinkCheckpoint() *segment.CheckpointPayload {
	return &segment.CheckpointPayload{
		RetiredAt: 42,
		MemImage:  []byte{1, 2, 3, 4, 5, 6, 7, 8},
		Contexts:  []isa.Context{{PC: 1, Retired: 5}, {PC: 2, Retired: 5}},
		Exited:    []bool{false, false},
		SigRegs:   make([][isa.NumRegs]uint64, 2),
		SigPC:     []int{0, 0},
		ChunkPos:  []int{1, 0},
		InputPos:  1,
	}
}

func sinkFinal() *segment.FinalPayload {
	return &segment.FinalPayload{
		MemChecksum:      7,
		Output:           []byte("out"),
		FinalContexts:    []isa.Context{{PC: 1, Retired: 9, Halted: true}, {PC: 2, Retired: 9, Halted: true}},
		RetiredPerThread: []uint64{9, 9},
	}
}

// writeValidStream drives one complete, well-formed session into the
// sink: manifest, one epoch, a checkpoint, and the final state.
func writeValidStream(s segment.Sink) {
	s.WriteManifest(sinkManifest())
	s.WriteCommit(sinkCommit(0))
	s.WriteChunkBatch(0, []chunk.Entry{{Size: 3, TS: 5, Reason: chunk.ReasonFlush}})
	s.WriteInputBatch([]capo.Record{{Kind: capo.KindSyscall, Thread: 0, TS: 6, Sysno: 7, Ret: 1, Data: []byte{9}}})
	s.WriteCheckpoint(sinkCheckpoint())
	s.WriteFinal(sinkFinal())
}

// TestSinkMisuseOrdering sweeps out-of-order and post-Close call
// sequences over both Sink implementations and requires the same sticky
// usage error from each. Before the Writer grew a closed state, every
// "after close" row passed silently on it — the recorder could keep
// appending segments to a stream whose lifecycle had ended.
func TestSinkMisuseOrdering(t *testing.T) {
	sinks := []struct {
		name string
		make func() segment.Sink
	}{
		{"Writer", func() segment.Sink { return segment.NewWriter(io.Discard) }},
		{"WindowWriter", func() segment.Sink { return segment.NewWindowWriter(io.Discard, 2) }},
	}
	cases := []struct {
		name string
		run  func(s segment.Sink)
		// closed rows must report ErrClosed specifically; the rest any
		// sticky usage error.
		wantClosed bool
	}{
		{"commit before manifest", func(s segment.Sink) { s.WriteCommit(sinkCommit(0)) }, false},
		{"chunk batch before manifest", func(s segment.Sink) {
			s.WriteChunkBatch(0, []chunk.Entry{{Size: 1, TS: 1}})
		}, false},
		{"input batch before manifest", func(s segment.Sink) {
			s.WriteInputBatch([]capo.Record{{Kind: capo.KindSyscall, Thread: 0, TS: 1}})
		}, false},
		{"checkpoint before manifest", func(s segment.Sink) { s.WriteCheckpoint(sinkCheckpoint()) }, false},
		{"final before manifest", func(s segment.Sink) { s.WriteFinal(sinkFinal()) }, false},
		{"duplicate manifest", func(s segment.Sink) {
			s.WriteManifest(sinkManifest())
			s.WriteManifest(sinkManifest())
		}, false},
		{"checkpoint arity mismatch", func(s segment.Sink) {
			s.WriteManifest(sinkManifest())
			cp := sinkCheckpoint()
			cp.ChunkPos = []int{1}
			s.WriteCheckpoint(cp)
		}, false},
		{"manifest after close", func(s segment.Sink) {
			writeValidStream(s)
			s.Close()
			s.WriteManifest(sinkManifest())
		}, true},
		{"commit after close", func(s segment.Sink) {
			writeValidStream(s)
			s.Close()
			s.WriteCommit(sinkCommit(1))
		}, true},
		{"chunk batch after close", func(s segment.Sink) {
			writeValidStream(s)
			s.Close()
			s.WriteChunkBatch(0, []chunk.Entry{{Size: 1, TS: 20}})
		}, true},
		{"input batch after close", func(s segment.Sink) {
			writeValidStream(s)
			s.Close()
			s.WriteInputBatch([]capo.Record{{Kind: capo.KindSyscall, Thread: 0, TS: 21}})
		}, true},
		{"checkpoint after close", func(s segment.Sink) {
			writeValidStream(s)
			s.Close()
			s.WriteCheckpoint(sinkCheckpoint())
		}, true},
		{"final after close", func(s segment.Sink) {
			writeValidStream(s)
			s.Close()
			s.WriteFinal(sinkFinal())
		}, true},
	}
	for _, sk := range sinks {
		for _, tc := range cases {
			t.Run(sk.name+"/"+tc.name, func(t *testing.T) {
				s := sk.make()
				tc.run(s)
				err := s.Err()
				if err == nil {
					t.Fatalf("%s accepted silently", tc.name)
				}
				if tc.wantClosed && !errors.Is(err, segment.ErrClosed) {
					t.Fatalf("error %v, want ErrClosed", err)
				}
				// The violation must be sticky: a later, otherwise-legal
				// write keeps reporting the first error.
				before := err.Error()
				s.WriteCommit(sinkCommit(9))
				if got := s.Err(); got == nil || got.Error() != before {
					t.Fatalf("usage error not sticky: had %q, then %v", before, got)
				}
			})
		}
	}
}

// TestWriterWriteAfterCloseEmitsNothing pins the byte-level consequence
// of the closed guard: segments written after Close never reach the
// underlying stream.
func TestWriterWriteAfterCloseEmitsNothing(t *testing.T) {
	var buf bytes.Buffer
	w := segment.NewWriter(&buf)
	writeValidStream(w)
	if err := w.Close(); err != nil {
		t.Fatalf("clean close: %v", err)
	}
	mark := buf.Len()
	segs := w.Segments()
	w.WriteCommit(sinkCommit(1))
	w.WriteChunkBatch(0, []chunk.Entry{{Size: 1, TS: 30}})
	if buf.Len() != mark {
		t.Fatalf("closed writer appended %d bytes to the stream", buf.Len()-mark)
	}
	if w.Segments() != segs {
		t.Fatalf("closed writer advanced segment count %d -> %d", segs, w.Segments())
	}
	if !errors.Is(w.Err(), segment.ErrClosed) {
		t.Fatalf("error %v, want ErrClosed", w.Err())
	}
	if !strings.Contains(w.Err().Error(), "Close") {
		t.Fatalf("error %q does not mention Close", w.Err())
	}
}

// TestWindowWriterCloseIdempotent pins that the guard did not break the
// windowed sink's documented Close idempotence.
func TestWindowWriterCloseIdempotent(t *testing.T) {
	var buf bytes.Buffer
	w := segment.NewWindowWriter(&buf, 2)
	writeValidStream(w)
	if err := w.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	n := buf.Len()
	if err := w.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if buf.Len() != n {
		t.Fatalf("second close re-rendered the window (%d -> %d bytes)", n, buf.Len())
	}
}
