package segment_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/chunk"
	"repro/internal/segment"
)

// corpusWindow renders a windowed stream — k-interval retention over n
// checkpoints of the synthetic session — for seeding the fuzzer.
func corpusWindow(k, n int, seed uint64) []byte {
	var bufU, bufW bytes.Buffer
	wu := segment.NewWriter(&bufU)
	ww := segment.NewWindowWriter(&bufW, k)
	synthesize(seed, n, &bufU, wu, ww)
	if err := wu.Close(); err != nil {
		panic(err)
	}
	if err := ww.Close(); err != nil {
		panic(err)
	}
	return bufW.Bytes()
}

// FuzzWindowedStream feeds mutated flight-recorder window dumps to the
// salvage scanner. Whatever the bytes, salvage must not panic and must
// either fail with a typed ErrTruncated/ErrCorrupt error or produce a
// valid window: a reported base checkpoint really present with its log
// positions rebased to zero, complete streams acceptable to the strict
// decoder, and a second salvage pass reproducing the first (recovery
// must be idempotent or a re-run could change the replayed execution).
func FuzzWindowedStream(f *testing.F) {
	evicted := corpusWindow(2, 5, 1) // base checkpoint present
	f.Add(evicted)
	f.Add(corpusWindow(8, 2, 2))    // nothing evicted: genesis window
	f.Add(corpusWindow(1, 6, 3))    // tightest ring
	f.Add(evicted[:len(evicted)-7]) // torn mid-final (open-interval crash)
	offs := segment.Offsets(evicted)
	if len(offs) > 2 {
		flip := append([]byte(nil), evicted...)
		flip[offs[0]+(offs[1]-offs[0])/2] ^= 0x10 // corrupt the base checkpoint
		f.Add(flip)
		f.Add(evicted[:offs[0]]) // manifest only: base lost
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		st, rep, err := segment.Salvage(data)
		if err != nil {
			if !errors.Is(err, chunk.ErrTruncated) && !errors.Is(err, chunk.ErrCorrupt) {
				t.Fatalf("untyped salvage error: %v", err)
			}
			return
		}
		if rep.HasBase {
			if st.Base == nil {
				t.Fatal("report claims a window base but the stream has none")
			}
			for th, pos := range st.Base.ChunkPos {
				if pos != 0 {
					t.Fatalf("window base chunk pos[%d] = %d, want 0", th, pos)
				}
			}
			if st.Base.InputPos != 0 {
				t.Fatalf("window base input pos = %d, want 0", st.Base.InputPos)
			}
			if len(st.Checkpoints) > 0 && st.Checkpoints[0] != st.Base {
				t.Fatal("window base does not alias the first surviving checkpoint")
			}
		} else if st.Base != nil {
			t.Fatal("stream carries a base the report does not claim")
		}
		if rep.Window == 0 && rep.HasBase {
			t.Fatal("base checkpoint on an un-windowed stream")
		}
		if rep.Complete {
			if _, err := segment.Decode(data[:rep.BytesKept]); err != nil {
				t.Fatalf("complete windowed salvage rejected by strict decode: %v", err)
			}
		}
		again, rep2, err := segment.Salvage(data[:rep.BytesKept])
		if err != nil {
			t.Fatalf("re-salvage of kept window prefix failed: %v", err)
		}
		if rep2.BytesKept != rep.BytesKept || rep2.HasBase != rep.HasBase {
			t.Fatalf("re-salvage diverged: kept %d/%d bytes, base %v/%v",
				rep2.BytesKept, rep.BytesKept, rep2.HasBase, rep.HasBase)
		}
		for th := range st.ChunkLogs {
			if again.ChunkLogs[th].Len() != st.ChunkLogs[th].Len() {
				t.Fatalf("re-salvage changed thread %d entry count", th)
			}
		}
		if again.InputLog.Len() != st.InputLog.Len() {
			t.Fatal("re-salvage changed input count")
		}
	})
}

// TestWindowFuzzCorpus regenerates the checked-in corpus under
// testdata/fuzz/FuzzWindowedStream when REGEN_CORPUS=1 is set; otherwise
// it only checks the seeds are present and well-formed.
func TestWindowFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzWindowedStream")
	evicted := corpusWindow(2, 5, 1)
	offs := segment.Offsets(evicted)
	flip := append([]byte(nil), evicted...)
	flip[offs[0]+(offs[1]-offs[0])/2] ^= 0x10
	seeds := map[string][]byte{
		"seed-evicted-window": evicted,
		"seed-genesis-window": corpusWindow(8, 2, 2),
		"seed-tight-ring":     corpusWindow(1, 6, 3),
		"seed-torn-open":      evicted[:len(evicted)-7],
		"seed-corrupt-base":   flip,
		"seed-base-lost":      evicted[:offs[0]],
	}
	if os.Getenv("REGEN_CORPUS") == "1" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, data := range seeds {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
			if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	for name := range seeds {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("corpus seed missing (run with REGEN_CORPUS=1 to regenerate): %v", err)
		}
	}
}
