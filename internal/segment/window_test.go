package segment_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/capo"
	"repro/internal/chunk"
	"repro/internal/isa"
	"repro/internal/segment"
)

// The retention oracle: drive a WindowWriter and an unbounded Writer
// with the same randomized write sequence (epoch and checkpoint cadences
// drawn from a seeded RNG) and check the window against first
// principles — exactly the last min(K, n) checkpoints survive a clean
// close, the retained logs are exactly the epochs of the retained
// intervals, the rendered window decodes strictly, and its size is
// bounded by the unbounded stream's tail from the base checkpoint on
// (rebasing only ever shrinks varints).

type windowRNG struct{ s uint64 }

func (r *windowRNG) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *windowRNG) pick(n int) int { return int(r.next() % uint64(n)) }

// synthInterval is the oracle's ground truth for one checkpoint
// interval: the anchor that opened it (nil for genesis) and the log
// items its epochs carried.
type synthInterval struct {
	anchor  *segment.CheckpointPayload
	entries [2][]chunk.Entry
	recs    []capo.Record
}

// synthesize writes the same randomized session into both sinks and
// returns the ground-truth intervals plus the unbounded stream's byte
// offset at each checkpoint write.
func synthesize(seed uint64, nCheckpoints int, bufU *bytes.Buffer, wu *segment.Writer, ww *segment.WindowWriter) ([]synthInterval, []int) {
	rng := &windowRNG{s: seed*2654435761 + 1}
	man := segment.Manifest{
		ProgramName: "synth", Threads: 2, StackWordsPerThread: 32,
		EncodingID: chunk.DeltaID, FlushEveryChunks: 4,
	}
	wu.WriteManifest(man)
	ww.WriteManifest(man)

	var (
		ts        uint64 = 1
		pos       [2]int
		inputs    int
		seq       [2]int
		epoch     uint64
		intervals = []synthInterval{{}}
		ckptOffs  []int
	)
	writeEpoch := func() {
		cur := &intervals[len(intervals)-1]
		var batch [2][]chunk.Entry
		for t := 0; t < 2; t++ {
			for i, n := 0, rng.pick(3); i < n; i++ {
				batch[t] = append(batch[t], chunk.Entry{
					Size: uint64(1 + rng.pick(9)), TS: ts, Reason: chunk.ReasonFlush,
				})
				ts += uint64(1 + rng.pick(3))
			}
		}
		var recs []capo.Record
		if rng.pick(2) == 0 {
			th := rng.pick(2)
			recs = append(recs, capo.Record{
				Kind: capo.KindSyscall, Thread: th, Seq: seq[th], TS: ts,
				Sysno: 7, Ret: rng.next() % 1000, Data: []byte{byte(rng.pick(256))},
			})
			seq[th]++
			ts++
		}
		if len(batch[0])+len(batch[1])+len(recs) == 0 {
			return // nothing flushed, no epoch
		}
		c := segment.Commit{
			Epoch:      epoch,
			Watermark:  []uint64{ts, ts},
			Exited:     []bool{false, false},
			ChunkCount: []int{len(batch[0]), len(batch[1])},
			InputCount: []int{0, 0},
		}
		for _, r := range recs {
			c.InputCount[r.Thread]++
		}
		epoch++
		wu.WriteCommit(c)
		ww.WriteCommit(c)
		for t := 0; t < 2; t++ {
			if len(batch[t]) == 0 {
				continue
			}
			wu.WriteChunkBatch(t, batch[t])
			ww.WriteChunkBatch(t, batch[t])
			cur.entries[t] = append(cur.entries[t], batch[t]...)
			pos[t] += len(batch[t])
		}
		if len(recs) > 0 {
			wu.WriteInputBatch(recs)
			ww.WriteInputBatch(recs)
			cur.recs = append(cur.recs, recs...)
			inputs += len(recs)
		}
	}

	for ck := 0; ck < nCheckpoints; ck++ {
		for i, n := 0, 1+rng.pick(3); i < n; i++ {
			writeEpoch()
		}
		cp := &segment.CheckpointPayload{
			RetiredAt: ts * 10,
			MemImage:  []byte{1, 2, 3, 4, 5, 6, 7, 8},
			Contexts:  []isa.Context{{PC: 1, Retired: ts}, {PC: 2, Retired: ts}},
			Exited:    []bool{false, false},
			SigRegs:   make([][isa.NumRegs]uint64, 2),
			SigPC:     []int{0, 0},
			ChunkPos:  []int{pos[0], pos[1]},
			InputPos:  inputs,
		}
		ckptOffs = append(ckptOffs, bufU.Len())
		wu.WriteCheckpoint(cp)
		ww.WriteCheckpoint(cp)
		intervals = append(intervals, synthInterval{anchor: cp})
	}
	for i, n := 0, rng.pick(3); i < n; i++ {
		writeEpoch() // open-interval epochs after the last checkpoint
	}
	fin := &segment.FinalPayload{
		MemChecksum:      ts,
		Output:           []byte("done"),
		FinalContexts:    []isa.Context{{PC: 1, Retired: ts, Halted: true}, {PC: 2, Retired: ts, Halted: true}},
		RetiredPerThread: []uint64{ts, ts},
	}
	wu.WriteFinal(fin)
	ww.WriteFinal(fin)
	return intervals, ckptOffs
}

func TestWindowRetentionOracle(t *testing.T) {
	const nCheckpoints = 10
	for _, k := range []int{1, 2, 3, 8, 16} {
		for seed := uint64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("K=%d/seed=%d", k, seed), func(t *testing.T) {
				var bufU, bufW bytes.Buffer
				wu := segment.NewWriter(&bufU)
				ww := segment.NewWindowWriter(&bufW, k)
				intervals, ckptOffs := synthesize(seed, nCheckpoints, &bufU, wu, ww)
				if err := wu.Close(); err != nil {
					t.Fatalf("unbounded close: %v", err)
				}
				if err := ww.Close(); err != nil {
					t.Fatalf("window close: %v", err)
				}

				retained := nCheckpoints
				if k < retained {
					retained = k
				}
				base := nCheckpoints - retained // anchor index of the window base
				evicted := base > 0
				if got := ww.Evicted(); got != evicted {
					t.Fatalf("Evicted() = %v, want %v", got, evicted)
				}

				st, rep, err := segment.Salvage(bufW.Bytes())
				if err != nil {
					t.Fatalf("salvage of clean window: %v", err)
				}
				if !rep.Complete {
					t.Fatalf("clean window not complete: %s", rep)
				}
				if rep.Window != uint64(k) {
					t.Fatalf("salvaged window K=%d, want %d", rep.Window, k)
				}
				if rep.HasBase != evicted {
					t.Fatalf("HasBase=%v, want %v", rep.HasBase, evicted)
				}

				// Exactly the last min(K, n) checkpoints survive, in order.
				if got := len(st.Checkpoints); got != retained {
					t.Fatalf("%d checkpoints survive, want %d", got, retained)
				}
				for i, cp := range st.Checkpoints {
					want := intervals[base+1+i].anchor
					if cp.RetiredAt != want.RetiredAt {
						t.Fatalf("checkpoint %d at %d retired, want %d (not the last %d checkpoints)",
							i, cp.RetiredAt, want.RetiredAt, retained)
					}
				}
				if evicted {
					if st.Base == nil {
						t.Fatal("evicted window salvaged without a base checkpoint")
					}
					for t2, p := range st.Base.ChunkPos {
						if p != 0 {
							t.Fatalf("base chunk pos[%d] = %d, want 0", t2, p)
						}
					}
					if st.Base.InputPos != 0 {
						t.Fatalf("base input pos = %d, want 0", st.Base.InputPos)
					}
				} else if st.Base != nil {
					t.Fatal("un-evicted window reports a base checkpoint")
				}

				// The retained logs are exactly the retained intervals'
				// epochs. When nothing was evicted the genesis interval
				// (program start to the first checkpoint) survives too.
				first := base + 1
				if !evicted {
					first = 0
				}
				var wantEntries [2][]chunk.Entry
				var wantRecs []capo.Record
				for _, iv := range intervals[first:] {
					for t2 := 0; t2 < 2; t2++ {
						wantEntries[t2] = append(wantEntries[t2], iv.entries[t2]...)
					}
					wantRecs = append(wantRecs, iv.recs...)
				}
				for t2 := 0; t2 < 2; t2++ {
					if got := st.ChunkLogs[t2].Entries; len(got) != len(wantEntries[t2]) {
						t.Fatalf("thread %d: %d entries retained, want %d", t2, len(got), len(wantEntries[t2]))
					} else {
						for i, e := range got {
							if e != wantEntries[t2][i] {
								t.Fatalf("thread %d entry %d: %+v, want %+v", t2, i, e, wantEntries[t2][i])
							}
						}
					}
				}
				if st.InputLog.Len() != len(wantRecs) {
					t.Fatalf("%d input records retained, want %d", st.InputLog.Len(), len(wantRecs))
				}
				for i, r := range st.InputLog.Records {
					if r.String() != wantRecs[i].String() {
						t.Fatalf("input record %d: %s, want %s", i, r.String(), wantRecs[i].String())
					}
				}
				// Rebased checkpoint positions index the retained logs.
				last := st.Checkpoints[len(st.Checkpoints)-1]
				for t2, p := range last.ChunkPos {
					if p < 0 || p > st.ChunkLogs[t2].Len() {
						t.Fatalf("last checkpoint chunk pos[%d] = %d outside retained log (%d)",
							t2, p, st.ChunkLogs[t2].Len())
					}
				}

				// Strict decode accepts the rendered window.
				if _, err := segment.Decode(bufW.Bytes()); err != nil {
					t.Fatalf("strict decode of clean window: %v", err)
				}

				// Bytes on disk are bounded by the unbounded stream's tail
				// from the base checkpoint (plus the manifest and a little
				// slack for its window fields): rebasing only shrinks.
				manEnd := segment.Offsets(bufU.Bytes())[0]
				bound := bufU.Len() + manEnd + 32
				if evicted {
					bound = manEnd + (bufU.Len() - ckptOffs[base]) + 32
					if bufW.Len() >= bufU.Len() {
						t.Errorf("evicted window is %d bytes, unbounded stream only %d", bufW.Len(), bufU.Len())
					}
				}
				if bufW.Len() > bound {
					t.Errorf("window is %d bytes, bound is %d", bufW.Len(), bound)
				}
			})
		}
	}
}

// TestWindowWriterValidation pins the windowed sink's usage errors.
func TestWindowWriterValidation(t *testing.T) {
	if err := segment.NewWindowWriter(nil, 0).Err(); err == nil {
		t.Error("K=0 window accepted")
	}
	w := segment.NewWindowWriter(nil, 2)
	w.WriteCommit(segment.Commit{})
	if w.Err() == nil {
		t.Error("commit before manifest accepted")
	}
	w = segment.NewWindowWriter(nil, 2)
	w.WriteManifest(segment.Manifest{ProgramName: "x", Threads: 1, EncodingID: chunk.DeltaID})
	w.WriteChunkBatch(0, []chunk.Entry{{Size: 1, TS: 1}})
	if w.Err() == nil {
		t.Error("chunk batch outside an epoch accepted")
	}
}
