package segment

import (
	"fmt"
	"hash/crc32"
	"math"
	"sort"

	"repro/internal/capo"
	"repro/internal/chunk"
	"repro/internal/wire"
)

// Stream is a decoded (possibly salvaged) segmented recording.
type Stream struct {
	// Manifest is the stream's opening metadata.
	Manifest Manifest
	// ChunkLogs holds thread t's retained chunk entries at index t.
	ChunkLogs []*chunk.Log
	// InputLog holds the retained input records in stream order.
	InputLog *capo.InputLog
	// Checkpoint is the last flight-recorder snapshot whose log
	// positions fall inside the retained prefix (nil if none survived).
	Checkpoint *CheckpointPayload
	// Checkpoints holds every surviving snapshot in stream order; the
	// last element aliases Checkpoint. Parallel replay partitions the
	// salvaged prefix at these points.
	Checkpoints []*CheckpointPayload
	// Final is the reference final state; non-nil iff the stream is
	// complete (ends with an intact Final segment).
	Final *FinalPayload
	// Base is the retention window's base checkpoint: the snapshot a
	// windowed stream's replay starts from once older intervals were
	// garbage-collected. Nil for unbounded streams and for windowed
	// streams that never evicted. When set it aliases Checkpoints[0]
	// and its log positions are zero (the retained logs start at it).
	Base *CheckpointPayload
}

// Report describes what a Salvage pass kept and why it stopped.
type Report struct {
	// BytesTotal is the input length; BytesKept the bytes covered by
	// segments that survived validation.
	BytesTotal int
	BytesKept  int
	// SegmentsKept counts surviving segments.
	SegmentsKept int
	// Complete reports an intact stream: a Final segment was reached and
	// nothing was cut.
	Complete bool
	// Reason says why scanning stopped short ("" when Complete).
	Reason string
	// Epochs counts flush epochs whose data was (at least partially)
	// retained.
	Epochs uint64
	// Horizon is the Lamport-timestamp cut applied to the retained logs:
	// items with TS >= Horizon were dropped to restore cross-thread
	// consistency. math.MaxUint64 means no cut was needed.
	Horizon uint64
	// DroppedEntries / DroppedRecords count retained-then-cut items.
	DroppedEntries int
	DroppedRecords int
	// CheckpointsDropped counts snapshots discarded because their log
	// positions exceed the salvaged prefix.
	CheckpointsDropped int
	// Window is the stream's retention window in checkpoint intervals
	// (0: unbounded). HasBase reports that the window evicted history
	// and opens with a base checkpoint; BaseRetired is that base's
	// global retired-instruction count.
	Window      uint64
	HasBase     bool
	BaseRetired uint64

	// stopErr is the typed error that ended the scan (nil when the whole
	// stream parsed); Decode surfaces it so callers can classify with
	// errors.Is against the shared sentinels.
	stopErr error
}

// String renders the report for CLI output.
func (r *Report) String() string {
	window := ""
	if r.Window > 0 {
		window = fmt.Sprintf("; retention window K=%d", r.Window)
		if r.HasBase {
			window += fmt.Sprintf(" (base checkpoint at %d retired instructions)", r.BaseRetired)
		}
	}
	if r.Complete {
		return fmt.Sprintf("stream complete: %d segments, %d bytes, %d epochs%s",
			r.SegmentsKept, r.BytesKept, r.Epochs, window)
	}
	s := fmt.Sprintf("stream torn: kept %d/%d bytes (%d segments, %d epochs)%s; stopped: %s",
		r.BytesKept, r.BytesTotal, r.SegmentsKept, r.Epochs, window, r.Reason)
	if r.Horizon != math.MaxUint64 {
		s += fmt.Sprintf("; consistency cut at ts %d dropped %d chunk entries, %d input records",
			r.Horizon, r.DroppedEntries, r.DroppedRecords)
	}
	if r.CheckpointsDropped > 0 {
		s += fmt.Sprintf("; %d checkpoint(s) beyond the salvage horizon discarded", r.CheckpointsDropped)
	}
	return s
}

// rawSegment is one framed segment located in the input buffer.
type rawSegment struct {
	seq     uint32
	kind    Kind
	payload []byte
	end     int // offset just past the segment's trailer
}

// parseSegment validates the frame at data[pos:]: magic, length bounds
// and CRC. It does not interpret the payload.
func parseSegment(data []byte, pos int) (rawSegment, error) {
	var s rawSegment
	rest := data[pos:]
	if len(rest) < headerSize {
		return s, fmt.Errorf("%w: %d-byte segment header torn at offset %d", ErrTruncated, len(rest), pos)
	}
	c := wire.CursorWith(rest, ErrTruncated, ErrCorrupt)
	magic, _ := c.Raw(4)
	if [4]byte(magic) != streamMagic {
		return s, fmt.Errorf("%w: bad segment magic at offset %d", ErrCorrupt, pos)
	}
	seq, _ := c.U32()
	kind, _ := c.Byte()
	plen, _ := c.U32() // header reads cannot fail: headerSize checked above
	s.seq, s.kind = seq, Kind(kind)
	if plen > maxPayload {
		return s, fmt.Errorf("%w: segment payload length %d exceeds limit", ErrCorrupt, plen)
	}
	total := headerSize + int(plen) + trailerSize
	if len(rest) < total {
		return s, fmt.Errorf("%w: segment torn at offset %d (%d of %d bytes)", ErrTruncated, pos, len(rest), total)
	}
	payload, err := c.Raw(int(plen))
	if err != nil {
		return s, err
	}
	crc, err := c.U32()
	if err != nil {
		return s, err
	}
	if got := crc32.Checksum(rest[4:headerSize+int(plen)], castagnoli); got != crc {
		return s, fmt.Errorf("%w: checksum mismatch on segment seq %d (%s) at offset %d",
			ErrCorrupt, s.seq, s.kind, pos)
	}
	if s.kind&kindCompressedBit != 0 {
		// The payload is a wire block frame; expand it after the CRC has
		// vouched for the on-wire bytes. A block that fails to expand is
		// corruption the CRC cannot see (a buggy writer), not a torn tail.
		s.kind &^= kindCompressedBit
		bc := wire.CursorWith(payload, ErrTruncated, ErrCorrupt)
		expanded, _, err := wire.DecodeBlock(&bc, nil)
		if err != nil {
			return s, fmt.Errorf("segment seq %d (%s) at offset %d: %w", s.seq, s.kind, pos, err)
		}
		if err := bc.Done(); err != nil {
			return s, fmt.Errorf("segment seq %d (%s) at offset %d: %w", s.seq, s.kind, pos, err)
		}
		payload = expanded
	}
	s.payload = payload
	s.end = pos + total
	return s, nil
}

// Offsets scans a stream and returns the end offset of every valid
// segment, in order, stopping at the first invalid one. For an intact
// stream the last offset equals len(data). Crash-injection sweeps use
// the offsets as the exact segment-boundary kill points.
func Offsets(data []byte) []int {
	var out []int
	pos := 0
	var expect uint32
	for pos < len(data) {
		s, err := parseSegment(data, pos)
		if err != nil || s.seq != expect {
			return out
		}
		pos = s.end
		expect++
		out = append(out, pos)
	}
	return out
}

// epochAccum tracks an open flush epoch during scanning.
type epochAccum struct {
	commit   Commit
	gotChunk []bool
	gotInput bool
}

func (e *epochAccum) complete() bool {
	for t, n := range e.commit.ChunkCount {
		if n > 0 && !e.gotChunk[t] {
			return false
		}
		if e.commit.InputCount[t] > 0 && !e.gotInput {
			return false
		}
	}
	return true
}

// scanner accumulates stream state.
type scanner struct {
	man     *Manifest
	enc     chunk.Encoding
	logs    []*chunk.Log
	lastTS  []uint64 // per-thread high-water timestamp, for monotonicity
	records []capo.Record
	ckpts   []*CheckpointPayload
	final   *FinalPayload

	cur           *epochAccum
	epochs        uint64
	nextEpoch     uint64
	comp          []uint64 // per-thread completeness watermark
	unconstrained []bool   // exited with all data retained

	// needBase is set after a manifest with BaseCheckpoint: the next
	// segment must be the window-base checkpoint. base holds it once
	// scanned.
	needBase bool
	base     *CheckpointPayload
}

// sealEpoch folds the open epoch into the per-thread completeness
// watermarks. mustComplete is set when the stream continues past the
// epoch (the writer never starts a new segment group before finishing
// the previous one, so an incomplete sealed-mid-stream epoch is
// structural corruption).
func (sc *scanner) sealEpoch(mustComplete bool) error {
	e := sc.cur
	if e == nil {
		return nil
	}
	if mustComplete && !e.complete() {
		return fmt.Errorf("%w: epoch %d data segments missing mid-stream", ErrCorrupt, e.commit.Epoch)
	}
	for t := range sc.comp {
		chunkOK := e.commit.ChunkCount[t] == 0 || e.gotChunk[t]
		inputOK := e.commit.InputCount[t] == 0 || e.gotInput
		if chunkOK && inputOK {
			sc.comp[t] = e.commit.Watermark[t]
			if e.commit.Exited[t] {
				sc.unconstrained[t] = true
			}
		} else {
			// The epoch declared data for t that never arrived: t lost
			// items, so it constrains the horizon even if an earlier epoch
			// marked it exited.
			sc.unconstrained[t] = false
		}
	}
	sc.epochs++
	sc.cur = nil
	return nil
}

// apply interprets one validated segment. An error stops the scan; the
// segment (and everything after it) is discarded.
func (sc *scanner) apply(s rawSegment) error {
	if sc.man == nil {
		if s.kind != KindManifest {
			return fmt.Errorf("%w: stream does not open with a manifest (got %s)", ErrCorrupt, s.kind)
		}
		m, err := decodeManifest(s.payload)
		if err != nil {
			return err
		}
		enc, err := chunk.ByID(m.EncodingID)
		if err != nil {
			return err
		}
		sc.man = &m
		sc.enc = enc
		sc.logs = make([]*chunk.Log, m.Threads)
		for t := range sc.logs {
			sc.logs[t] = &chunk.Log{Thread: t}
		}
		sc.lastTS = make([]uint64, m.Threads)
		sc.comp = make([]uint64, m.Threads)
		sc.unconstrained = make([]bool, m.Threads)
		sc.needBase = m.BaseCheckpoint
		return nil
	}
	if sc.final != nil {
		return fmt.Errorf("%w: segment after final", ErrCorrupt)
	}
	threads := sc.man.Threads

	if sc.needBase {
		// A windowed stream with evicted history opens with its base
		// checkpoint: the state replay resumes from, with log positions
		// rebased to the start of the retained logs.
		if s.kind != KindCheckpoint {
			return fmt.Errorf("%w: windowed stream must open with its base checkpoint (got %s)", ErrCorrupt, s.kind)
		}
		cp, err := decodeCheckpointPayload(s.payload, threads)
		if err != nil {
			return err
		}
		for t, pos := range cp.ChunkPos {
			if pos != 0 {
				return fmt.Errorf("%w: window base checkpoint has nonzero chunk position %d for thread %d",
					ErrCorrupt, pos, t)
			}
		}
		if cp.InputPos != 0 {
			return fmt.Errorf("%w: window base checkpoint has nonzero input position %d", ErrCorrupt, cp.InputPos)
		}
		sc.base = cp
		sc.ckpts = append(sc.ckpts, cp)
		sc.needBase = false
		return nil
	}

	switch s.kind {
	case KindManifest:
		return fmt.Errorf("%w: duplicate manifest", ErrCorrupt)

	case KindCommit:
		if err := sc.sealEpoch(true); err != nil {
			return err
		}
		c, err := decodeCommit(s.payload, threads)
		if err != nil {
			return err
		}
		if c.Epoch != sc.nextEpoch {
			return fmt.Errorf("%w: commit epoch %d, expected %d", ErrCorrupt, c.Epoch, sc.nextEpoch)
		}
		sc.nextEpoch++
		sc.cur = &epochAccum{commit: c, gotChunk: make([]bool, threads)}
		return nil

	case KindChunk:
		if sc.cur == nil {
			return fmt.Errorf("%w: chunk batch outside an epoch", ErrCorrupt)
		}
		rd := newReader(s.payload)
		tv, err := rd.Uvarint()
		if err != nil {
			return err
		}
		if tv >= uint64(threads) {
			return fmt.Errorf("%w: chunk batch for thread %d of %d", ErrCorrupt, tv, threads)
		}
		t := int(tv)
		if sc.cur.gotChunk[t] {
			return fmt.Errorf("%w: duplicate chunk batch for thread %d in epoch %d",
				ErrCorrupt, t, sc.cur.commit.Epoch)
		}
		count, err := rd.Uvarint()
		if err != nil {
			return err
		}
		if count != uint64(sc.cur.commit.ChunkCount[t]) {
			return fmt.Errorf("%w: chunk batch for thread %d carries %d entries, commit promised %d",
				ErrCorrupt, t, count, sc.cur.commit.ChunkCount[t])
		}
		wm := sc.cur.commit.Watermark[t]
		var prev *chunk.Entry
		for i := uint64(0); i < count; i++ {
			e, n, err := sc.enc.Decode(rd.Rest(), prev)
			if err != nil {
				return fmt.Errorf("epoch %d thread %d entry %d: %w", sc.cur.commit.Epoch, t, i, err)
			}
			rd.Skip(n)
			if e.TS < sc.lastTS[t] {
				return fmt.Errorf("%w: thread %d timestamp %d regresses below %d",
					ErrCorrupt, t, e.TS, sc.lastTS[t])
			}
			if e.TS >= wm {
				return fmt.Errorf("%w: thread %d entry ts %d at or above commit watermark %d",
					ErrCorrupt, t, e.TS, wm)
			}
			sc.lastTS[t] = e.TS
			sc.logs[t].Append(e)
			prev = &sc.logs[t].Entries[sc.logs[t].Len()-1]
		}
		if err := rd.Done(); err != nil {
			return err
		}
		sc.cur.gotChunk[t] = true
		return nil

	case KindInput:
		if sc.cur == nil {
			return fmt.Errorf("%w: input batch outside an epoch", ErrCorrupt)
		}
		if sc.cur.gotInput {
			return fmt.Errorf("%w: duplicate input batch in epoch %d", ErrCorrupt, sc.cur.commit.Epoch)
		}
		recs, err := capo.UnmarshalRecords(s.payload)
		if err != nil {
			return err
		}
		perThread := make([]int, threads)
		for _, r := range recs {
			if r.Thread < 0 || r.Thread >= threads {
				return fmt.Errorf("%w: input record for thread %d of %d", ErrCorrupt, r.Thread, threads)
			}
			if r.TS >= sc.cur.commit.Watermark[r.Thread] {
				return fmt.Errorf("%w: thread %d input record ts %d at or above commit watermark %d",
					ErrCorrupt, r.Thread, r.TS, sc.cur.commit.Watermark[r.Thread])
			}
			perThread[r.Thread]++
		}
		for t, n := range perThread {
			if n != sc.cur.commit.InputCount[t] {
				return fmt.Errorf("%w: input batch carries %d records for thread %d, commit promised %d",
					ErrCorrupt, n, t, sc.cur.commit.InputCount[t])
			}
		}
		sc.records = append(sc.records, recs...)
		sc.cur.gotInput = true
		return nil

	case KindCheckpoint:
		if err := sc.sealEpoch(true); err != nil {
			return err
		}
		cp, err := decodeCheckpointPayload(s.payload, threads)
		if err != nil {
			return err
		}
		sc.ckpts = append(sc.ckpts, cp)
		return nil

	case KindFinal:
		if err := sc.sealEpoch(true); err != nil {
			return err
		}
		f, err := decodeFinalPayload(s.payload, threads)
		if err != nil {
			return err
		}
		sc.final = f
		return nil
	}
	return fmt.Errorf("%w: unknown segment kind %d", ErrCorrupt, uint8(s.kind))
}

// Salvage scans a (possibly damaged) segmented stream, validates every
// segment's checksum and structure, discards the torn or corrupt suffix,
// and reconstructs the longest consistent recording prefix.
//
// Consistency is restored with a Lamport-timestamp horizon cut. Each
// sealed epoch's commit proves that thread t's retained items are
// complete through the commit's watermark W[t] (items emitted before the
// flush have TS < W[t]; anything later has TS >= W[t]). The horizon H is
// the minimum completeness watermark over non-exited threads; dropping
// every retained item with TS >= H yields a causally closed prefix: a
// kept chunk's conflicting predecessor on any thread u carries a
// strictly smaller timestamp < H <= comp[u] and is therefore kept too —
// so prefix replay sees every dependency it needs.
//
// Salvage errors (with a typed, sentinel-wrapped error) only when no
// usable manifest exists; any other damage yields a shorter prefix and a
// Report explaining the cut.
func Salvage(data []byte) (*Stream, *Report, error) {
	rep := &Report{BytesTotal: len(data), Horizon: math.MaxUint64}
	sc := &scanner{}

	pos := 0
	var expect uint32
	var stop error
	for pos < len(data) {
		s, err := parseSegment(data, pos)
		if err != nil {
			stop = err
			break
		}
		if s.seq != expect {
			stop = fmt.Errorf("%w: segment sequence %d at offset %d, expected %d",
				ErrCorrupt, s.seq, pos, expect)
			break
		}
		if err := sc.apply(s); err != nil {
			stop = err
			break
		}
		pos = s.end
		expect++
		rep.SegmentsKept++
		rep.BytesKept = pos
	}
	if sc.man == nil {
		if stop == nil {
			stop = fmt.Errorf("%w: empty stream", ErrTruncated)
		}
		return nil, rep, fmt.Errorf("segment: no salvageable manifest: %w", stop)
	}
	rep.stopErr = stop
	if stop != nil {
		rep.Reason = stop.Error()
	} else if sc.final == nil {
		rep.Reason = "stream ends without a final segment"
	}
	if err := sc.sealEpoch(false); err != nil {
		// Unreachable (mustComplete=false never errors), kept for safety.
		rep.Reason = err.Error()
	}
	rep.Epochs = sc.epochs
	rep.Window = sc.man.Window
	if sc.base != nil {
		rep.HasBase = true
		rep.BaseRetired = sc.base.RetiredAt
	}

	st := &Stream{
		Manifest:  *sc.man,
		ChunkLogs: sc.logs,
		InputLog:  &capo.InputLog{Records: sc.records},
		Final:     sc.final,
		Base:      sc.base,
	}

	if sc.final != nil && stop == nil {
		rep.Complete = true
	} else {
		// Horizon cut: drop retained items at or above the minimum
		// completeness watermark of any non-exited thread.
		h := uint64(math.MaxUint64)
		for t := range sc.comp {
			if !sc.unconstrained[t] && sc.comp[t] < h {
				h = sc.comp[t]
			}
		}
		rep.Horizon = h
		if h != math.MaxUint64 {
			for _, l := range st.ChunkLogs {
				keep := sort.Search(len(l.Entries), func(i int) bool { return l.Entries[i].TS >= h })
				rep.DroppedEntries += len(l.Entries) - keep
				l.Entries = l.Entries[:keep]
			}
			kept := st.InputLog.Records[:0]
			for _, r := range st.InputLog.Records {
				if r.TS < h {
					kept = append(kept, r)
				} else {
					rep.DroppedRecords++
				}
			}
			st.InputLog.Records = kept
		}
		// A complete stream whose trailing garbage was discarded still has
		// its reference state; everything before Final was sealed.
		rep.Complete = sc.final != nil
	}

	// Keep every checkpoint whose positions fall inside the retained
	// (post-cut) prefix. The horizon cut only removes suffixes, so
	// usable checkpoints always form a prefix of those scanned; the last
	// one doubles as the resume point for tail replay.
	for _, cp := range sc.ckpts {
		if checkpointUsable(cp, st) {
			st.Checkpoints = append(st.Checkpoints, cp)
		} else {
			rep.CheckpointsDropped++
		}
	}
	if n := len(st.Checkpoints); n > 0 {
		st.Checkpoint = st.Checkpoints[n-1]
	}
	return st, rep, nil
}

func checkpointUsable(cp *CheckpointPayload, st *Stream) bool {
	if len(cp.ChunkPos) != len(st.ChunkLogs) {
		return false
	}
	for t, pos := range cp.ChunkPos {
		if pos > st.ChunkLogs[t].Len() {
			return false
		}
	}
	return cp.InputPos <= st.InputLog.Len()
}

// Decode strictly parses an intact stream: every byte must be consumed,
// every epoch complete, and a Final segment present. Damage that Salvage
// would work around is an error here.
func Decode(data []byte) (*Stream, error) {
	st, rep, err := Salvage(data)
	if err != nil {
		return nil, err
	}
	if rep.stopErr != nil {
		return nil, rep.stopErr
	}
	if !rep.Complete {
		return nil, fmt.Errorf("%w: stream ends without a final segment", ErrTruncated)
	}
	if rep.BytesKept != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(data)-rep.BytesKept)
	}
	return st, nil
}
