// Package segment implements the crash-consistent streaming form of a
// QuickRec recording: a sequence of self-describing, individually
// checksummed segments that the recorder emits incrementally, so a
// writer that dies mid-run still leaves a salvageable prefix on disk.
//
// Wire format (little-endian):
//
//	segment := magic[4]="QRSG" | seq u32 | kind u8 | plen u32 | payload[plen] | crc u32
//
// crc is CRC-32C (Castagnoli) over seq|kind|plen|payload — everything
// after the magic. CRC-32C detects all single-bit errors and all burst
// errors up to 32 bits, which is what the conformance sweep asserts.
//
// A stream is: one Manifest, then flush epochs (each a Commit followed
// by the chunk/input batches it announces), Checkpoint segments at
// flight-recorder boundaries, and a Final segment carrying the reference
// state. The commit-first discipline is what makes torn-write salvage
// sound: a Commit declares per-thread clock watermarks and expected
// batch counts *before* the data, so a scanner can always tell how much
// of the trailing epoch survived (see Salvage).
package segment

import (
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/capo"
	"repro/internal/chunk"
	"repro/internal/wire"
)

// Kind tags a segment's payload type.
type Kind uint8

// Segment kinds.
const (
	// KindManifest opens a stream: program identity, thread count,
	// chunk-log encoding. Always segment 0.
	KindManifest Kind = 1
	// KindCommit opens a flush epoch: per-thread clock watermarks and the
	// batch counts that follow.
	KindCommit Kind = 2
	// KindChunk carries one thread's chunk entries for the current epoch.
	KindChunk Kind = 3
	// KindInput carries the current epoch's input records (all threads).
	KindInput Kind = 4
	// KindCheckpoint carries a flight-recorder snapshot.
	KindCheckpoint Kind = 5
	// KindFinal carries the reference final state; its presence marks the
	// stream complete.
	KindFinal Kind = 6

	// kindCompressedBit marks a segment whose payload is a wire block
	// frame (LZ-compressed) instead of the raw payload bytes. Only the
	// bulk log kinds (chunk, input) are ever compressed, and only when
	// compression actually shrinks them, so enabling Compress never
	// inflates a stream. The CRC covers the on-wire (compressed) bytes.
	kindCompressedBit Kind = 0x80
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindManifest:
		return "manifest"
	case KindCommit:
		return "commit"
	case KindChunk:
		return "chunk"
	case KindInput:
		return "input"
	case KindCheckpoint:
		return "checkpoint"
	case KindFinal:
		return "final"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Errors wrap the shared chunk.ErrTruncated / chunk.ErrCorrupt sentinels
// so stream faults triage exactly like chunk- and input-log faults.
var (
	// ErrTruncated reports a stream that ends mid-segment (a torn write).
	ErrTruncated = fmt.Errorf("segment: torn stream: %w", chunk.ErrTruncated)
	// ErrCorrupt reports a stream that fails structural validation or a
	// checksum.
	ErrCorrupt = fmt.Errorf("segment: corrupt stream: %w", chunk.ErrCorrupt)
	// ErrClosed reports a Write* call on a closed Sink. The violation is
	// sticky: once tripped, the sink's Err reports it forever, so a
	// recorder that keeps flushing into a closed stream cannot silently
	// lose epochs.
	ErrClosed = fmt.Errorf("segment: sink is closed")
)

var streamMagic = [4]byte{'Q', 'R', 'S', 'G'}

const (
	headerSize  = 4 + 4 + 1 + 4 // magic, seq, kind, plen
	trailerSize = 4             // crc32c
	// maxPayload bounds a single segment; plen fields beyond it are
	// treated as corruption rather than allocated.
	maxPayload = 1 << 30
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Writer emits a segmented stream. Errors from the underlying io.Writer
// are sticky: the first failure is retained and every later Write*
// becomes a no-op, so the recorder can run to completion and surface the
// stream error once at the end.
type Writer struct {
	w       io.Writer
	err     error
	seq     uint32
	closed  bool
	scratch []byte

	// Compress, when set before the first write, LZ-compresses chunk and
	// input batch payloads (the bulk of a stream) through the shared wire
	// block codec. Off by default: the uncompressed stream format is
	// pinned by golden fixtures, and compressed segments are a strict
	// extension readable only by post-v2 salvagers.
	Compress bool

	enc     chunk.Encoding
	threads int

	segments   int
	totalBytes uint64
	// framingBytes counts non-log overhead: headers, CRCs, and commit
	// payloads (the bookkeeping that exists only because of streaming).
	framingBytes uint64
}

// NewWriter returns a Writer emitting to w. WriteManifest must be the
// first call; it fixes the thread count and chunk encoding the batch
// helpers use.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w}
}

// Err returns the first underlying write or usage error, if any.
func (w *Writer) Err() error { return w.err }

// Close implements Sink. The unbounded writer emits segments as they
// arrive, so there is nothing to flush; Close marks the writer finished
// and reports the sticky error state. Any Write* after Close is a usage
// error (ErrClosed) — before the closed state existed, such calls kept
// appending segments past the recorder's lifecycle without a trace.
func (w *Writer) Close() error {
	w.closed = true
	return w.err
}

// usable gates every Write*: false once an error is pending or the
// writer was closed. Writing after Close trips the sticky ErrClosed.
func (w *Writer) usable() bool {
	if w.err != nil {
		return false
	}
	if w.closed {
		w.err = fmt.Errorf("segment: write after Close: %w", ErrClosed)
		return false
	}
	return true
}

// Segments returns the number of segments written so far.
func (w *Writer) Segments() int { return w.segments }

// TotalBytes returns the total stream bytes written so far.
func (w *Writer) TotalBytes() uint64 { return w.totalBytes }

// FramingBytes returns the streaming-only overhead written so far:
// segment headers, checksums, and commit payloads.
func (w *Writer) FramingBytes() uint64 { return w.framingBytes }

// writeSegment frames payload under kind and emits it.
func (w *Writer) writeSegment(kind Kind, payload []byte) {
	if w.err != nil {
		return
	}
	if len(payload) > maxPayload {
		w.err = fmt.Errorf("segment: payload of %d bytes exceeds limit", len(payload))
		return
	}
	var comp *wire.Appender
	if w.Compress && (kind == KindChunk || kind == KindInput) {
		comp = wire.GetAppender()
		defer wire.PutAppender(comp)
		// Only take the compressed form when it is actually smaller;
		// otherwise the segment stays byte-identical to an uncompressed
		// stream's.
		if wire.AppendBlock(comp, payload) == wire.BlockLZ {
			kind |= kindCompressedBit
			payload = comp.Buf
		}
	}
	a := wire.AppenderOf(w.scratch[:0])
	a.Grow(headerSize + len(payload) + trailerSize)
	a.Raw(streamMagic[:])
	a.U32(w.seq)
	a.Byte(byte(kind))
	a.U32(uint32(len(payload)))
	a.Raw(payload)
	crc := crc32.Checksum(a.Buf[4:], castagnoli)
	a.U32(crc)
	if _, err := w.w.Write(a.Buf); err != nil {
		w.err = fmt.Errorf("segment: write: %w", err)
		return
	}
	w.seq++
	w.segments++
	w.totalBytes += uint64(a.Len())
	w.framingBytes += uint64(headerSize + trailerSize)
	if kind == KindCommit {
		w.framingBytes += uint64(len(payload))
	}
	w.scratch = a.Buf[:0]
}

// WriteManifest opens the stream. It must be the first segment.
func (w *Writer) WriteManifest(m Manifest) {
	if !w.usable() {
		return
	}
	if w.seq != 0 {
		w.err = fmt.Errorf("segment: manifest must be the first segment (seq %d)", w.seq)
		return
	}
	enc, err := chunk.ByID(m.EncodingID)
	if err != nil {
		w.err = err
		return
	}
	w.enc = enc
	w.threads = m.Threads
	p := wire.GetAppender()
	defer wire.PutAppender(p)
	appendManifest(p, m)
	w.writeSegment(KindManifest, p.Buf)
}

// WriteCommit opens a flush epoch.
func (w *Writer) WriteCommit(c Commit) {
	if !w.usable() {
		return
	}
	if w.enc == nil {
		w.err = fmt.Errorf("segment: commit before manifest")
		return
	}
	if len(c.Watermark) != w.threads || len(c.Exited) != w.threads ||
		len(c.ChunkCount) != w.threads || len(c.InputCount) != w.threads {
		w.err = fmt.Errorf("segment: commit arrays do not match %d threads", w.threads)
		return
	}
	p := wire.GetAppender()
	defer wire.PutAppender(p)
	appendCommit(p, c)
	w.writeSegment(KindCommit, p.Buf)
}

// WriteChunkBatch emits thread's pending chunk entries. Delta encoding
// restarts at each batch (the first entry carries an absolute
// timestamp), so every batch decodes independently.
func (w *Writer) WriteChunkBatch(thread int, entries []chunk.Entry) {
	if !w.usable() {
		return
	}
	if w.enc == nil {
		w.err = fmt.Errorf("segment: chunk batch before manifest")
		return
	}
	p := wire.GetAppender()
	defer wire.PutAppender(p)
	p.Int(thread)
	p.Int(len(entries))
	var prev *chunk.Entry
	for i := range entries {
		p.Buf = w.enc.Append(p.Buf, entries[i], prev)
		prev = &entries[i]
	}
	w.writeSegment(KindChunk, p.Buf)
}

// WriteInputBatch emits the epoch's pending input records.
func (w *Writer) WriteInputBatch(recs []capo.Record) {
	if !w.usable() {
		return
	}
	if w.enc == nil {
		w.err = fmt.Errorf("segment: input batch before manifest")
		return
	}
	p := wire.GetAppender()
	defer wire.PutAppender(p)
	capo.AppendRecords(p, recs)
	w.writeSegment(KindInput, p.Buf)
}

// WriteCheckpoint emits a flight-recorder snapshot.
func (w *Writer) WriteCheckpoint(cp *CheckpointPayload) {
	if !w.usable() {
		return
	}
	if w.enc == nil {
		w.err = fmt.Errorf("segment: checkpoint before manifest")
		return
	}
	if len(cp.ChunkPos) != w.threads {
		w.err = fmt.Errorf("segment: checkpoint has %d chunk positions for %d threads",
			len(cp.ChunkPos), w.threads)
		return
	}
	p := wire.GetAppender()
	defer wire.PutAppender(p)
	appendCheckpointPayload(p, cp)
	w.writeSegment(KindCheckpoint, p.Buf)
}

// WriteFinal closes the stream with the reference final state.
func (w *Writer) WriteFinal(f *FinalPayload) {
	if !w.usable() {
		return
	}
	if w.enc == nil {
		w.err = fmt.Errorf("segment: final before manifest")
		return
	}
	p := wire.GetAppender()
	defer wire.PutAppender(p)
	appendFinalPayload(p, f)
	w.writeSegment(KindFinal, p.Buf)
}
