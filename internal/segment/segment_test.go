package segment_test

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"repro/internal/capo"
	"repro/internal/chunk"
	"repro/internal/isa"
	"repro/internal/segment"
)

// buildStream hand-writes a two-thread, two-epoch stream with a
// checkpoint and a final segment — the shape the machine emits.
func buildStream(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := segment.NewWriter(&buf)
	w.WriteManifest(testManifest())

	w.WriteCommit(segment.Commit{
		Epoch:      0,
		Watermark:  []uint64{10, 8},
		Exited:     []bool{false, false},
		ChunkCount: []int{2, 1},
		InputCount: []int{1, 0},
	})
	w.WriteChunkBatch(0, []chunk.Entry{
		{Size: 5, TS: 3, Reason: chunk.ReasonConflictRAW},
		{Size: 6, TS: 7, Reason: chunk.ReasonSyscall},
	})
	w.WriteChunkBatch(1, []chunk.Entry{{Size: 9, TS: 4, Reason: chunk.ReasonSwitch}})
	w.WriteInputBatch([]capo.Record{
		{Kind: capo.KindSyscall, Thread: 0, Seq: 0, TS: 9, Sysno: 7, Ret: 42,
			Addr: 0x100, Data: []byte{1, 2, 3}},
	})

	w.WriteCheckpoint(testCheckpoint())

	w.WriteCommit(segment.Commit{
		Epoch:      1,
		Watermark:  []uint64{20, 18},
		Exited:     []bool{false, true},
		ChunkCount: []int{1, 2},
		InputCount: []int{0, 1},
	})
	w.WriteChunkBatch(0, []chunk.Entry{{Size: 4, TS: 12, Reason: chunk.ReasonFlush}})
	w.WriteChunkBatch(1, []chunk.Entry{
		{Size: 2, TS: 9, Reason: chunk.ReasonConflictWAW, RepResidue: 3},
		{Size: 8, TS: 15, Reason: chunk.ReasonFlush},
	})
	w.WriteInputBatch([]capo.Record{
		{Kind: capo.KindSignal, Thread: 1, Seq: 0, TS: 16, Signo: 1, Retired: 30, RepDone: 2},
	})

	w.WriteFinal(&segment.FinalPayload{
		MemChecksum:      0xabcdef,
		Output:           []byte("hello"),
		FinalContexts:    []isa.Context{{PC: 11, Retired: 40, Halted: true}, {PC: 22, Retired: 50, Halted: true}},
		RetiredPerThread: []uint64{40, 50},
	})
	if err := w.Err(); err != nil {
		t.Fatalf("writing stream: %v", err)
	}
	return buf.Bytes()
}

func testManifest() segment.Manifest {
	return segment.Manifest{
		ProgramName:         "demo",
		Threads:             2,
		StackWordsPerThread: 64,
		CountRepIterations:  true,
		EncodingID:          chunk.DeltaID,
		FlushEveryChunks:    4,
	}
}

func testCheckpoint() *segment.CheckpointPayload {
	mem := make([]byte, 64)
	for i := range mem {
		mem[i] = byte(i * 3)
	}
	return &segment.CheckpointPayload{
		RetiredAt: 100,
		MemImage:  mem,
		Contexts:  []isa.Context{{PC: 5, Retired: 60}, {PC: 6, Retired: 40}},
		Exited:    []bool{false, false},
		SigRegs:   make([][isa.NumRegs]uint64, 2),
		SigPC:     []int{0, 0},
		HandlerPC: 3,
		HandlerOK: true,
		Output:    []byte("he"),
		ChunkPos:  []int{2, 1},
		InputPos:  1,
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	data := buildStream(t)
	st, err := segment.Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if st.Manifest != testManifest() {
		t.Fatalf("manifest round trip: got %+v", st.Manifest)
	}
	if got := st.ChunkLogs[0].Len(); got != 3 {
		t.Fatalf("thread 0 chunk count = %d, want 3", got)
	}
	if got := st.ChunkLogs[1].Len(); got != 3 {
		t.Fatalf("thread 1 chunk count = %d, want 3", got)
	}
	if e := st.ChunkLogs[1].Entries[1]; e.TS != 9 || e.RepResidue != 3 {
		t.Fatalf("entry round trip: %+v", e)
	}
	if st.InputLog.Len() != 2 {
		t.Fatalf("input count = %d, want 2", st.InputLog.Len())
	}
	if r := st.InputLog.Records[0]; !bytes.Equal(r.Data, []byte{1, 2, 3}) || r.Ret != 42 {
		t.Fatalf("input record round trip: %+v", r)
	}
	if st.Checkpoint == nil || st.Checkpoint.RetiredAt != 100 || !st.Checkpoint.HandlerOK {
		t.Fatalf("checkpoint round trip: %+v", st.Checkpoint)
	}
	if !bytes.Equal(st.Checkpoint.MemImage, testCheckpoint().MemImage) {
		t.Fatal("checkpoint memory image changed in round trip")
	}
	if st.Final == nil || st.Final.MemChecksum != 0xabcdef || string(st.Final.Output) != "hello" {
		t.Fatalf("final round trip: %+v", st.Final)
	}
	if st.Final.FinalContexts[1].PC != 22 || st.Final.RetiredPerThread[1] != 50 {
		t.Fatalf("final contexts round trip: %+v", st.Final.FinalContexts)
	}
}

func TestOffsetsCoverStream(t *testing.T) {
	data := buildStream(t)
	offs := segment.Offsets(data)
	if len(offs) != 11 { // manifest + 2×(commit + 2 chunk batches + input) + checkpoint + final
		t.Fatalf("segment count = %d, want 11", len(offs))
	}
	if offs[len(offs)-1] != len(data) {
		t.Fatalf("last offset %d != stream length %d", offs[len(offs)-1], len(data))
	}
	for i := 1; i < len(offs); i++ {
		if offs[i] <= offs[i-1] {
			t.Fatalf("offsets not increasing: %v", offs)
		}
	}
}

// checkPrefix asserts that a salvaged stream is an entry-wise prefix of
// the intact one, with the input log a per-thread prefix.
func checkPrefix(t *testing.T, full, got *segment.Stream) {
	t.Helper()
	for th, l := range got.ChunkLogs {
		ref := full.ChunkLogs[th].Entries
		if len(l.Entries) > len(ref) {
			t.Fatalf("thread %d: salvaged %d entries, original has %d", th, len(l.Entries), len(ref))
		}
		for i, e := range l.Entries {
			if e != ref[i] {
				t.Fatalf("thread %d entry %d: salvaged %+v != original %+v", th, i, e, ref[i])
			}
		}
	}
	for th := range got.ChunkLogs {
		mine := got.InputLog.PerThread(th)
		ref := full.InputLog.PerThread(th)
		if len(mine) > len(ref) {
			t.Fatalf("thread %d: salvaged %d input records, original has %d", th, len(mine), len(ref))
		}
		for i, r := range mine {
			if r.String() != ref[i].String() || !bytes.Equal(r.Data, ref[i].Data) {
				t.Fatalf("thread %d input %d: salvaged %+v != original %+v", th, i, r, ref[i])
			}
		}
	}
}

func TestSalvageEveryTornCut(t *testing.T) {
	data := buildStream(t)
	full, err := segment.Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	offs := segment.Offsets(data)
	manifestEnd := offs[0]

	for cut := 1; cut <= len(data); cut++ {
		st, rep, err := segment.Salvage(data[:cut])
		if cut < manifestEnd {
			if err == nil {
				t.Fatalf("cut %d: expected no-manifest error", cut)
			}
			if !errors.Is(err, chunk.ErrTruncated) && !errors.Is(err, chunk.ErrCorrupt) {
				t.Fatalf("cut %d: error %v wraps neither shared sentinel", cut, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("cut %d: Salvage failed: %v", cut, err)
		}
		if rep.BytesKept > cut {
			t.Fatalf("cut %d: kept %d bytes beyond the cut", cut, rep.BytesKept)
		}
		if rep.Complete != (cut == len(data)) {
			t.Fatalf("cut %d: Complete=%v", cut, rep.Complete)
		}
		checkPrefix(t, full, st)
		if st.Checkpoint != nil {
			for th, pos := range st.Checkpoint.ChunkPos {
				if pos > st.ChunkLogs[th].Len() {
					t.Fatalf("cut %d: checkpoint position %d beyond salvaged log %d", cut, pos, st.ChunkLogs[th].Len())
				}
			}
		}
	}
}

func TestSalvageBitFlipsNeverYieldWrongData(t *testing.T) {
	data := buildStream(t)
	full, err := segment.Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	offs := segment.Offsets(data)
	segOf := func(off int) int {
		for i, end := range offs {
			if off < end {
				return i
			}
		}
		return len(offs)
	}

	detected := 0
	for i := 0; i < len(data); i++ {
		for b := 0; b < 8; b++ {
			mut := append([]byte(nil), data...)
			mut[i] ^= 1 << b
			st, rep, err := segment.Salvage(mut)
			if err != nil {
				// Damage inside the manifest segment: correctly refused.
				if segOf(i) != 0 {
					t.Fatalf("byte %d bit %d: unexpected salvage error %v", i, b, err)
				}
				detected++
				continue
			}
			// The corrupted segment and everything after it must be gone.
			if rep.SegmentsKept > segOf(i) {
				t.Fatalf("byte %d bit %d: kept %d segments, corruption is in segment %d",
					i, b, rep.SegmentsKept, segOf(i))
			}
			detected++
			checkPrefix(t, full, st)
		}
	}
	if want := len(data) * 8; detected != want {
		t.Fatalf("detected %d of %d single-bit corruptions", detected, want)
	}
}

// tornEpochStream writes a stream whose last epoch's commit promises a
// thread-0 batch that never arrives (the writer "died" right after the
// commit). Thread 1 exited back in epoch 0 when exited1 is set.
func tornEpochStream(t *testing.T, exited1 bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := segment.NewWriter(&buf)
	w.WriteManifest(testManifest())
	w.WriteCommit(segment.Commit{
		Epoch:      0,
		Watermark:  []uint64{10, 5},
		Exited:     []bool{false, exited1},
		ChunkCount: []int{2, 1},
		InputCount: []int{0, 0},
	})
	w.WriteChunkBatch(0, []chunk.Entry{
		{Size: 5, TS: 3, Reason: chunk.ReasonConflictRAW},
		{Size: 6, TS: 7, Reason: chunk.ReasonSwitch},
	})
	w.WriteChunkBatch(1, []chunk.Entry{{Size: 9, TS: 4, Reason: chunk.ReasonFlush}})
	w.WriteCommit(segment.Commit{
		Epoch:      1,
		Watermark:  []uint64{20, 5},
		Exited:     []bool{false, exited1},
		ChunkCount: []int{1, 0},
		InputCount: []int{0, 0},
	})
	// Thread 0's epoch-1 batch is where the writer died.
	if err := w.Err(); err != nil {
		t.Fatalf("writing stream: %v", err)
	}
	return buf.Bytes()
}

func TestSalvageHorizonCut(t *testing.T) {
	st, rep, err := segment.Salvage(tornEpochStream(t, false))
	if err != nil {
		t.Fatalf("Salvage: %v", err)
	}
	if rep.Complete {
		t.Fatal("torn stream reported complete")
	}
	// Epoch 1 is incomplete for thread 0, freezing its completeness at
	// epoch 0's watermark 10; thread 1's watermark is 5. The horizon cut
	// at min(10,5)=5 must drop thread 0's TS-7 entry even though the
	// segment carrying it was intact.
	if rep.Horizon != 5 {
		t.Fatalf("horizon = %d, want 5", rep.Horizon)
	}
	if got := st.ChunkLogs[0].Len(); got != 1 {
		t.Fatalf("thread 0 kept %d entries, want 1 (TS 3)", got)
	}
	if got := st.ChunkLogs[1].Len(); got != 1 {
		t.Fatalf("thread 1 kept %d entries, want 1", got)
	}
	if rep.DroppedEntries != 1 {
		t.Fatalf("dropped %d entries, want 1", rep.DroppedEntries)
	}
}

func TestSalvageExitedThreadUnconstrained(t *testing.T) {
	// Same torn shape, but thread 1 exited with all its data retained: it
	// no longer constrains the horizon, which is then thread 0's own
	// completeness watermark 10 — both its epoch-0 entries survive.
	st, rep, err := segment.Salvage(tornEpochStream(t, true))
	if err != nil {
		t.Fatalf("Salvage: %v", err)
	}
	if rep.Horizon != 10 {
		t.Fatalf("horizon = %d, want thread 0's epoch-0 watermark 10", rep.Horizon)
	}
	if got := st.ChunkLogs[0].Len(); got != 2 {
		t.Fatalf("thread 0 kept %d entries, want 2", got)
	}
	if got := st.ChunkLogs[1].Len(); got != 1 {
		t.Fatalf("thread 1 kept %d entries, want 1", got)
	}
	if rep.DroppedEntries != 0 {
		t.Fatalf("dropped %d entries, want 0", rep.DroppedEntries)
	}
}

func TestSalvageRejectsReorderedSegments(t *testing.T) {
	data := buildStream(t)
	offs := segment.Offsets(data)
	// Swap the two chunk-batch segments of epoch 0 (segments 2 and 3).
	mut := append([]byte(nil), data[:offs[1]]...)
	mut = append(mut, data[offs[2]:offs[3]]...)
	mut = append(mut, data[offs[1]:offs[2]]...)
	mut = append(mut, data[offs[3]:]...)
	_, rep, err := segment.Salvage(mut)
	if err != nil {
		t.Fatalf("Salvage: %v", err)
	}
	if rep.SegmentsKept > 2 {
		t.Fatalf("kept %d segments past a sequence break", rep.SegmentsKept)
	}
}

func TestSalvageRejectsDuplicateSegment(t *testing.T) {
	data := buildStream(t)
	offs := segment.Offsets(data)
	// Duplicate epoch 0's thread-0 chunk batch (segment 2).
	mut := append([]byte(nil), data[:offs[2]]...)
	mut = append(mut, data[offs[1]:offs[2]]...)
	mut = append(mut, data[offs[2]:]...)
	_, rep, err := segment.Salvage(mut)
	if err != nil {
		t.Fatalf("Salvage: %v", err)
	}
	if rep.SegmentsKept > 3 {
		t.Fatalf("kept %d segments past a duplicated sequence number", rep.SegmentsKept)
	}
	if rep.Complete {
		t.Fatal("stream with duplicate segment reported complete")
	}
}

func TestTypedErrors(t *testing.T) {
	if _, _, err := segment.Salvage(nil); !errors.Is(err, chunk.ErrTruncated) {
		t.Fatalf("empty stream: %v does not wrap the shared truncation sentinel", err)
	}
	garbage := bytes.Repeat([]byte{0x5a}, 64)
	if _, _, err := segment.Salvage(garbage); !errors.Is(err, chunk.ErrCorrupt) {
		t.Fatalf("garbage stream: %v does not wrap the shared corruption sentinel", err)
	}
	data := buildStream(t)
	if _, err := segment.Decode(data[:len(data)-3]); !errors.Is(err, chunk.ErrTruncated) {
		t.Fatalf("torn stream Decode: %v does not wrap the truncation sentinel", err)
	}
	// A short trailing fragment is indistinguishable from a torn header.
	if _, err := segment.Decode(append(append([]byte(nil), data...), 0xff)); !errors.Is(err, chunk.ErrTruncated) {
		t.Fatalf("trailing-fragment Decode: %v does not wrap the truncation sentinel", err)
	}
	// A full trailing frame with a bad magic is corruption.
	garbageFrame := bytes.Repeat([]byte{0xff}, 32)
	if _, err := segment.Decode(append(append([]byte(nil), data...), garbageFrame...)); !errors.Is(err, chunk.ErrCorrupt) {
		t.Fatalf("trailing-garbage Decode: %v does not wrap the corruption sentinel", err)
	}
	if !errors.Is(segment.ErrTruncated, chunk.ErrTruncated) || !errors.Is(segment.ErrCorrupt, chunk.ErrCorrupt) {
		t.Fatal("segment sentinels do not wrap the shared chunk sentinels")
	}
}

func TestSalvageCompleteStreamNoCut(t *testing.T) {
	data := buildStream(t)
	_, rep, err := segment.Salvage(data)
	if err != nil {
		t.Fatalf("Salvage: %v", err)
	}
	if !rep.Complete || rep.Reason != "" || rep.Horizon != math.MaxUint64 ||
		rep.DroppedEntries != 0 || rep.DroppedRecords != 0 {
		t.Fatalf("intact stream salvage report: %+v", rep)
	}
	if rep.BytesKept != len(data) {
		t.Fatalf("kept %d of %d bytes of an intact stream", rep.BytesKept, len(data))
	}
}
