package segment

import (
	"bytes"
	"fmt"
	"io"

	"repro/internal/capo"
	"repro/internal/chunk"
)

// Sink is the stream interface the recorder writes through: the
// unbounded Writer and the retention-windowed WindowWriter both
// implement it. Write errors are sticky (Err); Close flushes whatever
// representation the sink buffers and must be called once after
// WriteFinal. The byte-accounting methods describe the rendered stream
// (for a WindowWriter they are populated by Close).
type Sink interface {
	WriteManifest(Manifest)
	WriteCommit(Commit)
	WriteChunkBatch(thread int, entries []chunk.Entry)
	WriteInputBatch(recs []capo.Record)
	WriteCheckpoint(cp *CheckpointPayload)
	WriteFinal(f *FinalPayload)
	Err() error
	Segments() int
	TotalBytes() uint64
	FramingBytes() uint64
	Close() error
}

var (
	_ Sink = (*Writer)(nil)
	_ Sink = (*WindowWriter)(nil)
)

// windowBatch is one thread's chunk entries within a buffered epoch.
type windowBatch struct {
	thread  int
	entries []chunk.Entry
}

// windowEpoch is one buffered flush epoch: the commit plus the data
// batches it announced.
type windowEpoch struct {
	commit  Commit
	batches []windowBatch
	inputs  []capo.Record
}

// windowInterval is one checkpoint interval: the checkpoint that opens
// it (nil only for the genesis interval, which starts at program start)
// and the epochs flushed before the next checkpoint.
type windowInterval struct {
	anchor *CheckpointPayload
	epochs []windowEpoch
}

// WindowWriter is the flight-recorder ring form of the segmented
// stream: it accepts the same write sequence as Writer but retains only
// the last K checkpoint intervals, garbage-collecting whole epochs
// older than the oldest retained checkpoint. The retained window is
// rendered as an ordinary segmented stream at Close (and on demand via
// Window): a manifest carrying the window parameters, then — once
// eviction has happened — the window-base checkpoint with its log
// positions rebased to zero, then the retained intervals with their
// epochs renumbered from zero and all checkpoint log positions rebased
// against the base. Timestamps, watermarks, contexts, memory images and
// fd-1 output stay absolute, so the rendered window replays (from the
// base checkpoint's state) exactly like the tail of the unbounded
// stream and salvages with the same horizon-cut machinery.
type WindowWriter struct {
	out io.Writer
	k   int
	err error

	// Compress is forwarded to the rendered stream's Writer: the retained
	// window is buffered in decoded form and compressed only at Close.
	Compress bool

	man     Manifest
	haveMan bool

	// intervals[0] is the oldest retained interval; the last element is
	// always the open interval epochs are appended to.
	intervals []*windowInterval
	final     *FinalPayload

	evicted bool
	closed  bool

	segments     int
	totalBytes   uint64
	framingBytes uint64
}

// NewWindowWriter returns a windowed stream writer retaining the last k
// checkpoint intervals. The rendered window reaches out on Close; out
// may be nil when only Window snapshots are wanted.
func NewWindowWriter(out io.Writer, k int) *WindowWriter {
	w := &WindowWriter{out: out, k: k}
	if k < 1 {
		w.err = fmt.Errorf("segment: retention window must be at least 1 checkpoint interval (got %d)", k)
	}
	return w
}

// Err returns the first write or usage error, if any.
func (w *WindowWriter) Err() error { return w.err }

// Evicted reports whether any interval has been garbage-collected yet
// (equivalently: whether the rendered window opens with a base
// checkpoint instead of program start).
func (w *WindowWriter) Evicted() bool { return w.evicted }

// Segments returns the rendered window's segment count; populated by
// Close.
func (w *WindowWriter) Segments() int { return w.segments }

// TotalBytes returns the rendered window's size in bytes; populated by
// Close.
func (w *WindowWriter) TotalBytes() uint64 { return w.totalBytes }

// FramingBytes returns the rendered window's streaming overhead bytes;
// populated by Close.
func (w *WindowWriter) FramingBytes() uint64 { return w.framingBytes }

// open returns the interval new epochs belong to.
func (w *WindowWriter) open() *windowInterval { return w.intervals[len(w.intervals)-1] }

// usable gates every Write*: false once an error is pending or the sink
// was closed. Writing after Close is a usage error and becomes sticky,
// exactly like the unbounded Writer's guard.
func (w *WindowWriter) usable() bool {
	if w.err != nil {
		return false
	}
	if w.closed {
		w.err = fmt.Errorf("segment: windowed write after Close: %w", ErrClosed)
		return false
	}
	return true
}

// WriteManifest opens the stream. It must be the first call.
func (w *WindowWriter) WriteManifest(m Manifest) {
	if !w.usable() {
		return
	}
	if w.haveMan {
		w.err = fmt.Errorf("segment: duplicate manifest in windowed stream")
		return
	}
	if _, err := chunk.ByID(m.EncodingID); err != nil {
		w.err = err
		return
	}
	w.man = m
	w.haveMan = true
	w.intervals = append(w.intervals, &windowInterval{})
}

// WriteCommit opens a buffered flush epoch in the current interval.
func (w *WindowWriter) WriteCommit(c Commit) {
	if !w.usable() {
		return
	}
	if !w.haveMan {
		w.err = fmt.Errorf("segment: commit before manifest")
		return
	}
	n := w.man.Threads
	if len(c.Watermark) != n || len(c.Exited) != n || len(c.ChunkCount) != n || len(c.InputCount) != n {
		w.err = fmt.Errorf("segment: commit arrays do not match %d threads", n)
		return
	}
	cc := Commit{
		Epoch:      c.Epoch,
		Watermark:  append([]uint64(nil), c.Watermark...),
		Exited:     append([]bool(nil), c.Exited...),
		ChunkCount: append([]int(nil), c.ChunkCount...),
		InputCount: append([]int(nil), c.InputCount...),
	}
	iv := w.open()
	iv.epochs = append(iv.epochs, windowEpoch{commit: cc})
}

// WriteChunkBatch buffers thread's chunk entries into the open epoch.
// The entries are copied: callers may pass live log slices.
func (w *WindowWriter) WriteChunkBatch(thread int, entries []chunk.Entry) {
	if !w.usable() {
		return
	}
	if !w.haveMan {
		w.err = fmt.Errorf("segment: chunk batch before manifest")
		return
	}
	if thread < 0 || thread >= w.man.Threads {
		w.err = fmt.Errorf("segment: chunk batch for thread %d of %d", thread, w.man.Threads)
		return
	}
	iv := w.open()
	if len(iv.epochs) == 0 {
		w.err = fmt.Errorf("segment: chunk batch outside an epoch")
		return
	}
	e := &iv.epochs[len(iv.epochs)-1]
	e.batches = append(e.batches, windowBatch{thread: thread, entries: append([]chunk.Entry(nil), entries...)})
}

// WriteInputBatch buffers the open epoch's input records. The records
// are deep-copied — including each syscall record's Data bytes, which
// otherwise alias the recorder's live syscall-data arena — so buffered
// epochs stay stable however long they sit in the window.
func (w *WindowWriter) WriteInputBatch(recs []capo.Record) {
	if !w.usable() {
		return
	}
	if !w.haveMan {
		w.err = fmt.Errorf("segment: input batch before manifest")
		return
	}
	iv := w.open()
	if len(iv.epochs) == 0 {
		w.err = fmt.Errorf("segment: input batch outside an epoch")
		return
	}
	e := &iv.epochs[len(iv.epochs)-1]
	for _, r := range recs {
		e.inputs = append(e.inputs, r.Clone())
	}
}

// WriteCheckpoint closes the current interval and opens the next one,
// anchored at cp, then garbage-collects intervals that fell out of the
// retention window.
func (w *WindowWriter) WriteCheckpoint(cp *CheckpointPayload) {
	if !w.usable() {
		return
	}
	if !w.haveMan {
		w.err = fmt.Errorf("segment: checkpoint before manifest")
		return
	}
	if len(cp.ChunkPos) != w.man.Threads {
		w.err = fmt.Errorf("segment: checkpoint has %d chunk positions for %d threads",
			len(cp.ChunkPos), w.man.Threads)
		return
	}
	// Deep-copied for the same reason as input batches: the anchor is
	// buffered until its interval leaves the window, and its memory image,
	// output and position slices must not track the caller's buffers.
	w.intervals = append(w.intervals, &windowInterval{anchor: cp.Clone()})
	w.evict()
}

// evict drops intervals older than the retention window. The open
// interval always survives; the genesis interval (program start to the
// first checkpoint) is dropped as soon as K checkpoint-anchored
// intervals exist, and after that the oldest anchored interval goes
// each time a new one opens.
func (w *WindowWriter) evict() {
	for len(w.intervals) > 1 {
		genesis := w.intervals[0].anchor == nil
		anchored := len(w.intervals)
		if genesis {
			anchored--
		}
		if (genesis && anchored >= w.k) || anchored > w.k {
			w.intervals[0] = nil // release the interval's buffers
			w.intervals = w.intervals[1:]
			w.evicted = true
			continue
		}
		break
	}
}

// WriteFinal records the reference final state; rendered as the
// window's last segment.
func (w *WindowWriter) WriteFinal(f *FinalPayload) {
	if !w.usable() {
		return
	}
	if !w.haveMan {
		w.err = fmt.Errorf("segment: final before manifest")
		return
	}
	w.final = f.Clone()
}

// rebase returns cp with its log positions made relative to the window
// base. Everything else (timestamps, contexts, memory, output) stays
// absolute.
func rebase(cp *CheckpointPayload, baseChunk []int, baseInput int) *CheckpointPayload {
	if baseChunk == nil {
		return cp
	}
	out := *cp
	out.ChunkPos = make([]int, len(cp.ChunkPos))
	for t, pos := range cp.ChunkPos {
		out.ChunkPos[t] = pos - baseChunk[t]
	}
	out.InputPos = cp.InputPos - baseInput
	return &out
}

// render writes the retained window as an ordinary segmented stream.
func (w *WindowWriter) render(buf *bytes.Buffer) (*Writer, error) {
	if !w.haveMan {
		return nil, fmt.Errorf("segment: window rendered before manifest")
	}
	wr := NewWriter(buf)
	wr.Compress = w.Compress
	man := w.man
	man.Window = uint64(w.k)
	man.BaseCheckpoint = w.intervals[0].anchor != nil
	wr.WriteManifest(man)

	var baseChunk []int
	baseInput := 0
	if man.BaseCheckpoint {
		base := w.intervals[0].anchor
		baseChunk = base.ChunkPos
		baseInput = base.InputPos
	}
	epoch := uint64(0)
	for _, iv := range w.intervals {
		if iv.anchor != nil {
			wr.WriteCheckpoint(rebase(iv.anchor, baseChunk, baseInput))
		}
		for _, e := range iv.epochs {
			c := e.commit
			c.Epoch = epoch
			epoch++
			wr.WriteCommit(c)
			for _, b := range e.batches {
				wr.WriteChunkBatch(b.thread, b.entries)
			}
			if len(e.inputs) > 0 {
				wr.WriteInputBatch(e.inputs)
			}
		}
	}
	if w.final != nil {
		wr.WriteFinal(w.final)
	}
	return wr, wr.Err()
}

// Window renders the currently retained window as a complete segmented
// stream (including the final segment if one was written). The
// retention oracle and crash sweeps snapshot the ring through this.
func (w *WindowWriter) Window() ([]byte, error) {
	if w.err != nil {
		return nil, w.err
	}
	var buf bytes.Buffer
	if _, err := w.render(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Close renders the retained window and writes it to the underlying
// writer. Idempotent; later calls return the first error.
func (w *WindowWriter) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	if w.err != nil {
		return w.err
	}
	var buf bytes.Buffer
	wr, err := w.render(&buf)
	if err != nil {
		w.err = err
		return w.err
	}
	if w.out != nil {
		if _, err := w.out.Write(buf.Bytes()); err != nil {
			w.err = fmt.Errorf("segment: window write: %w", err)
			return w.err
		}
	}
	w.segments = wr.Segments()
	w.totalBytes = wr.TotalBytes()
	w.framingBytes = wr.FramingBytes()
	return nil
}
