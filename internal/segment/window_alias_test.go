package segment_test

import (
	"bytes"
	"testing"

	"repro/internal/capo"
	"repro/internal/chunk"
	"repro/internal/segment"
)

// driveAliasSession writes one two-epoch, two-interval session into the
// windowed sink, passing mutable as the caller-owned buffers. It returns
// every buffer the caller keeps a handle on, so the test can scribble
// over them after the writes returned.
type aliasBuffers struct {
	recData  []byte
	memImage []byte
	output   []byte
	chunkPos []int
	finalOut []byte
}

func driveAliasSession(w *segment.WindowWriter) aliasBuffers {
	bufs := aliasBuffers{
		recData:  []byte{0xAA, 0xBB, 0xCC},
		memImage: []byte{1, 2, 3, 4, 5, 6, 7, 8},
		output:   []byte("hello"),
		chunkPos: []int{1, 0},
		finalOut: []byte("final output"),
	}
	w.WriteManifest(sinkManifest())
	w.WriteCommit(sinkCommit(0))
	w.WriteChunkBatch(0, []chunk.Entry{{Size: 3, TS: 5, Reason: chunk.ReasonFlush}})
	w.WriteInputBatch([]capo.Record{{
		Kind: capo.KindSyscall, Thread: 0, TS: 6, Sysno: 7, Ret: 1,
		Addr: 64, Data: bufs.recData,
	}})
	cp := sinkCheckpoint()
	cp.MemImage = bufs.memImage
	cp.Output = bufs.output
	cp.ChunkPos = bufs.chunkPos
	w.WriteCheckpoint(cp)
	c1 := sinkCommit(1)
	c1.ChunkCount = []int{0, 1}
	c1.InputCount = []int{0, 0}
	w.WriteCommit(c1)
	w.WriteChunkBatch(1, []chunk.Entry{{Size: 2, TS: 8, Reason: chunk.ReasonFlush}})
	fin := sinkFinal()
	fin.Output = bufs.finalOut
	w.WriteFinal(fin)
	return bufs
}

// TestWindowWriterDoesNotAliasCallerBuffers is the regression test for
// the shallow-copy bug: WriteInputBatch claimed its records were copied
// but only shallow-copied the structs, so a buffered epoch's syscall
// Data kept aliasing the recorder's live buffers (and WriteCheckpoint /
// WriteFinal buffered the caller's payload slices outright). Mutating
// every caller-owned buffer after the writes must leave the rendered
// window byte-identical to an undisturbed twin.
func TestWindowWriterDoesNotAliasCallerBuffers(t *testing.T) {
	pristine := segment.NewWindowWriter(nil, 4)
	driveAliasSession(pristine)
	want, err := pristine.Window()
	if err != nil {
		t.Fatalf("pristine window: %v", err)
	}

	mutated := segment.NewWindowWriter(nil, 4)
	bufs := driveAliasSession(mutated)
	for i := range bufs.recData {
		bufs.recData[i] = 0xFF
	}
	for i := range bufs.memImage {
		bufs.memImage[i] = 0xEE
	}
	copy(bufs.output, "XXXXX")
	bufs.chunkPos[0] = 99
	copy(bufs.finalOut, "CLOBBERED!!!")

	got, err := mutated.Window()
	if err != nil {
		t.Fatalf("mutated-caller window: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("rendered window tracked the caller's buffers after the write returned:\n got %d bytes\nwant %d bytes (first divergence at %d)",
			len(got), len(want), firstDiff(got, want))
	}

	// The salvaged window must carry the values as written, not the
	// clobbered ones.
	st, _, err := segment.Salvage(got)
	if err != nil {
		t.Fatalf("salvage: %v", err)
	}
	if n := st.InputLog.Len(); n != 1 {
		t.Fatalf("%d input records salvaged, want 1", n)
	}
	if d := st.InputLog.Records[0].Data; !bytes.Equal(d, []byte{0xAA, 0xBB, 0xCC}) {
		t.Fatalf("salvaged record data %x, want aabbcc", d)
	}
	if len(st.Checkpoints) != 1 {
		t.Fatalf("%d checkpoints salvaged, want 1", len(st.Checkpoints))
	}
	if img := st.Checkpoints[0].MemImage; !bytes.Equal(img, []byte{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Fatalf("salvaged checkpoint memory image %x mutated", img)
	}
	if out := st.Final.Output; !bytes.Equal(out, []byte("final output")) {
		t.Fatalf("salvaged final output %q mutated", out)
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
