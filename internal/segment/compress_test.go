package segment_test

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/capo"
	"repro/internal/chunk"
	"repro/internal/isa"
	"repro/internal/segment"
)

// buildBulkStream writes a stream whose chunk/input batches are large
// and regular enough that compression must win, using wr as the sink.
func buildBulkStream(t *testing.T, wr *segment.Writer) {
	t.Helper()
	wr.WriteManifest(segment.Manifest{
		ProgramName: "bulk", Threads: 2, StackWordsPerThread: 64,
		EncodingID: chunk.DeltaID, FlushEveryChunks: 256,
	})
	var recs []capo.Record
	entries := [2][]chunk.Entry{}
	ts := uint64(1)
	for i := 0; i < 200; i++ {
		for th := 0; th < 2; th++ {
			entries[th] = append(entries[th], chunk.Entry{Size: 40, TS: ts, Reason: chunk.ReasonSyscall})
			ts += 3
		}
		recs = append(recs, capo.Record{
			Kind: capo.KindSyscall, Thread: i % 2, Seq: i / 2, TS: ts,
			Sysno: 7, Ret: 64, Addr: 0x1000, Data: bytes.Repeat([]byte{byte(i)}, 64),
		})
		ts++
	}
	wr.WriteCommit(segment.Commit{
		Epoch:      0,
		Watermark:  []uint64{ts, ts},
		Exited:     []bool{false, false},
		ChunkCount: []int{len(entries[0]), len(entries[1])},
		InputCount: []int{100, 100},
	})
	wr.WriteChunkBatch(0, entries[0])
	wr.WriteChunkBatch(1, entries[1])
	wr.WriteInputBatch(recs)
	wr.WriteFinal(&segment.FinalPayload{
		MemChecksum:      1,
		FinalContexts:    []isa.Context{{PC: 1}, {PC: 2}},
		RetiredPerThread: []uint64{9, 9},
	})
	if err := wr.Err(); err != nil {
		t.Fatalf("writing stream: %v", err)
	}
}

// TestCompressedStreamDecodesIdentically is the compressed-segment
// contract: a compressed stream is smaller, decodes (and salvages) to
// exactly the stream its uncompressed twin describes, and the
// compression is invisible above the segment framing layer.
func TestCompressedStreamDecodesIdentically(t *testing.T) {
	var plain, comp bytes.Buffer
	buildBulkStream(t, segment.NewWriter(&plain))
	cw := segment.NewWriter(&comp)
	cw.Compress = true
	buildBulkStream(t, cw)

	if comp.Len() >= plain.Len() {
		t.Fatalf("compressed stream is %d bytes, uncompressed %d", comp.Len(), plain.Len())
	}
	t.Logf("stream: %d bytes plain, %d compressed (%.2fx)",
		plain.Len(), comp.Len(), float64(plain.Len())/float64(comp.Len()))

	want, err := segment.Decode(plain.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	got, err := segment.Decode(comp.Bytes())
	if err != nil {
		t.Fatalf("compressed stream no longer decodes: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("compressed stream decodes to a different recording")
	}

	// Salvage must behave identically too — compression must not change
	// what a torn compressed stream yields vs its plain twin cut at the
	// same segment boundary.
	for _, end := range segment.Offsets(comp.Bytes())[:4] {
		if _, _, err := segment.Salvage(comp.Bytes()[:end]); err != nil {
			t.Fatalf("salvage of compressed prefix to %d: %v", end, err)
		}
	}
}

// TestCompressedStreamBitFlipsRejected extends the corruption sweep to
// compressed segments: flipping bits in a compressed payload must yield
// a typed error or a clean salvage cut — never a panic or silently
// wrong data (the CRC covers the on-wire compressed bytes).
func TestCompressedStreamBitFlipsRejected(t *testing.T) {
	var comp bytes.Buffer
	cw := segment.NewWriter(&comp)
	cw.Compress = true
	buildBulkStream(t, cw)
	data := comp.Bytes()
	for off := 0; off < len(data); off += 97 {
		bad := append([]byte{}, data...)
		bad[off] ^= 0x10
		// Must not panic; any decode that succeeds salvaged a valid prefix.
		segment.Salvage(bad)
	}
}

// TestUncompressibleBatchStaysRaw pins the compress-iff-smaller rule:
// a batch of incompressible payload bytes is written raw even with
// Compress on, so enabling compression can never inflate a stream.
func TestUncompressibleBatchStaysRaw(t *testing.T) {
	noise := make([]byte, 4096)
	x := uint64(0x9e3779b97f4a7c15)
	for i := range noise {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		noise[i] = byte(x)
	}
	write := func(compress bool) []byte {
		var buf bytes.Buffer
		w := segment.NewWriter(&buf)
		w.Compress = compress
		w.WriteManifest(segment.Manifest{
			ProgramName: "noise", Threads: 1, EncodingID: chunk.DeltaID, FlushEveryChunks: 4,
		})
		w.WriteCommit(segment.Commit{
			Epoch: 0, Watermark: []uint64{2}, Exited: []bool{false},
			ChunkCount: []int{1}, InputCount: []int{1},
		})
		w.WriteChunkBatch(0, []chunk.Entry{{Size: 4, TS: 1, Reason: chunk.ReasonSyscall}})
		w.WriteInputBatch([]capo.Record{{
			Kind: capo.KindSyscall, Thread: 0, TS: 1, Sysno: 7,
			Ret: uint64(len(noise)), Addr: 0x100, Data: noise,
		}})
		if err := w.Err(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	plain, compressed := write(false), write(true)
	if !bytes.Equal(plain, compressed) {
		t.Fatalf("incompressible stream changed under Compress: %d vs %d bytes", len(plain), len(compressed))
	}
}
