package segment

import (
	"encoding/binary"
	"fmt"

	"repro/internal/isa"
)

// Manifest is the stream's opening segment: everything a reader needs to
// interpret the rest of the stream and rebuild a recording's metadata.
type Manifest struct {
	// ProgramName names the recorded program.
	ProgramName string
	// Threads is the recorded thread count.
	Threads int
	// StackWordsPerThread reproduces the recorder's address-space layout.
	StackWordsPerThread uint64
	// CountRepIterations records the hardware's counting convention.
	CountRepIterations bool
	// EncodingID selects the chunk-entry encoding for chunk batches.
	EncodingID byte
	// FlushEveryChunks documents the flush cadence the stream was written
	// with (informational).
	FlushEveryChunks uint64
}

const manifestVersion = 1

func appendManifest(dst []byte, m Manifest) []byte {
	dst = append(dst, manifestVersion)
	var flags byte
	if m.CountRepIterations {
		flags |= 1
	}
	dst = append(dst, flags, m.EncodingID)
	dst = binary.AppendUvarint(dst, uint64(m.Threads))
	dst = binary.AppendUvarint(dst, m.StackWordsPerThread)
	dst = binary.AppendUvarint(dst, m.FlushEveryChunks)
	dst = binary.AppendUvarint(dst, uint64(len(m.ProgramName)))
	return append(dst, m.ProgramName...)
}

func decodeManifest(data []byte) (Manifest, error) {
	var m Manifest
	if len(data) < 3 {
		return m, fmt.Errorf("%w: short manifest", ErrTruncated)
	}
	if data[0] != manifestVersion {
		return m, fmt.Errorf("%w: manifest version %d", ErrCorrupt, data[0])
	}
	if data[1] > 1 {
		return m, fmt.Errorf("%w: manifest flags %#x", ErrCorrupt, data[1])
	}
	m.CountRepIterations = data[1]&1 != 0
	m.EncodingID = data[2]
	rd := &reader{data: data, pos: 3}
	threads, err := rd.uvarint()
	if err != nil {
		return m, err
	}
	if threads == 0 || threads > 1<<16 {
		return m, fmt.Errorf("%w: implausible thread count %d", ErrCorrupt, threads)
	}
	m.Threads = int(threads)
	if m.StackWordsPerThread, err = rd.uvarint(); err != nil {
		return m, err
	}
	if m.FlushEveryChunks, err = rd.uvarint(); err != nil {
		return m, err
	}
	name, err := rd.bytes()
	if err != nil {
		return m, err
	}
	m.ProgramName = string(name)
	if err := rd.done(); err != nil {
		return m, err
	}
	return m, nil
}

// Commit opens a flush epoch. It is written *before* the epoch's data
// segments and declares, per thread: the recorder clock at the flush
// point (Watermark — every already-emitted item of that thread has a
// strictly smaller timestamp, every later item a greater-or-equal one),
// whether the thread has exited, and how many chunk entries / input
// records the epoch's batches will carry. A salvage scanner uses these
// to compute per-thread completeness for a torn trailing epoch.
type Commit struct {
	Epoch      uint64
	Watermark  []uint64
	Exited     []bool
	ChunkCount []int
	InputCount []int
}

func appendCommit(dst []byte, c Commit) []byte {
	dst = binary.AppendUvarint(dst, c.Epoch)
	for t := range c.Watermark {
		dst = binary.AppendUvarint(dst, c.Watermark[t])
		var flags byte
		if c.Exited[t] {
			flags |= 1
		}
		dst = append(dst, flags)
		dst = binary.AppendUvarint(dst, uint64(c.ChunkCount[t]))
		dst = binary.AppendUvarint(dst, uint64(c.InputCount[t]))
	}
	return dst
}

func decodeCommit(data []byte, threads int) (Commit, error) {
	c := Commit{
		Watermark:  make([]uint64, threads),
		Exited:     make([]bool, threads),
		ChunkCount: make([]int, threads),
		InputCount: make([]int, threads),
	}
	rd := &reader{data: data}
	var err error
	if c.Epoch, err = rd.uvarint(); err != nil {
		return c, err
	}
	for t := 0; t < threads; t++ {
		if c.Watermark[t], err = rd.uvarint(); err != nil {
			return c, err
		}
		flags, err := rd.byte()
		if err != nil {
			return c, err
		}
		if flags > 1 {
			return c, fmt.Errorf("%w: commit flags %#x", ErrCorrupt, flags)
		}
		c.Exited[t] = flags&1 != 0
		n, err := rd.uvarint()
		if err != nil {
			return c, err
		}
		if n > maxPayload {
			return c, fmt.Errorf("%w: implausible chunk count %d", ErrCorrupt, n)
		}
		c.ChunkCount[t] = int(n)
		if n, err = rd.uvarint(); err != nil {
			return c, err
		}
		if n > maxPayload {
			return c, fmt.Errorf("%w: implausible input count %d", ErrCorrupt, n)
		}
		c.InputCount[t] = int(n)
	}
	if err := rd.done(); err != nil {
		return c, err
	}
	return c, nil
}

// CheckpointPayload is a flight-recorder snapshot in stream form —
// a neutral mirror of machine.Checkpoint (segment cannot import machine:
// machine imports segment).
type CheckpointPayload struct {
	// RetiredAt is the global retired-instruction count at the snapshot.
	RetiredAt uint64
	// MemImage is the architectural memory image bytes.
	MemImage []byte
	// Per-thread state, indexed by thread ID.
	Contexts []isa.Context
	Exited   []bool
	SigRegs  [][isa.NumRegs]uint64
	SigPC    []int
	// HandlerPC/HandlerOK mirror the registered signal handler.
	HandlerPC int
	HandlerOK bool
	// Output is fd-1 output written before the snapshot.
	Output []byte
	// ChunkPos[t] is thread t's chunk-log length at the snapshot;
	// InputPos the input-log length. Both equal the counts streamed so
	// far, since a checkpoint segment is always preceded by a flush.
	ChunkPos []int
	InputPos int
}

func appendCheckpointPayload(dst []byte, cp *CheckpointPayload) []byte {
	dst = binary.AppendUvarint(dst, cp.RetiredAt)
	dst = binary.AppendUvarint(dst, uint64(len(cp.MemImage)))
	dst = append(dst, cp.MemImage...)
	for t := range cp.Contexts {
		dst = appendContext(dst, cp.Contexts[t])
		var flags byte
		if cp.Exited[t] {
			flags |= 1
		}
		dst = append(dst, flags)
		for _, r := range cp.SigRegs[t] {
			dst = binary.AppendUvarint(dst, r)
		}
		dst = binary.AppendUvarint(dst, uint64(cp.SigPC[t]))
		dst = binary.AppendUvarint(dst, uint64(cp.ChunkPos[t]))
	}
	dst = binary.AppendUvarint(dst, uint64(cp.InputPos))
	dst = binary.AppendUvarint(dst, uint64(cp.HandlerPC))
	var flags byte
	if cp.HandlerOK {
		flags |= 1
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(len(cp.Output)))
	return append(dst, cp.Output...)
}

func decodeCheckpointPayload(data []byte, threads int) (*CheckpointPayload, error) {
	cp := &CheckpointPayload{}
	rd := &reader{data: data}
	var err error
	if cp.RetiredAt, err = rd.uvarint(); err != nil {
		return nil, err
	}
	if cp.MemImage, err = rd.bytes(); err != nil {
		return nil, err
	}
	for t := 0; t < threads; t++ {
		ctx, err := rd.context()
		if err != nil {
			return nil, err
		}
		cp.Contexts = append(cp.Contexts, ctx)
		flags, err := rd.byte()
		if err != nil {
			return nil, err
		}
		cp.Exited = append(cp.Exited, flags&1 != 0)
		var regs [isa.NumRegs]uint64
		for i := range regs {
			if regs[i], err = rd.uvarint(); err != nil {
				return nil, err
			}
		}
		cp.SigRegs = append(cp.SigRegs, regs)
		pc, err := rd.uvarint()
		if err != nil {
			return nil, err
		}
		cp.SigPC = append(cp.SigPC, int(pc))
		pos, err := rd.uvarint()
		if err != nil {
			return nil, err
		}
		if pos > maxPayload {
			return nil, fmt.Errorf("%w: implausible checkpoint chunk position %d", ErrCorrupt, pos)
		}
		cp.ChunkPos = append(cp.ChunkPos, int(pos))
	}
	pos, err := rd.uvarint()
	if err != nil {
		return nil, err
	}
	if pos > maxPayload {
		return nil, fmt.Errorf("%w: implausible checkpoint input position %d", ErrCorrupt, pos)
	}
	cp.InputPos = int(pos)
	hpc, err := rd.uvarint()
	if err != nil {
		return nil, err
	}
	cp.HandlerPC = int(hpc)
	flags, err := rd.byte()
	if err != nil {
		return nil, err
	}
	if flags > 1 {
		return nil, fmt.Errorf("%w: checkpoint flags %#x", ErrCorrupt, flags)
	}
	cp.HandlerOK = flags&1 != 0
	if cp.Output, err = rd.bytes(); err != nil {
		return nil, err
	}
	if err := rd.done(); err != nil {
		return nil, err
	}
	return cp, nil
}

// FinalPayload is the reference final state, written as the stream's
// last segment. Its presence marks the stream complete.
type FinalPayload struct {
	MemChecksum      uint64
	Output           []byte
	FinalContexts    []isa.Context
	RetiredPerThread []uint64
}

func appendFinalPayload(dst []byte, f *FinalPayload) []byte {
	dst = binary.AppendUvarint(dst, f.MemChecksum)
	dst = binary.AppendUvarint(dst, uint64(len(f.Output)))
	dst = append(dst, f.Output...)
	for t := range f.FinalContexts {
		dst = appendContext(dst, f.FinalContexts[t])
		dst = binary.AppendUvarint(dst, f.RetiredPerThread[t])
	}
	return dst
}

func decodeFinalPayload(data []byte, threads int) (*FinalPayload, error) {
	f := &FinalPayload{}
	rd := &reader{data: data}
	var err error
	if f.MemChecksum, err = rd.uvarint(); err != nil {
		return nil, err
	}
	if f.Output, err = rd.bytes(); err != nil {
		return nil, err
	}
	for t := 0; t < threads; t++ {
		ctx, err := rd.context()
		if err != nil {
			return nil, err
		}
		f.FinalContexts = append(f.FinalContexts, ctx)
		r, err := rd.uvarint()
		if err != nil {
			return nil, err
		}
		f.RetiredPerThread = append(f.RetiredPerThread, r)
	}
	if err := rd.done(); err != nil {
		return nil, err
	}
	return f, nil
}

// reader is a bounds-checked payload cursor; all failures wrap the
// shared sentinels so salvage can classify them.
type reader struct {
	data []byte
	pos  int
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.pos:])
	if n == 0 {
		return 0, fmt.Errorf("%w: payload ends mid-field", ErrTruncated)
	}
	if n < 0 {
		return 0, fmt.Errorf("%w: varint overflow", ErrCorrupt)
	}
	r.pos += n
	return v, nil
}

func (r *reader) byte() (byte, error) {
	if r.pos >= len(r.data) {
		return 0, fmt.Errorf("%w: payload ends mid-field", ErrTruncated)
	}
	b := r.data[r.pos]
	r.pos++
	return b, nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	// Compare as uint64: a huge length must not overflow int.
	if n > uint64(len(r.data)-r.pos) {
		return nil, fmt.Errorf("%w: length %d overruns payload", ErrTruncated, n)
	}
	out := append([]byte(nil), r.data[r.pos:r.pos+int(n)]...)
	r.pos += int(n)
	return out, nil
}

func (r *reader) context() (isa.Context, error) {
	var ctx isa.Context
	for i := range ctx.Regs {
		v, err := r.uvarint()
		if err != nil {
			return ctx, err
		}
		ctx.Regs[i] = v
	}
	pc, err := r.uvarint()
	if err != nil {
		return ctx, err
	}
	ctx.PC = int(pc)
	if ctx.Retired, err = r.uvarint(); err != nil {
		return ctx, err
	}
	flags, err := r.byte()
	if err != nil {
		return ctx, err
	}
	if flags > 3 {
		return ctx, fmt.Errorf("%w: context flags %#x", ErrCorrupt, flags)
	}
	ctx.Halted = flags&1 != 0
	ctx.RepActive = flags&2 != 0
	if ctx.RepDone, err = r.uvarint(); err != nil {
		return ctx, err
	}
	return ctx, nil
}

func (r *reader) done() error {
	if r.pos != len(r.data) {
		return fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(r.data)-r.pos)
	}
	return nil
}

func appendContext(dst []byte, ctx isa.Context) []byte {
	for _, r := range ctx.Regs {
		dst = binary.AppendUvarint(dst, r)
	}
	dst = binary.AppendUvarint(dst, uint64(ctx.PC))
	dst = binary.AppendUvarint(dst, ctx.Retired)
	var flags byte
	if ctx.Halted {
		flags |= 1
	}
	if ctx.RepActive {
		flags |= 2
	}
	dst = append(dst, flags)
	return binary.AppendUvarint(dst, ctx.RepDone)
}
