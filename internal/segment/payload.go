package segment

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/wire"
)

// Manifest is the stream's opening segment: everything a reader needs to
// interpret the rest of the stream and rebuild a recording's metadata.
type Manifest struct {
	// ProgramName names the recorded program.
	ProgramName string
	// Threads is the recorded thread count.
	Threads int
	// StackWordsPerThread reproduces the recorder's address-space layout.
	StackWordsPerThread uint64
	// CountRepIterations records the hardware's counting convention.
	CountRepIterations bool
	// EncodingID selects the chunk-entry encoding for chunk batches.
	EncodingID byte
	// FlushEveryChunks documents the flush cadence the stream was written
	// with (informational).
	FlushEveryChunks uint64
	// Window is the flight-recorder retention window in checkpoint
	// intervals; 0 means the stream is unbounded (the default). The
	// field is flag-gated on the wire, so non-windowed streams encode
	// exactly as they did before retention existed.
	Window uint64
	// BaseCheckpoint marks a windowed stream whose oldest intervals were
	// garbage-collected: the first segment after the manifest must be
	// the window-base checkpoint, and every checkpoint's log positions
	// are relative to that base. Only valid with Window > 0.
	BaseCheckpoint bool
}

const manifestVersion = 1

// Manifest flag bits. flagWindowed gates the Window field so legacy
// (unbounded) streams stay byte-identical.
const (
	flagCountReps byte = 1
	flagWindowed  byte = 2
	flagHasBase   byte = 4
)

func appendManifest(a *wire.Appender, m Manifest) {
	a.Byte(manifestVersion)
	var flags byte
	if m.CountRepIterations {
		flags |= flagCountReps
	}
	if m.Window > 0 {
		flags |= flagWindowed
	}
	if m.BaseCheckpoint {
		flags |= flagHasBase
	}
	a.Byte(flags)
	a.Byte(m.EncodingID)
	a.Int(m.Threads)
	a.Uvarint(m.StackWordsPerThread)
	a.Uvarint(m.FlushEveryChunks)
	a.String(m.ProgramName)
	if m.Window > 0 {
		a.Uvarint(m.Window)
	}
}

func decodeManifest(data []byte) (Manifest, error) {
	var m Manifest
	if len(data) < 3 {
		return m, fmt.Errorf("%w: short manifest", ErrTruncated)
	}
	if data[0] != manifestVersion {
		return m, fmt.Errorf("%w: manifest version %d", ErrCorrupt, data[0])
	}
	flags := data[1]
	if flags > flagCountReps|flagWindowed|flagHasBase {
		return m, fmt.Errorf("%w: manifest flags %#x", ErrCorrupt, flags)
	}
	if flags&flagHasBase != 0 && flags&flagWindowed == 0 {
		return m, fmt.Errorf("%w: manifest base flag without a retention window", ErrCorrupt)
	}
	m.CountRepIterations = flags&flagCountReps != 0
	m.BaseCheckpoint = flags&flagHasBase != 0
	m.EncodingID = data[2]
	rd := newReader(data)
	rd.Skip(3)
	threads, err := rd.Uvarint()
	if err != nil {
		return m, err
	}
	if threads == 0 || threads > 1<<16 {
		return m, fmt.Errorf("%w: implausible thread count %d", ErrCorrupt, threads)
	}
	m.Threads = int(threads)
	if m.StackWordsPerThread, err = rd.Uvarint(); err != nil {
		return m, err
	}
	if m.FlushEveryChunks, err = rd.Uvarint(); err != nil {
		return m, err
	}
	name, err := rd.View()
	if err != nil {
		return m, err
	}
	m.ProgramName = string(name)
	if flags&flagWindowed != 0 {
		if m.Window, err = rd.Uvarint(); err != nil {
			return m, err
		}
		if m.Window == 0 {
			return m, fmt.Errorf("%w: windowed manifest with zero retention window", ErrCorrupt)
		}
	}
	if err := rd.Done(); err != nil {
		return m, err
	}
	return m, nil
}

// Commit opens a flush epoch. It is written *before* the epoch's data
// segments and declares, per thread: the recorder clock at the flush
// point (Watermark — every already-emitted item of that thread has a
// strictly smaller timestamp, every later item a greater-or-equal one),
// whether the thread has exited, and how many chunk entries / input
// records the epoch's batches will carry. A salvage scanner uses these
// to compute per-thread completeness for a torn trailing epoch.
type Commit struct {
	Epoch      uint64
	Watermark  []uint64
	Exited     []bool
	ChunkCount []int
	InputCount []int
}

func appendCommit(a *wire.Appender, c Commit) {
	a.Uvarint(c.Epoch)
	for t := range c.Watermark {
		a.Uvarint(c.Watermark[t])
		var flags byte
		if c.Exited[t] {
			flags |= 1
		}
		a.Byte(flags)
		a.Int(c.ChunkCount[t])
		a.Int(c.InputCount[t])
	}
}

func decodeCommit(data []byte, threads int) (Commit, error) {
	c := Commit{
		Watermark:  make([]uint64, threads),
		Exited:     make([]bool, threads),
		ChunkCount: make([]int, threads),
		InputCount: make([]int, threads),
	}
	rd := newReader(data)
	var err error
	if c.Epoch, err = rd.Uvarint(); err != nil {
		return c, err
	}
	for t := 0; t < threads; t++ {
		if c.Watermark[t], err = rd.Uvarint(); err != nil {
			return c, err
		}
		flags, err := rd.Byte()
		if err != nil {
			return c, err
		}
		if flags > 1 {
			return c, fmt.Errorf("%w: commit flags %#x", ErrCorrupt, flags)
		}
		c.Exited[t] = flags&1 != 0
		n, err := rd.Uvarint()
		if err != nil {
			return c, err
		}
		if n > maxPayload {
			return c, fmt.Errorf("%w: implausible chunk count %d", ErrCorrupt, n)
		}
		c.ChunkCount[t] = int(n)
		if n, err = rd.Uvarint(); err != nil {
			return c, err
		}
		if n > maxPayload {
			return c, fmt.Errorf("%w: implausible input count %d", ErrCorrupt, n)
		}
		c.InputCount[t] = int(n)
	}
	if err := rd.Done(); err != nil {
		return c, err
	}
	return c, nil
}

// CheckpointPayload is a flight-recorder snapshot in stream form —
// a neutral mirror of machine.Checkpoint (segment cannot import machine:
// machine imports segment).
type CheckpointPayload struct {
	// RetiredAt is the global retired-instruction count at the snapshot.
	RetiredAt uint64
	// MemImage is the architectural memory image bytes.
	MemImage []byte
	// Per-thread state, indexed by thread ID.
	Contexts []isa.Context
	Exited   []bool
	SigRegs  [][isa.NumRegs]uint64
	SigPC    []int
	// HandlerPC/HandlerOK mirror the registered signal handler.
	HandlerPC int
	HandlerOK bool
	// Output is fd-1 output written before the snapshot.
	Output []byte
	// ChunkPos[t] is thread t's chunk-log length at the snapshot;
	// InputPos the input-log length. Both equal the counts streamed so
	// far, since a checkpoint segment is always preceded by a flush.
	ChunkPos []int
	InputPos int
}

// Clone returns a deep copy: every slice (memory image, output, contexts,
// per-thread state, log positions) gets its own backing array. The
// windowed sink buffers checkpoint payloads across whole retention
// intervals, so it must not alias buffers the recorder keeps mutating.
func (cp *CheckpointPayload) Clone() *CheckpointPayload {
	out := *cp
	out.MemImage = append([]byte(nil), cp.MemImage...)
	out.Output = append([]byte(nil), cp.Output...)
	out.Contexts = append([]isa.Context(nil), cp.Contexts...)
	out.Exited = append([]bool(nil), cp.Exited...)
	out.SigRegs = append([][isa.NumRegs]uint64(nil), cp.SigRegs...)
	out.SigPC = append([]int(nil), cp.SigPC...)
	out.ChunkPos = append([]int(nil), cp.ChunkPos...)
	return &out
}

func appendCheckpointPayload(a *wire.Appender, cp *CheckpointPayload) {
	a.Uvarint(cp.RetiredAt)
	a.Blob(cp.MemImage)
	for t := range cp.Contexts {
		appendContext(a, cp.Contexts[t])
		var flags byte
		if cp.Exited[t] {
			flags |= 1
		}
		a.Byte(flags)
		for _, r := range cp.SigRegs[t] {
			a.Uvarint(r)
		}
		a.Int(cp.SigPC[t])
		a.Int(cp.ChunkPos[t])
	}
	a.Int(cp.InputPos)
	a.Int(cp.HandlerPC)
	var flags byte
	if cp.HandlerOK {
		flags |= 1
	}
	a.Byte(flags)
	a.Blob(cp.Output)
}

func decodeCheckpointPayload(data []byte, threads int) (*CheckpointPayload, error) {
	cp := &CheckpointPayload{}
	rd := newReader(data)
	var err error
	if cp.RetiredAt, err = rd.Uvarint(); err != nil {
		return nil, err
	}
	if cp.MemImage, err = rd.Blob(); err != nil {
		return nil, err
	}
	for t := 0; t < threads; t++ {
		ctx, err := rd.context()
		if err != nil {
			return nil, err
		}
		cp.Contexts = append(cp.Contexts, ctx)
		flags, err := rd.Byte()
		if err != nil {
			return nil, err
		}
		cp.Exited = append(cp.Exited, flags&1 != 0)
		var regs [isa.NumRegs]uint64
		for i := range regs {
			if regs[i], err = rd.Uvarint(); err != nil {
				return nil, err
			}
		}
		cp.SigRegs = append(cp.SigRegs, regs)
		pc, err := rd.Uvarint()
		if err != nil {
			return nil, err
		}
		cp.SigPC = append(cp.SigPC, int(pc))
		pos, err := rd.Uvarint()
		if err != nil {
			return nil, err
		}
		if pos > maxPayload {
			return nil, fmt.Errorf("%w: implausible checkpoint chunk position %d", ErrCorrupt, pos)
		}
		cp.ChunkPos = append(cp.ChunkPos, int(pos))
	}
	pos, err := rd.Uvarint()
	if err != nil {
		return nil, err
	}
	if pos > maxPayload {
		return nil, fmt.Errorf("%w: implausible checkpoint input position %d", ErrCorrupt, pos)
	}
	cp.InputPos = int(pos)
	hpc, err := rd.Uvarint()
	if err != nil {
		return nil, err
	}
	cp.HandlerPC = int(hpc)
	flags, err := rd.Byte()
	if err != nil {
		return nil, err
	}
	if flags > 1 {
		return nil, fmt.Errorf("%w: checkpoint flags %#x", ErrCorrupt, flags)
	}
	cp.HandlerOK = flags&1 != 0
	if cp.Output, err = rd.Blob(); err != nil {
		return nil, err
	}
	if err := rd.Done(); err != nil {
		return nil, err
	}
	return cp, nil
}

// FinalPayload is the reference final state, written as the stream's
// last segment. Its presence marks the stream complete.
type FinalPayload struct {
	MemChecksum      uint64
	Output           []byte
	FinalContexts    []isa.Context
	RetiredPerThread []uint64
}

// Clone returns a deep copy of the final payload; same aliasing contract
// as CheckpointPayload.Clone.
func (f *FinalPayload) Clone() *FinalPayload {
	out := *f
	out.Output = append([]byte(nil), f.Output...)
	out.FinalContexts = append([]isa.Context(nil), f.FinalContexts...)
	out.RetiredPerThread = append([]uint64(nil), f.RetiredPerThread...)
	return &out
}

func appendFinalPayload(a *wire.Appender, f *FinalPayload) {
	a.Uvarint(f.MemChecksum)
	a.Blob(f.Output)
	for t := range f.FinalContexts {
		appendContext(a, f.FinalContexts[t])
		a.Uvarint(f.RetiredPerThread[t])
	}
}

func decodeFinalPayload(data []byte, threads int) (*FinalPayload, error) {
	f := &FinalPayload{}
	rd := newReader(data)
	var err error
	if f.MemChecksum, err = rd.Uvarint(); err != nil {
		return nil, err
	}
	if f.Output, err = rd.Blob(); err != nil {
		return nil, err
	}
	for t := 0; t < threads; t++ {
		ctx, err := rd.context()
		if err != nil {
			return nil, err
		}
		f.FinalContexts = append(f.FinalContexts, ctx)
		r, err := rd.Uvarint()
		if err != nil {
			return nil, err
		}
		f.RetiredPerThread = append(f.RetiredPerThread, r)
	}
	if err := rd.Done(); err != nil {
		return nil, err
	}
	return f, nil
}

// reader is a payload cursor carrying segment's flavored sentinels; all
// failures wrap the shared wire sentinels through them, so salvage can
// classify damage with errors.Is.
type reader struct {
	wire.Cursor
}

func newReader(data []byte) *reader {
	return &reader{wire.CursorWith(data, ErrTruncated, ErrCorrupt)}
}

func (r *reader) context() (isa.Context, error) {
	var ctx isa.Context
	for i := range ctx.Regs {
		v, err := r.Uvarint()
		if err != nil {
			return ctx, err
		}
		ctx.Regs[i] = v
	}
	pc, err := r.Uvarint()
	if err != nil {
		return ctx, err
	}
	ctx.PC = int(pc)
	if ctx.Retired, err = r.Uvarint(); err != nil {
		return ctx, err
	}
	flags, err := r.Byte()
	if err != nil {
		return ctx, err
	}
	if flags > 3 {
		return ctx, fmt.Errorf("%w: context flags %#x", ErrCorrupt, flags)
	}
	ctx.Halted = flags&1 != 0
	ctx.RepActive = flags&2 != 0
	if ctx.RepDone, err = r.Uvarint(); err != nil {
		return ctx, err
	}
	return ctx, nil
}

func appendContext(a *wire.Appender, ctx isa.Context) {
	for _, r := range ctx.Regs {
		a.Uvarint(r)
	}
	a.Int(ctx.PC)
	a.Uvarint(ctx.Retired)
	var flags byte
	if ctx.Halted {
		flags |= 1
	}
	if ctx.RepActive {
		flags |= 2
	}
	a.Byte(flags)
	a.Uvarint(ctx.RepDone)
}
