package segment_test

import (
	"bytes"
	"testing"

	"repro/internal/capo"
	"repro/internal/chunk"
	"repro/internal/isa"
	"repro/internal/segment"
)

// corpusStream is a small valid stream seeding the fuzzer: manifest, one
// epoch with a chunk and input batch, and a final segment.
func corpusStream() []byte {
	var buf bytes.Buffer
	w := segment.NewWriter(&buf)
	w.WriteManifest(segment.Manifest{
		ProgramName: "fuzz", Threads: 1, StackWordsPerThread: 16,
		EncodingID: chunk.DeltaID, FlushEveryChunks: 2,
	})
	w.WriteCommit(segment.Commit{
		Epoch: 0, Watermark: []uint64{9}, Exited: []bool{true},
		ChunkCount: []int{2}, InputCount: []int{1},
	})
	w.WriteChunkBatch(0, []chunk.Entry{
		{Size: 3, TS: 1, Reason: chunk.ReasonSyscall},
		{Size: 4, TS: 6, Reason: chunk.ReasonFlush},
	})
	w.WriteInputBatch([]capo.Record{
		{Kind: capo.KindSyscall, Thread: 0, Seq: 0, TS: 4, Sysno: 2, Ret: 7, Data: []byte{0xaa}},
	})
	w.WriteFinal(&segment.FinalPayload{
		MemChecksum: 1, Output: []byte("ok"),
		FinalContexts:    []isa.Context{{PC: 2, Retired: 7, Halted: true}},
		RetiredPerThread: []uint64{7},
	})
	return buf.Bytes()
}

// FuzzSegmentStream feeds arbitrary bytes to the salvage scanner. The
// scanner must never panic, never keep bytes past the input, and every
// stream it reports as cleanly complete must also satisfy the strict
// decoder. A salvaged prefix must itself salvage to the same content
// (salvage is idempotent) — otherwise a second recovery pass could
// silently change the replayed execution.
func FuzzSegmentStream(f *testing.F) {
	valid := corpusStream()
	f.Add(valid)
	f.Add(valid[:len(valid)-5]) // torn tail
	badCRC := append([]byte(nil), valid...)
	badCRC[len(badCRC)-1] ^= 0x40 // corrupt final segment's checksum
	f.Add(badCRC)
	offs := segment.Offsets(valid)
	dup := append([]byte(nil), valid[:offs[1]]...) // duplicate commit segment
	dup = append(dup, valid[offs[0]:offs[1]]...)
	dup = append(dup, valid[offs[1]:]...)
	f.Add(dup)
	f.Add([]byte{})
	f.Add([]byte("QRSG"))

	f.Fuzz(func(t *testing.T, data []byte) {
		st, rep, err := segment.Salvage(data)
		if err != nil {
			return
		}
		if rep.BytesKept > len(data) {
			t.Fatalf("kept %d bytes of a %d-byte input", rep.BytesKept, len(data))
		}
		if rep.Complete && rep.Reason == "" {
			if _, err := segment.Decode(data[:rep.BytesKept]); err != nil {
				t.Fatalf("complete salvage rejected by strict decode: %v", err)
			}
		}
		again, rep2, err := segment.Salvage(data[:rep.BytesKept])
		if err != nil {
			t.Fatalf("re-salvage of kept prefix failed: %v", err)
		}
		if rep2.BytesKept != rep.BytesKept {
			t.Fatalf("re-salvage kept %d bytes, first pass kept %d", rep2.BytesKept, rep.BytesKept)
		}
		for th := range st.ChunkLogs {
			if again.ChunkLogs[th].Len() != st.ChunkLogs[th].Len() {
				t.Fatalf("re-salvage changed thread %d entry count: %d vs %d",
					th, again.ChunkLogs[th].Len(), st.ChunkLogs[th].Len())
			}
		}
		if again.InputLog.Len() != st.InputLog.Len() {
			t.Fatalf("re-salvage changed input count: %d vs %d", again.InputLog.Len(), st.InputLog.Len())
		}
	})
}
