package capo

import (
	"errors"
	"testing"

	"repro/internal/chunk"
)

func sampleLog() *InputLog {
	l := &InputLog{}
	l.Append(Record{Kind: KindSyscall, Thread: 0, Seq: 0, TS: 3, Sysno: 2, Ret: 9, Addr: 64, Data: []byte{1, 2, 3}})
	l.Append(Record{Kind: KindSignal, Thread: 1, Seq: 0, TS: 5, Signo: 7, Retired: 40, RepDone: 2})
	return l
}

func TestUnmarshalInputLogRejectsTrailingBytes(t *testing.T) {
	data := append(sampleLog().Marshal(), 0xff)
	_, err := UnmarshalInputLog(data)
	if err == nil {
		t.Fatal("trailing byte accepted")
	}
	if !errors.Is(err, ErrCorruptInput) || !errors.Is(err, chunk.ErrCorrupt) {
		t.Fatalf("trailing-byte error %v should wrap ErrCorruptInput and chunk.ErrCorrupt", err)
	}
}

func TestUnmarshalInputLogSentinels(t *testing.T) {
	valid := sampleLog().Marshal()
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"torn mid-record", valid[:len(valid)-4], chunk.ErrTruncated},
		{"short header", valid[:3], chunk.ErrTruncated},
		{"bad magic", append([]byte("XXXX"), valid[4:]...), chunk.ErrCorrupt},
		{"bad version", append(append([]byte{}, valid[:4]...), append([]byte{0x7f}, valid[5:]...)...), chunk.ErrCorrupt},
		{"unknown kind", func() []byte {
			d := append([]byte(nil), valid...)
			d[6] = 0x77 // first record's kind byte (magic+version+count)
			return d
		}(), chunk.ErrCorrupt},
	}
	for _, tc := range cases {
		_, err := UnmarshalInputLog(tc.data)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !errors.Is(err, ErrCorruptInput) {
			t.Errorf("%s: %v does not wrap ErrCorruptInput", tc.name, err)
		}
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: %v does not wrap shared sentinel %v", tc.name, err, tc.want)
		}
	}
}

func TestRecordsRoundTrip(t *testing.T) {
	recs := sampleLog().Records
	data := MarshalRecords(recs)
	got, err := UnmarshalRecords(data)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].String() != recs[i].String() {
			t.Errorf("record %d: got %v want %v", i, got[i], recs[i])
		}
	}
	if _, err := UnmarshalRecords(append(data, 0)); !errors.Is(err, chunk.ErrCorrupt) {
		t.Fatalf("trailing byte after records: err=%v, want chunk.ErrCorrupt", err)
	}
	if _, err := UnmarshalRecords(data[:len(data)-2]); !errors.Is(err, chunk.ErrTruncated) {
		t.Fatalf("torn records: err=%v, want chunk.ErrTruncated", err)
	}
}
