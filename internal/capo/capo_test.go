package capo

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/chunk"
	"repro/internal/mem"
)

// memPort adapts mem.Memory to CopyPort.
type memPort struct{ m *mem.Memory }

func (p memPort) Load(addr uint64) uint64     { return p.m.Load(addr) }
func (p memPort) Store(addr, val uint64)      { p.m.Store(addr, val) }

func TestByteHelpersRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) > 256 {
			data = data[:256]
		}
		m := mem.New(1024)
		p := memPort{m}
		StoreBytes(p, 64, data)
		return bytes.Equal(LoadBytes(p, 64, uint64(len(data))), data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKernelWriteCapturesOutput(t *testing.T) {
	k := NewKernel(1)
	m := mem.New(1024)
	m.StoreBytes(128, []byte("hello"))
	res := k.Handle(0, 0, SysWrite, 1, 128, 5, memPort{m})
	if res.Ret != 5 || res.Exit || res.Block {
		t.Errorf("write result = %+v", res)
	}
	if got := k.Output(1); !bytes.Equal(got, []byte("hello")) {
		t.Errorf("output = %q, want hello", got)
	}
	// Second write appends.
	k.Handle(0, 0, SysWrite, 1, 128, 2, memPort{m})
	if got := k.Output(1); string(got) != "hellohe" {
		t.Errorf("output = %q, want hellohe", got)
	}
}

func TestKernelReadDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) []byte {
		k := NewKernel(seed)
		m := mem.New(1024)
		res := k.Handle(0, 0, SysRead, 0, 64, 32, memPort{m})
		if res.Ret != 32 || res.CopyAddr != 64 || len(res.CopyData) != 32 {
			t.Fatalf("read result = %+v", res)
		}
		if !bytes.Equal(m.LoadBytes(64, 32), res.CopyData) {
			t.Fatal("memory does not hold the copied data")
		}
		return res.CopyData
	}
	a, b, c := run(7), run(7), run(8)
	if !bytes.Equal(a, b) {
		t.Error("same seed produced different input data")
	}
	if bytes.Equal(a, c) {
		t.Error("different seeds produced identical input data")
	}
}

func TestFutexWaitWake(t *testing.T) {
	k := NewKernel(1)
	m := mem.New(1024)
	m.Store(256, 1)
	p := memPort{m}

	// Value mismatch: EAGAIN, no block.
	res := k.Handle(0, 0, SysFutexWait, 256, 0, 0, p)
	if res.Block || res.Ret != FutexEAgain {
		t.Fatalf("mismatched wait = %+v", res)
	}

	// Matching wait blocks.
	res = k.Handle(0, 0, SysFutexWait, 256, 1, 0, p)
	if !res.Block {
		t.Fatalf("matching wait = %+v, want Block", res)
	}
	res = k.Handle(1, 0, SysFutexWait, 256, 1, 0, p)
	if !res.Block {
		t.Fatal("second waiter did not block")
	}
	if k.Waiters() != 2 {
		t.Fatalf("Waiters = %d, want 2", k.Waiters())
	}

	// Wake one: FIFO order.
	res = k.Handle(2, 0, SysFutexWake, 256, 1, 0, p)
	if res.Ret != 1 || len(res.Woken) != 1 || res.Woken[0] != 0 {
		t.Fatalf("wake result = %+v, want woken=[0]", res)
	}
	// Wake many: only one left.
	res = k.Handle(2, 0, SysFutexWake, 256, 10, 0, p)
	if res.Ret != 1 || len(res.Woken) != 1 || res.Woken[0] != 1 {
		t.Fatalf("second wake = %+v, want woken=[1]", res)
	}
	if k.Waiters() != 0 {
		t.Fatalf("Waiters = %d, want 0", k.Waiters())
	}
	// Wake with no waiters.
	res = k.Handle(2, 0, SysFutexWake, 256, 1, 0, p)
	if res.Ret != 0 {
		t.Fatalf("empty wake ret = %d, want 0", res.Ret)
	}
}

func TestMiscSyscalls(t *testing.T) {
	k := NewKernel(5)
	p := memPort{mem.New(64)}
	if res := k.Handle(3, 0, SysGetTID, 0, 0, 0, p); res.Ret != 3 {
		t.Errorf("gettid = %d, want 3", res.Ret)
	}
	if res := k.Handle(0, 1000, SysGetTime, 0, 0, 0, p); res.Ret < 1000 || res.Ret >= 1008 {
		t.Errorf("gettime = %d, want 1000..1007", res.Ret)
	}
	if res := k.Handle(0, 0, SysYield, 0, 0, 0, p); !res.Reschedule {
		t.Error("yield did not request reschedule")
	}
	if res := k.Handle(0, 0, SysExit, 0, 0, 0, p); !res.Exit {
		t.Error("exit did not exit")
	}
	r1 := k.Handle(0, 0, SysRandom, 0, 0, 0, p).Ret
	r2 := k.Handle(0, 0, SysRandom, 0, 0, 0, p).Ret
	if r1 == r2 {
		t.Error("consecutive SysRandom returned identical values")
	}
	if _, ok := k.HandlerPC(); ok {
		t.Error("handler registered before SysSigHandler")
	}
	k.Handle(0, 0, SysSigHandler, 42, 0, 0, p)
	if pc, ok := k.HandlerPC(); !ok || pc != 42 {
		t.Errorf("handler = %d,%v, want 42,true", pc, ok)
	}
}

func TestUnknownSyscallPanics(t *testing.T) {
	k := NewKernel(1)
	defer func() {
		if recover() == nil {
			t.Error("unknown syscall did not panic")
		}
	}()
	k.Handle(0, 0, 999, 0, 0, 0, memPort{mem.New(64)})
}

func TestInputLogRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := &InputLog{}
	for i := 0; i < 300; i++ {
		if rng.Intn(4) == 0 {
			l.Append(Record{
				Kind: KindSignal, Thread: rng.Intn(4), Seq: i, TS: uint64(i * 3),
				Signo: uint64(rng.Intn(32)), Retired: rng.Uint64() % (1 << 30), RepDone: uint64(rng.Intn(100)),
			})
		} else {
			data := make([]byte, rng.Intn(64))
			rng.Read(data)
			l.Append(Record{
				Kind: KindSyscall, Thread: rng.Intn(4), Seq: i, TS: uint64(i * 3),
				Sysno: uint64(1 + rng.Intn(10)), Ret: rng.Uint64() % 1000,
				Addr: uint64(rng.Intn(1 << 20)), Data: data,
			})
		}
	}
	got, err := UnmarshalInputLog(l.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != l.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), l.Len())
	}
	for i := range l.Records {
		a, b := l.Records[i], got.Records[i]
		if a.Kind != b.Kind || a.Thread != b.Thread || a.Seq != b.Seq || a.TS != b.TS ||
			a.Sysno != b.Sysno || a.Ret != b.Ret || a.Addr != b.Addr ||
			a.Signo != b.Signo || a.Retired != b.Retired || a.RepDone != b.RepDone ||
			!bytes.Equal(a.Data, b.Data) {
			t.Fatalf("record %d: %v != %v", i, b, a)
		}
	}
}

func TestInputLogRejectsGarbage(t *testing.T) {
	good := (&InputLog{Records: []Record{{Kind: KindSyscall, Sysno: 1}}}).Marshal()
	cases := [][]byte{
		nil,
		[]byte("QRIL"),
		[]byte("XXXX\x01\x00"),
		[]byte("QRIL\x09\x00"),
		good[:len(good)-1],
		append(append([]byte{}, good...), 0x00),
	}
	for i, c := range cases {
		if _, err := UnmarshalInputLog(c); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Unknown record kind.
	bad := []byte("QRIL\x01\x01\x07\x00\x00\x00")
	if _, err := UnmarshalInputLog(bad); err == nil {
		t.Error("unknown record kind accepted")
	}
}

func TestInputLogAccessors(t *testing.T) {
	l := &InputLog{}
	l.Append(Record{Kind: KindSyscall, Thread: 0, Data: []byte{1, 2, 3}})
	l.Append(Record{Kind: KindSyscall, Thread: 1, Data: []byte{4}})
	l.Append(Record{Kind: KindSignal, Thread: 0})
	if got := len(l.PerThread(0)); got != 2 {
		t.Errorf("PerThread(0) = %d records, want 2", got)
	}
	if got := l.DataBytes(); got != 4 {
		t.Errorf("DataBytes = %d, want 4", got)
	}
	if l.EncodedSize() <= 0 {
		t.Error("EncodedSize not positive")
	}
}

func TestSessionChunkSinkAndFlushes(t *testing.T) {
	flushes := map[FlushKind]int{}
	s := NewSession(SessionConfig{Threads: 2, CbufBytes: 64, Encoding: chunk.Fixed{}},
		func(k FlushKind) { flushes[k]++ })
	sink := s.ChunkSink(0)
	for i := 0; i < 10; i++ {
		sink(chunk.Entry{Size: uint64(i + 1), TS: uint64(i), Reason: chunk.ReasonCTROverflow})
	}
	// 10 entries x 16 bytes = 160 bytes through a 64-byte CBUF: 2 flushes.
	if flushes[FlushChunk] != 2 || s.Flushes(FlushChunk) != 2 {
		t.Errorf("chunk flushes = %d/%d, want 2", flushes[FlushChunk], s.Flushes(FlushChunk))
	}
	if s.ChunkLog(0).Len() != 10 || s.ChunkLog(1).Len() != 0 {
		t.Errorf("log lens = %d/%d", s.ChunkLog(0).Len(), s.ChunkLog(1).Len())
	}
	if s.ChunkBytes() != 160 {
		t.Errorf("ChunkBytes = %d, want 160", s.ChunkBytes())
	}
	if len(s.ChunkLogs()) != 2 {
		t.Errorf("ChunkLogs = %d, want 2", len(s.ChunkLogs()))
	}
}

func TestSessionInputRecording(t *testing.T) {
	s := NewSession(SessionConfig{Threads: 2, CbufBytes: 32, Encoding: chunk.Delta{}}, nil)
	s.RecordSyscall(0, 5, SysRead, 64, 100, make([]byte, 64))
	s.RecordSignal(0, 9, 2, 1234, 0)
	s.RecordSyscall(1, 6, SysGetTime, 777, 0, nil)
	in := s.InputLog()
	if in.Len() != 3 {
		t.Fatalf("input records = %d, want 3", in.Len())
	}
	// Per-thread sequence numbers are independent.
	if in.Records[0].Seq != 0 || in.Records[1].Seq != 1 || in.Records[2].Seq != 0 {
		t.Errorf("seqs = %d,%d,%d, want 0,1,0",
			in.Records[0].Seq, in.Records[1].Seq, in.Records[2].Seq)
	}
	if s.InputBytes() == 0 {
		t.Error("InputBytes not accounted")
	}
	if s.Flushes(FlushInput) == 0 {
		t.Error("tiny CBUF should have flushed")
	}
}

func TestSessionDeltaSizingUsesPrevEntry(t *testing.T) {
	// With delta encoding, closely spaced timestamps cost less than the
	// fixed encoding would; verify the accounting reflects per-thread
	// delta chains rather than absolute encodes.
	s := NewSession(SessionConfig{Threads: 1, CbufBytes: 1 << 20, Encoding: chunk.Delta{}}, nil)
	sink := s.ChunkSink(0)
	ts := uint64(1 << 40) // huge absolute, tiny deltas
	for i := 0; i < 100; i++ {
		ts++
		sink(chunk.Entry{Size: 10, TS: ts, Reason: chunk.ReasonCTROverflow})
	}
	// First entry pays the absolute TS; the rest are ~3 bytes each.
	if s.ChunkBytes() > 400 {
		t.Errorf("delta-encoded bytes = %d, want well under 400", s.ChunkBytes())
	}
}

func TestSessionConfigValidation(t *testing.T) {
	for _, cfg := range []SessionConfig{
		{Threads: 0, CbufBytes: 10},
		{Threads: 1, CbufBytes: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			NewSession(cfg, nil)
		}()
	}
	// Nil encoding defaults to Delta.
	s := NewSession(SessionConfig{Threads: 1, CbufBytes: 10}, nil)
	if s.Config().Encoding == nil {
		t.Error("nil encoding not defaulted")
	}
}

func TestRecordString(t *testing.T) {
	r := Record{Kind: KindSyscall, Thread: 1, Sysno: SysRead, Data: []byte{1}}
	if s := r.String(); s == "" {
		t.Error("empty String for syscall record")
	}
	r = Record{Kind: KindSignal, Thread: 1, Signo: 2}
	if s := r.String(); s == "" {
		t.Error("empty String for signal record")
	}
	r = Record{Kind: RecordKind(9)}
	if s := r.String(); s == "" {
		t.Error("empty String for unknown record")
	}
}
