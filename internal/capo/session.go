package capo

import "repro/internal/chunk"

// FlushKind says which per-thread buffer filled up.
type FlushKind int

// Flush kinds.
const (
	// FlushChunk drains a thread's chunk-log CBUF to the daemon.
	FlushChunk FlushKind = iota
	// FlushInput drains a thread's input-log CBUF to the daemon.
	FlushInput
)

// SessionConfig sizes a recording session (a replay sphere).
type SessionConfig struct {
	// Threads is the number of recorded threads.
	Threads int
	// CbufBytes is the per-thread kernel log buffer size; filling one
	// costs a flush to the user-space daemon.
	CbufBytes int
	// Encoding is the chunk-entry format used for CBUF fill accounting
	// and final marshalling.
	Encoding chunk.Encoding
}

// DefaultSessionConfig mirrors Capo3's smallish per-thread kernel
// buffers.
func DefaultSessionConfig(threads int) SessionConfig {
	return SessionConfig{Threads: threads, CbufBytes: 16 << 10, Encoding: chunk.Delta{}}
}

// Session is one recording session: the RSM state for a replay sphere.
// It owns the per-thread chunk logs, the input log, and the CBUF
// occupancy accounting that drives flush costs.
type Session struct {
	cfg     SessionConfig
	onFlush func(FlushKind)

	chunkLogs []*chunk.Log
	sigLogs   [][]SigPair
	input     InputLog
	seq       []int // per-thread input sequence numbers

	chunkFill  []int
	inputFill  []int
	chunkPrev  []*chunk.Entry // previous entry per thread, for delta sizing
	numFlushes [2]uint64
	chunkBytes uint64
	inputBytes uint64
}

// NewSession creates a session. onFlush (may be nil) fires whenever a
// CBUF fills and is drained; the machine charges flush cycles there.
func NewSession(cfg SessionConfig, onFlush func(FlushKind)) *Session {
	if cfg.Threads <= 0 {
		panic("capo: session needs at least one thread")
	}
	if cfg.CbufBytes <= 0 {
		panic("capo: CbufBytes must be positive")
	}
	if cfg.Encoding == nil {
		cfg.Encoding = chunk.Delta{}
	}
	s := &Session{
		cfg:       cfg,
		onFlush:   onFlush,
		chunkLogs: make([]*chunk.Log, cfg.Threads),
		seq:       make([]int, cfg.Threads),
		chunkFill: make([]int, cfg.Threads),
		inputFill: make([]int, cfg.Threads),
		chunkPrev: make([]*chunk.Entry, cfg.Threads),
	}
	for i := range s.chunkLogs {
		s.chunkLogs[i] = &chunk.Log{Thread: i}
	}
	return s
}

// SigPair is one chunk's serialized read and write Bloom signatures,
// captured at chunk termination. When signature capture is enabled the
// per-thread sig log is parallel to the chunk log: entry i of either
// describes the same chunk.
type SigPair struct {
	Read  []byte
	Write []byte
}

// SigSink returns the recorder signature sink for thread tid. Captured
// signature bytes are an offline-analysis artefact, not part of the
// prototype's log stream, so they are deliberately excluded from CBUF
// fill and byte accounting.
func (s *Session) SigSink(tid int) func(read, write []byte) {
	if s.sigLogs == nil {
		s.sigLogs = make([][]SigPair, s.cfg.Threads)
	}
	return func(read, write []byte) {
		s.sigLogs[tid] = append(s.sigLogs[tid], SigPair{Read: read, Write: write})
	}
}

// SigLogs returns the per-thread signature logs, or nil when no sig sink
// was ever installed.
func (s *Session) SigLogs() [][]SigPair { return s.sigLogs }

// ChunkSink returns the recorder sink for thread tid: it appends entries
// to the thread's chunk log and models CBUF occupancy.
func (s *Session) ChunkSink(tid int) func(chunk.Entry) {
	return func(e chunk.Entry) {
		log := s.chunkLogs[tid]
		n := len(s.cfg.Encoding.Append(make([]byte, 0, 32), e, s.chunkPrev[tid]))
		log.Append(e)
		s.chunkPrev[tid] = &log.Entries[len(log.Entries)-1]
		s.chunkBytes += uint64(n)
		s.fill(&s.chunkFill[tid], n, FlushChunk)
	}
}

func (s *Session) fill(cur *int, n int, kind FlushKind) {
	*cur += n
	if *cur >= s.cfg.CbufBytes {
		*cur = 0
		s.numFlushes[kind]++
		if s.onFlush != nil {
			s.onFlush(kind)
		}
	}
}

// NextSeq allocates the next input-record sequence number for tid.
func (s *Session) NextSeq(tid int) int {
	n := s.seq[tid]
	s.seq[tid]++
	return n
}

// RecordSyscall logs a completed system call.
func (s *Session) RecordSyscall(tid int, ts, sysno, ret, addr uint64, data []byte) {
	r := Record{
		Kind: KindSyscall, Thread: tid, Seq: s.NextSeq(tid), TS: ts,
		Sysno: sysno, Ret: ret, Addr: addr, Data: data,
	}
	s.input.Append(r)
	n := r.EncodedSize()
	s.inputBytes += uint64(n)
	s.fill(&s.inputFill[tid], n, FlushInput)
}

// RecordSignal logs an asynchronous signal delivery.
func (s *Session) RecordSignal(tid int, ts, signo, retired, repDone uint64) {
	r := Record{
		Kind: KindSignal, Thread: tid, Seq: s.NextSeq(tid), TS: ts,
		Signo: signo, Retired: retired, RepDone: repDone,
	}
	s.input.Append(r)
	n := r.EncodedSize()
	s.inputBytes += uint64(n)
	s.fill(&s.inputFill[tid], n, FlushInput)
}

// ChunkLog returns thread tid's chunk log.
func (s *Session) ChunkLog(tid int) *chunk.Log { return s.chunkLogs[tid] }

// ChunkLogs returns all per-thread chunk logs.
func (s *Session) ChunkLogs() []*chunk.Log { return s.chunkLogs }

// InputLog returns the session's input log.
func (s *Session) InputLog() *InputLog { return &s.input }

// Flushes returns how many CBUF drains occurred per kind.
func (s *Session) Flushes(kind FlushKind) uint64 { return s.numFlushes[kind] }

// ChunkBytes returns the encoded chunk-log volume so far.
func (s *Session) ChunkBytes() uint64 { return s.chunkBytes }

// InputBytes returns the encoded input-log volume so far.
func (s *Session) InputBytes() uint64 { return s.inputBytes }

// Config returns the session configuration.
func (s *Session) Config() SessionConfig { return s.cfg }
