// Package capo models Capo3, the QuickRec software stack: a kernel-level
// Replay Sphere Manager (RSM) that owns recording sessions, intercepts
// every kernel crossing of recorded threads, logs all input
// nondeterminism (syscall results, data copied into user memory, signal
// delivery points), and drains per-thread log buffers (CBUFs) to a
// user-space logging daemon.
//
// The kernel itself is simulated (syscall semantics, futexes, scheduling
// hooks live here), but the recording logic is exactly what a real
// driver would run; only the substrate differs.
package capo

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/chunk"
)

// RecordKind distinguishes input-log record types.
type RecordKind uint8

// Input-log record kinds.
const (
	// KindSyscall records one completed system call.
	KindSyscall RecordKind = 1
	// KindSignal records one asynchronous signal delivery point.
	KindSignal RecordKind = 2
)

// Record is one input-log entry. Syscall records capture the result and
// any data the kernel copied into user memory; signal records capture the
// exact thread-local delivery position (retired instruction count plus
// REP residue) so replay can re-deliver at the same instruction boundary.
type Record struct {
	Kind   RecordKind
	Thread int
	// Seq is the per-thread sequence number (starting at 0).
	Seq int
	// TS is the Lamport timestamp of the kernel's atomic access burst
	// (the copy of results/data), serializing it against user chunks.
	TS uint64

	// Syscall fields.
	Sysno uint64
	Ret   uint64
	Addr  uint64 // user address that received Data (0 if none)
	Data  []byte // bytes copied to user memory

	// Signal fields.
	Signo   uint64
	Retired uint64 // thread's retired-instruction count at delivery
	RepDone uint64 // completed iterations of an in-flight REP at delivery
}

// String renders the record for diagnostics.
func (r Record) String() string {
	switch r.Kind {
	case KindSyscall:
		return fmt.Sprintf("sys{t%d #%d ts=%d no=%d ret=%d data=%dB}",
			r.Thread, r.Seq, r.TS, r.Sysno, r.Ret, len(r.Data))
	case KindSignal:
		return fmt.Sprintf("sig{t%d #%d ts=%d signo=%d at=%d+%d}",
			r.Thread, r.Seq, r.TS, r.Signo, r.Retired, r.RepDone)
	}
	return fmt.Sprintf("record{kind=%d}", r.Kind)
}

// EncodedSize returns the record's serialized size in bytes, used for
// log-volume accounting (F4).
func (r Record) EncodedSize() int {
	return len(appendRecord(nil, r))
}

// InputLog is a recording session's complete input log. Records appear in
// global append order; the per-thread subsequences are ordered by Seq and
// by TS.
type InputLog struct {
	Records []Record
}

// Append adds a record.
func (l *InputLog) Append(r Record) { l.Records = append(l.Records, r) }

// Slice returns a new log holding the records from position pos on (the
// flight-recorder tail). pos is clamped to the log length.
func (l *InputLog) Slice(pos int) *InputLog {
	if pos < 0 {
		pos = 0
	}
	if pos > len(l.Records) {
		pos = len(l.Records)
	}
	return &InputLog{Records: append([]Record(nil), l.Records[pos:]...)}
}

// Len returns the number of records.
func (l *InputLog) Len() int { return len(l.Records) }

// PerThread returns thread tid's records in order.
func (l *InputLog) PerThread(tid int) []Record {
	var out []Record
	for _, r := range l.Records {
		if r.Thread == tid {
			out = append(out, r)
		}
	}
	return out
}

// DataBytes returns the total payload bytes copied to user memory.
func (l *InputLog) DataBytes() int {
	n := 0
	for _, r := range l.Records {
		n += len(r.Data)
	}
	return n
}

// EncodedSize returns the serialized size of the whole log in bytes.
func (l *InputLog) EncodedSize() int { return len(l.Marshal()) }

var inputMagic = [4]byte{'Q', 'R', 'I', 'L'}

const inputVersion = 1

// Marshal serializes the log with a versioned header.
func (l *InputLog) Marshal() []byte {
	out := make([]byte, 0, 64+len(l.Records)*24)
	out = append(out, inputMagic[:]...)
	out = append(out, inputVersion)
	out = binary.AppendUvarint(out, uint64(len(l.Records)))
	for _, r := range l.Records {
		out = appendRecord(out, r)
	}
	return out
}

func appendRecord(dst []byte, r Record) []byte {
	dst = append(dst, byte(r.Kind))
	dst = binary.AppendUvarint(dst, uint64(r.Thread))
	dst = binary.AppendUvarint(dst, uint64(r.Seq))
	dst = binary.AppendUvarint(dst, r.TS)
	switch r.Kind {
	case KindSyscall:
		dst = binary.AppendUvarint(dst, r.Sysno)
		dst = binary.AppendUvarint(dst, r.Ret)
		dst = binary.AppendUvarint(dst, r.Addr)
		dst = binary.AppendUvarint(dst, uint64(len(r.Data)))
		dst = append(dst, r.Data...)
	case KindSignal:
		dst = binary.AppendUvarint(dst, r.Signo)
		dst = binary.AppendUvarint(dst, r.Retired)
		dst = binary.AppendUvarint(dst, r.RepDone)
	default:
		panic(fmt.Sprintf("capo: marshalling record of unknown kind %d", r.Kind))
	}
	return dst
}

// ErrCorruptInput reports a malformed input log. Failures additionally
// wrap the shared chunk.ErrTruncated / chunk.ErrCorrupt sentinels, so
// harness triage classifies input-log faults exactly like chunk-log
// faults (errors.Is against either sentinel works).
var ErrCorruptInput = errors.New("capo: corrupt input log")

var (
	errInputTruncated = fmt.Errorf("%w: %w", ErrCorruptInput, chunk.ErrTruncated)
	errInputCorrupt   = fmt.Errorf("%w: %w", ErrCorruptInput, chunk.ErrCorrupt)
)

type inputReader struct {
	data []byte
	pos  int
}

func (rd *inputReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(rd.data[rd.pos:])
	if n == 0 {
		return 0, errInputTruncated
	}
	if n < 0 {
		return 0, fmt.Errorf("%w: varint overflow", errInputCorrupt)
	}
	rd.pos += n
	return v, nil
}

// UnmarshalInputLog parses a serialized input log. Every failure wraps
// ErrCorruptInput plus the shared chunk.ErrTruncated or chunk.ErrCorrupt
// sentinel; trailing bytes after the last record are rejected.
func UnmarshalInputLog(data []byte) (*InputLog, error) {
	if len(data) < 5 {
		return nil, fmt.Errorf("%w: short header", errInputTruncated)
	}
	if [4]byte(data[0:4]) != inputMagic {
		return nil, fmt.Errorf("%w: bad magic", errInputCorrupt)
	}
	if data[4] != inputVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", errInputCorrupt, data[4])
	}
	rd := &inputReader{data: data, pos: 5}
	count, err := rd.uvarint()
	if err != nil {
		return nil, err
	}
	// Cap the pre-allocation: count is untrusted; remaining bytes bound
	// the real record count.
	capHint := count
	if max := uint64(len(data) - rd.pos); capHint > max {
		capHint = max
	}
	l := &InputLog{Records: make([]Record, 0, capHint)}
	for i := uint64(0); i < count; i++ {
		r, err := readRecord(rd)
		if err != nil {
			return nil, fmt.Errorf("record %d: %w", i, err)
		}
		l.Records = append(l.Records, r)
	}
	if rd.pos != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", errInputCorrupt, len(data)-rd.pos)
	}
	return l, nil
}

// MarshalRecords serializes a bare record sequence (uvarint count plus
// records, no log header) — the payload format segment streams use for
// input batches.
func MarshalRecords(recs []Record) []byte {
	out := binary.AppendUvarint(make([]byte, 0, 16+len(recs)*24), uint64(len(recs)))
	for _, r := range recs {
		out = appendRecord(out, r)
	}
	return out
}

// UnmarshalRecords parses a bare record sequence written by
// MarshalRecords, requiring every byte to be consumed. Failures wrap the
// same sentinels as UnmarshalInputLog.
func UnmarshalRecords(data []byte) ([]Record, error) {
	rd := &inputReader{data: data}
	count, err := rd.uvarint()
	if err != nil {
		return nil, err
	}
	capHint := count
	if max := uint64(len(data) - rd.pos); capHint > max {
		capHint = max
	}
	recs := make([]Record, 0, capHint)
	for i := uint64(0); i < count; i++ {
		r, err := readRecord(rd)
		if err != nil {
			return nil, fmt.Errorf("record %d: %w", i, err)
		}
		recs = append(recs, r)
	}
	if rd.pos != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", errInputCorrupt, len(data)-rd.pos)
	}
	return recs, nil
}

func readRecord(rd *inputReader) (Record, error) {
	var r Record
	if rd.pos >= len(rd.data) {
		return r, errInputTruncated
	}
	r.Kind = RecordKind(rd.data[rd.pos])
	rd.pos++
	thread, err := rd.uvarint()
	if err != nil {
		return r, err
	}
	seq, err := rd.uvarint()
	if err != nil {
		return r, err
	}
	ts, err := rd.uvarint()
	if err != nil {
		return r, err
	}
	r.Thread, r.Seq, r.TS = int(thread), int(seq), ts
	switch r.Kind {
	case KindSyscall:
		if r.Sysno, err = rd.uvarint(); err != nil {
			return r, err
		}
		if r.Ret, err = rd.uvarint(); err != nil {
			return r, err
		}
		if r.Addr, err = rd.uvarint(); err != nil {
			return r, err
		}
		n, err := rd.uvarint()
		if err != nil {
			return r, err
		}
		// Compare as uint64: a huge length must not overflow int.
		if n > uint64(len(rd.data)-rd.pos) {
			return r, fmt.Errorf("%w: data length %d overruns buffer", errInputTruncated, n)
		}
		if n > 0 {
			r.Data = append([]byte(nil), rd.data[rd.pos:rd.pos+int(n)]...)
			rd.pos += int(n)
		}
	case KindSignal:
		if r.Signo, err = rd.uvarint(); err != nil {
			return r, err
		}
		if r.Retired, err = rd.uvarint(); err != nil {
			return r, err
		}
		if r.RepDone, err = rd.uvarint(); err != nil {
			return r, err
		}
	default:
		return r, fmt.Errorf("%w: unknown record kind %d", errInputCorrupt, r.Kind)
	}
	return r, nil
}
