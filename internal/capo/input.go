// Package capo models Capo3, the QuickRec software stack: a kernel-level
// Replay Sphere Manager (RSM) that owns recording sessions, intercepts
// every kernel crossing of recorded threads, logs all input
// nondeterminism (syscall results, data copied into user memory, signal
// delivery points), and drains per-thread log buffers (CBUFs) to a
// user-space logging daemon.
//
// The kernel itself is simulated (syscall semantics, futexes, scheduling
// hooks live here), but the recording logic is exactly what a real
// driver would run; only the substrate differs.
package capo

import (
	"errors"
	"fmt"

	"repro/internal/chunk"
	"repro/internal/wire"
)

// RecordKind distinguishes input-log record types.
type RecordKind uint8

// Input-log record kinds.
const (
	// KindSyscall records one completed system call.
	KindSyscall RecordKind = 1
	// KindSignal records one asynchronous signal delivery point.
	KindSignal RecordKind = 2
)

// Record is one input-log entry. Syscall records capture the result and
// any data the kernel copied into user memory; signal records capture the
// exact thread-local delivery position (retired instruction count plus
// REP residue) so replay can re-deliver at the same instruction boundary.
type Record struct {
	Kind   RecordKind
	Thread int
	// Seq is the per-thread sequence number (starting at 0).
	Seq int
	// TS is the Lamport timestamp of the kernel's atomic access burst
	// (the copy of results/data), serializing it against user chunks.
	TS uint64

	// Syscall fields.
	Sysno uint64
	Ret   uint64
	Addr  uint64 // user address that received Data (0 if none)
	Data  []byte // bytes copied to user memory

	// Signal fields.
	Signo   uint64
	Retired uint64 // thread's retired-instruction count at delivery
	RepDone uint64 // completed iterations of an in-flight REP at delivery
}

// String renders the record for diagnostics.
func (r Record) String() string {
	switch r.Kind {
	case KindSyscall:
		return fmt.Sprintf("sys{t%d #%d ts=%d no=%d ret=%d data=%dB}",
			r.Thread, r.Seq, r.TS, r.Sysno, r.Ret, len(r.Data))
	case KindSignal:
		return fmt.Sprintf("sig{t%d #%d ts=%d signo=%d at=%d+%d}",
			r.Thread, r.Seq, r.TS, r.Signo, r.Retired, r.RepDone)
	}
	return fmt.Sprintf("record{kind=%d}", r.Kind)
}

// Clone returns a deep copy of the record: Data gets its own backing
// array, so the copy stays stable even if the caller keeps mutating the
// original's buffer (the recorder's live syscall-data arena, say).
func (r Record) Clone() Record {
	if r.Data != nil {
		r.Data = append([]byte(nil), r.Data...)
	}
	return r
}

// EncodedSize returns the record's serialized size in bytes, used for
// log-volume accounting (F4).
func (r Record) EncodedSize() int {
	var a wire.Appender
	appendRecord(&a, r)
	return a.Len()
}

// InputLog is a recording session's complete input log. Records appear in
// global append order; the per-thread subsequences are ordered by Seq and
// by TS.
type InputLog struct {
	Records []Record
}

// Append adds a record.
func (l *InputLog) Append(r Record) { l.Records = append(l.Records, r) }

// Slice returns a new log holding the records from position pos on (the
// flight-recorder tail). pos is clamped to the log length.
func (l *InputLog) Slice(pos int) *InputLog {
	if pos < 0 {
		pos = 0
	}
	if pos > len(l.Records) {
		pos = len(l.Records)
	}
	return &InputLog{Records: append([]Record(nil), l.Records[pos:]...)}
}

// Len returns the number of records.
func (l *InputLog) Len() int { return len(l.Records) }

// PerThread returns thread tid's records in order.
func (l *InputLog) PerThread(tid int) []Record {
	var out []Record
	for _, r := range l.Records {
		if r.Thread == tid {
			out = append(out, r)
		}
	}
	return out
}

// DataBytes returns the total payload bytes copied to user memory.
func (l *InputLog) DataBytes() int {
	n := 0
	for _, r := range l.Records {
		n += len(r.Data)
	}
	return n
}

// EncodedSize returns the serialized size of the whole log in bytes.
func (l *InputLog) EncodedSize() int { return len(l.Marshal()) }

var inputMagic = [4]byte{'Q', 'R', 'I', 'L'}

const inputVersion = 1

// Marshal serializes the log with a versioned header.
func (l *InputLog) Marshal() []byte {
	a := wire.AppenderOf(make([]byte, 0, 64+l.SizeHint()))
	l.AppendMarshal(&a)
	return a.Buf
}

// AppendMarshal serializes the log onto a, letting containers (the
// bundle) reuse one buffer across their nested logs.
func (l *InputLog) AppendMarshal(a *wire.Appender) {
	a.Raw(inputMagic[:])
	a.Byte(inputVersion)
	a.Int(len(l.Records))
	for _, r := range l.Records {
		appendRecord(a, r)
	}
}

// SizeHint estimates the marshalled size: per-record framing plus the
// raw data payloads, which dominate syscall-heavy logs. Containers use
// it to pre-size their buffers without a trial encode.
func (l *InputLog) SizeHint() int {
	n := len(l.Records) * 24
	for i := range l.Records {
		n += len(l.Records[i].Data)
	}
	return n
}

func appendRecord(a *wire.Appender, r Record) {
	a.Byte(byte(r.Kind))
	a.Int(r.Thread)
	a.Int(r.Seq)
	a.Uvarint(r.TS)
	switch r.Kind {
	case KindSyscall:
		a.Uvarint(r.Sysno)
		a.Uvarint(r.Ret)
		a.Uvarint(r.Addr)
		a.Blob(r.Data)
	case KindSignal:
		a.Uvarint(r.Signo)
		a.Uvarint(r.Retired)
		a.Uvarint(r.RepDone)
	default:
		panic(fmt.Sprintf("capo: marshalling record of unknown kind %d", r.Kind))
	}
}

// ErrCorruptInput reports a malformed input log. Failures additionally
// wrap the shared chunk.ErrTruncated / chunk.ErrCorrupt sentinels, so
// harness triage classifies input-log faults exactly like chunk-log
// faults (errors.Is against either sentinel works).
var ErrCorruptInput = errors.New("capo: corrupt input log")

var (
	errInputTruncated = fmt.Errorf("%w: %w", ErrCorruptInput, chunk.ErrTruncated)
	errInputCorrupt   = fmt.Errorf("%w: %w", ErrCorruptInput, chunk.ErrCorrupt)
)

// inputDecoder is a flavored cursor plus a data arena: syscall Data
// payloads are copied into one shared backing array instead of one
// allocation per record, which is the dominant cost of decoding
// IO-heavy logs. Each Data slice is three-index capped so an append on
// one record can never bleed into its neighbor.
type inputDecoder struct {
	c     wire.Cursor
	arena []byte
	// alias hands out zero-copy subslices of the input instead of arena
	// copies — the mmap decode path, where the caller guarantees the
	// backing bytes outlive the records.
	alias bool
}

func newInputDecoder(data []byte) inputDecoder {
	return inputDecoder{c: wire.CursorWith(data, errInputTruncated, errInputCorrupt)}
}

func (d *inputDecoder) dataCopy(n uint64) ([]byte, error) {
	// Compare as uint64: a huge length must not overflow int.
	if n > uint64(d.c.Remaining()) {
		return nil, fmt.Errorf("%w: data length %d overruns buffer", errInputTruncated, n)
	}
	raw, err := d.c.Raw(int(n))
	if err != nil {
		return nil, err
	}
	if d.alias {
		return raw[:n:n], nil
	}
	if cap(d.arena)-len(d.arena) < int(n) {
		// Remaining input (plus this payload) bounds the data bytes still
		// to come, so the arena is allocated at most twice per log.
		d.arena = make([]byte, 0, int(n)+d.c.Remaining())
	}
	start := len(d.arena)
	d.arena = append(d.arena, raw...)
	return d.arena[start : start+int(n) : start+int(n)], nil
}

// UnmarshalInputLog parses a serialized input log. Every failure wraps
// ErrCorruptInput plus the shared chunk.ErrTruncated or chunk.ErrCorrupt
// sentinel; trailing bytes after the last record are rejected.
func UnmarshalInputLog(data []byte) (*InputLog, error) {
	if len(data) < 5 {
		return nil, fmt.Errorf("%w: short header", errInputTruncated)
	}
	if [4]byte(data[0:4]) != inputMagic {
		return nil, fmt.Errorf("%w: bad magic", errInputCorrupt)
	}
	if data[4] != inputVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", errInputCorrupt, data[4])
	}
	rd := newInputDecoder(data)
	rd.c.Skip(5)
	count, err := rd.c.Uvarint()
	if err != nil {
		return nil, err
	}
	// Cap the pre-allocation: count is untrusted; remaining bytes bound
	// the real record count.
	capHint := count
	if max := uint64(rd.c.Remaining()); capHint > max {
		capHint = max
	}
	l := &InputLog{Records: make([]Record, 0, capHint)}
	for i := uint64(0); i < count; i++ {
		r, err := rd.readRecord()
		if err != nil {
			return nil, fmt.Errorf("record %d: %w", i, err)
		}
		l.Records = append(l.Records, r)
	}
	if err := rd.c.Done(); err != nil {
		return nil, err
	}
	return l, nil
}

// MarshalRecords serializes a bare record sequence (uvarint count plus
// records, no log header) — the payload format segment streams use for
// input batches.
func MarshalRecords(recs []Record) []byte {
	var a wire.Appender
	AppendRecords(&a, recs)
	return a.Buf
}

// AppendRecords is MarshalRecords onto an existing appender, used by
// the streaming flush path with a pooled buffer.
func AppendRecords(a *wire.Appender, recs []Record) {
	a.Grow(16 + len(recs)*24)
	a.Int(len(recs))
	for _, r := range recs {
		appendRecord(a, r)
	}
}

// UnmarshalRecords parses a bare record sequence written by
// MarshalRecords, requiring every byte to be consumed. Failures wrap the
// same sentinels as UnmarshalInputLog.
func UnmarshalRecords(data []byte) ([]Record, error) {
	rd := newInputDecoder(data)
	count, err := rd.c.Uvarint()
	if err != nil {
		return nil, err
	}
	capHint := count
	if max := uint64(rd.c.Remaining()); capHint > max {
		capHint = max
	}
	recs := make([]Record, 0, capHint)
	for i := uint64(0); i < count; i++ {
		r, err := rd.readRecord()
		if err != nil {
			return nil, fmt.Errorf("record %d: %w", i, err)
		}
		recs = append(recs, r)
	}
	if err := rd.c.Done(); err != nil {
		return nil, err
	}
	return recs, nil
}

func (rd *inputDecoder) readRecord() (Record, error) {
	var r Record
	kind, err := rd.c.Byte()
	if err != nil {
		return r, err
	}
	r.Kind = RecordKind(kind)
	thread, err := rd.c.Uvarint()
	if err != nil {
		return r, err
	}
	seq, err := rd.c.Uvarint()
	if err != nil {
		return r, err
	}
	ts, err := rd.c.Uvarint()
	if err != nil {
		return r, err
	}
	r.Thread, r.Seq, r.TS = int(thread), int(seq), ts
	switch r.Kind {
	case KindSyscall:
		if r.Sysno, err = rd.c.Uvarint(); err != nil {
			return r, err
		}
		if r.Ret, err = rd.c.Uvarint(); err != nil {
			return r, err
		}
		if r.Addr, err = rd.c.Uvarint(); err != nil {
			return r, err
		}
		n, err := rd.c.Uvarint()
		if err != nil {
			return r, err
		}
		if n > 0 {
			if r.Data, err = rd.dataCopy(n); err != nil {
				return r, err
			}
		}
	case KindSignal:
		if r.Signo, err = rd.c.Uvarint(); err != nil {
			return r, err
		}
		if r.Retired, err = rd.c.Uvarint(); err != nil {
			return r, err
		}
		if r.RepDone, err = rd.c.Uvarint(); err != nil {
			return r, err
		}
	default:
		return r, fmt.Errorf("%w: unknown record kind %d", errInputCorrupt, r.Kind)
	}
	return r, nil
}
