package capo

import (
	"bytes"
	"testing"
)

// corpusInputLog is a plausible hand-built input log seeding the fuzzer
// with structurally valid records of both kinds.
func corpusInputLog() *InputLog {
	return &InputLog{Records: []Record{
		{Kind: KindSyscall, Thread: 0, Seq: 0, TS: 3, Sysno: SysGetTime, Ret: 42},
		{Kind: KindSyscall, Thread: 1, Seq: 0, TS: 5, Sysno: SysRandom, Ret: 8,
			Addr: 0x1000, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
		{Kind: KindSignal, Thread: 0, Seq: 1, TS: 9, Signo: 2, Retired: 123, RepDone: 4},
		{Kind: KindSyscall, Thread: 2, Seq: 0, TS: 9, Sysno: SysYield},
	}}
}

// FuzzInputLogDecode feeds arbitrary bytes to the Capo input-log
// decoder. The decoder must never panic, and every accepted input must
// survive a marshal/unmarshal round trip unchanged — otherwise replay
// could consume a different kernel-input stream than was on disk.
func FuzzInputLogDecode(f *testing.F) {
	l := corpusInputLog()
	f.Add(l.Marshal())
	f.Add((&InputLog{}).Marshal())
	blob := l.Marshal()
	f.Add(blob[:len(blob)-3])           // truncated mid-record
	f.Add(append(blob, 0xff))           // trailing garbage
	bad := append([]byte(nil), blob...) // bad version
	bad[4] = 99
	f.Add(bad)
	f.Add([]byte{})
	f.Add([]byte("QRIL"))

	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := UnmarshalInputLog(data)
		if err != nil {
			return
		}
		again, err := UnmarshalInputLog(l.Marshal())
		if err != nil {
			t.Fatalf("re-decode of re-marshal failed: %v", err)
		}
		if len(again.Records) != len(l.Records) {
			t.Fatalf("round trip changed record count: %d vs %d", len(again.Records), len(l.Records))
		}
		for i, r := range l.Records {
			s := again.Records[i]
			if r.Kind != s.Kind || r.Thread != s.Thread || r.Seq != s.Seq || r.TS != s.TS ||
				r.Sysno != s.Sysno || r.Ret != s.Ret || r.Addr != s.Addr ||
				r.Signo != s.Signo || r.Retired != s.Retired || r.RepDone != s.RepDone ||
				!bytes.Equal(r.Data, s.Data) {
				t.Fatalf("record %d changed in round trip:\n  was %+v\n  now %+v", i, r, s)
			}
		}
	})
}
