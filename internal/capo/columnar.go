package capo

import (
	"fmt"

	"repro/internal/wire"
)

// Columnar input-log encoding — the wire-format-v2 body layout. The v1
// record framing interleaves every field with every payload, which
// hides the log's redundancy from the block compressor: a syscall
// record's constant sysno sits ten bytes from the previous record's,
// separated by whatever payload came between. Here each field becomes
// one contiguous column (kinds, threads, seqs, timestamp deltas, then
// the kind-specific columns) followed by a single data arena holding
// every payload back to back. Columns of near-constant values collapse
// into a few LZ tokens, and the arena is one contiguous region that
// replay can alias straight out of an mmap'd bundle.
//
// Layout:
//
//	count uvarint
//	kinds     [count]u8
//	threads   [count]uvarint
//	seqs      [count]uvarint
//	ts deltas [count]varint (zigzag, delta from previous record's TS)
//	sysno, ret, addr, dlen columns   (syscall records, in order)
//	signo, retired, repdone columns  (signal records, in order)
//	arena blob (payloads concatenated in record order; length must
//	            equal the sum of the dlen column)

// AppendColumnar serializes recs in the columnar layout onto a. Output
// is a pure function of recs.
func AppendColumnar(a *wire.Appender, recs []Record) {
	a.Int(len(recs))
	for i := range recs {
		a.Byte(byte(recs[i].Kind))
	}
	for i := range recs {
		a.Int(recs[i].Thread)
	}
	for i := range recs {
		a.Int(recs[i].Seq)
	}
	var prevTS uint64
	for i := range recs {
		a.Varint(int64(recs[i].TS - prevTS))
		prevTS = recs[i].TS
	}
	arena := 0
	for i := range recs {
		if recs[i].Kind == KindSyscall {
			a.Uvarint(recs[i].Sysno)
			a.Uvarint(recs[i].Ret)
			a.Uvarint(recs[i].Addr)
			a.Int(len(recs[i].Data))
			arena += len(recs[i].Data)
		}
	}
	for i := range recs {
		if recs[i].Kind == KindSignal {
			a.Uvarint(recs[i].Signo)
			a.Uvarint(recs[i].Retired)
			a.Uvarint(recs[i].RepDone)
		}
	}
	a.Int(arena)
	for i := range recs {
		a.Raw(recs[i].Data)
	}
}

// LogDecoder decodes input logs into reusable storage: the records
// slice, the data arena and the InputLog itself persist across Decode
// calls, so steady-state decoding allocates nothing. The returned log
// is valid until the next call. With alias=true, record Data fields are
// zero-copy views of the decoded buffer (the mmap path — the caller
// guarantees the backing bytes outlive the records); with alias=false
// they are copies the decoder owns.
type LogDecoder struct {
	log   InputLog
	rd    inputDecoder
	dlens []int // columnar scratch: per-record payload lengths
}

// DecodeLog parses a v1 framed input log (as written by Marshal),
// reusing the decoder's storage.
func (d *LogDecoder) DecodeLog(data []byte, alias bool) (*InputLog, error) {
	if len(data) < 5 {
		return nil, fmt.Errorf("%w: short header", errInputTruncated)
	}
	if [4]byte(data[0:4]) != inputMagic {
		return nil, fmt.Errorf("%w: bad magic", errInputCorrupt)
	}
	if data[4] != inputVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", errInputCorrupt, data[4])
	}
	d.rd.c = wire.CursorWith(data, errInputTruncated, errInputCorrupt)
	d.rd.arena = d.rd.arena[:0]
	d.rd.alias = alias
	d.rd.c.Skip(5)
	count, err := d.rd.c.Uvarint()
	if err != nil {
		return nil, err
	}
	d.log.Records = d.log.Records[:0]
	for i := uint64(0); i < count; i++ {
		r, err := d.rd.readRecord()
		if err != nil {
			return nil, fmt.Errorf("record %d: %w", i, err)
		}
		d.log.Records = append(d.log.Records, r)
	}
	if err := d.rd.c.Done(); err != nil {
		return nil, err
	}
	return &d.log, nil
}

// DecodeColumnar parses a columnar record section in place from c
// (which carries the container's flavored sentinels), reusing the
// decoder's storage like DecodeLog.
func (d *LogDecoder) DecodeColumnar(c *wire.Cursor, alias bool) (*InputLog, error) {
	count, err := c.Uvarint()
	if err != nil {
		return nil, err
	}
	// Untrusted count: the kinds column alone needs count bytes.
	if count > uint64(c.Remaining()) {
		return nil, c.Corruptf("implausible record count %d", count)
	}
	n := int(count)
	recs := d.log.Records[:0]
	if cap(recs) < n {
		recs = make([]Record, 0, n)
	}
	kinds, err := c.Raw(n)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		k := RecordKind(kinds[i])
		if k != KindSyscall && k != KindSignal {
			return nil, c.Corruptf("unknown record kind %d", kinds[i])
		}
		recs = append(recs, Record{Kind: k})
	}
	for i := 0; i < n; i++ {
		v, err := c.Uvarint()
		if err != nil {
			return nil, err
		}
		recs[i].Thread = int(v)
	}
	for i := 0; i < n; i++ {
		v, err := c.Uvarint()
		if err != nil {
			return nil, err
		}
		recs[i].Seq = int(v)
	}
	var prevTS uint64
	for i := 0; i < n; i++ {
		dlt, err := c.Varint()
		if err != nil {
			return nil, err
		}
		prevTS += uint64(dlt)
		recs[i].TS = prevTS
	}
	d.dlens = d.dlens[:0]
	var arenaLen uint64
	for i := 0; i < n; i++ {
		if recs[i].Kind != KindSyscall {
			d.dlens = append(d.dlens, 0)
			continue
		}
		if recs[i].Sysno, err = c.Uvarint(); err != nil {
			return nil, err
		}
		if recs[i].Ret, err = c.Uvarint(); err != nil {
			return nil, err
		}
		if recs[i].Addr, err = c.Uvarint(); err != nil {
			return nil, err
		}
		dlen, err := c.Uvarint()
		if err != nil {
			return nil, err
		}
		if dlen > 1<<32 {
			return nil, c.Corruptf("implausible payload length %d", dlen)
		}
		d.dlens = append(d.dlens, int(dlen))
		arenaLen += dlen
		if arenaLen > 1<<40 {
			return nil, c.Corruptf("arena overflow")
		}
	}
	for i := 0; i < n; i++ {
		if recs[i].Kind != KindSignal {
			continue
		}
		if recs[i].Signo, err = c.Uvarint(); err != nil {
			return nil, err
		}
		if recs[i].Retired, err = c.Uvarint(); err != nil {
			return nil, err
		}
		if recs[i].RepDone, err = c.Uvarint(); err != nil {
			return nil, err
		}
	}
	declared, err := c.Uvarint()
	if err != nil {
		return nil, err
	}
	if declared != arenaLen {
		return nil, c.Corruptf("arena declares %d bytes, dlen column sums to %d", declared, arenaLen)
	}
	arena, err := c.Raw(int(arenaLen))
	if err != nil {
		return nil, err
	}
	if !alias {
		d.rd.arena = append(d.rd.arena[:0], arena...)
		arena = d.rd.arena
	}
	off := 0
	for i := 0; i < n; i++ {
		recs[i].Data = nil
		if l := d.dlens[i]; l > 0 {
			recs[i].Data = arena[off : off+l : off+l]
			off += l
		}
	}
	d.log.Records = recs
	return &d.log, nil
}
