package capo

import "fmt"

// Syscall numbers.
const (
	// SysExit terminates the calling thread. No arguments.
	SysExit uint64 = 1
	// SysWrite (fd, addr, len) writes len bytes from user memory to fd.
	// Returns len.
	SysWrite uint64 = 2
	// SysRead (fd, addr, len) copies len bytes of external input into
	// user memory at addr. Returns len. The bytes come from the kernel's
	// seeded input stream — the simulation's source of external
	// nondeterminism.
	SysRead uint64 = 3
	// SysGetTime returns the current cycle count perturbed by kernel
	// jitter (nondeterministic from the program's point of view).
	SysGetTime uint64 = 4
	// SysRandom returns 64 bits of kernel entropy.
	SysRandom uint64 = 5
	// SysYield relinquishes the core. Returns 0.
	SysYield uint64 = 6
	// SysFutexWait (addr, expected) blocks until woken if the word at
	// addr equals expected; returns 0 when woken, FutexEAgain when the
	// value differed.
	SysFutexWait uint64 = 7
	// SysFutexWake (addr, n) wakes up to n waiters on addr; returns the
	// number woken.
	SysFutexWake uint64 = 8
	// SysGetTID returns the calling thread's ID.
	SysGetTID uint64 = 9
	// SysSigHandler (pc) registers the program's signal handler entry
	// point (an instruction index). Returns 0.
	SysSigHandler uint64 = 10
	// SysSigReturn ends a signal handler, unmasking further signals for
	// the calling thread. Returns 0. (The machine model performs the
	// unmask; the kernel records the crossing.)
	SysSigReturn uint64 = 12
)

// FutexEAgain is SysFutexWait's "value changed" result.
const FutexEAgain uint64 = 11

// CopyPort gives the kernel cache-coherent access to user memory on the
// calling core, so kernel copies generate the same coherence traffic a
// real kernel's would.
type CopyPort interface {
	Load(addr uint64) uint64
	Store(addr uint64, val uint64)
}

// LoadBytes reads n bytes from user memory through the port (aligned base
// address; the tail of the final word is truncated).
func LoadBytes(port CopyPort, addr, n uint64) []byte {
	out := make([]byte, 0, n)
	for off := uint64(0); off < n; off += 8 {
		w := port.Load(addr + off)
		for b := uint64(0); b < 8 && off+b < n; b++ {
			out = append(out, byte(w>>(8*b)))
		}
	}
	return out
}

// StoreBytes writes p into user memory through the port, preserving
// neighbouring bytes in partial final words.
func StoreBytes(port CopyPort, addr uint64, p []byte) {
	for off := 0; off < len(p); off += 8 {
		wordAddr := addr + uint64(off)
		w := port.Load(wordAddr)
		for b := 0; b < 8 && off+b < len(p); b++ {
			shift := uint(8 * b)
			w &^= uint64(0xff) << shift
			w |= uint64(p[off+b]) << shift
		}
		port.Store(wordAddr, w)
	}
}

// Result describes a handled syscall to the machine model.
type Result struct {
	// Ret is the value placed in the result register on completion.
	Ret uint64
	// Block indicates the thread must sleep (futex wait); the syscall
	// completes when the thread is woken.
	Block bool
	// Woken lists thread IDs made runnable by this call.
	Woken []int
	// Exit indicates the calling thread terminated.
	Exit bool
	// Reschedule hints that the caller yielded the core.
	Reschedule bool
	// CopyAddr/CopyData describe bytes the kernel copied into user
	// memory (input nondeterminism the RSM must log).
	CopyAddr uint64
	CopyData []byte
	// WordsTouched counts the 64-bit words the kernel moved across the
	// user/kernel boundary, for perf accounting.
	WordsTouched int
}

// Kernel is the simulated operating system: syscall semantics, futex
// wait queues, the external-input entropy stream and captured program
// output. One Kernel serves one machine; all methods are called from the
// machine's single-threaded run loop.
type Kernel struct {
	entropy    uint64 // xorshift64 state: external-world nondeterminism
	futex      map[uint64][]int
	output     map[int][]byte
	handlerPC  int
	handlerSet bool
}

// NewKernel returns a kernel whose external inputs (read data, time
// jitter, entropy) derive from seed.
func NewKernel(seed uint64) *Kernel {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Kernel{
		entropy: seed,
		futex:   make(map[uint64][]int),
		output:  make(map[int][]byte),
	}
}

func (k *Kernel) rand() uint64 {
	k.entropy ^= k.entropy << 13
	k.entropy ^= k.entropy >> 7
	k.entropy ^= k.entropy << 17
	return k.entropy
}

// Handle executes one syscall for thread tid at cycle time now, touching
// user memory through port. It does not schedule: blocking/waking is
// reported in the Result for the machine to act on.
func (k *Kernel) Handle(tid int, now uint64, sysno, a1, a2, a3 uint64, port CopyPort) Result {
	switch sysno {
	case SysExit:
		return Result{Exit: true}
	case SysWrite:
		fd, addr, n := int(a1), a2, a3
		data := LoadBytes(port, addr, n)
		k.output[fd] = append(k.output[fd], data...)
		return Result{Ret: n, WordsTouched: int((n + 7) / 8)}
	case SysRead:
		_, addr, n := a1, a2, a3
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(k.rand())
		}
		StoreBytes(port, addr, data)
		return Result{Ret: n, CopyAddr: addr, CopyData: data, WordsTouched: int((n + 7) / 8)}
	case SysGetTime:
		return Result{Ret: now + k.rand()%8}
	case SysRandom:
		return Result{Ret: k.rand()}
	case SysYield:
		return Result{Reschedule: true}
	case SysFutexWait:
		addr, expected := a1, a2
		cur := port.Load(addr)
		if cur != expected {
			return Result{Ret: FutexEAgain, WordsTouched: 1}
		}
		k.futex[addr] = append(k.futex[addr], tid)
		return Result{Block: true, WordsTouched: 1}
	case SysFutexWake:
		addr, n := a1, int(a2)
		q := k.futex[addr]
		woken := n
		if woken > len(q) {
			woken = len(q)
		}
		res := Result{Ret: uint64(woken), Woken: append([]int(nil), q[:woken]...)}
		if woken == len(q) {
			delete(k.futex, addr)
		} else {
			k.futex[addr] = q[woken:]
		}
		return res
	case SysGetTID:
		return Result{Ret: uint64(tid)}
	case SysSigHandler:
		k.handlerPC = int(a1)
		k.handlerSet = true
		return Result{}
	case SysSigReturn:
		return Result{}
	default:
		panic(fmt.Sprintf("capo: unknown syscall %d from thread %d", sysno, tid))
	}
}

// Output returns the bytes written to fd so far.
func (k *Kernel) Output(fd int) []byte { return k.output[fd] }

// HandlerPC returns the registered signal handler entry point.
func (k *Kernel) HandlerPC() (pc int, ok bool) { return k.handlerPC, k.handlerSet }

// Waiters returns the number of threads blocked on any futex, for
// deadlock diagnostics.
func (k *Kernel) Waiters() int {
	n := 0
	for _, q := range k.futex {
		n += len(q)
	}
	return n
}
