package mrr

import (
	"testing"

	"repro/internal/chunk"
	"repro/internal/signature"
)

func testConfig() Config {
	return Config{
		ReadSig:             signature.Config{Bits: 1024, Hashes: 2, MaxInserts: 16},
		WriteSig:            signature.Config{Bits: 1024, Hashes: 2, MaxInserts: 16},
		MaxChunkInstr:       100,
		TerminateOnEviction: true,
		TrackStats:          true,
	}
}

func newRecorder(t *testing.T) (*Recorder, *[]chunk.Entry) {
	t.Helper()
	r := New(testConfig())
	var out []chunk.Entry
	r.SetSink(func(e chunk.Entry) { out = append(out, e) })
	r.SetEnabled(true)
	return r, &out
}

// retire simulates n retired instructions with no memory accesses.
func retire(r *Recorder, n int) {
	for i := 0; i < n; i++ {
		r.OnRetire()
	}
}

func TestCTROverflowTerminates(t *testing.T) {
	r, out := newRecorder(t)
	retire(r, 250)
	if len(*out) != 2 {
		t.Fatalf("%d chunks, want 2 (two CTR overflows at 100)", len(*out))
	}
	for i, e := range *out {
		if e.Size != 100 || e.Reason != chunk.ReasonCTROverflow {
			t.Errorf("chunk %d = %v, want size 100 ctr-overflow", i, e)
		}
	}
	if (*out)[0].TS >= (*out)[1].TS {
		t.Error("timestamps not strictly increasing")
	}
	if r.OpenChunkInstrs() != 50 {
		t.Errorf("open chunk = %d instrs, want 50", r.OpenChunkInstrs())
	}
}

func TestExternalTerminate(t *testing.T) {
	r, out := newRecorder(t)
	retire(r, 7)
	r.Terminate(chunk.ReasonSyscall)
	if len(*out) != 1 {
		t.Fatalf("%d chunks, want 1", len(*out))
	}
	e := (*out)[0]
	if e.Size != 7 || e.Reason != chunk.ReasonSyscall || e.RepResidue != 0 {
		t.Errorf("entry = %v", e)
	}
}

func TestEmptyChunkNotEmitted(t *testing.T) {
	r, out := newRecorder(t)
	r.Terminate(chunk.ReasonSyscall)
	r.Terminate(chunk.ReasonSwitch)
	if len(*out) != 0 {
		t.Fatalf("empty terminations emitted %d chunks", len(*out))
	}
	retire(r, 1)
	r.Terminate(chunk.ReasonFlush)
	if len(*out) != 1 {
		t.Fatalf("%d chunks, want 1", len(*out))
	}
}

func TestSnoopConflictRAW(t *testing.T) {
	r, out := newRecorder(t)
	r.OnLocalAccess(5, true) // we wrote line 5
	r.OnRetire()
	ack := r.OnSnoop(5, false) // remote read of line 5 -> RAW, terminate
	if len(*out) != 1 {
		t.Fatalf("%d chunks, want 1", len(*out))
	}
	e := (*out)[0]
	if e.Reason != chunk.ReasonConflictRAW {
		t.Errorf("reason = %v, want raw", e.Reason)
	}
	// Ack carries the post-termination clock, strictly above the chunk TS.
	if ack != e.TS+1 {
		t.Errorf("ack = %d, want %d", ack, e.TS+1)
	}
}

func TestSnoopConflictWARAndWAW(t *testing.T) {
	r, out := newRecorder(t)
	r.OnLocalAccess(3, false) // read line 3
	r.OnRetire()
	r.OnSnoop(3, true) // remote write -> WAR
	r.OnLocalAccess(4, true)
	r.OnRetire()
	r.OnSnoop(4, true) // remote write over our write -> WAW
	if len(*out) != 2 {
		t.Fatalf("%d chunks, want 2", len(*out))
	}
	if (*out)[0].Reason != chunk.ReasonConflictWAR {
		t.Errorf("chunk 0 reason = %v, want war", (*out)[0].Reason)
	}
	if (*out)[1].Reason != chunk.ReasonConflictWAW {
		t.Errorf("chunk 1 reason = %v, want waw", (*out)[1].Reason)
	}
}

func TestNonConflictingSnoopDoesNotTerminate(t *testing.T) {
	r, out := newRecorder(t)
	r.OnLocalAccess(1, false)
	r.OnRetire()
	r.OnSnoop(1, false) // read-read: no conflict
	r.OnSnoop(2, true)  // untouched line: no conflict
	if len(*out) != 0 {
		t.Fatalf("non-conflicting snoops emitted %d chunks", len(*out))
	}
}

func TestSigOverflowDeferredToRetire(t *testing.T) {
	r, out := newRecorder(t)
	// 16 distinct read lines saturate the signature mid-"instruction";
	// termination must wait for the retire so the instruction's accesses
	// stay in the closing chunk.
	for i := uint64(0); i < 16; i++ {
		r.OnLocalAccess(i, false)
	}
	if len(*out) != 0 {
		t.Fatal("terminated before retire boundary")
	}
	r.OnRetire()
	if len(*out) != 1 {
		t.Fatalf("%d chunks, want 1", len(*out))
	}
	if e := (*out)[0]; e.Reason != chunk.ReasonSigOverflow || e.Size != 1 {
		t.Errorf("entry = %v, want sig-overflow size 1", e)
	}
}

func TestEvictionTermination(t *testing.T) {
	r, out := newRecorder(t)
	r.OnLocalAccess(9, true)
	r.OnRetire()
	r.OnEvict(9, true) // line in write signature leaves the cache
	if len(*out) != 0 {
		t.Fatal("eviction terminated mid-boundary; must defer")
	}
	r.OnRetire()
	if len(*out) != 1 || (*out)[0].Reason != chunk.ReasonEviction {
		t.Fatalf("chunks = %v, want one eviction", *out)
	}
}

func TestEvictionOfUntrackedLineIgnored(t *testing.T) {
	r, out := newRecorder(t)
	r.OnLocalAccess(9, true)
	r.OnRetire()
	r.OnEvict(1234, false)
	r.OnRetire()
	if len(*out) != 0 {
		t.Fatal("eviction of untracked line terminated the chunk")
	}
}

func TestEvictionTerminationDisabled(t *testing.T) {
	cfg := testConfig()
	cfg.TerminateOnEviction = false
	r := New(cfg)
	var out []chunk.Entry
	r.SetSink(func(e chunk.Entry) { out = append(out, e) })
	r.SetEnabled(true)
	r.OnLocalAccess(9, true)
	r.OnRetire()
	r.OnEvict(9, true)
	r.OnRetire()
	if len(out) != 0 {
		t.Fatal("eviction terminated despite TerminateOnEviction=false")
	}
}

func TestRepResidueCaptured(t *testing.T) {
	r, out := newRecorder(t)
	repDone := uint64(0)
	repActive := false
	r.SetResidueFunc(func() (bool, uint64) { return repActive, repDone })
	retire(r, 3)
	// Simulate 5 REP iterations, then a conflicting snoop mid-instruction.
	repActive = true
	for i := 0; i < 5; i++ {
		repDone++
		r.OnLocalAccess(uint64(100+i), true)
		r.OnRepTick()
	}
	r.OnSnoop(100, false)
	if len(*out) != 1 {
		t.Fatalf("%d chunks, want 1", len(*out))
	}
	e := (*out)[0]
	if e.Size != 3 || e.RepResidue != 5 || e.Reason != chunk.ReasonConflictRAW {
		t.Errorf("entry = %v, want size 3 rep 5 raw", e)
	}
}

func TestRepProgressAloneIsProgress(t *testing.T) {
	r, out := newRecorder(t)
	repDone := uint64(2)
	r.SetResidueFunc(func() (bool, uint64) { return true, repDone })
	r.OnLocalAccess(1, true)
	r.OnRepTick()
	r.OnLocalAccess(2, true)
	r.OnRepTick()
	r.Terminate(chunk.ReasonSwitch)
	if len(*out) != 1 {
		t.Fatalf("%d chunks, want 1 (REP-only chunk)", len(*out))
	}
	if e := (*out)[0]; e.Size != 0 || e.RepResidue != 2 {
		t.Errorf("entry = %v, want size 0 rep 2", e)
	}
}

func TestClockPropagation(t *testing.T) {
	r, _ := newRecorder(t)
	if r.Clock() != 0 {
		t.Fatalf("initial clock = %d", r.Clock())
	}
	r.OnBusAck(50)
	if r.Clock() != 50 {
		t.Errorf("clock after ack = %d, want 50", r.Clock())
	}
	r.OnBusAck(10) // lower acks don't regress the clock
	if r.Clock() != 50 {
		t.Errorf("clock regressed to %d", r.Clock())
	}
	r.RaiseClock(75)
	if r.Clock() != 75 {
		t.Errorf("RaiseClock -> %d, want 75", r.Clock())
	}
	r.RaiseClock(5)
	if r.Clock() != 75 {
		t.Errorf("RaiseClock regressed to %d", r.Clock())
	}
}

func TestChunkTSUsesClock(t *testing.T) {
	r, out := newRecorder(t)
	r.OnBusAck(41)
	retire(r, 1)
	r.Terminate(chunk.ReasonFlush)
	if (*out)[0].TS != 41 {
		t.Errorf("TS = %d, want 41", (*out)[0].TS)
	}
	if r.Clock() != 42 {
		t.Errorf("clock after close = %d, want 42", r.Clock())
	}
}

func TestStampInput(t *testing.T) {
	r, _ := newRecorder(t)
	r.OnBusAck(9)
	ts := r.StampInput()
	if ts != 9 {
		t.Errorf("input ts = %d, want 9", ts)
	}
	if r.Clock() != 10 {
		t.Errorf("clock after stamp = %d, want 10", r.Clock())
	}
}

func TestDisabledRecorderEmitsNothing(t *testing.T) {
	r := New(testConfig())
	var out []chunk.Entry
	r.SetSink(func(e chunk.Entry) { out = append(out, e) })
	// Disabled: no inserts, no terminations, but clock still moves.
	r.OnLocalAccess(1, true)
	r.OnRetire()
	r.Terminate(chunk.ReasonFlush)
	if len(out) != 0 {
		t.Fatal("disabled recorder emitted chunks")
	}
	if ack := r.OnSnoop(1, false); ack != 0 {
		t.Errorf("ack = %d, want 0", ack)
	}
	r.OnBusAck(5)
	if r.Clock() != 5 {
		t.Error("clock must advance even when disabled")
	}
}

func TestSinkSwitchBetweenThreads(t *testing.T) {
	r, _ := newRecorder(t)
	var logA, logB []chunk.Entry
	r.SetSink(func(e chunk.Entry) { logA = append(logA, e) })
	retire(r, 2)
	r.Terminate(chunk.ReasonSwitch)
	r.SetSink(func(e chunk.Entry) { logB = append(logB, e) })
	retire(r, 3)
	r.Terminate(chunk.ReasonSwitch)
	if len(logA) != 1 || logA[0].Size != 2 {
		t.Errorf("logA = %v", logA)
	}
	if len(logB) != 1 || logB[0].Size != 3 {
		t.Errorf("logB = %v", logB)
	}
}

func TestStatsAccounting(t *testing.T) {
	r, _ := newRecorder(t)
	r.OnLocalAccess(1, true)
	r.OnRetire()
	r.OnSnoop(1, false) // RAW terminate
	retire(r, 100)      // CTR overflow
	s := r.Stats()
	if s.Chunks != 2 {
		t.Errorf("Chunks = %d, want 2", s.Chunks)
	}
	if s.Reasons.Get(int(chunk.ReasonConflictRAW)) != 1 {
		t.Error("RAW not counted")
	}
	if s.Reasons.Get(int(chunk.ReasonCTROverflow)) != 1 {
		t.Error("CTR overflow not counted")
	}
	if s.Snoops != 1 || s.SnoopHits != 1 {
		t.Errorf("snoops = %d/%d, want 1/1", s.SnoopHits, s.Snoops)
	}
	if s.ChunkSizes.Count() != 2 {
		t.Errorf("size samples = %d, want 2", s.ChunkSizes.Count())
	}
}

func TestSigOccupancy(t *testing.T) {
	r, _ := newRecorder(t)
	read0, write0 := r.SigOccupancy()
	if read0 != 0 || write0 != 0 {
		t.Fatal("fresh recorder has non-empty signatures")
	}
	r.OnLocalAccess(1, false)
	r.OnLocalAccess(2, true)
	read1, write1 := r.SigOccupancy()
	if read1 <= 0 || write1 <= 0 {
		t.Error("occupancy did not grow after accesses")
	}
}

func TestZeroMaxChunkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MaxChunkInstr=0 did not panic")
		}
	}()
	New(Config{ReadSig: signature.DefaultConfig(), WriteSig: signature.DefaultConfig()})
}

func TestSignaturesClearedBetweenChunks(t *testing.T) {
	r, out := newRecorder(t)
	r.OnLocalAccess(5, true)
	r.OnRetire()
	r.Terminate(chunk.ReasonSyscall)
	// After the boundary, a snoop on the old line must not conflict.
	r.OnLocalAccess(6, false)
	r.OnRetire()
	r.OnSnoop(5, false)
	if len(*out) != 1 {
		t.Fatalf("stale signature caused a conflict: %v", *out)
	}
}

func TestCountRepIterationsTicksCTR(t *testing.T) {
	cfg := testConfig()
	cfg.CountRepIterations = true
	cfg.MaxChunkInstr = 10
	r := New(cfg)
	var out []chunk.Entry
	r.SetSink(func(e chunk.Entry) { out = append(out, e) })
	r.SetEnabled(true)
	repDone := uint64(0)
	r.SetResidueFunc(func() (bool, uint64) { return repDone > 0, repDone })
	// 9 REP ticks + 1 more saturate the 10-unit CTR mid-instruction.
	for i := 0; i < 10; i++ {
		repDone++
		r.OnRepTick()
	}
	if len(out) != 1 {
		t.Fatalf("%d chunks, want 1 (CTR overflow on REP ticks)", len(out))
	}
	e := out[0]
	if e.Reason != chunk.ReasonCTROverflow || e.Size != 10 || e.RepResidue != 10 {
		t.Errorf("entry = %v, want size 10 ctr-overflow rep 10", e)
	}
}

func TestArchitecturalCountingIgnoresTicks(t *testing.T) {
	cfg := testConfig()
	cfg.MaxChunkInstr = 10
	r := New(cfg)
	var out []chunk.Entry
	r.SetSink(func(e chunk.Entry) { out = append(out, e) })
	r.SetEnabled(true)
	for i := 0; i < 50; i++ {
		r.OnRepTick()
	}
	if len(out) != 0 {
		t.Fatalf("architectural CTR terminated on REP ticks: %v", out)
	}
}
