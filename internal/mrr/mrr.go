// Package mrr implements the Memory Race Recorder, the per-core recording
// hardware QuickRec adds to each Pentium core. The MRR divides each
// thread's execution into chunks and logs, per chunk, an instruction
// count, a Lamport timestamp and a termination reason — enough for a
// replayer to reconstruct the recorded memory interleaving.
//
// Mechanics, following the paper's design:
//
//   - Two Bloom-filter signatures track the cache-line addresses read and
//     written by the current chunk.
//   - Incoming coherence snoops are tested against the signatures; a hit
//     is an inter-thread conflict (RAW/WAR/WAW) and terminates the chunk,
//     serializing it before the requester's current chunk.
//   - Every snoop is acknowledged with the core's current Lamport clock;
//     the requester raises its clock to the maximum acknowledgement. This
//     "timestamp piggybacking on coherence messages" transitively orders
//     dependencies that flow through memory as well as cache-to-cache.
//   - Chunks also terminate on signature saturation, eviction of a
//     signature-resident line (the prototype's snoop filter would hide
//     later conflicts on it), instruction-counter saturation, syscalls,
//     signal delivery and context switches.
//   - REP string instructions may be split by a chunk boundary; the
//     entry's RepResidue records how many iterations had completed.
//
// Terminations triggered by the core's own activity mid-instruction
// (signature saturation, self-inflicted evictions) are deferred to the
// next retirement or REP-iteration boundary so an instruction's memory
// accesses always land in the same chunk that retires it — the invariant
// replay depends on.
package mrr

import (
	"repro/internal/chunk"
	"repro/internal/signature"
	"repro/internal/stats"
)

// Config parameterises one core's recorder.
type Config struct {
	// ReadSig and WriteSig configure the two address signatures.
	ReadSig, WriteSig signature.Config
	// MaxChunkInstr saturates the chunk instruction counter (CTR);
	// reaching it terminates the chunk. Must be positive.
	MaxChunkInstr uint64
	// TerminateOnEviction mirrors the prototype: evicting a line that is
	// present in either signature closes the chunk. Our broadcast bus
	// would remain sound without it; the prototype's snoop filtering
	// would not.
	TerminateOnEviction bool
	// TrackStats enables chunk-size and reason accounting.
	TrackStats bool
	// DropRepResidue zeroes the REP residue field in emitted entries.
	// Ablation-only (experiment A3): demonstrates that replay diverges
	// without the paper's partial-instruction logging.
	DropRepResidue bool
	// CountRepIterations makes the chunk counter tick per REP iteration
	// as well as per retired instruction — the way a hardware
	// performance counter counts, as opposed to the architectural
	// counting a software replayer does naturally. The paper's "lessons
	// learned" discuss exactly this mismatch: the replayer must adopt
	// the hardware's convention or chunks cannot be positioned
	// (experiment A5).
	CountRepIterations bool
}

// DefaultConfig returns the prototype-like configuration: 1024-bit
// signatures saturating at 192 lines and a 20-bit chunk counter.
func DefaultConfig() Config {
	return Config{
		ReadSig:             signature.DefaultConfig(),
		WriteSig:            signature.DefaultConfig(),
		MaxChunkInstr:       1 << 20,
		TerminateOnEviction: true,
		TrackStats:          true,
	}
}

// Stats aggregates recording activity for experiments.
type Stats struct {
	// Chunks counts emitted chunk entries.
	Chunks uint64
	// Reasons tallies terminations by chunk.Reason.
	Reasons stats.Counter
	// ChunkSizes is the distribution of chunk instruction counts.
	ChunkSizes stats.Histogram
	// SnoopHits counts conflicting snoops (chunk-terminating).
	SnoopHits uint64
	// Snoops counts all snoops observed.
	Snoops uint64
	// SigTests/SigHits/SigFalseHits aggregate signature lookups across
	// both filters (FalseHits needs TrackExact); refreshed by Stats().
	SigTests     uint64
	SigHits      uint64
	SigFalseHits uint64
}

// Recorder is one core's MRR instance. It implements cache.Listener so
// the cache model feeds it coherence events directly.
type Recorder struct {
	cfg      Config
	readSig  *signature.Signature
	writeSig *signature.Signature

	ctr      uint64 // instructions retired in the open chunk
	clock    uint64 // Lamport clock
	progress bool   // open chunk has retired instructions or REP ticks
	pending  chunk.Reason

	enabled bool
	sink    func(chunk.Entry)
	sigSink func(read, write []byte)
	residue func() (active bool, done uint64)

	stats Stats
}

// New returns a recorder. It starts disabled with no sink; the kernel
// model enables it when a recorded thread is scheduled.
func New(cfg Config) *Recorder {
	if cfg.MaxChunkInstr == 0 {
		panic("mrr: MaxChunkInstr must be positive")
	}
	return &Recorder{
		cfg:      cfg,
		readSig:  signature.New(cfg.ReadSig),
		writeSig: signature.New(cfg.WriteSig),
		residue:  func() (bool, uint64) { return false, 0 },
	}
}

// SetResidueFunc wires the query for the running core's in-flight REP
// state, sampled at chunk termination.
func (r *Recorder) SetResidueFunc(f func() (bool, uint64)) { r.residue = f }

// SetSink directs emitted chunk entries to the current thread's log
// buffer. A nil sink discards entries.
func (r *Recorder) SetSink(sink func(chunk.Entry)) { r.sink = sink }

// SetSigSink captures the read/write signature contents of every emitted
// chunk, serialized at the moment of termination (before the filters are
// cleared for the next chunk). A nil sink disables capture. The paper's
// prototype exposes the signatures through the chunk log for offline
// conflict analysis; this is that tap.
func (r *Recorder) SetSigSink(sink func(read, write []byte)) { r.sigSink = sink }

// SetEnabled turns recording on or off (kernel entry/exit, unrecorded
// threads). The Lamport clock keeps advancing regardless: it is hardware
// state, not recording state.
func (r *Recorder) SetEnabled(on bool) { r.enabled = on }

// Enabled reports whether recording is active.
func (r *Recorder) Enabled() bool { return r.enabled }

// Clock returns the current Lamport clock.
func (r *Recorder) Clock() uint64 { return r.clock }

// RaiseClock lifts the clock to at least v. The kernel uses this when
// scheduling a thread onto the core, restoring the thread's saved clock
// so its chunk timestamps stay monotonic across migrations.
func (r *Recorder) RaiseClock(v uint64) {
	if v > r.clock {
		r.clock = v
	}
}

// StampInput allocates a timestamp for a kernel input-copy event (an
// atomic kernel-mode access burst, e.g. copy_to_user of syscall results).
// The event is serialized like a zero-instruction chunk: it takes the
// current clock and advances it, so user chunks that depend on the copied
// data order strictly after it.
func (r *Recorder) StampInput() uint64 {
	ts := r.clock
	r.clock++
	return ts
}

// OnRetire notes one retired instruction, then applies any deferred
// termination or CTR saturation.
func (r *Recorder) OnRetire() {
	if !r.enabled {
		return
	}
	r.ctr++
	r.progress = true
	if r.pending != chunk.ReasonNone {
		reason := r.pending
		r.pending = chunk.ReasonNone
		r.terminate(reason)
		return
	}
	if r.ctr >= r.cfg.MaxChunkInstr {
		r.terminate(chunk.ReasonCTROverflow)
	}
}

// OnRepTick notes one completed iteration of an in-flight REP
// instruction, then applies any deferred termination. The iteration's
// accesses and residue belong to the closing chunk. Under hardware-style
// counting (CountRepIterations) the tick also advances the CTR.
func (r *Recorder) OnRepTick() {
	if !r.enabled {
		return
	}
	r.progress = true
	if r.cfg.CountRepIterations {
		r.ctr++
	}
	if r.pending != chunk.ReasonNone {
		reason := r.pending
		r.pending = chunk.ReasonNone
		r.terminate(reason)
		return
	}
	if r.cfg.CountRepIterations && r.ctr >= r.cfg.MaxChunkInstr {
		r.terminate(chunk.ReasonCTROverflow)
	}
}

// Terminate closes the open chunk for an external reason: syscall entry,
// signal delivery, context switch, or final flush. Safe to call when the
// chunk is empty (no entry is emitted, but termination state is reset).
func (r *Recorder) Terminate(reason chunk.Reason) {
	if !r.enabled {
		return
	}
	r.pending = chunk.ReasonNone
	r.terminate(reason)
}

// terminate emits the chunk entry (unless the chunk is empty) and resets
// chunk state. The entry takes the current clock as its timestamp; the
// clock then advances so later chunks — locally or on acknowledging
// remotes — order strictly after it.
func (r *Recorder) terminate(reason chunk.Reason) {
	repActive, repDone := r.residue()
	if !r.progress {
		// Nothing retired and no REP progress: empty chunk, no entry.
		// Signatures must be empty too (accesses imply progress marks at
		// the enclosing retire/tick), so just clear defensively.
		r.readSig.Clear()
		r.writeSig.Clear()
		r.ctr = 0
		return
	}
	e := chunk.Entry{Size: r.ctr, TS: r.clock, Reason: reason}
	if repActive && !r.cfg.DropRepResidue {
		e.RepResidue = repDone
	}
	if r.sink != nil {
		r.sink(e)
	}
	if r.sigSink != nil {
		// Serialize while the filters still hold this chunk's addresses;
		// Clear below wipes them. Empty chunks return early above, so sig
		// pairs stay 1:1 with emitted entries.
		r.sigSink(r.readSig.Marshal(), r.writeSig.Marshal())
	}
	r.clock++
	r.ctr = 0
	r.progress = false
	r.readSig.Clear()
	r.writeSig.Clear()
	if r.cfg.TrackStats {
		r.stats.Chunks++
		r.stats.Reasons.Inc(int(reason))
		r.stats.ChunkSizes.Add(e.Size)
	}
}

// OnLocalAccess implements cache.Listener: inserts the line into the
// appropriate signature; saturation defers a chunk termination to the
// next retire/tick boundary.
func (r *Recorder) OnLocalAccess(line uint64, write bool) {
	if !r.enabled {
		return
	}
	var saturated bool
	if write {
		saturated = r.writeSig.Insert(line)
	} else {
		saturated = r.readSig.Insert(line)
	}
	if saturated && r.pending == chunk.ReasonNone {
		r.pending = chunk.ReasonSigOverflow
	}
}

// OnSnoop implements cache.Listener: tests the remote request against the
// signatures, terminates the chunk on a conflict, and acknowledges with
// the (possibly just advanced) Lamport clock. Snoops arrive at
// instruction boundaries of this core (the simulated bus is synchronous),
// so conflict terminations are immediate, not deferred.
func (r *Recorder) OnSnoop(line uint64, exclusive bool) uint64 {
	if r.cfg.TrackStats {
		r.stats.Snoops++
	}
	if r.enabled {
		var reason chunk.Reason
		if exclusive {
			// Remote write: check WAW first (write signature), then WAR.
			if r.writeSig.Test(line) {
				reason = chunk.ReasonConflictWAW
			} else if r.readSig.Test(line) {
				reason = chunk.ReasonConflictWAR
			}
		} else if r.writeSig.Test(line) {
			// Remote read of a line we wrote: RAW dependence.
			reason = chunk.ReasonConflictRAW
		}
		if reason != chunk.ReasonNone {
			if r.cfg.TrackStats {
				r.stats.SnoopHits++
			}
			r.terminate(reason)
		}
	}
	return r.clock
}

// OnEvict implements cache.Listener: losing a signature-resident line
// schedules a chunk termination (configurable).
func (r *Recorder) OnEvict(line uint64, _ bool) {
	if !r.enabled || !r.cfg.TerminateOnEviction {
		return
	}
	if r.readSig.Test(line) || r.writeSig.Test(line) {
		if r.pending == chunk.ReasonNone {
			r.pending = chunk.ReasonEviction
		}
	}
}

// OnBusAck implements cache.Listener: raises the clock to the maximum
// snoop acknowledgement of this core's own bus transaction, ordering the
// current chunk after every chunk the acknowledgers have closed.
func (r *Recorder) OnBusAck(maxClock uint64) {
	if maxClock > r.clock {
		r.clock = maxClock
	}
}

// OpenChunkInstrs returns the instruction count of the open chunk.
func (r *Recorder) OpenChunkInstrs() uint64 { return r.ctr }

// Stats returns a pointer to the recorder's accounting (live; read after
// the run completes). Signature lookup counters are refreshed on call.
func (r *Recorder) Stats() *Stats {
	r.stats.SigTests, r.stats.SigHits, r.stats.SigFalseHits = r.SigStats()
	return &r.stats
}

// SigOccupancy reports current read/write signature occupancy, for
// ablation experiments.
func (r *Recorder) SigOccupancy() (read, write float64) {
	return r.readSig.Occupancy(), r.writeSig.Occupancy()
}

// SigStats reports lifetime signature snoop-test accounting summed over
// both signatures. FalseHits is populated only when the signatures were
// configured with TrackExact (experiment A2's false-conflict sweep).
func (r *Recorder) SigStats() (tests, hits, falseHits uint64) {
	rt, rh, rf := r.readSig.Stats()
	wt, wh, wf := r.writeSig.Stats()
	return rt + wt, rh + wh, rf + wf
}
