// Package fleet plugs remote worker processes into the dispatch layer:
// a Client is a dispatch.Executor that ships job envelopes to an ingest
// server's job broker, where attached quickrecd worker processes pull
// them, re-derive the work from a content-addressed bundle, and push
// results back. Because every job names its work by (digest, tiling
// coordinates) and every merge is index-ordered, a fleet run's output
// is bit-identical to a serial or local-parallel run of the same
// analysis — the distribution is invisible in the results.
package fleet

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/ingest"
	"repro/internal/isa"
	"repro/internal/races"
	"repro/internal/replay"
	"repro/internal/wire"
)

// Client is a connection to a fleet server's job broker, usable as a
// dispatch.Executor. Not safe for concurrent Executes; sequential use
// across multiple Execute calls (replay, then screen, then confirm) is
// the intended shape.
type Client struct {
	addr   string
	sub    *ingest.Submitter
	nextID uint64 // job IDs are unique across the session's Executes
}

// Dial attaches to the fleet server at addr as a job submitter.
func Dial(addr string) (*Client, error) {
	sub, err := ingest.DialSubmitter(addr)
	if err != nil {
		return nil, err
	}
	return &Client{addr: addr, sub: sub}, nil
}

// Close severs the session; unfinished jobs are dropped server-side.
func (c *Client) Close() error { return c.sub.Close() }

// Name identifies the executor in diagnostics.
func (c *Client) Name() string { return "fleet(" + c.addr + ")" }

// Execute implements dispatch.Executor: every task's job envelope goes
// on the broker's board, results absorb as they complete (any order —
// the Spec contract makes merges index-addressed), and the error
// reported is the lowest-indexed failure, matching Serial and Local
// byte for byte.
func (c *Client) Execute(spec dispatch.Spec) error {
	if spec.Job == nil || spec.Absorb == nil {
		return dispatch.ErrNotRemotable
	}
	base := c.nextID
	c.nextID += uint64(spec.Tasks)

	errIdx := spec.Tasks // lowest failing index seen so far
	var firstErr error
	record := func(i int, err error) {
		if i < errIdx {
			errIdx, firstErr = i, err
		}
	}

	inFlight := 0
	for i := 0; i < spec.Tasks; i++ {
		job, err := spec.Job(i)
		if err != nil {
			record(i, err)
			continue
		}
		var body wire.Appender
		dispatch.AppendJob(&body, job)
		if err := c.sub.Submit(base+uint64(i), body.Buf); err != nil {
			// The session is broken; anything already submitted has no
			// reader. Report the transport fault for the earliest task.
			record(i, err)
			return firstErr
		}
		inFlight++
	}

	for ; inFlight > 0; inFlight-- {
		id, data, errMsg, err := c.sub.Next()
		if err != nil {
			return err // transport fault: results are gone, fail the run
		}
		if id < base || id >= base+uint64(spec.Tasks) {
			return fmt.Errorf("fleet: result for unknown job id %d", id)
		}
		i := int(id - base)
		if errMsg != "" {
			record(i, &dispatch.RemoteError{Msg: errMsg})
			continue
		}
		res, err := dispatch.DecodeJobResult(data)
		if err != nil {
			record(i, err)
			continue
		}
		if res.Err != "" {
			record(i, &dispatch.RemoteError{Msg: res.Err})
			continue
		}
		if err := spec.Absorb(i, res.Payload); err != nil {
			record(i, err)
		}
	}
	return firstErr
}

// Upload marshals the bundle and stores it on the fleet server under
// the reserved fleet tenant, returning its content digest — the address
// every job envelope will carry.
func (c *Client) Upload(b *core.Bundle) (string, error) {
	digest, _, _, err := ingest.Upload(c.addr, ingest.FleetTenant, b.Marshal(), 3, 50*time.Millisecond)
	if err != nil {
		return "", fmt.Errorf("fleet: upload bundle: %w", err)
	}
	return digest, nil
}

// Replay replays the bundle across the fleet: upload once, then ship
// one job per checkpoint interval. The Result is bit-identical to
// core.Replay.
func (c *Client) Replay(prog *isa.Program, b *core.Bundle) (*replay.Result, error) {
	digest, err := c.Upload(b)
	if err != nil {
		return nil, err
	}
	return core.ReplayDistributed(prog, b, c, digest)
}

// Races runs the two-phase race detector across the fleet: screening
// blocks and confirmation slices ship as jobs; workers re-derive the
// traced replay themselves. The Report is bit-identical to
// races.Detect.
func (c *Client) Races(prog *isa.Program, b *core.Bundle) (*races.Report, error) {
	digest, err := c.Upload(b)
	if err != nil {
		return nil, err
	}
	return races.DetectExec(prog, b, c, digest)
}
