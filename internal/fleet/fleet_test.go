package fleet_test

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/ingest"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/races"
	"repro/internal/replay"
	"repro/internal/workload"
)

// startServer stands up an ingest server with the job broker on a
// loopback port.
func startServer(t *testing.T) *ingest.Server {
	t.Helper()
	cfg := ingest.DefaultConfig()
	cfg.StoreDir = t.TempDir()
	cfg.JobTimeout = 5 * time.Second
	srv, err := ingest.NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	return srv
}

// recordRacy records the racy catalogue workload with checkpoints (for
// interval jobs) and signatures (for race jobs).
func recordRacy(t *testing.T) (*core.Bundle, *isa.Program) {
	t.Helper()
	spec, ok := workload.ByName("racy")
	if !ok {
		t.Fatal("racy workload missing from catalogue")
	}
	prog := spec.Build(3)
	cfg := machine.DefaultConfig()
	cfg.Mode = machine.ModeFull
	cfg.Cores = 2
	cfg.Threads = 3
	cfg.TimeSliceInstrs = 5000
	cfg.CheckpointEveryInstrs = 500
	cfg.CaptureSignatures = true
	rec, err := core.Record(prog, cfg)
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	return rec, prog
}

func sameReplay(t *testing.T, want, got *replay.Result) {
	t.Helper()
	if want.MemChecksum != got.MemChecksum {
		t.Errorf("mem checksum %#x != %#x", got.MemChecksum, want.MemChecksum)
	}
	if !bytes.Equal(want.Output, got.Output) {
		t.Errorf("outputs differ: %d vs %d bytes", len(got.Output), len(want.Output))
	}
	if want.Steps != got.Steps || want.ChunksExecuted != got.ChunksExecuted || want.InputsApplied != got.InputsApplied {
		t.Errorf("counters differ: %d/%d %d/%d %d/%d",
			got.Steps, want.Steps, got.ChunksExecuted, want.ChunksExecuted, got.InputsApplied, want.InputsApplied)
	}
	if !reflect.DeepEqual(want.FinalContexts, got.FinalContexts) {
		t.Errorf("final contexts differ")
	}
	if !reflect.DeepEqual(want.RetiredPerThread, got.RetiredPerThread) {
		t.Errorf("retired counts differ")
	}
	if !want.FinalMem.Equal(got.FinalMem) {
		t.Errorf("final memory images differ")
	}
}

// TestFleetWorkerFailure exercises both straggler-recovery paths. A
// black-hole worker swallows job frames and never answers: during the
// replay it stays attached, so its jobs come back on the board only
// when their deadline lapses (silent-stall re-dispatch); before the
// race phase its connection is severed with jobs still held, so those
// come back through workerGone. The surviving real worker finishes
// both runs, and the results are still bit-identical to local ones.
func TestFleetWorkerFailure(t *testing.T) {
	cfg := ingest.DefaultConfig()
	cfg.StoreDir = t.TempDir()
	cfg.JobTimeout = 300 * time.Millisecond
	srv, err := ingest.NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	rec, prog := recordRacy(t)

	bh, err := ingest.DialWorker(srv.Addr(), 4)
	if err != nil {
		t.Fatalf("dial black-hole worker: %v", err)
	}
	swallowed := make(chan struct{}, 64)
	go func() {
		for {
			if _, _, err := bh.NextJob(); err != nil {
				return
			}
			swallowed <- struct{}{}
		}
	}()
	go (&fleet.Worker{Addr: srv.Addr(), Slots: 2}).Run()

	client, err := fleet.Dial(srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer client.Close()

	got, err := client.Replay(prog, rec)
	if err != nil {
		t.Fatalf("fleet replay with stalled worker: %v", err)
	}
	want, err := core.Replay(prog, rec)
	if err != nil {
		t.Fatalf("local replay: %v", err)
	}
	sameReplay(t, want, got)
	select {
	case <-swallowed:
		// The stall was real: the black hole held at least one job the
		// replay could only finish by deadline-driven re-dispatch.
	default:
		t.Errorf("black-hole worker was never fed a job — stall path not exercised")
	}

	// Now kill the stalled worker outright mid-session and run the race
	// detector: its held jobs requeue via workerGone, and the surviving
	// worker alone must still produce the local report.
	bh.Close()
	gotRep, err := client.Races(prog, rec)
	if err != nil {
		t.Fatalf("fleet races after worker death: %v", err)
	}
	wantRep, err := races.Detect(prog, rec)
	if err != nil {
		t.Fatalf("local races: %v", err)
	}
	if !reflect.DeepEqual(wantRep, gotRep) {
		t.Errorf("race reports differ after worker death:\nfleet: %+v\nlocal: %+v", gotRep, wantRep)
	}
}

// TestFleetMatchesLocal is the loopback end-to-end: two in-process
// workers attached to a broker, one submitter replaying and
// race-detecting through them, outputs bit-identical to local runs.
func TestFleetMatchesLocal(t *testing.T) {
	srv := startServer(t)
	for i := 0; i < 2; i++ {
		go (&fleet.Worker{Addr: srv.Addr(), Slots: 2}).Run()
	}
	rec, prog := recordRacy(t)

	client, err := fleet.Dial(srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer client.Close()

	got, err := client.Replay(prog, rec)
	if err != nil {
		t.Fatalf("fleet replay: %v", err)
	}
	want, err := core.Replay(prog, rec)
	if err != nil {
		t.Fatalf("local replay: %v", err)
	}
	sameReplay(t, want, got)
	if err := core.Verify(rec, got); err != nil {
		t.Fatalf("fleet replay fails verification: %v", err)
	}

	gotRep, err := client.Races(prog, rec)
	if err != nil {
		t.Fatalf("fleet races: %v", err)
	}
	wantRep, err := races.Detect(prog, rec)
	if err != nil {
		t.Fatalf("local races: %v", err)
	}
	if !reflect.DeepEqual(wantRep, gotRep) {
		t.Errorf("race reports differ:\nfleet: %+v\nlocal: %+v", gotRep, wantRep)
	}
	if len(wantRep.Races) == 0 {
		t.Errorf("racy workload confirmed no races — test is vacuous")
	}
}
