package fleet

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/ingest"
	"repro/internal/isa"
	"repro/internal/races"
	"repro/internal/replay"
	"repro/internal/wire"
	"repro/internal/workload"
)

// Worker is one fleet worker process: it attaches to a server's job
// broker, pulls job envelopes, materializes the bundles they name (by
// digest, through the server's content-addressed store, cached across
// jobs), executes, and pushes results. A worker holds no state a peer
// could miss: everything it computes is a pure function of the bundle,
// which is what makes straggler re-dispatch and first-result-wins safe.
type Worker struct {
	// Addr is the fleet server address.
	Addr string
	// Slots is the number of jobs run concurrently (minimum 1).
	Slots int

	mu    sync.Mutex
	cache map[string]*bundleEntry
}

// bundleEntry caches one digest's materialized bundle, program and
// interval-job runner. The once gate means concurrent jobs naming the
// same digest fetch and partition it exactly once.
type bundleEntry struct {
	once   sync.Once
	b      *core.Bundle
	prog   *isa.Program
	jobber *replay.IntervalRunner
	err    error
}

// Run attaches and serves jobs until the connection drops (server
// shutdown, network fault) — the normal way a worker exits.
func (w *Worker) Run() error {
	slots := w.Slots
	if slots < 1 {
		slots = 1
	}
	wc, err := ingest.DialWorker(w.Addr, slots)
	if err != nil {
		return err
	}
	defer wc.Close()
	sem := make(chan struct{}, slots)
	var jobs sync.WaitGroup
	defer jobs.Wait()
	for {
		id, body, err := wc.NextJob()
		if err != nil {
			return err
		}
		sem <- struct{}{}
		jobs.Add(1)
		go func(id uint64, body []byte) {
			defer jobs.Done()
			defer func() { <-sem }()
			payload, jerr := w.exec(body)
			var res wire.Appender
			r := dispatch.JobResult{Payload: payload}
			if jerr != nil {
				r = dispatch.JobResult{Err: jerr.Error()}
			}
			dispatch.AppendJobResult(&res, r)
			wc.SendResult(id, res.Buf, "")
		}(id, body)
	}
}

// exec routes one job envelope to its domain codec.
func (w *Worker) exec(body []byte) ([]byte, error) {
	job, err := dispatch.DecodeJob(body)
	if err != nil {
		return nil, err
	}
	e := w.load(job.Digest)
	if e.err != nil {
		return nil, e.err
	}
	switch job.Kind {
	case dispatch.JobReplayInterval:
		return e.jobber.Exec(job.Payload)
	case dispatch.JobScreenBlock:
		return races.ExecScreenJob(e.b, job.Payload)
	case dispatch.JobConfirmSlice:
		return races.ExecConfirmJob(e.prog, e.b, job.Payload)
	}
	return nil, fmt.Errorf("fleet: unroutable job kind %d", job.Kind)
}

// load materializes a digest: fetch from the server's store, decode the
// bundle (a marshaled bundle first, then stream salvage for raw
// recorded streams), and rebuild the program from the manifest name.
func (w *Worker) load(digest string) *bundleEntry {
	w.mu.Lock()
	if w.cache == nil {
		w.cache = make(map[string]*bundleEntry)
	}
	e := w.cache[digest]
	if e == nil {
		e = &bundleEntry{}
		w.cache[digest] = e
	}
	w.mu.Unlock()
	e.once.Do(func() {
		data, err := ingest.FetchBundle(w.Addr, digest)
		if err != nil {
			e.err = fmt.Errorf("fleet: fetch %s: %w", digest, err)
			return
		}
		b, err := core.UnmarshalBundle(data)
		if err != nil {
			sv, serr := core.SalvageStream(data)
			if serr != nil {
				e.err = fmt.Errorf("fleet: %s decodes as neither bundle (%v) nor stream (%v)", digest, err, serr)
				return
			}
			b = sv.Bundle
		}
		prog, err := workload.ProgramByName(b.ProgramName, b.Threads)
		if err != nil {
			e.err = err
			return
		}
		jobber, err := core.ReplayJobber(prog, b)
		if err != nil {
			e.err = err
			return
		}
		e.b, e.prog, e.jobber = b, prog, jobber
	})
	return e
}
