package isa

import (
	"fmt"

	"repro/internal/mem"
)

// Builder assembles a Program. Branch targets are label strings resolved
// at Build time, so forward references are fine. Builder methods panic on
// misuse (unknown label, duplicate label): programs are static artifacts
// and assembly errors are programming errors.
type Builder struct {
	name    string
	code    []Instr
	labels  map[string]int
	fixups  []fixup
	symbols map[string]uint64
}

type fixup struct {
	instr int
	label string
	// imm patches the immediate field instead of the branch target; used
	// by LiLabel to materialise an instruction index as data.
	imm bool
}

// NewBuilder returns an empty Builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:    name,
		labels:  make(map[string]int),
		symbols: make(map[string]uint64),
	}
}

// Label defines a label at the current position.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		panic(fmt.Sprintf("isa: duplicate label %q in %s", name, b.name))
	}
	b.labels[name] = len(b.code)
}

func (b *Builder) emit(in Instr) { b.code = append(b.code, in) }

func (b *Builder) emitBranch(in Instr, label string) {
	b.fixups = append(b.fixups, fixup{instr: len(b.code), label: label})
	b.emit(in)
}

// Nop emits a no-op.
func (b *Builder) Nop() { b.emit(Instr{Op: OpNop}) }

// Halt emits a halt; the executing thread terminates.
func (b *Builder) Halt() { b.emit(Instr{Op: OpHalt}) }

// Li loads a 64-bit immediate: rd = imm.
func (b *Builder) Li(rd Reg, imm int64) { b.emit(Instr{Op: OpLi, Rd: rd, Imm: imm}) }

// Liu loads an unsigned 64-bit immediate (for addresses).
func (b *Builder) Liu(rd Reg, imm uint64) { b.emit(Instr{Op: OpLi, Rd: rd, Imm: int64(imm)}) }

// LiLabel loads the instruction index of a label (resolved at Build),
// e.g. to register a signal handler entry point with the kernel.
func (b *Builder) LiLabel(rd Reg, label string) {
	b.fixups = append(b.fixups, fixup{instr: len(b.code), label: label, imm: true})
	b.emit(Instr{Op: OpLi, Rd: rd})
}

// Mov copies a register: rd = rs.
func (b *Builder) Mov(rd, rs Reg) { b.emit(Instr{Op: OpMov, Rd: rd, Rs1: rs}) }

func (b *Builder) alu3(op Op, rd, rs1, rs2 Reg) { b.emit(Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// Add emits rd = rs1 + rs2.
func (b *Builder) Add(rd, rs1, rs2 Reg) { b.alu3(OpAdd, rd, rs1, rs2) }

// Sub emits rd = rs1 - rs2.
func (b *Builder) Sub(rd, rs1, rs2 Reg) { b.alu3(OpSub, rd, rs1, rs2) }

// Mul emits rd = rs1 * rs2.
func (b *Builder) Mul(rd, rs1, rs2 Reg) { b.alu3(OpMul, rd, rs1, rs2) }

// Div emits rd = rs1 / rs2 (unsigned; division by zero yields all-ones).
func (b *Builder) Div(rd, rs1, rs2 Reg) { b.alu3(OpDiv, rd, rs1, rs2) }

// Rem emits rd = rs1 % rs2 (unsigned; modulo zero yields rs1).
func (b *Builder) Rem(rd, rs1, rs2 Reg) { b.alu3(OpRem, rd, rs1, rs2) }

// And emits rd = rs1 & rs2.
func (b *Builder) And(rd, rs1, rs2 Reg) { b.alu3(OpAnd, rd, rs1, rs2) }

// Or emits rd = rs1 | rs2.
func (b *Builder) Or(rd, rs1, rs2 Reg) { b.alu3(OpOr, rd, rs1, rs2) }

// Xor emits rd = rs1 ^ rs2.
func (b *Builder) Xor(rd, rs1, rs2 Reg) { b.alu3(OpXor, rd, rs1, rs2) }

// Shl emits rd = rs1 << (rs2 & 63).
func (b *Builder) Shl(rd, rs1, rs2 Reg) { b.alu3(OpShl, rd, rs1, rs2) }

// Shr emits rd = rs1 >> (rs2 & 63).
func (b *Builder) Shr(rd, rs1, rs2 Reg) { b.alu3(OpShr, rd, rs1, rs2) }

// Slt emits rd = (signed rs1 < signed rs2).
func (b *Builder) Slt(rd, rs1, rs2 Reg) { b.alu3(OpSlt, rd, rs1, rs2) }

// Sltu emits rd = (rs1 < rs2) unsigned.
func (b *Builder) Sltu(rd, rs1, rs2 Reg) { b.alu3(OpSltu, rd, rs1, rs2) }

func (b *Builder) aluImm(op Op, rd, rs1 Reg, imm int64) {
	b.emit(Instr{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
}

// Addi emits rd = rs1 + imm.
func (b *Builder) Addi(rd, rs1 Reg, imm int64) { b.aluImm(OpAddi, rd, rs1, imm) }

// Muli emits rd = rs1 * imm.
func (b *Builder) Muli(rd, rs1 Reg, imm int64) { b.aluImm(OpMuli, rd, rs1, imm) }

// Andi emits rd = rs1 & imm.
func (b *Builder) Andi(rd, rs1 Reg, imm int64) { b.aluImm(OpAndi, rd, rs1, imm) }

// Ori emits rd = rs1 | imm.
func (b *Builder) Ori(rd, rs1 Reg, imm int64) { b.aluImm(OpOri, rd, rs1, imm) }

// Xori emits rd = rs1 ^ imm.
func (b *Builder) Xori(rd, rs1 Reg, imm int64) { b.aluImm(OpXori, rd, rs1, imm) }

// Shli emits rd = rs1 << imm.
func (b *Builder) Shli(rd, rs1 Reg, imm int64) { b.aluImm(OpShli, rd, rs1, imm) }

// Shri emits rd = rs1 >> imm.
func (b *Builder) Shri(rd, rs1 Reg, imm int64) { b.aluImm(OpShri, rd, rs1, imm) }

// Ld emits rd = mem[rs1 + off].
func (b *Builder) Ld(rd, rs1 Reg, off int64) { b.emit(Instr{Op: OpLd, Rd: rd, Rs1: rs1, Imm: off}) }

// St emits mem[rs1 + off] = rs2.
func (b *Builder) St(rs1 Reg, off int64, rs2 Reg) {
	b.emit(Instr{Op: OpSt, Rs1: rs1, Rs2: rs2, Imm: off})
}

// Lb emits rd = sign-extended byte at rs1 + off (any alignment).
func (b *Builder) Lb(rd, rs1 Reg, off int64) { b.emit(Instr{Op: OpLb, Rd: rd, Rs1: rs1, Imm: off}) }

// Lbu emits rd = zero-extended byte at rs1 + off.
func (b *Builder) Lbu(rd, rs1 Reg, off int64) { b.emit(Instr{Op: OpLbu, Rd: rd, Rs1: rs1, Imm: off}) }

// Sb emits low byte of rs2 -> byte at rs1 + off.
func (b *Builder) Sb(rs1 Reg, off int64, rs2 Reg) {
	b.emit(Instr{Op: OpSb, Rs1: rs1, Rs2: rs2, Imm: off})
}

func (b *Builder) branch(op Op, rs1, rs2 Reg, label string) {
	b.emitBranch(Instr{Op: op, Rs1: rs1, Rs2: rs2}, label)
}

// Beq branches to label when rs1 == rs2.
func (b *Builder) Beq(rs1, rs2 Reg, label string) { b.branch(OpBeq, rs1, rs2, label) }

// Bne branches to label when rs1 != rs2.
func (b *Builder) Bne(rs1, rs2 Reg, label string) { b.branch(OpBne, rs1, rs2, label) }

// Blt branches to label when signed rs1 < signed rs2.
func (b *Builder) Blt(rs1, rs2 Reg, label string) { b.branch(OpBlt, rs1, rs2, label) }

// Bge branches to label when signed rs1 >= signed rs2.
func (b *Builder) Bge(rs1, rs2 Reg, label string) { b.branch(OpBge, rs1, rs2, label) }

// Bltu branches to label when rs1 < rs2 unsigned.
func (b *Builder) Bltu(rs1, rs2 Reg, label string) { b.branch(OpBltu, rs1, rs2, label) }

// Bgeu branches to label when rs1 >= rs2 unsigned.
func (b *Builder) Bgeu(rs1, rs2 Reg, label string) { b.branch(OpBgeu, rs1, rs2, label) }

// Jmp jumps unconditionally to label.
func (b *Builder) Jmp(label string) { b.emitBranch(Instr{Op: OpJmp}, label) }

// Jal jumps to label leaving the return PC in rd.
func (b *Builder) Jal(rd Reg, label string) { b.emitBranch(Instr{Op: OpJal, Rd: rd}, label) }

// Jr jumps to the instruction index held in rs1.
func (b *Builder) Jr(rs1 Reg) { b.emit(Instr{Op: OpJr, Rs1: rs1}) }

// Xchg emits an atomic exchange: rd = mem[rs1+off]; mem[rs1+off] = rs2.
func (b *Builder) Xchg(rd, rs1 Reg, off int64, rs2 Reg) {
	b.emit(Instr{Op: OpXchg, Rd: rd, Rs1: rs1, Rs2: rs2, Imm: off})
}

// Cas emits an atomic compare-and-swap:
// rd = mem[rs1+off]; if rd == expect { mem[rs1+off] = new }.
func (b *Builder) Cas(rd, rs1 Reg, off int64, expect, new Reg) {
	b.emit(Instr{Op: OpCas, Rd: rd, Rs1: rs1, Rs2: expect, Rs3: new, Imm: off})
}

// Fadd emits an atomic fetch-and-add: rd = mem[rs1+off]; mem[rs1+off] += rs2.
func (b *Builder) Fadd(rd, rs1 Reg, off int64, rs2 Reg) {
	b.emit(Instr{Op: OpFadd, Rd: rd, Rs1: rs1, Rs2: rs2, Imm: off})
}

// RepMovs emits a REP word copy from [src] to [dst] for cnt iterations.
// dst, src and cnt advance architecturally per iteration.
func (b *Builder) RepMovs(dst, src, cnt Reg) {
	b.emit(Instr{Op: OpRepMovs, Rs1: dst, Rs2: src, Rs3: cnt})
}

// RepStos emits a REP word fill of val into [dst] for cnt iterations.
func (b *Builder) RepStos(dst, val, cnt Reg) {
	b.emit(Instr{Op: OpRepStos, Rs1: dst, Rs2: val, Rs3: cnt})
}

// Syscall emits a trap to the kernel. Sysno in RRet, args in R11..R14,
// result in RRet.
func (b *Builder) Syscall() { b.emit(Instr{Op: OpSyscall}) }

// Fence emits an ordering fence.
func (b *Builder) Fence() { b.emit(Instr{Op: OpFence}) }

// Build resolves labels and returns the program. memBytes and init
// describe the data segment; threads is the default thread count.
func (b *Builder) Build(memBytes uint64, threads int, init func(m *mem.Memory)) *Program {
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			panic(fmt.Sprintf("isa: undefined label %q in %s", f.label, b.name))
		}
		if f.imm {
			b.code[f.instr].Imm = int64(target)
		} else {
			b.code[f.instr].Target = target
		}
	}
	p := &Program{
		Name:           b.name,
		Code:           b.code,
		Labels:         b.labels,
		MemBytes:       memBytes,
		Symbols:        b.symbols,
		DefaultThreads: threads,
	}
	p.Init = func(m *mem.Memory) {
		if init != nil {
			init(m)
		}
	}
	return p
}

// Symbols returns the builder's symbol table so program initializers can
// publish data addresses.
func (b *Builder) Symbols() map[string]uint64 { return b.symbols }

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.code) }
