package isa

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

// flatPort is a MemPort directly backed by memory, with no cache model.
type flatPort struct{ m *mem.Memory }

func (p flatPort) Load(addr uint64) uint64       { return p.m.Load(addr) }
func (p flatPort) Store(addr uint64, val uint64) { p.m.Store(addr, val) }
func (p flatPort) RMW(addr uint64, f func(uint64) uint64) uint64 {
	old := p.m.Load(addr)
	p.m.Store(addr, f(old))
	return old
}

func runProgram(t *testing.T, b *Builder, memBytes uint64, maxSteps int) (*Core, *mem.Memory) {
	t.Helper()
	prog := b.Build(memBytes, 1, nil)
	m := mem.New(memBytes)
	c := NewCore(0, prog, flatPort{m})
	for i := 0; i < maxSteps; i++ {
		switch c.Step() {
		case StepHalted:
			return c, m
		case StepSyscall:
			t.Fatal("unexpected syscall")
		}
	}
	t.Fatalf("program %s did not halt in %d steps", prog.Name, maxSteps)
	return nil, nil
}

func TestALUBasics(t *testing.T) {
	b := NewBuilder("alu")
	b.Li(R1, 10)
	b.Li(R2, 3)
	b.Add(R3, R1, R2)  // 13
	b.Sub(R4, R1, R2)  // 7
	b.Mul(R5, R1, R2)  // 30
	b.Div(R6, R1, R2)  // 3
	b.Rem(R7, R1, R2)  // 1
	b.And(R8, R1, R2)  // 2
	b.Or(R9, R1, R2)   // 11
	b.Xor(R11, R1, R2) // 9
	b.Shl(R12, R1, R2) // 80
	b.Shr(R13, R1, R2) // 1
	b.Halt()
	c, _ := runProgram(t, b, 64, 100)
	want := map[Reg]uint64{R3: 13, R4: 7, R5: 30, R6: 3, R7: 1, R8: 2, R9: 11, R11: 9, R12: 80, R13: 1}
	for r, w := range want {
		if got := c.Reg(r); got != w {
			t.Errorf("r%d = %d, want %d", r, got, w)
		}
	}
}

func TestDivRemByZero(t *testing.T) {
	b := NewBuilder("divzero")
	b.Li(R1, 42)
	b.Div(R2, R1, R0)
	b.Rem(R3, R1, R0)
	b.Halt()
	c, _ := runProgram(t, b, 64, 10)
	if got := c.Reg(R2); got != ^uint64(0) {
		t.Errorf("div by zero = %#x, want all-ones", got)
	}
	if got := c.Reg(R3); got != 42 {
		t.Errorf("rem by zero = %d, want 42", got)
	}
}

func TestSignedComparisons(t *testing.T) {
	b := NewBuilder("signed")
	b.Li(R1, -5)
	b.Li(R2, 3)
	b.Slt(R3, R1, R2)  // -5 < 3 signed: 1
	b.Sltu(R4, R1, R2) // huge unsigned < 3: 0
	b.Halt()
	c, _ := runProgram(t, b, 64, 10)
	if c.Reg(R3) != 1 {
		t.Errorf("slt = %d, want 1", c.Reg(R3))
	}
	if c.Reg(R4) != 0 {
		t.Errorf("sltu = %d, want 0", c.Reg(R4))
	}
}

func TestR0Hardwired(t *testing.T) {
	b := NewBuilder("r0")
	b.Li(R0, 99)
	b.Addi(R0, R0, 5)
	b.Mov(R1, R0)
	b.Halt()
	c, _ := runProgram(t, b, 64, 10)
	if c.Reg(R0) != 0 || c.Reg(R1) != 0 {
		t.Errorf("R0 = %d, copy = %d; want 0, 0", c.Reg(R0), c.Reg(R1))
	}
}

func TestLoadStore(t *testing.T) {
	b := NewBuilder("ldst")
	b.Li(R1, 64) // base address
	b.Li(R2, 777)
	b.St(R1, 8, R2)
	b.Ld(R3, R1, 8)
	b.Halt()
	c, m := runProgram(t, b, 256, 10)
	if c.Reg(R3) != 777 {
		t.Errorf("loaded %d, want 777", c.Reg(R3))
	}
	if m.Load(72) != 777 {
		t.Errorf("mem[72] = %d, want 777", m.Load(72))
	}
}

func TestBranchLoop(t *testing.T) {
	b := NewBuilder("loop")
	b.Li(R1, 0)
	b.Li(R2, 10)
	b.Label("top")
	b.Addi(R1, R1, 1)
	b.Bne(R1, R2, "top")
	b.Halt()
	c, _ := runProgram(t, b, 64, 100)
	if c.Reg(R1) != 10 {
		t.Errorf("counter = %d, want 10", c.Reg(R1))
	}
	// 2 setup + 10 iterations * 2 + 1 halt
	if got := c.Retired(); got != 23 {
		t.Errorf("retired = %d, want 23", got)
	}
}

func TestAllBranchKinds(t *testing.T) {
	// Each branch that should be taken jumps forward over a poison store.
	b := NewBuilder("branches")
	b.Li(R1, 5)
	b.Li(R2, 5)
	b.Li(R3, -1) // signed negative, huge unsigned
	b.Li(R4, 0)  // poison accumulator

	b.Beq(R1, R2, "t1")
	b.Addi(R4, R4, 1)
	b.Label("t1")
	b.Bne(R1, R3, "t2")
	b.Addi(R4, R4, 1)
	b.Label("t2")
	b.Blt(R3, R1, "t3") // -1 < 5 signed
	b.Addi(R4, R4, 1)
	b.Label("t3")
	b.Bge(R1, R2, "t4") // 5 >= 5
	b.Addi(R4, R4, 1)
	b.Label("t4")
	b.Bltu(R1, R3, "t5") // 5 < 0xffff.. unsigned
	b.Addi(R4, R4, 1)
	b.Label("t5")
	b.Bgeu(R3, R1, "t6") // 0xffff.. >= 5 unsigned
	b.Addi(R4, R4, 1)
	b.Label("t6")
	b.Halt()
	c, _ := runProgram(t, b, 64, 100)
	if c.Reg(R4) != 0 {
		t.Errorf("%d branches not taken that should have been", c.Reg(R4))
	}
}

func TestJalJr(t *testing.T) {
	b := NewBuilder("call")
	b.Jal(R31, "fn")
	b.Li(R2, 1) // executed after return
	b.Halt()
	b.Label("fn")
	b.Li(R1, 42)
	b.Jr(R31)
	c, _ := runProgram(t, b, 64, 20)
	if c.Reg(R1) != 42 || c.Reg(R2) != 1 {
		t.Errorf("r1=%d r2=%d, want 42, 1", c.Reg(R1), c.Reg(R2))
	}
}

func TestAtomics(t *testing.T) {
	b := NewBuilder("atomics")
	b.Li(R1, 128) // address
	b.Li(R2, 7)
	b.St(R1, 0, R2) // mem = 7

	b.Li(R3, 100)
	b.Xchg(R4, R1, 0, R3) // r4 = 7, mem = 100

	b.Li(R5, 100) // expected
	b.Li(R6, 200) // new
	b.Cas(R7, R1, 0, R5, R6) // r7 = 100 (success), mem = 200

	b.Li(R8, 999)
	b.Cas(R9, R1, 0, R8, R5) // fails: r9 = 200, mem unchanged

	b.Li(R11, 5)
	b.Fadd(R12, R1, 0, R11) // r12 = 200, mem = 205
	b.Halt()
	c, m := runProgram(t, b, 256, 30)
	if c.Reg(R4) != 7 {
		t.Errorf("xchg old = %d, want 7", c.Reg(R4))
	}
	if c.Reg(R7) != 100 {
		t.Errorf("cas old = %d, want 100", c.Reg(R7))
	}
	if c.Reg(R9) != 200 {
		t.Errorf("failed cas old = %d, want 200", c.Reg(R9))
	}
	if c.Reg(R12) != 200 {
		t.Errorf("fadd old = %d, want 200", c.Reg(R12))
	}
	if m.Load(128) != 205 {
		t.Errorf("final mem = %d, want 205", m.Load(128))
	}
}

func TestRepMovs(t *testing.T) {
	b := NewBuilder("repmovs")
	b.Li(R1, 512) // dst
	b.Li(R2, 64)  // src
	b.Li(R3, 8)   // count
	b.RepMovs(R1, R2, R3)
	b.Halt()
	prog := b.Build(1024, 1, nil)
	m := mem.New(1024)
	for i := uint64(0); i < 8; i++ {
		m.Store(64+i*8, i+100)
	}
	c := NewCore(0, prog, flatPort{m})

	// Step through and observe REP progress markers.
	ticks, retires := 0, 0
	for !c.Halted() {
		switch c.Step() {
		case StepRepTick:
			ticks++
			if active, done := c.RepInFlight(); !active || done != uint64(ticks) {
				t.Fatalf("rep in flight = (%v, %d), want (true, %d)", active, done, ticks)
			}
		case StepRepRetired:
			retires++
		}
	}
	if ticks != 7 || retires != 1 {
		t.Errorf("ticks=%d retires=%d, want 7, 1", ticks, retires)
	}
	for i := uint64(0); i < 8; i++ {
		if got := m.Load(512 + i*8); got != i+100 {
			t.Errorf("dst[%d] = %d, want %d", i, got, i+100)
		}
	}
	// Registers advanced architecturally.
	if c.Reg(R1) != 512+64 || c.Reg(R2) != 64+64 || c.Reg(R3) != 0 {
		t.Errorf("post-rep regs: dst=%d src=%d cnt=%d", c.Reg(R1), c.Reg(R2), c.Reg(R3))
	}
	// REP counts as a single retired instruction (3 LIs + 1 REP + 1 HALT).
	if c.Retired() != 5 {
		t.Errorf("retired = %d, want 5", c.Retired())
	}
}

func TestRepStosZeroCount(t *testing.T) {
	b := NewBuilder("repzero")
	b.Li(R1, 64)
	b.Li(R2, 42)
	b.Li(R3, 0)
	b.RepStos(R1, R2, R3)
	b.Halt()
	c, m := runProgram(t, b, 256, 10)
	if m.Load(64) != 0 {
		t.Error("zero-count REP wrote memory")
	}
	if c.Retired() != 5 {
		t.Errorf("retired = %d, want 5", c.Retired())
	}
}

func TestRepStos(t *testing.T) {
	b := NewBuilder("repstos")
	b.Li(R1, 128)
	b.Li(R2, 0xabcd)
	b.Li(R3, 4)
	b.RepStos(R1, R2, R3)
	b.Halt()
	_, m := runProgram(t, b, 512, 20)
	for i := uint64(0); i < 4; i++ {
		if got := m.Load(128 + i*8); got != 0xabcd {
			t.Errorf("fill[%d] = %#x, want 0xabcd", i, got)
		}
	}
	if m.Load(160) != 0 {
		t.Error("REP overran its count")
	}
}

func TestSyscallTrap(t *testing.T) {
	b := NewBuilder("sys")
	b.Li(RRet, 7)  // sysno
	b.Li(R11, 11)  // arg1
	b.Syscall()
	b.Mov(R2, RRet) // capture result
	b.Halt()
	prog := b.Build(64, 1, nil)
	c := NewCore(0, prog, flatPort{mem.New(64)})

	for c.Step() != StepSyscall {
	}
	if !c.InSyscall() {
		t.Fatal("core not in syscall")
	}
	sysno, a1, _, _, _ := c.SyscallArgs()
	if sysno != 7 || a1 != 11 {
		t.Fatalf("syscall args = %d, %d; want 7, 11", sysno, a1)
	}
	// Repeated steps while stalled stay in syscall and retire nothing.
	before := c.Retired()
	if c.Step() != StepSyscall {
		t.Fatal("stalled core should keep reporting StepSyscall")
	}
	if c.Retired() != before {
		t.Fatal("stalled core retired an instruction")
	}
	c.CompleteSyscall(555)
	for !c.Halted() {
		c.Step()
	}
	if c.Reg(R2) != 555 {
		t.Errorf("syscall result = %d, want 555", c.Reg(R2))
	}
}

func TestAbortSyscall(t *testing.T) {
	b := NewBuilder("sysabort")
	b.Li(RRet, 1)
	b.Syscall()
	b.Halt()
	prog := b.Build(64, 1, nil)
	c := NewCore(0, prog, flatPort{mem.New(64)})
	for c.Step() != StepSyscall {
	}
	pc := c.PC()
	c.AbortSyscall()
	if c.PC() != pc {
		t.Error("AbortSyscall moved PC")
	}
	// Re-executes the same syscall.
	if c.Step() != StepSyscall {
		t.Error("expected syscall re-trap after abort")
	}
}

func TestContextSaveRestore(t *testing.T) {
	b := NewBuilder("ctx")
	b.Li(R1, 1)
	b.Li(R2, 2)
	b.Halt()
	prog := b.Build(64, 1, nil)
	c := NewCore(0, prog, flatPort{mem.New(64)})
	c.Step()
	ctx := c.SaveContext()
	c.Step()
	c.Step()
	if !c.Halted() {
		t.Fatal("expected halt")
	}
	c.RestoreContext(ctx)
	if c.Halted() || c.PC() != 1 || c.Reg(R1) != 1 || c.Reg(R2) != 0 {
		t.Errorf("restore mismatch: halted=%v pc=%d r1=%d r2=%d",
			c.Halted(), c.PC(), c.Reg(R1), c.Reg(R2))
	}
	// Resume runs to completion again.
	for !c.Halted() {
		c.Step()
	}
	if c.Reg(R2) != 2 {
		t.Errorf("r2 after resume = %d, want 2", c.Reg(R2))
	}
}

func TestContextMidRep(t *testing.T) {
	b := NewBuilder("ctxrep")
	b.Li(R1, 64)
	b.Li(R2, 9)
	b.Li(R3, 5)
	b.RepStos(R1, R2, R3)
	b.Halt()
	prog := b.Build(512, 1, nil)
	m := mem.New(512)
	c := NewCore(0, prog, flatPort{m})
	// Run 3 LIs + 2 REP iterations.
	for i := 0; i < 5; i++ {
		c.Step()
	}
	if active, done := c.RepInFlight(); !active || done != 2 {
		t.Fatalf("rep state = (%v, %d), want (true, 2)", active, done)
	}
	ctx := c.SaveContext()

	// Migrate to a fresh core and finish.
	c2 := NewCore(1, prog, flatPort{m})
	c2.RestoreContext(ctx)
	if active, done := c2.RepInFlight(); !active || done != 2 {
		t.Fatalf("restored rep state = (%v, %d), want (true, 2)", active, done)
	}
	for !c2.Halted() {
		c2.Step()
	}
	for i := uint64(0); i < 5; i++ {
		if m.Load(64+i*8) != 9 {
			t.Errorf("fill[%d] = %d, want 9", i, m.Load(64+i*8))
		}
	}
}

func TestBuilderUndefinedLabelPanics(t *testing.T) {
	b := NewBuilder("bad")
	b.Jmp("nowhere")
	defer func() {
		if recover() == nil {
			t.Error("undefined label did not panic")
		}
	}()
	b.Build(64, 1, nil)
}

func TestBuilderDuplicateLabelPanics(t *testing.T) {
	b := NewBuilder("dup")
	b.Label("x")
	defer func() {
		if recover() == nil {
			t.Error("duplicate label did not panic")
		}
	}()
	b.Label("x")
}

func TestInstrStrings(t *testing.T) {
	// Every opcode must render a non-empty, distinct-enough mnemonic.
	b := NewBuilder("strings")
	b.Nop()
	b.Halt()
	b.Li(R1, 5)
	b.Mov(R1, R2)
	b.Add(R1, R2, R3)
	b.Addi(R1, R2, 7)
	b.Ld(R1, R2, 8)
	b.St(R2, 8, R1)
	b.Label("x")
	b.Beq(R1, R2, "x")
	b.Jmp("x")
	b.Jal(R31, "x")
	b.Jr(R31)
	b.Xchg(R1, R2, 0, R3)
	b.Cas(R1, R2, 0, R3, R4)
	b.Fadd(R1, R2, 0, R3)
	b.RepMovs(R1, R2, R3)
	b.RepStos(R1, R2, R3)
	b.Syscall()
	b.Fence()
	prog := b.Build(64, 1, nil)
	seen := map[string]bool{}
	for _, in := range prog.Code {
		s := in.String()
		if s == "" {
			t.Errorf("empty disassembly for %v", in.Op)
		}
		seen[s] = true
	}
	if len(seen) < 18 {
		t.Errorf("only %d distinct disassemblies", len(seen))
	}
}

func TestOpClassPredicates(t *testing.T) {
	cases := []struct {
		op                          Op
		read, write, atomic, rep, branch bool
	}{
		{OpLd, true, false, false, false, false},
		{OpSt, false, true, false, false, false},
		{OpXchg, true, true, true, false, false},
		{OpCas, true, true, true, false, false},
		{OpFadd, true, true, true, false, false},
		{OpRepMovs, true, true, false, true, false},
		{OpRepStos, false, true, false, true, false},
		{OpBeq, false, false, false, false, true},
		{OpJmp, false, false, false, false, true},
		{OpAdd, false, false, false, false, false},
	}
	for _, c := range cases {
		if c.op.IsMemRead() != c.read || c.op.IsMemWrite() != c.write ||
			c.op.IsAtomic() != c.atomic || c.op.IsRep() != c.rep || c.op.IsBranch() != c.branch {
			t.Errorf("%v predicates wrong", c.op)
		}
	}
}

func TestSymbolPanicsWhenMissing(t *testing.T) {
	p := &Program{Name: "p", Symbols: map[string]uint64{}}
	defer func() {
		if recover() == nil {
			t.Error("missing symbol did not panic")
		}
	}()
	p.Symbol("ghost")
}

func TestALUProperty(t *testing.T) {
	// add/sub round-trips for arbitrary operands.
	f := func(x, y uint64) bool {
		b := NewBuilder("prop")
		b.Liu(R1, x)
		b.Liu(R2, y)
		b.Add(R3, R1, R2)
		b.Sub(R4, R3, R2)
		b.Halt()
		prog := b.Build(64, 1, nil)
		c := NewCore(0, prog, flatPort{mem.New(64)})
		for !c.Halted() {
			c.Step()
		}
		return c.Reg(R4) == x && c.Reg(R3) == x+y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestByteLoadsAndStores(t *testing.T) {
	b := NewBuilder("bytes")
	b.Li(R1, 64) // word address
	b.Liu(R2, 0x8081828384858687)
	b.St(R1, 0, R2)
	b.Lbu(R3, R1, 0) // 0x87
	b.Lbu(R4, R1, 7) // 0x80
	b.Lb(R5, R1, 1)  // 0x86 sign-extended
	b.Li(R6, 0x5A)
	b.Sb(R1, 3, R6) // replace byte 3
	b.Ld(R7, R1, 0)
	b.Lb(R8, R1, 3) // 0x5A positive
	b.Halt()
	c, m := runProgram(t, b, 256, 30)
	if c.Reg(R3) != 0x87 {
		t.Errorf("lbu[0] = %#x, want 0x87", c.Reg(R3))
	}
	if c.Reg(R4) != 0x80 {
		t.Errorf("lbu[7] = %#x, want 0x80", c.Reg(R4))
	}
	if c.Reg(R5) != 0xffffffffffffff86 {
		t.Errorf("lb[1] = %#x, want sign-extended 0x86", c.Reg(R5))
	}
	if got := m.Load(64); got != 0x808182835A858687 {
		t.Errorf("word after sb = %#x", got)
	}
	if c.Reg(R8) != 0x5A {
		t.Errorf("lb[3] = %#x, want 0x5a", c.Reg(R8))
	}
}

func TestByteOpsUnaligned(t *testing.T) {
	// Byte addresses need no alignment; the containing word is accessed.
	b := NewBuilder("unaligned")
	b.Li(R1, 69) // byte 5 of word 64
	b.Li(R2, 0xAB)
	b.Sb(R1, 0, R2)
	b.Lbu(R3, R1, 0)
	b.Halt()
	c, m := runProgram(t, b, 256, 10)
	if c.Reg(R3) != 0xAB {
		t.Errorf("read back %#x, want 0xab", c.Reg(R3))
	}
	if got := m.Load(64); got != 0xAB0000000000 {
		t.Errorf("word = %#x", got)
	}
}
