package isa

import "repro/internal/mem"

// Program is an immutable executable image: code, the memory footprint it
// needs, and an initializer that lays out its data segment. Programs are
// SPMD: every thread runs the same code from instruction 0 and finds its
// thread ID in R1.
type Program struct {
	// Name identifies the program in logs and reports.
	Name string
	// Code is the instruction stream, indexed by PC.
	Code []Instr
	// Labels maps label names to instruction indices (for diagnostics).
	Labels map[string]int
	// MemBytes is the data-memory size the program needs.
	MemBytes uint64
	// Init lays out the data segment before any thread runs. It may use
	// the memory's bump allocator and should record important addresses
	// in Symbols for tests and verification.
	Init func(m *mem.Memory)
	// Symbols maps data-segment names to addresses, filled in by Init.
	Symbols map[string]uint64
	// DefaultThreads is the thread count the program was written for.
	DefaultThreads int
}

// Symbol returns the address recorded for name, panicking if absent;
// missing symbols are programming errors in the workload definition.
func (p *Program) Symbol(name string) uint64 {
	a, ok := p.Symbols[name]
	if !ok {
		panic("isa: unknown symbol " + name + " in program " + p.Name)
	}
	return a
}
