// Package isa defines the simulated instruction set executed by the
// QuickRec machine model, an assembler DSL for writing workloads, and the
// interpreter core.
//
// The ISA is a small RISC-style register machine with three deliberate
// x86-flavoured additions that the QuickRec paper identifies as the hard
// cases for record and replay:
//
//   - REP string instructions (REPMOVS/REPSTOS) that can be interrupted
//     mid-flight at a chunk boundary, requiring the log to carry an
//     iteration residue;
//   - atomic read-modify-write instructions (XCHG/CAS/FADD) whose read
//     and write must be indivisible with respect to coherence traffic;
//   - a SYSCALL trap into the (simulated) kernel, the boundary at which
//     the Capo3 software stack takes over.
//
// Code and data live in separate spaces: instructions are indexed by
// position in the program slice (a fixed, deterministic artifact), while
// data accesses go through a MemPort so the cache/coherence/recording
// models observe every load and store.
package isa

import "fmt"

// NumRegs is the number of general-purpose registers. R0 is hardwired to
// zero: reads return 0 and writes are discarded.
const NumRegs = 32

// Reg names a general-purpose register.
type Reg uint8

// Register aliases. R0 is the hardwired zero register. By convention the
// machine model passes the thread ID in R1, the thread count in R2, and a
// per-thread scratch/stack base in R29 at startup; RRet carries syscall
// numbers and results.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	R16
	R17
	R18
	R19
	R20
	R21
	R22
	R23
	R24
	R25
	R26
	R27
	R28
	R29
	R30
	R31
)

// RRet is the register carrying syscall numbers on entry and results on
// return (mirrors x86's RAX role).
const RRet = R10

// Op enumerates instruction opcodes.
type Op uint8

// Opcodes.
const (
	OpNop Op = iota
	OpHalt
	OpLi   // rd = imm
	OpMov  // rd = rs1
	OpAdd  // rd = rs1 + rs2
	OpSub  // rd = rs1 - rs2
	OpMul  // rd = rs1 * rs2
	OpDiv  // rd = rs1 / rs2 (unsigned; x/0 = all-ones)
	OpRem  // rd = rs1 % rs2 (unsigned; x%0 = x)
	OpAnd  // rd = rs1 & rs2
	OpOr   // rd = rs1 | rs2
	OpXor  // rd = rs1 ^ rs2
	OpShl  // rd = rs1 << (rs2 & 63)
	OpShr  // rd = rs1 >> (rs2 & 63)
	OpSlt  // rd = signed(rs1) < signed(rs2) ? 1 : 0
	OpSltu // rd = rs1 < rs2 ? 1 : 0
	OpAddi // rd = rs1 + imm
	OpMuli // rd = rs1 * imm
	OpAndi // rd = rs1 & imm
	OpOri  // rd = rs1 | imm
	OpXori // rd = rs1 ^ imm
	OpShli // rd = rs1 << (imm & 63)
	OpShri // rd = rs1 >> (imm & 63)
	OpLd   // rd = mem[rs1 + imm]
	OpSt   // mem[rs1 + imm] = rs2
	OpLb   // rd = sign-extended byte at rs1 + imm (any alignment)
	OpLbu  // rd = zero-extended byte at rs1 + imm
	OpSb   // low byte of rs2 -> byte at rs1 + imm (atomic merge; see core)
	OpBeq  // if rs1 == rs2: pc = target
	OpBne  // if rs1 != rs2: pc = target
	OpBlt  // if signed(rs1) < signed(rs2): pc = target
	OpBge  // if signed(rs1) >= signed(rs2): pc = target
	OpBltu // if rs1 < rs2: pc = target
	OpBgeu // if rs1 >= rs2: pc = target
	OpJmp  // pc = target
	OpJal  // rd = pc + 1; pc = target
	OpJr   // pc = rs1
	// Atomic read-modify-write. The read and the write are indivisible:
	// the core acquires the line exclusively before either happens.
	OpXchg // rd = mem[rs1+imm]; mem[rs1+imm] = rs2
	OpCas  // rd = mem[rs1+imm]; if rd == rs2: mem[rs1+imm] = rs3
	OpFadd // rd = mem[rs1+imm]; mem[rs1+imm] = rd + rs2
	// REP string instructions: one architectural instruction executing
	// rs3 word-sized iterations; registers advance per iteration so the
	// instruction can be suspended and resumed at any iteration boundary.
	OpRepMovs // while rs3 > 0: mem[rs1] = mem[rs2]; rs1 += 8; rs2 += 8; rs3 -= 1
	OpRepStos // while rs3 > 0: mem[rs1] = rs2; rs1 += 8; rs3 -= 1
	OpSyscall // trap to kernel; RRet = sysno; args in R11..R14; result in RRet
	OpFence   // ordering fence (no-op under the simulator's SC memory model)

	numOps
)

var opNames = [numOps]string{
	OpNop: "nop", OpHalt: "halt", OpLi: "li", OpMov: "mov",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpSlt: "slt", OpSltu: "sltu",
	OpAddi: "addi", OpMuli: "muli", OpAndi: "andi", OpOri: "ori",
	OpXori: "xori", OpShli: "shli", OpShri: "shri",
	OpLd: "ld", OpSt: "st", OpLb: "lb", OpLbu: "lbu", OpSb: "sb",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge",
	OpBltu: "bltu", OpBgeu: "bgeu",
	OpJmp: "jmp", OpJal: "jal", OpJr: "jr",
	OpXchg: "xchg", OpCas: "cas", OpFadd: "fadd",
	OpRepMovs: "repmovs", OpRepStos: "repstos",
	OpSyscall: "syscall", OpFence: "fence",
}

// String returns the mnemonic for the opcode.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// IsMemRead reports whether the opcode reads data memory.
func (op Op) IsMemRead() bool {
	switch op {
	case OpLd, OpLb, OpLbu, OpXchg, OpCas, OpFadd, OpRepMovs:
		return true
	case OpSb:
		// A byte store reads the containing word to merge the byte.
		return true
	}
	return false
}

// IsMemWrite reports whether the opcode writes data memory. CAS is
// treated as a write even when the compare fails, matching hardware that
// acquires the line exclusively up front.
func (op Op) IsMemWrite() bool {
	switch op {
	case OpSt, OpSb, OpXchg, OpCas, OpFadd, OpRepMovs, OpRepStos:
		return true
	}
	return false
}

// IsAtomic reports whether the opcode is an atomic read-modify-write.
func (op Op) IsAtomic() bool {
	switch op {
	case OpXchg, OpCas, OpFadd:
		return true
	}
	return false
}

// IsRep reports whether the opcode is a REP string instruction.
func (op Op) IsRep() bool { return op == OpRepMovs || op == OpRepStos }

// IsBranch reports whether the opcode may redirect control flow.
func (op Op) IsBranch() bool {
	switch op {
	case OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu, OpJmp, OpJal, OpJr:
		return true
	}
	return false
}

// Instr is one decoded instruction. Target (for branches) is an
// instruction index; Imm is a 64-bit immediate or address offset.
type Instr struct {
	Op     Op
	Rd     Reg
	Rs1    Reg
	Rs2    Reg
	Rs3    Reg
	Imm    int64
	Target int
}

// String renders the instruction in assembler-like form.
func (in Instr) String() string {
	r := func(x Reg) string { return fmt.Sprintf("r%d", x) }
	switch in.Op {
	case OpNop, OpHalt, OpSyscall, OpFence:
		return in.Op.String()
	case OpLi:
		return fmt.Sprintf("li %s, %d", r(in.Rd), in.Imm)
	case OpMov:
		return fmt.Sprintf("mov %s, %s", r(in.Rd), r(in.Rs1))
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr, OpSlt, OpSltu:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, r(in.Rd), r(in.Rs1), r(in.Rs2))
	case OpAddi, OpMuli, OpAndi, OpOri, OpXori, OpShli, OpShri:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, r(in.Rd), r(in.Rs1), in.Imm)
	case OpLd:
		return fmt.Sprintf("ld %s, [%s%+d]", r(in.Rd), r(in.Rs1), in.Imm)
	case OpLb, OpLbu:
		return fmt.Sprintf("%s %s, [%s%+d]", in.Op, r(in.Rd), r(in.Rs1), in.Imm)
	case OpSt:
		return fmt.Sprintf("st [%s%+d], %s", r(in.Rs1), in.Imm, r(in.Rs2))
	case OpSb:
		return fmt.Sprintf("sb [%s%+d], %s", r(in.Rs1), in.Imm, r(in.Rs2))
	case OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu:
		return fmt.Sprintf("%s %s, %s, @%d", in.Op, r(in.Rs1), r(in.Rs2), in.Target)
	case OpJmp:
		return fmt.Sprintf("jmp @%d", in.Target)
	case OpJal:
		return fmt.Sprintf("jal %s, @%d", r(in.Rd), in.Target)
	case OpJr:
		return fmt.Sprintf("jr %s", r(in.Rs1))
	case OpXchg:
		return fmt.Sprintf("xchg %s, [%s%+d], %s", r(in.Rd), r(in.Rs1), in.Imm, r(in.Rs2))
	case OpCas:
		return fmt.Sprintf("cas %s, [%s%+d], %s, %s", r(in.Rd), r(in.Rs1), in.Imm, r(in.Rs2), r(in.Rs3))
	case OpFadd:
		return fmt.Sprintf("fadd %s, [%s%+d], %s", r(in.Rd), r(in.Rs1), in.Imm, r(in.Rs2))
	case OpRepMovs:
		return fmt.Sprintf("repmovs [%s], [%s], %s", r(in.Rs1), r(in.Rs2), r(in.Rs3))
	case OpRepStos:
		return fmt.Sprintf("repstos [%s], %s, %s", r(in.Rs1), r(in.Rs2), r(in.Rs3))
	default:
		return in.Op.String()
	}
}
