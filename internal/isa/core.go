package isa

import "fmt"

// MemPort is the core's window onto data memory. The machine model wires
// each core's port through its private cache so that every access
// generates coherence traffic visible to the recording hardware.
type MemPort interface {
	// Load reads the aligned 64-bit word at addr.
	Load(addr uint64) uint64
	// Store writes the aligned 64-bit word at addr.
	Store(addr uint64, val uint64)
	// RMW atomically applies f to the word at addr and returns the old
	// value. The implementation must acquire the line exclusively before
	// reading so the read-modify-write is indivisible.
	RMW(addr uint64, f func(old uint64) uint64) uint64
}

// StepKind classifies the outcome of one Step.
type StepKind uint8

// Step outcomes.
const (
	// StepRetired: one whole instruction retired.
	StepRetired StepKind = iota
	// StepRepTick: one iteration of an in-flight REP instruction
	// completed; the instruction has not retired yet.
	StepRepTick
	// StepRepRetired: the final iteration of a REP instruction completed
	// and the instruction retired.
	StepRepRetired
	// StepSyscall: the core trapped into the kernel. The core is stalled
	// until CompleteSyscall is called; the syscall instruction retires
	// then.
	StepSyscall
	// StepHalted: the core executed HALT (or was already halted).
	StepHalted
)

// Core is a single in-order execution context. It holds the architectural
// register state of whatever thread is currently scheduled on it; the
// kernel model swaps register files on context switches.
type Core struct {
	// ID is the core's index in the machine.
	ID int

	regs    [NumRegs]uint64
	pc      int
	halted  bool
	retired uint64

	// In-flight REP instruction state. repActive is true between the
	// first and last iteration of a REP instruction; repDone counts
	// completed iterations.
	repActive bool
	repDone   uint64

	// Pending syscall: set when Step hits OpSyscall, cleared by
	// CompleteSyscall.
	inSyscall bool

	prog *Program
	port MemPort
}

// NewCore returns a core executing prog through port.
func NewCore(id int, prog *Program, port MemPort) *Core {
	return &Core{ID: id, prog: prog, port: port}
}

// Reg returns the value of r (R0 reads as zero).
func (c *Core) Reg(r Reg) uint64 {
	if r == R0 {
		return 0
	}
	return c.regs[r]
}

// SetReg sets r to v (writes to R0 are discarded).
func (c *Core) SetReg(r Reg, v uint64) {
	if r != R0 {
		c.regs[r] = v
	}
}

// PC returns the current instruction index.
func (c *Core) PC() int { return c.pc }

// SetPC sets the instruction index (used for signal delivery).
func (c *Core) SetPC(pc int) { c.pc = pc }

// Halted reports whether the core has executed HALT.
func (c *Core) Halted() bool { return c.halted }

// Retired returns the number of instructions retired since construction
// (or the last ResetRetired).
func (c *Core) Retired() uint64 { return c.retired }

// RepInFlight reports whether a REP instruction is partially executed,
// and how many iterations have completed. The recording hardware stores
// this residue in the chunk log so replay can suspend the instruction at
// the same point.
func (c *Core) RepInFlight() (active bool, done uint64) { return c.repActive, c.repDone }

// InSyscall reports whether the core is stalled at a syscall trap.
func (c *Core) InSyscall() bool { return c.inSyscall }

// SyscallArgs returns the syscall number and arguments (RRet, R11..R14).
func (c *Core) SyscallArgs() (sysno, a1, a2, a3, a4 uint64) {
	return c.Reg(RRet), c.Reg(R11), c.Reg(R12), c.Reg(R13), c.Reg(R14)
}

// CompleteSyscall supplies the kernel's result, retires the syscall
// instruction, and resumes the core.
func (c *Core) CompleteSyscall(ret uint64) {
	if !c.inSyscall {
		panic("isa: CompleteSyscall with no syscall pending")
	}
	c.SetReg(RRet, ret)
	c.inSyscall = false
	c.pc++
	c.retired++
}

// AbortSyscall resumes the core without retiring the syscall instruction,
// so it re-executes (used for restartable futex waits interrupted by
// signals).
func (c *Core) AbortSyscall() {
	if !c.inSyscall {
		panic("isa: AbortSyscall with no syscall pending")
	}
	c.inSyscall = false
}

// ClearRepState abandons in-flight REP bookkeeping. Used on signal
// delivery: the partially executed REP instruction resumes later as a
// fresh instruction with the remaining count in its registers, so the
// residue counter restarts from zero. Record and replay must both clear
// at the same delivery point for residues to stay in sync.
func (c *Core) ClearRepState() {
	c.repActive = false
	c.repDone = 0
}

// Context is a saved thread context, enough to migrate a thread across
// cores or suspend it in the kernel.
type Context struct {
	Regs      [NumRegs]uint64
	PC        int
	Halted    bool
	Retired   uint64
	RepActive bool
	RepDone   uint64
}

// SaveContext captures the architectural state of the running thread.
// It must not be called mid-syscall.
func (c *Core) SaveContext() Context {
	if c.inSyscall {
		panic("isa: SaveContext during syscall")
	}
	return Context{
		Regs: c.regs, PC: c.pc, Halted: c.halted, Retired: c.retired,
		RepActive: c.repActive, RepDone: c.repDone,
	}
}

// RestoreContext installs a previously saved thread context.
func (c *Core) RestoreContext(ctx Context) {
	c.regs = ctx.Regs
	c.pc = ctx.PC
	c.halted = ctx.Halted
	c.retired = ctx.Retired
	c.repActive = ctx.RepActive
	c.repDone = ctx.RepDone
	c.inSyscall = false
}

func (c *Core) fetch() Instr {
	if c.pc < 0 || c.pc >= len(c.prog.Code) {
		panic(fmt.Sprintf("isa: core %d PC %d out of range (program %s, %d instrs)",
			c.ID, c.pc, c.prog.Name, len(c.prog.Code)))
	}
	return c.prog.Code[c.pc]
}

// Step executes one unit of work: one whole instruction, or one iteration
// of a REP instruction. It returns what happened so the machine model can
// account cycles and the recorder can count retires.
func (c *Core) Step() StepKind {
	if c.halted {
		return StepHalted
	}
	if c.inSyscall {
		return StepSyscall
	}
	in := c.fetch()

	switch in.Op {
	case OpNop, OpFence:
		// fall through to retire
	case OpHalt:
		c.halted = true
		c.retired++
		return StepHalted
	case OpLi:
		c.SetReg(in.Rd, uint64(in.Imm))
	case OpMov:
		c.SetReg(in.Rd, c.Reg(in.Rs1))
	case OpAdd:
		c.SetReg(in.Rd, c.Reg(in.Rs1)+c.Reg(in.Rs2))
	case OpSub:
		c.SetReg(in.Rd, c.Reg(in.Rs1)-c.Reg(in.Rs2))
	case OpMul:
		c.SetReg(in.Rd, c.Reg(in.Rs1)*c.Reg(in.Rs2))
	case OpDiv:
		d := c.Reg(in.Rs2)
		if d == 0 {
			c.SetReg(in.Rd, ^uint64(0))
		} else {
			c.SetReg(in.Rd, c.Reg(in.Rs1)/d)
		}
	case OpRem:
		d := c.Reg(in.Rs2)
		if d == 0 {
			c.SetReg(in.Rd, c.Reg(in.Rs1))
		} else {
			c.SetReg(in.Rd, c.Reg(in.Rs1)%d)
		}
	case OpAnd:
		c.SetReg(in.Rd, c.Reg(in.Rs1)&c.Reg(in.Rs2))
	case OpOr:
		c.SetReg(in.Rd, c.Reg(in.Rs1)|c.Reg(in.Rs2))
	case OpXor:
		c.SetReg(in.Rd, c.Reg(in.Rs1)^c.Reg(in.Rs2))
	case OpShl:
		c.SetReg(in.Rd, c.Reg(in.Rs1)<<(c.Reg(in.Rs2)&63))
	case OpShr:
		c.SetReg(in.Rd, c.Reg(in.Rs1)>>(c.Reg(in.Rs2)&63))
	case OpSlt:
		c.SetReg(in.Rd, boolTo64(int64(c.Reg(in.Rs1)) < int64(c.Reg(in.Rs2))))
	case OpSltu:
		c.SetReg(in.Rd, boolTo64(c.Reg(in.Rs1) < c.Reg(in.Rs2)))
	case OpAddi:
		c.SetReg(in.Rd, c.Reg(in.Rs1)+uint64(in.Imm))
	case OpMuli:
		c.SetReg(in.Rd, c.Reg(in.Rs1)*uint64(in.Imm))
	case OpAndi:
		c.SetReg(in.Rd, c.Reg(in.Rs1)&uint64(in.Imm))
	case OpOri:
		c.SetReg(in.Rd, c.Reg(in.Rs1)|uint64(in.Imm))
	case OpXori:
		c.SetReg(in.Rd, c.Reg(in.Rs1)^uint64(in.Imm))
	case OpShli:
		c.SetReg(in.Rd, c.Reg(in.Rs1)<<(uint64(in.Imm)&63))
	case OpShri:
		c.SetReg(in.Rd, c.Reg(in.Rs1)>>(uint64(in.Imm)&63))
	case OpLd:
		c.SetReg(in.Rd, c.port.Load(c.Reg(in.Rs1)+uint64(in.Imm)))
	case OpSt:
		c.port.Store(c.Reg(in.Rs1)+uint64(in.Imm), c.Reg(in.Rs2))
	case OpLb, OpLbu:
		addr := c.Reg(in.Rs1) + uint64(in.Imm)
		w := c.port.Load(addr &^ 7)
		v := (w >> ((addr & 7) * 8)) & 0xff
		if in.Op == OpLb && v&0x80 != 0 {
			v |= ^uint64(0xff)
		}
		c.SetReg(in.Rd, v)
	case OpSb:
		// Byte stores merge into the containing word via an atomic
		// read-modify-write: the model's equivalent of hardware byte
		// enables, so concurrent stores to sibling bytes never lose each
		// other.
		addr := c.Reg(in.Rs1) + uint64(in.Imm)
		byteVal := c.Reg(in.Rs2) & 0xff
		shift := (addr & 7) * 8
		c.port.RMW(addr&^7, func(old uint64) uint64 {
			return (old &^ (uint64(0xff) << shift)) | byteVal<<shift
		})
	case OpBeq:
		return c.condBranch(in, c.Reg(in.Rs1) == c.Reg(in.Rs2))
	case OpBne:
		return c.condBranch(in, c.Reg(in.Rs1) != c.Reg(in.Rs2))
	case OpBlt:
		return c.condBranch(in, int64(c.Reg(in.Rs1)) < int64(c.Reg(in.Rs2)))
	case OpBge:
		return c.condBranch(in, int64(c.Reg(in.Rs1)) >= int64(c.Reg(in.Rs2)))
	case OpBltu:
		return c.condBranch(in, c.Reg(in.Rs1) < c.Reg(in.Rs2))
	case OpBgeu:
		return c.condBranch(in, c.Reg(in.Rs1) >= c.Reg(in.Rs2))
	case OpJmp:
		c.pc = in.Target
		c.retired++
		return StepRetired
	case OpJal:
		c.SetReg(in.Rd, uint64(c.pc+1))
		c.pc = in.Target
		c.retired++
		return StepRetired
	case OpJr:
		c.pc = int(c.Reg(in.Rs1))
		c.retired++
		return StepRetired
	case OpXchg:
		addr := c.Reg(in.Rs1) + uint64(in.Imm)
		newVal := c.Reg(in.Rs2)
		old := c.port.RMW(addr, func(uint64) uint64 { return newVal })
		c.SetReg(in.Rd, old)
	case OpCas:
		addr := c.Reg(in.Rs1) + uint64(in.Imm)
		expect, repl := c.Reg(in.Rs2), c.Reg(in.Rs3)
		old := c.port.RMW(addr, func(cur uint64) uint64 {
			if cur == expect {
				return repl
			}
			return cur
		})
		c.SetReg(in.Rd, old)
	case OpFadd:
		addr := c.Reg(in.Rs1) + uint64(in.Imm)
		delta := c.Reg(in.Rs2)
		old := c.port.RMW(addr, func(cur uint64) uint64 { return cur + delta })
		c.SetReg(in.Rd, old)
	case OpRepMovs, OpRepStos:
		return c.stepRep(in)
	case OpSyscall:
		c.inSyscall = true
		return StepSyscall
	default:
		panic(fmt.Sprintf("isa: core %d: unknown opcode %v at PC %d", c.ID, in.Op, c.pc))
	}
	c.pc++
	c.retired++
	return StepRetired
}

func (c *Core) condBranch(in Instr, taken bool) StepKind {
	if taken {
		c.pc = in.Target
	} else {
		c.pc++
	}
	c.retired++
	return StepRetired
}

// stepRep executes one iteration of a REP instruction. The iteration
// count lives in Rs3 and the pointers in Rs1/Rs2 advance architecturally,
// so the instruction can be suspended between any two iterations (for a
// chunk boundary, context switch or signal) and resumed later.
func (c *Core) stepRep(in Instr) StepKind {
	cnt := c.Reg(in.Rs3)
	if cnt == 0 {
		// Degenerate REP with zero count retires immediately.
		c.repActive = false
		c.repDone = 0
		c.pc++
		c.retired++
		return StepRepRetired
	}
	if !c.repActive {
		c.repActive = true
		c.repDone = 0
	}
	switch in.Op {
	case OpRepMovs:
		dst, src := c.Reg(in.Rs1), c.Reg(in.Rs2)
		c.port.Store(dst, c.port.Load(src))
		c.SetReg(in.Rs1, dst+8)
		c.SetReg(in.Rs2, src+8)
	case OpRepStos:
		dst := c.Reg(in.Rs1)
		c.port.Store(dst, c.Reg(in.Rs2))
		c.SetReg(in.Rs1, dst+8)
	}
	cnt--
	c.SetReg(in.Rs3, cnt)
	c.repDone++
	if cnt == 0 {
		c.repActive = false
		c.repDone = 0
		c.pc++
		c.retired++
		return StepRepRetired
	}
	return StepRepTick
}

func boolTo64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
