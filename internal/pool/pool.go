// Package pool provides a minimal bounded fan-out helper shared by the
// parallel replay engine and the race-analysis paths. Work is always
// index-based: callers pass a task count and a function of the task
// index, and collect results into pre-sized slices so that output order
// is fixed by index, never by goroutine completion order.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve normalizes a caller-facing worker count, the convention every
// Workers knob in this codebase shares: 0 and 1 select serial execution
// (the zero value changes nothing), values above 1 are honored as-is,
// and negative values select runtime.GOMAXPROCS(0).
func Resolve(n int) int {
	if n < 0 {
		return runtime.GOMAXPROCS(0)
	}
	if n == 0 {
		return 1
	}
	return n
}

// ForEach runs fn(i) for every i in [0, tasks) on at most workers
// goroutines and returns when all calls have finished. With workers <= 1
// (or a single task) the calls run inline on the caller's goroutine, so
// the serial path has no scheduling nondeterminism at all. fn must
// confine its writes to per-index state; ForEach provides the
// happens-before edge between every fn call and its own return.
func ForEach(workers, tasks int, fn func(i int)) {
	if tasks <= 0 {
		return
	}
	if workers > tasks {
		workers = tasks
	}
	if workers <= 1 {
		for i := 0; i < tasks; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= tasks {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
