package pool

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {7, 7},
		{-1, runtime.GOMAXPROCS(0)}, {-100, runtime.GOMAXPROCS(0)},
	}
	for _, c := range cases {
		if got := Resolve(c.in); got != c.want {
			t.Errorf("Resolve(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		for _, tasks := range []int{0, 1, 3, 100} {
			counts := make([]int32, tasks)
			ForEach(workers, tasks, func(i int) {
				atomic.AddInt32(&counts[i], 1)
			})
			for i, n := range counts {
				if n != 1 {
					t.Errorf("workers=%d tasks=%d: index %d ran %d times", workers, tasks, i, n)
				}
			}
		}
	}
}

func TestForEachSerialRunsInOrder(t *testing.T) {
	var order []int
	ForEach(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial ForEach out of order: %v", order)
		}
	}
}
