package replay

// Parallel interval replay: a recording made with flight-recorder
// checkpoints is an exact partition of every per-thread log at the
// checkpoint positions, and each checkpoint carries the complete machine
// state at its boundary. Every interval can therefore be replayed
// independently — interval k starts from checkpoint k-1's state and
// consumes only the log slice [pos(k-1), pos(k)) — and the results are
// deterministic by construction: within an interval the replayer follows
// the same global (TS, thread) order serial replay would, and the
// partition points are instruction boundaries (chunks are terminated
// before a checkpoint is taken), so no work item is split, re-executed,
// or skipped.
//
// Validation replaces continuity: instead of flowing state from interval
// k into interval k+1, the engine checks that interval k's final state
// (contexts, exit flags, signal frames, handler registration, fd-1
// output, memory checksum) equals checkpoint k's recorded state. A
// mismatch is reported as a *BoundaryError naming the interval and — for
// per-thread state — the thread and absolute chunk index.

import (
	"bytes"
	"fmt"

	"repro/internal/capo"
	"repro/internal/chunk"
	"repro/internal/dispatch"
	"repro/internal/isa"
	"repro/internal/mem"
)

// BoundaryError reports that a replayed interval's final machine state
// does not match the checkpoint that opens the next interval: the
// recording's logs and its checkpoint snapshots disagree.
type BoundaryError struct {
	// Interval is the 0-based interval whose end state mismatched.
	Interval int
	// Thread names the mismatched thread, or -1 for whole-machine state
	// (memory image, output stream, signal handler).
	Thread int
	// Chunk is the absolute chunk-log index the thread had completed
	// through when it reached the boundary; -1 when no chunk context
	// applies.
	Chunk  int
	Reason string
}

// Error implements error.
func (e *BoundaryError) Error() string {
	if e.Thread >= 0 {
		return fmt.Sprintf("replay: interval %d boundary mismatch on thread %d (chunk %d): %s",
			e.Interval, e.Thread, e.Chunk, e.Reason)
	}
	return fmt.Sprintf("replay: interval %d boundary mismatch: %s", e.Interval, e.Reason)
}

// effectiveWorkers resolves Input.Workers: 0 and 1 mean serial, negative
// means runtime.GOMAXPROCS(0), anything else is taken as-is.
func effectiveWorkers(n int) int {
	return dispatch.Resolve(n)
}

// intervalBoundary is the expected machine state at the end of an
// interior interval, extracted from the next checkpoint. The memory
// image is checksummed lazily by the one interval that validates
// against it — partitioning must stay cheap because remote workers
// re-derive the partition per job, and eager checksums would make that
// O(checkpoints) full-memory scans per job. Concurrent lazy reads are
// safe: Checksum is a pure read and interval replays snapshot their
// start state instead of mutating the checkpoint's image.
type intervalBoundary struct {
	interval  int
	endMem    *mem.Memory
	contexts  []isa.Context
	exited    []bool
	sigRegs   [][isa.NumRegs]uint64
	sigPC     []int
	handlerPC int
	handlerOK bool
	output    []byte
}

// interval is one independently replayable slice of the recording.
type interval struct {
	index     int
	start     *StartState // nil: the program's initial state
	end       *intervalBoundary
	chunkLogs []*chunk.Log
	inputLog  *capo.InputLog
	chunkBase []int
}

// partition splits the input at its usable checkpoints. It returns nil
// (caller replays serially) unless parallel replay applies: Workers must
// resolve to at least 2 and at least one checkpoint must survive
// validation. Start may be non-nil: a windowed (flight-recorder ring)
// recording begins at its window-base checkpoint and still partitions at
// the later surviving checkpoints — interval 0 then starts from Start
// instead of the program's initial state. A checkpoint whose positions
// equal the start of the logs (the window base itself, re-listed among
// the cuts) is skipped as non-advancing. Checkpoints with missing state
// or with log positions that are non-monotonic or beyond the logs (a
// salvaged prefix cut them off) are skipped, so truncation always lands
// in the final interval.
func partition(in Input) []*interval {
	// A remote executor always partitions (the interval list is the job
	// list); local replay partitions only when Workers asks for it.
	if in.Exec == nil && effectiveWorkers(in.Workers) < 2 {
		return nil
	}
	return partitionCuts(in)
}

// partitionCuts is partition without the worker-count gate: the pure
// function of the Input that both the dispatching side and a remote
// worker evaluate, so they agree on the interval list by construction.
func partitionCuts(in Input) []*interval {
	if len(in.Checkpoints) == 0 || in.InputLog == nil {
		return nil
	}
	prevChunk := make([]int, in.Threads)
	prevInput := 0
	var cuts []IntervalCheckpoint
	for _, ck := range in.Checkpoints {
		if !usableCut(ck, in, prevChunk, prevInput) {
			continue
		}
		cuts = append(cuts, ck)
		copy(prevChunk, ck.ChunkPos)
		prevInput = ck.InputPos
	}
	if len(cuts) == 0 {
		return nil
	}

	ivs := make([]*interval, 0, len(cuts)+1)
	base := make([]int, in.Threads) // current cut's chunk positions
	baseInput := 0
	start := in.Start // window base (or nil: the program's initial state)
	for k := 0; k <= len(cuts); k++ {
		iv := &interval{
			index:     k,
			start:     start,
			chunkBase: append([]int(nil), base...),
		}
		nextChunk := make([]int, in.Threads)
		nextInput := 0
		if k < len(cuts) {
			copy(nextChunk, cuts[k].ChunkPos)
			nextInput = cuts[k].InputPos
		} else {
			for t := 0; t < in.Threads; t++ {
				nextChunk[t] = in.ChunkLogs[t].Len()
			}
			nextInput = in.InputLog.Len()
		}
		for t := 0; t < in.Threads; t++ {
			iv.chunkLogs = append(iv.chunkLogs, &chunk.Log{
				Thread:  t,
				Entries: in.ChunkLogs[t].Entries[base[t]:nextChunk[t]],
			})
		}
		iv.inputLog = &capo.InputLog{Records: in.InputLog.Records[baseInput:nextInput]}
		if k < len(cuts) {
			s := cuts[k].State
			iv.end = &intervalBoundary{
				interval:  k,
				endMem:    s.Mem,
				contexts:  s.Contexts,
				exited:    s.Exited,
				sigRegs:   s.SigRegs,
				sigPC:     s.SigPC,
				handlerPC: s.HandlerPC,
				handlerOK: s.HandlerOK,
				output:    s.OutputPrefix,
			}
			start = s
			copy(base, cuts[k].ChunkPos)
			baseInput = cuts[k].InputPos
		}
		ivs = append(ivs, iv)
	}
	return ivs
}

// usableCut reports whether a checkpoint can partition the logs: its
// state must be complete for the thread count and its log positions must
// be monotonic from the previous cut and within the logs.
func usableCut(ck IntervalCheckpoint, in Input, prevChunk []int, prevInput int) bool {
	s := ck.State
	if s == nil || s.Mem == nil ||
		len(s.Contexts) != in.Threads || len(s.Exited) != in.Threads ||
		len(s.SigRegs) != in.Threads || len(s.SigPC) != in.Threads {
		return false
	}
	if len(ck.ChunkPos) != in.Threads {
		return false
	}
	advanced := false
	for t, pos := range ck.ChunkPos {
		if pos < prevChunk[t] || pos > in.ChunkLogs[t].Len() {
			return false
		}
		if pos > prevChunk[t] {
			advanced = true
		}
	}
	if ck.InputPos < prevInput || ck.InputPos > in.InputLog.Len() {
		return false
	}
	// A cut identical to the previous one would create an empty interval;
	// skip it (the states are necessarily identical, nothing to check).
	return advanced || ck.InputPos > prevInput
}

// runParallel replays the intervals through an executor and stitches
// the per-interval results. The executor is Input.Exec when set (a
// fleet run ships interval jobs by digest) and otherwise a Local
// executor bounded by Input.Workers. Error selection is deterministic
// either way: the earliest failing interval's error is returned,
// regardless of goroutine or worker finishing order.
func runParallel(in Input, ivs []*interval) (*Result, error) {
	results := make([]*Result, len(ivs))
	exec := in.Exec
	if exec == nil {
		exec = dispatch.Local{Workers: in.Workers}
	}
	err := exec.Execute(dispatch.Spec{
		Tasks: len(ivs),
		Run: func(i int) error {
			r, err := runInterval(in, ivs[i])
			if err != nil {
				return err
			}
			results[i] = r
			return nil
		},
		Job: func(i int) (dispatch.Job, error) {
			return dispatch.Job{
				Kind:    dispatch.JobReplayInterval,
				Digest:  in.Digest,
				Payload: encodeIntervalJob(i, len(ivs)),
			}, nil
		},
		Absorb: func(i int, data []byte) error {
			r, err := decodeIntervalResult(data, i == len(ivs)-1)
			if err != nil {
				return err
			}
			results[i] = r
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	return stitch(ivs, results), nil
}

// runInterval replays one interval serially on the calling goroutine.
func runInterval(in Input, iv *interval) (res *Result, err error) {
	defer recoverFault(&err)
	sub := in
	sub.ChunkLogs = iv.chunkLogs
	sub.InputLog = iv.inputLog
	sub.Start = iv.start
	sub.Workers = 0
	sub.Checkpoints = nil
	if iv.end != nil {
		// Interior intervals must reach their checkpoint exactly; only
		// the final interval may hit a truncated log. Note MaxSteps is a
		// per-interval budget here.
		sub.AllowTruncated = false
	}
	r := &replayer{in: sub, chunkBase: iv.chunkBase, boundary: iv.end}
	r.setup()
	if err := r.loop(); err != nil {
		return nil, err
	}
	return r.finish()
}

// finishAtBoundary validates the interval's final state against the next
// checkpoint instead of requiring threads to halt or exit.
func (r *replayer) finishAtBoundary() (*Result, error) {
	b := r.boundary
	mismatch := func(t *threadState, format string, args ...any) error {
		return &BoundaryError{
			Interval: b.interval, Thread: t.id, Chunk: r.chunkBase[t.id] + t.chunksDone,
			Reason: fmt.Sprintf(format, args...),
		}
	}
	for _, t := range r.threads {
		ctx := t.finalCtx
		if !t.exited {
			ctx = t.core.SaveContext()
		}
		// The machine marks both exit-syscall and HALT termination as
		// "exited" in checkpoint snapshots; mirror that here, where the
		// replayer keeps the two apart.
		done := t.exited || t.core.Halted()
		if done != b.exited[t.id] {
			return nil, mismatch(t, "termination flag %v, checkpoint records %v", done, b.exited[t.id])
		}
		if ctx != b.contexts[t.id] {
			return nil, mismatch(t, "context %+v does not match checkpoint %+v", ctx, b.contexts[t.id])
		}
		if t.sigRegs != b.sigRegs[t.id] || t.sigPC != b.sigPC[t.id] {
			return nil, mismatch(t, "signal frame does not match checkpoint")
		}
		r.res.FinalContexts = append(r.res.FinalContexts, ctx)
		r.res.RetiredPerThread = append(r.res.RetiredPerThread, ctx.Retired)
	}
	whole := func(format string, args ...any) error {
		return &BoundaryError{
			Interval: b.interval, Thread: -1, Chunk: -1, Reason: fmt.Sprintf(format, args...),
		}
	}
	if r.handlerPC != b.handlerPC || r.handlerOK != b.handlerOK {
		return nil, whole("signal handler (%d, %v) does not match checkpoint (%d, %v)",
			r.handlerPC, r.handlerOK, b.handlerPC, b.handlerOK)
	}
	if !bytes.Equal(r.output, b.output) {
		return nil, whole("fd-1 output (%d bytes) does not match checkpoint prefix (%d bytes)",
			len(r.output), len(b.output))
	}
	sum := r.memory.Checksum()
	if want := b.endMem.Checksum(); sum != want {
		return nil, whole("memory checksum %#x does not match checkpoint %#x", sum, want)
	}
	r.res.MemChecksum = sum
	r.res.Output = r.output
	r.res.FinalMem = r.memory
	return &r.res, nil
}

// stitch combines per-interval results into the whole-recording Result.
// Final-state fields come from the last interval (whose boundary is the
// end of the recording); counters sum, because the intervals partition
// the logs exactly — every item executes in exactly one interval.
func stitch(ivs []*interval, results []*Result) *Result {
	last := results[len(results)-1]
	out := &Result{
		MemChecksum:      last.MemChecksum,
		Output:           last.Output,
		FinalContexts:    last.FinalContexts,
		RetiredPerThread: last.RetiredPerThread,
		FinalMem:         last.FinalMem,
		Truncation:       last.Truncation,
	}
	for _, r := range results {
		out.Steps += r.Steps
		out.ChunksExecuted += r.ChunksExecuted
		out.InputsApplied += r.InputsApplied
	}
	return out
}
