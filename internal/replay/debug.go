package replay

import (
	"errors"
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
)

// Breakpoint names a thread-local position in the recorded execution:
// "thread Thread, just before it retires instruction number Retired".
type Breakpoint struct {
	Thread  int
	Retired uint64
}

// PauseState is the machine state at a breakpoint — the heart of
// record-and-replay debugging: any position in a recorded run can be
// materialised deterministically, as many times as needed.
type PauseState struct {
	// Hit reports whether the breakpoint was reached (false: the
	// recording ended before the position).
	Hit bool
	// Contexts holds every thread's architectural state at the pause.
	Contexts []isa.Context
	// Mem is the memory image at the pause (owned by the caller).
	Mem *mem.Memory
	// Output is fd-1 output produced up to the pause.
	Output []byte
	// ItemsExecuted counts log items started before pausing (the item
	// containing the breakpoint is included).
	ItemsExecuted uint64
}

// errPaused threads the pause signal through the replay loop.
var errPaused = errors.New("replay: paused")

// RunUntil replays the recording until the breakpoint and returns the
// paused state. The same (recording, breakpoint) pair always yields the
// identical state. When the recording ends before the breakpoint, the
// final state is returned with Hit == false.
func RunUntil(in Input, bp Breakpoint) (ps *PauseState, err error) {
	defer recoverFault(&err)
	if bp.Thread < 0 || bp.Thread >= in.Threads {
		return nil, fmt.Errorf("replay: breakpoint thread %d out of range", bp.Thread)
	}
	r := &replayer{in: in, bp: &bp}
	if s := in.Start; s != nil {
		if s.Mem == nil || len(s.Contexts) != in.Threads || len(s.Exited) != in.Threads {
			return nil, errors.New("replay: inconsistent checkpoint")
		}
		if s.Contexts[bp.Thread].Retired > bp.Retired {
			return nil, fmt.Errorf("replay: breakpoint at %d predates the checkpoint (thread already at %d)",
				bp.Retired, s.Contexts[bp.Thread].Retired)
		}
	}
	if in.StackWordsPerThread == 0 {
		r.in.StackWordsPerThread = 1024
	}
	r.setup()
	err = r.loop()
	switch {
	case errors.Is(err, errPaused):
		return r.pauseState(true), nil
	case err != nil:
		return nil, err
	default:
		return r.pauseState(false), nil
	}
}

func (r *replayer) pauseState(hit bool) *PauseState {
	ps := &PauseState{
		Hit:           hit,
		Mem:           r.memory,
		Output:        r.output,
		ItemsExecuted: r.res.ChunksExecuted + r.res.InputsApplied,
	}
	for _, t := range r.threads {
		ps.Contexts = append(ps.Contexts, t.core.SaveContext())
	}
	return ps
}

// checkBreakpoint pauses when the target thread sits exactly at the
// breakpoint position (called between execution steps of that thread).
func (r *replayer) checkBreakpoint(t *threadState) error {
	if r.bp != nil && t.id == r.bp.Thread && t.core.Retired() >= r.bp.Retired {
		return errPaused
	}
	return nil
}
