package replay

import (
	"fmt"

	"repro/internal/capo"
	"repro/internal/isa"
)

// AccessKind classifies one traced memory access.
type AccessKind uint8

// Access kinds. Plain reads and writes are the data accesses a race can
// involve; atomics and futex operations are synchronization, excluded
// from race reports but feeding the happens-before order.
const (
	AccessRead AccessKind = iota
	AccessWrite
	AccessAtomic
	AccessFutexWait
	AccessFutexWake
)

// String names the kind.
func (k AccessKind) String() string {
	switch k {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessAtomic:
		return "atomic"
	case AccessFutexWait:
		return "futex-wait"
	case AccessFutexWake:
		return "futex-wake"
	}
	return fmt.Sprintf("AccessKind(%d)", uint8(k))
}

// IsSync reports whether the access is a synchronization operation
// rather than a plain data access.
func (k AccessKind) IsSync() bool { return k >= AccessAtomic }

// AccessEvent is one user-mode memory access observed during an
// access-traced replay, attributed to the instruction that issued it.
type AccessEvent struct {
	// Thread issued the access; Chunk is the index into that thread's
	// chunk log of the chunk executing (or, for a syscall trap, about to
	// execute) when the access happened.
	Thread int
	Chunk  int
	// PC is the issuing instruction; for futex events it is the trap
	// site.
	PC int
	// Addr is the accessed word address (or the futex word).
	Addr uint64
	// Kind classifies the access.
	Kind AccessKind
}

// rawAccess is one port-level access buffered during a step.
type rawAccess struct {
	addr  uint64
	write bool
}

// tracingPort wraps the replay memory port, buffering each access of the
// in-flight instruction; the replayer drains and attributes the buffer
// after the step completes, when the issuing PC and kind are known.
type tracingPort struct {
	inner flatPort
	buf   *[]rawAccess
}

func (p tracingPort) Load(addr uint64) uint64 {
	*p.buf = append(*p.buf, rawAccess{addr, false})
	return p.inner.Load(addr)
}

func (p tracingPort) Store(addr uint64, val uint64) {
	*p.buf = append(*p.buf, rawAccess{addr, true})
	p.inner.Store(addr, val)
}

func (p tracingPort) RMW(addr uint64, f func(uint64) uint64) uint64 {
	// Port-level RMW backs both atomic instructions and sub-word stores;
	// classification by opcode happens at drain time, so just note a
	// write here.
	*p.buf = append(*p.buf, rawAccess{addr, true})
	return p.inner.RMW(addr, f)
}

// drainAccesses attributes the in-flight step's buffered accesses to the
// issuing (thread, chunk, PC) and classifies them: every access of an
// atomic instruction (XCHG/CAS/FADD) is synchronization, everything else
// is a plain read or write.
func (r *replayer) drainAccesses(t *threadState, pcBefore int) {
	if len(r.accessBuf) == 0 {
		return
	}
	atomic := false
	if pcBefore >= 0 && pcBefore < len(r.in.Prog.Code) {
		switch r.in.Prog.Code[pcBefore].Op {
		case isa.OpXchg, isa.OpCas, isa.OpFadd:
			atomic = true
		}
	}
	for _, a := range r.accessBuf {
		kind := AccessRead
		switch {
		case atomic:
			kind = AccessAtomic
		case a.write:
			kind = AccessWrite
		}
		r.accessSink(AccessEvent{Thread: t.id, Chunk: t.chunksDone, PC: pcBefore, Addr: a.addr, Kind: kind})
	}
	r.accessBuf = r.accessBuf[:0]
}

// noteFutex logs a futex syscall as a synchronization event on its word.
func (r *replayer) noteFutex(t *threadState, sysno, addr uint64) {
	if r.accessSink == nil {
		return
	}
	kind := AccessFutexWait
	if sysno == capo.SysFutexWake {
		kind = AccessFutexWake
	}
	r.accessSink(AccessEvent{Thread: t.id, Chunk: t.chunksDone, PC: t.core.PC(), Addr: addr, Kind: kind})
}

// TraceAccesses replays the recording to completion while logging every
// user-mode memory access with its thread, chunk index, PC and
// classification — the exact-address ground truth the race detector's
// confirmation phase compares Bloom candidates against. Kernel-side
// copies (syscall result injection, output reads) go through the
// untraced port and are excluded: they are recorded input, not
// shared-memory communication. Futex waits and wakes are logged as
// synchronization events on the futex word.
func TraceAccesses(in Input) (res *Result, events []AccessEvent, err error) {
	defer recoverFault(&err)
	if in.Threads <= 0 || len(in.ChunkLogs) != in.Threads {
		return nil, nil, fmt.Errorf("replay: inconsistent input: %d threads, %d chunk logs",
			in.Threads, len(in.ChunkLogs))
	}
	if in.StackWordsPerThread == 0 {
		in.StackWordsPerThread = 1024
	}
	if s := in.Start; s != nil {
		if s.Mem == nil || len(s.Contexts) != in.Threads || len(s.Exited) != in.Threads {
			return nil, nil, fmt.Errorf("replay: inconsistent checkpoint: %d contexts, %d exit flags for %d threads",
				len(s.Contexts), len(s.Exited), in.Threads)
		}
	}
	r := &replayer{in: in}
	r.accessSink = func(ev AccessEvent) { events = append(events, ev) }
	r.stepHook = func(t *threadState, pcBefore int, kind isa.StepKind) {
		r.drainAccesses(t, pcBefore)
	}
	r.setup()
	if err := r.loop(); err != nil {
		return nil, nil, err
	}
	res, err = r.finish()
	if err != nil {
		return nil, nil, err
	}
	return res, events, nil
}
