// Package replay consumes a QuickRec recording — per-thread chunk logs
// plus the Capo3 input log — and re-executes the program deterministically.
//
// The replayer needs no coherence simulation: it executes work items
// (user chunks and kernel input events) in the global serialization the
// Lamport timestamps encode. Within a thread, items are already ordered;
// across threads, the item with the smallest (TS, thread) executes next.
// Every conflicting pair of items was given strictly ordered timestamps
// by the recording hardware, so this schedule reproduces every load's
// value — and therefore the entire execution — exactly.
//
// Replay validates as it goes: syscall numbers must match the input log,
// signal delivery positions must match recorded instruction counts and
// REP residues, and chunks must end at instruction (and REP-iteration)
// boundaries exactly as recorded. Any mismatch is reported as a
// *DivergenceError rather than silently producing a wrong execution.
package replay

import (
	"fmt"
	"sort"

	"repro/internal/capo"
	"repro/internal/chunk"
	"repro/internal/dispatch"
	"repro/internal/isa"
	"repro/internal/mem"
)

// Input is everything replay needs, extracted from a recording bundle.
type Input struct {
	// Prog is the recorded program (code is not logged; RnR replays the
	// same binary, as the paper's Capo3 does).
	Prog *isa.Program
	// Threads is the recorded thread count.
	Threads int
	// ChunkLogs holds thread t's chunk log at index t.
	ChunkLogs []*chunk.Log
	// InputLog holds all syscall/signal records.
	InputLog *capo.InputLog
	// StackWordsPerThread must match the recording machine's value so
	// the address space lines up.
	StackWordsPerThread uint64
	// Start, when non-nil, resumes replay from a flight-recorder
	// checkpoint instead of the program's initial state; ChunkLogs and
	// InputLog must then hold only the post-checkpoint tail.
	Start *StartState
	// CountRepIterations matches the recorder's counting convention:
	// chunk sizes include one unit per REP iteration in addition to each
	// retired instruction (hardware performance-counter style). The
	// replayer must mirror whichever convention the hardware used — the
	// paper's instruction-counting lesson.
	CountRepIterations bool
	// MaxSteps, when nonzero, bounds the number of execution steps replay
	// may perform before aborting with a *DivergenceError. A corrupted
	// chunk size can send a spin-wait loop chasing an astronomically
	// distant boundary; the budget turns that hang into a detection.
	MaxSteps uint64
	// AllowTruncated accepts a salvaged recording prefix: when the logs
	// run out with threads still mid-execution, replay returns normally
	// with Result.Truncation describing them instead of reporting a
	// divergence. Everything executed up to that point was still fully
	// validated — truncation is a property of the log, not a waiver of
	// checking.
	AllowTruncated bool
	// Workers selects how many goroutines Run may use for parallel
	// interval replay. 0 or 1 replays serially; values above 1 split the
	// recording at Checkpoints into independent intervals and replay
	// them concurrently (see parallel.go). Negative values select
	// runtime.GOMAXPROCS(0). Results are bit-identical to serial replay:
	// each interval executes the exact per-thread log slice the serial
	// schedule would, and every interior boundary state is validated
	// against the next checkpoint.
	Workers int
	// Checkpoints lists the recording's flight-recorder snapshots in
	// RetiredAt order. Only consulted when Workers enables parallel
	// replay and Start is nil (a tail replay already has a single
	// implied interval); ChunkPos/InputPos index into ChunkLogs/InputLog.
	Checkpoints []IntervalCheckpoint
	// Exec, when non-nil, overrides the Workers-bounded local pool for
	// interval fan-out: the recording partitions at Checkpoints exactly
	// as for local parallel replay, and every interval becomes one
	// dispatch job. A remote executor requires Digest to be set so
	// workers can fetch the bundle by content address.
	Exec dispatch.Executor
	// Digest is the content address (lowercase hex SHA-256) of the
	// recording's uploaded bytes, stamped into remote interval jobs.
	// Ignored by local executors.
	Digest string
}

// IntervalCheckpoint locates one flight-recorder snapshot inside a full
// recording: the machine state at the boundary plus the log positions
// that separate pre- from post-checkpoint entries.
type IntervalCheckpoint struct {
	// State is the machine state at the checkpoint boundary.
	State *StartState
	// ChunkPos[t] is thread t's chunk-log length at the snapshot;
	// InputPos is the input-log length.
	ChunkPos []int
	InputPos int
}

// TruncatedReplay describes a best-effort prefix replay that consumed a
// truncated log: the recording ended before these threads halted or
// exited. Present on Result only when Input.AllowTruncated was set.
type TruncatedReplay struct {
	// Threads lists the thread IDs whose logs ran out mid-execution.
	Threads []int
}

// String summarises the truncation.
func (t *TruncatedReplay) String() string {
	return fmt.Sprintf("replay truncated: %d thread(s) still running at log exhaustion %v",
		len(t.Threads), t.Threads)
}

// StartState is a checkpoint the replayer can resume from: the
// architectural memory image and per-thread state captured by the
// recorder at a chunk boundary.
type StartState struct {
	// Mem is the checkpointed memory image (copied before use).
	Mem *mem.Memory
	// Contexts holds each thread's architectural state.
	Contexts []isa.Context
	// Exited marks threads that terminated before the checkpoint.
	Exited []bool
	// SigRegs/SigPC/SigMasked carry in-flight signal frames.
	SigRegs [][isa.NumRegs]uint64
	SigPC   []int
	// HandlerPC/HandlerOK carry the registered signal handler (its
	// registration record may predate the tail log).
	HandlerPC int
	HandlerOK bool
	// OutputPrefix is everything written to fd 1 before the checkpoint,
	// so the replayed output stream compares against the full recording.
	OutputPrefix []byte
}

// Result summarises a completed replay.
type Result struct {
	// MemChecksum hashes the final memory image.
	MemChecksum uint64
	// Output is what the replayed program wrote to fd 1.
	Output []byte
	// FinalContexts holds each thread's architectural state at exit.
	FinalContexts []isa.Context
	// RetiredPerThread is each thread's retired instruction count.
	RetiredPerThread []uint64
	// Steps counts execution steps performed.
	Steps uint64
	// ChunksExecuted and InputsApplied count consumed log items.
	ChunksExecuted uint64
	InputsApplied  uint64
	// FinalMem is the replayed memory image, for inspection (its
	// checksum equals MemChecksum).
	FinalMem *mem.Memory
	// Truncation is non-nil when AllowTruncated was set and the logs ran
	// out before every thread halted or exited: the replay is a validated
	// prefix of the recorded execution, not the whole of it.
	Truncation *TruncatedReplay
}

// DivergenceError reports that the replayed execution departed from the
// recording.
type DivergenceError struct {
	Thread int
	// Chunk is the index (into the thread's chunk log) of the chunk that
	// was executing — or about to execute — when the divergence was
	// detected; -1 when no chunk context applies.
	Chunk  int
	Reason string
}

// Error implements error.
func (e *DivergenceError) Error() string {
	if e.Chunk >= 0 {
		return fmt.Sprintf("replay: divergence on thread %d (chunk %d): %s", e.Thread, e.Chunk, e.Reason)
	}
	return fmt.Sprintf("replay: divergence on thread %d: %s", e.Thread, e.Reason)
}

// itemKind tags a work item.
type itemKind uint8

const (
	itemChunk itemKind = iota
	itemInput
)

// item is one unit of ordered replay work.
type item struct {
	kind  itemKind
	ts    uint64
	entry chunk.Entry
	rec   capo.Record
}

// flatPort executes replay accesses directly against memory.
type flatPort struct{ m *mem.Memory }

func (p flatPort) Load(addr uint64) uint64       { return p.m.Load(addr) }
func (p flatPort) Store(addr uint64, val uint64) { p.m.Store(addr, val) }
func (p flatPort) RMW(addr uint64, f func(uint64) uint64) uint64 {
	old := p.m.Load(addr)
	p.m.Store(addr, f(old))
	return old
}

// threadState is one replayed thread.
type threadState struct {
	id       int
	core     *isa.Core
	items    []item
	next     int
	execBase uint64 // units at the last completed chunk boundary
	// chunksDone counts completed chunks, so divergence reports can name
	// the chunk-log index they occurred in.
	chunksDone int
	// cumTicks counts REP iterations executed (used when the recorder
	// counted hardware-style; units = retired + cumTicks).
	cumTicks uint64
	finalCtx isa.Context
	exited   bool
	// Signal frame, mirroring the kernel's: saved at signal delivery,
	// restored at SysSigReturn.
	sigRegs [isa.NumRegs]uint64
	sigPC   int
}

type replayer struct {
	in        Input
	memory    *mem.Memory
	threads   []*threadState
	output    []byte
	handlerPC int
	handlerOK bool
	res       Result
	// chunkBase[t] offsets interval-relative chunk indices into the full
	// recording's chunk log, so divergence reports from a parallel
	// interval name the absolute chunk (nil for whole-recording replay).
	chunkBase []int
	// boundary, when non-nil, is the expected machine state at the end
	// of this interval (the next checkpoint); finish() validates against
	// it instead of requiring threads to halt or exit.
	boundary *intervalBoundary
	// bp, when set, pauses execution at a thread-local position (see
	// RunUntil).
	bp *Breakpoint
	// stepHook, when set, observes every execution step (see Trace).
	stepHook func(t *threadState, pcBefore int, kind isa.StepKind)
	// accessSink and accessBuf implement access tracing (see
	// TraceAccesses): cores run against a tracingPort that buffers each
	// step's raw accesses in accessBuf, and the step hook drains them to
	// the sink with the issuing instruction attached.
	accessSink func(AccessEvent)
	accessBuf  []rawAccess
}

// corePort returns the memory port replayed cores execute against:
// traced when access tracing is on, the bare memory otherwise.
func (r *replayer) corePort() isa.MemPort {
	if r.accessSink != nil {
		return tracingPort{inner: flatPort{r.memory}, buf: &r.accessBuf}
	}
	return flatPort{r.memory}
}

// Run replays the recording and returns the reconstructed execution
// state, or a *DivergenceError if the logs and the program disagree.
// Execution faults caused by corrupt logs (a restored context pointing
// outside the program, an access outside memory) are contained and
// returned as errors.
func Run(in Input) (res *Result, err error) {
	defer recoverFault(&err)
	return runChecked(in)
}

// recoverFault converts simulated-machine panics (driven by corrupt or
// hostile log data) into errors.
func recoverFault(err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("replay: execution fault (corrupt recording?): %v", r)
	}
}

func runChecked(in Input) (*Result, error) {
	if in.Threads <= 0 || len(in.ChunkLogs) != in.Threads {
		return nil, fmt.Errorf("replay: inconsistent input: %d threads, %d chunk logs",
			in.Threads, len(in.ChunkLogs))
	}
	if in.StackWordsPerThread == 0 {
		in.StackWordsPerThread = 1024
	}
	if s := in.Start; s != nil {
		if s.Mem == nil || len(s.Contexts) != in.Threads || len(s.Exited) != in.Threads {
			return nil, fmt.Errorf("replay: inconsistent checkpoint: %d contexts, %d exit flags for %d threads",
				len(s.Contexts), len(s.Exited), in.Threads)
		}
	}
	if ivs := partition(in); len(ivs) > 1 {
		return runParallel(in, ivs)
	}
	r := &replayer{in: in}
	r.setup()
	if err := r.loop(); err != nil {
		return nil, err
	}
	return r.finish()
}

// setup reproduces the recording machine's address-space layout exactly,
// or restores a checkpoint when one is supplied.
func (r *replayer) setup() {
	if s := r.in.Start; s != nil {
		r.memory = s.Mem.Snapshot()
		r.handlerPC, r.handlerOK = s.HandlerPC, s.HandlerOK
		r.output = append(r.output, s.OutputPrefix...)
		for t := 0; t < r.in.Threads; t++ {
			core := isa.NewCore(t, r.in.Prog, r.corePort())
			core.RestoreContext(s.Contexts[t])
			ts := &threadState{
				id: t, core: core, items: buildItems(r.in, t),
				execBase: s.Contexts[t].Retired,
			}
			if len(s.SigRegs) > t {
				ts.sigRegs = s.SigRegs[t]
				ts.sigPC = s.SigPC[t]
			}
			if s.Exited[t] {
				ts.exited = true
				ts.finalCtx = s.Contexts[t]
			}
			r.threads = append(r.threads, ts)
		}
		return
	}
	stackBytes := r.in.StackWordsPerThread * 8 * uint64(r.in.Threads)
	r.memory = mem.New(r.in.Prog.MemBytes + stackBytes + 4096)
	r.in.Prog.Init(r.memory)
	r.memory.Reserve(r.in.Prog.MemBytes)
	stackBase := make([]uint64, r.in.Threads)
	for t := 0; t < r.in.Threads; t++ {
		stackBase[t] = r.memory.Alloc(r.in.StackWordsPerThread * 8)
	}
	for t := 0; t < r.in.Threads; t++ {
		core := isa.NewCore(t, r.in.Prog, r.corePort())
		core.SetReg(isa.R1, uint64(t))
		core.SetReg(isa.R2, uint64(r.in.Threads))
		core.SetReg(isa.R29, stackBase[t])
		ts := &threadState{id: t, core: core, items: buildItems(r.in, t)}
		r.threads = append(r.threads, ts)
	}
}

// buildItems merges thread t's chunk entries and input records into one
// timestamp-ordered stream. Both sequences are already sorted (the
// recorder's per-thread clock is strictly monotonic across emissions), so
// this is a two-way merge; sort.SliceStable guards against malformed logs.
func buildItems(in Input, t int) []item {
	var items []item
	for _, e := range in.ChunkLogs[t].Entries {
		items = append(items, item{kind: itemChunk, ts: e.TS, entry: e})
	}
	for _, rec := range in.InputLog.PerThread(t) {
		items = append(items, item{kind: itemInput, ts: rec.TS, rec: rec})
	}
	sort.SliceStable(items, func(i, j int) bool { return items[i].ts < items[j].ts })
	return items
}

// ScheduledItem is one element of the deterministic global order in
// which replay will execute a recording's work items.
type ScheduledItem struct {
	// Thread is the executing thread.
	Thread int
	// IsChunk distinguishes user chunks from kernel input events.
	IsChunk bool
	// Entry is the chunk entry when IsChunk is true.
	Entry chunk.Entry
	// Rec is the input record when IsChunk is false.
	Rec capo.Record
}

// ScheduleOf computes, without executing anything, the exact global
// serialization Run would follow for in: per-thread streams merged by
// (TS, thread), ties resolved toward the lower thread ID. Conformance
// tooling uses it to decide whether a log perturbation changes replay
// semantics at all.
func ScheduleOf(in Input) []ScheduledItem {
	if in.Threads <= 0 || len(in.ChunkLogs) != in.Threads || in.InputLog == nil {
		return nil
	}
	type cursor struct {
		items []item
		next  int
	}
	cursors := make([]cursor, in.Threads)
	total := 0
	for t := 0; t < in.Threads; t++ {
		cursors[t].items = buildItems(in, t)
		total += len(cursors[t].items)
	}
	out := make([]ScheduledItem, 0, total)
	for {
		pick := -1
		for t := range cursors {
			c := &cursors[t]
			if c.next >= len(c.items) {
				continue
			}
			if pick < 0 || c.items[c.next].ts < cursors[pick].items[cursors[pick].next].ts {
				pick = t
			}
		}
		if pick < 0 {
			return out
		}
		it := cursors[pick].items[cursors[pick].next]
		cursors[pick].next++
		out = append(out, ScheduledItem{
			Thread: pick, IsChunk: it.kind == itemChunk, Entry: it.entry, Rec: it.rec,
		})
	}
}

// loop executes items globally ordered by (TS, thread).
func (r *replayer) loop() error {
	for {
		var pick *threadState
		for _, t := range r.threads {
			if t.next >= len(t.items) {
				continue
			}
			if pick == nil || t.items[t.next].ts < pick.items[pick.next].ts {
				pick = t
			}
		}
		if pick == nil {
			return nil // all streams exhausted
		}
		it := pick.items[pick.next]
		pick.next++
		var err error
		switch it.kind {
		case itemChunk:
			err = r.runChunk(pick, it.entry)
			r.res.ChunksExecuted++
		case itemInput:
			err = r.applyInput(pick, it.rec)
			r.res.InputsApplied++
		}
		if err != nil {
			return err
		}
	}
}

func (r *replayer) diverge(t *threadState, format string, args ...any) error {
	ck := t.chunksDone
	if r.chunkBase != nil {
		ck += r.chunkBase[t.id]
	}
	return &DivergenceError{Thread: t.id, Chunk: ck, Reason: fmt.Sprintf(format, args...)}
}

// checkBudget enforces Input.MaxSteps.
func (r *replayer) checkBudget(t *threadState) error {
	if r.in.MaxSteps > 0 && r.res.Steps >= r.in.MaxSteps {
		return r.diverge(t, "step budget exhausted after %d steps (corrupt chunk sizes?)", r.res.Steps)
	}
	return nil
}

// units returns thread t's position in the recorder's counting
// convention: retired instructions, plus REP iterations when the
// hardware counted them.
func (r *replayer) units(t *threadState) uint64 {
	if r.in.CountRepIterations {
		return t.core.Retired() + t.cumTicks
	}
	return t.core.Retired()
}

// runChunk executes exactly entry.Size counting units (plus REP
// iterations up to the recorded residue) on thread t.
func (r *replayer) runChunk(t *threadState, e chunk.Entry) error {
	target := t.execBase + e.Size
	for {
		if err := r.checkBreakpoint(t); err != nil {
			return err
		}
		if err := r.checkBudget(t); err != nil {
			return err
		}
		pos := r.units(t)
		_, repDone := t.core.RepInFlight()
		if pos > target {
			return r.diverge(t, "overshot chunk boundary: at %d, target %d", pos, target)
		}
		if pos == target {
			if repDone == e.RepResidue {
				break
			}
			if repDone > e.RepResidue {
				return r.diverge(t, "REP residue overshoot: %d > %d", repDone, e.RepResidue)
			}
			if r.in.CountRepIterations {
				return r.diverge(t, "REP residue mismatch at unit boundary: %d, recorded %d",
					repDone, e.RepResidue)
			}
		}
		pcBefore := t.core.PC()
		kind := t.core.Step()
		switch kind {
		case isa.StepRepTick:
			t.cumTicks++
		case isa.StepSyscall:
			return r.diverge(t, "unexpected syscall inside chunk (at %d, target %d)",
				r.units(t), target)
		case isa.StepHalted:
			if r.units(t) != target {
				return r.diverge(t, "halted mid-chunk: at %d, target %d", r.units(t), target)
			}
		}
		if r.stepHook != nil {
			r.stepHook(t, pcBefore, kind)
		}
		r.res.Steps++
	}
	t.execBase = target
	t.chunksDone++
	return nil
}

// applyInput replays one kernel event: a syscall completion or a signal
// delivery.
func (r *replayer) applyInput(t *threadState, rec capo.Record) error {
	switch rec.Kind {
	case capo.KindSignal:
		return r.applySignal(t, rec)
	case capo.KindSyscall:
		return r.applySyscall(t, rec)
	}
	return r.diverge(t, "unknown input record kind %d", rec.Kind)
}

func (r *replayer) applySignal(t *threadState, rec capo.Record) error {
	if got := t.core.Retired(); got != rec.Retired {
		return r.diverge(t, "signal position mismatch: retired %d, recorded %d", got, rec.Retired)
	}
	if _, repDone := t.core.RepInFlight(); repDone != rec.RepDone {
		return r.diverge(t, "signal REP residue mismatch: %d, recorded %d", repDone, rec.RepDone)
	}
	if !r.handlerOK {
		return r.diverge(t, "signal delivered but no handler registered during replay")
	}
	for reg := isa.Reg(0); reg < isa.NumRegs; reg++ {
		t.sigRegs[reg] = t.core.Reg(reg)
	}
	t.sigPC = t.core.PC()
	t.core.ClearRepState()
	t.core.SetPC(r.handlerPC)
	return nil
}

func (r *replayer) applySyscall(t *threadState, rec capo.Record) error {
	// The thread must be exactly at a syscall instruction.
	if !t.core.InSyscall() {
		pcBefore := t.core.PC()
		kind := t.core.Step()
		if kind != isa.StepSyscall {
			return r.diverge(t, "expected syscall trap for record %v, got step kind %d", rec, kind)
		}
		if r.stepHook != nil {
			r.stepHook(t, pcBefore, kind)
		}
		r.res.Steps++
	}
	sysno, a1, a2, a3, _ := t.core.SyscallArgs()
	if sysno != rec.Sysno {
		return r.diverge(t, "syscall number mismatch: executing %d, recorded %d", sysno, rec.Sysno)
	}
	if sysno == capo.SysFutexWait || sysno == capo.SysFutexWake {
		r.noteFutex(t, sysno, a1)
	}
	port := flatPort{r.memory}
	switch sysno {
	case capo.SysExit:
		t.core.AbortSyscall()
		t.finalCtx = t.core.SaveContext()
		t.exited = true
		return nil
	case capo.SysRead:
		capo.StoreBytes(port, rec.Addr, rec.Data)
	case capo.SysWrite:
		// Re-generate output from replayed memory: a strong end-to-end
		// check, since any divergence in the buffer shows up against the
		// recorded output.
		if int(a1) == 1 {
			r.output = append(r.output, capo.LoadBytes(port, a2, a3)...)
		}
	case capo.SysSigHandler:
		r.handlerPC = int(a1)
		r.handlerOK = true
	}
	t.core.CompleteSyscall(rec.Ret)
	// The retire belongs to the next chunk's budget; execBase advances
	// only at chunk completion.
	if sysno == capo.SysSigReturn {
		for reg := isa.Reg(1); reg < isa.NumRegs; reg++ {
			t.core.SetReg(reg, t.sigRegs[reg])
		}
		t.core.SetPC(t.sigPC)
	}
	return r.checkBreakpoint(t)
}

// finish validates final thread states and assembles the result.
func (r *replayer) finish() (*Result, error) {
	if r.boundary != nil {
		return r.finishAtBoundary()
	}
	for _, t := range r.threads {
		if !t.exited {
			if !t.core.Halted() {
				if !r.in.AllowTruncated {
					return nil, r.diverge(t, "log exhausted but thread neither halted nor exited")
				}
				// Threads are never mid-syscall here: a chunk ends before
				// the syscall instruction executes, and applySyscall always
				// completes or aborts the trap within one item. SaveContext
				// is therefore well-defined at log exhaustion.
				if r.res.Truncation == nil {
					r.res.Truncation = &TruncatedReplay{}
				}
				r.res.Truncation.Threads = append(r.res.Truncation.Threads, t.id)
			}
			t.finalCtx = t.core.SaveContext()
		}
		r.res.FinalContexts = append(r.res.FinalContexts, t.finalCtx)
		r.res.RetiredPerThread = append(r.res.RetiredPerThread, t.finalCtx.Retired)
	}
	r.res.MemChecksum = r.memory.Checksum()
	r.res.Output = r.output
	r.res.FinalMem = r.memory
	return &r.res, nil
}
